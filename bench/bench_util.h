#ifndef HEPQUERY_BENCH_BENCH_UTIL_H_
#define HEPQUERY_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cloud/simulator.h"
#include "datagen/dataset.h"
#include "queries/adl.h"

namespace hepq::bench {

/// Number of events the benchmark data set holds. The paper's data set has
/// ~53.4 M events in 128 row groups; benchmarks here default to a scaled
/// replica (HEPQ_BENCH_EVENTS to override) and extrapolate measured CPU
/// and IO to the full size when simulating cloud deployments, exactly like
/// the paper extrapolated its Presto Q6 and Rumble runs (§4.1).
inline int64_t BenchEvents(int64_t default_events = 20000) {
  const char* env = std::getenv("HEPQ_BENCH_EVENTS");
  if (env != nullptr && env[0] != '\0') {
    const long long v = std::atoll(env);
    if (v > 0) return v;
  }
  return default_events;
}

inline constexpr int64_t kPaperEvents = 53446198;
inline constexpr int kPaperRowGroups = 128;

/// Generates (or reuses) the benchmark data set and returns its path.
inline std::string BenchDataset(int64_t events) {
  DatasetSpec spec;
  spec.num_events = events;
  // Keep the paper's geometry: events / row-group ratio such that the
  // full data set would have ~128 groups, but at least 4 groups locally.
  spec.row_group_size = std::max<int64_t>(1000, events / 4);
  auto path = EnsureDataset(DefaultDataDir(), spec);
  path.status().Check();
  return *path;
}

/// The layout-optimized rewrite of BenchDataset (cached next to it).
inline std::string BenchOptimizedDataset(int64_t events) {
  DatasetSpec spec;
  spec.num_events = events;
  spec.row_group_size = std::max<int64_t>(1000, events / 4);
  auto path = EnsureOptimizedDataset(DefaultDataDir(), spec);
  path.status().Check();
  return *path;
}

/// Scales a local measurement up to the paper's data-set size so the
/// cloud simulation sees full-size work (documented in the bench output).
inline cloud::MeasuredQuery ExtrapolateToPaperSize(
    const queries::QueryRunOutput& output) {
  cloud::MeasuredQuery measured;
  const double scale =
      static_cast<double>(kPaperEvents) /
      static_cast<double>(std::max<int64_t>(1, output.events_processed));
  measured.cpu_seconds = output.cpu_seconds * scale;
  measured.storage_bytes =
      static_cast<uint64_t>(output.scan.storage_bytes * scale);
  measured.logical_bytes_bq =
      static_cast<uint64_t>(output.scan.logical_bytes_bq * scale);
  measured.row_groups = kPaperRowGroups;
  measured.events = kPaperEvents;
  return measured;
}

/// Parses `--threads=N` from the command line (default 1). Engine runs
/// then scan row groups with N workers of the shared pool. On the 1-core
/// bench host this exercises the parallel runtime's correctness and
/// scheduling, not speedup; multi-core wall times for the figures still
/// come from the cloud simulator's scaling model, which `--threads` lets
/// you cross-check against real multi-core runs on bigger hosts.
inline int ParseThreadsFlag(int argc, char** argv, int default_threads = 1) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      const int v = std::atoi(arg + 10);
      if (v > 0) return v;
    }
  }
  return default_threads;
}

/// Parses `--vexpr-tier=interpret|bytecode|simd` (default simd) — the
/// expression-execution tier for the bigquery/presto plan shapes, shared
/// by fig4 and the other bench drivers. Exits with a message on a bad
/// tier name so typos cannot silently benchmark the wrong tier.
inline queries::VexprTier ParseVexprTierFlag(
    int argc, char** argv,
    queries::VexprTier default_tier = queries::VexprTier::kSimd) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--vexpr-tier=", 13) == 0) {
      queries::VexprTier tier;
      if (!queries::ParseVexprTier(arg + 13, &tier)) {
        std::fprintf(stderr,
                     "--vexpr-tier must be interpret, bytecode, or simd\n");
        std::exit(2);
      }
      return tier;
    }
  }
  return default_tier;
}

inline void PrintHeaderLine(const char* title) {
  std::printf("\n%s\n", title);
  for (const char* p = title; *p != '\0'; ++p) std::printf("=");
  std::printf("\n");
}

/// Accumulates benchmark records and writes them as `BENCH_<name>.json`
/// in the working directory — the machine-readable companion of the
/// printed tables, uploaded as a CI artifact by the bench-smoke job.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& query, const std::string& engine, double cpu_s,
           uint64_t bytes_scanned, uint64_t bytes_decoded,
           uint64_t rows_pruned) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s  {\"query\": \"%s\", \"engine\": \"%s\", "
                  "\"cpu_s\": %.6f, \"bytes_scanned\": %llu, "
                  "\"bytes_decoded\": %llu, \"rows_pruned\": %llu}",
                  records_.empty() ? "" : ",\n", query.c_str(),
                  engine.c_str(), cpu_s,
                  static_cast<unsigned long long>(bytes_scanned),
                  static_cast<unsigned long long>(bytes_decoded),
                  static_cast<unsigned long long>(rows_pruned));
    records_ += buf;
  }

  /// Expression-tier record: one (kernel, tier) measurement from the
  /// micro-benchmarks. ns_per_row is the normalized cost; fused_coverage
  /// is the fraction of source VOps absorbed into superinstructions
  /// (simd tier only, 0 otherwise). CI compares the simd/bytecode
  /// ns_per_row ratio against bench/baselines/micro_kernels_tiers.json.
  void AddTier(const std::string& kernel, const std::string& tier,
               double ns_per_row, double vops_per_row,
               double fused_coverage) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s  {\"kernel\": \"%s\", \"tier\": \"%s\", "
                  "\"ns_per_row\": %.3f, \"vops_per_row\": %.2f, "
                  "\"fused_coverage\": %.4f}",
                  records_.empty() ? "" : ",\n", kernel.c_str(),
                  tier.c_str(), ns_per_row, vops_per_row, fused_coverage);
    records_ += buf;
  }

  /// Scale-out record: one (query, procs, threads) measurement from a
  /// real multi-process run, with the cloud simulator's wall time for the
  /// same measured work as the reconciliation column. CI gates the shape
  /// of these records in BENCH_fig2.json.
  void AddScaling(const std::string& query, const std::string& engine,
                  int procs, int threads, int64_t events, double wall_s,
                  double cpu_s, double speedup, double sim_wall_s) {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "%s  {\"query\": \"%s\", \"engine\": \"%s\", "
                  "\"procs\": %d, \"threads\": %d, \"events\": %lld, "
                  "\"wall_s\": %.6f, \"cpu_s\": %.6f, \"speedup\": %.4f, "
                  "\"sim_wall_s\": %.6f}",
                  records_.empty() ? "" : ",\n", query.c_str(),
                  engine.c_str(), procs, threads,
                  static_cast<long long>(events), wall_s, cpu_s, speedup,
                  sim_wall_s);
    records_ += buf;
  }

  /// Cache-warmth record: one full 8-query suite pass under a given cache
  /// state. `warm_speedup` is cold wall / this pass's wall (1.0 for the
  /// cold pass itself). CI gates warm passes on decoded_bytes == 0 and
  /// warm_speedup >= 2 in BENCH_cache.json.
  void AddCachePass(const std::string& label, int pass, double wall_s,
                    uint64_t decoded_bytes, uint64_t cache_bytes_served,
                    uint64_t chunk_cache_hits, uint64_t footer_cache_hits,
                    int result_cache_hits, double warm_speedup) {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "%s  {\"label\": \"%s\", \"pass\": %d, "
                  "\"wall_s\": %.6f, \"decoded_bytes\": %llu, "
                  "\"cache_bytes_served\": %llu, \"chunk_cache_hits\": %llu, "
                  "\"footer_cache_hits\": %llu, \"result_cache_hits\": %d, "
                  "\"warm_speedup\": %.4f}",
                  records_.empty() ? "" : ",\n", label.c_str(), pass, wall_s,
                  static_cast<unsigned long long>(decoded_bytes),
                  static_cast<unsigned long long>(cache_bytes_served),
                  static_cast<unsigned long long>(chunk_cache_hits),
                  static_cast<unsigned long long>(footer_cache_hits),
                  result_cache_hits, warm_speedup);
    records_ += buf;
  }

  /// Writes the accumulated records; returns false (with a message on
  /// stderr) if the file cannot be created.
  bool Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "[\n%s\n]\n", records_.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::string records_;
};

}  // namespace hepq::bench

#endif  // HEPQUERY_BENCH_BENCH_UTIL_H_
