// Regenerates Figure 4 of the paper: the compute/IO balance of every
// engine on every query —
//   (a) total CPU time,
//   (b) bytes scanned per event (with the two "ideal" reference lines),
//   (c) end-to-end processing throughput per core.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "queries/adl.h"

using hepq::queries::EngineKind;
using hepq::queries::EngineKindName;
using hepq::queries::QueryRunOutput;
using hepq::queries::RunAdlQuery;

int main(int argc, char** argv) {
  const int threads = hepq::bench::ParseThreadsFlag(argc, argv);
  const hepq::queries::VexprTier tier =
      hepq::bench::ParseVexprTierFlag(argc, argv);
  const int64_t events = hepq::bench::BenchEvents();
  const std::string path = hepq::bench::BenchDataset(events);

  const EngineKind engines[] = {EngineKind::kRdf, EngineKind::kBigQueryShape,
                                EngineKind::kPrestoShape, EngineKind::kDoc};

  std::printf(
      "measured with --threads=%d --vexpr-tier=%s (CPU totals are summed "
      "across workers; histograms are bit-identical for any thread count "
      "and tier)\n",
      threads, hepq::queries::VexprTierName(tier));

  // Measure everything once.
  hepq::queries::RunOptions run_options;
  run_options.num_threads = threads;
  run_options.vexpr_tier = tier;
  QueryRunOutput results[9][4];
  for (int q = 1; q <= 8; ++q) {
    for (int e = 0; e < 4; ++e) {
      auto result = RunAdlQuery(engines[e], q, path, run_options);
      result.status().Check();
      results[q][e] = std::move(*result);
    }
  }

  hepq::bench::PrintHeaderLine("Figure 4a: total CPU time [s]");
  std::printf("%-6s", "Query");
  for (int e = 0; e < 4; ++e) std::printf("%16s", EngineKindName(engines[e]));
  std::printf("\n");
  for (int q = 1; q <= 8; ++q) {
    std::printf("Q%-5d", q);
    for (int e = 0; e < 4; ++e) {
      std::printf("%16.4f", results[q][e].cpu_seconds);
    }
    std::printf("\n");
  }

  hepq::bench::PrintHeaderLine(
      "Figure 4b: bytes scanned per event (storage reads; 'ideal' = "
      "projected leaf widths, 'BQ billed' = 8 B/entry accounting)");
  std::printf("%-6s", "Query");
  for (int e = 0; e < 4; ++e) std::printf("%16s", EngineKindName(engines[e]));
  std::printf("%16s%16s\n", "ideal(width)", "BQ billed");
  for (int q = 1; q <= 8; ++q) {
    std::printf("Q%-5d", q);
    for (int e = 0; e < 4; ++e) {
      std::printf("%16.1f", static_cast<double>(
                                results[q][e].scan.storage_bytes) /
                                static_cast<double>(events));
    }
    // Ideal/billed come from the pushdown-enabled (BigQuery-shape) run.
    const auto& bq = results[q][1];
    std::printf("%16.1f%16.1f\n",
                static_cast<double>(bq.scan.ideal_bytes) /
                    static_cast<double>(events),
                static_cast<double>(bq.scan.logical_bytes_bq) /
                    static_cast<double>(events));
  }

  hepq::bench::PrintHeaderLine(
      "Figure 4c: processing throughput per core [MB/s]");
  std::printf("%-6s", "Query");
  for (int e = 0; e < 4; ++e) std::printf("%16s", EngineKindName(engines[e]));
  std::printf("\n");
  for (int q = 1; q <= 8; ++q) {
    std::printf("Q%-5d", q);
    for (int e = 0; e < 4; ++e) {
      const double mb =
          static_cast<double>(results[q][e].scan.storage_bytes) / 1e6;
      const double cpu = results[q][e].cpu_seconds;
      std::printf("%16.3f", cpu > 0 ? mb / cpu : 0.0);
    }
    std::printf("\n");
  }

  hepq::bench::BenchJson json("fig4_compute_io");
  for (int q = 1; q <= 8; ++q) {
    for (int e = 0; e < 4; ++e) {
      const QueryRunOutput& r = results[q][e];
      json.Add(std::string("Q") + std::to_string(q), EngineKindName(engines[e]),
               r.cpu_seconds, r.scan.storage_bytes, r.scan.decoded_bytes,
               r.scan.rows_pruned);
    }
  }
  json.Write();

  // One traced run per frontend (Q5: the single-jet-cut query exercises
  // decode, pruning, late materialization, and the event loop) so CI
  // uploads a RunReport + Chrome trace per engine alongside the tables.
  for (int e = 0; e < 4; ++e) {
    const std::string engine_name = EngineKindName(engines[e]);
    hepq::obs::TraceSession session;
    session.Start();
    auto traced = RunAdlQuery(engines[e], 5, path, run_options);
    session.Stop();
    traced.status().Check();
    hepq::obs::RunInfo info;
    info.query = "Q5";
    info.engine = engine_name;
    info.threads = threads;
    info.events_processed = traced->events_processed;
    info.wall_seconds = traced->wall_seconds;
    info.cpu_seconds = traced->cpu_seconds;
    const hepq::obs::RunReport report =
        hepq::obs::BuildRunReport(session, info, traced->scan);
    const std::string report_path = "RUNREPORT_fig4_" + engine_name + ".json";
    const std::string trace_path = "TRACE_fig4_" + engine_name + ".json";
    hepq::obs::WriteTextFile(report_path, hepq::obs::ReportToJson(report))
        .Check();
    hepq::obs::WriteTextFile(trace_path, hepq::obs::ChromeTraceJson(session))
        .Check();
    std::printf("wrote %s and %s\n", report_path.c_str(), trace_path.c_str());
  }

  std::printf(
      "\nExpected shape (paper Figure 4): CPU time ordering doc >> presto\n"
      "shape > bigquery shape > rdataframe, with Q6 >> Q8 > Q7/Q5 within\n"
      "each engine; presto shape reads more bytes/event than bigquery\n"
      "shape on struct-heavy queries (no pushdown into structs); the doc\n"
      "engine reads the whole file for all but the simplest queries\n"
      "(projections pushed only for Q1/Q2, as the paper observes for\n"
      "Rumble); BQ billed bytes ~2x the ideal\n"
      "width bytes; per-core throughput far below raw storage bandwidth\n"
      "on Q6 (compute-bound).\n");
  return 0;
}
