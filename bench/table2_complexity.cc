// Regenerates Table 2 of the paper: the per-query complexity formulae and
// the measured number of records / record combinations explored per event.
// The measurement comes from the instrumented expression engine (every
// element visit and combination evaluation increments an ops counter).

#include <cstdio>

#include "bench/bench_util.h"
#include "queries/adl.h"

namespace {

struct Row {
  int query;
  const char* formula;
  double paper_ops_per_event;
};

constexpr Row kRows[] = {
    {1, "1", 1.0},
    {2, "J", 3.2},
    {3, "J", 3.2},
    {4, "1 + J", 4.2},
    {5, "1 + C(M,2)", 1.6},
    {6, "1 + C(J,3)", 42.8},
    {7, "(E+M) * sigma(J)", 1.5},
    {8, "E*M + E + M + 1", 11.6},
};

}  // namespace

int main() {
  using hepq::queries::EngineKind;
  using hepq::queries::RunAdlQuery;

  const int64_t events = hepq::bench::BenchEvents();
  const std::string path = hepq::bench::BenchDataset(events);

  hepq::bench::PrintHeaderLine("Table 2: query complexity (#ops/event)");
  std::printf("data set: %lld events (%s)\n\n",
              static_cast<long long>(events), path.c_str());
  std::printf("%-6s %-20s %14s %14s %10s\n", "Query", "Complexity",
              "paper ops/ev", "measured", "ratio");

  for (const Row& row : kRows) {
    auto result = RunAdlQuery(EngineKind::kBigQueryShape, row.query, path);
    result.status().Check();
    const double measured = static_cast<double>(result->ops) /
                            static_cast<double>(result->events_processed);
    std::printf("(Q%d)  %-20s %14.1f %14.2f %10.2f\n", row.query,
                row.formula, row.paper_ops_per_event, measured,
                measured / row.paper_ops_per_event);
  }

  std::printf(
      "\nNotes: ops counts element visits plus combination evaluations in\n"
      "the per-event expression engine, including the one base record\n"
      "access per event (the '1 +' terms). Q2/Q3 measured values include\n"
      "that base access, the paper's 'J' column does not; Q7/Q8 depend on\n"
      "lepton-multiplicity correlations of the real CMS data that the\n"
      "synthetic generator only approximates (see EXPERIMENTS.md).\n"
      "Expected shape: Q6 dominates by an order of magnitude; Q1 is 1.\n");
  return 0;
}
