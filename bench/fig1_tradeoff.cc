// Regenerates Figure 1 of the paper: the running-time / cost trade-off of
// every system on every ADL query. Each engine is executed for real on the
// local data set (with --threads=N workers of the shared execution
// runtime, default 1); the measured CPU seconds and scanned bytes are
// extrapolated to the paper's 53.4M-event data set and fed into the cloud
// deployment simulator (instances, elasticity, contention, pricing — see
// src/cloud/simulator.h and DESIGN.md). Multi-core scaling in the figure
// is the simulator's model; a real multi-core --threads run on a bigger
// host cross-checks it without replacing it.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "cloud/simulator.h"
#include "queries/adl.h"

using hepq::cloud::CloudSystem;
using hepq::cloud::CloudSystemName;
using hepq::cloud::InstanceType;
using hepq::cloud::IsQaas;
using hepq::cloud::M5dInstances;
using hepq::cloud::MeasuredQuery;
using hepq::cloud::SimulateOn;
using hepq::queries::EngineKind;
using hepq::queries::RunAdlQuery;

namespace {

EngineKind MeasurementEngine(CloudSystem system) {
  switch (system) {
    case CloudSystem::kBigQuery:
    case CloudSystem::kBigQueryExternal:
      return EngineKind::kBigQueryShape;
    case CloudSystem::kAthenaV1:
    case CloudSystem::kAthenaV2:
    case CloudSystem::kPresto:
      return EngineKind::kPrestoShape;
    case CloudSystem::kRDataFrame:
      return EngineKind::kRdf;
    case CloudSystem::kRumble:
      return EngineKind::kDoc;
  }
  return EngineKind::kRdf;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = hepq::bench::ParseThreadsFlag(argc, argv);
  const int64_t events = hepq::bench::BenchEvents();
  const std::string path = hepq::bench::BenchDataset(events);

  hepq::bench::PrintHeaderLine(
      "Figure 1: running time / cost trade-off (simulated deployments "
      "driven by measured engine runs)");
  std::printf(
      "local measurement: %lld events, --threads=%d; extrapolated to %lld "
      "events / %d row groups as in the paper\n"
      "(multi-core wall times below come from the simulator's scaling "
      "model; --threads > 1 measures real multi-core CPU seconds to "
      "cross-check it, results are bit-identical to 1 thread)\n\n",
      static_cast<long long>(events), threads,
      static_cast<long long>(hepq::bench::kPaperEvents),
      hepq::bench::kPaperRowGroups);

  const CloudSystem systems[] = {
      CloudSystem::kBigQuery,   CloudSystem::kBigQueryExternal,
      CloudSystem::kAthenaV2,   CloudSystem::kPresto,
      CloudSystem::kRDataFrame, CloudSystem::kRumble,
  };

  // Measure each engine once per query, shared across systems.
  hepq::queries::RunOptions run_options;
  run_options.num_threads = threads;
  std::map<int, hepq::queries::QueryRunOutput> measured_by_engine[8 + 1];
  for (int q = 1; q <= 8; ++q) {
    for (EngineKind engine :
         {EngineKind::kRdf, EngineKind::kBigQueryShape,
          EngineKind::kPrestoShape, EngineKind::kDoc}) {
      auto result = RunAdlQuery(engine, q, path, run_options);
      result.status().Check();
      measured_by_engine[q][static_cast<int>(engine)] = std::move(*result);
    }
  }

  std::printf("%-5s %-14s %-14s %12s %14s %10s\n", "Query", "System",
              "Instance", "wall [s]", "cost [USD]", "workers");
  for (int q = 1; q <= 8; ++q) {
    for (CloudSystem system : systems) {
      const auto& output =
          measured_by_engine[q][static_cast<int>(MeasurementEngine(system))];
      const MeasuredQuery measured =
          hepq::bench::ExtrapolateToPaperSize(output);
      if (IsQaas(system)) {
        auto outcome = SimulateOn(system, measured, "");
        outcome.status().Check();
        std::printf("Q%-4d %-14s %-14s %12.2f %14.6f %10d\n", q,
                    CloudSystemName(system), "(elastic)",
                    outcome->wall_seconds, outcome->cost_usd,
                    outcome->workers);
      } else {
        for (const InstanceType& instance : M5dInstances()) {
          auto outcome = SimulateOn(system, measured, instance.name);
          outcome.status().Check();
          std::printf("Q%-4d %-14s %-14s %12.2f %14.6f %10d\n", q,
                      CloudSystemName(system), instance.name.c_str(),
                      outcome->wall_seconds, outcome->cost_usd,
                      outcome->workers);
        }
      }
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape (paper Figure 1): BigQuery fastest everywhere and\n"
      "~2x faster pre-loaded than external; RDataFrame the cheapest for\n"
      "Q1-Q5 with its best wall time at an intermediate instance size\n"
      "(lock contention beyond ~16 threads); Presto slower than the QaaS\n"
      "systems but cost-competitive; Rumble one to two orders of\n"
      "magnitude slower and the most expensive; Q6 dominates every\n"
      "system's runtime.\n");
  return 0;
}
