// Regenerates Figure 3 of the paper: the distribution of the number of
// particles per event for the three particle types the benchmark queries
// use. This distribution drives the compute intensity of the
// combination-heavy queries (Table 2 / Q5 / Q6 / Q8).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/histogram.h"
#include "datagen/generator.h"

using hepq::EventGenerator;
using hepq::Histogram1D;
using hepq::ListArray;

int main() {
  const int64_t events = hepq::bench::BenchEvents(200000);

  hepq::bench::PrintHeaderLine(
      "Figure 3: distribution of number of particles per event");
  std::printf("generator events: %lld\n\n", static_cast<long long>(events));

  EventGenerator generator;
  Histogram1D jets({"jets", "", 64, 0, 64});
  Histogram1D muons({"muons", "", 64, 0, 64});
  Histogram1D electrons({"electrons", "", 64, 0, 64});

  int64_t remaining = events;
  while (remaining > 0) {
    const int64_t n = std::min<int64_t>(remaining, 50000);
    auto batch = generator.GenerateBatch(n);
    const auto& jet_list =
        static_cast<const ListArray&>(*batch->ColumnByName("Jet"));
    const auto& muon_list =
        static_cast<const ListArray&>(*batch->ColumnByName("Muon"));
    const auto& electron_list =
        static_cast<const ListArray&>(*batch->ColumnByName("Electron"));
    for (int64_t i = 0; i < n; ++i) {
      jets.Fill(jet_list.list_length(i));
      muons.Fill(muon_list.list_length(i));
      electrons.Fill(electron_list.list_length(i));
    }
    remaining -= n;
  }

  std::printf("%-6s %16s %16s %16s\n", "n", "P(jets=n)", "P(muons=n)",
              "P(electrons=n)");
  const double total = static_cast<double>(events);
  for (int n = 0; n < 64; ++n) {
    const double pj = jets.BinContent(n) / total;
    const double pm = muons.BinContent(n) / total;
    const double pe = electrons.BinContent(n) / total;
    if (pj == 0.0 && pm == 0.0 && pe == 0.0) continue;
    std::printf("%-6d %16.6g %16.6g %16.6g\n", n, pj, pm, pe);
  }
  std::printf("\nmean multiplicities: jets=%.3f muons=%.3f electrons=%.3f\n",
              jets.mean(), muons.mean(), electrons.mean());
  std::printf(
      "\nExpected shape (paper Figure 3): electrons in low single digits,\n"
      "muons more frequent with higher occupancy (SingleMu data set), and\n"
      "a jet tail reaching several dozen per event — the events that make\n"
      "Q6's trijet combinatorics expensive.\n");
  return 0;
}
