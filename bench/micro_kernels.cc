// Micro-benchmarks (google-benchmark) for the building blocks whose costs
// explain the end-to-end differences between the engines, plus the
// ablations called out in DESIGN.md: compression codec choice, struct
// projection pushdown, and interpreted vs compiled per-event execution.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

#include <chrono>

#include "bench/bench_util.h"
#include "columnar/builder.h"
#include "core/fourvector.h"
#include "core/histogram.h"
#include "core/physics.h"
#include "core/rng.h"
#include "datagen/dataset.h"
#include "doc/convert.h"
#include "engine/event_query.h"
#include "engine/vexpr.h"
#include "engine/vexpr_fuse.h"
#include "exec/exec.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "fileio/compression.h"
#include "fileio/crc32.h"
#include "fileio/encoding.h"
#include "fileio/reader.h"
#include "fileio/writer.h"

// ---------------------------------------------------------------------------
// Allocation-counting hook: every global operator new bumps a counter, so
// benchmarks can report heap allocations per unit of work. The pooled
// decode path (BM_DecodeRowGroupScratch below) must show zero per row
// group in steady state.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_heap_allocations{0};
}  // namespace

// The replacement pair below intentionally backs operator new with malloc
// and operator delete with free; GCC cannot see that they match once it
// inlines them into callers and warns spuriously.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hepq {
namespace {

/// Worker count for the parallel-runtime benchmark; set by --threads=N
/// (stripped from argv in main, google-benchmark rejects unknown flags).
int g_bench_threads = 1;

std::vector<uint8_t> MakeCompressibleBuffer(size_t n) {
  Rng rng(11);
  std::vector<uint8_t> data(n);
  size_t i = 0;
  while (i < n) {
    const uint8_t v = static_cast<uint8_t>(rng.NextBelow(16));
    const size_t run = 1 + rng.NextBelow(24);
    for (size_t k = 0; k < run && i < n; ++k) data[i++] = v;
  }
  return data;
}

void BM_Crc32(benchmark::State& state) {
  const auto data = MakeCompressibleBuffer(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Crc32);

void BM_LzCompress(benchmark::State& state) {
  const auto data = MakeCompressibleBuffer(1 << 20);
  std::vector<uint8_t> out;
  for (auto _ : state) {
    Compress(Codec::kLz, data.data(), data.size(), &out).Check();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
  state.counters["ratio"] =
      static_cast<double>(data.size()) / static_cast<double>(out.size());
}
BENCHMARK(BM_LzCompress);

void BM_LzDecompress(benchmark::State& state) {
  const auto data = MakeCompressibleBuffer(1 << 20);
  std::vector<uint8_t> compressed, out;
  Compress(Codec::kLz, data.data(), data.size(), &compressed).Check();
  for (auto _ : state) {
    Decompress(Codec::kLz, compressed.data(), compressed.size(),
               data.size(), &out)
        .Check();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_LzDecompress);

void BM_RleEncodeInt32(benchmark::State& state) {
  Rng rng(13);
  std::vector<int32_t> values(1 << 18);
  for (size_t i = 0; i < values.size();) {
    const int32_t v = static_cast<int32_t>(rng.NextBelow(5));
    const size_t run = 1 + rng.NextBelow(50);
    for (size_t k = 0; k < run && i < values.size(); ++k) values[i++] = v;
  }
  std::vector<uint8_t> out;
  for (auto _ : state) {
    EncodeValues(TypeId::kInt32, Encoding::kRleVarint, values.data(),
                 values.size(), &out)
        .Check();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(values.size() * 4));
}
BENCHMARK(BM_RleEncodeInt32);

/// Decode side of RLE: long runs hit the std::fill_n fast path (one wide
/// fill per run instead of a per-element store loop).
void BM_RleDecodeInt32(benchmark::State& state) {
  Rng rng(13);
  std::vector<int32_t> values(1 << 18);
  for (size_t i = 0; i < values.size();) {
    const int32_t v = static_cast<int32_t>(rng.NextBelow(5));
    const size_t run = 1 + rng.NextBelow(50);
    for (size_t k = 0; k < run && i < values.size(); ++k) values[i++] = v;
  }
  std::vector<uint8_t> encoded;
  EncodeValues(TypeId::kInt32, Encoding::kRleVarint, values.data(),
               values.size(), &encoded)
      .Check();
  std::vector<int32_t> out(values.size());
  for (auto _ : state) {
    DecodeValues(TypeId::kInt32, Encoding::kRleVarint, encoded.data(),
                 encoded.size(), values.size(), out.data())
        .Check();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(values.size() * 4));
}
BENCHMARK(BM_RleDecodeInt32);

/// Decode side of delta-varint on near-monotonic event ids — the case the
/// writer picks delta for. Exercises the hoisted-bounds-check fast path
/// (per-byte truncation checks only in the final 10 bytes of the buffer).
void BM_DeltaDecodeInt64(benchmark::State& state) {
  Rng rng(23);
  std::vector<int64_t> values(1 << 18);
  int64_t next = 0;
  for (auto& v : values) {
    next += 1 + static_cast<int64_t>(rng.NextBelow(3));
    v = next;
  }
  std::vector<uint8_t> encoded;
  EncodeValues(TypeId::kInt64, Encoding::kDeltaVarint, values.data(),
               values.size(), &encoded)
      .Check();
  std::vector<int64_t> out(values.size());
  for (auto _ : state) {
    DecodeValues(TypeId::kInt64, Encoding::kDeltaVarint, encoded.data(),
                 encoded.size(), values.size(), out.data())
        .Check();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(values.size() * 8));
}
BENCHMARK(BM_DeltaDecodeInt64);

void BM_HistogramFill(benchmark::State& state) {
  Rng rng(17);
  std::vector<double> values(1 << 16);
  for (auto& v : values) v = rng.Uniform(-10.0, 210.0);
  for (auto _ : state) {
    Histogram1D h({"h", "", 100, 0, 200});
    for (double v : values) h.Fill(v);
    benchmark::DoNotOptimize(h.sum_weights());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_HistogramFill);

void BM_InvariantMass3(benchmark::State& state) {
  Rng rng(19);
  std::vector<PtEtaPhiM> particles(512);
  for (auto& p : particles) {
    p = {rng.Uniform(15, 100), rng.Gaussian(0, 1.5), rng.Uniform(-3, 3),
         rng.Uniform(0, 10)};
  }
  for (auto _ : state) {
    double sum = 0;
    for (size_t i = 0; i + 2 < particles.size(); i += 3) {
      sum += InvariantMass3(particles[i], particles[i + 1],
                            particles[i + 2]);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(particles.size() / 3));
}
BENCHMARK(BM_InvariantMass3);

// ---------------------------------------------------------------------------
// End-to-end kernel ablations on a shared small data set.
// ---------------------------------------------------------------------------

const std::string& AblationDataset(Codec codec) {
  static auto& lz_path = *new std::string;
  static auto& none_path = *new std::string;
  std::string& path = codec == Codec::kLz ? lz_path : none_path;
  if (path.empty()) {
    DatasetSpec spec;
    spec.num_events = 8000;
    spec.row_group_size = 4000;
    spec.codec = codec;
    path = EnsureDataset(DefaultDataDir(), spec).ValueOrDie();
  }
  return path;
}

/// Ablation: scan cost with struct projection pushdown on vs off (the
/// Athena/Presto limitation of Figure 4b).
void BM_ScanMetPt(benchmark::State& state) {
  ReaderOptions options;
  options.struct_projection_pushdown = state.range(0) != 0;
  const std::string& path = AblationDataset(Codec::kLz);
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto reader = LaqReader::Open(path, options).ValueOrDie();
    for (int g = 0; g < reader->num_row_groups(); ++g) {
      auto batch = reader->ReadRowGroup(g, {"MET.pt"});
      batch.status().Check();
      benchmark::DoNotOptimize((*batch)->num_rows());
    }
    bytes = reader->scan_stats().storage_bytes;
  }
  state.counters["storage_bytes"] = static_cast<double>(bytes);
  state.SetLabel(options.struct_projection_pushdown ? "pushdown"
                                                    : "no-pushdown");
}
BENCHMARK(BM_ScanMetPt)->Arg(1)->Arg(0);

/// Ablation: codec choice for full-width scans.
void BM_ScanFullWidth(benchmark::State& state) {
  const Codec codec = state.range(0) != 0 ? Codec::kLz : Codec::kNone;
  const std::string& path = AblationDataset(codec);
  for (auto _ : state) {
    auto reader = LaqReader::Open(path).ValueOrDie();
    for (int g = 0; g < reader->num_row_groups(); ++g) {
      auto batch = reader->ReadRowGroup(g);
      batch.status().Check();
      benchmark::DoNotOptimize((*batch)->num_rows());
    }
  }
  state.SetLabel(codec == Codec::kLz ? "lz" : "uncompressed");
}
BENCHMARK(BM_ScanFullWidth)->Arg(1)->Arg(0);

/// The zero-allocation decode path: read + checksum + decompress + decode
/// every leaf of every row group through one set of scratch buffers,
/// without materializing arrays. Arg 1 keeps the buffers warm between
/// iterations (the pooled path used by the engines); arg 0 releases their
/// capacity before every iteration (the pre-pool behaviour, one
/// allocation high-water per buffer). The allocs_per_group counter is the
/// acceptance check: it must be 0 for the pooled variant.
void BM_DecodeRowGroupScratch(benchmark::State& state) {
  const bool pooled = state.range(0) != 0;
  auto reader = LaqReader::Open(AblationDataset(Codec::kLz)).ValueOrDie();
  std::vector<std::string> leaves;
  for (const LeafDesc& leaf : reader->metadata().layout) {
    leaves.push_back(leaf.path);
  }
  const int groups = reader->num_row_groups();
  ScratchBuffers scratch;
  for (int g = 0; g < groups; ++g) {  // warm-up to high-water capacity
    for (const std::string& leaf : leaves) {
      reader->ReadLeafValues(g, leaf, &scratch).Check();
    }
  }
  uint64_t allocations = 0;
  uint64_t groups_decoded = 0;
  uint64_t decoded_bytes = 0;
  for (auto _ : state) {
    if (!pooled) scratch.Release();
    const uint64_t allocs_before =
        g_heap_allocations.load(std::memory_order_relaxed);
    const uint64_t bytes_before = reader->scan_stats().encoded_bytes;
    for (int g = 0; g < groups; ++g) {
      for (const std::string& leaf : leaves) {
        reader->ReadLeafValues(g, leaf, &scratch).Check();
      }
    }
    allocations +=
        g_heap_allocations.load(std::memory_order_relaxed) - allocs_before;
    groups_decoded += static_cast<uint64_t>(groups);
    decoded_bytes += reader->scan_stats().encoded_bytes - bytes_before;
  }
  state.counters["allocs_per_group"] =
      static_cast<double>(allocations) / static_cast<double>(groups_decoded);
  state.SetBytesProcessed(static_cast<int64_t>(decoded_bytes));
  state.SetLabel(pooled ? "pooled" : "cold-scratch");
}
BENCHMARK(BM_DecodeRowGroupScratch)->Arg(1)->Arg(0);

/// The shared execution runtime end to end: scan Jet.pt over all row
/// groups with --threads workers (default 1; per-worker readers and
/// scratch, LPT order, deterministic merge elided since the benchmark
/// only counts rows). On the 1-core bench host values > 1 measure
/// scheduling overhead, not speedup.
void BM_ParallelScanRowGroups(benchmark::State& state) {
  const std::string& path = AblationDataset(Codec::kLz);
  const std::vector<std::string> projection = {"Jet.pt"};
  for (auto _ : state) {
    exec::WorkerReaders readers(path, ReaderOptions{}, g_bench_threads);
    const FileMetadata* metadata = readers.metadata().ValueOrDie();
    std::vector<exec::RowGroupTask> tasks =
        exec::MakeRowGroupTasks(*metadata);
    const int workers = exec::EffectiveWorkers(g_bench_threads, tasks.size());
    std::atomic<int64_t> rows{0};
    exec::RunRowGroups(
        workers, std::move(tasks),
        [&](int worker, int g) -> Status {
          LaqReader* reader;
          HEPQ_ASSIGN_OR_RETURN(reader, readers.reader(worker));
          RecordBatchPtr batch;
          HEPQ_ASSIGN_OR_RETURN(
              batch,
              reader->ReadRowGroup(g, projection, readers.scratch(worker)));
          rows.fetch_add(batch->num_rows(), std::memory_order_relaxed);
          return Status::OK();
        })
        .Check();
    benchmark::DoNotOptimize(rows.load(std::memory_order_relaxed));
  }
  state.SetLabel("threads=" + std::to_string(g_bench_threads));
}
BENCHMARK(BM_ParallelScanRowGroups);

/// Ablation: compiled-style native loop vs interpreted expression tree vs
/// boxed items for the same per-event computation (count jets pt > 40) —
/// the execution-model spectrum RDataFrame / BigQuery-shape / Rumble.
void BM_CountJetsNative(benchmark::State& state) {
  auto reader = LaqReader::Open(AblationDataset(Codec::kLz)).ValueOrDie();
  auto batch = reader->ReadRowGroup(0, {"Jet.pt"}).ValueOrDie();
  const auto& list = static_cast<const ListArray&>(*batch->column(0));
  const auto& pt = static_cast<const Float32Array&>(
      *static_cast<const StructArray&>(*list.child()).child(0));
  for (auto _ : state) {
    int64_t selected = 0;
    for (int64_t row = 0; row < batch->num_rows(); ++row) {
      const uint32_t begin = list.list_offset(row);
      const uint32_t end = begin + list.list_length(row);
      int n = 0;
      for (uint32_t i = begin; i < end; ++i) {
        if (pt.Value(i) > 40.0f) ++n;
      }
      if (n >= 2) ++selected;
    }
    benchmark::DoNotOptimize(selected);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          batch->num_rows());
}
BENCHMARK(BM_CountJetsNative);

/// Shared tier decoding for the three-tier expression benchmarks: arg
/// 0 = interpret (per-row tree walk), 1 = bytecode (per-opcode batch
/// loops), 2 = simd (fused strip-mined kernels).
const char* TierLabel(int tier) {
  return tier == 0 ? "interpret" : tier == 1 ? "bytecode" : "simd";
}

engine::ExprExec TierExec(int tier) {
  if (tier == 0) return engine::ExprExec::kInterpreted;
  if (tier == 1) return engine::ExprExec::kBytecode;
  return engine::ExprExec::kSimd;
}

void BM_CountJetsExprTree(benchmark::State& state) {
  const int tier = static_cast<int>(state.range(0));
  auto reader = LaqReader::Open(AblationDataset(Codec::kLz)).ValueOrDie();
  auto batch = reader->ReadRowGroup(0, {"Jet.pt"}).ValueOrDie();
  engine::EventQuery query("bench");
  const int jets = query.DeclareList("Jet", {"pt"});
  query.AddStage(engine::Ge(
      engine::AggOverList(engine::AggKind::kCount, jets, 0,
                          engine::Gt(engine::IterMember(jets, 0, 0),
                                     engine::Lit(40.0)),
                          nullptr),
      engine::Lit(2.0)));
  query.AddHistogram({"h", "", 10, 0, 10}, engine::Lit(1.0));
  query.set_expr_exec(TierExec(tier));
  for (auto _ : state) {
    auto result = query.MakeResult();
    query.ExecuteBatch(*batch, &result).Check();
    benchmark::DoNotOptimize(result.events_selected);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          batch->num_rows());
  state.SetLabel(TierLabel(tier));
}
BENCHMARK(BM_CountJetsExprTree)->Arg(0)->Arg(1)->Arg(2);

void BM_CountJetsBoxedItems(benchmark::State& state) {
  auto reader = LaqReader::Open(AblationDataset(Codec::kLz)).ValueOrDie();
  auto batch = reader->ReadRowGroup(0).ValueOrDie();
  for (auto _ : state) {
    int64_t selected = 0;
    for (int64_t row = 0; row < batch->num_rows(); ++row) {
      const doc::ItemPtr event = doc::EventToItem(*batch, row);
      const doc::ItemPtr jets = event->Member("Jet");
      int n = 0;
      for (const doc::ItemPtr& jet : jets->Elements()) {
        if (jet->Member("pt")->AsDouble() > 40.0) ++n;
      }
      if (n >= 2) ++selected;
    }
    benchmark::DoNotOptimize(selected);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          batch->num_rows());
}
BENCHMARK(BM_CountJetsBoxedItems);

// ---------------------------------------------------------------------------
// Predicate pushdown + late materialization on a selectivity-friendly
// layout. The shared AblationDataset is deliberately unsorted (generator
// output), so its zone maps span the full value range and prune nothing;
// this benchmark writes its own clustered file — MET.pt monotone across
// row groups, as a time- or trigger-sorted skim would be — where a
// selective cut can skip most groups and pages. The acceptance bar for
// the pruned scan is >= 2x end to end.
// ---------------------------------------------------------------------------

/// Measured output of BM_SelectiveScan (index 0 = full scan, 1 = pruned),
/// exported to BENCH_micro_kernels.json by main().
struct SelectiveScanRecord {
  bool set = false;
  double cpu_s = 0;
  uint64_t bytes_scanned = 0;
  uint64_t bytes_decoded = 0;
  uint64_t rows_pruned = 0;
};
SelectiveScanRecord g_selective_scan[2];

/// 8 row groups x 4000 events, MET.pt in [100g, 100(g+1)) sorted within
/// each group, 3 jets/event with 4 leaves each. A > 700 cut touches only
/// the last group.
const std::string& SelectiveScanDataset() {
  static const auto& path = *new std::string([] {
    const std::vector<Field> jet_fields = {{"pt", DataType::Float32()},
                                           {"eta", DataType::Float32()},
                                           {"phi", DataType::Float32()},
                                           {"mass", DataType::Float32()}};
    auto schema = std::make_shared<Schema>(std::vector<Field>{
        {"MET", DataType::Struct({{"pt", DataType::Float32()}})},
        {"Jet", DataType::List(DataType::Struct(jet_fields))},
    });
    constexpr int kGroups = 8;
    constexpr int kRows = 4000;
    Rng rng(29);
    std::vector<RecordBatchPtr> batches;
    for (int g = 0; g < kGroups; ++g) {
      std::vector<float> met(kRows);
      std::vector<uint32_t> offsets(kRows + 1, 0);
      std::vector<float> pt, eta, phi, mass;
      for (int i = 0; i < kRows; ++i) {
        met[static_cast<size_t>(i)] =
            100.0f * g + 100.0f * static_cast<float>(i) / kRows;
        for (int j = 0; j < 3; ++j) {
          pt.push_back(static_cast<float>(rng.Uniform(15, 80)));
          eta.push_back(static_cast<float>(rng.Gaussian(0, 1.5)));
          phi.push_back(static_cast<float>(rng.Uniform(-3.14, 3.14)));
          mass.push_back(static_cast<float>(rng.Uniform(0, 12)));
        }
        offsets[static_cast<size_t>(i) + 1] =
            static_cast<uint32_t>(pt.size());
      }
      auto met_col = StructArray::Make({{"pt", DataType::Float32()}},
                                       {MakeFloat32Array(met)})
                         .ValueOrDie();
      auto jets =
          MakeListOfStructArray(jet_fields, offsets,
                                {MakeFloat32Array(pt), MakeFloat32Array(eta),
                                 MakeFloat32Array(phi),
                                 MakeFloat32Array(mass)})
              .ValueOrDie();
      batches.push_back(
          RecordBatch::Make(schema, {met_col, jets}).ValueOrDie());
    }
    const std::string path =
        DefaultDataDir() + "/selective_scan_clustered.laq";
    WriterOptions options;
    options.row_group_size = kRows;
    options.page_values = 512;
    WriteLaqFile(path, schema, batches, options).Check();
    return path;
  }());
  return path;
}

/// A Q2-style selective query (MET.pt > 700 keeps ~1% of events) that
/// also projects all four jet leaves. Arg 1 = pushdown + late
/// materialization on, arg 0 = full scan; histograms are bit-identical.
void BM_SelectiveScan(benchmark::State& state) {
  const bool pruning = state.range(0) != 0;
  const std::string& path = SelectiveScanDataset();
  using namespace hepq::engine;  // NOLINT(build/namespaces)
  EventQuery query("selective_scan");
  const int met = query.DeclareScalar("MET.pt");
  const int jets = query.DeclareList("Jet", {"pt", "eta", "phi", "mass"});
  query.AddStage(Gt(ScalarRef(met), Lit(700.0)));
  query.AddHistogram({"njet40", "", 10, 0, 10},
                     AggOverList(AggKind::kCount, jets, 0,
                                 Gt(IterMember(jets, 0, 0), Lit(40.0)),
                                 nullptr));
  ReaderOptions options;
  options.scan_pushdown = pruning;
  options.late_materialization = pruning;
  int64_t events = 0;
  SelectiveScanRecord record;
  for (auto _ : state) {
    auto result = query.Execute(path, options, 1);
    result.status().Check();
    benchmark::DoNotOptimize(result->events_selected);
    events += result->events_processed;
    record.set = true;
    record.cpu_s = result->cpu_seconds;
    record.bytes_scanned = result->scan.storage_bytes;
    record.bytes_decoded = result->scan.decoded_bytes;
    record.rows_pruned = result->scan.rows_pruned;
  }
  g_selective_scan[pruning ? 1 : 0] = record;
  state.SetItemsProcessed(events);
  state.counters["decoded_bytes"] =
      static_cast<double>(record.bytes_decoded);
  state.counters["rows_pruned"] = static_cast<double>(record.rows_pruned);
  state.SetLabel(pruning ? "pruned" : "full-scan");
}
BENCHMARK(BM_SelectiveScan)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// Expression evaluation: per-row virtual tree walk vs vectorized bytecode
// vs fused strip-mined kernels (engine/vexpr + engine/vexpr_fuse). Same
// Expr trees, same bindings, bit-identical outputs — only the execution
// model differs. These are the micro-scale version of the paper's
// Rumble-vs-BigQuery interpretation-overhead axis, now with the third
// tier below the bytecode VM. Per-tier costs are exported to
// BENCH_micro_kernels.json so CI can gate the simd/bytecode ratio
// against bench/baselines/micro_kernels_tiers.json.
// ---------------------------------------------------------------------------

/// Measured per-tier cost of one expression kernel (index = tier as in
/// TierLabel), exported to BENCH_micro_kernels.json by main().
struct ExprTierRecord {
  bool set = false;
  double ns_per_row = 0;
  double vops_per_row = 0;
  double fused_coverage = 0;
};
constexpr int kNumExprKernels = 2;
const char* const kExprKernelNames[kNumExprKernels] = {"expr_simple_cut",
                                                       "expr_trijet_body"};
ExprTierRecord g_expr_tiers[kNumExprKernels][3];

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A simple event-level cut over MET scalars (pure arithmetic, one shared
/// subexpression for the CSE pass to merge). Arg 0 walks the shared_ptr
/// tree once per row; arg 1 runs the per-opcode bytecode over the whole
/// batch; arg 2 runs the fused strip-mined kernels. The compiled variants
/// report allocs_per_eval, which must drop to 0 in steady state: program,
/// bindings, and scratch are all reused. The simd variant additionally
/// reports the fusion pass's coverage (fraction of source VOps absorbed
/// into superinstructions).
void BM_ExprSimpleCut(benchmark::State& state) {
  const int tier = static_cast<int>(state.range(0));
  const bool compiled = tier != 0;
  auto reader = LaqReader::Open(AblationDataset(Codec::kLz)).ValueOrDie();
  auto batch = reader->ReadRowGroup(0, {"MET.pt", "MET.phi"}).ValueOrDie();
  auto bindings = engine::BatchBindings::Bind(
                      *batch, {}, {{"MET.pt"}, {"MET.phi"}})
                      .ValueOrDie();
  using namespace hepq::engine;  // NOLINT(build/namespaces)
  const ExprPtr met = ScalarRef(0);
  const ExprPtr dphi = Call(Fn::kDeltaPhi, {ScalarRef(1), Lit(0.4)});
  const ExprPtr cut =
      And(Gt(met, Lit(25.0)),
          Or(Gt(Call(Fn::kSqrt, {Add(Mul(met, met), Mul(met, met))}),
                Mul(Lit(1.3), met)),
             Lt(Call(Fn::kAbs, {dphi}), Lit(1.0))));
  const int64_t rows = batch->num_rows();
  std::vector<double> out(static_cast<size_t>(rows));
  auto kernel = CompiledExprKernel::Compile(cut).ValueOrDie();
  VexprScratch scratch;
  scratch.vm.set_simd(tier == 2);
  if (compiled) {  // warm the register/lane pools to high-water capacity
    kernel.Eval(bindings, rows, &scratch, out.data(), nullptr).Check();
  }
  uint64_t allocations = 0;
  int64_t kernel_ns = 0;
  for (auto _ : state) {
    const uint64_t allocs_before =
        g_heap_allocations.load(std::memory_order_relaxed);
    const int64_t t0 = SteadyNowNs();
    if (compiled) {
      kernel.Eval(bindings, rows, &scratch, out.data(), nullptr).Check();
    } else {
      for (int64_t row = 0; row < rows; ++row) {
        EvalContext ctx;
        ctx.bindings = &bindings;
        ctx.row = static_cast<uint32_t>(row);
        out[static_cast<size_t>(row)] = cut->Eval(&ctx);
      }
    }
    kernel_ns += SteadyNowNs() - t0;
    allocations +=
        g_heap_allocations.load(std::memory_order_relaxed) - allocs_before;
    benchmark::DoNotOptimize(out.data());
  }
  if (compiled) {
    state.counters["allocs_per_eval"] =
        static_cast<double>(allocations) /
        static_cast<double>(state.iterations());
  }
  const VFusedPlan* fused = kernel.program().fused();
  ExprTierRecord record;
  record.set = true;
  record.ns_per_row =
      static_cast<double>(kernel_ns) /
      static_cast<double>(std::max<int64_t>(
          1, static_cast<int64_t>(state.iterations()) * rows));
  record.vops_per_row =
      fused != nullptr ? static_cast<double>(fused->num_source_ops()) : 0.0;
  record.fused_coverage =
      tier == 2 && fused != nullptr ? fused->fused_coverage() : 0.0;
  g_expr_tiers[0][tier] = record;
  if (tier == 2 && fused != nullptr) {
    state.counters["fused_coverage"] = fused->fused_coverage();
    state.counters["vops_per_row"] =
        static_cast<double>(fused->num_source_ops());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
  state.SetLabel(TierLabel(tier));
}
BENCHMARK(BM_ExprSimpleCut)->Arg(0)->Arg(1)->Arg(2);

/// The fused gate+fill against the two-pass filter shape it replaces:
/// arg 0 evaluates the predicate's 0/1 vector with the bytecode VM and
/// compacts the passing row indices in a second pass; arg 1 runs the
/// fused RunGate, which emits the indices directly from the last strip
/// temporaries without materializing the value vector. Selections are
/// bit-identical (asserted at setup).
void BM_ExprFusedGateFill(benchmark::State& state) {
  const bool fused = state.range(0) != 0;
  auto reader = LaqReader::Open(AblationDataset(Codec::kLz)).ValueOrDie();
  auto batch = reader->ReadRowGroup(0, {"MET.pt", "MET.phi"}).ValueOrDie();
  auto bindings = engine::BatchBindings::Bind(
                      *batch, {}, {{"MET.pt"}, {"MET.phi"}})
                      .ValueOrDie();
  using namespace hepq::engine;  // NOLINT(build/namespaces)
  const ExprPtr met = ScalarRef(0);
  const ExprPtr cut =
      And(Gt(met, Lit(25.0)),
          Lt(Call(Fn::kAbs,
                  {Call(Fn::kDeltaPhi, {ScalarRef(1), Lit(0.4)})}),
             Lit(1.5)));
  const int64_t rows = batch->num_rows();
  auto kernel = CompiledExprKernel::Compile(cut).ValueOrDie();
  VexprScratch scratch;
  scratch.vm.set_simd(fused);
  std::vector<double> out(static_cast<size_t>(rows));
  std::vector<uint32_t> sel(static_cast<size_t>(rows));
  {  // warm-up + cross-check: both shapes select the same rows
    std::vector<uint32_t> ref(static_cast<size_t>(rows));
    kernel.Eval(bindings, rows, &scratch, out.data(), nullptr).Check();
    int ref_kept = 0;
    for (int64_t i = 0; i < rows; ++i) {
      if (out[static_cast<size_t>(i)] != 0.0) {
        ref[static_cast<size_t>(ref_kept++)] = static_cast<uint32_t>(i);
      }
    }
    const int kept =
        kernel.Gate(bindings, rows, &scratch, sel.data(), nullptr)
            .ValueOrDie();
    if (kept != ref_kept ||
        std::memcmp(sel.data(), ref.data(),
                    static_cast<size_t>(kept) * sizeof(uint32_t)) != 0) {
      state.SkipWithError("fused gate selection mismatch");
      return;
    }
  }
  int kept = 0;
  for (auto _ : state) {
    if (fused) {
      kept = kernel.Gate(bindings, rows, &scratch, sel.data(), nullptr)
                 .ValueOrDie();
    } else {
      kernel.Eval(bindings, rows, &scratch, out.data(), nullptr).Check();
      kept = 0;
      for (int64_t i = 0; i < rows; ++i) {
        if (out[static_cast<size_t>(i)] != 0.0) {
          sel[static_cast<size_t>(kept++)] = static_cast<uint32_t>(i);
        }
      }
    }
    benchmark::DoNotOptimize(sel.data());
  }
  state.counters["kept"] = static_cast<double>(kept);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
  state.SetLabel(fused ? "fused-gate" : "eval+compact");
}
BENCHMARK(BM_ExprFusedGateFill)->Arg(0)->Arg(1);

/// The Q6-style trijet combination body: require >= 3 jets, find the
/// trijet minimizing |m(3j) - 172.5|, fill pT of the winning system and
/// the max b-tag of its jets. The inner key runs over every C(J,3)
/// combination, so this is where batching the combination frame pays the
/// most — the acceptance bar for the compiled path is >= 2x over the
/// interpreter, and the fused SoA mass_of_sum3 kernel must beat the
/// bytecode tier on top of that. Args are tiers as in TierLabel. The
/// dispatch counters (VOps retired/row, fused coverage) come from one
/// traced warm-up run's vops_retired / vops_fused counters — the same
/// numbers a profiled run reports under the vexpr_kernel stage.
void BM_ExprTrijetBody(benchmark::State& state) {
  const int tier = static_cast<int>(state.range(0));
  auto reader = LaqReader::Open(AblationDataset(Codec::kLz)).ValueOrDie();
  auto batch =
      reader
          ->ReadRowGroup(
              0, {"Jet.pt", "Jet.eta", "Jet.phi", "Jet.mass", "Jet.btag"})
          .ValueOrDie();
  using namespace hepq::engine;  // NOLINT(build/namespaces)
  EventQuery query("trijet");
  const int jets = query.DeclareList("Jet",
                                     {"pt", "eta", "phi", "mass", "btag"});
  std::vector<ExprPtr> trijet;
  for (int it = 0; it < 3; ++it) {
    for (int m = 0; m < 4; ++m) trijet.push_back(IterMember(jets, it, m));
  }
  query.AddStage(Ge(ListSize(jets), Lit(3.0)));
  query.AddStage(BestCombination(
      {ComboLoop{jets, 0}, ComboLoop{jets, 1}, ComboLoop{jets, 2}},
      /*filter=*/nullptr,
      Abs(Sub(Call(Fn::kInvMass3, trijet), Lit(172.5)))));
  query.AddHistogram({"pt3", "", 100, 15, 40}, Call(Fn::kSumPt3, trijet));
  constexpr int kBtag = 4;
  query.AddHistogram(
      {"btag", "", 100, 0, 1},
      Call(Fn::kMax2, {Call(Fn::kMax2, {IterMember(jets, 0, kBtag),
                                        IterMember(jets, 1, kBtag)}),
                       IterMember(jets, 2, kBtag)}));
  query.set_expr_exec(TierExec(tier));
  double vops_per_row = 0.0;
  double fused_coverage = 0.0;
  if (tier == 2) {  // traced warm-up: pull the dispatch counters
    obs::TraceSession session;
    session.Start();
    auto result = query.MakeResult();
    query.ExecuteBatch(*batch, &result).Check();
    session.Stop();
    const obs::RunReport report =
        obs::BuildRunReport(session, obs::RunInfo{}, ScanStats{});
    uint64_t retired = 0;
    uint64_t fused = 0;
    for (const obs::CounterSummary& c : report.counters) {
      if (c.name == "vops_retired") retired += c.count;
      if (c.name == "vops_fused") fused += c.count;
    }
    vops_per_row = static_cast<double>(retired) /
                   static_cast<double>(std::max<int64_t>(1,
                                                         batch->num_rows()));
    if (retired > 0) {
      fused_coverage =
          static_cast<double>(fused) / static_cast<double>(retired);
    }
  }
  int64_t kernel_ns = 0;
  for (auto _ : state) {
    const int64_t t0 = SteadyNowNs();
    auto result = query.MakeResult();
    query.ExecuteBatch(*batch, &result).Check();
    kernel_ns += SteadyNowNs() - t0;
    benchmark::DoNotOptimize(result.events_selected);
  }
  ExprTierRecord record;
  record.set = true;
  record.ns_per_row =
      static_cast<double>(kernel_ns) /
      static_cast<double>(std::max<int64_t>(
          1, static_cast<int64_t>(state.iterations()) * batch->num_rows()));
  record.vops_per_row = vops_per_row;
  record.fused_coverage = tier == 2 ? fused_coverage : 0.0;
  g_expr_tiers[1][tier] = record;
  if (tier == 2) {
    state.counters["fused_coverage"] = fused_coverage;
    state.counters["vops_per_row"] = vops_per_row;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          batch->num_rows());
  state.SetLabel(TierLabel(tier));
}
BENCHMARK(BM_ExprTrijetBody)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace hepq

// Custom main instead of BENCHMARK_MAIN(): google-benchmark rejects flags
// it does not know, so --threads=N (consumed by BM_ParallelScanRowGroups)
// is stripped from argv before Initialize sees it.
int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const int v = std::atoi(argv[i] + 10);
      if (v > 0) hepq::g_bench_threads = v;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Machine-readable companion for the selective-scan ablation and the
  // expression-tier measurements (consumed by CI as an artifact; the
  // tier records feed the simd-regression gate). Only written when the
  // producing benchmarks ran, so --benchmark_filter on other kernels
  // stays file-free.
  bool any_tier = false;
  for (int k = 0; k < hepq::kNumExprKernels; ++k) {
    for (int t = 0; t < 3; ++t) any_tier |= hepq::g_expr_tiers[k][t].set;
  }
  if (hepq::g_selective_scan[0].set || hepq::g_selective_scan[1].set ||
      any_tier) {
    hepq::bench::BenchJson json("micro_kernels");
    const char* labels[2] = {"full-scan", "pruned"};
    for (int i = 0; i < 2; ++i) {
      const auto& r = hepq::g_selective_scan[i];
      if (!r.set) continue;
      json.Add("selective_scan", labels[i], r.cpu_s, r.bytes_scanned,
               r.bytes_decoded, r.rows_pruned);
    }
    for (int k = 0; k < hepq::kNumExprKernels; ++k) {
      for (int t = 0; t < 3; ++t) {
        const auto& r = hepq::g_expr_tiers[k][t];
        if (!r.set) continue;
        json.AddTier(hepq::kExprKernelNames[k], hepq::TierLabel(t),
                     r.ns_per_row, r.vops_per_row, r.fused_coverage);
      }
    }
    json.Write();
  }
  return 0;
}
