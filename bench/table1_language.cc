// Regenerates Table 1 of the paper: the language feature matrix (R1.1 to
// R3.5) and the conciseness metrics of the eight ADL benchmark queries in
// the five dialects.

#include <cstdio>

#include "bench/bench_util.h"
#include "lang/corpus.h"
#include "lang/features.h"
#include "lang/metrics.h"

using hepq::lang::Dialect;
using hepq::lang::DialectName;
using hepq::lang::DialectSummary;
using hepq::lang::FeatureMatrix;
using hepq::lang::kAllDialects;
using hepq::lang::SummarizeDialect;
using hepq::lang::SupportToString;

int main() {
  hepq::bench::PrintHeaderLine(
      "Table 1: functionality of general-purpose systems for HEP");

  std::printf("%-34s", "");
  for (Dialect d : kAllDialects) std::printf("%12s", DialectName(d));
  std::printf("\n");
  for (const auto& row : FeatureMatrix()) {
    std::printf("(%s) %-28s", row.id.c_str(), row.label.c_str());
    for (Dialect d : kAllDialects) {
      std::printf("%12s", SupportToString(row.ForDialect(d)).c_str());
    }
    std::printf("\n");
  }

  std::printf("\nConciseness metrics (8 queries + shared library code):\n");
  std::printf("%-34s", "");
  for (Dialect d : kAllDialects) std::printf("%12s", DialectName(d));
  std::printf("\n");

  DialectSummary summaries[5];
  int i = 0;
  for (Dialect d : kAllDialects) {
    auto summary = SummarizeDialect(d);
    summary.status().Check();
    summaries[i++] = *summary;
  }
  auto print_row = [&](const char* label, auto getter) {
    std::printf("%-34s", label);
    for (const DialectSummary& s : summaries) {
      const double v = static_cast<double>(getter(s));
      if (v == static_cast<int>(v)) {
        std::printf("%12d", static_cast<int>(v));
      } else {
        std::printf("%12.1f", v);
      }
    }
    std::printf("\n");
  };
  print_row("#characters",
            [](const DialectSummary& s) { return s.characters; });
  print_row("#lines", [](const DialectSummary& s) { return s.lines; });
  print_row("#clauses", [](const DialectSummary& s) { return s.clauses; });
  print_row("#average clauses/query", [](const DialectSummary& s) {
    return s.avg_clauses_per_query;
  });
  print_row("#unique clauses",
            [](const DialectSummary& s) { return s.unique_clauses; });
  print_row("#average unique clauses/query", [](const DialectSummary& s) {
    return s.avg_unique_clauses_per_query;
  });

  std::printf(
      "\nPaper reference (Table 1): chars 6.8k/3.4k/6.7k/3.8k/11k, lines\n"
      "344/170/262/106/236 for Athena/BigQuery/Presto/JSONiq/RDataFrame.\n"
      "Expected shape: BigQuery and JSONiq most concise; Athena and Presto\n"
      "verbose; RDataFrame needs the most characters.\n");
  return 0;
}
