// Regenerates Figure 2 of the paper: end-to-end running time as a
// function of the data-set size (subsets of 1000 * 2^i events). The local
// engines run for real at each size; the simulated wall time uses the
// paper's deployment models (m5d.12xlarge for RDataFrame, m5d.24xlarge
// for the other self-managed systems, elastic for QaaS), so the plateau
// behaviour produced by row-group-granular parallelism is visible.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cloud/simulator.h"
#include "datagen/dataset.h"
#include "queries/adl.h"

using hepq::DatasetSpec;
using hepq::EnsureDataset;
using hepq::cloud::CloudSystem;
using hepq::cloud::CloudSystemName;
using hepq::cloud::MeasuredQuery;
using hepq::cloud::SimulateOn;
using hepq::queries::EngineKind;
using hepq::queries::RunAdlQuery;

namespace {

/// The paper's row-group geometry: ~400k events per group. Scaled to the
/// bench data so small subsets stay single-group (the single-threaded
/// region of Figure 2) and large ones become parallel.
constexpr int64_t kRowGroupEvents = 4000;

struct SystemUnderTest {
  CloudSystem system;
  EngineKind engine;
  const char* instance;  // "" for QaaS
};

constexpr SystemUnderTest kSystems[] = {
    {CloudSystem::kBigQuery, EngineKind::kBigQueryShape, ""},
    {CloudSystem::kAthenaV1, EngineKind::kPrestoShape, ""},
    {CloudSystem::kAthenaV2, EngineKind::kPrestoShape, ""},
    {CloudSystem::kPresto, EngineKind::kPrestoShape, "m5d.24xlarge"},
    {CloudSystem::kRDataFrame, EngineKind::kRdf, "m5d.12xlarge"},
    {CloudSystem::kRumble, EngineKind::kDoc, "m5d.24xlarge"},
};

}  // namespace

int main() {
  const int64_t max_events = hepq::bench::BenchEvents(32000);

  hepq::bench::PrintHeaderLine(
      "Figure 2: impact of data size on end-to-end running time "
      "(simulated deployments driven by measured runs)");
  std::printf("row group size: %lld events\n\n",
              static_cast<long long>(kRowGroupEvents));
  std::printf("%-5s %-12s %12s %10s %14s %12s\n", "Query", "System",
              "events", "groups", "sim wall [s]", "meas cpu [s]");

  std::vector<int64_t> sizes;
  for (int64_t n = 1000; n < max_events; n *= 2) sizes.push_back(n);
  sizes.push_back(max_events);

  // Like the paper, heavy query/system combinations are bounded: the doc
  // engine (Rumble stand-in) only runs the largest sizes for cheap
  // queries.
  const int queries[] = {1, 4, 5, 6};
  for (int q : queries) {
    for (const SystemUnderTest& sut : kSystems) {
      for (int64_t n : sizes) {
        if (sut.engine == EngineKind::kDoc && q == 6 && n > 8000) {
          continue;  // paper: Rumble Q6 capped and extrapolated
        }
        DatasetSpec spec;
        spec.num_events = n;
        spec.row_group_size = std::min<int64_t>(kRowGroupEvents, n);
        auto path = EnsureDataset(hepq::DefaultDataDir(), spec);
        path.status().Check();
        auto result = RunAdlQuery(sut.engine, q, *path);
        result.status().Check();

        MeasuredQuery measured;
        measured.cpu_seconds = result->cpu_seconds;
        measured.storage_bytes = result->scan.storage_bytes;
        measured.logical_bytes_bq = result->scan.logical_bytes_bq;
        measured.row_groups = static_cast<int>(
            (n + spec.row_group_size - 1) / spec.row_group_size);
        measured.events = n;
        auto outcome = SimulateOn(sut.system, measured, sut.instance);
        outcome.status().Check();
        std::printf("Q%-4d %-12s %12lld %10d %14.4f %12.4f\n", q,
                    CloudSystemName(sut.system), static_cast<long long>(n),
                    measured.row_groups, outcome->wall_seconds,
                    result->cpu_seconds);
      }
      std::printf("\n");
    }
  }

  std::printf(
      "Expected shape (paper Figure 2): running time grows with size while\n"
      "the data fits one row group (single-threaded region), then\n"
      "plateaus once parallelization across row groups kicks in; QaaS\n"
      "systems stay essentially flat; self-managed systems rise again\n"
      "when there are more row groups than cores; Athena v2 beats v1 on\n"
      "every query, most visibly on the complex ones (paper: Q6/Q8).\n");
  return 0;
}
