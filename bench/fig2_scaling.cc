// Regenerates Figure 2 of the paper: end-to-end running time as a
// function of the data-set size (subsets of 1000 * 2^i events). The local
// engines run for real at each size; the simulated wall time uses the
// paper's deployment models (m5d.12xlarge for RDataFrame, m5d.24xlarge
// for the other self-managed systems, elastic for QaaS), so the plateau
// behaviour produced by row-group-granular parallelism is visible.
//
// `--measured` switches to real scale-out runs instead of the simulator:
// a sharded dataset is generated once, each (query, procs) point runs the
// query through the multi-process scatter/gather coordinator (1 proc runs
// in-process), and the records — measured wall/cpu plus the simulator's
// wall for the same measured work as the reconciliation column — are
// written to BENCH_fig2.json.
//
//   fig2_scaling --measured [--shards=N] [--events-per-shard=M]
//                [--procs=1,2,4] [--threads=T] [--queries=1,4,5,6]
//                [--hepq-run=path] [--dir=data-dir]
//
// --hepq-run names the worker binary (default "tools/hepq_run", correct
// when invoked from the build directory).

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cloud/simulator.h"
#include "datagen/dataset.h"
#include "fileio/dataset_reader.h"
#include "queries/adl.h"
#include "scatter/scatter.h"

using hepq::DatasetSpec;
using hepq::EnsureDataset;
using hepq::cloud::CloudSystem;
using hepq::cloud::CloudSystemName;
using hepq::cloud::MeasuredQuery;
using hepq::cloud::SimulateOn;
using hepq::queries::EngineKind;
using hepq::queries::RunAdlQuery;

namespace {

/// The paper's row-group geometry: ~400k events per group. Scaled to the
/// bench data so small subsets stay single-group (the single-threaded
/// region of Figure 2) and large ones become parallel.
constexpr int64_t kRowGroupEvents = 4000;

struct SystemUnderTest {
  CloudSystem system;
  EngineKind engine;
  const char* instance;  // "" for QaaS
};

constexpr SystemUnderTest kSystems[] = {
    {CloudSystem::kBigQuery, EngineKind::kBigQueryShape, ""},
    {CloudSystem::kAthenaV1, EngineKind::kPrestoShape, ""},
    {CloudSystem::kAthenaV2, EngineKind::kPrestoShape, ""},
    {CloudSystem::kPresto, EngineKind::kPrestoShape, "m5d.24xlarge"},
    {CloudSystem::kRDataFrame, EngineKind::kRdf, "m5d.12xlarge"},
    {CloudSystem::kRumble, EngineKind::kDoc, "m5d.24xlarge"},
};

std::vector<int> ParseIntList(const char* csv) {
  std::vector<int> values;
  for (const char* p = csv; *p != '\0';) {
    values.push_back(std::atoi(p));
    const char* comma = std::strchr(p, ',');
    if (comma == nullptr) break;
    p = comma + 1;
  }
  return values;
}

/// Real scale-out Figure 2: wall time vs process count over a sharded
/// dataset, with the cloud simulator run on the same measurement for
/// reconciliation (the simulator's scale-out model vs an actual fork).
int RunMeasured(int argc, char** argv) {
  hepq::ShardedDatasetSpec spec;
  spec.num_shards = 4;
  spec.events_per_shard = 0;  // derived below
  int threads = hepq::bench::ParseThreadsFlag(argc, argv, 1);
  std::vector<int> procs_list = {1, 2, 4};
  std::vector<int> queries = {1, 4, 5, 6};
  std::string hepq_run = "tools/hepq_run";
  std::string dir = hepq::DefaultDataDir();
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      spec.num_shards = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--events-per-shard=", 19) == 0) {
      spec.events_per_shard = std::atoll(argv[i] + 19);
    } else if (std::strncmp(argv[i], "--procs=", 8) == 0) {
      procs_list = ParseIntList(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      queries = ParseIntList(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--hepq-run=", 11) == 0) {
      hepq_run = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--dir=", 6) == 0) {
      dir = argv[i] + 6;
    }
  }
  if (spec.num_shards < 1 || procs_list.empty() || queries.empty()) {
    std::fprintf(stderr, "--shards, --procs, --queries must be nonempty\n");
    return 2;
  }
  if (spec.events_per_shard <= 0) {
    spec.events_per_shard =
        std::max<int64_t>(1000, hepq::bench::BenchEvents(20000) /
                                    spec.num_shards);
  }
  spec.row_group_size = std::max<int64_t>(1000, spec.events_per_shard / 4);

  bool needs_worker_binary = false;
  for (int p : procs_list) needs_worker_binary |= p > 1;
  struct stat st;
  if (needs_worker_binary &&
      (::stat(hepq_run.c_str(), &st) != 0 || (st.st_mode & S_IXUSR) == 0)) {
    std::fprintf(stderr,
                 "error: worker binary '%s' not found; pass "
                 "--hepq-run=path/to/hepq_run\n",
                 hepq_run.c_str());
    return 2;
  }

  auto dataset = hepq::EnsureShardedDataset(dir, spec);
  dataset.status().Check();
  auto files = hepq::ListLaqFiles(*dataset);
  files.status().Check();
  const int row_groups =
      spec.num_shards * static_cast<int>((spec.events_per_shard +
                                          spec.row_group_size - 1) /
                                         spec.row_group_size);

  hepq::bench::PrintHeaderLine(
      "Figure 2 (measured): end-to-end running time vs process count "
      "(multi-process scatter/gather over a sharded dataset)");
  std::printf("dataset: %s (%d shards x %lld events, %d row groups)\n",
              dataset->c_str(), spec.num_shards,
              static_cast<long long>(spec.events_per_shard), row_groups);
  std::printf("threads per process: %d\n\n", threads);
  std::printf("%-5s %6s %8s %12s %12s %9s %14s\n", "Query", "procs",
              "threads", "wall [s]", "cpu [s]", "speedup", "sim wall [s]");

  hepq::bench::BenchJson json("fig2");
  for (int q : queries) {
    double base_wall = 0.0;
    for (int procs : procs_list) {
      const auto t0 = std::chrono::steady_clock::now();
      hepq::Result<hepq::queries::QueryRunOutput> out = [&] {
        if (procs <= 1) {
          hepq::queries::RunOptions options;
          options.num_threads = threads;
          return RunAdlQuery(EngineKind::kRdf, q, *dataset, options);
        }
        return hepq::scatter::RunScattered(
            *files, procs, [&](hepq::scatter::ShardRange range) {
              return std::vector<std::string>{
                  hepq_run, std::to_string(q), "rdf", "--data=" + *dataset,
                  "--threads=" + std::to_string(threads),
                  "--worker-shards=" + std::to_string(range.begin) + ":" +
                      std::to_string(range.end)};
            });
      }();
      out.status().Check();
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      if (procs == procs_list.front()) base_wall = wall;
      const double speedup = wall > 0.0 ? base_wall / wall : 0.0;

      // Reconciliation: feed the same measured work into the cloud
      // simulator's RDataFrame deployment model. The simulator predicts
      // scale-out from row-group-granular parallelism; the measured wall
      // shows what a real fork/merge achieves on this host.
      MeasuredQuery measured;
      measured.cpu_seconds = out->cpu_seconds;
      measured.storage_bytes = out->scan.storage_bytes;
      measured.logical_bytes_bq = out->scan.logical_bytes_bq;
      measured.row_groups = row_groups;
      measured.events = out->events_processed;
      auto sim = SimulateOn(CloudSystem::kRDataFrame, measured,
                            "m5d.12xlarge");
      sim.status().Check();

      std::printf("Q%-4d %6d %8d %12.4f %12.4f %8.2fx %14.4f\n", q, procs,
                  threads, wall, out->cpu_seconds, speedup,
                  sim->wall_seconds);
      char query_name[8];
      std::snprintf(query_name, sizeof(query_name), "Q%d", q);
      json.AddScaling(query_name, "rdataframe", procs, threads,
                      out->events_processed, wall, out->cpu_seconds, speedup,
                      sim->wall_seconds);
    }
    std::printf("\n");
  }
  json.Write();
  std::printf(
      "Reconciliation: measured wall should fall with procs until per-\n"
      "process shard counts stop shrinking (ranges differ by at most one\n"
      "shard), mirroring the simulator's row-group plateau; cpu stays\n"
      "~constant (same work, different partitioning).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--measured") == 0) {
      return RunMeasured(argc, argv);
    }
  }
  const int64_t max_events = hepq::bench::BenchEvents(32000);

  hepq::bench::PrintHeaderLine(
      "Figure 2: impact of data size on end-to-end running time "
      "(simulated deployments driven by measured runs)");
  std::printf("row group size: %lld events\n\n",
              static_cast<long long>(kRowGroupEvents));
  std::printf("%-5s %-12s %12s %10s %14s %12s\n", "Query", "System",
              "events", "groups", "sim wall [s]", "meas cpu [s]");

  std::vector<int64_t> sizes;
  for (int64_t n = 1000; n < max_events; n *= 2) sizes.push_back(n);
  sizes.push_back(max_events);

  // Like the paper, heavy query/system combinations are bounded: the doc
  // engine (Rumble stand-in) only runs the largest sizes for cheap
  // queries.
  const int queries[] = {1, 4, 5, 6};
  for (int q : queries) {
    for (const SystemUnderTest& sut : kSystems) {
      for (int64_t n : sizes) {
        if (sut.engine == EngineKind::kDoc && q == 6 && n > 8000) {
          continue;  // paper: Rumble Q6 capped and extrapolated
        }
        DatasetSpec spec;
        spec.num_events = n;
        spec.row_group_size = std::min<int64_t>(kRowGroupEvents, n);
        auto path = EnsureDataset(hepq::DefaultDataDir(), spec);
        path.status().Check();
        auto result = RunAdlQuery(sut.engine, q, *path);
        result.status().Check();

        MeasuredQuery measured;
        measured.cpu_seconds = result->cpu_seconds;
        measured.storage_bytes = result->scan.storage_bytes;
        measured.logical_bytes_bq = result->scan.logical_bytes_bq;
        measured.row_groups = static_cast<int>(
            (n + spec.row_group_size - 1) / spec.row_group_size);
        measured.events = n;
        auto outcome = SimulateOn(sut.system, measured, sut.instance);
        outcome.status().Check();
        std::printf("Q%-4d %-12s %12lld %10d %14.4f %12.4f\n", q,
                    CloudSystemName(sut.system), static_cast<long long>(n),
                    measured.row_groups, outcome->wall_seconds,
                    result->cpu_seconds);
      }
      std::printf("\n");
    }
  }

  std::printf(
      "Expected shape (paper Figure 2): running time grows with size while\n"
      "the data fits one row group (single-threaded region), then\n"
      "plateaus once parallelization across row groups kicks in; QaaS\n"
      "systems stay essentially flat; self-managed systems rise again\n"
      "when there are more row groups than cores; Athena v2 beats v1 on\n"
      "every query, most visibly on the complex ones (paper: Q6/Q8).\n");
  return 0;
}
