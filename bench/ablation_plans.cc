// Ablation bench for the design choices DESIGN.md calls out. Each section
// isolates ONE variable:
//   1. plan shape  — array expressions inside the scan (BigQuery shape)
//                    vs CROSS JOIN UNNEST + GROUP BY (Presto shape), both
//                    reading through the SAME pushdown-enabled reader;
//   2. struct projection pushdown — the same per-event plan through a
//                    reader with pushdown on vs off;
//   3. execution model — columnar expressions vs boxed items for the same
//                    query (Q1, where plan shape is trivial);
//   4. expression execution — the full tier ladder: per-row tree-walking
//                    interpretation vs the vectorized bytecode VM vs the
//                    fused strip-mined kernels (engine/vexpr_fuse), same
//                    plans, bit-identical histograms across all three;
//   5. predicate pushdown + late materialization — zone-map pruning on vs
//                    off for every query on every frontend;
//   6. layout optimization — the same queries against the generator-order
//                    file vs its laq_optimize rewrite (clustered events,
//                    advanced encodings, derived sizing), pruning on.
// Sections 4-6 double as the CI correctness gate: the process exits
// non-zero if any tier, pruning mode, or layout rewrite changes any
// histogram bit.

#include <cstdio>

#include "bench/bench_util.h"
#include "queries/adl.h"
#include "queries/builders.h"

using hepq::LaqReader;
using hepq::ReaderOptions;
using hepq::queries::BuildAdlEventQuery;
using hepq::queries::BuildAdlFlatPipeline;

namespace {

/// Exact (bitwise, not approximate) histogram equality — the contract
/// pruning must uphold.
bool BitIdentical(const hepq::Histogram1D& a, const hepq::Histogram1D& b) {
  if (a.num_entries() != b.num_entries()) return false;
  if (a.sum_weights() != b.sum_weights()) return false;
  if (a.underflow() != b.underflow() || a.overflow() != b.overflow()) {
    return false;
  }
  for (int i = 0; i < a.spec().num_bins; ++i) {
    if (a.BinContent(i) != b.BinContent(i)) return false;
  }
  return true;
}

}  // namespace

int main() {
  const int64_t events = hepq::bench::BenchEvents();
  const std::string path = hepq::bench::BenchDataset(events);

  hepq::bench::PrintHeaderLine(
      "Ablation 1: plan shape (same reader, pushdown ON)");
  std::printf("%-6s %18s %18s %14s %18s\n", "Query", "expr-plan cpu[s]",
              "unnest-plan cpu[s]", "slowdown", "rows materialized");
  for (int q = 2; q <= 6; ++q) {
    auto expr_query = BuildAdlEventQuery(q);
    expr_query.status().Check();
    auto reader1 = LaqReader::Open(path).ValueOrDie();
    auto expr_result = expr_query->Execute(reader1.get());
    expr_result.status().Check();

    auto flat_query = BuildAdlFlatPipeline(q);
    flat_query.status().Check();
    auto reader2 = LaqReader::Open(path).ValueOrDie();
    auto flat_result = flat_query->Execute(reader2.get());
    flat_result.status().Check();

    std::printf("Q%-5d %18.4f %18.4f %13.1fx %18llu\n", q,
                expr_result->cpu_seconds, flat_result->cpu_seconds,
                flat_result->cpu_seconds /
                    std::max(1e-9, expr_result->cpu_seconds),
                static_cast<unsigned long long>(
                    flat_result->rows_materialized));
  }

  hepq::bench::PrintHeaderLine(
      "Ablation 2: struct projection pushdown (same per-event plan)");
  std::printf("%-6s %16s %16s %16s %16s\n", "Query", "on: cpu[s]",
              "off: cpu[s]", "on: bytes", "off: bytes");
  for (int q : {1, 4, 5}) {
    ReaderOptions with;
    with.struct_projection_pushdown = true;
    ReaderOptions without;
    without.struct_projection_pushdown = false;
    auto query = BuildAdlEventQuery(q);
    query.status().Check();
    auto reader_on = LaqReader::Open(path, with).ValueOrDie();
    auto on = query->Execute(reader_on.get());
    on.status().Check();
    auto reader_off = LaqReader::Open(path, without).ValueOrDie();
    auto off = query->Execute(reader_off.get());
    off.status().Check();
    std::printf("Q%-5d %16.4f %16.4f %16llu %16llu\n", q, on->cpu_seconds,
                off->cpu_seconds,
                static_cast<unsigned long long>(on->scan.storage_bytes),
                static_cast<unsigned long long>(off->scan.storage_bytes));
  }

  hepq::bench::PrintHeaderLine(
      "Ablation 3: columnar expressions vs boxed items (Q1)");
  {
    using hepq::queries::EngineKind;
    auto columnar =
        hepq::queries::RunAdlQuery(EngineKind::kBigQueryShape, 1, path);
    columnar.status().Check();
    auto boxed = hepq::queries::RunAdlQuery(EngineKind::kDoc, 1, path);
    boxed.status().Check();
    std::printf("columnar: %.4f s   boxed: %.4f s   (%.0fx)\n",
                columnar->cpu_seconds, boxed->cpu_seconds,
                boxed->cpu_seconds / std::max(1e-9, columnar->cpu_seconds));
  }

  hepq::bench::PrintHeaderLine(
      "Ablation 4: expression execution tier "
      "(interpret / bytecode / simd, same plans)");
  int identity_failures = 0;
  {
    using hepq::queries::EngineKind;
    using hepq::queries::EngineKindName;
    using hepq::queries::RunAdlQuery;
    using hepq::queries::VexprTier;
    std::printf("%-6s %-8s %13s %13s %13s %10s %10s %10s\n", "Query",
                "engine", "interp[s]", "bytecode[s]", "simd[s]", "byte/int",
                "simd/byte", "identical");
    for (int q = 1; q <= hepq::queries::kNumAdlQueries; ++q) {
      for (EngineKind engine :
           {EngineKind::kBigQueryShape, EngineKind::kPrestoShape}) {
        hepq::queries::RunOptions options;
        options.vexpr_tier = VexprTier::kInterpret;
        auto interp = RunAdlQuery(engine, q, path, options);
        interp.status().Check();
        options.vexpr_tier = VexprTier::kBytecode;
        auto bytecode = RunAdlQuery(engine, q, path, options);
        bytecode.status().Check();
        options.vexpr_tier = VexprTier::kSimd;
        auto simd = RunAdlQuery(engine, q, path, options);
        simd.status().Check();
        // The tier ladder's contract: all three produce the same bits.
        bool identical =
            interp->histograms.size() == bytecode->histograms.size() &&
            interp->histograms.size() == simd->histograms.size() &&
            interp->events_processed == bytecode->events_processed &&
            interp->events_processed == simd->events_processed;
        for (size_t h = 0; identical && h < interp->histograms.size(); ++h) {
          identical = BitIdentical(interp->histograms[h],
                                   bytecode->histograms[h]) &&
                      BitIdentical(interp->histograms[h], simd->histograms[h]);
        }
        if (!identical) ++identity_failures;
        std::printf("Q%-5d %-8s %13.4f %13.4f %13.4f %9.1fx %9.2fx %10s\n",
                    q, EngineKindName(engine), interp->cpu_seconds,
                    bytecode->cpu_seconds, simd->cpu_seconds,
                    interp->cpu_seconds /
                        std::max(1e-9, bytecode->cpu_seconds),
                    bytecode->cpu_seconds / std::max(1e-9, simd->cpu_seconds),
                    identical ? "yes" : "NO");
      }
    }
  }

  hepq::bench::PrintHeaderLine(
      "Ablation 5: predicate pushdown + late materialization "
      "(zone-map pruning, all frontends)");
  {
    using hepq::queries::EngineKind;
    using hepq::queries::EngineKindName;
    using hepq::queries::RunAdlQuery;
    const EngineKind engines[] = {EngineKind::kRdf,
                                  EngineKind::kBigQueryShape,
                                  EngineKind::kPrestoShape, EngineKind::kDoc};
    hepq::bench::BenchJson json("ablation_plans");
    std::printf("%-6s %-10s %12s %12s %14s %14s %12s %10s\n", "Query",
                "engine", "on: cpu[s]", "off: cpu[s]", "on: decoded",
                "off: decoded", "rows pruned", "identical");
    for (int q = 1; q <= hepq::queries::kNumAdlQueries; ++q) {
      for (EngineKind engine : engines) {
        const hepq::queries::RunOptions with;  // pruning is the default
        hepq::queries::RunOptions without;
        without.scan_pushdown = false;
        without.late_materialization = false;
        auto on = RunAdlQuery(engine, q, path, with);
        on.status().Check();
        auto off = RunAdlQuery(engine, q, path, without);
        off.status().Check();
        bool identical = on->histograms.size() == off->histograms.size() &&
                         on->events_processed == off->events_processed;
        for (size_t h = 0; identical && h < on->histograms.size(); ++h) {
          identical = BitIdentical(on->histograms[h], off->histograms[h]);
        }
        if (!identical) ++identity_failures;
        std::printf("Q%-5d %-10s %12.4f %12.4f %14llu %14llu %12llu %10s\n",
                    q, EngineKindName(engine), on->cpu_seconds,
                    off->cpu_seconds,
                    static_cast<unsigned long long>(on->scan.decoded_bytes),
                    static_cast<unsigned long long>(off->scan.decoded_bytes),
                    static_cast<unsigned long long>(on->scan.rows_pruned),
                    identical ? "yes" : "NO");
        json.Add("Q" + std::to_string(q),
                 std::string(EngineKindName(engine)) + "+prune",
                 on->cpu_seconds, on->scan.storage_bytes,
                 on->scan.decoded_bytes, on->scan.rows_pruned);
        json.Add("Q" + std::to_string(q), EngineKindName(engine),
                 off->cpu_seconds, off->scan.storage_bytes,
                 off->scan.decoded_bytes, off->scan.rows_pruned);
      }
    }
    json.Write();
  }

  hepq::bench::PrintHeaderLine(
      "Ablation 6: layout optimization "
      "(laq_optimize rewrite vs generator order, pruning ON)");
  {
    using hepq::queries::EngineKind;
    using hepq::queries::EngineKindName;
    using hepq::queries::RunAdlQuery;
    const std::string optimized = hepq::bench::BenchOptimizedDataset(events);
    std::printf("%-6s %-10s %12s %12s %14s %14s %12s %10s\n", "Query",
                "engine", "orig cpu[s]", "opt cpu[s]", "orig decoded",
                "opt decoded", "groups skip", "identical");
    for (int q = 1; q <= hepq::queries::kNumAdlQueries; ++q) {
      for (EngineKind engine :
           {EngineKind::kRdf, EngineKind::kBigQueryShape}) {
        auto orig = RunAdlQuery(engine, q, path);
        orig.status().Check();
        auto opt = RunAdlQuery(engine, q, optimized);
        opt.status().Check();
        // The optimizer's contract: a rewritten layout is invisible in
        // every histogram bit, like the tier ladder and pruning above.
        bool identical = orig->histograms.size() == opt->histograms.size() &&
                         orig->events_processed == opt->events_processed;
        for (size_t h = 0; identical && h < orig->histograms.size(); ++h) {
          identical = BitIdentical(orig->histograms[h], opt->histograms[h]);
        }
        if (!identical) ++identity_failures;
        std::printf("Q%-5d %-10s %12.4f %12.4f %14llu %14llu %12llu %10s\n",
                    q, EngineKindName(engine), orig->cpu_seconds,
                    opt->cpu_seconds,
                    static_cast<unsigned long long>(orig->scan.decoded_bytes),
                    static_cast<unsigned long long>(opt->scan.decoded_bytes),
                    static_cast<unsigned long long>(opt->scan.groups_pruned),
                    identical ? "yes" : "NO");
      }
    }
  }

  std::printf(
      "\nExpected: the unnest plan is slower than the expression plan and\n"
      "the gap explodes on Q6 (n^3 row materialization); pushdown-off\n"
      "multiplies bytes read without changing results; boxing costs one\n"
      "to two orders of magnitude even on the trivial query; each rung of\n"
      "the expression tier ladder pays off where per-event expression work\n"
      "is heavy (Q6's combination search), while scan-dominated queries\n"
      "and the unnest plan's materialization costs are unaffected by\n"
      "construction. Neither the tier (ablation 4) nor pruning (ablation\n"
      "5) nor the layout rewrite (ablation 6) may be visible in any\n"
      "histogram bit. The generator's unsorted data bounds what pruning\n"
      "can skip in ablation 5 — the decoded-byte deltas there come mostly\n"
      "from late materialization — while ablation 6 shows the same\n"
      "pushdown skipping whole row groups once laq_optimize has clustered\n"
      "events by the gated multiplicities (largest on Q5 and Q8).\n");
  if (identity_failures > 0) {
    std::fprintf(stderr,
                 "FAIL: %d run(s) broke bit-identity (expression tier or "
                 "pruning) — see 'NO' rows\n",
                 identity_failures);
    return 1;
  }
  return 0;
}
