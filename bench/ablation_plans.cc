// Ablation bench for the design choices DESIGN.md calls out. Each section
// isolates ONE variable:
//   1. plan shape  — array expressions inside the scan (BigQuery shape)
//                    vs CROSS JOIN UNNEST + GROUP BY (Presto shape), both
//                    reading through the SAME pushdown-enabled reader;
//   2. struct projection pushdown — the same per-event plan through a
//                    reader with pushdown on vs off;
//   3. execution model — columnar expressions vs boxed items for the same
//                    query (Q1, where plan shape is trivial);
//   4. expression execution — per-row tree-walking interpretation vs the
//                    vectorized bytecode VM (engine/vexpr), same plans,
//                    bit-identical histograms.

#include <cstdio>

#include "bench/bench_util.h"
#include "queries/adl.h"
#include "queries/builders.h"

using hepq::LaqReader;
using hepq::ReaderOptions;
using hepq::queries::BuildAdlEventQuery;
using hepq::queries::BuildAdlFlatPipeline;

int main() {
  const int64_t events = hepq::bench::BenchEvents();
  const std::string path = hepq::bench::BenchDataset(events);

  hepq::bench::PrintHeaderLine(
      "Ablation 1: plan shape (same reader, pushdown ON)");
  std::printf("%-6s %18s %18s %14s %18s\n", "Query", "expr-plan cpu[s]",
              "unnest-plan cpu[s]", "slowdown", "rows materialized");
  for (int q = 2; q <= 6; ++q) {
    auto expr_query = BuildAdlEventQuery(q);
    expr_query.status().Check();
    auto reader1 = LaqReader::Open(path).ValueOrDie();
    auto expr_result = expr_query->Execute(reader1.get());
    expr_result.status().Check();

    auto flat_query = BuildAdlFlatPipeline(q);
    flat_query.status().Check();
    auto reader2 = LaqReader::Open(path).ValueOrDie();
    auto flat_result = flat_query->Execute(reader2.get());
    flat_result.status().Check();

    std::printf("Q%-5d %18.4f %18.4f %13.1fx %18llu\n", q,
                expr_result->cpu_seconds, flat_result->cpu_seconds,
                flat_result->cpu_seconds /
                    std::max(1e-9, expr_result->cpu_seconds),
                static_cast<unsigned long long>(
                    flat_result->rows_materialized));
  }

  hepq::bench::PrintHeaderLine(
      "Ablation 2: struct projection pushdown (same per-event plan)");
  std::printf("%-6s %16s %16s %16s %16s\n", "Query", "on: cpu[s]",
              "off: cpu[s]", "on: bytes", "off: bytes");
  for (int q : {1, 4, 5}) {
    ReaderOptions with;
    with.struct_projection_pushdown = true;
    ReaderOptions without;
    without.struct_projection_pushdown = false;
    auto query = BuildAdlEventQuery(q);
    query.status().Check();
    auto reader_on = LaqReader::Open(path, with).ValueOrDie();
    auto on = query->Execute(reader_on.get());
    on.status().Check();
    auto reader_off = LaqReader::Open(path, without).ValueOrDie();
    auto off = query->Execute(reader_off.get());
    off.status().Check();
    std::printf("Q%-5d %16.4f %16.4f %16llu %16llu\n", q, on->cpu_seconds,
                off->cpu_seconds,
                static_cast<unsigned long long>(on->scan.storage_bytes),
                static_cast<unsigned long long>(off->scan.storage_bytes));
  }

  hepq::bench::PrintHeaderLine(
      "Ablation 3: columnar expressions vs boxed items (Q1)");
  {
    using hepq::queries::EngineKind;
    auto columnar =
        hepq::queries::RunAdlQuery(EngineKind::kBigQueryShape, 1, path);
    columnar.status().Check();
    auto boxed = hepq::queries::RunAdlQuery(EngineKind::kDoc, 1, path);
    boxed.status().Check();
    std::printf("columnar: %.4f s   boxed: %.4f s   (%.0fx)\n",
                columnar->cpu_seconds, boxed->cpu_seconds,
                boxed->cpu_seconds / std::max(1e-9, columnar->cpu_seconds));
  }

  hepq::bench::PrintHeaderLine(
      "Ablation 4: interpreted vs compiled expressions (same plans)");
  {
    using hepq::queries::EngineKind;
    using hepq::queries::RunAdlQuery;
    std::printf("%-6s %16s %16s %9s %18s %18s %9s\n", "Query",
                "bq-interp[s]", "bq-compiled[s]", "speedup",
                "presto-interp[s]", "presto-compiled[s]", "speedup");
    for (int q = 1; q <= hepq::queries::kNumAdlQueries; ++q) {
      hepq::queries::RunOptions interp;
      interp.interpret_expressions = true;
      const hepq::queries::RunOptions compiled;
      auto bq_i = RunAdlQuery(EngineKind::kBigQueryShape, q, path, interp);
      bq_i.status().Check();
      auto bq_c = RunAdlQuery(EngineKind::kBigQueryShape, q, path, compiled);
      bq_c.status().Check();
      auto pr_i = RunAdlQuery(EngineKind::kPrestoShape, q, path, interp);
      pr_i.status().Check();
      auto pr_c = RunAdlQuery(EngineKind::kPrestoShape, q, path, compiled);
      pr_c.status().Check();
      std::printf("Q%-5d %16.4f %16.4f %8.1fx %18.4f %18.4f %8.1fx\n", q,
                  bq_i->cpu_seconds, bq_c->cpu_seconds,
                  bq_i->cpu_seconds / std::max(1e-9, bq_c->cpu_seconds),
                  pr_i->cpu_seconds, pr_c->cpu_seconds,
                  pr_i->cpu_seconds / std::max(1e-9, pr_c->cpu_seconds));
    }
  }

  std::printf(
      "\nExpected: the unnest plan is slower than the expression plan and\n"
      "the gap explodes on Q6 (n^3 row materialization); pushdown-off\n"
      "multiplies bytes read without changing results; boxing costs one\n"
      "to two orders of magnitude even on the trivial query; compiling\n"
      "expressions pays off where per-event expression work is heavy (Q6's\n"
      "combination search), while scan-dominated queries and the unnest\n"
      "plan's materialization costs are unaffected by construction.\n");
  return 0;
}
