// BM_CacheWarmth: cold-vs-warm cost of the full 8-query suite under the
// process-wide cache hierarchy (src/cache) — the repeated-analysis loop
// the paper's interactive-analysis setting implies (the same plots get
// re-derived many times per session while the dataset stays fixed).
//
// Three measured passes over all 8 ADL queries on every frontend:
//
//   cold    fresh decoded-chunk cache, no result cache: every byte
//           decoded from storage (the baseline all speedups quote).
//   warm    same chunk cache again, still no result cache: the read path
//           runs end to end but every chunk is served decoded. Decoded
//           bytes from disk must be exactly 0.
//   result  result cache on top: the fingerprint lookup short-circuits
//           the engines entirely.
//
// Pushdown and late materialization are disabled for all passes so cold
// and warm touch the identical chunk set and "warm decodes zero bytes"
// is an invariant rather than a tendency (partially-decoded pruned
// chunks are never admitted to the cache by design).
//
// Writes BENCH_cache.json; CI gates: the warm pass must report
// decoded_bytes == 0, the result pass 32/32 fingerprint hits and a
// warm_speedup of at least 2x over cold.

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "cache/cache.h"
#include "queries/adl.h"

using hepq::queries::EngineKind;
using hepq::queries::EngineKindName;
using hepq::queries::RunAdlQuery;
using hepq::queries::RunOptions;

namespace {

constexpr EngineKind kEngines[] = {
    EngineKind::kRdf, EngineKind::kBigQueryShape, EngineKind::kPrestoShape,
    EngineKind::kDoc};

struct PassTotals {
  double wall_s = 0.0;
  uint64_t decoded_bytes = 0;
  uint64_t cache_bytes_served = 0;
  uint64_t chunk_cache_hits = 0;
  uint64_t footer_cache_hits = 0;
  int result_cache_hits = 0;
};

/// One full pass: all 8 queries on all 4 frontends under `options`.
PassTotals RunPass(const std::string& path, const RunOptions& options) {
  PassTotals totals;
  for (int q = 1; q <= 8; ++q) {
    for (EngineKind engine : kEngines) {
      auto result = RunAdlQuery(engine, q, path, options);
      result.status().Check();
      totals.wall_s += result->wall_seconds;
      totals.decoded_bytes += result->scan.decoded_bytes;
      totals.cache_bytes_served += result->scan.cache_bytes_served;
      totals.chunk_cache_hits += result->scan.chunk_cache_hits;
      totals.footer_cache_hits += result->scan.footer_cache_hits;
      if (result->from_result_cache) totals.result_cache_hits += 1;
    }
  }
  return totals;
}

void PrintPass(const char* label, const PassTotals& t, double speedup) {
  std::printf("%-7s %10.4f s   decoded %12llu B   served %12llu B   "
              "chunk hits %6llu   result hits %2d/32   speedup %8.2fx\n",
              label, t.wall_s,
              static_cast<unsigned long long>(t.decoded_bytes),
              static_cast<unsigned long long>(t.cache_bytes_served),
              static_cast<unsigned long long>(t.chunk_cache_hits),
              t.result_cache_hits, speedup);
}

int BM_CacheWarmth(int threads) {
  const int64_t events = hepq::bench::BenchEvents();
  const std::string path = hepq::bench::BenchDataset(events);
  hepq::bench::PrintHeaderLine(
      "Cache warmth: 8-query suite x 4 frontends, cold vs warm");
  std::printf("data: %s   threads: %d   chunk-cache budget: %llu MiB\n\n",
              path.c_str(), threads,
              static_cast<unsigned long long>(
                  hepq::cache::CacheOptions{}.decoded_budget_bytes >> 20));

  RunOptions options;
  options.num_threads = threads;
  options.scan_pushdown = false;
  options.late_materialization = false;
  options.chunk_cache = std::make_shared<hepq::cache::ChunkCache>();

  const PassTotals cold = RunPass(path, options);
  PrintPass("cold", cold, 1.0);
  const PassTotals warm = RunPass(path, options);
  const double warm_speedup =
      warm.wall_s > 0 ? cold.wall_s / warm.wall_s : 0.0;
  PrintPass("warm", warm, warm_speedup);

  options.result_cache = std::make_shared<hepq::cache::ResultCache>();
  const PassTotals prime = RunPass(path, options);  // fills the result cache
  (void)prime;
  const PassTotals fingerprint = RunPass(path, options);
  const double result_speedup =
      fingerprint.wall_s > 0 ? cold.wall_s / fingerprint.wall_s : 0.0;
  PrintPass("result", fingerprint, result_speedup);

  hepq::bench::BenchJson json("cache");
  json.AddCachePass("cold", 0, cold.wall_s, cold.decoded_bytes,
                    cold.cache_bytes_served, cold.chunk_cache_hits,
                    cold.footer_cache_hits, cold.result_cache_hits, 1.0);
  json.AddCachePass("warm", 1, warm.wall_s, warm.decoded_bytes,
                    warm.cache_bytes_served, warm.chunk_cache_hits,
                    warm.footer_cache_hits, warm.result_cache_hits,
                    warm_speedup);
  json.AddCachePass("result", 2, fingerprint.wall_s,
                    fingerprint.decoded_bytes,
                    fingerprint.cache_bytes_served,
                    fingerprint.chunk_cache_hits,
                    fingerprint.footer_cache_hits,
                    fingerprint.result_cache_hits, result_speedup);
  json.Write();

  if (warm.decoded_bytes != 0) {
    std::fprintf(stderr,
                 "FAIL: warm pass decoded %llu bytes from disk (want 0)\n",
                 static_cast<unsigned long long>(warm.decoded_bytes));
    return 1;
  }
  if (fingerprint.result_cache_hits != 32) {
    std::fprintf(stderr, "FAIL: result pass hit %d/32 fingerprints\n",
                 fingerprint.result_cache_hits);
    return 1;
  }
  // Suite wall time is compute-dominated (the doc frontend especially),
  // so chunk warmth shows up in decoded bytes, not wall; the >=2x warm
  // speedup the hierarchy promises comes from the result-cache level.
  if (result_speedup < 2.0) {
    std::fprintf(stderr, "FAIL: result-cache warm speedup %.2fx < 2x\n",
                 result_speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return BM_CacheWarmth(hepq::bench::ParseThreadsFlag(argc, argv));
}
