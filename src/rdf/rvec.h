#ifndef HEPQUERY_RDF_RVEC_H_
#define HEPQUERY_RDF_RVEC_H_

#include <cstddef>
#include <vector>

namespace hepq::rdf {

/// Dynamic numeric vector used by vector-valued Define nodes, modelled on
/// ROOT's ROOT::RVec<double>.
using RVecD = std::vector<double>;

/// Index of the minimum element, or -1 if empty. Mirrors ROOT's VecOps
/// ArgMin, which HEP analyses use for "closest-to" searches (Q6, Q8).
inline long ArgMin(const RVecD& v) {
  if (v.empty()) return -1;
  size_t best = 0;
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] < v[best]) best = i;
  }
  return static_cast<long>(best);
}

/// Index of the maximum element, or -1 if empty.
inline long ArgMax(const RVecD& v) {
  if (v.empty()) return -1;
  size_t best = 0;
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return static_cast<long>(best);
}

/// Sum of elements.
inline double Sum(const RVecD& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

}  // namespace hepq::rdf

#endif  // HEPQUERY_RDF_RVEC_H_
