#ifndef HEPQUERY_RDF_RDF_H_
#define HEPQUERY_RDF_RDF_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "columnar/array.h"
#include "core/histogram.h"
#include "core/status.h"
#include "exec/exec.h"
#include "fileio/reader.h"
#include "rdf/rvec.h"

namespace hepq::rdf {

// A miniature re-implementation of ROOT's RDataFrame programming model
// (Guiraud, Naumann, Piparo 2017): a lazy functional chain of Filter /
// Define nodes terminated by histogram actions, executed event-at-a-time
// over columnar storage, with optional implicit multithreading at row-group
// ("cluster") granularity. As in ROOT, the columnar storage format is part
// of the programming model: the user names the physical leaf columns
// ("Jet.pt") they read, which is exactly the property the paper contrasts
// with declarative engines.

class RDataFrame;
class EventView;

/// Typed handle to a scalar leaf column ("MET.pt", "event", ...).
template <typename T>
struct ScalarColumn {
  int slot = -1;
};

/// Typed handle to a per-particle leaf column ("Jet.pt", "Muon.charge").
template <typename T>
struct ParticleColumn {
  int slot = -1;
};

/// Handle to a lazily computed, per-event-cached scalar Define.
struct DefineHandle {
  int index = -1;
};

/// Handle to a lazily computed, per-event-cached vector Define.
struct VecDefineHandle {
  int index = -1;
};

namespace internal {

struct LeafRef {
  const void* data = nullptr;        // raw values of the leaf
  const uint32_t* offsets = nullptr; // list offsets, or nullptr for scalars
};

struct DefineSlot {
  std::string name;
  std::function<double(const EventView&)> fn;
};

struct VecDefineSlot {
  std::string name;
  std::function<RVecD(const EventView&)> fn;
};

struct NodeData;

/// Per-event lazy-evaluation cache for Define results.
struct DefineCache {
  std::vector<uint8_t> scalar_ready;
  std::vector<double> scalar_values;
  std::vector<uint8_t> vec_ready;
  std::vector<RVecD> vec_values;
};

}  // namespace internal

/// Read-only view of one event, handed to Filter/Define/Histo lambdas.
class EventView {
 public:
  template <typename T>
  T Get(ScalarColumn<T> column) const {
    return static_cast<const T*>(
        leaves_[static_cast<size_t>(column.slot)].data)[row_];
  }

  template <typename T>
  std::span<const T> Get(ParticleColumn<T> column) const {
    const internal::LeafRef& leaf = leaves_[static_cast<size_t>(column.slot)];
    const uint32_t begin = leaf.offsets[row_];
    const uint32_t end = leaf.offsets[row_ + 1];
    return {static_cast<const T*>(leaf.data) + begin, end - begin};
  }

  /// Value of a scalar Define, computed at most once per event.
  double Get(DefineHandle handle) const;
  /// Value of a vector Define, computed at most once per event.
  const RVecD& Get(VecDefineHandle handle) const;

  int64_t row() const { return static_cast<int64_t>(row_); }

 private:
  friend class RDataFrame;
  EventView(std::span<const internal::LeafRef> leaves, size_t row,
            const std::vector<internal::DefineSlot>* defines,
            const std::vector<internal::VecDefineSlot>* vec_defines,
            internal::DefineCache* cache)
      : leaves_(leaves),
        row_(row),
        defines_(defines),
        vec_defines_(vec_defines),
        cache_(cache) {}

  std::span<const internal::LeafRef> leaves_;
  size_t row_;
  const std::vector<internal::DefineSlot>* defines_;
  const std::vector<internal::VecDefineSlot>* vec_defines_;
  internal::DefineCache* cache_;
};

/// Handle to a booked histogram action; redeemable after Run().
struct HistoHandle {
  int index = -1;
};
/// Handle to a booked Count action.
struct CountHandle {
  int index = -1;
};
/// Handle to a booked Sum action.
struct SumHandle {
  int index = -1;
};

/// Cutflow entry of one Filter node (RDataFrame's Report()): how many
/// events reached the filter and how many passed it. `examined` counts
/// only events for which the predicate actually ran (lazy evaluation
/// skips filters no booked action needed).
struct FilterReport {
  std::string label;
  int64_t examined = 0;
  int64_t passed = 0;
};

/// A node in the filter chain. Copies are cheap references to the graph.
class RNode {
 public:
  /// Appends a filter below this node; events reaching the new node must
  /// satisfy `predicate` in addition to all ancestors.
  RNode Filter(std::function<bool(const EventView&)> predicate,
               std::string label = "");

  /// Like Filter, with a machine-readable scan hint: `hint` must hold a
  /// set of *necessary* conditions of `predicate` (rows outside a hinted
  /// range cannot pass it). The predicate lambda stays authoritative —
  /// the hint only lets the storage layer zone-map-prune row groups and
  /// pages, and it is honored only when this filter sits directly below
  /// the root and above every booked action, where skipping provably
  /// failing events cannot change any result or cutflow counter.
  RNode Filter(std::function<bool(const EventView&)> predicate,
               ScanPredicateSet hint, std::string label = "");

  /// Books a 1-D histogram filled with `value` for every event reaching
  /// this node.
  HistoHandle Histo1D(HistogramSpec spec,
                      std::function<double(const EventView&)> value);

  /// Like Histo1D but with a per-event weight (e.g. generator weights).
  HistoHandle WeightedHisto1D(HistogramSpec spec,
                              std::function<double(const EventView&)> value,
                              std::function<double(const EventView&)> weight);

  /// Books a histogram where one event may contribute any number of
  /// entries (e.g. all jet pts): `values` returns all fill values.
  HistoHandle Histo1DVec(HistogramSpec spec,
                         std::function<RVecD(const EventView&)> values);

  /// Books a counter of events reaching this node.
  CountHandle Count();

  /// Books a sum of `value` over the events reaching this node.
  SumHandle Sum(std::function<double(const EventView&)> value);

 private:
  friend class RDataFrame;
  RNode(RDataFrame* df, int node_index) : df_(df), node_(node_index) {}
  RDataFrame* df_;
  int node_;
};

struct RdfOptions {
  /// Worker threads; row groups ("clusters") are the scheduling unit,
  /// mirroring ROOT's implicit-MT design.
  int num_threads = 1;
  ReaderOptions reader;
};

struct RdfRunStats {
  ScanStats scan;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  int64_t events_processed = 0;
  int row_groups = 0;
};

/// The data-frame root: owns the node graph, bookings, and execution.
class RDataFrame {
 public:
  static Result<std::unique_ptr<RDataFrame>> Open(const std::string& path,
                                                  RdfOptions options = {});

  /// Declares a scalar leaf column dependency ("MET.pt", "event").
  template <typename T>
  Result<ScalarColumn<T>> Scalar(const std::string& leaf_path) {
    int slot = -1;
    HEPQ_RETURN_NOT_OK(DeclareLeaf(leaf_path, /*particle=*/false,
                                   ExpectedTypeId<T>(), &slot));
    return ScalarColumn<T>{slot};
  }

  /// Declares a per-particle leaf column dependency ("Jet.pt").
  template <typename T>
  Result<ParticleColumn<T>> Particles(const std::string& leaf_path) {
    int slot = -1;
    HEPQ_RETURN_NOT_OK(DeclareLeaf(leaf_path, /*particle=*/true,
                                   ExpectedTypeId<T>(), &slot));
    return ParticleColumn<T>{slot};
  }

  /// Registers a named, per-event-cached scalar computation.
  DefineHandle Define(std::string name,
                      std::function<double(const EventView&)> fn);
  /// Registers a named, per-event-cached vector computation.
  VecDefineHandle DefineVec(std::string name,
                            std::function<RVecD(const EventView&)> fn);

  /// The unfiltered root node.
  RNode root() { return RNode(this, 0); }

  /// Executes all booked actions in one pass over the data.
  Status Run();

  const Histogram1D& GetHistogram(HistoHandle handle) const;
  int64_t GetCount(CountHandle handle) const;
  double GetSum(SumHandle handle) const;

  /// Cutflow of all labelled and unlabelled Filter nodes, in creation
  /// order (the root is omitted). Only valid after Run().
  std::vector<FilterReport> Report() const;
  const RdfRunStats& run_stats() const { return run_stats_; }
  int64_t total_rows() const { return layout_.total_rows; }
  int num_row_groups() const { return layout_.num_groups(); }

 private:
  friend class RNode;
  struct Booking;
  struct Node;

  explicit RDataFrame(std::unique_ptr<LaqReader> reader, RdfOptions options)
      : reader_(std::move(reader)), options_(options) {
    nodes_.push_back(Node{});  // root
  }

  template <typename T>
  static TypeId ExpectedTypeId();

  Status DeclareLeaf(const std::string& leaf_path, bool particle,
                     TypeId expected, int* slot);

  struct DeclaredLeaf {
    std::string path;
    bool particle;
    TypeId physical;
  };

  struct Node {
    int parent = -1;
    std::function<bool(const EventView&)> predicate;  // null for root
    std::string label;
    /// Necessary conditions of `predicate` for zone-map pruning (empty
    /// unless the hinted Filter overload was used).
    ScanPredicateSet hint;
  };

  struct Booking {
    int node = 0;
    // Exactly one of scalar_value / vec_value / is_count is active;
    // is_sum reinterprets scalar_value as a summand.
    std::function<double(const EventView&)> scalar_value;
    std::function<double(const EventView&)> weight;  // optional
    std::function<RVecD(const EventView&)> vec_value;
    bool is_count = false;
    bool is_sum = false;
    HistogramSpec spec;
  };

  struct NodeCounters {
    int64_t examined = 0;
    int64_t passed = 0;
  };

  /// Resolves declared leaves against one row-group batch.
  Status ResolveBatch(const RecordBatch& batch,
                      std::vector<internal::LeafRef>* out) const;

  /// Processes one row group into thread-local results.
  Status ProcessRowGroup(const RecordBatch& batch,
                         std::vector<Histogram1D>* histograms,
                         std::vector<int64_t>* counts,
                         std::vector<double>* sums,
                         std::vector<NodeCounters>* node_counters) const;

  std::unique_ptr<LaqReader> reader_;  // first dataset file (schema source)
  std::string path_;
  exec::DatasetLayout layout_;
  RdfOptions options_;
  std::vector<DeclaredLeaf> leaves_;
  std::vector<internal::DefineSlot> defines_;
  std::vector<internal::VecDefineSlot> vec_defines_;
  std::vector<Node> nodes_;
  std::vector<Booking> bookings_;
  std::vector<Histogram1D> results_;
  std::vector<int64_t> count_results_;
  std::vector<double> sum_results_;
  std::vector<NodeCounters> node_counters_;
  RdfRunStats run_stats_;
  bool ran_ = false;
};

template <>
inline TypeId RDataFrame::ExpectedTypeId<float>() {
  return TypeId::kFloat32;
}
template <>
inline TypeId RDataFrame::ExpectedTypeId<double>() {
  return TypeId::kFloat64;
}
template <>
inline TypeId RDataFrame::ExpectedTypeId<int32_t>() {
  return TypeId::kInt32;
}
template <>
inline TypeId RDataFrame::ExpectedTypeId<int64_t>() {
  return TypeId::kInt64;
}
template <>
inline TypeId RDataFrame::ExpectedTypeId<uint8_t>() {
  return TypeId::kBool;
}

}  // namespace hepq::rdf

#endif  // HEPQUERY_RDF_RDF_H_
