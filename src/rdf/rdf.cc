#include "rdf/rdf.h"

#include <algorithm>
#include <utility>

#include "core/stopwatch.h"
#include "exec/exec.h"
#include "obs/trace.h"

namespace hepq::rdf {

double EventView::Get(DefineHandle handle) const {
  const size_t i = static_cast<size_t>(handle.index);
  if (!cache_->scalar_ready[i]) {
    cache_->scalar_values[i] = (*defines_)[i].fn(*this);
    cache_->scalar_ready[i] = 1;
  }
  return cache_->scalar_values[i];
}

const RVecD& EventView::Get(VecDefineHandle handle) const {
  const size_t i = static_cast<size_t>(handle.index);
  if (!cache_->vec_ready[i]) {
    cache_->vec_values[i] = (*vec_defines_)[i].fn(*this);
    cache_->vec_ready[i] = 1;
  }
  return cache_->vec_values[i];
}

RNode RNode::Filter(std::function<bool(const EventView&)> predicate,
                    std::string label) {
  return Filter(std::move(predicate), ScanPredicateSet{}, std::move(label));
}

RNode RNode::Filter(std::function<bool(const EventView&)> predicate,
                    ScanPredicateSet hint, std::string label) {
  RDataFrame::Node node;
  node.parent = node_;
  node.predicate = std::move(predicate);
  node.label = std::move(label);
  node.hint = std::move(hint);
  df_->nodes_.push_back(std::move(node));
  return RNode(df_, static_cast<int>(df_->nodes_.size()) - 1);
}

HistoHandle RNode::Histo1D(HistogramSpec spec,
                           std::function<double(const EventView&)> value) {
  RDataFrame::Booking booking;
  booking.node = node_;
  booking.scalar_value = std::move(value);
  booking.spec = std::move(spec);
  df_->bookings_.push_back(std::move(booking));
  return HistoHandle{static_cast<int>(df_->bookings_.size()) - 1};
}

HistoHandle RNode::Histo1DVec(HistogramSpec spec,
                              std::function<RVecD(const EventView&)> values) {
  RDataFrame::Booking booking;
  booking.node = node_;
  booking.vec_value = std::move(values);
  booking.spec = std::move(spec);
  df_->bookings_.push_back(std::move(booking));
  return HistoHandle{static_cast<int>(df_->bookings_.size()) - 1};
}

CountHandle RNode::Count() {
  RDataFrame::Booking booking;
  booking.node = node_;
  booking.is_count = true;
  df_->bookings_.push_back(std::move(booking));
  return CountHandle{static_cast<int>(df_->bookings_.size()) - 1};
}

HistoHandle RNode::WeightedHisto1D(
    HistogramSpec spec, std::function<double(const EventView&)> value,
    std::function<double(const EventView&)> weight) {
  RDataFrame::Booking booking;
  booking.node = node_;
  booking.scalar_value = std::move(value);
  booking.weight = std::move(weight);
  booking.spec = std::move(spec);
  df_->bookings_.push_back(std::move(booking));
  return HistoHandle{static_cast<int>(df_->bookings_.size()) - 1};
}

SumHandle RNode::Sum(std::function<double(const EventView&)> value) {
  RDataFrame::Booking booking;
  booking.node = node_;
  booking.is_sum = true;
  booking.scalar_value = std::move(value);
  df_->bookings_.push_back(std::move(booking));
  return SumHandle{static_cast<int>(df_->bookings_.size()) - 1};
}

Result<std::unique_ptr<RDataFrame>> RDataFrame::Open(const std::string& path,
                                                     RdfOptions options) {
  // `path` is a .laq file or a sharded dataset directory. The resolved
  // layout is the run's source of truth; the first file stays open as the
  // schema source for leaf declarations (all shards share its schema —
  // ResolveDatasetLayout enforces that).
  exec::DatasetLayout layout;
  HEPQ_ASSIGN_OR_RETURN(layout,
                        exec::ResolveDatasetLayout(path, options.reader));
  std::unique_ptr<LaqReader> reader;
  HEPQ_ASSIGN_OR_RETURN(reader,
                        LaqReader::Open(layout.files[0], options.reader));
  auto df = std::unique_ptr<RDataFrame>(
      new RDataFrame(std::move(reader), options));
  df->path_ = path;
  df->layout_ = std::move(layout);
  return df;
}

Status RDataFrame::DeclareLeaf(const std::string& leaf_path, bool particle,
                               TypeId expected, int* slot) {
  for (size_t i = 0; i < leaves_.size(); ++i) {
    if (leaves_[i].path == leaf_path) {
      if (leaves_[i].particle != particle) {
        return Status::Invalid("leaf '" + leaf_path +
                               "' declared as both scalar and particle");
      }
      if (leaves_[i].physical != expected) {
        return Status::TypeError("leaf '" + leaf_path +
                                 "' declared with two different types");
      }
      *slot = static_cast<int>(i);
      return Status::OK();
    }
  }
  const Schema& schema = reader_->schema();
  const size_t dot = leaf_path.find('.');
  const std::string column = dot == std::string::npos
                                 ? leaf_path
                                 : leaf_path.substr(0, dot);
  Field field;
  HEPQ_ASSIGN_OR_RETURN(field, schema.FindField(column));
  const DataType& type = *field.type;
  TypeId physical;
  if (dot == std::string::npos) {
    if (type.id() == TypeId::kList && type.item_type()->is_primitive()) {
      // ROOT-layout branch (e.g. "Jet_pt": list<float32>).
      if (!particle) {
        return Status::Invalid("list column '" + column +
                               "' must be declared as a particle leaf");
      }
      physical = type.item_type()->id();
    } else if (!type.is_primitive()) {
      return Status::Invalid("column '" + column +
                             "' is nested; name a member leaf");
    } else if (particle) {
      return Status::Invalid("scalar column '" + column +
                             "' declared as particle leaf");
    } else {
      physical = type.id();
    }
  } else {
    const std::string member = leaf_path.substr(dot + 1);
    const DataType* struct_type = nullptr;
    bool is_list = false;
    if (type.id() == TypeId::kStruct) {
      struct_type = &type;
    } else if (type.id() == TypeId::kList) {
      is_list = true;
      if (type.item_type()->id() != TypeId::kStruct) {
        return Status::Invalid("list column '" + column +
                               "' does not contain structs");
      }
      struct_type = type.item_type().get();
    } else {
      return Status::Invalid("column '" + column + "' has no members");
    }
    if (particle != is_list) {
      return Status::Invalid("leaf '" + leaf_path + "' is " +
                             (is_list ? "per-particle" : "per-event") +
                             " but was declared otherwise");
    }
    const int m = struct_type->FieldIndex(member);
    if (m < 0) {
      return Status::KeyError("no member '" + member + "' in column '" +
                              column + "'");
    }
    physical = struct_type->fields()[static_cast<size_t>(m)].type->id();
  }
  if (physical != expected) {
    return Status::TypeError("leaf '" + leaf_path + "' has type " +
                             TypeIdName(physical) + ", requested " +
                             TypeIdName(expected));
  }
  leaves_.push_back(DeclaredLeaf{leaf_path, particle, physical});
  *slot = static_cast<int>(leaves_.size()) - 1;
  return Status::OK();
}

DefineHandle RDataFrame::Define(std::string name,
                                std::function<double(const EventView&)> fn) {
  defines_.push_back(internal::DefineSlot{std::move(name), std::move(fn)});
  return DefineHandle{static_cast<int>(defines_.size()) - 1};
}

VecDefineHandle RDataFrame::DefineVec(
    std::string name, std::function<RVecD(const EventView&)> fn) {
  vec_defines_.push_back(
      internal::VecDefineSlot{std::move(name), std::move(fn)});
  return VecDefineHandle{static_cast<int>(vec_defines_.size()) - 1};
}

Status RDataFrame::ResolveBatch(const RecordBatch& batch,
                                std::vector<internal::LeafRef>* out) const {
  out->resize(leaves_.size());
  for (size_t i = 0; i < leaves_.size(); ++i) {
    const DeclaredLeaf& leaf = leaves_[i];
    const size_t dot = leaf.path.find('.');
    const std::string column =
        dot == std::string::npos ? leaf.path : leaf.path.substr(0, dot);
    ArrayPtr array = batch.ColumnByName(column);
    if (array == nullptr) {
      return Status::KeyError("batch is missing column '" + column + "'");
    }
    internal::LeafRef ref;
    const Array* values = array.get();
    if (array->type()->id() == TypeId::kList) {
      const auto& list = static_cast<const ListArray&>(*array);
      ref.offsets = list.offsets().data();
      values = list.child().get();
    }
    if (dot != std::string::npos && values->type()->id() == TypeId::kStruct) {
      const std::string member = leaf.path.substr(dot + 1);
      const auto& st = static_cast<const StructArray&>(*values);
      ArrayPtr child = st.ChildByName(member);
      if (child == nullptr) {
        return Status::KeyError("batch is missing leaf '" + leaf.path + "'");
      }
      values = child.get();
    }
    switch (leaf.physical) {
      case TypeId::kFloat32:
        ref.data = static_cast<const Float32Array*>(values)->raw();
        break;
      case TypeId::kFloat64:
        ref.data = static_cast<const Float64Array*>(values)->raw();
        break;
      case TypeId::kInt32:
        ref.data = static_cast<const Int32Array*>(values)->raw();
        break;
      case TypeId::kInt64:
        ref.data = static_cast<const Int64Array*>(values)->raw();
        break;
      case TypeId::kBool:
        ref.data = static_cast<const BoolArray*>(values)->raw();
        break;
      default:
        return Status::TypeError("unexpected leaf type");
    }
    (*out)[i] = ref;
  }
  return Status::OK();
}

Status RDataFrame::ProcessRowGroup(
    const RecordBatch& batch, std::vector<Histogram1D>* histograms,
    std::vector<int64_t>* counts, std::vector<double>* sums,
    std::vector<NodeCounters>* node_counters) const {
  std::vector<internal::LeafRef> leaves;
  HEPQ_RETURN_NOT_OK(ResolveBatch(batch, &leaves));

  internal::DefineCache cache;
  cache.scalar_ready.assign(defines_.size(), 0);
  cache.scalar_values.assign(defines_.size(), 0.0);
  cache.vec_ready.assign(vec_defines_.size(), 0);
  cache.vec_values.assign(vec_defines_.size(), RVecD{});

  // -1 unknown, 0 fail, 1 pass; reset per event.
  std::vector<int8_t> node_state(nodes_.size());

  const int64_t rows = batch.num_rows();
  for (int64_t row = 0; row < rows; ++row) {
    std::fill(cache.scalar_ready.begin(), cache.scalar_ready.end(), 0);
    std::fill(cache.vec_ready.begin(), cache.vec_ready.end(), 0);
    std::fill(node_state.begin(), node_state.end(), -1);
    node_state[0] = 1;

    EventView view(leaves, static_cast<size_t>(row), &defines_,
                   &vec_defines_, &cache);

    // Lazily evaluates whether the event reaches node `n`.
    auto reaches = [&](int n) {
      // Walk up to the closest decided ancestor, then back down.
      int cursor = n;
      std::vector<int> pending;
      while (node_state[static_cast<size_t>(cursor)] == -1) {
        pending.push_back(cursor);
        cursor = nodes_[static_cast<size_t>(cursor)].parent;
      }
      bool pass = node_state[static_cast<size_t>(cursor)] == 1;
      for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
        if (pass) {
          NodeCounters& counters = (*node_counters)[static_cast<size_t>(*it)];
          ++counters.examined;
          pass = nodes_[static_cast<size_t>(*it)].predicate(view);
          if (pass) ++counters.passed;
        }
        node_state[static_cast<size_t>(*it)] = pass ? 1 : 0;
      }
      return pass;
    };

    for (size_t b = 0; b < bookings_.size(); ++b) {
      const Booking& booking = bookings_[b];
      if (!reaches(booking.node)) continue;
      if (booking.is_count) {
        ++(*counts)[b];
      } else if (booking.is_sum) {
        (*sums)[b] += booking.scalar_value(view);
      } else if (booking.scalar_value) {
        const double weight =
            booking.weight ? booking.weight(view) : 1.0;
        (*histograms)[b].Fill(booking.scalar_value(view), weight);
      } else {
        for (double v : booking.vec_value(view)) {
          (*histograms)[b].Fill(v);
        }
      }
    }
  }
  return Status::OK();
}

Status RDataFrame::Run() {
  if (ran_) return Status::Invalid("RDataFrame::Run called twice");
  ran_ = true;
  obs::ScopedSpan run_span("run", obs::Stage::kRun);
  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();

  std::vector<std::string> projection;
  for (const DeclaredLeaf& leaf : leaves_) projection.push_back(leaf.path);
  if (projection.empty()) {
    // Actions that touch no columns (e.g. a bare Count) still need a scan
    // driver; read the cheapest scalar column.
    projection.push_back(reader_->schema().field(0).name);
  }

  results_.assign(bookings_.size(), Histogram1D{});
  count_results_.assign(bookings_.size(), 0);
  sum_results_.assign(bookings_.size(), 0.0);
  node_counters_.assign(nodes_.size(), NodeCounters{});
  for (size_t b = 0; b < bookings_.size(); ++b) {
    if (!bookings_[b].is_count && !bookings_[b].is_sum) {
      results_[b] = Histogram1D(bookings_[b].spec);
    }
  }

  const int num_groups = layout_.num_groups();
  std::vector<exec::RowGroupTask> tasks = exec::MakeRowGroupTasks(layout_);
  const int workers =
      exec::EffectiveWorkers(options_.num_threads, tasks.size());

  // Every row group accumulates into its own slot; the merge below runs in
  // ascending group order. Scheduling therefore never changes the result:
  // 1 and N threads are bit-identical.
  struct GroupPartial {
    std::vector<Histogram1D> histos;
    std::vector<int64_t> counts;
    std::vector<double> sums;
    std::vector<NodeCounters> nodes;
    int64_t events = 0;
  };
  std::vector<GroupPartial> partials(static_cast<size_t>(num_groups));
  for (GroupPartial& p : partials) {
    p.histos = results_;
    p.counts.assign(bookings_.size(), 0);
    p.sums.assign(bookings_.size(), 0.0);
    p.nodes.assign(nodes_.size(), NodeCounters{});
  }

  // Scan hint: the hint of a filter sitting directly below the root and
  // above every booked action gates all output, so a row group its hint
  // proves dead can be skipped with an exact cutflow ledger — the hint is
  // a necessary condition of that filter, so every skipped row would have
  // been examined by it and failed, and no deeper node ever ran. Hints
  // anywhere else in the graph are ignored: skipping there would change
  // ancestor filters' examined/passed counters in unknowable ways.
  int hint_node = -1;
  if (!bookings_.empty()) {
    for (size_t n = 1; n < nodes_.size(); ++n) {
      if (nodes_[n].parent != 0 || nodes_[n].hint.empty()) continue;
      bool covers_all = true;
      for (const Booking& booking : bookings_) {
        int cursor = booking.node;
        while (cursor > 0 && cursor != static_cast<int>(n)) {
          cursor = nodes_[static_cast<size_t>(cursor)].parent;
        }
        if (cursor != static_cast<int>(n)) {
          covers_all = false;
          break;
        }
      }
      if (covers_all) {
        hint_node = static_cast<int>(n);
        break;
      }
    }
  }
  const ScanPredicateSet no_hint;
  const ScanPredicateSet& preds =
      hint_node >= 0 ? nodes_[static_cast<size_t>(hint_node)].hint : no_hint;

  exec::WorkerReaders readers(&layout_, options_.reader, workers);
  HEPQ_RETURN_NOT_OK(exec::RunRowGroups(
      workers, std::move(tasks), [&](int worker, int g) -> Status {
        const exec::DatasetLayout::Group& loc =
            layout_.groups[static_cast<size_t>(g)];
        LaqReader* reader;
        HEPQ_ASSIGN_OR_RETURN(reader, readers.reader(worker, loc.file));
        RecordBatchPtr batch;
        HEPQ_ASSIGN_OR_RETURN(
            batch,
            reader->ReadRowGroupFiltered(loc.local_group, projection, preds,
                                         readers.scratch(worker)));
        GroupPartial& p = partials[static_cast<size_t>(g)];
        if (batch == nullptr) {
          // Pruned group: every row reaches the hinted filter and fails
          // it, so only that node's examined counter moves.
          p.events = loc.num_rows;
          p.nodes[static_cast<size_t>(hint_node)].examined += loc.num_rows;
          return Status::OK();
        }
        obs::ScopedSpan loop_span("rdf_event_loop", obs::Stage::kEventLoop);
        if (loop_span.active()) {
          loop_span.set_worker(worker);
          loop_span.set_group(g);
        }
        HEPQ_RETURN_NOT_OK(
            ProcessRowGroup(*batch, &p.histos, &p.counts, &p.sums, &p.nodes));
        p.events = batch->num_rows();
        return Status::OK();
      }));

  {
    // Two-level deterministic merge: per-file subtotals in local group
    // order, then file subtotals in file order — the FP association a
    // scatter/gather coordinator reproduces from per-shard worker results,
    // keeping P-process runs bit-identical (see exec::DatasetLayout).
    // Histograms AND sums are FP; counts and node counters are integers
    // but flow through the same structure for uniformity.
    obs::ScopedSpan merge_span("merge", obs::Stage::kMerge);
    const std::vector<Histogram1D> histo_proto = results_;
    size_t g = 0;
    for (int file = 0; file < layout_.num_files(); ++file) {
      std::vector<Histogram1D> file_histos = histo_proto;
      std::vector<int64_t> file_counts(bookings_.size(), 0);
      std::vector<double> file_sums(bookings_.size(), 0.0);
      for (; g < partials.size() && layout_.groups[g].file == file; ++g) {
        const GroupPartial& p = partials[g];
        for (size_t b = 0; b < bookings_.size(); ++b) {
          if (bookings_[b].is_count) {
            file_counts[b] += p.counts[b];
          } else if (bookings_[b].is_sum) {
            file_sums[b] += p.sums[b];
          } else {
            HEPQ_RETURN_NOT_OK(file_histos[b].Merge(p.histos[b]));
          }
        }
        for (size_t n = 0; n < nodes_.size(); ++n) {
          node_counters_[n].examined += p.nodes[n].examined;
          node_counters_[n].passed += p.nodes[n].passed;
        }
        run_stats_.events_processed += p.events;
      }
      for (size_t b = 0; b < bookings_.size(); ++b) {
        if (bookings_[b].is_count) {
          count_results_[b] += file_counts[b];
        } else if (bookings_[b].is_sum) {
          sum_results_[b] += file_sums[b];
        } else {
          HEPQ_RETURN_NOT_OK(results_[b].Merge(file_histos[b]));
        }
      }
    }
  }
  run_stats_.scan = readers.TotalScanStats();

  run_stats_.wall_seconds = wall.Seconds();
  run_stats_.cpu_seconds = ProcessCpuSeconds() - cpu0;
  run_stats_.row_groups = num_groups;
  return Status::OK();
}

const Histogram1D& RDataFrame::GetHistogram(HistoHandle handle) const {
  return results_[static_cast<size_t>(handle.index)];
}

int64_t RDataFrame::GetCount(CountHandle handle) const {
  return count_results_[static_cast<size_t>(handle.index)];
}

double RDataFrame::GetSum(SumHandle handle) const {
  return sum_results_[static_cast<size_t>(handle.index)];
}

std::vector<FilterReport> RDataFrame::Report() const {
  std::vector<FilterReport> report;
  for (size_t n = 1; n < nodes_.size(); ++n) {  // skip the root
    FilterReport entry;
    entry.label = nodes_[n].label.empty()
                      ? "filter_" + std::to_string(n)
                      : nodes_[n].label;
    entry.examined = node_counters_[n].examined;
    entry.passed = node_counters_[n].passed;
    report.push_back(std::move(entry));
  }
  return report;
}

}  // namespace hepq::rdf
