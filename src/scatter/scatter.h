#ifndef HEPQUERY_SCATTER_SCATTER_H_
#define HEPQUERY_SCATTER_SCATTER_H_

#include <functional>
#include <string>
#include <vector>

#include "core/status.h"
#include "scatter/ipc.h"

namespace hepq::scatter {

// Multi-process scatter/gather execution over a sharded dataset. The
// coordinator assigns each worker process a contiguous range of the
// sorted shard list, the worker runs the query once per shard file (the
// existing single-file execution path, so per-worker memory stays bounded
// by one shard's working set) and streams one fragment per shard back
// over a pipe, and the coordinator merges fragments in global shard
// order. Because the in-process dataset runtime merges per-file subtotals
// in exactly that order (see exec::DatasetLayout), the scattered result
// is bit-identical to a single-process run for any worker count.

/// Contiguous shard range [begin, end) of worker `worker` out of
/// `num_workers` over `num_files` shards: floor(w*F/P) .. floor((w+1)*F/P).
/// Ranges partition [0, F) exactly; sizes differ by at most one.
struct ShardRange {
  int begin = 0;
  int end = 0;

  int size() const { return end - begin; }
};

ShardRange ShardRangeFor(int num_files, int num_workers, int worker);

/// Runs the worker half: `run` once per shard in `range` (paths from
/// `files`, the dataset's sorted shard list), writing one kFragment frame
/// per shard and a final kDone frame to `fd`. When `report_payload` is
/// set it is invoked after the last shard (the caller stops its trace
/// session and builds the kReport body there) and the returned bytes go
/// out as one kReport frame between the fragments and kDone. A shard
/// failure writes a kError frame naming the shard and stops. For
/// fault-path tests the HEPQ_SCATTER_FAULT environment variable injects
/// failures:
///   "kill_before:K"  exit(1) without a frame when shard K is reached
///   "truncate:K"     write only half of shard K's frame, then exit
///   "badversion:K"   write shard K's frame with a wrong version field
///   "badreport"      corrupt the kReport frame's payload bytes
Status RunWorker(
    const std::vector<std::string>& files, ShardRange range,
    const std::function<Result<queries::QueryRunOutput>(const std::string&)>&
        run,
    int fd,
    const std::function<std::vector<uint8_t>()>& report_payload = nullptr);

/// Parse state of one worker's gathered byte stream.
struct WorkerStream {
  /// The shard range this worker was assigned (set by the coordinator;
  /// attributes a stream that broke before its first fragment to the
  /// right shard, independent of worker count).
  ShardRange range;
  std::vector<ShardFragment> fragments;
  /// Decoded kReport frames (at most one from a healthy worker). A
  /// kReport whose payload fails to decode is dropped, not fatal: the
  /// fragments around it still merge and the coordinator reports the
  /// worker as sending no report.
  std::vector<obs::ProcessReport> reports;
  /// Explicit kError frames (failing shard index + message).
  std::vector<std::pair<int, std::string>> errors;
  bool done = false;
  /// First malformed-frame error, if the stream broke mid-frame.
  Status parse_error = Status::OK();
};

/// Parses a worker's complete output stream. Trailing bytes that do not
/// form a full frame — a truncated write — surface as `parse_error`
/// (Corruption), as do bad magic/version/CRC frames; parsing stops there.
WorkerStream ParseWorkerStream(const uint8_t* data, size_t size);

/// Combines per-worker streams into the full fragment list, sorted by
/// shard index. Any missing shard is an error keyed to the smallest
/// missing index — an explicit kError message when the worker sent one,
/// the stream's parse error (naming the shard) when a frame was
/// malformed, and a generic worker-death report otherwise. Keying by
/// shard rather than worker makes the report identical for any worker
/// count. `files` is the sorted shard list (for naming shards in errors).
Result<std::vector<ShardFragment>> CombineWorkerStreams(
    const std::vector<WorkerStream>& streams,
    const std::vector<std::string>& files);

/// Merges complete, sorted fragments in shard order into one output:
/// histograms start zeroed from shard 0's specs and fold in file order
/// (the same association as the in-process two-level merge, hence
/// bit-identical); counters and scan stats sum; cpu_seconds sums;
/// wall_seconds is the max across fragments (workers run concurrently).
Result<queries::QueryRunOutput> MergeShardOutputs(
    const std::vector<ShardFragment>& fragments);

/// Coordinator: spawns `num_workers` subprocesses (argv from `make_argv`,
/// typically this binary re-invoked with --worker-shards=a:b), gathers
/// their streams, and merges. Workers with an empty range are not
/// spawned. `files` is the dataset's sorted shard list.
///
/// When `reports` is non-null it receives one ProcessReport per spawned
/// worker, in shard order; a worker whose kReport frame never arrived (or
/// failed to decode) yields a placeholder with `received = false` and its
/// shard range, so the merged RunReport can degrade deterministically.
Result<queries::QueryRunOutput> RunScattered(
    const std::vector<std::string>& files, int num_workers,
    const std::function<std::vector<std::string>(ShardRange)>& make_argv,
    std::vector<obs::ProcessReport>* reports = nullptr);

}  // namespace hepq::scatter

#endif  // HEPQUERY_SCATTER_SCATTER_H_
