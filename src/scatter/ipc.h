#ifndef HEPQUERY_SCATTER_IPC_H_
#define HEPQUERY_SCATTER_IPC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "obs/report.h"
#include "queries/adl.h"

namespace hepq::scatter {

// Wire protocol between scatter workers and the gather coordinator. A
// worker writes a stream of length-prefixed frames to its pipe:
//
//   magic(u32) version(u32) type(u32) payload_len(u64) payload crc32(u32)
//
// All integers little-endian; the CRC (fileio's IEEE polynomial) covers
// the payload bytes only. Doubles travel as raw IEEE-754 bits, so a
// decoded fragment reproduces the worker's accumulators exactly — the
// cross-process merge is bit-identical to an in-process one.
//
// A healthy worker emits one kFragment frame per shard file of its range,
// in shard order, then (when the coordinator asked for one) a kReport
// frame carrying its full RunReport + raw spans, then one kDone frame. A
// worker that fails on shard k emits a kError frame naming k and exits; a
// crashed worker just stops mid-stream. The coordinator turns either into
// a deterministic error keyed by shard index (never by worker id), so the
// report is identical for any worker count. A lost or corrupt kReport
// frame is never fatal: every fragment precedes it, so the histograms
// still merge and only the merged RunReport is marked partial.

inline constexpr uint32_t kFrameMagic = 0x48515346;  // "FSQH" on disk (LE)
/// v2: kReport frames; fragment ScanStats carry the cache-hierarchy
/// counters (footer/chunk hits+misses, cache_bytes_served, per-leaf
/// cache_bytes_served) so cross-process cache totals reconcile too.
inline constexpr uint32_t kFrameVersion = 2;
/// Hard payload bound (1 GiB): a malformed length prefix must not make the
/// coordinator try to buffer arbitrary garbage.
inline constexpr uint64_t kMaxFramePayload = 1ull << 30;

enum class FrameType : uint32_t {
  kFragment = 1,
  kDone = 2,
  kError = 3,
  kReport = 4,
};

struct Frame {
  FrameType type = FrameType::kDone;
  std::vector<uint8_t> payload;
};

/// One shard's complete query result: the unit the gather merges. The
/// shard (= dataset file) index is global, assigned from the sorted shard
/// list every process resolves identically.
struct ShardFragment {
  int file_index = 0;
  queries::QueryRunOutput output;
};

/// Serializes one frame (header + payload + CRC).
std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload);

/// Attempts to parse one frame from `data`. Returns true and fills
/// `frame`/`consumed` when a complete, well-formed frame is present;
/// false when more bytes are needed (nothing consumed). Malformed input
/// (bad magic, unsupported version, oversized length, CRC mismatch) is a
/// Corruption/Invalid error.
Result<bool> TryParseFrame(const uint8_t* data, size_t size, Frame* frame,
                           size_t* consumed);

/// Serializes a shard fragment (every QueryRunOutput accumulator,
/// histograms exploded via Histogram1D::ToParts, raw IEEE-754 doubles).
std::vector<uint8_t> EncodeFragmentPayload(const ShardFragment& fragment);
/// Inverse of EncodeFragmentPayload.
Result<ShardFragment> DecodeFragmentPayload(const std::vector<uint8_t>& payload);

/// kError payload: the failing global shard index and the error message.
std::vector<uint8_t> EncodeErrorPayload(int file_index,
                                        const std::string& message);
Status DecodeErrorPayload(const std::vector<uint8_t>& payload,
                          int* file_index, std::string* message);

/// kDone payload: the number of fragments the worker emitted.
std::vector<uint8_t> EncodeDonePayload(int num_fragments);
Status DecodeDonePayload(const std::vector<uint8_t>& payload,
                         int* num_fragments);

/// kReport payload: the worker's full observability state — its
/// aggregated RunReport (stages, workers, stragglers, counters, metrics
/// snapshot) plus every raw span (names interned in a payload-local
/// string table), so the coordinator can both merge the reports and
/// stitch all processes into one Chrome trace. Doubles travel as raw
/// IEEE-754 bits like fragments; the decoded report round-trips exactly.
std::vector<uint8_t> EncodeReportPayload(const obs::ProcessReport& report);
/// Inverse of EncodeReportPayload. Decoded span names point into the
/// returned report's name_pool.
Result<obs::ProcessReport> DecodeReportPayload(
    const std::vector<uint8_t>& payload);

}  // namespace hepq::scatter

#endif  // HEPQUERY_SCATTER_IPC_H_
