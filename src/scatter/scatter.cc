#include "scatter/scatter.h"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace hepq::scatter {

ShardRange ShardRangeFor(int num_files, int num_workers, int worker) {
  ShardRange range;
  const int64_t f = num_files;
  range.begin = static_cast<int>(worker * f / num_workers);
  range.end = static_cast<int>((worker + 1) * f / num_workers);
  return range;
}

namespace {

Status WriteAll(int fd, const uint8_t* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("scatter worker cannot write frame: " +
                             std::string(std::strerror(errno)));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Parsed HEPQ_SCATTER_FAULT directive (test-only fault injection).
struct FaultSpec {
  enum class Kind { kNone, kKillBefore, kTruncate, kBadVersion, kBadReport };
  Kind kind = Kind::kNone;
  int shard = -1;
};

FaultSpec ParseFault() {
  FaultSpec fault;
  const char* env = std::getenv("HEPQ_SCATTER_FAULT");
  if (env == nullptr || env[0] == '\0') return fault;
  const std::string spec = env;
  if (spec == "badreport") {
    fault.kind = FaultSpec::Kind::kBadReport;
    return fault;
  }
  const size_t colon = spec.find(':');
  if (colon == std::string::npos) return fault;
  const std::string kind = spec.substr(0, colon);
  fault.shard = std::atoi(spec.c_str() + colon + 1);
  if (kind == "kill_before") {
    fault.kind = FaultSpec::Kind::kKillBefore;
  } else if (kind == "truncate") {
    fault.kind = FaultSpec::Kind::kTruncate;
  } else if (kind == "badversion") {
    fault.kind = FaultSpec::Kind::kBadVersion;
  }
  return fault;
}

}  // namespace

Status RunWorker(
    const std::vector<std::string>& files, ShardRange range,
    const std::function<Result<queries::QueryRunOutput>(const std::string&)>&
        run,
    int fd, const std::function<std::vector<uint8_t>()>& report_payload) {
  const FaultSpec fault = ParseFault();
  int emitted = 0;
  for (int shard = range.begin; shard < range.end; ++shard) {
    if (fault.shard == shard) {
      if (fault.kind == FaultSpec::Kind::kKillBefore) {
        // Simulate a crash: no error frame, no exit handlers, just gone.
        ::_exit(1);
      }
    }
    Result<queries::QueryRunOutput> output =
        run(files[static_cast<size_t>(shard)]);
    if (!output.ok()) {
      const std::string message =
          "shard " + std::to_string(shard) + " ('" +
          files[static_cast<size_t>(shard)] +
          "') failed: " + output.status().message();
      const std::vector<uint8_t> frame = EncodeFrame(
          FrameType::kError, EncodeErrorPayload(shard, message));
      HEPQ_RETURN_NOT_OK(WriteAll(fd, frame.data(), frame.size()));
      return output.status();
    }
    ShardFragment fragment;
    fragment.file_index = shard;
    fragment.output = std::move(*output);
    std::vector<uint8_t> frame =
        EncodeFrame(FrameType::kFragment, EncodeFragmentPayload(fragment));
    if (fault.shard == shard) {
      if (fault.kind == FaultSpec::Kind::kTruncate) {
        HEPQ_RETURN_NOT_OK(WriteAll(fd, frame.data(), frame.size() / 2));
        ::_exit(1);
      }
      if (fault.kind == FaultSpec::Kind::kBadVersion) {
        // Version is the second little-endian u32 of the header.
        const uint32_t bogus = kFrameVersion + 41;
        std::memcpy(frame.data() + 4, &bogus, sizeof(bogus));
        HEPQ_RETURN_NOT_OK(WriteAll(fd, frame.data(), frame.size()));
        ::_exit(1);
      }
    }
    HEPQ_RETURN_NOT_OK(WriteAll(fd, frame.data(), frame.size()));
    ++emitted;
  }
  if (report_payload != nullptr) {
    std::vector<uint8_t> frame =
        EncodeFrame(FrameType::kReport, report_payload());
    if (fault.kind == FaultSpec::Kind::kBadReport && frame.size() > 24) {
      // Flip one payload byte so the frame CRC fails at the coordinator —
      // the lost-report degradation path, with the histograms intact.
      frame[24] ^= 0xff;
    }
    HEPQ_RETURN_NOT_OK(WriteAll(fd, frame.data(), frame.size()));
  }
  const std::vector<uint8_t> done =
      EncodeFrame(FrameType::kDone, EncodeDonePayload(emitted));
  return WriteAll(fd, done.data(), done.size());
}

WorkerStream ParseWorkerStream(const uint8_t* data, size_t size) {
  WorkerStream stream;
  size_t pos = 0;
  while (pos < size) {
    Frame frame;
    size_t consumed = 0;
    Result<bool> complete = TryParseFrame(data + pos, size - pos, &frame,
                                          &consumed);
    if (!complete.ok()) {
      stream.parse_error = complete.status();
      return stream;
    }
    if (!*complete) {
      // Trailing bytes with no full frame: the worker died mid-write.
      stream.parse_error =
          Status::Corruption("scatter worker stream ends mid-frame");
      return stream;
    }
    pos += consumed;
    switch (frame.type) {
      case FrameType::kFragment: {
        Result<ShardFragment> fragment = DecodeFragmentPayload(frame.payload);
        if (!fragment.ok()) {
          stream.parse_error = fragment.status();
          return stream;
        }
        stream.fragments.push_back(std::move(*fragment));
        break;
      }
      case FrameType::kError: {
        int shard = -1;
        std::string message;
        Status s = DecodeErrorPayload(frame.payload, &shard, &message);
        if (!s.ok()) {
          stream.parse_error = s;
          return stream;
        }
        stream.errors.emplace_back(shard, message);
        break;
      }
      case FrameType::kReport: {
        // A report that fails to decode (future schema drift) is dropped,
        // not fatal: observability frames must never doom the result.
        Result<obs::ProcessReport> report = DecodeReportPayload(frame.payload);
        if (report.ok()) stream.reports.push_back(std::move(*report));
        break;
      }
      case FrameType::kDone:
        stream.done = true;
        break;
    }
  }
  return stream;
}

Result<std::vector<ShardFragment>> CombineWorkerStreams(
    const std::vector<WorkerStream>& streams,
    const std::vector<std::string>& files) {
  const int num_files = static_cast<int>(files.size());
  std::vector<const ShardFragment*> by_shard(
      static_cast<size_t>(num_files), nullptr);
  // Shard-indexed error ledger, so the verdict below depends only on
  // which shards failed and how — never on which worker held them.
  std::vector<std::string> shard_errors(static_cast<size_t>(num_files));
  for (const WorkerStream& stream : streams) {
    for (const ShardFragment& fragment : stream.fragments) {
      if (fragment.file_index < 0 || fragment.file_index >= num_files) {
        return Status::Corruption(
            "scatter fragment for out-of-range shard " +
            std::to_string(fragment.file_index));
      }
      if (by_shard[static_cast<size_t>(fragment.file_index)] != nullptr) {
        return Status::Corruption("duplicate scatter fragment for shard " +
                                  std::to_string(fragment.file_index));
      }
      by_shard[static_cast<size_t>(fragment.file_index)] = &fragment;
    }
    for (const auto& [shard, message] : stream.errors) {
      if (shard >= 0 && shard < num_files &&
          shard_errors[static_cast<size_t>(shard)].empty()) {
        shard_errors[static_cast<size_t>(shard)] = message;
      }
    }
    if (!stream.parse_error.ok()) {
      // A malformed stream dooms the shard right after the stream's last
      // whole fragment (workers emit fragments in shard order), or the
      // first shard of the worker's range when nothing parsed — so the
      // attribution is by shard, never by worker.
      int next = stream.range.begin - 1;
      for (const ShardFragment& fragment : stream.fragments) {
        next = std::max(next, fragment.file_index);
      }
      ++next;
      if (next < num_files &&
          shard_errors[static_cast<size_t>(next)].empty() &&
          by_shard[static_cast<size_t>(next)] == nullptr) {
        shard_errors[static_cast<size_t>(next)] =
            "shard " + std::to_string(next) + " ('" +
            files[static_cast<size_t>(next)] +
            "'): " + stream.parse_error.message();
      }
    }
  }
  // First-error determinism: report the smallest shard without a
  // fragment, with the most specific message available for it.
  for (int shard = 0; shard < num_files; ++shard) {
    if (by_shard[static_cast<size_t>(shard)] != nullptr) continue;
    if (!shard_errors[static_cast<size_t>(shard)].empty()) {
      return Status::IoError("scatter worker failed: " +
                             shard_errors[static_cast<size_t>(shard)]);
    }
    return Status::IoError(
        "scatter worker exited before completing shard " +
        std::to_string(shard) + " ('" + files[static_cast<size_t>(shard)] +
        "')");
  }
  std::vector<ShardFragment> fragments;
  fragments.reserve(static_cast<size_t>(num_files));
  for (int shard = 0; shard < num_files; ++shard) {
    fragments.push_back(*by_shard[static_cast<size_t>(shard)]);
  }
  return fragments;
}

Result<queries::QueryRunOutput> MergeShardOutputs(
    const std::vector<ShardFragment>& fragments) {
  if (fragments.empty()) {
    return Status::Invalid("no shard fragments to merge");
  }
  queries::QueryRunOutput total;
  // Zero-initialized histograms from shard 0's specs: the same starting
  // point as the in-process run's result histograms, so folding per-shard
  // subtotals in shard order reproduces its FP association exactly.
  for (const Histogram1D& h : fragments[0].output.histograms) {
    total.histograms.emplace_back(h.spec());
  }
  for (const ShardFragment& fragment : fragments) {
    const queries::QueryRunOutput& o = fragment.output;
    if (o.histograms.size() != total.histograms.size()) {
      return Status::Invalid("shard " + std::to_string(fragment.file_index) +
                             " carries a different histogram count");
    }
    for (size_t h = 0; h < total.histograms.size(); ++h) {
      HEPQ_RETURN_NOT_OK(total.histograms[h].Merge(o.histograms[h]));
    }
    total.events_processed += o.events_processed;
    total.ops += o.ops;
    total.cpu_seconds += o.cpu_seconds;
    total.wall_seconds = std::max(total.wall_seconds, o.wall_seconds);
    total.scan.Add(o.scan);
  }
  return total;
}

Result<queries::QueryRunOutput> RunScattered(
    const std::vector<std::string>& files, int num_workers,
    const std::function<std::vector<std::string>(ShardRange)>& make_argv,
    std::vector<obs::ProcessReport>* reports) {
  if (files.empty()) return Status::Invalid("scatter over an empty dataset");
  if (num_workers < 1) num_workers = 1;
  static auto& workers_spawned =
      obs::metrics::GetCounter("hepq_scatter_workers_spawned_total");
  static auto& worker_failures =
      obs::metrics::GetCounter("hepq_scatter_worker_failures_total");
  static auto& reports_missing =
      obs::metrics::GetCounter("hepq_scatter_reports_missing_total");

  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    ShardRange range;
    std::vector<uint8_t> buffer;
  };
  std::vector<Worker> workers;
  for (int w = 0; w < num_workers; ++w) {
    const ShardRange range =
        ShardRangeFor(static_cast<int>(files.size()), num_workers, w);
    if (range.size() == 0) continue;  // more workers than shards
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      return Status::IoError("cannot create scatter pipe: " +
                             std::string(std::strerror(errno)));
    }
    const std::vector<std::string> argv_strings = make_argv(range);
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
      return Status::IoError("cannot fork scatter worker: " +
                             std::string(std::strerror(errno)));
    }
    if (pid == 0) {
      // Child: frames go to stdout, diagnostics stay on stderr.
      ::close(pipe_fds[0]);
      ::dup2(pipe_fds[1], STDOUT_FILENO);
      ::close(pipe_fds[1]);
      std::vector<char*> argv;
      argv.reserve(argv_strings.size() + 1);
      for (const std::string& arg : argv_strings) {
        argv.push_back(const_cast<char*>(arg.c_str()));
      }
      argv.push_back(nullptr);
      ::execvp(argv[0], argv.data());
      std::fprintf(stderr, "exec '%s' failed: %s\n", argv[0],
                   std::strerror(errno));
      ::_exit(127);
    }
    ::close(pipe_fds[1]);
    workers_spawned.Add(1);
    Worker worker;
    worker.pid = pid;
    worker.fd = pipe_fds[0];
    worker.range = range;
    workers.push_back(worker);
  }

  // Gather: drain every pipe until EOF. Workers stream concurrently;
  // buffers are parsed afterwards in worker order, so gather timing never
  // affects the result.
  size_t open_fds = workers.size();
  std::vector<struct pollfd> fds(workers.size());
  while (open_fds > 0) {
    for (size_t w = 0; w < workers.size(); ++w) {
      fds[w].fd = workers[w].fd;
      fds[w].events = POLLIN;
      fds[w].revents = 0;
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (size_t w = 0; w < workers.size(); ++w) {
      if (workers[w].fd < 0 || fds[w].revents == 0) continue;
      uint8_t chunk[65536];
      const ssize_t n = ::read(workers[w].fd, chunk, sizeof(chunk));
      if (n > 0) {
        workers[w].buffer.insert(workers[w].buffer.end(), chunk, chunk + n);
      } else if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
        ::close(workers[w].fd);
        workers[w].fd = -1;
        --open_fds;
      }
    }
  }
  for (Worker& worker : workers) {
    if (worker.fd >= 0) ::close(worker.fd);
    int wstatus = 0;
    while (::waitpid(worker.pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
      worker_failures.Add(1);
    }
  }

  std::vector<WorkerStream> streams;
  streams.reserve(workers.size());
  for (const Worker& worker : workers) {
    WorkerStream stream =
        ParseWorkerStream(worker.buffer.data(), worker.buffer.size());
    stream.range = worker.range;
    streams.push_back(std::move(stream));
  }
  if (reports != nullptr) {
    // One slot per spawned worker, in shard order; a worker that sent no
    // decodable kReport leaves a placeholder carrying only its range, so
    // the merged report can say exactly which shards lost attribution.
    reports->clear();
    for (WorkerStream& stream : streams) {
      if (!stream.reports.empty()) {
        reports->push_back(std::move(stream.reports.front()));
      } else {
        obs::ProcessReport placeholder;
        placeholder.shard_begin = stream.range.begin;
        placeholder.shard_end = stream.range.end;
        placeholder.received = false;
        reports->push_back(std::move(placeholder));
        reports_missing.Add(1);
      }
    }
  }
  std::vector<ShardFragment> fragments;
  HEPQ_ASSIGN_OR_RETURN(fragments, CombineWorkerStreams(streams, files));
  return MergeShardOutputs(fragments);
}

}  // namespace hepq::scatter
