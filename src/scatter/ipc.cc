#include "scatter/ipc.h"

#include <cstring>

#include "fileio/crc32.h"
#include "obs/metrics.h"

namespace hepq::scatter {

namespace {

// ---- little-endian wire primitives -------------------------------------

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Bounds-checked cursor over a payload; every getter fails with
/// Corruption once the payload runs short.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Status GetU32(uint32_t* v) {
    HEPQ_RETURN_NOT_OK(Need(4));
    *v = ReadU32(data_ + pos_);
    pos_ += 4;
    return Status::OK();
  }

  Status GetU64(uint64_t* v) {
    HEPQ_RETURN_NOT_OK(Need(8));
    *v = ReadU64(data_ + pos_);
    pos_ += 8;
    return Status::OK();
  }

  Status GetI64(int64_t* v) {
    uint64_t u;
    HEPQ_RETURN_NOT_OK(GetU64(&u));
    *v = static_cast<int64_t>(u);
    return Status::OK();
  }

  Status GetF64(double* v) {
    uint64_t bits;
    HEPQ_RETURN_NOT_OK(GetU64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }

  Status GetString(std::string* s) {
    uint32_t len;
    HEPQ_RETURN_NOT_OK(GetU32(&len));
    HEPQ_RETURN_NOT_OK(Need(len));
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return Status::OK();
  }

  bool exhausted() const { return pos_ == size_; }

 private:
  Status Need(size_t n) {
    if (size_ - pos_ < n) {
      return Status::Corruption("truncated scatter frame payload");
    }
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

constexpr size_t kHeaderSize = 4 + 4 + 4 + 8;  // magic version type len

void PutScanStats(std::vector<uint8_t>* out, const ScanStats& scan) {
  PutU64(out, scan.storage_bytes);
  PutU64(out, scan.encoded_bytes);
  PutU64(out, scan.logical_bytes_bq);
  PutU64(out, scan.ideal_bytes);
  PutU64(out, scan.chunks_read);
  PutU64(out, scan.values_read);
  PutU64(out, scan.decoded_bytes);
  PutU64(out, scan.pages_read);
  PutU64(out, scan.pages_pruned);
  PutU64(out, scan.rows_pruned);
  PutU64(out, scan.rows_read);
  PutU64(out, scan.lanes_pruned);
  PutU64(out, scan.groups_pruned);
  PutU64(out, scan.footer_cache_hits);
  PutU64(out, scan.footer_cache_misses);
  PutU64(out, scan.chunk_cache_hits);
  PutU64(out, scan.chunk_cache_misses);
  PutU64(out, scan.cache_bytes_served);
  PutU32(out, static_cast<uint32_t>(scan.leaves.size()));
  for (const LeafScanStats& leaf : scan.leaves) {
    PutString(out, leaf.path);
    PutU64(out, leaf.storage_bytes);
    PutU64(out, leaf.decoded_bytes);
    PutU64(out, leaf.chunks_read);
    PutU64(out, leaf.pages_read);
    PutU64(out, leaf.pages_pruned);
    PutU64(out, leaf.cache_bytes_served);
  }
}

Status GetScanStats(WireReader* in, ScanStats* scan) {
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->storage_bytes));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->encoded_bytes));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->logical_bytes_bq));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->ideal_bytes));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->chunks_read));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->values_read));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->decoded_bytes));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->pages_read));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->pages_pruned));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->rows_pruned));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->rows_read));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->lanes_pruned));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->groups_pruned));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->footer_cache_hits));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->footer_cache_misses));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->chunk_cache_hits));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->chunk_cache_misses));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->cache_bytes_served));
  uint32_t num_leaves;
  HEPQ_RETURN_NOT_OK(in->GetU32(&num_leaves));
  scan->leaves.resize(num_leaves);
  for (uint32_t i = 0; i < num_leaves; ++i) {
    LeafScanStats& leaf = scan->leaves[i];
    HEPQ_RETURN_NOT_OK(in->GetString(&leaf.path));
    HEPQ_RETURN_NOT_OK(in->GetU64(&leaf.storage_bytes));
    HEPQ_RETURN_NOT_OK(in->GetU64(&leaf.decoded_bytes));
    HEPQ_RETURN_NOT_OK(in->GetU64(&leaf.chunks_read));
    HEPQ_RETURN_NOT_OK(in->GetU64(&leaf.pages_read));
    HEPQ_RETURN_NOT_OK(in->GetU64(&leaf.pages_pruned));
    HEPQ_RETURN_NOT_OK(in->GetU64(&leaf.cache_bytes_served));
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload) {
  static auto& frames_encoded =
      obs::metrics::GetCounter("hepq_scatter_frames_encoded_total");
  frames_encoded.Add(1);
  std::vector<uint8_t> out;
  out.reserve(kHeaderSize + payload.size() + 4);
  PutU32(&out, kFrameMagic);
  PutU32(&out, kFrameVersion);
  PutU32(&out, static_cast<uint32_t>(type));
  PutU64(&out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  PutU32(&out, Crc32(payload.data(), payload.size()));
  return out;
}

Result<bool> TryParseFrame(const uint8_t* data, size_t size, Frame* frame,
                           size_t* consumed) {
  *consumed = 0;
  if (size < kHeaderSize) return false;
  const uint32_t magic = ReadU32(data);
  if (magic != kFrameMagic) {
    return Status::Corruption("bad scatter frame magic");
  }
  const uint32_t version = ReadU32(data + 4);
  if (version != kFrameVersion) {
    return Status::Invalid("scatter frame version " +
                           std::to_string(version) + ", expected " +
                           std::to_string(kFrameVersion));
  }
  const uint32_t type = ReadU32(data + 8);
  if (type != static_cast<uint32_t>(FrameType::kFragment) &&
      type != static_cast<uint32_t>(FrameType::kDone) &&
      type != static_cast<uint32_t>(FrameType::kError) &&
      type != static_cast<uint32_t>(FrameType::kReport)) {
    return Status::Corruption("unknown scatter frame type " +
                              std::to_string(type));
  }
  const uint64_t payload_len = ReadU64(data + 12);
  if (payload_len > kMaxFramePayload) {
    return Status::Corruption("scatter frame payload length " +
                              std::to_string(payload_len) +
                              " exceeds the 1 GiB bound");
  }
  const size_t total = kHeaderSize + static_cast<size_t>(payload_len) + 4;
  if (size < total) return false;
  const uint8_t* payload = data + kHeaderSize;
  const uint32_t crc = ReadU32(payload + payload_len);
  if (crc != Crc32(payload, static_cast<size_t>(payload_len))) {
    static auto& crc_failures =
        obs::metrics::GetCounter("hepq_scatter_crc_failures_total");
    crc_failures.Add(1);
    return Status::Corruption("scatter frame CRC mismatch");
  }
  static auto& frames_parsed =
      obs::metrics::GetCounter("hepq_scatter_frames_parsed_total");
  frames_parsed.Add(1);
  frame->type = static_cast<FrameType>(type);
  frame->payload.assign(payload, payload + payload_len);
  *consumed = total;
  return true;
}

std::vector<uint8_t> EncodeFragmentPayload(const ShardFragment& fragment) {
  std::vector<uint8_t> out;
  PutU32(&out, static_cast<uint32_t>(fragment.file_index));
  const queries::QueryRunOutput& o = fragment.output;
  PutI64(&out, o.events_processed);
  PutF64(&out, o.wall_seconds);
  PutF64(&out, o.cpu_seconds);
  PutU64(&out, o.ops);
  PutScanStats(&out, o.scan);
  PutU32(&out, static_cast<uint32_t>(o.histograms.size()));
  for (const Histogram1D& h : o.histograms) {
    const HistogramParts parts = h.ToParts();
    PutString(&out, parts.spec.name);
    PutString(&out, parts.spec.title);
    PutU32(&out, static_cast<uint32_t>(parts.spec.num_bins));
    PutF64(&out, parts.spec.lo);
    PutF64(&out, parts.spec.hi);
    PutU32(&out, static_cast<uint32_t>(parts.bins.size()));
    for (double bin : parts.bins) PutF64(&out, bin);
    PutF64(&out, parts.underflow);
    PutF64(&out, parts.overflow);
    PutU64(&out, parts.num_entries);
    PutF64(&out, parts.sum_w);
    PutF64(&out, parts.sum_wx);
    PutF64(&out, parts.sum_wx2);
  }
  return out;
}

Result<ShardFragment> DecodeFragmentPayload(
    const std::vector<uint8_t>& payload) {
  WireReader in(payload.data(), payload.size());
  ShardFragment fragment;
  uint32_t file_index;
  HEPQ_RETURN_NOT_OK(in.GetU32(&file_index));
  fragment.file_index = static_cast<int>(file_index);
  queries::QueryRunOutput& o = fragment.output;
  HEPQ_RETURN_NOT_OK(in.GetI64(&o.events_processed));
  HEPQ_RETURN_NOT_OK(in.GetF64(&o.wall_seconds));
  HEPQ_RETURN_NOT_OK(in.GetF64(&o.cpu_seconds));
  HEPQ_RETURN_NOT_OK(in.GetU64(&o.ops));
  HEPQ_RETURN_NOT_OK(GetScanStats(&in, &o.scan));
  uint32_t num_histos;
  HEPQ_RETURN_NOT_OK(in.GetU32(&num_histos));
  o.histograms.reserve(num_histos);
  for (uint32_t h = 0; h < num_histos; ++h) {
    HistogramParts parts;
    HEPQ_RETURN_NOT_OK(in.GetString(&parts.spec.name));
    HEPQ_RETURN_NOT_OK(in.GetString(&parts.spec.title));
    uint32_t num_bins;
    HEPQ_RETURN_NOT_OK(in.GetU32(&num_bins));
    parts.spec.num_bins = static_cast<int>(num_bins);
    HEPQ_RETURN_NOT_OK(in.GetF64(&parts.spec.lo));
    HEPQ_RETURN_NOT_OK(in.GetF64(&parts.spec.hi));
    uint32_t bin_count;
    HEPQ_RETURN_NOT_OK(in.GetU32(&bin_count));
    parts.bins.resize(bin_count);
    for (uint32_t b = 0; b < bin_count; ++b) {
      HEPQ_RETURN_NOT_OK(in.GetF64(&parts.bins[b]));
    }
    HEPQ_RETURN_NOT_OK(in.GetF64(&parts.underflow));
    HEPQ_RETURN_NOT_OK(in.GetF64(&parts.overflow));
    HEPQ_RETURN_NOT_OK(in.GetU64(&parts.num_entries));
    HEPQ_RETURN_NOT_OK(in.GetF64(&parts.sum_w));
    HEPQ_RETURN_NOT_OK(in.GetF64(&parts.sum_wx));
    HEPQ_RETURN_NOT_OK(in.GetF64(&parts.sum_wx2));
    Histogram1D histo;
    HEPQ_ASSIGN_OR_RETURN(histo, Histogram1D::FromParts(parts));
    o.histograms.push_back(std::move(histo));
  }
  if (!in.exhausted()) {
    return Status::Corruption("scatter fragment payload has trailing bytes");
  }
  return fragment;
}

std::vector<uint8_t> EncodeErrorPayload(int file_index,
                                        const std::string& message) {
  std::vector<uint8_t> out;
  PutU32(&out, static_cast<uint32_t>(file_index));
  PutString(&out, message);
  return out;
}

Status DecodeErrorPayload(const std::vector<uint8_t>& payload,
                          int* file_index, std::string* message) {
  WireReader in(payload.data(), payload.size());
  uint32_t index;
  HEPQ_RETURN_NOT_OK(in.GetU32(&index));
  *file_index = static_cast<int>(index);
  return in.GetString(message);
}

std::vector<uint8_t> EncodeDonePayload(int num_fragments) {
  std::vector<uint8_t> out;
  PutU32(&out, static_cast<uint32_t>(num_fragments));
  return out;
}

Status DecodeDonePayload(const std::vector<uint8_t>& payload,
                         int* num_fragments) {
  WireReader in(payload.data(), payload.size());
  uint32_t n;
  HEPQ_RETURN_NOT_OK(in.GetU32(&n));
  *num_fragments = static_cast<int>(n);
  return Status::OK();
}

namespace {

void PutI32(std::vector<uint8_t>* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

Status GetI32(WireReader* in, int32_t* v) {
  uint32_t u;
  HEPQ_RETURN_NOT_OK(in->GetU32(&u));
  *v = static_cast<int32_t>(u);
  return Status::OK();
}

Status GetStage(WireReader* in, obs::Stage* stage) {
  uint32_t raw;
  HEPQ_RETURN_NOT_OK(in->GetU32(&raw));
  if (raw >= static_cast<uint32_t>(obs::kNumStages)) {
    return Status::Corruption("scatter report names an unknown stage");
  }
  *stage = static_cast<obs::Stage>(raw);
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeReportPayload(const obs::ProcessReport& report) {
  std::vector<uint8_t> out;
  const obs::RunReport& r = report.report;
  PutU32(&out, static_cast<uint32_t>(report.shard_begin));
  PutU32(&out, static_cast<uint32_t>(report.shard_end));
  PutI64(&out, report.session_start_ns);
  PutI64(&out, report.session_stop_ns);
  PutString(&out, r.info.query);
  PutString(&out, r.info.engine);
  PutU32(&out, static_cast<uint32_t>(r.info.threads));
  PutI64(&out, r.info.events_processed);
  PutF64(&out, r.info.wall_seconds);
  PutF64(&out, r.info.cpu_seconds);
  PutScanStats(&out, r.scan);
  PutI64(&out, r.run_span_ns);
  PutI64(&out, r.total_span_ns);
  PutI64(&out, r.window_ns);
  PutU32(&out, static_cast<uint32_t>(r.stages.size()));
  for (const obs::StageSummary& stage : r.stages) {
    PutU32(&out, static_cast<uint32_t>(stage.stage));
    PutI64(&out, stage.wall_ns);
    PutI64(&out, stage.cpu_ns);
    PutU64(&out, stage.bytes);
    PutU64(&out, stage.count);
  }
  PutU32(&out, static_cast<uint32_t>(r.workers.size()));
  for (const obs::WorkerSummary& worker : r.workers) {
    PutI32(&out, worker.worker);
    PutI64(&out, worker.busy_ns);
    PutI64(&out, worker.idle_ns);
    PutF64(&out, worker.busy_fraction);
    PutI64(&out, worker.row_groups);
    PutI64(&out, worker.max_queue_ns);
    PutI32(&out, worker.max_queue_group);
    PutU32(&out, worker.timeline_truncated ? 1 : 0);
    PutU32(&out, static_cast<uint32_t>(worker.timeline.size()));
    for (const auto& entry : worker.timeline) {
      PutI32(&out, entry.group);
      PutI32(&out, entry.slot);
      PutI64(&out, entry.start_ns);
      PutI64(&out, entry.dur_ns);
      PutI64(&out, entry.queue_ns);
      PutU64(&out, entry.bytes);
    }
  }
  PutU32(&out, static_cast<uint32_t>(r.stragglers.size()));
  for (const obs::Straggler& straggler : r.stragglers) {
    PutI32(&out, straggler.group);
    PutI32(&out, straggler.worker);
    PutI32(&out, straggler.slot);
    PutI64(&out, straggler.wall_ns);
    PutU64(&out, straggler.bytes);
  }
  PutU32(&out, static_cast<uint32_t>(r.counters.size()));
  for (const obs::CounterSummary& counter : r.counters) {
    PutString(&out, counter.name);
    PutU32(&out, static_cast<uint32_t>(counter.stage));
    PutI64(&out, counter.ns);
    PutU64(&out, counter.count);
    PutU64(&out, counter.bytes);
  }
  PutU32(&out, static_cast<uint32_t>(r.metrics.size()));
  for (const obs::metrics::MetricSample& sample : r.metrics) {
    PutString(&out, sample.name);
    PutU32(&out, static_cast<uint32_t>(sample.kind));
    PutI64(&out, sample.value);
    PutU32(&out, static_cast<uint32_t>(sample.buckets.size()));
    for (uint64_t bucket : sample.buckets) PutU64(&out, bucket);
    PutU64(&out, sample.observations);
    PutI64(&out, sample.sum_ns);
  }
  // Span name table + spans. Distinct span names are few (one literal per
  // instrument site), so the table keeps the frame compact.
  std::vector<const char*> names;
  std::vector<uint32_t> name_index(report.spans.size());
  for (size_t i = 0; i < report.spans.size(); ++i) {
    const char* name = report.spans[i].name;
    uint32_t index = 0;
    for (; index < names.size(); ++index) {
      if (std::strcmp(names[index], name) == 0) break;
    }
    if (index == names.size()) names.push_back(name);
    name_index[i] = index;
  }
  PutU32(&out, static_cast<uint32_t>(names.size()));
  for (const char* name : names) PutString(&out, name);
  PutU32(&out, static_cast<uint32_t>(report.spans.size()));
  for (size_t i = 0; i < report.spans.size(); ++i) {
    const obs::SpanRecord& span = report.spans[i];
    PutU32(&out, name_index[i]);
    PutU32(&out, static_cast<uint32_t>(span.stage));
    PutU32(&out, span.depth);
    PutU32(&out, span.thread_index);
    PutU32(&out, span.seq);
    PutI64(&out, span.start_ns);
    PutI64(&out, span.end_ns);
    PutI64(&out, span.cpu_ns);
    PutI64(&out, span.queue_ns);
    PutU64(&out, span.bytes);
    PutI32(&out, span.worker);
    PutI32(&out, span.group);
    PutI32(&out, span.slot);
    PutI32(&out, span.leaf);
  }
  return out;
}

Result<obs::ProcessReport> DecodeReportPayload(
    const std::vector<uint8_t>& payload) {
  WireReader in(payload.data(), payload.size());
  obs::ProcessReport report;
  obs::RunReport& r = report.report;
  uint32_t shard_begin, shard_end;
  HEPQ_RETURN_NOT_OK(in.GetU32(&shard_begin));
  HEPQ_RETURN_NOT_OK(in.GetU32(&shard_end));
  report.shard_begin = static_cast<int>(shard_begin);
  report.shard_end = static_cast<int>(shard_end);
  HEPQ_RETURN_NOT_OK(in.GetI64(&report.session_start_ns));
  HEPQ_RETURN_NOT_OK(in.GetI64(&report.session_stop_ns));
  HEPQ_RETURN_NOT_OK(in.GetString(&r.info.query));
  HEPQ_RETURN_NOT_OK(in.GetString(&r.info.engine));
  uint32_t threads;
  HEPQ_RETURN_NOT_OK(in.GetU32(&threads));
  r.info.threads = static_cast<int>(threads);
  HEPQ_RETURN_NOT_OK(in.GetI64(&r.info.events_processed));
  HEPQ_RETURN_NOT_OK(in.GetF64(&r.info.wall_seconds));
  HEPQ_RETURN_NOT_OK(in.GetF64(&r.info.cpu_seconds));
  HEPQ_RETURN_NOT_OK(GetScanStats(&in, &r.scan));
  HEPQ_RETURN_NOT_OK(in.GetI64(&r.run_span_ns));
  HEPQ_RETURN_NOT_OK(in.GetI64(&r.total_span_ns));
  HEPQ_RETURN_NOT_OK(in.GetI64(&r.window_ns));
  uint32_t num_stages;
  HEPQ_RETURN_NOT_OK(in.GetU32(&num_stages));
  for (uint32_t i = 0; i < num_stages; ++i) {
    obs::StageSummary stage;
    HEPQ_RETURN_NOT_OK(GetStage(&in, &stage.stage));
    HEPQ_RETURN_NOT_OK(in.GetI64(&stage.wall_ns));
    HEPQ_RETURN_NOT_OK(in.GetI64(&stage.cpu_ns));
    HEPQ_RETURN_NOT_OK(in.GetU64(&stage.bytes));
    HEPQ_RETURN_NOT_OK(in.GetU64(&stage.count));
    r.stages.push_back(stage);
  }
  uint32_t num_workers;
  HEPQ_RETURN_NOT_OK(in.GetU32(&num_workers));
  for (uint32_t i = 0; i < num_workers; ++i) {
    obs::WorkerSummary worker;
    HEPQ_RETURN_NOT_OK(GetI32(&in, &worker.worker));
    HEPQ_RETURN_NOT_OK(in.GetI64(&worker.busy_ns));
    HEPQ_RETURN_NOT_OK(in.GetI64(&worker.idle_ns));
    HEPQ_RETURN_NOT_OK(in.GetF64(&worker.busy_fraction));
    HEPQ_RETURN_NOT_OK(in.GetI64(&worker.row_groups));
    HEPQ_RETURN_NOT_OK(in.GetI64(&worker.max_queue_ns));
    HEPQ_RETURN_NOT_OK(GetI32(&in, &worker.max_queue_group));
    uint32_t truncated;
    HEPQ_RETURN_NOT_OK(in.GetU32(&truncated));
    worker.timeline_truncated = truncated != 0;
    uint32_t num_entries;
    HEPQ_RETURN_NOT_OK(in.GetU32(&num_entries));
    for (uint32_t e = 0; e < num_entries; ++e) {
      obs::WorkerSummary::TimelineEntry entry;
      HEPQ_RETURN_NOT_OK(GetI32(&in, &entry.group));
      HEPQ_RETURN_NOT_OK(GetI32(&in, &entry.slot));
      HEPQ_RETURN_NOT_OK(in.GetI64(&entry.start_ns));
      HEPQ_RETURN_NOT_OK(in.GetI64(&entry.dur_ns));
      HEPQ_RETURN_NOT_OK(in.GetI64(&entry.queue_ns));
      HEPQ_RETURN_NOT_OK(in.GetU64(&entry.bytes));
      worker.timeline.push_back(entry);
    }
    r.workers.push_back(std::move(worker));
  }
  uint32_t num_stragglers;
  HEPQ_RETURN_NOT_OK(in.GetU32(&num_stragglers));
  for (uint32_t i = 0; i < num_stragglers; ++i) {
    obs::Straggler straggler;
    HEPQ_RETURN_NOT_OK(GetI32(&in, &straggler.group));
    HEPQ_RETURN_NOT_OK(GetI32(&in, &straggler.worker));
    HEPQ_RETURN_NOT_OK(GetI32(&in, &straggler.slot));
    HEPQ_RETURN_NOT_OK(in.GetI64(&straggler.wall_ns));
    HEPQ_RETURN_NOT_OK(in.GetU64(&straggler.bytes));
    r.stragglers.push_back(straggler);
  }
  uint32_t num_counters;
  HEPQ_RETURN_NOT_OK(in.GetU32(&num_counters));
  for (uint32_t i = 0; i < num_counters; ++i) {
    obs::CounterSummary counter;
    HEPQ_RETURN_NOT_OK(in.GetString(&counter.name));
    HEPQ_RETURN_NOT_OK(GetStage(&in, &counter.stage));
    HEPQ_RETURN_NOT_OK(in.GetI64(&counter.ns));
    HEPQ_RETURN_NOT_OK(in.GetU64(&counter.count));
    HEPQ_RETURN_NOT_OK(in.GetU64(&counter.bytes));
    r.counters.push_back(std::move(counter));
  }
  uint32_t num_metrics;
  HEPQ_RETURN_NOT_OK(in.GetU32(&num_metrics));
  for (uint32_t i = 0; i < num_metrics; ++i) {
    obs::metrics::MetricSample sample;
    HEPQ_RETURN_NOT_OK(in.GetString(&sample.name));
    uint32_t kind;
    HEPQ_RETURN_NOT_OK(in.GetU32(&kind));
    if (kind > static_cast<uint32_t>(obs::metrics::MetricKind::kHistogram)) {
      return Status::Corruption("scatter report names an unknown metric kind");
    }
    sample.kind = static_cast<obs::metrics::MetricKind>(kind);
    HEPQ_RETURN_NOT_OK(in.GetI64(&sample.value));
    uint32_t num_buckets;
    HEPQ_RETURN_NOT_OK(in.GetU32(&num_buckets));
    for (uint32_t b = 0; b < num_buckets; ++b) {
      uint64_t bucket;
      HEPQ_RETURN_NOT_OK(in.GetU64(&bucket));
      sample.buckets.push_back(bucket);
    }
    HEPQ_RETURN_NOT_OK(in.GetU64(&sample.observations));
    HEPQ_RETURN_NOT_OK(in.GetI64(&sample.sum_ns));
    r.metrics.push_back(std::move(sample));
  }
  uint32_t num_names;
  HEPQ_RETURN_NOT_OK(in.GetU32(&num_names));
  std::vector<const char*> names;
  for (uint32_t i = 0; i < num_names; ++i) {
    std::string name;
    HEPQ_RETURN_NOT_OK(in.GetString(&name));
    names.push_back(report.InternName(name));
  }
  uint32_t num_spans;
  HEPQ_RETURN_NOT_OK(in.GetU32(&num_spans));
  for (uint32_t i = 0; i < num_spans; ++i) {
    obs::SpanRecord span;
    uint32_t name_index;
    HEPQ_RETURN_NOT_OK(in.GetU32(&name_index));
    if (name_index >= names.size()) {
      return Status::Corruption("scatter report span names a bad name index");
    }
    span.name = names[name_index];
    HEPQ_RETURN_NOT_OK(GetStage(&in, &span.stage));
    uint32_t depth, thread_index;
    HEPQ_RETURN_NOT_OK(in.GetU32(&depth));
    span.depth = static_cast<uint8_t>(depth);
    HEPQ_RETURN_NOT_OK(in.GetU32(&thread_index));
    span.thread_index = static_cast<uint16_t>(thread_index);
    HEPQ_RETURN_NOT_OK(in.GetU32(&span.seq));
    HEPQ_RETURN_NOT_OK(in.GetI64(&span.start_ns));
    HEPQ_RETURN_NOT_OK(in.GetI64(&span.end_ns));
    HEPQ_RETURN_NOT_OK(in.GetI64(&span.cpu_ns));
    HEPQ_RETURN_NOT_OK(in.GetI64(&span.queue_ns));
    HEPQ_RETURN_NOT_OK(in.GetU64(&span.bytes));
    HEPQ_RETURN_NOT_OK(GetI32(&in, &span.worker));
    HEPQ_RETURN_NOT_OK(GetI32(&in, &span.group));
    HEPQ_RETURN_NOT_OK(GetI32(&in, &span.slot));
    HEPQ_RETURN_NOT_OK(GetI32(&in, &span.leaf));
    report.spans.push_back(span);
  }
  if (!in.exhausted()) {
    return Status::Corruption("scatter report payload has trailing bytes");
  }
  return report;
}

}  // namespace hepq::scatter
