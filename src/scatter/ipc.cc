#include "scatter/ipc.h"

#include <cstring>

#include "fileio/crc32.h"

namespace hepq::scatter {

namespace {

// ---- little-endian wire primitives -------------------------------------

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Bounds-checked cursor over a payload; every getter fails with
/// Corruption once the payload runs short.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Status GetU32(uint32_t* v) {
    HEPQ_RETURN_NOT_OK(Need(4));
    *v = ReadU32(data_ + pos_);
    pos_ += 4;
    return Status::OK();
  }

  Status GetU64(uint64_t* v) {
    HEPQ_RETURN_NOT_OK(Need(8));
    *v = ReadU64(data_ + pos_);
    pos_ += 8;
    return Status::OK();
  }

  Status GetI64(int64_t* v) {
    uint64_t u;
    HEPQ_RETURN_NOT_OK(GetU64(&u));
    *v = static_cast<int64_t>(u);
    return Status::OK();
  }

  Status GetF64(double* v) {
    uint64_t bits;
    HEPQ_RETURN_NOT_OK(GetU64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }

  Status GetString(std::string* s) {
    uint32_t len;
    HEPQ_RETURN_NOT_OK(GetU32(&len));
    HEPQ_RETURN_NOT_OK(Need(len));
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return Status::OK();
  }

  bool exhausted() const { return pos_ == size_; }

 private:
  Status Need(size_t n) {
    if (size_ - pos_ < n) {
      return Status::Corruption("truncated scatter frame payload");
    }
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

constexpr size_t kHeaderSize = 4 + 4 + 4 + 8;  // magic version type len

void PutScanStats(std::vector<uint8_t>* out, const ScanStats& scan) {
  PutU64(out, scan.storage_bytes);
  PutU64(out, scan.encoded_bytes);
  PutU64(out, scan.logical_bytes_bq);
  PutU64(out, scan.ideal_bytes);
  PutU64(out, scan.chunks_read);
  PutU64(out, scan.values_read);
  PutU64(out, scan.decoded_bytes);
  PutU64(out, scan.pages_read);
  PutU64(out, scan.pages_pruned);
  PutU64(out, scan.rows_pruned);
  PutU64(out, scan.rows_read);
  PutU64(out, scan.lanes_pruned);
  PutU64(out, scan.groups_pruned);
  PutU32(out, static_cast<uint32_t>(scan.leaves.size()));
  for (const LeafScanStats& leaf : scan.leaves) {
    PutString(out, leaf.path);
    PutU64(out, leaf.storage_bytes);
    PutU64(out, leaf.decoded_bytes);
    PutU64(out, leaf.chunks_read);
    PutU64(out, leaf.pages_read);
    PutU64(out, leaf.pages_pruned);
  }
}

Status GetScanStats(WireReader* in, ScanStats* scan) {
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->storage_bytes));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->encoded_bytes));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->logical_bytes_bq));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->ideal_bytes));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->chunks_read));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->values_read));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->decoded_bytes));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->pages_read));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->pages_pruned));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->rows_pruned));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->rows_read));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->lanes_pruned));
  HEPQ_RETURN_NOT_OK(in->GetU64(&scan->groups_pruned));
  uint32_t num_leaves;
  HEPQ_RETURN_NOT_OK(in->GetU32(&num_leaves));
  scan->leaves.resize(num_leaves);
  for (uint32_t i = 0; i < num_leaves; ++i) {
    LeafScanStats& leaf = scan->leaves[i];
    HEPQ_RETURN_NOT_OK(in->GetString(&leaf.path));
    HEPQ_RETURN_NOT_OK(in->GetU64(&leaf.storage_bytes));
    HEPQ_RETURN_NOT_OK(in->GetU64(&leaf.decoded_bytes));
    HEPQ_RETURN_NOT_OK(in->GetU64(&leaf.chunks_read));
    HEPQ_RETURN_NOT_OK(in->GetU64(&leaf.pages_read));
    HEPQ_RETURN_NOT_OK(in->GetU64(&leaf.pages_pruned));
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(kHeaderSize + payload.size() + 4);
  PutU32(&out, kFrameMagic);
  PutU32(&out, kFrameVersion);
  PutU32(&out, static_cast<uint32_t>(type));
  PutU64(&out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  PutU32(&out, Crc32(payload.data(), payload.size()));
  return out;
}

Result<bool> TryParseFrame(const uint8_t* data, size_t size, Frame* frame,
                           size_t* consumed) {
  *consumed = 0;
  if (size < kHeaderSize) return false;
  const uint32_t magic = ReadU32(data);
  if (magic != kFrameMagic) {
    return Status::Corruption("bad scatter frame magic");
  }
  const uint32_t version = ReadU32(data + 4);
  if (version != kFrameVersion) {
    return Status::Invalid("scatter frame version " +
                           std::to_string(version) + ", expected " +
                           std::to_string(kFrameVersion));
  }
  const uint32_t type = ReadU32(data + 8);
  if (type != static_cast<uint32_t>(FrameType::kFragment) &&
      type != static_cast<uint32_t>(FrameType::kDone) &&
      type != static_cast<uint32_t>(FrameType::kError)) {
    return Status::Corruption("unknown scatter frame type " +
                              std::to_string(type));
  }
  const uint64_t payload_len = ReadU64(data + 12);
  if (payload_len > kMaxFramePayload) {
    return Status::Corruption("scatter frame payload length " +
                              std::to_string(payload_len) +
                              " exceeds the 1 GiB bound");
  }
  const size_t total = kHeaderSize + static_cast<size_t>(payload_len) + 4;
  if (size < total) return false;
  const uint8_t* payload = data + kHeaderSize;
  const uint32_t crc = ReadU32(payload + payload_len);
  if (crc != Crc32(payload, static_cast<size_t>(payload_len))) {
    return Status::Corruption("scatter frame CRC mismatch");
  }
  frame->type = static_cast<FrameType>(type);
  frame->payload.assign(payload, payload + payload_len);
  *consumed = total;
  return true;
}

std::vector<uint8_t> EncodeFragmentPayload(const ShardFragment& fragment) {
  std::vector<uint8_t> out;
  PutU32(&out, static_cast<uint32_t>(fragment.file_index));
  const queries::QueryRunOutput& o = fragment.output;
  PutI64(&out, o.events_processed);
  PutF64(&out, o.wall_seconds);
  PutF64(&out, o.cpu_seconds);
  PutU64(&out, o.ops);
  PutScanStats(&out, o.scan);
  PutU32(&out, static_cast<uint32_t>(o.histograms.size()));
  for (const Histogram1D& h : o.histograms) {
    const HistogramParts parts = h.ToParts();
    PutString(&out, parts.spec.name);
    PutString(&out, parts.spec.title);
    PutU32(&out, static_cast<uint32_t>(parts.spec.num_bins));
    PutF64(&out, parts.spec.lo);
    PutF64(&out, parts.spec.hi);
    PutU32(&out, static_cast<uint32_t>(parts.bins.size()));
    for (double bin : parts.bins) PutF64(&out, bin);
    PutF64(&out, parts.underflow);
    PutF64(&out, parts.overflow);
    PutU64(&out, parts.num_entries);
    PutF64(&out, parts.sum_w);
    PutF64(&out, parts.sum_wx);
    PutF64(&out, parts.sum_wx2);
  }
  return out;
}

Result<ShardFragment> DecodeFragmentPayload(
    const std::vector<uint8_t>& payload) {
  WireReader in(payload.data(), payload.size());
  ShardFragment fragment;
  uint32_t file_index;
  HEPQ_RETURN_NOT_OK(in.GetU32(&file_index));
  fragment.file_index = static_cast<int>(file_index);
  queries::QueryRunOutput& o = fragment.output;
  HEPQ_RETURN_NOT_OK(in.GetI64(&o.events_processed));
  HEPQ_RETURN_NOT_OK(in.GetF64(&o.wall_seconds));
  HEPQ_RETURN_NOT_OK(in.GetF64(&o.cpu_seconds));
  HEPQ_RETURN_NOT_OK(in.GetU64(&o.ops));
  HEPQ_RETURN_NOT_OK(GetScanStats(&in, &o.scan));
  uint32_t num_histos;
  HEPQ_RETURN_NOT_OK(in.GetU32(&num_histos));
  o.histograms.reserve(num_histos);
  for (uint32_t h = 0; h < num_histos; ++h) {
    HistogramParts parts;
    HEPQ_RETURN_NOT_OK(in.GetString(&parts.spec.name));
    HEPQ_RETURN_NOT_OK(in.GetString(&parts.spec.title));
    uint32_t num_bins;
    HEPQ_RETURN_NOT_OK(in.GetU32(&num_bins));
    parts.spec.num_bins = static_cast<int>(num_bins);
    HEPQ_RETURN_NOT_OK(in.GetF64(&parts.spec.lo));
    HEPQ_RETURN_NOT_OK(in.GetF64(&parts.spec.hi));
    uint32_t bin_count;
    HEPQ_RETURN_NOT_OK(in.GetU32(&bin_count));
    parts.bins.resize(bin_count);
    for (uint32_t b = 0; b < bin_count; ++b) {
      HEPQ_RETURN_NOT_OK(in.GetF64(&parts.bins[b]));
    }
    HEPQ_RETURN_NOT_OK(in.GetF64(&parts.underflow));
    HEPQ_RETURN_NOT_OK(in.GetF64(&parts.overflow));
    HEPQ_RETURN_NOT_OK(in.GetU64(&parts.num_entries));
    HEPQ_RETURN_NOT_OK(in.GetF64(&parts.sum_w));
    HEPQ_RETURN_NOT_OK(in.GetF64(&parts.sum_wx));
    HEPQ_RETURN_NOT_OK(in.GetF64(&parts.sum_wx2));
    Histogram1D histo;
    HEPQ_ASSIGN_OR_RETURN(histo, Histogram1D::FromParts(parts));
    o.histograms.push_back(std::move(histo));
  }
  if (!in.exhausted()) {
    return Status::Corruption("scatter fragment payload has trailing bytes");
  }
  return fragment;
}

std::vector<uint8_t> EncodeErrorPayload(int file_index,
                                        const std::string& message) {
  std::vector<uint8_t> out;
  PutU32(&out, static_cast<uint32_t>(file_index));
  PutString(&out, message);
  return out;
}

Status DecodeErrorPayload(const std::vector<uint8_t>& payload,
                          int* file_index, std::string* message) {
  WireReader in(payload.data(), payload.size());
  uint32_t index;
  HEPQ_RETURN_NOT_OK(in.GetU32(&index));
  *file_index = static_cast<int>(index);
  return in.GetString(message);
}

std::vector<uint8_t> EncodeDonePayload(int num_fragments) {
  std::vector<uint8_t> out;
  PutU32(&out, static_cast<uint32_t>(num_fragments));
  return out;
}

Status DecodeDonePayload(const std::vector<uint8_t>& payload,
                         int* num_fragments) {
  WireReader in(payload.data(), payload.size());
  uint32_t n;
  HEPQ_RETURN_NOT_OK(in.GetU32(&n));
  *num_fragments = static_cast<int>(n);
  return Status::OK();
}

}  // namespace hepq::scatter
