#include <cmath>
#include <limits>

#include "core/physics.h"
#include "queries/adl.h"
#include "rdf/rdf.h"

namespace hepq::queries {

namespace {

using rdf::EventView;
using rdf::RDataFrame;

struct LeptonView {
  double pt, eta, phi, mass;
  int charge;
  int flavor;  // 0 = electron, 1 = muon
};

/// Gathers the light leptons (electrons + muons) of one event, the
/// RDataFrame analogue of the Leptons CTE.
template <typename EH, typename MH>
std::vector<LeptonView> CollectLeptons(const EventView& e, const EH& eh,
                                       const MH& mh) {
  std::vector<LeptonView> leptons;
  const auto e_pt = e.Get(eh.pt);
  const auto e_eta = e.Get(eh.eta);
  const auto e_phi = e.Get(eh.phi);
  const auto e_mass = e.Get(eh.mass);
  const auto e_charge = e.Get(eh.charge);
  for (size_t i = 0; i < e_pt.size(); ++i) {
    leptons.push_back(LeptonView{e_pt[i], e_eta[i], e_phi[i], e_mass[i],
                                 e_charge[i], 0});
  }
  const auto m_pt = e.Get(mh.pt);
  const auto m_eta = e.Get(mh.eta);
  const auto m_phi = e.Get(mh.phi);
  const auto m_mass = e.Get(mh.mass);
  const auto m_charge = e.Get(mh.charge);
  for (size_t i = 0; i < m_pt.size(); ++i) {
    leptons.push_back(LeptonView{m_pt[i], m_eta[i], m_phi[i], m_mass[i],
                                 m_charge[i], 1});
  }
  return leptons;
}

struct ParticleHandles {
  rdf::ParticleColumn<float> pt, eta, phi, mass;
  rdf::ParticleColumn<int32_t> charge;
};

Result<ParticleHandles> DeclareKinematics(RDataFrame* df,
                                          const std::string& column,
                                          bool with_charge) {
  ParticleHandles h;
  HEPQ_ASSIGN_OR_RETURN(h.pt, df->Particles<float>(column + ".pt"));
  HEPQ_ASSIGN_OR_RETURN(h.eta, df->Particles<float>(column + ".eta"));
  HEPQ_ASSIGN_OR_RETURN(h.phi, df->Particles<float>(column + ".phi"));
  HEPQ_ASSIGN_OR_RETURN(h.mass, df->Particles<float>(column + ".mass"));
  if (with_charge) {
    HEPQ_ASSIGN_OR_RETURN(h.charge,
                          df->Particles<int32_t>(column + ".charge"));
  }
  return h;
}

}  // namespace

Result<QueryRunOutput> RunAdlQueryRdf(int q, const std::string& path,
                                      const RunOptions& options) {
  rdf::RdfOptions rdf_options;
  rdf_options.num_threads = options.num_threads;
  rdf_options.reader.validate_checksums = options.validate_checksums;
  rdf_options.reader.scan_pushdown = options.scan_pushdown;
  rdf_options.reader.late_materialization = options.late_materialization;
  rdf_options.reader.footer_cache = options.footer_cache;
  rdf_options.reader.chunk_cache = options.chunk_cache;
  std::unique_ptr<RDataFrame> df;
  HEPQ_ASSIGN_OR_RETURN(df, RDataFrame::Open(path, rdf_options));
  const std::vector<HistogramSpec> specs = AdlHistogramSpecs(q);
  std::vector<rdf::HistoHandle> handles;

  switch (q) {
    case 1: {
      rdf::ScalarColumn<float> met;
      HEPQ_ASSIGN_OR_RETURN(met, df->Scalar<float>("MET.pt"));
      handles.push_back(df->root().Histo1D(
          specs[0], [met](const EventView& e) { return e.Get(met); }));
      break;
    }
    case 2: {
      rdf::ParticleColumn<float> jet_pt;
      HEPQ_ASSIGN_OR_RETURN(jet_pt, df->Particles<float>("Jet.pt"));
      handles.push_back(df->root().Histo1DVec(
          specs[0], [jet_pt](const EventView& e) {
            const auto pts = e.Get(jet_pt);
            return rdf::RVecD(pts.begin(), pts.end());
          }));
      break;
    }
    case 3: {
      rdf::ParticleColumn<float> jet_pt, jet_eta;
      HEPQ_ASSIGN_OR_RETURN(jet_pt, df->Particles<float>("Jet.pt"));
      HEPQ_ASSIGN_OR_RETURN(jet_eta, df->Particles<float>("Jet.eta"));
      handles.push_back(df->root().Histo1DVec(
          specs[0], [jet_pt, jet_eta](const EventView& e) {
            const auto pts = e.Get(jet_pt);
            const auto etas = e.Get(jet_eta);
            rdf::RVecD out;
            for (size_t i = 0; i < pts.size(); ++i) {
              if (std::abs(etas[i]) < 1.0) out.push_back(pts[i]);
            }
            return out;
          }));
      break;
    }
    case 4: {
      rdf::ScalarColumn<float> met;
      rdf::ParticleColumn<float> jet_pt;
      HEPQ_ASSIGN_OR_RETURN(met, df->Scalar<float>("MET.pt"));
      HEPQ_ASSIGN_OR_RETURN(jet_pt, df->Particles<float>("Jet.pt"));
      // The hint states necessary conditions of the cut: at least two
      // jets, at least one of them above 40 GeV. Storage uses it for
      // zone-map pruning; the lambda stays authoritative.
      ScanPredicateSet hint;
      hint.AddMinCount("Jet", 2);
      hint.AddItemRange("Jet.pt", 40.0,
                        std::numeric_limits<double>::infinity());
      auto selected =
          df->root().Filter([jet_pt](const EventView& e) {
            int n = 0;
            for (float pt : e.Get(jet_pt)) {
              if (pt > 40.0f) ++n;
            }
            return n >= 2;
          }, std::move(hint));
      handles.push_back(selected.Histo1D(
          specs[0], [met](const EventView& e) { return e.Get(met); }));
      break;
    }
    case 5: {
      rdf::ScalarColumn<float> met;
      ParticleHandles muon;
      HEPQ_ASSIGN_OR_RETURN(met, df->Scalar<float>("MET.pt"));
      HEPQ_ASSIGN_OR_RETURN(muon, DeclareKinematics(df.get(), "Muon", true));
      ScanPredicateSet hint;
      hint.AddMinCount("Muon", 2);  // an opposite-charge pair needs two
      auto selected = df->root().Filter([muon](const EventView& e) {
        const auto pt = e.Get(muon.pt);
        const auto eta = e.Get(muon.eta);
        const auto phi = e.Get(muon.phi);
        const auto mass = e.Get(muon.mass);
        const auto charge = e.Get(muon.charge);
        for (size_t i = 0; i < pt.size(); ++i) {
          for (size_t j = i + 1; j < pt.size(); ++j) {
            if (charge[i] == charge[j]) continue;
            const double m =
                InvariantMass2({pt[i], eta[i], phi[i], mass[i]},
                               {pt[j], eta[j], phi[j], mass[j]});
            if (m > 60.0 && m < 120.0) return true;
          }
        }
        return false;
      }, std::move(hint));
      handles.push_back(selected.Histo1D(
          specs[0], [met](const EventView& e) { return e.Get(met); }));
      break;
    }
    case 6: {
      ParticleHandles jet;
      rdf::ParticleColumn<float> btag;
      HEPQ_ASSIGN_OR_RETURN(jet, DeclareKinematics(df.get(), "Jet", false));
      HEPQ_ASSIGN_OR_RETURN(btag, df->Particles<float>("Jet.btag"));
      ScanPredicateSet hint;
      hint.AddMinCount("Jet", 3);
      auto three_jets = df->root().Filter([jet](const EventView& e) {
        return e.Get(jet.pt).size() >= 3;
      }, std::move(hint));
      // The expensive combination search runs once per event and is shared
      // by the two histograms through a cached vector Define.
      auto best = df->DefineVec("best_trijet", [jet](const EventView& e) {
        const auto pt = e.Get(jet.pt);
        const auto eta = e.Get(jet.eta);
        const auto phi = e.Get(jet.phi);
        const auto mass = e.Get(jet.mass);
        double best_diff = 1e300;
        rdf::RVecD best_indices;
        for (size_t i = 0; i < pt.size(); ++i) {
          for (size_t j = i + 1; j < pt.size(); ++j) {
            for (size_t k = j + 1; k < pt.size(); ++k) {
              const double m = InvariantMass3(
                  {pt[i], eta[i], phi[i], mass[i]},
                  {pt[j], eta[j], phi[j], mass[j]},
                  {pt[k], eta[k], phi[k], mass[k]});
              const double diff = std::abs(m - 172.5);
              if (diff < best_diff) {
                best_diff = diff;
                best_indices = {static_cast<double>(i),
                                static_cast<double>(j),
                                static_cast<double>(k)};
              }
            }
          }
        }
        return best_indices;
      });
      handles.push_back(three_jets.Histo1D(
          specs[0], [jet, best](const EventView& e) {
            const auto& idx = e.Get(best);
            const auto pt = e.Get(jet.pt);
            const auto eta = e.Get(jet.eta);
            const auto phi = e.Get(jet.phi);
            const auto mass = e.Get(jet.mass);
            const auto i = static_cast<size_t>(idx[0]);
            const auto j = static_cast<size_t>(idx[1]);
            const auto k = static_cast<size_t>(idx[2]);
            return AddPtEtaPhiM3({pt[i], eta[i], phi[i], mass[i]},
                                 {pt[j], eta[j], phi[j], mass[j]},
                                 {pt[k], eta[k], phi[k], mass[k]})
                .pt;
          }));
      handles.push_back(three_jets.Histo1D(
          specs[1], [btag, best](const EventView& e) {
            const auto& idx = e.Get(best);
            const auto tags = e.Get(btag);
            double best_tag = 0.0;
            for (double d : idx) {
              best_tag =
                  std::max(best_tag,
                           static_cast<double>(tags[static_cast<size_t>(d)]));
            }
            return best_tag;
          }));
      break;
    }
    case 7: {
      ParticleHandles jet;
      ParticleHandles electron;
      ParticleHandles muon;
      HEPQ_ASSIGN_OR_RETURN(jet, DeclareKinematics(df.get(), "Jet", false));
      HEPQ_ASSIGN_OR_RETURN(electron,
                            DeclareKinematics(df.get(), "Electron", true));
      HEPQ_ASSIGN_OR_RETURN(muon, DeclareKinematics(df.get(), "Muon", true));
      handles.push_back(df->root().Histo1D(
          specs[0], [jet, electron, muon](const EventView& e) {
            const auto pt = e.Get(jet.pt);
            const auto eta = e.Get(jet.eta);
            const auto phi = e.Get(jet.phi);
            const auto leptons = CollectLeptons(e, electron, muon);
            double sum = 0.0;
            for (size_t i = 0; i < pt.size(); ++i) {
              if (pt[i] <= 30.0f) continue;
              bool isolated = true;
              for (const LeptonView& lepton : leptons) {
                if (lepton.pt <= 10.0) continue;
                if (DeltaR(eta[i], phi[i], lepton.eta, lepton.phi) < 0.4) {
                  isolated = false;
                  break;
                }
              }
              if (isolated) sum += pt[i];
            }
            return sum;
          }));
      break;
    }
    case 8: {
      rdf::ScalarColumn<float> met_pt, met_phi;
      ParticleHandles electron, muon;
      HEPQ_ASSIGN_OR_RETURN(met_pt, df->Scalar<float>("MET.pt"));
      HEPQ_ASSIGN_OR_RETURN(met_phi, df->Scalar<float>("MET.phi"));
      HEPQ_ASSIGN_OR_RETURN(electron,
                            DeclareKinematics(df.get(), "Electron", true));
      HEPQ_ASSIGN_OR_RETURN(muon, DeclareKinematics(df.get(), "Muon", true));
      // Cached per-event: [found, i, j, other] over the combined leptons.
      auto best = df->DefineVec("best_pair", [electron,
                                              muon](const EventView& e) {
        const auto leptons = CollectLeptons(e, electron, muon);
        if (leptons.size() < 3) return rdf::RVecD{0};
        double best_diff = 1e300;
        int best_i = -1, best_j = -1;
        for (size_t i = 0; i < leptons.size(); ++i) {
          for (size_t j = i + 1; j < leptons.size(); ++j) {
            if (leptons[i].flavor != leptons[j].flavor) continue;
            if (leptons[i].charge == leptons[j].charge) continue;
            const double m = InvariantMass2(
                {leptons[i].pt, leptons[i].eta, leptons[i].phi,
                 leptons[i].mass},
                {leptons[j].pt, leptons[j].eta, leptons[j].phi,
                 leptons[j].mass});
            const double diff = std::abs(m - 91.2);
            if (diff < best_diff) {
              best_diff = diff;
              best_i = static_cast<int>(i);
              best_j = static_cast<int>(j);
            }
          }
        }
        if (best_i < 0) return rdf::RVecD{0};
        int other = -1;
        for (size_t l = 0; l < leptons.size(); ++l) {
          if (static_cast<int>(l) == best_i || static_cast<int>(l) == best_j) {
            continue;
          }
          if (other < 0 ||
              leptons[l].pt > leptons[static_cast<size_t>(other)].pt) {
            other = static_cast<int>(l);
          }
        }
        if (other < 0) return rdf::RVecD{0};
        return rdf::RVecD{1, static_cast<double>(best_i),
                          static_cast<double>(best_j),
                          static_cast<double>(other)};
      });
      // A Z candidate plus a third lepton needs three leptons across both
      // flavors combined.
      ScanPredicateSet hint;
      hint.AddMinCountSum({"Electron", "Muon"}, 3);
      auto selected = df->root().Filter([best](const EventView& e) {
        return e.Get(best)[0] != 0.0;
      }, std::move(hint));
      handles.push_back(selected.Histo1D(
          specs[0],
          [met_pt, met_phi, electron, muon, best](const EventView& e) {
            const auto& result = e.Get(best);
            const auto leptons = CollectLeptons(e, electron, muon);
            const LeptonView& other =
                leptons[static_cast<size_t>(result[3])];
            return TransverseMass(e.Get(met_pt), e.Get(met_phi), other.pt,
                                  other.phi);
          }));
      break;
    }
    default:
      return Status::Invalid("ADL query id must be in 1..8");
  }

  HEPQ_RETURN_NOT_OK(df->Run());

  QueryRunOutput out;
  for (const rdf::HistoHandle& handle : handles) {
    out.histograms.push_back(df->GetHistogram(handle));
  }
  out.events_processed = df->run_stats().events_processed;
  out.wall_seconds = df->run_stats().wall_seconds;
  out.cpu_seconds = df->run_stats().cpu_seconds;
  out.scan = df->run_stats().scan;
  return out;
}

}  // namespace hepq::queries
