#include "engine/event_query.h"
#include "queries/adl.h"
#include "queries/builders.h"

namespace hepq::queries {

namespace {

using engine::AggKind;
using engine::AggOverList;
using engine::AnyCombination;
using engine::BestCombination;
using engine::BestElement;
using engine::Call;
using engine::ComboLoop;
using engine::EventQuery;
using engine::ExprPtr;
using engine::Fn;
using engine::IterMember;
using engine::IterOrdinal;
using engine::ListSize;
using engine::Lit;
using engine::ScalarRef;
using engine::Abs;
using engine::And;
using engine::Eq;
using engine::Ge;
using engine::Gt;
using engine::Lt;
using engine::Ne;
using engine::Not;
using engine::Sub;

// Member slot layout shared by the kinematic declarations below.
constexpr int kPt = 0;
constexpr int kEta = 1;
constexpr int kPhi = 2;
constexpr int kMass = 3;

/// (pt, eta, phi, mass) of the particle bound to `iter` over `list`.
std::vector<ExprPtr> Kinematics(int list, int iter) {
  return {IterMember(list, iter, kPt), IterMember(list, iter, kEta),
          IterMember(list, iter, kPhi), IterMember(list, iter, kMass)};
}

std::vector<ExprPtr> ConcatArgs(std::vector<ExprPtr> a,
                                std::vector<ExprPtr> b,
                                std::vector<ExprPtr> c = {}) {
  std::vector<ExprPtr> out = std::move(a);
  out.insert(out.end(), b.begin(), b.end());
  out.insert(out.end(), c.begin(), c.end());
  return out;
}

}  // namespace

Result<engine::EventQuery> BuildAdlEventQuery(int q) {
  const std::vector<HistogramSpec> specs = AdlHistogramSpecs(q);
  EventQuery query("adl_q" + std::to_string(q));
  switch (q) {
    case 1: {
      const int met = query.DeclareScalar("MET.pt");
      query.AddHistogram(specs[0], ScalarRef(met));
      return query;
    }
    case 2: {
      const int jets = query.DeclareList("Jet", {"pt"});
      query.AddPerElementHistogram(specs[0], jets, /*iter_slot=*/0,
                                   /*filter=*/nullptr,
                                   IterMember(jets, 0, kPt));
      return query;
    }
    case 3: {
      const int jets = query.DeclareList("Jet", {"pt", "eta"});
      query.AddPerElementHistogram(
          specs[0], jets, /*iter_slot=*/0,
          Lt(Abs(IterMember(jets, 0, /*eta member=*/1)), Lit(1.0)),
          IterMember(jets, 0, kPt));
      return query;
    }
    case 4: {
      const int jets = query.DeclareList("Jet", {"pt"});
      const int met = query.DeclareScalar("MET.pt");
      query.AddStage(Ge(AggOverList(AggKind::kCount, jets, /*iter_slot=*/0,
                                    Gt(IterMember(jets, 0, kPt), Lit(40.0)),
                                    nullptr),
                        Lit(2.0)));
      query.AddHistogram(specs[0], ScalarRef(met));
      return query;
    }
    case 5: {
      const int muons =
          query.DeclareList("Muon", {"pt", "eta", "phi", "mass", "charge"});
      const int met = query.DeclareScalar("MET.pt");
      const ExprPtr mass = Call(
          Fn::kInvMass2, ConcatArgs(Kinematics(muons, 0),
                                    Kinematics(muons, 1)));
      const ExprPtr opposite_charge =
          Ne(IterMember(muons, 0, 4), IterMember(muons, 1, 4));
      query.AddStage(AnyCombination(
          {ComboLoop{muons, 0}, ComboLoop{muons, 1}},
          And(opposite_charge,
              And(Gt(mass, Lit(60.0)), Lt(mass, Lit(120.0))))));
      query.AddHistogram(specs[0], ScalarRef(met));
      return query;
    }
    case 6: {
      const int jets =
          query.DeclareList("Jet", {"pt", "eta", "phi", "mass", "btag"});
      query.AddStage(Ge(ListSize(jets), Lit(3.0)));
      const std::vector<ExprPtr> trijet = ConcatArgs(
          Kinematics(jets, 0), Kinematics(jets, 1), Kinematics(jets, 2));
      query.AddStage(BestCombination(
          {ComboLoop{jets, 0}, ComboLoop{jets, 1}, ComboLoop{jets, 2}},
          /*filter=*/nullptr,
          Abs(Sub(Call(Fn::kInvMass3, trijet), Lit(172.5)))));
      query.AddHistogram(specs[0], Call(Fn::kSumPt3, trijet));
      constexpr int kBtag = 4;
      query.AddHistogram(
          specs[1],
          Call(Fn::kMax2, {Call(Fn::kMax2, {IterMember(jets, 0, kBtag),
                                            IterMember(jets, 1, kBtag)}),
                           IterMember(jets, 2, kBtag)}));
      return query;
    }
    case 7: {
      const int jets = query.DeclareList("Jet", {"pt", "eta", "phi"});
      const int leptons = query.DeclareUnionList(
          "Lepton", {"pt", "eta", "phi"},
          {engine::UnionSource{"Electron", {"pt", "eta", "phi"}, 0.0},
           engine::UnionSource{"Muon", {"pt", "eta", "phi"}, 1.0}});
      const ExprPtr near_lepton = AggOverList(
          AggKind::kAny, leptons, /*iter_slot=*/1,
          And(Gt(IterMember(leptons, 1, kPt), Lit(10.0)),
              Lt(Call(Fn::kDeltaR,
                      {IterMember(jets, 0, kEta), IterMember(jets, 0, kPhi),
                       IterMember(leptons, 1, kEta),
                       IterMember(leptons, 1, kPhi)}),
                 Lit(0.4))),
          nullptr);
      query.AddHistogram(
          specs[0],
          AggOverList(AggKind::kSum, jets, /*iter_slot=*/0,
                      And(Gt(IterMember(jets, 0, kPt), Lit(30.0)),
                          Not(near_lepton)),
                      IterMember(jets, 0, kPt)));
      return query;
    }
    case 8: {
      const int leptons = query.DeclareUnionList(
          "Lepton", {"pt", "eta", "phi", "mass", "charge", "flavor"},
          {engine::UnionSource{
               "Electron", {"pt", "eta", "phi", "mass", "charge"}, 0.0},
           engine::UnionSource{"Muon",
                               {"pt", "eta", "phi", "mass", "charge"},
                               1.0}});
      const int met_pt = query.DeclareScalar("MET.pt");
      const int met_phi = query.DeclareScalar("MET.phi");
      constexpr int kCharge = 4;
      constexpr int kFlavor = 5;
      query.AddStage(Ge(ListSize(leptons), Lit(3.0)));
      // Same-flavor opposite-charge pair closest to the Z mass.
      query.AddStage(BestCombination(
          {ComboLoop{leptons, 0}, ComboLoop{leptons, 1}},
          And(Eq(IterMember(leptons, 0, kFlavor),
                 IterMember(leptons, 1, kFlavor)),
              Ne(IterMember(leptons, 0, kCharge),
                 IterMember(leptons, 1, kCharge))),
          Abs(Sub(Call(Fn::kInvMass2, ConcatArgs(Kinematics(leptons, 0),
                                                 Kinematics(leptons, 1))),
                  Lit(91.2)))));
      // Highest-pt lepton not in the pair (minimize negated pt).
      query.AddStage(BestElement(
          leptons, /*iter_slot=*/2,
          And(Ne(IterOrdinal(leptons, 2), IterOrdinal(leptons, 0)),
              Ne(IterOrdinal(leptons, 2), IterOrdinal(leptons, 1))),
          Sub(Lit(0.0), IterMember(leptons, 2, kPt))));
      query.AddHistogram(
          specs[0], Call(Fn::kTransverseMass,
                         {ScalarRef(met_pt), ScalarRef(met_phi),
                          IterMember(leptons, 2, kPt),
                          IterMember(leptons, 2, kPhi)}));
      return query;
    }
    default:
      return Status::Invalid("ADL query id must be in 1..8");
  }
}

Result<QueryRunOutput> RunAdlQueryBq(int q, const std::string& path,
                                     const RunOptions& options) {
  engine::EventQuery query("");
  HEPQ_ASSIGN_OR_RETURN(query, BuildAdlEventQuery(q));
  query.set_expr_exec(ExprExecFor(options.effective_vexpr_tier()));
  ReaderOptions reader_options;
  reader_options.struct_projection_pushdown = true;
  reader_options.validate_checksums = options.validate_checksums;
  reader_options.scan_pushdown = options.scan_pushdown;
  reader_options.late_materialization = options.late_materialization;
  reader_options.footer_cache = options.footer_cache;
  reader_options.chunk_cache = options.chunk_cache;
  engine::EventQueryResult result;
  HEPQ_ASSIGN_OR_RETURN(
      result, query.Execute(path, reader_options, options.num_threads));
  QueryRunOutput out;
  out.histograms = std::move(result.histograms);
  out.events_processed = result.events_processed;
  out.wall_seconds = result.wall_seconds;
  out.cpu_seconds = result.cpu_seconds;
  out.ops = result.ops;
  out.scan = result.scan;
  return out;
}

}  // namespace hepq::queries
