#ifndef HEPQUERY_QUERIES_BUILDERS_H_
#define HEPQUERY_QUERIES_BUILDERS_H_

#include "core/status.h"
#include "doc/runner.h"
#include "engine/event_query.h"
#include "engine/flat.h"
#include "queries/adl.h"

namespace hepq::queries {

/// Maps the public tier knob onto the engine's execution mode.
inline engine::ExprExec ExprExecFor(VexprTier tier) {
  if (tier == VexprTier::kInterpret) return engine::ExprExec::kInterpreted;
  if (tier == VexprTier::kBytecode) return engine::ExprExec::kBytecode;
  return engine::ExprExec::kSimd;
}

/// Builds ADL query `q` as a per-event expression plan (the BigQuery
/// shape: nested subqueries / array expressions inside the scan). Also
/// used by the Presto runner for the queries whose idiomatic Presto
/// implementation relies on array functions rather than UNNEST (Q7, Q8 —
/// see paper §3.4/§3.6).
Result<engine::EventQuery> BuildAdlEventQuery(int q);

/// Builds ADL query `q` as a CROSS JOIN UNNEST + GROUP BY plan (the
/// Presto/Athena shape, Listing 4b / 6b of the paper). Only defined for
/// the queries where that shape is idiomatic (1..6); returns
/// NotImplemented otherwise.
Result<engine::FlatPipeline> BuildAdlFlatPipeline(int q);

/// Builds ADL query `q` as a JSONiq-style FLWOR document query.
Result<doc::DocQuery> BuildAdlDocQuery(int q);

}  // namespace hepq::queries

#endif  // HEPQUERY_QUERIES_BUILDERS_H_
