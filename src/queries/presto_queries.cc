#include "engine/flat.h"
#include "queries/adl.h"
#include "queries/builders.h"

namespace hepq::queries {

namespace {

using engine::BinOp;
using engine::FlatAggKind;
using engine::FlatAggSpec;
using engine::FlatAnd;
using engine::FlatBin;
using engine::FlatCall;
using engine::FlatCol;
using engine::FlatExprPtr;
using engine::FlatGe;
using engine::FlatGt;
using engine::FlatLit;
using engine::FlatLt;
using engine::FlatPipeline;
using engine::Fn;
using engine::UnnestList;

std::vector<FlatExprPtr> FlatKinematics(const std::string& alias) {
  return {FlatCol(alias + ".pt"), FlatCol(alias + ".eta"),
          FlatCol(alias + ".phi"), FlatCol(alias + ".mass")};
}

std::vector<FlatExprPtr> ConcatFlat(std::vector<FlatExprPtr> a,
                                    std::vector<FlatExprPtr> b,
                                    std::vector<FlatExprPtr> c = {}) {
  std::vector<FlatExprPtr> out = std::move(a);
  out.insert(out.end(), b.begin(), b.end());
  out.insert(out.end(), c.begin(), c.end());
  return out;
}

}  // namespace

Result<engine::FlatPipeline> BuildAdlFlatPipeline(int q) {
  const std::vector<HistogramSpec> specs = AdlHistogramSpecs(q);
  FlatPipeline pipeline("adl_q" + std::to_string(q) + "_flat");
  switch (q) {
    case 1: {
      // SELECT HistogramBin(MET.pt) ... GROUP BY bin — no unnesting.
      pipeline.AddKeepScalar("MET.pt");
      pipeline.AddHistogram(specs[0], FlatCol("MET.pt"));
      return pipeline;
    }
    case 2: {
      // SELECT j.pt FROM events CROSS JOIN UNNEST(Jet) AS j.
      pipeline.AddUnnest(UnnestList{"Jet", {"pt"}, "j"});
      pipeline.AddHistogram(specs[0], FlatCol("j.pt"));
      return pipeline;
    }
    case 3: {
      pipeline.AddUnnest(UnnestList{"Jet", {"pt", "eta"}, "j"});
      pipeline.AddFilter(FlatLt(FlatCall(Fn::kAbs, {FlatCol("j.eta")}),
                                FlatLit(1.0)));
      pipeline.AddHistogram(specs[0], FlatCol("j.pt"));
      return pipeline;
    }
    case 4: {
      // Listing 4b: unnest, filter, GROUP BY event HAVING COUNT(*) >= 2.
      pipeline.AddUnnest(UnnestList{"Jet", {"pt"}, "j"});
      pipeline.AddKeepScalar("MET.pt");
      pipeline.AddFilter(FlatGt(FlatCol("j.pt"), FlatLit(40.0)));
      pipeline.AddAggregate(
          FlatAggSpec{FlatAggKind::kCount, "", "", "n_jets"});
      pipeline.AddAggregate(
          FlatAggSpec{FlatAggKind::kFirst, "MET.pt", "", "met"});
      pipeline.AddHaving(FlatGe(FlatCol("n_jets"), FlatLit(2.0)));
      pipeline.AddHistogram(specs[0], FlatCol("met"));
      return pipeline;
    }
    case 5: {
      // Listing 6b: self cross join with ordinality, idx1 < idx2 in WHERE.
      pipeline.AddUnnest(
          UnnestList{"Muon", {"pt", "eta", "phi", "mass", "charge"}, "m1"});
      pipeline.AddUnnest(
          UnnestList{"Muon", {"pt", "eta", "phi", "mass", "charge"}, "m2"});
      pipeline.AddKeepScalar("MET.pt");
      pipeline.AddFilter(FlatLt(FlatCol("m1.idx"), FlatCol("m2.idx")));
      pipeline.AddFilter(FlatBin(BinOp::kNe, FlatCol("m1.charge"),
                                 FlatCol("m2.charge")));
      pipeline.AddProject("pair_mass",
                          FlatCall(Fn::kInvMass2,
                                   ConcatFlat(FlatKinematics("m1"),
                                              FlatKinematics("m2"))));
      pipeline.AddFilter(FlatAnd(FlatGt(FlatCol("pair_mass"), FlatLit(60.0)),
                                 FlatLt(FlatCol("pair_mass"),
                                        FlatLit(120.0))));
      pipeline.AddAggregate(
          FlatAggSpec{FlatAggKind::kCount, "", "", "n_pairs"});
      pipeline.AddAggregate(
          FlatAggSpec{FlatAggKind::kFirst, "MET.pt", "", "met"});
      pipeline.AddHaving(FlatGe(FlatCol("n_pairs"), FlatLit(1.0)));
      pipeline.AddHistogram(specs[0], FlatCol("met"));
      return pipeline;
    }
    case 6: {
      // Triple self cross join; the full n^3 product is materialized and
      // the i<j<k restriction applied in WHERE — the plan shape that made
      // Q6 intractable on Presto in the paper (run on 1/4 of the data).
      const std::vector<std::string> members = {"pt", "eta", "phi", "mass",
                                                "btag"};
      pipeline.AddUnnest(UnnestList{"Jet", members, "j1"});
      pipeline.AddUnnest(UnnestList{"Jet", members, "j2"});
      pipeline.AddUnnest(UnnestList{"Jet", members, "j3"});
      pipeline.AddFilter(
          FlatAnd(FlatLt(FlatCol("j1.idx"), FlatCol("j2.idx")),
                  FlatLt(FlatCol("j2.idx"), FlatCol("j3.idx"))));
      const auto trijet = ConcatFlat(FlatKinematics("j1"),
                                     FlatKinematics("j2"),
                                     FlatKinematics("j3"));
      pipeline.AddProject(
          "mass_diff",
          FlatCall(Fn::kAbs,
                   {FlatBin(BinOp::kSub, FlatCall(Fn::kInvMass3, trijet),
                            FlatLit(172.5))}));
      pipeline.AddProject("trijet_pt", FlatCall(Fn::kSumPt3, trijet));
      pipeline.AddProject(
          "max_btag",
          FlatCall(Fn::kMax2,
                   {FlatCall(Fn::kMax2,
                             {FlatCol("j1.btag"), FlatCol("j2.btag")}),
                    FlatCol("j3.btag")}));
      pipeline.AddAggregate(FlatAggSpec{FlatAggKind::kMinBy, "trijet_pt",
                                        "mass_diff", "best_pt"});
      pipeline.AddAggregate(FlatAggSpec{FlatAggKind::kMinBy, "max_btag",
                                        "mass_diff", "best_btag"});
      pipeline.AddHistogram(specs[0], FlatCol("best_pt"));
      pipeline.AddHistogram(specs[1], FlatCol("best_btag"));
      return pipeline;
    }
    default:
      // Q7/Q8 need correlated anti-joins across two particle arrays; the
      // idiomatic Presto implementations use array functions (FILTER /
      // CARDINALITY), i.e. the per-event expression plan.
      return Status::NotImplemented(
          "no idiomatic UNNEST plan for this query; use the array-function "
          "fallback");
  }
}

Result<QueryRunOutput> RunAdlQueryPresto(int q, const std::string& path,
                                         const RunOptions& options) {
  // Presto/Athena cannot push projections into structs (Java Parquet
  // limitation, paper §4.3): every member of a touched struct is read.
  ReaderOptions reader_options;
  reader_options.struct_projection_pushdown = false;
  reader_options.validate_checksums = options.validate_checksums;
  reader_options.scan_pushdown = options.scan_pushdown;
  reader_options.late_materialization = options.late_materialization;
  reader_options.footer_cache = options.footer_cache;
  reader_options.chunk_cache = options.chunk_cache;

  QueryRunOutput out;
  auto flat_result = BuildAdlFlatPipeline(q);
  if (flat_result.ok()) {
    flat_result->set_expr_exec(ExprExecFor(options.effective_vexpr_tier()));
    engine::FlatQueryResult result;
    HEPQ_ASSIGN_OR_RETURN(
        result,
        flat_result->Execute(path, reader_options, options.num_threads));
    out.histograms = std::move(result.histograms);
    out.events_processed = result.events_processed;
    out.wall_seconds = result.wall_seconds;
    out.cpu_seconds = result.cpu_seconds;
    out.ops = result.rows_materialized;
    out.scan = result.scan;
    return out;
  }
  if (flat_result.status().code() != StatusCode::kNotImplemented) {
    return flat_result.status();
  }
  engine::EventQuery query("");
  HEPQ_ASSIGN_OR_RETURN(query, BuildAdlEventQuery(q));
  query.set_expr_exec(ExprExecFor(options.effective_vexpr_tier()));
  engine::EventQueryResult result;
  HEPQ_ASSIGN_OR_RETURN(
      result, query.Execute(path, reader_options, options.num_threads));
  out.histograms = std::move(result.histograms);
  out.events_processed = result.events_processed;
  out.wall_seconds = result.wall_seconds;
  out.cpu_seconds = result.cpu_seconds;
  out.ops = result.ops;
  out.scan = result.scan;
  return out;
}

}  // namespace hepq::queries
