#ifndef HEPQUERY_QUERIES_ADL_H_
#define HEPQUERY_QUERIES_ADL_H_

#include <string>
#include <vector>

#include "core/histogram.h"
#include "fileio/reader.h"

namespace hepq::queries {

/// The execution stacks under test, mirroring the paper's systems:
///   kRdf          — RDataFrame-style compiled event loop (the baseline).
///   kBigQueryShape— columnar scan with array expressions / nested
///                   subqueries inside the scan; struct projection
///                   pushdown enabled (BigQuery).
///   kPrestoShape  — CROSS JOIN UNNEST + GROUP BY plans where idiomatic,
///                   array-function fallbacks otherwise; struct projection
///                   pushdown disabled (Presto and Athena, which share a
///                   code base in the paper).
///   kDoc          — boxed item-at-a-time FLWOR interpretation with
///                   full-file scans (Rumble/JSONiq).
enum class EngineKind {
  kRdf,
  kBigQueryShape,
  kPrestoShape,
  kDoc,
};

const char* EngineKindName(EngineKind kind);

/// ADL benchmark query ids. Q6 produces two histograms (Q6a, Q6b) from one
/// pass, as in the paper.
inline constexpr int kNumAdlQueries = 8;

/// Histogram axes used by every engine for query `q` (1-based); Q6 returns
/// two specs, all others one.
std::vector<HistogramSpec> AdlHistogramSpecs(int q);

/// Short description of query `q` for reports.
const char* AdlQueryTitle(int q);

struct QueryRunOutput {
  std::vector<Histogram1D> histograms;
  int64_t events_processed = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  /// Records/record-combinations explored per the engine's own counter
  /// (Table 2); 0 when the engine does not instrument this.
  uint64_t ops = 0;
  ScanStats scan;
  /// True when the whole output came from the result cache: histograms
  /// are the bit-identical cached parts, wall/cpu are the (near-zero)
  /// lookup costs, and `scan` is empty — no reader was opened at all.
  bool from_result_cache = false;
};

/// Expression-execution tier for the BigQuery/Presto plan shapes — the
/// ablation ladder interpreter → bytecode VM → fused simd kernels.
/// Histograms are bit-identical across all three tiers on every query;
/// only the cost model differs. Ignored by kRdf and kDoc, which have no
/// expression trees.
enum class VexprTier {
  kInterpret,
  kBytecode,
  kSimd,
};

/// Stable lowercase tier name ("interpret" / "bytecode" / "simd").
const char* VexprTierName(VexprTier tier);
/// Parses a tier name; returns false (leaving `out` untouched) on any
/// other string.
bool ParseVexprTier(const std::string& name, VexprTier* out);

struct RunOptions {
  /// Reader behaviour is forced per engine (pushdown on for BigQuery/RDF,
  /// off for Presto shape, full scans for Doc); checksum validation and
  /// threads are caller-controlled. All four engines scan row groups in
  /// parallel with up to `num_threads` workers of the shared pool;
  /// results are bit-identical for any thread count.
  int num_threads = 1;
  bool validate_checksums = true;
  /// Expression tier for the BigQuery/Presto plan shapes (the
  /// `--vexpr-tier` flag). `interpret_expressions` below, when set, wins
  /// and forces kInterpret.
  VexprTier vexpr_tier = VexprTier::kSimd;
  /// Deprecated alias (pre-tier boolean): forces the tree-walking
  /// interpreter regardless of `vexpr_tier`. Kept for existing callers of
  /// the interpreted-vs-compiled ablation; new code should set
  /// `vexpr_tier = VexprTier::kInterpret` instead.
  bool interpret_expressions = false;
  /// The tier after applying the deprecated alias.
  VexprTier effective_vexpr_tier() const {
    return interpret_expressions ? VexprTier::kInterpret : vexpr_tier;
  }
  /// Zone-map predicate pushdown: each frontend extracts the sargable
  /// residue of its own filters and the reader prunes row groups and pages
  /// whose min/max statistics cannot satisfy it. Histograms are
  /// bit-identical with the feature on or off; exposed for the ablation
  /// and `hepq_run --no-pushdown`.
  bool scan_pushdown = true;
  /// Late materialization: decode predicate columns first and skip
  /// decoding the remaining projected columns for row groups with no
  /// surviving events. Only observable through ScanStats (decoded bytes);
  /// exposed for the ablation and `hepq_run --no-late-mat`.
  bool late_materialization = true;
  /// Consult the process-wide footer/metadata cache when opening shards
  /// (see ReaderOptions::footer_cache). On by default: it costs no data
  /// bytes and a cached open reports the same errors as a cold one.
  bool footer_cache = true;
  /// Shared decoded-chunk LRU threaded into every reader the run opens;
  /// null (the default) disables chunk caching. Histograms are
  /// bit-identical with the cache cold, warm, or absent — the CI gate
  /// asserts this across all engines and thread counts.
  std::shared_ptr<cache::ChunkCache> chunk_cache;
  /// Query-fingerprint result cache consulted by RunAdlQuery before
  /// dispatching to an engine; null disables result caching. The key is
  /// engine + canonical plan text + dataset content version, so a hit is
  /// the bit-identical histogram set of a previous run over the same
  /// bytes; regenerating the dataset changes its version and misses.
  std::shared_ptr<cache::ResultCache> result_cache;
};

/// Runs ADL query `q` (1..8) with the given engine over the data set at
/// `path`. All engines produce identical histograms up to floating-point
/// noise; the integration suite asserts this.
Result<QueryRunOutput> RunAdlQuery(EngineKind engine, int q,
                                   const std::string& path,
                                   const RunOptions& options = {});

// Per-engine entry points (used by RunAdlQuery and by targeted tests).
Result<QueryRunOutput> RunAdlQueryRdf(int q, const std::string& path,
                                      const RunOptions& options);
Result<QueryRunOutput> RunAdlQueryBq(int q, const std::string& path,
                                     const RunOptions& options);
Result<QueryRunOutput> RunAdlQueryPresto(int q, const std::string& path,
                                         const RunOptions& options);
Result<QueryRunOutput> RunAdlQueryDoc(int q, const std::string& path,
                                      const RunOptions& options);

}  // namespace hepq::queries

#endif  // HEPQUERY_QUERIES_ADL_H_
