#include "doc/runner.h"
#include "queries/adl.h"
#include "queries/builders.h"

namespace hepq::queries {

namespace {

using doc::DArray;
using doc::DBin;
using doc::DBool;
using doc::DCall;
using doc::DConcat;
using doc::DContextItem;
using doc::DIf;
using doc::DMember;
using doc::DNum;
using doc::DObject;
using doc::DocBinOp;
using doc::DocExprPtr;
using doc::DocQuery;
using doc::DPredicate;
using doc::DUnbox;
using doc::DVar;
using doc::FlworClause;
using doc::For;
using doc::Let;
using doc::Where;

DocExprPtr Event() { return DVar("event"); }
DocExprPtr Particles(const std::string& column) {
  return DUnbox(DMember(Event(), column));
}
DocExprPtr MetMember(const std::string& member) {
  return DMember(DMember(Event(), "MET"), member);
}
DocExprPtr Lt(DocExprPtr a, DocExprPtr b) {
  return DBin(DocBinOp::kLt, std::move(a), std::move(b));
}
DocExprPtr Gt(DocExprPtr a, DocExprPtr b) {
  return DBin(DocBinOp::kGt, std::move(a), std::move(b));
}
DocExprPtr Ge(DocExprPtr a, DocExprPtr b) {
  return DBin(DocBinOp::kGe, std::move(a), std::move(b));
}
DocExprPtr Eq(DocExprPtr a, DocExprPtr b) {
  return DBin(DocBinOp::kEq, std::move(a), std::move(b));
}
DocExprPtr Ne(DocExprPtr a, DocExprPtr b) {
  return DBin(DocBinOp::kNe, std::move(a), std::move(b));
}
DocExprPtr AndE(DocExprPtr a, DocExprPtr b) {
  return DBin(DocBinOp::kAnd, std::move(a), std::move(b));
}
DocExprPtr Sub(DocExprPtr a, DocExprPtr b) {
  return DBin(DocBinOp::kSub, std::move(a), std::move(b));
}

/// for $<var> in <source> return {pt, eta, phi, mass, charge, flavor}
DocExprPtr TaggedLeptons(const std::string& column, double flavor) {
  return doc::DFlwor(
      {For("l", Particles(column))},
      DObject({{"pt", DMember(DVar("l"), "pt")},
               {"eta", DMember(DVar("l"), "eta")},
               {"phi", DMember(DVar("l"), "phi")},
               {"mass", DMember(DVar("l"), "mass")},
               {"charge", DMember(DVar("l"), "charge")},
               {"flavor", DNum(flavor)}}));
}

}  // namespace

Result<doc::DocQuery> BuildAdlDocQuery(int q) {
  const std::vector<HistogramSpec> specs = AdlHistogramSpecs(q);
  DocQuery query;
  query.name = "adl_q" + std::to_string(q) + "_jsoniq";
  switch (q) {
    case 1: {
      query.fills.emplace_back(specs[0], MetMember("pt"));
      query.projection = {"MET.pt"};  // simple enough for Rumble to push
      return query;
    }
    case 2: {
      query.fills.emplace_back(specs[0], DMember(Particles("Jet"), "pt"));
      query.projection = {"Jet.pt"};
      return query;
    }
    case 3: {
      // $event.Jet[][abs($$.eta) < 1].pt
      query.fills.emplace_back(
          specs[0],
          DMember(DPredicate(Particles("Jet"),
                             Lt(DCall("abs",
                                      {DMember(DContextItem(), "eta")}),
                                DNum(1.0))),
                  "pt"));
      return query;
    }
    case 4: {
      query.guard =
          Gt(DCall("count",
                   {DPredicate(Particles("Jet"),
                               Gt(DMember(DContextItem(), "pt"),
                                  DNum(40.0)))}),
             DNum(1.0));
      query.fills.emplace_back(specs[0], MetMember("pt"));
      return query;
    }
    case 5: {
      query.lets.emplace_back("muons", Particles("Muon"));
      query.guard = DCall(
          "exists",
          {doc::DFlwor(
              {For("m1", DVar("muons"), "i"), For("m2", DVar("muons"), "j"),
               Where(AndE(
                   Lt(DVar("i"), DVar("j")),
                   AndE(Ne(DMember(DVar("m1"), "charge"),
                           DMember(DVar("m2"), "charge")),
                        AndE(Gt(DCall("hep:invariant-mass2",
                                      {DVar("m1"), DVar("m2")}),
                                DNum(60.0)),
                             Lt(DCall("hep:invariant-mass2",
                                      {DVar("m1"), DVar("m2")}),
                                DNum(120.0))))))},
              DNum(1.0))});
      query.fills.emplace_back(specs[0], MetMember("pt"));
      return query;
    }
    case 6: {
      query.lets.emplace_back("jets", Particles("Jet"));
      // (for $j1 at $i in $jets ... order by |m3 - 172.5| return
      //  {"pt": ..., "btag": ...})[1]
      query.lets.emplace_back(
          "best",
          DIf(Ge(DCall("count", {DVar("jets")}), DNum(3.0)),
              DPredicate(
                  doc::DFlwor(
                      {For("j1", DVar("jets"), "i"),
                       For("j2", DVar("jets"), "j"),
                       For("j3", DVar("jets"), "k"),
                       Where(AndE(Lt(DVar("i"), DVar("j")),
                                  Lt(DVar("j"), DVar("k"))))},
                      DObject(
                          {{"pt",
                            DMember(DCall("hep:add-pt-eta-phi-m3",
                                          {DVar("j1"), DVar("j2"),
                                           DVar("j3")}),
                                    "pt")},
                           {"btag",
                            DCall("max",
                                  {DConcat(
                                      {DMember(DVar("j1"), "btag"),
                                       DMember(DVar("j2"), "btag"),
                                       DMember(DVar("j3"), "btag")})})}}),
                      /*order_by_key=*/
                      DCall("abs",
                            {Sub(DCall("hep:invariant-mass3",
                                       {DVar("j1"), DVar("j2"), DVar("j3")}),
                                 DNum(172.5))})),
                  DNum(1.0)),
              nullptr));
      query.guard = DCall("exists", {DVar("best")});
      query.fills.emplace_back(specs[0], DMember(DVar("best"), "pt"));
      query.fills.emplace_back(specs[1], DMember(DVar("best"), "btag"));
      return query;
    }
    case 7: {
      query.lets.emplace_back(
          "leptons", DConcat({Particles("Electron"), Particles("Muon")}));
      query.fills.emplace_back(
          specs[0],
          DCall("sum",
                {doc::DFlwor(
                    {For("j", Particles("Jet")),
                     Where(AndE(
                         Gt(DMember(DVar("j"), "pt"), DNum(30.0)),
                         DCall("empty",
                               {DPredicate(
                                   DVar("leptons"),
                                   AndE(Gt(DMember(DContextItem(), "pt"),
                                           DNum(10.0)),
                                        Lt(DCall("hep:delta-r",
                                                 {DContextItem(), DVar("j")}),
                                           DNum(0.4))))})))},
                    DMember(DVar("j"), "pt"))}));
      return query;
    }
    case 8: {
      query.lets.emplace_back(
          "leptons",
          DConcat({TaggedLeptons("Electron", 0.0),
                   TaggedLeptons("Muon", 1.0)}));
      query.lets.emplace_back(
          "pair",
          DIf(Ge(DCall("count", {DVar("leptons")}), DNum(3.0)),
              DPredicate(
                  doc::DFlwor(
                      {For("l1", DVar("leptons"), "i"),
                       For("l2", DVar("leptons"), "j"),
                       Where(AndE(
                           Lt(DVar("i"), DVar("j")),
                           AndE(Eq(DMember(DVar("l1"), "flavor"),
                                   DMember(DVar("l2"), "flavor")),
                                Ne(DMember(DVar("l1"), "charge"),
                                   DMember(DVar("l2"), "charge")))))},
                      DObject({{"i", DVar("i")}, {"j", DVar("j")}}),
                      /*order_by_key=*/
                      DCall("abs",
                            {Sub(DCall("hep:invariant-mass2",
                                       {DVar("l1"), DVar("l2")}),
                                 DNum(91.2))})),
                  DNum(1.0)),
              nullptr));
      query.lets.emplace_back(
          "other",
          DIf(DCall("exists", {DVar("pair")}),
              DPredicate(
                  doc::DFlwor(
                      {For("l", DVar("leptons"), "k"),
                       Where(AndE(Ne(DVar("k"),
                                     DMember(DVar("pair"), "i")),
                                  Ne(DVar("k"),
                                     DMember(DVar("pair"), "j"))))},
                      DVar("l"),
                      /*order_by_key=*/DMember(DVar("l"), "pt"),
                      /*order_descending=*/true),
                  DNum(1.0)),
              nullptr));
      query.guard = DCall("exists", {DVar("other")});
      query.fills.emplace_back(
          specs[0], DCall("hep:transverse-mass",
                          {MetMember("pt"), MetMember("phi"),
                           DMember(DVar("other"), "pt"),
                           DMember(DVar("other"), "phi")}));
      return query;
    }
    default:
      return Status::Invalid("ADL query id must be in 1..8");
  }
}

Result<QueryRunOutput> RunAdlQueryDoc(int q, const std::string& path,
                                      const RunOptions& options) {
  doc::DocQuery query;
  HEPQ_ASSIGN_OR_RETURN(query, BuildAdlDocQuery(q));
  ReaderOptions reader_options;
  reader_options.validate_checksums = options.validate_checksums;
  reader_options.scan_pushdown = options.scan_pushdown;
  reader_options.late_materialization = options.late_materialization;
  reader_options.footer_cache = options.footer_cache;
  reader_options.chunk_cache = options.chunk_cache;
  doc::DocQueryResult result;
  HEPQ_ASSIGN_OR_RETURN(
      result,
      doc::RunDocQuery(path, reader_options, options.num_threads, query));
  QueryRunOutput out;
  out.histograms = std::move(result.histograms);
  out.events_processed = result.events_processed;
  out.wall_seconds = result.wall_seconds;
  out.cpu_seconds = result.cpu_seconds;
  out.ops = result.interpreter_steps;
  out.scan = result.scan;
  return out;
}

}  // namespace hepq::queries
