#include "queries/adl.h"

namespace hepq::queries {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kRdf:
      return "rdataframe";
    case EngineKind::kBigQueryShape:
      return "bigquery-shape";
    case EngineKind::kPrestoShape:
      return "presto-shape";
    case EngineKind::kDoc:
      return "jsoniq-doc";
  }
  return "unknown";
}

const char* VexprTierName(VexprTier tier) {
  switch (tier) {
    case VexprTier::kInterpret:
      return "interpret";
    case VexprTier::kBytecode:
      return "bytecode";
    case VexprTier::kSimd:
      return "simd";
  }
  return "unknown";
}

bool ParseVexprTier(const std::string& name, VexprTier* out) {
  if (name == "interpret") {
    *out = VexprTier::kInterpret;
  } else if (name == "bytecode") {
    *out = VexprTier::kBytecode;
  } else if (name == "simd") {
    *out = VexprTier::kSimd;
  } else {
    return false;
  }
  return true;
}

std::vector<HistogramSpec> AdlHistogramSpecs(int q) {
  switch (q) {
    case 1:
      return {{"q1_met", "E_T^miss of all events", 100, 0.0, 200.0}};
    case 2:
      return {{"q2_jet_pt", "p_T of all jets", 100, 0.0, 200.0}};
    case 3:
      return {{"q3_jet_pt", "p_T of jets with |eta| < 1", 100, 0.0, 200.0}};
    case 4:
      return {{"q4_met", "E_T^miss, events with >=2 jets pt>40", 100, 0.0,
               200.0}};
    case 5:
      return {{"q5_met", "E_T^miss, events with OS dimuon 60<m<120", 100,
               0.0, 200.0}};
    case 6:
      return {{"q6a_trijet_pt", "p_T of trijet closest to 172.5", 100, 0.0,
               300.0},
              {"q6b_max_btag", "max b-tag in best trijet", 100, 0.0, 1.0}};
    case 7:
      return {{"q7_sum_pt", "scalar sum p_T of isolated jets pt>30", 100,
               0.0, 500.0}};
    case 8:
      return {{"q8_mt", "transverse mass of MET + best other lepton", 100,
               0.0, 250.0}};
    default:
      return {};
  }
}

const char* AdlQueryTitle(int q) {
  switch (q) {
    case 1:
      return "MET of all events";
    case 2:
      return "pt of all jets";
    case 3:
      return "pt of jets with |eta| < 1";
    case 4:
      return "MET of events with >=2 jets with pt > 40 GeV";
    case 5:
      return "MET of events with an opposite-charge dimuon, 60 < m < 120";
    case 6:
      return "trijet with mass closest to 172.5 GeV: pt and max b-tag";
    case 7:
      return "sum pt of jets (pt>30) isolated from light leptons (pt>10)";
    case 8:
      return "transverse mass of MET + hardest lepton outside best Z pair";
    default:
      return "unknown query";
  }
}

Result<QueryRunOutput> RunAdlQuery(EngineKind engine, int q,
                                   const std::string& path,
                                   const RunOptions& options) {
  if (q < 1 || q > kNumAdlQueries) {
    return Status::Invalid("ADL query id must be in 1..8");
  }
  switch (engine) {
    case EngineKind::kRdf:
      return RunAdlQueryRdf(q, path, options);
    case EngineKind::kBigQueryShape:
      return RunAdlQueryBq(q, path, options);
    case EngineKind::kPrestoShape:
      return RunAdlQueryPresto(q, path, options);
    case EngineKind::kDoc:
      return RunAdlQueryDoc(q, path, options);
  }
  return Status::Invalid("unknown engine kind");
}

}  // namespace hepq::queries
