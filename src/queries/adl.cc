#include "queries/adl.h"

#include <chrono>
#include <cstdio>

#include "cache/cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "queries/builders.h"

namespace hepq::queries {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kRdf:
      return "rdataframe";
    case EngineKind::kBigQueryShape:
      return "bigquery-shape";
    case EngineKind::kPrestoShape:
      return "presto-shape";
    case EngineKind::kDoc:
      return "jsoniq-doc";
  }
  return "unknown";
}

const char* VexprTierName(VexprTier tier) {
  switch (tier) {
    case VexprTier::kInterpret:
      return "interpret";
    case VexprTier::kBytecode:
      return "bytecode";
    case VexprTier::kSimd:
      return "simd";
  }
  return "unknown";
}

bool ParseVexprTier(const std::string& name, VexprTier* out) {
  if (name == "interpret") {
    *out = VexprTier::kInterpret;
  } else if (name == "bytecode") {
    *out = VexprTier::kBytecode;
  } else if (name == "simd") {
    *out = VexprTier::kSimd;
  } else {
    return false;
  }
  return true;
}

std::vector<HistogramSpec> AdlHistogramSpecs(int q) {
  switch (q) {
    case 1:
      return {{"q1_met", "E_T^miss of all events", 100, 0.0, 200.0}};
    case 2:
      return {{"q2_jet_pt", "p_T of all jets", 100, 0.0, 200.0}};
    case 3:
      return {{"q3_jet_pt", "p_T of jets with |eta| < 1", 100, 0.0, 200.0}};
    case 4:
      return {{"q4_met", "E_T^miss, events with >=2 jets pt>40", 100, 0.0,
               200.0}};
    case 5:
      return {{"q5_met", "E_T^miss, events with OS dimuon 60<m<120", 100,
               0.0, 200.0}};
    case 6:
      return {{"q6a_trijet_pt", "p_T of trijet closest to 172.5", 100, 0.0,
               300.0},
              {"q6b_max_btag", "max b-tag in best trijet", 100, 0.0, 1.0}};
    case 7:
      return {{"q7_sum_pt", "scalar sum p_T of isolated jets pt>30", 100,
               0.0, 500.0}};
    case 8:
      return {{"q8_mt", "transverse mass of MET + best other lepton", 100,
               0.0, 250.0}};
    default:
      return {};
  }
}

const char* AdlQueryTitle(int q) {
  switch (q) {
    case 1:
      return "MET of all events";
    case 2:
      return "pt of all jets";
    case 3:
      return "pt of jets with |eta| < 1";
    case 4:
      return "MET of events with >=2 jets with pt > 40 GeV";
    case 5:
      return "MET of events with an opposite-charge dimuon, 60 < m < 120";
    case 6:
      return "trijet with mass closest to 172.5 GeV: pt and max b-tag";
    case 7:
      return "sum pt of jets (pt>30) isolated from light leptons (pt>10)";
    case 8:
      return "transverse mass of MET + hardest lepton outside best Z pair";
    default:
      return "unknown query";
  }
}

namespace {

/// The canonical plan text of (engine, q): what the engine would execute,
/// rendered independently of the expression tier, thread count, checksum
/// and pushdown toggles — every knob that is bit-identity-gated stays out
/// of the fingerprint, so e.g. an interpret-tier run hits a result cached
/// by a simd-tier run.
Result<std::string> CanonicalPlanText(EngineKind engine, int q) {
  switch (engine) {
    case EngineKind::kBigQueryShape: {
      engine::EventQuery query("");
      HEPQ_ASSIGN_OR_RETURN(query, BuildAdlEventQuery(q));
      return "expr:" + query.Explain();
    }
    case EngineKind::kPrestoShape: {
      auto flat = BuildAdlFlatPipeline(q);
      if (flat.ok()) return "flat:" + flat->Explain();
      if (flat.status().code() != StatusCode::kNotImplemented) {
        return flat.status();
      }
      // Array-function fallback (Q7/Q8): same plan tree as the BigQuery
      // shape, but fingerprinted under its own prefix because the engines
      // report different op counters.
      engine::EventQuery query("");
      HEPQ_ASSIGN_OR_RETURN(query, BuildAdlEventQuery(q));
      return "flat-fallback:" + query.Explain();
    }
    case EngineKind::kRdf:
    case EngineKind::kDoc:
      // Hand-built per-query event loops: the query id (plus its
      // documented semantics, for readable keys) is the whole plan.
      return "q" + std::to_string(q) + ":" + AdlQueryTitle(q);
  }
  return Status::Invalid("unknown engine kind");
}

// Per-engine run/event counters. GetCounter wants a string literal per
// metric, so the engine label is baked into the name here rather than
// composed at runtime.
obs::metrics::Counter& RunsCounterFor(EngineKind engine) {
  switch (engine) {
    case EngineKind::kRdf: {
      static auto& c =
          obs::metrics::GetCounter("hepq_queries_runs_total{engine=\"rdf\"}");
      return c;
    }
    case EngineKind::kBigQueryShape: {
      static auto& c =
          obs::metrics::GetCounter("hepq_queries_runs_total{engine=\"bq\"}");
      return c;
    }
    case EngineKind::kPrestoShape: {
      static auto& c = obs::metrics::GetCounter(
          "hepq_queries_runs_total{engine=\"presto\"}");
      return c;
    }
    case EngineKind::kDoc:
    default: {
      static auto& c =
          obs::metrics::GetCounter("hepq_queries_runs_total{engine=\"doc\"}");
      return c;
    }
  }
}

obs::metrics::Counter& EventsCounterFor(EngineKind engine) {
  switch (engine) {
    case EngineKind::kRdf: {
      static auto& c = obs::metrics::GetCounter(
          "hepq_queries_events_total{engine=\"rdf\"}");
      return c;
    }
    case EngineKind::kBigQueryShape: {
      static auto& c =
          obs::metrics::GetCounter("hepq_queries_events_total{engine=\"bq\"}");
      return c;
    }
    case EngineKind::kPrestoShape: {
      static auto& c = obs::metrics::GetCounter(
          "hepq_queries_events_total{engine=\"presto\"}");
      return c;
    }
    case EngineKind::kDoc:
    default: {
      static auto& c = obs::metrics::GetCounter(
          "hepq_queries_events_total{engine=\"doc\"}");
      return c;
    }
  }
}

}  // namespace

Result<QueryRunOutput> RunAdlQuery(EngineKind engine, int q,
                                   const std::string& path,
                                   const RunOptions& options) {
  if (q < 1 || q > kNumAdlQueries) {
    return Status::Invalid("ADL query id must be in 1..8");
  }

  // Result-cache probe. The fingerprint is an exact string (never a bare
  // hash of the plan), so a hit cannot be a collision; the dataset
  // version folds every shard's footer CRC, so regenerated data misses.
  // Probe failures (unreadable dataset, unknown plan) fall through to the
  // engine, which reports its own canonical error.
  std::string fingerprint;
  if (options.result_cache != nullptr) {
    obs::ScopedSpan span("result_cache", obs::Stage::kCacheLookup);
    const auto lookup_start = std::chrono::steady_clock::now();
    const auto version = cache::DatasetVersion(path);
    const auto plan = CanonicalPlanText(engine, q);
    if (version.ok() && plan.ok()) {
      char version_hex[24];
      std::snprintf(version_hex, sizeof(version_hex), "%016llx",
                    static_cast<unsigned long long>(*version));
      fingerprint = std::string(EngineKindName(engine)) + "|" + *plan +
                    "|dataset:" + version_hex;
      cache::CachedResult cached;
      if (options.result_cache->Get(fingerprint, &cached)) {
        QueryRunOutput out;
        out.histograms.reserve(cached.histograms.size());
        for (const HistogramParts& parts : cached.histograms) {
          Histogram1D h;
          HEPQ_ASSIGN_OR_RETURN(h, Histogram1D::FromParts(parts));
          out.histograms.push_back(std::move(h));
        }
        out.events_processed = cached.events_processed;
        out.ops = cached.ops;
        out.from_result_cache = true;
        out.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          lookup_start)
                .count();
        RunsCounterFor(engine).Add(1);
        EventsCounterFor(engine).Add(out.events_processed);
        return out;
      }
    }
  }

  auto dispatch = [&]() -> Result<QueryRunOutput> {
    switch (engine) {
      case EngineKind::kRdf:
        return RunAdlQueryRdf(q, path, options);
      case EngineKind::kBigQueryShape:
        return RunAdlQueryBq(q, path, options);
      case EngineKind::kPrestoShape:
        return RunAdlQueryPresto(q, path, options);
      case EngineKind::kDoc:
        return RunAdlQueryDoc(q, path, options);
    }
    return Status::Invalid("unknown engine kind");
  };
  QueryRunOutput out;
  HEPQ_ASSIGN_OR_RETURN(out, dispatch());
  RunsCounterFor(engine).Add(1);
  EventsCounterFor(engine).Add(out.events_processed);

  if (!fingerprint.empty()) {
    cache::CachedResult cached;
    cached.histograms.reserve(out.histograms.size());
    for (const Histogram1D& h : out.histograms) {
      cached.histograms.push_back(h.ToParts());
    }
    cached.events_processed = out.events_processed;
    cached.ops = out.ops;
    options.result_cache->Insert(fingerprint, std::move(cached));
  }
  return out;
}

}  // namespace hepq::queries
