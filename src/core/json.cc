#include "core/json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hepq::json {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Hand-rolled recursive-descent parser. Depth-capped so adversarial
/// nesting cannot blow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    HEPQ_ASSIGN_OR_RETURN(value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::Corruption("JSON parse error at byte " +
                              std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t n = std::strlen(literal);
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      std::string s;
      HEPQ_ASSIGN_OR_RETURN(s, ParseString());
      return JsonValue::String(std::move(s));
    }
    if (ConsumeLiteral("true")) return JsonValue::Bool(true);
    if (ConsumeLiteral("false")) return JsonValue::Bool(false);
    if (ConsumeLiteral("null")) return JsonValue::Null();
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseNumber() {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) return Error("malformed number");
    pos_ += static_cast<size_t>(end - start);
    return JsonValue::Number(value);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape digit");
          }
          // BMP-only UTF-8 encoding; surrogate pairs are not needed by
          // any producer in this repo and decode as two replacement-ish
          // code points rather than failing the document.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error(std::string("bad escape '\\") + esc + "'");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return array;
    for (;;) {
      JsonValue item;
      HEPQ_ASSIGN_OR_RETURN(item, ParseValue(depth + 1));
      array.array_items().push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return array;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return object;
    for (;;) {
      SkipWhitespace();
      std::string key;
      HEPQ_ASSIGN_OR_RETURN(key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      HEPQ_ASSIGN_OR_RETURN(value, ParseValue(depth + 1));
      object.object_items().emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return object;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

Result<JsonValue> ParseJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  auto parsed = ParseJson(text);
  if (!parsed.ok()) {
    return Status::Corruption("'" + path +
                              "': " + parsed.status().message());
  }
  return parsed;
}

}  // namespace hepq::json
