#ifndef HEPQUERY_CORE_RNG_H_
#define HEPQUERY_CORE_RNG_H_

#include <cstdint>

namespace hepq {

/// Deterministic 64-bit PRNG (xoshiro256**), seeded through splitmix64.
///
/// The data generator must be reproducible across platforms and standard
/// library versions, so we implement both the generator and the
/// distributions ourselves instead of relying on <random> (whose
/// distributions are not portable across implementations).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  /// Normal with given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with given mean (> 0).
  double Exponential(double mean);

  /// Poisson-distributed count with given mean; uses Knuth's method for
  /// small means and a normal approximation above 64.
  int NextPoisson(double mean);

  /// Bernoulli trial.
  bool NextBool(double probability_true);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// splitmix64 step, exposed for deriving independent stream seeds.
uint64_t SplitMix64(uint64_t* state);

}  // namespace hepq

#endif  // HEPQUERY_CORE_RNG_H_
