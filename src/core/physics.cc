#include "core/physics.h"

#include <cmath>
#include <limits>

namespace hepq {

double DeltaPhi(double phi1, double phi2) {
  double d = phi1 - phi2;
  // A non-finite difference (e.g. an aggregate's ±inf identity flowing in
  // from an empty list) would never leave the wrapping loops below.
  if (!std::isfinite(d)) return std::numeric_limits<double>::quiet_NaN();
  while (d > M_PI) d -= 2.0 * M_PI;
  while (d <= -M_PI) d += 2.0 * M_PI;
  return d;
}

double DeltaR(double eta1, double phi1, double eta2, double phi2) {
  const double deta = eta1 - eta2;
  const double dphi = DeltaPhi(phi1, phi2);
  return std::sqrt(deta * deta + dphi * dphi);
}

double MassOfSum2(const PxPyPzE& a, const PxPyPzE& b) {
  return (a + b).Mass();
}

double MassOfSum3(const PxPyPzE& a, const PxPyPzE& b, const PxPyPzE& c) {
  return (a + b + c).Mass();
}

double PtOfSum3(const PxPyPzE& a, const PxPyPzE& b, const PxPyPzE& c) {
  return (a + b + c).Pt();
}

double InvariantMass2(const PtEtaPhiM& p1, const PtEtaPhiM& p2) {
  return MassOfSum2(p1.ToPxPyPzE(), p2.ToPxPyPzE());
}

double InvariantMass3(const PtEtaPhiM& p1, const PtEtaPhiM& p2,
                      const PtEtaPhiM& p3) {
  return MassOfSum3(p1.ToPxPyPzE(), p2.ToPxPyPzE(), p3.ToPxPyPzE());
}

PtEtaPhiM AddPtEtaPhiM3(const PtEtaPhiM& a, const PtEtaPhiM& b,
                        const PtEtaPhiM& c) {
  return (a.ToPxPyPzE() + b.ToPxPyPzE() + c.ToPxPyPzE()).ToPtEtaPhiM();
}

double TransverseMass(double pt1, double phi1, double pt2, double phi2) {
  const double arg = 2.0 * pt1 * pt2 * (1.0 - std::cos(DeltaPhi(phi1, phi2)));
  return arg > 0.0 ? std::sqrt(arg) : 0.0;
}

}  // namespace hepq
