#include "core/physics.h"

#include <cmath>

namespace hepq {

double DeltaPhi(double phi1, double phi2) {
  double d = phi1 - phi2;
  while (d > M_PI) d -= 2.0 * M_PI;
  while (d <= -M_PI) d += 2.0 * M_PI;
  return d;
}

double DeltaR(double eta1, double phi1, double eta2, double phi2) {
  const double deta = eta1 - eta2;
  const double dphi = DeltaPhi(phi1, phi2);
  return std::sqrt(deta * deta + dphi * dphi);
}

double InvariantMass2(const PtEtaPhiM& p1, const PtEtaPhiM& p2) {
  return (p1.ToPxPyPzE() + p2.ToPxPyPzE()).Mass();
}

double InvariantMass3(const PtEtaPhiM& p1, const PtEtaPhiM& p2,
                      const PtEtaPhiM& p3) {
  return (p1.ToPxPyPzE() + p2.ToPxPyPzE() + p3.ToPxPyPzE()).Mass();
}

double TransverseMass(double pt1, double phi1, double pt2, double phi2) {
  const double arg = 2.0 * pt1 * pt2 * (1.0 - std::cos(DeltaPhi(phi1, phi2)));
  return arg > 0.0 ? std::sqrt(arg) : 0.0;
}

}  // namespace hepq
