#ifndef HEPQUERY_CORE_STOPWATCH_H_
#define HEPQUERY_CORE_STOPWATCH_H_

#include <chrono>

namespace hepq {

/// Wall-clock stopwatch (steady clock), started at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process CPU time in seconds (user + system), as reported by the OS.
/// Figure 4a of the paper reports CPU time rather than wall time; on this
/// reproduction's single-core runs the two coincide up to scheduling noise.
double ProcessCpuSeconds();

}  // namespace hepq

#endif  // HEPQUERY_CORE_STOPWATCH_H_
