#ifndef HEPQUERY_CORE_PHYSICS_H_
#define HEPQUERY_CORE_PHYSICS_H_

#include "core/fourvector.h"

namespace hepq {

/// Azimuthal distance wrapped into (-pi, pi].
double DeltaPhi(double phi1, double phi2);

/// Angular distance dR = sqrt(deta^2 + dphi^2) between two directions.
/// Q7 vetoes jets within dR < 0.4 of any light lepton.
double DeltaR(double eta1, double phi1, double eta2, double phi2);

/// Invariant mass of a two-particle system given in the cylindrical basis.
/// Q5 selects opposite-charge muon pairs with 60 < m < 120 GeV.
double InvariantMass2(const PtEtaPhiM& p1, const PtEtaPhiM& p2);

/// Invariant mass of a three-particle system (Q6 trijet).
double InvariantMass3(const PtEtaPhiM& p1, const PtEtaPhiM& p2,
                      const PtEtaPhiM& p3);

/// Transverse mass of a (lepton, missing-ET) system:
/// mT = sqrt(2 pt1 pt2 (1 - cos dphi)). Used by Q8.
double TransverseMass(double pt1, double phi1, double pt2, double phi2);

// ---- Decomposed combination helpers ---------------------------------------
// The vectorized expression VM (engine/vexpr) converts every particle to
// Cartesian once per *element* and only adds + reduces per *candidate
// combination*. InvariantMass2/3 and AddPtEtaPhiM3 are implemented on top
// of the same out-of-line helpers, so the decomposed path executes the
// exact same machine code as the interpreter and stays bit-identical.

/// Invariant mass of the component-wise sum (a + b).
double MassOfSum2(const PxPyPzE& a, const PxPyPzE& b);

/// Invariant mass of the left-associated sum ((a + b) + c).
double MassOfSum3(const PxPyPzE& a, const PxPyPzE& b, const PxPyPzE& c);

/// Transverse momentum of the left-associated sum ((a + b) + c); equals
/// AddPtEtaPhiM3(...).pt without converting the unused components back.
double PtOfSum3(const PxPyPzE& a, const PxPyPzE& b, const PxPyPzE& c);

}  // namespace hepq

#endif  // HEPQUERY_CORE_PHYSICS_H_
