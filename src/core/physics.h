#ifndef HEPQUERY_CORE_PHYSICS_H_
#define HEPQUERY_CORE_PHYSICS_H_

#include "core/fourvector.h"

namespace hepq {

/// Azimuthal distance wrapped into (-pi, pi].
double DeltaPhi(double phi1, double phi2);

/// Angular distance dR = sqrt(deta^2 + dphi^2) between two directions.
/// Q7 vetoes jets within dR < 0.4 of any light lepton.
double DeltaR(double eta1, double phi1, double eta2, double phi2);

/// Invariant mass of a two-particle system given in the cylindrical basis.
/// Q5 selects opposite-charge muon pairs with 60 < m < 120 GeV.
double InvariantMass2(const PtEtaPhiM& p1, const PtEtaPhiM& p2);

/// Invariant mass of a three-particle system (Q6 trijet).
double InvariantMass3(const PtEtaPhiM& p1, const PtEtaPhiM& p2,
                      const PtEtaPhiM& p3);

/// Transverse mass of a (lepton, missing-ET) system:
/// mT = sqrt(2 pt1 pt2 (1 - cos dphi)). Used by Q8.
double TransverseMass(double pt1, double phi1, double pt2, double phi2);

}  // namespace hepq

#endif  // HEPQUERY_CORE_PHYSICS_H_
