#include "core/histogram.h"

#include <cmath>
#include <cstdio>

namespace hepq {

Histogram1D::Histogram1D(HistogramSpec spec) : spec_(std::move(spec)) {
  if (spec_.num_bins < 1) spec_.num_bins = 1;
  if (!(spec_.hi > spec_.lo)) spec_.hi = spec_.lo + 1.0;
  bins_.assign(static_cast<size_t>(spec_.num_bins), 0.0);
}

int Histogram1D::FindBin(double value) const {
  if (value < spec_.lo) return -1;
  if (value >= spec_.hi) return spec_.num_bins;
  const double width = (spec_.hi - spec_.lo) / spec_.num_bins;
  int bin = static_cast<int>((value - spec_.lo) / width);
  if (bin >= spec_.num_bins) bin = spec_.num_bins - 1;  // fp edge case
  return bin;
}

void Histogram1D::Fill(double value, double weight) {
  const int bin = FindBin(value);
  if (bin < 0) {
    underflow_ += weight;
  } else if (bin >= spec_.num_bins) {
    overflow_ += weight;
  } else {
    bins_[static_cast<size_t>(bin)] += weight;
  }
  ++num_entries_;
  sum_w_ += weight;
  sum_wx_ += weight * value;
  sum_wx2_ += weight * value * value;
}

double Histogram1D::BinContent(int i) const {
  if (i < 0 || i >= spec_.num_bins) return 0.0;
  return bins_[static_cast<size_t>(i)];
}

double Histogram1D::BinLowEdge(int i) const {
  const double width = (spec_.hi - spec_.lo) / spec_.num_bins;
  return spec_.lo + width * i;
}

double Histogram1D::BinCenter(int i) const {
  const double width = (spec_.hi - spec_.lo) / spec_.num_bins;
  return spec_.lo + width * (i + 0.5);
}

double Histogram1D::mean() const {
  if (sum_w_ == 0.0) return 0.0;
  return sum_wx_ / sum_w_;
}

double Histogram1D::stddev() const {
  if (sum_w_ == 0.0) return 0.0;
  const double m = mean();
  const double var = sum_wx2_ / sum_w_ - m * m;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

Status Histogram1D::Merge(const Histogram1D& other) {
  if (!(other.spec_ == spec_)) {
    return Status::Invalid("cannot merge histograms with different specs: '" +
                           spec_.name + "' vs '" + other.spec_.name + "'");
  }
  for (size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  num_entries_ += other.num_entries_;
  sum_w_ += other.sum_w_;
  sum_wx_ += other.sum_wx_;
  sum_wx2_ += other.sum_wx2_;
  return Status::OK();
}

HistogramParts Histogram1D::ToParts() const {
  HistogramParts parts;
  parts.spec = spec_;
  parts.bins = bins_;
  parts.underflow = underflow_;
  parts.overflow = overflow_;
  parts.num_entries = num_entries_;
  parts.sum_w = sum_w_;
  parts.sum_wx = sum_wx_;
  parts.sum_wx2 = sum_wx2_;
  return parts;
}

Result<Histogram1D> Histogram1D::FromParts(const HistogramParts& parts) {
  Histogram1D h(parts.spec);
  if (parts.bins.size() != h.bins_.size()) {
    return Status::Invalid("histogram parts for '" + parts.spec.name +
                           "' carry " + std::to_string(parts.bins.size()) +
                           " bins, spec has " +
                           std::to_string(h.bins_.size()));
  }
  h.bins_ = parts.bins;
  h.underflow_ = parts.underflow;
  h.overflow_ = parts.overflow;
  h.num_entries_ = parts.num_entries;
  h.sum_w_ = parts.sum_w;
  h.sum_wx_ = parts.sum_wx;
  h.sum_wx2_ = parts.sum_wx2;
  return h;
}

bool Histogram1D::ApproxEquals(const Histogram1D& other,
                               double tolerance) const {
  if (spec_.num_bins != other.spec_.num_bins) return false;
  if (std::abs(spec_.lo - other.spec_.lo) > tolerance) return false;
  if (std::abs(spec_.hi - other.spec_.hi) > tolerance) return false;
  if (num_entries_ != other.num_entries_) return false;
  if (std::abs(underflow_ - other.underflow_) > tolerance) return false;
  if (std::abs(overflow_ - other.overflow_) > tolerance) return false;
  for (size_t i = 0; i < bins_.size(); ++i) {
    if (std::abs(bins_[i] - other.bins_[i]) > tolerance) return false;
  }
  return true;
}

std::string Histogram1D::ToString(int max_rows) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "Histogram1D '%s' [%g, %g) x %d | entries=%llu mean=%.4g "
                "stddev=%.4g under=%g over=%g\n",
                spec_.name.c_str(), spec_.lo, spec_.hi, spec_.num_bins,
                static_cast<unsigned long long>(num_entries_), mean(),
                stddev(), underflow_, overflow_);
  std::string out = buf;
  int shown = 0;
  for (int i = 0; i < spec_.num_bins && shown < max_rows; ++i) {
    if (bins_[static_cast<size_t>(i)] == 0.0) continue;
    std::snprintf(buf, sizeof(buf), "  [%8.3g, %8.3g): %g\n", BinLowEdge(i),
                  BinLowEdge(i + 1), bins_[static_cast<size_t>(i)]);
    out += buf;
    ++shown;
  }
  return out;
}

std::string Histogram1D::ToCsv() const {
  std::string out = "bin_low,bin_high,content\n";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "-inf,%g,%g\n", spec_.lo, underflow_);
  out += buf;
  for (int i = 0; i < spec_.num_bins; ++i) {
    std::snprintf(buf, sizeof(buf), "%g,%g,%g\n", BinLowEdge(i),
                  BinLowEdge(i + 1), bins_[static_cast<size_t>(i)]);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%g,inf,%g\n", spec_.hi, overflow_);
  out += buf;
  return out;
}

}  // namespace hepq
