#ifndef HEPQUERY_CORE_HISTOGRAM_H_
#define HEPQUERY_CORE_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace hepq {

/// Axis/identity specification of an equi-width 1-D histogram. The ADL
/// benchmark plots everything as equi-width histograms with 100 bins and
/// statically chosen bounds, plus dedicated under-/overflow bins.
struct HistogramSpec {
  std::string name;
  std::string title;
  int num_bins = 100;
  double lo = 0.0;
  double hi = 1.0;

  bool operator==(const HistogramSpec&) const = default;
};

/// Exploded state of a Histogram1D — every accumulator a histogram carries,
/// with nothing derived. This is the unit the scatter/gather IPC layer
/// moves between worker processes: serializing the parts with raw IEEE-754
/// bits and rebuilding via FromParts reproduces the source histogram
/// exactly, so a cross-process merge is bit-identical to an in-process one.
struct HistogramParts {
  HistogramSpec spec;
  std::vector<double> bins;
  double underflow = 0.0;
  double overflow = 0.0;
  uint64_t num_entries = 0;
  double sum_w = 0.0;
  double sum_wx = 0.0;
  double sum_wx2 = 0.0;
};

/// Equi-width 1-D histogram with under-/overflow bins, weighted fills, and
/// first/second moments. This is the terminal aggregation of every ADL
/// benchmark query, equivalent to ROOT's TH1D for our purposes.
class Histogram1D {
 public:
  Histogram1D() : Histogram1D(HistogramSpec{}) {}
  explicit Histogram1D(HistogramSpec spec);

  const HistogramSpec& spec() const { return spec_; }

  /// Adds one entry with the given weight. Out-of-range values land in the
  /// under-/overflow bins but still contribute to the moments.
  void Fill(double value, double weight = 1.0);

  /// Index of the regular bin containing `value`, or -1 (underflow) /
  /// num_bins (overflow).
  int FindBin(double value) const;

  /// Content of regular bin `i` in [0, num_bins).
  double BinContent(int i) const;
  /// Lower edge of regular bin `i`; BinLowEdge(num_bins) is the upper bound.
  double BinLowEdge(int i) const;
  /// Center of regular bin `i`.
  double BinCenter(int i) const;

  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }

  /// Total number of Fill calls (unweighted).
  uint64_t num_entries() const { return num_entries_; }
  /// Sum of weights including under-/overflow.
  double sum_weights() const { return sum_w_; }
  /// Weighted mean of all filled values (including out-of-range ones).
  double mean() const;
  /// Weighted standard deviation of all filled values.
  double stddev() const;

  /// Adds the contents of `other`; specs must match.
  Status Merge(const Histogram1D& other);

  /// Explodes the full accumulator state (see HistogramParts).
  HistogramParts ToParts() const;
  /// Rebuilds a histogram from exploded state; the inverse of ToParts.
  /// `parts.bins` must match the spec's bin count.
  static Result<Histogram1D> FromParts(const HistogramParts& parts);

  /// True if bin contents, flow bins, and entry counts are all within
  /// `tolerance` of each other. Used by cross-engine result checks.
  bool ApproxEquals(const Histogram1D& other, double tolerance = 1e-9) const;

  /// Multi-line summary: spec, entries, mean/stddev, non-empty bins.
  std::string ToString(int max_rows = 8) const;

  /// CSV rendering: header plus one row per bin (including the dedicated
  /// under-/overflow rows), for feeding the paper's plots into external
  /// plotting tools.
  std::string ToCsv() const;

 private:
  HistogramSpec spec_;
  std::vector<double> bins_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
  uint64_t num_entries_ = 0;
  double sum_w_ = 0.0;
  double sum_wx_ = 0.0;
  double sum_wx2_ = 0.0;
};

}  // namespace hepq

#endif  // HEPQUERY_CORE_HISTOGRAM_H_
