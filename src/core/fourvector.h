#ifndef HEPQUERY_CORE_FOURVECTOR_H_
#define HEPQUERY_CORE_FOURVECTOR_H_

#include <cmath>

namespace hepq {

struct PtEtaPhiM;

/// Relativistic four-momentum in Cartesian representation (px, py, pz, E).
/// This is the representation in which four-momenta add component-wise; HEP
/// detectors, however, measure in the cylindrical (pt, eta, phi, m) basis,
/// so combining particles is convert -> add -> convert back.
struct PxPyPzE {
  double px = 0.0;
  double py = 0.0;
  double pz = 0.0;
  double e = 0.0;

  PxPyPzE operator+(const PxPyPzE& o) const {
    return {px + o.px, py + o.py, pz + o.pz, e + o.e};
  }

  double Pt() const { return std::hypot(px, py); }
  double P2() const { return px * px + py * py + pz * pz; }

  /// Invariant mass m = sqrt(E^2 - |p|^2); clamped at 0 for round-off.
  double Mass() const {
    const double m2 = e * e - P2();
    return m2 > 0.0 ? std::sqrt(m2) : 0.0;
  }

  double Eta() const;
  double Phi() const { return std::atan2(py, px); }

  PtEtaPhiM ToPtEtaPhiM() const;
};

/// Four-momentum in the detector-native cylindrical basis:
/// transverse momentum, pseudorapidity, azimuth, and rest mass.
struct PtEtaPhiM {
  double pt = 0.0;
  double eta = 0.0;
  double phi = 0.0;
  double mass = 0.0;

  /// Defined out of line (fourvector.cc) on purpose: the interpreter and
  /// the vectorized expression VM (engine/vexpr) both convert through this
  /// one definition, which keeps their results bit-identical no matter how
  /// each caller's translation unit would have contracted the FP math.
  PxPyPzE ToPxPyPzE() const;

  /// Vector-space transform, piece-wise addition, reverse transform — the
  /// "pseudo-particle" combination pattern of ADL queries Q5/Q6/Q8.
  PtEtaPhiM operator+(const PtEtaPhiM& o) const {
    return (ToPxPyPzE() + o.ToPxPyPzE()).ToPtEtaPhiM();
  }
};

/// Sums three four-momenta (the "trijet system" of Q6).
PtEtaPhiM AddPtEtaPhiM3(const PtEtaPhiM& a, const PtEtaPhiM& b,
                        const PtEtaPhiM& c);

}  // namespace hepq

#endif  // HEPQUERY_CORE_FOURVECTOR_H_
