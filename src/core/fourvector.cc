#include "core/fourvector.h"

namespace hepq {

double PxPyPzE::Eta() const {
  const double pt = Pt();
  if (pt == 0.0) return pz >= 0.0 ? 1e9 : -1e9;  // beam-axis limit
  return std::asinh(pz / pt);
}

PtEtaPhiM PxPyPzE::ToPtEtaPhiM() const {
  return {Pt(), Eta(), Phi(), Mass()};
}

PtEtaPhiM AddPtEtaPhiM3(const PtEtaPhiM& a, const PtEtaPhiM& b,
                        const PtEtaPhiM& c) {
  return (a.ToPxPyPzE() + b.ToPxPyPzE() + c.ToPxPyPzE()).ToPtEtaPhiM();
}

}  // namespace hepq
