#include "core/fourvector.h"

namespace hepq {

double PxPyPzE::Eta() const {
  const double pt = Pt();
  if (pt == 0.0) return pz >= 0.0 ? 1e9 : -1e9;  // beam-axis limit
  return std::asinh(pz / pt);
}

PtEtaPhiM PxPyPzE::ToPtEtaPhiM() const {
  return {Pt(), Eta(), Phi(), Mass()};
}

PxPyPzE PtEtaPhiM::ToPxPyPzE() const {
  const double px = pt * std::cos(phi);
  const double py = pt * std::sin(phi);
  const double pz = pt * std::sinh(eta);
  const double e =
      std::sqrt(px * px + py * py + pz * pz + mass * mass);
  return {px, py, pz, e};
}

}  // namespace hepq
