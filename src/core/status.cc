#include "core/status.h"

#include <cstdio>

namespace hepq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalid:
      return "Invalid";
    case StatusCode::kIoError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kKeyError:
      return "KeyError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

void Status::Check() const {
  if (ok()) return;
  std::fprintf(stderr, "fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace hepq
