#ifndef HEPQUERY_CORE_JSON_H_
#define HEPQUERY_CORE_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "core/status.h"

namespace hepq::json {

// Minimal JSON document model + recursive-descent parser, for tooling
// that must read the repo's own machine-readable outputs (BENCH_*.json,
// bench/baselines/*.json, RunReport JSON) without external dependencies.
// Numbers are doubles (every producer in this repo emits values a double
// holds exactly at the precision written); object key order is preserved.

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  std::vector<JsonValue>& array_items() { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_items() const {
    return object_;
  }
  std::vector<std::pair<std::string, JsonValue>>& object_items() {
    return object_;
  }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const JsonValue* Find(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Errors carry the byte offset of the offending input.
Result<JsonValue> ParseJson(const std::string& text);

/// ParseJson over a file's entire contents.
Result<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace hepq::json

#endif  // HEPQUERY_CORE_JSON_H_
