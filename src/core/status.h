#ifndef HEPQUERY_CORE_STATUS_H_
#define HEPQUERY_CORE_STATUS_H_

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace hepq {

/// Error categories used across the library. Mirrors the coarse taxonomy of
/// Arrow-style status objects: a code plus a human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalid,        // invalid argument or malformed request
  kIoError,        // filesystem / serialization failure
  kCorruption,     // checksum or structural mismatch in a data file
  kNotImplemented, // feature intentionally absent in this build
  kOutOfRange,     // index or bin out of range
  kTypeError,      // dynamic type mismatch (engine / doc interpreter)
  kKeyError,       // missing column, field, or variable
};

/// Returns a short upper-case label for a status code ("OK", "Invalid", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value. Functions that can fail return
/// `Status` (or `Result<T>` when they also produce a value); callers are
/// expected to check with `ok()` or propagate via the RETURN_NOT_OK macro.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalid, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process with a diagnostic if this status is not OK.
  /// Used at the edges (examples, benchmarks) where errors are fatal.
  void Check() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union. `Result<T>` either holds a `T` (status is OK) or
/// an error `Status`. Accessing the value of an errored result aborts.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    status_.Check();
    return *value_;
  }
  T ValueOrDie() && {
    status_.Check();
    return std::move(*value_);
  }
  T& operator*() {
    status_.Check();
    return *value_;
  }
  const T& operator*() const {
    status_.Check();
    return *value_;
  }
  T* operator->() {
    status_.Check();
    return &*value_;
  }
  const T* operator->() const {
    status_.Check();
    return &*value_;
  }

  /// Moves the value into `out` and returns the status (OK on success).
  Status MoveTo(T* out) {
    if (!ok()) return status_;
    *out = std::move(*value_);
    return Status::OK();
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status from the evaluated expression.
#define HEPQ_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::hepq::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (false)

// Evaluates a Result<T> expression, assigning the value to `lhs` on success
// and propagating the error otherwise.
#define HEPQ_ASSIGN_OR_RETURN(lhs, expr)      \
  auto HEPQ_CONCAT_(_res_, __LINE__) = (expr);          \
  if (!HEPQ_CONCAT_(_res_, __LINE__).ok())              \
    return HEPQ_CONCAT_(_res_, __LINE__).status();      \
  lhs = std::move(*HEPQ_CONCAT_(_res_, __LINE__))

#define HEPQ_CONCAT_IMPL_(a, b) a##b
#define HEPQ_CONCAT_(a, b) HEPQ_CONCAT_IMPL_(a, b)

}  // namespace hepq

#endif  // HEPQUERY_CORE_STATUS_H_
