#include "core/rng.h"

#include <cmath>

namespace hepq {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  // Lemire's multiply-shift rejection method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return -mean * std::log(u);
}

int Rng::NextPoisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    const double v = Gaussian(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = NextDouble();
  int count = 0;
  while (product > limit) {
    product *= NextDouble();
    ++count;
  }
  return count;
}

bool Rng::NextBool(double probability_true) {
  return NextDouble() < probability_true;
}

}  // namespace hepq
