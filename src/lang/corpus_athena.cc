#include "lang/corpus.h"

namespace hepq::lang {

// Athena's dialect is Presto's, but without any usable UDF support (paper
// §3.6): every physics formula must be spelled out inline in every query,
// which is what makes Athena the most verbose dialect of the study. The
// query texts are assembled here from the inlined formula fragments.

namespace {

/// E, px, py, pz sums of two or three (pt, eta, phi, mass) groups,
/// written out in full as Athena queries must.
std::string SumE(const std::vector<std::string>& p) {
  std::string out;
  for (size_t i = 0; i < p.size(); ++i) {
    if (i > 0) out += " +\n       ";
    out += "SQRT(POW(" + p[i] + ".pt * COSH(" + p[i] + ".eta), 2) + POW(" +
           p[i] + ".mass, 2))";
  }
  return out;
}

std::string SumComponent(const std::vector<std::string>& p,
                         const std::string& fn) {
  std::string out;
  for (size_t i = 0; i < p.size(); ++i) {
    if (i > 0) out += " + ";
    out += p[i] + ".pt * " + fn + "(" + p[i] + ".phi)";
  }
  return out;
}

std::string SumPz(const std::vector<std::string>& p) {
  std::string out;
  for (size_t i = 0; i < p.size(); ++i) {
    if (i > 0) out += " + ";
    out += p[i] + ".pt * SINH(" + p[i] + ".eta)";
  }
  return out;
}

/// Full inline invariant mass of the given particle aliases.
std::string InlineMass(const std::vector<std::string>& p) {
  return "SQRT(GREATEST(\n  POW(" + SumE(p) + ", 2) -\n  POW(" +
         SumComponent(p, "COS") + ", 2) -\n  POW(" + SumComponent(p, "SIN") +
         ", 2) -\n  POW(" + SumPz(p) + ", 2), 0))";
}

std::string InlineTransversePt(const std::vector<std::string>& p) {
  return "SQRT(POW(" + SumComponent(p, "COS") + ", 2) +\n     POW(" +
         SumComponent(p, "SIN") + ", 2))";
}

std::string InlineDeltaR(const std::string& a, const std::string& b) {
  return "SQRT(POW(" + a + ".eta - " + b + ".eta, 2) +\n       POW(MOD(" +
         a + ".phi - " + b + ".phi + 3 * PI(), 2 * PI()) - PI(), 2))";
}

}  // namespace

Result<std::string> AthenaQueryText(int q) {
  switch (q) {
    case 1:
      return std::string(
          R"sql(SELECT FLOOR(MET.pt / 2) * 2 AS bin, COUNT(*) AS n
FROM events
GROUP BY FLOOR(MET.pt / 2) * 2
ORDER BY 1;
)sql");
    case 2:
      return std::string(
          R"sql(SELECT FLOOR(j.pt / 2) * 2 AS bin, COUNT(*) AS n
FROM events
CROSS JOIN UNNEST(Jet) AS t (j)
GROUP BY FLOOR(j.pt / 2) * 2
ORDER BY 1;
)sql");
    case 3:
      return std::string(
          R"sql(SELECT FLOOR(j.pt / 2) * 2 AS bin, COUNT(*) AS n
FROM events
CROSS JOIN UNNEST(Jet) AS t (j)
WHERE ABS(j.eta) < 1
GROUP BY FLOOR(j.pt / 2) * 2
ORDER BY 1;
)sql");
    case 4:
      return std::string(
          R"sql(WITH selected AS (
  SELECT event, ARBITRARY(MET.pt) AS met
  FROM events
  CROSS JOIN UNNEST(Jet) AS t (j)
  WHERE j.pt > 40
  GROUP BY event
  HAVING COUNT(*) >= 2)
SELECT FLOOR(met / 2) * 2 AS bin, COUNT(*) AS n
FROM selected
GROUP BY FLOOR(met / 2) * 2
ORDER BY 1;
)sql");
    case 5:
      return "WITH pairs AS (\n"
             "  SELECT event, ARBITRARY(MET.pt) AS met\n"
             "  FROM events\n"
             "  CROSS JOIN UNNEST(Muon) WITH ORDINALITY AS t1 (m1, i)\n"
             "  CROSS JOIN UNNEST(Muon) WITH ORDINALITY AS t2 (m2, j)\n"
             "  WHERE i < j\n"
             "    AND m1.charge != m2.charge\n"
             "    AND " +
                 InlineMass({"m1", "m2"}) +
                 "\n        BETWEEN 60 AND 120\n"
                 "  GROUP BY event)\n"
                 "SELECT FLOOR(met / 2) * 2 AS bin, COUNT(*) AS n\n"
                 "FROM pairs\n"
                 "GROUP BY FLOOR(met / 2) * 2\n"
                 "ORDER BY 1;\n";
    case 6:
      // Without UDFs *or* variables (R1.4 / R2.3 both "-"), the trijet
      // mass expression cannot be named once and reused: it is spelled out
      // in full inside each MIN_BY — the repetition §3.5 of the paper
      // describes.
      return "WITH best AS (\n"
             "  SELECT event,\n"
             "    MIN_BY(" +
                 InlineTransversePt({"j1", "j2", "j3"}) +
                 ",\n      ABS(" + InlineMass({"j1", "j2", "j3"}) +
                 " - 172.5)) AS best_pt,\n"
                 "    MIN_BY(GREATEST(j1.btag, j2.btag, j3.btag),\n"
                 "      ABS(" +
                 InlineMass({"j1", "j2", "j3"}) +
                 " - 172.5)) AS best_btag\n"
                 "  FROM events\n"
                 "  CROSS JOIN UNNEST(Jet) WITH ORDINALITY AS t1 (j1, i)\n"
                 "  CROSS JOIN UNNEST(Jet) WITH ORDINALITY AS t2 (j2, j)\n"
                 "  CROSS JOIN UNNEST(Jet) WITH ORDINALITY AS t3 (j3, k)\n"
                 "  WHERE i < j AND j < k\n"
                 "  GROUP BY event)\n"
                 "SELECT FLOOR(best_pt / 3) * 3 AS bin, COUNT(*) AS n,\n"
                 "       FLOOR(best_btag * 100) / 100 AS btag_bin\n"
                 "FROM best\n"
                 "GROUP BY FLOOR(best_pt / 3) * 3,"
                 " FLOOR(best_btag * 100) / 100\n"
                 "ORDER BY 1;\n";
    case 7:
      return "WITH leptons AS (\n"
             "  SELECT *, CONCAT(\n"
             "    TRANSFORM(Electron, e -> CAST(ROW(e.pt, e.eta, e.phi)\n"
             "      AS ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE))),\n"
             "    TRANSFORM(Muon, m -> CAST(ROW(m.pt, m.eta, m.phi)\n"
             "      AS ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE)))) AS leps\n"
             "  FROM events),\n"
             "sums AS (\n"
             "  SELECT REDUCE(\n"
             "    FILTER(Jet, j -> j.pt > 30 AND NONE_MATCH(leps,\n"
             "      l -> l.pt > 10 AND\n       " +
                 InlineDeltaR("j", "l") +
                 " < 0.4)),\n"
                 "    DOUBLE '0.0', (s, j) -> s + j.pt, s -> s) AS sum_pt\n"
                 "  FROM leptons)\n"
                 "SELECT FLOOR(sum_pt / 5) * 5 AS bin, COUNT(*) AS n\n"
                 "FROM sums\n"
                 "GROUP BY FLOOR(sum_pt / 5) * 5\n"
                 "ORDER BY 1;\n";
    case 8:
      return "WITH leptons AS (\n"
             "  SELECT *, CONCAT(\n"
             "    TRANSFORM(Electron, e -> CAST(\n"
             "      ROW(e.pt, e.eta, e.phi, e.mass, e.charge, 0) AS\n"
             "      ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE,\n"
             "          charge INTEGER, flavor INTEGER))),\n"
             "    TRANSFORM(Muon, m -> CAST(\n"
             "      ROW(m.pt, m.eta, m.phi, m.mass, m.charge, 1) AS\n"
             "      ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE,\n"
             "          charge INTEGER, flavor INTEGER)))) AS leps\n"
             "  FROM events\n"
             "  WHERE CARDINALITY(Electron) + CARDINALITY(Muon) >= 3),\n"
             "pairs AS (\n"
             "  SELECT event, ARBITRARY(MET.pt) AS met_pt,\n"
             "         ARBITRARY(MET.phi) AS met_phi,\n"
             "         ARBITRARY(leps) AS leps,\n"
             "         MIN_BY(CAST(ROW(i, j) AS ROW(i BIGINT, j BIGINT)),\n"
             "                ABS(" +
                 InlineMass({"l1", "l2"}) +
                 " - 91.2)) AS pair\n"
                 "  FROM leptons\n"
                 "  CROSS JOIN UNNEST(leps) WITH ORDINALITY AS t1 (l1, i)\n"
                 "  CROSS JOIN UNNEST(leps) WITH ORDINALITY AS t2 (l2, j)\n"
                 "  WHERE i < j AND l1.flavor = l2.flavor\n"
                 "    AND l1.charge != l2.charge\n"
                 "  GROUP BY event),\n"
                 "others AS (\n"
                 "  SELECT met_pt, met_phi, MAX_BY(l, l.pt) AS lep\n"
                 "  FROM pairs\n"
                 "  CROSS JOIN UNNEST(leps) WITH ORDINALITY AS t (l, k)\n"
                 "  WHERE k != pair.i AND k != pair.j\n"
                 "  GROUP BY event, met_pt, met_phi, pair)\n"
                 "SELECT FLOOR(SQRT(2 * met_pt * lep.pt *\n"
                 "  (1 - COS(MOD(met_phi - lep.phi + 3 * PI(), 2 * PI())"
                 " - PI())))\n"
                 "  / 2.5) * 2.5 AS bin,\n"
                 "       COUNT(*) AS n\n"
                 "FROM others\n"
                 "GROUP BY FLOOR(SQRT(2 * met_pt * lep.pt *\n"
                 "  (1 - COS(MOD(met_phi - lep.phi + 3 * PI(), 2 * PI())"
                 " - PI())))\n"
                 "  / 2.5) * 2.5\n"
                 "ORDER BY 1;\n";
    default:
      return Status::Invalid("query id must be in 1..8");
  }
}

}  // namespace hepq::lang
