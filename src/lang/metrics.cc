#include "lang/metrics.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace hepq::lang {

namespace {

bool IsSql(Dialect dialect) {
  return dialect == Dialect::kAthena || dialect == Dialect::kBigQuery ||
         dialect == Dialect::kPresto;
}

/// Strips line comments ("--" for SQL, "//" for C++, "(: :)" for JSONiq).
std::string StripComments(Dialect dialect, const std::string& text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (IsSql(dialect) && text.compare(i, 2, "--") == 0) {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (dialect == Dialect::kRDataFrame && text.compare(i, 2, "//") == 0) {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (dialect == Dialect::kJsoniq && text.compare(i, 2, "(:") == 0) {
      const size_t end = text.find(":)", i + 2);
      i = end == std::string::npos ? text.size() : end + 2;
      continue;
    }
    out.push_back(text[i]);
    ++i;
  }
  return out;
}

const std::set<std::string>& SqlKeywords() {
  static const auto& keywords = *new std::set<std::string>{
      "select", "from",    "where",   "group",   "by",       "having",
      "order",  "cross",   "join",    "unnest",  "with",     "as",
      "and",    "or",      "not",     "between", "exists",   "in",
      "union",  "all",     "limit",   "offset",  "ordinality",
      "case",   "when",    "then",    "else",    "end",      "asc",
      "desc",   "distinct", "create", "temp",    "function", "returns",
      "return", "is",      "null",
  };
  return keywords;
}

const std::set<std::string>& JsoniqKeywords() {
  static const auto& keywords = *new std::set<std::string>{
      "for",    "let",   "where",   "return", "order",  "by",
      "group",  "at",    "in",      "if",     "then",   "else",
      "declare", "function", "and", "or",     "not",    "eq",
      "ne",     "lt",    "le",      "gt",     "ge",     "descending",
      "ascending", "mod", "div",    "satisfies", "some", "every",
  };
  return keywords;
}

const std::set<std::string>& CppKeywords() {
  static const auto& keywords = *new std::set<std::string>{
      "for", "if", "else", "return", "while", "continue", "break",
      "auto", "const", "struct",
  };
  return keywords;
}

const std::set<std::string>& Keywords(Dialect dialect) {
  if (IsSql(dialect)) return SqlKeywords();
  if (dialect == Dialect::kJsoniq) return JsoniqKeywords();
  return CppKeywords();
}

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

std::vector<std::string> ClauseTokens(Dialect dialect,
                                      const std::string& raw_text) {
  const std::string text = StripComments(dialect, raw_text);
  const std::set<std::string>& keywords = Keywords(dialect);
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    if (!(std::isalpha(c) || c == '_' || c == '$')) {
      ++i;
      continue;
    }
    size_t j = i;
    while (j < text.size()) {
      const unsigned char d = static_cast<unsigned char>(text[j]);
      // ':' and '.' keep namespaced/method identifiers together
      // (hep:delta-r, ROOT::VecOps::Sum, .Histo1D).
      if (std::isalnum(d) || d == '_' || d == '$' || d == ':' ||
          (dialect == Dialect::kJsoniq && d == '-' && j + 1 < text.size() &&
           std::isalpha(static_cast<unsigned char>(text[j + 1])))) {
        ++j;
      } else {
        break;
      }
    }
    std::string word = text.substr(i, j - i);
    const bool is_call = j < text.size() && text[j] == '(';
    std::string lowered = IsSql(dialect) ? ToLower(word) : word;
    if (keywords.count(IsSql(dialect) ? lowered
                                      : (dialect == Dialect::kJsoniq
                                             ? word
                                             : word)) > 0) {
      tokens.push_back(IsSql(dialect) ? lowered : word);
    } else if (is_call) {
      // Built-in / library / user-defined function call.
      tokens.push_back(IsSql(dialect) ? lowered : word);
    }
    i = j;
  }
  return tokens;
}

ConcisenessMetrics AnalyzeQuery(Dialect dialect, const std::string& raw) {
  const std::string text = StripComments(dialect, raw);
  ConcisenessMetrics m;
  bool line_has_content = false;
  for (char c : text) {
    if (c == '\n') {
      if (line_has_content) ++m.lines;
      line_has_content = false;
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) {
      ++m.characters;
      line_has_content = true;
    }
  }
  if (line_has_content) ++m.lines;
  const std::vector<std::string> tokens = ClauseTokens(dialect, raw);
  m.clauses = static_cast<int>(tokens.size());
  m.unique_clauses = static_cast<int>(
      std::set<std::string>(tokens.begin(), tokens.end()).size());
  return m;
}

Result<DialectSummary> SummarizeDialect(Dialect dialect) {
  DialectSummary summary;
  summary.dialect = dialect;
  std::set<std::string> all_unique;
  int unique_sum = 0;
  for (int q = 1; q <= 8; ++q) {
    std::string text;
    HEPQ_ASSIGN_OR_RETURN(text, QueryText(dialect, q));
    const ConcisenessMetrics m = AnalyzeQuery(dialect, text);
    summary.characters += m.characters;
    summary.lines += m.lines;
    summary.clauses += m.clauses;
    unique_sum += m.unique_clauses;
    for (const std::string& t : ClauseTokens(dialect, text)) {
      all_unique.insert(t);
    }
  }
  const std::string prelude = SharedPrelude(dialect);
  if (!prelude.empty()) {
    const ConcisenessMetrics m = AnalyzeQuery(dialect, prelude);
    summary.characters += m.characters;
    summary.lines += m.lines;
    summary.clauses += m.clauses;
    for (const std::string& t : ClauseTokens(dialect, prelude)) {
      all_unique.insert(t);
    }
  }
  summary.avg_clauses_per_query = summary.clauses / 8.0;
  summary.unique_clauses = static_cast<int>(all_unique.size());
  summary.avg_unique_clauses_per_query = unique_sum / 8.0;
  return summary;
}

}  // namespace hepq::lang
