#include "lang/corpus.h"

namespace hepq::lang {

const char* DialectName(Dialect dialect) {
  switch (dialect) {
    case Dialect::kAthena:
      return "Athena";
    case Dialect::kBigQuery:
      return "BigQuery";
    case Dialect::kPresto:
      return "Presto";
    case Dialect::kJsoniq:
      return "JSONiq";
    case Dialect::kRDataFrame:
      return "RDataFrame";
  }
  return "unknown";
}

namespace {

// ---------------------------------------------------------------------------
// BigQuery dialect: nested subqueries, inline STRUCTs, temporary UDFs.
// ---------------------------------------------------------------------------

const char* const kBigQuery[8] = {
    // Q1
    R"sql(SELECT FLOOR(MET.pt / 2) * 2 AS bin, COUNT(*) AS n
FROM events
GROUP BY bin
ORDER BY bin;
)sql",
    // Q2
    R"sql(SELECT FLOOR(j.pt / 2) * 2 AS bin, COUNT(*) AS n
FROM events, UNNEST(Jet) AS j
GROUP BY bin
ORDER BY bin;
)sql",
    // Q3
    R"sql(SELECT FLOOR(j.pt / 2) * 2 AS bin, COUNT(*) AS n
FROM events, UNNEST(Jet) AS j
WHERE ABS(j.eta) < 1
GROUP BY bin
ORDER BY bin;
)sql",
    // Q4
    R"sql(SELECT FLOOR(MET.pt / 2) * 2 AS bin, COUNT(*) AS n
FROM events
WHERE (SELECT COUNT(*) FROM UNNEST(Jet) AS j WHERE j.pt > 40) >= 2
GROUP BY bin
ORDER BY bin;
)sql",
    // Q5
    R"sql(SELECT FLOOR(MET.pt / 2) * 2 AS bin, COUNT(*) AS n
FROM events
WHERE (
  SELECT COUNT(*)
  FROM UNNEST(Muon) AS m1 WITH OFFSET i,
       UNNEST(Muon) AS m2 WITH OFFSET j
  WHERE i < j
    AND m1.charge != m2.charge
    AND InvMass2(STRUCT(m1.pt, m1.eta, m1.phi, m1.mass),
                 STRUCT(m2.pt, m2.eta, m2.phi, m2.mass))
        BETWEEN 60 AND 120) > 0
GROUP BY bin
ORDER BY bin;
)sql",
    // Q6
    R"sql(WITH BestTrijet AS (
  SELECT (
    SELECT AS STRUCT
      AddPtEtaPhiM3(STRUCT(j1.pt, j1.eta, j1.phi, j1.mass),
                    STRUCT(j2.pt, j2.eta, j2.phi, j2.mass),
                    STRUCT(j3.pt, j3.eta, j3.phi, j3.mass)).pt AS pt,
      GREATEST(j1.btag, j2.btag, j3.btag) AS max_btag
    FROM UNNEST(Jet) AS j1 WITH OFFSET i,
         UNNEST(Jet) AS j2 WITH OFFSET j,
         UNNEST(Jet) AS j3 WITH OFFSET k
    WHERE i < j AND j < k
    ORDER BY ABS(InvMass3(STRUCT(j1.pt, j1.eta, j1.phi, j1.mass),
                          STRUCT(j2.pt, j2.eta, j2.phi, j2.mass),
                          STRUCT(j3.pt, j3.eta, j3.phi, j3.mass)) - 172.5)
    LIMIT 1) AS best
  FROM events
  WHERE ARRAY_LENGTH(Jet) >= 3)
SELECT FLOOR(best.pt / 3) * 3 AS bin, COUNT(*) AS n,
       FLOOR(best.max_btag * 100) / 100 AS btag_bin
FROM BestTrijet
GROUP BY bin, btag_bin
ORDER BY bin;
)sql",
    // Q7
    R"sql(WITH EventSums AS (
  SELECT (
    SELECT COALESCE(SUM(j.pt), 0)
    FROM UNNEST(Jet) AS j
    WHERE j.pt > 30 AND NOT EXISTS (
      SELECT 1
      FROM UNNEST(ARRAY_CONCAT(
        ARRAY(SELECT AS STRUCT pt, eta, phi FROM UNNEST(Electron)),
        ARRAY(SELECT AS STRUCT pt, eta, phi FROM UNNEST(Muon)))) AS l
      WHERE l.pt > 10 AND DeltaR(j.eta, j.phi, l.eta, l.phi) < 0.4)) AS sum_pt
  FROM events)
SELECT FLOOR(sum_pt / 5) * 5 AS bin, COUNT(*) AS n
FROM EventSums
GROUP BY bin
ORDER BY bin;
)sql",
    // Q8
    R"sql(WITH Leptons AS (
  SELECT *, ARRAY_CONCAT(
    ARRAY(SELECT AS STRUCT pt, eta, phi, mass, charge, 0 AS flavor
          FROM UNNEST(Electron)),
    ARRAY(SELECT AS STRUCT pt, eta, phi, mass, charge, 1 AS flavor
          FROM UNNEST(Muon))) AS leptons
  FROM events),
BestPair AS (
  SELECT *, (
    SELECT AS STRUCT i, j
    FROM UNNEST(leptons) AS l1 WITH OFFSET i,
         UNNEST(leptons) AS l2 WITH OFFSET j
    WHERE i < j AND l1.flavor = l2.flavor AND l1.charge != l2.charge
    ORDER BY ABS(InvMass2(STRUCT(l1.pt, l1.eta, l1.phi, l1.mass),
                          STRUCT(l2.pt, l2.eta, l2.phi, l2.mass)) - 91.2)
    LIMIT 1) AS pair
  FROM Leptons
  WHERE ARRAY_LENGTH(leptons) >= 3),
Other AS (
  SELECT MET, (
    SELECT AS STRUCT l.pt, l.phi
    FROM UNNEST(leptons) AS l WITH OFFSET k
    WHERE k != pair.i AND k != pair.j
    ORDER BY l.pt DESC
    LIMIT 1) AS lep
  FROM BestPair
  WHERE pair IS NOT NULL)
SELECT FLOOR(TransverseMass(MET.pt, MET.phi, lep.pt, lep.phi) / 2.5) * 2.5
         AS bin,
       COUNT(*) AS n
FROM Other
GROUP BY bin
ORDER BY bin;
)sql",
};

const char* const kBigQueryPrelude =
    R"sql(CREATE TEMP FUNCTION ToPxPyPzE(
    p STRUCT<pt FLOAT64, eta FLOAT64, phi FLOAT64, mass FLOAT64>)
AS (STRUCT(p.pt * COS(p.phi) AS px, p.pt * SIN(p.phi) AS py,
           p.pt * SINH(p.eta) AS pz,
           SQRT(POW(p.pt * COSH(p.eta), 2) + POW(p.mass, 2)) AS e));

CREATE TEMP FUNCTION MassOf(
    v STRUCT<px FLOAT64, py FLOAT64, pz FLOAT64, e FLOAT64>)
AS (SQRT(GREATEST(v.e * v.e - v.px * v.px - v.py * v.py - v.pz * v.pz, 0)));

CREATE TEMP FUNCTION InvMass2(
    p1 STRUCT<pt FLOAT64, eta FLOAT64, phi FLOAT64, mass FLOAT64>,
    p2 STRUCT<pt FLOAT64, eta FLOAT64, phi FLOAT64, mass FLOAT64>)
AS ((SELECT MassOf(STRUCT(a.px + b.px, a.py + b.py, a.pz + b.pz, a.e + b.e))
     FROM (SELECT ToPxPyPzE(p1) AS a, ToPxPyPzE(p2) AS b)));

CREATE TEMP FUNCTION InvMass3(
    p1 STRUCT<pt FLOAT64, eta FLOAT64, phi FLOAT64, mass FLOAT64>,
    p2 STRUCT<pt FLOAT64, eta FLOAT64, phi FLOAT64, mass FLOAT64>,
    p3 STRUCT<pt FLOAT64, eta FLOAT64, phi FLOAT64, mass FLOAT64>)
AS ((SELECT MassOf(STRUCT(a.px + b.px + c.px, a.py + b.py + c.py,
                          a.pz + b.pz + c.pz, a.e + b.e + c.e))
     FROM (SELECT ToPxPyPzE(p1) AS a, ToPxPyPzE(p2) AS b,
                  ToPxPyPzE(p3) AS c)));

CREATE TEMP FUNCTION AddPtEtaPhiM3(
    p1 STRUCT<pt FLOAT64, eta FLOAT64, phi FLOAT64, mass FLOAT64>,
    p2 STRUCT<pt FLOAT64, eta FLOAT64, phi FLOAT64, mass FLOAT64>,
    p3 STRUCT<pt FLOAT64, eta FLOAT64, phi FLOAT64, mass FLOAT64>)
AS ((SELECT STRUCT(SQRT(POW(a.px + b.px + c.px, 2) +
                        POW(a.py + b.py + c.py, 2)) AS pt)
     FROM (SELECT ToPxPyPzE(p1) AS a, ToPxPyPzE(p2) AS b,
                  ToPxPyPzE(p3) AS c)));

CREATE TEMP FUNCTION DeltaPhi(phi1 FLOAT64, phi2 FLOAT64)
AS (MOD(phi1 - phi2 + 3 * ACOS(-1), 2 * ACOS(-1)) - ACOS(-1));

CREATE TEMP FUNCTION DeltaR(eta1 FLOAT64, phi1 FLOAT64,
                            eta2 FLOAT64, phi2 FLOAT64)
AS (SQRT(POW(eta1 - eta2, 2) + POW(DeltaPhi(phi1, phi2), 2)));

CREATE TEMP FUNCTION TransverseMass(pt1 FLOAT64, phi1 FLOAT64,
                                    pt2 FLOAT64, phi2 FLOAT64)
AS (SQRT(2 * pt1 * pt2 * (1 - COS(DeltaPhi(phi1, phi2)))));
)sql";

// ---------------------------------------------------------------------------
// Presto dialect: no nested subqueries; CROSS JOIN UNNEST + GROUP BY and
// array functions; CAST(ROW(...) AS ROW(...)) struct construction;
// experimental SQL UDFs for the physics library.
// ---------------------------------------------------------------------------

const char* const kPresto[8] = {
    // Q1
    R"sql(SELECT FLOOR(MET.pt / 2) * 2 AS bin, COUNT(*) AS n
FROM events
GROUP BY FLOOR(MET.pt / 2) * 2
ORDER BY 1;
)sql",
    // Q2
    R"sql(SELECT FLOOR(j.pt / 2) * 2 AS bin, COUNT(*) AS n
FROM events
CROSS JOIN UNNEST(Jet) AS t (j)
GROUP BY FLOOR(j.pt / 2) * 2
ORDER BY 1;
)sql",
    // Q3
    R"sql(SELECT FLOOR(j.pt / 2) * 2 AS bin, COUNT(*) AS n
FROM events
CROSS JOIN UNNEST(Jet) AS t (j)
WHERE ABS(j.eta) < 1
GROUP BY FLOOR(j.pt / 2) * 2
ORDER BY 1;
)sql",
    // Q4
    R"sql(WITH selected AS (
  SELECT event, ARBITRARY(MET.pt) AS met
  FROM events
  CROSS JOIN UNNEST(Jet) AS t (j)
  WHERE j.pt > 40
  GROUP BY event
  HAVING COUNT(*) >= 2)
SELECT FLOOR(met / 2) * 2 AS bin, COUNT(*) AS n
FROM selected
GROUP BY FLOOR(met / 2) * 2
ORDER BY 1;
)sql",
    // Q5
    R"sql(WITH pairs AS (
  SELECT event, ARBITRARY(MET.pt) AS met
  FROM events
  CROSS JOIN UNNEST(Muon) WITH ORDINALITY
    AS t1 (pt1, eta1, phi1, mass1, charge1, iso1, dxy1, dz1, id1, i)
  CROSS JOIN UNNEST(Muon) WITH ORDINALITY
    AS t2 (pt2, eta2, phi2, mass2, charge2, iso2, dxy2, dz2, id2, j)
  WHERE i < j
    AND charge1 != charge2
    AND inv_mass2(
          CAST(ROW(pt1, eta1, phi1, mass1)
               AS ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE)),
          CAST(ROW(pt2, eta2, phi2, mass2)
               AS ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE)))
        BETWEEN 60 AND 120
  GROUP BY event)
SELECT FLOOR(met / 2) * 2 AS bin, COUNT(*) AS n
FROM pairs
GROUP BY FLOOR(met / 2) * 2
ORDER BY 1;
)sql",
    // Q6
    R"sql(WITH trijets AS (
  SELECT event,
         abs_mass_diff(
           CAST(ROW(pt1, eta1, phi1, mass1)
                AS ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE)),
           CAST(ROW(pt2, eta2, phi2, mass2)
                AS ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE)),
           CAST(ROW(pt3, eta3, phi3, mass3)
                AS ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE)))
           AS diff,
         trijet_pt(
           CAST(ROW(pt1, eta1, phi1, mass1)
                AS ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE)),
           CAST(ROW(pt2, eta2, phi2, mass2)
                AS ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE)),
           CAST(ROW(pt3, eta3, phi3, mass3)
                AS ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE)))
           AS pt,
         GREATEST(btag1, btag2, btag3) AS max_btag
  FROM events
  CROSS JOIN UNNEST(Jet) WITH ORDINALITY
    AS t1 (pt1, eta1, phi1, mass1, btag1, id1, area1, nc1, i)
  CROSS JOIN UNNEST(Jet) WITH ORDINALITY
    AS t2 (pt2, eta2, phi2, mass2, btag2, id2, area2, nc2, j)
  CROSS JOIN UNNEST(Jet) WITH ORDINALITY
    AS t3 (pt3, eta3, phi3, mass3, btag3, id3, area3, nc3, k)
  WHERE i < j AND j < k),
best AS (
  SELECT event,
         MIN_BY(pt, diff) AS best_pt,
         MIN_BY(max_btag, diff) AS best_btag
  FROM trijets
  GROUP BY event)
SELECT FLOOR(best_pt / 3) * 3 AS bin, COUNT(*) AS n,
       FLOOR(best_btag * 100) / 100 AS btag_bin
FROM best
GROUP BY FLOOR(best_pt / 3) * 3, FLOOR(best_btag * 100) / 100
ORDER BY 1;
)sql",
    // Q7 (array functions: no nested subqueries in Presto)
    R"sql(WITH leptons AS (
  SELECT *,
         CONCAT(
           TRANSFORM(Electron,
             e -> CAST(ROW(e.pt, e.eta, e.phi)
                       AS ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE))),
           TRANSFORM(Muon,
             m -> CAST(ROW(m.pt, m.eta, m.phi)
                       AS ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE)))) AS leps
  FROM events),
sums AS (
  SELECT REDUCE(
           FILTER(Jet, j -> j.pt > 30 AND NONE_MATCH(leps,
             l -> l.pt > 10 AND delta_r(j.eta, j.phi, l.eta, l.phi) < 0.4)),
           DOUBLE '0.0', (s, j) -> s + j.pt, s -> s) AS sum_pt
  FROM leptons)
SELECT FLOOR(sum_pt / 5) * 5 AS bin, COUNT(*) AS n
FROM sums
GROUP BY FLOOR(sum_pt / 5) * 5
ORDER BY 1;
)sql",
    // Q8
    R"sql(WITH leptons AS (
  SELECT *,
         CONCAT(
           TRANSFORM(Electron, e -> CAST(
             ROW(e.pt, e.eta, e.phi, e.mass, e.charge, 0) AS
             ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE,
                 charge INTEGER, flavor INTEGER))),
           TRANSFORM(Muon, m -> CAST(
             ROW(m.pt, m.eta, m.phi, m.mass, m.charge, 1) AS
             ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE,
                 charge INTEGER, flavor INTEGER)))) AS leps
  FROM events
  WHERE CARDINALITY(Electron) + CARDINALITY(Muon) >= 3),
pairs AS (
  SELECT event, ARBITRARY(MET.pt) AS met_pt, ARBITRARY(MET.phi) AS met_phi,
         ARBITRARY(leps) AS leps,
         MIN_BY(CAST(ROW(i, j) AS ROW(i BIGINT, j BIGINT)),
                abs_z_diff(l1, l2)) AS pair
  FROM leptons
  CROSS JOIN UNNEST(leps) WITH ORDINALITY AS t1 (l1, i)
  CROSS JOIN UNNEST(leps) WITH ORDINALITY AS t2 (l2, j)
  WHERE i < j AND l1.flavor = l2.flavor AND l1.charge != l2.charge
  GROUP BY event),
others AS (
  SELECT met_pt, met_phi,
         MAX_BY(l, l.pt) AS lep
  FROM pairs
  CROSS JOIN UNNEST(leps) WITH ORDINALITY AS t (l, k)
  WHERE k != pair.i AND k != pair.j
  GROUP BY event, met_pt, met_phi, pair)
SELECT FLOOR(transverse_mass(met_pt, met_phi, lep.pt, lep.phi) / 2.5) * 2.5
         AS bin,
       COUNT(*) AS n
FROM others
GROUP BY FLOOR(transverse_mass(met_pt, met_phi, lep.pt, lep.phi) / 2.5) * 2.5
ORDER BY 1;
)sql",
};

const char* const kPrestoPrelude =
    R"sql(CREATE FUNCTION inv_mass2(
    p1 ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE),
    p2 ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE))
RETURNS DOUBLE
RETURN SQRT(GREATEST(
  POW(SQRT(POW(p1.pt * COSH(p1.eta), 2) + POW(p1.mass, 2)) +
      SQRT(POW(p2.pt * COSH(p2.eta), 2) + POW(p2.mass, 2)), 2) -
  POW(p1.pt * COS(p1.phi) + p2.pt * COS(p2.phi), 2) -
  POW(p1.pt * SIN(p1.phi) + p2.pt * SIN(p2.phi), 2) -
  POW(p1.pt * SINH(p1.eta) + p2.pt * SINH(p2.eta), 2), 0));

CREATE FUNCTION abs_mass_diff(
    p1 ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE),
    p2 ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE),
    p3 ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE))
RETURNS DOUBLE
RETURN ABS(SQRT(GREATEST(
  POW(SQRT(POW(p1.pt * COSH(p1.eta), 2) + POW(p1.mass, 2)) +
      SQRT(POW(p2.pt * COSH(p2.eta), 2) + POW(p2.mass, 2)) +
      SQRT(POW(p3.pt * COSH(p3.eta), 2) + POW(p3.mass, 2)), 2) -
  POW(p1.pt * COS(p1.phi) + p2.pt * COS(p2.phi) + p3.pt * COS(p3.phi), 2) -
  POW(p1.pt * SIN(p1.phi) + p2.pt * SIN(p2.phi) + p3.pt * SIN(p3.phi), 2) -
  POW(p1.pt * SINH(p1.eta) + p2.pt * SINH(p2.eta) + p3.pt * SINH(p3.eta),
      2), 0)) - 172.5);

CREATE FUNCTION trijet_pt(
    p1 ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE),
    p2 ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE),
    p3 ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE))
RETURNS DOUBLE
RETURN SQRT(
  POW(p1.pt * COS(p1.phi) + p2.pt * COS(p2.phi) + p3.pt * COS(p3.phi), 2) +
  POW(p1.pt * SIN(p1.phi) + p2.pt * SIN(p2.phi) + p3.pt * SIN(p3.phi), 2));

CREATE FUNCTION delta_r(eta1 DOUBLE, phi1 DOUBLE, eta2 DOUBLE, phi2 DOUBLE)
RETURNS DOUBLE
RETURN SQRT(POW(eta1 - eta2, 2) +
            POW(MOD(phi1 - phi2 + 3 * PI(), 2 * PI()) - PI(), 2));

CREATE FUNCTION abs_z_diff(
    l1 ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE,
           charge INTEGER, flavor INTEGER),
    l2 ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE,
           charge INTEGER, flavor INTEGER))
RETURNS DOUBLE
RETURN ABS(inv_mass2(
  CAST(ROW(l1.pt, l1.eta, l1.phi, l1.mass)
       AS ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE)),
  CAST(ROW(l2.pt, l2.eta, l2.phi, l2.mass)
       AS ROW(pt DOUBLE, eta DOUBLE, phi DOUBLE, mass DOUBLE))) - 91.2);

CREATE FUNCTION transverse_mass(pt1 DOUBLE, phi1 DOUBLE,
                                pt2 DOUBLE, phi2 DOUBLE)
RETURNS DOUBLE
RETURN SQRT(2 * pt1 * pt2 *
            (1 - COS(MOD(phi1 - phi2 + 3 * PI(), 2 * PI()) - PI())));
)sql";

// ---------------------------------------------------------------------------
// JSONiq dialect: FLWOR expressions over the nested event objects.
// ---------------------------------------------------------------------------

const char* const kJsoniq[8] = {
    // Q1
    R"jq(hep:histogram(
  for $event in parquet-file($input)
  return $event.MET.pt,
  0, 200, 100)
)jq",
    // Q2
    R"jq(hep:histogram(
  parquet-file($input).Jet[].pt,
  0, 200, 100)
)jq",
    // Q3
    R"jq(hep:histogram(
  parquet-file($input).Jet[][abs($$.eta) lt 1].pt,
  0, 200, 100)
)jq",
    // Q4
    R"jq(hep:histogram(
  for $event in parquet-file($input)
  where count($event.Jet[][$$.pt gt 40]) ge 2
  return $event.MET.pt,
  0, 200, 100)
)jq",
    // Q5
    R"jq(hep:histogram(
  for $event in parquet-file($input)
  where exists(
    for $m1 at $i in $event.Muon[]
    for $m2 at $j in $event.Muon[]
    where $i lt $j and $m1.charge ne $m2.charge
      and hep:invariant-mass2($m1, $m2) gt 60
      and hep:invariant-mass2($m1, $m2) lt 120
    return 1)
  return $event.MET.pt,
  0, 200, 100)
)jq",
    // Q6
    R"jq(let $best :=
  for $event in parquet-file($input)
  where count($event.Jet[]) ge 3
  let $trijet := (
    for $j1 at $i in $event.Jet[]
    for $j2 at $j in $event.Jet[]
    for $j3 at $k in $event.Jet[]
    where $i lt $j and $j lt $k
    order by abs(hep:invariant-mass3($j1, $j2, $j3) - 172.5)
    return { "pt": hep:add-pt-eta-phi-m3($j1, $j2, $j3).pt,
             "btag": max(($j1.btag, $j2.btag, $j3.btag)) })[1]
  return $trijet
return (hep:histogram($best.pt, 0, 300, 100),
        hep:histogram($best.btag, 0, 1, 100))
)jq",
    // Q7
    R"jq(hep:histogram(
  for $event in parquet-file($input)
  let $leptons := ($event.Electron[], $event.Muon[])
  return sum(
    for $j in $event.Jet[]
    where $j.pt gt 30 and empty(
      $leptons[$$.pt gt 10 and hep:delta-r($$, $j) lt 0.4])
    return $j.pt),
  0, 500, 100)
)jq",
    // Q8
    R"jq(hep:histogram(
  for $event in parquet-file($input)
  let $leptons := (
    for $e in $event.Electron[] return {| $e, {"flavor": 0} |},
    for $m in $event.Muon[] return {| $m, {"flavor": 1} |})
  where count($leptons) ge 3
  let $pair := (
    for $l1 at $i in $leptons
    for $l2 at $j in $leptons
    where $i lt $j and $l1.flavor eq $l2.flavor
      and $l1.charge ne $l2.charge
    order by abs(hep:invariant-mass2($l1, $l2) - 91.2)
    return { "i": $i, "j": $j })[1]
  where exists($pair)
  let $other := (
    for $l at $k in $leptons
    where $k ne $pair.i and $k ne $pair.j
    order by $l.pt descending
    return $l)[1]
  return hep:transverse-mass($event.MET.pt, $event.MET.phi,
                             $other.pt, $other.phi),
  0, 250, 100)
)jq",
};

const char* const kJsoniqPrelude =
    R"jq(declare function hep:to-px-py-pz-e($p) {
  { "px": $p.pt * cos($p.phi), "py": $p.pt * sin($p.phi),
    "pz": $p.pt * sinh($p.eta),
    "e": sqrt(pow($p.pt * cosh($p.eta), 2) + pow($p.mass, 2)) }
};

declare function hep:invariant-mass2($p1, $p2) {
  let $a := hep:to-px-py-pz-e($p1)
  let $b := hep:to-px-py-pz-e($p2)
  return sqrt(max((pow($a.e + $b.e, 2) - pow($a.px + $b.px, 2)
    - pow($a.py + $b.py, 2) - pow($a.pz + $b.pz, 2), 0)))
};

declare function hep:invariant-mass3($p1, $p2, $p3) {
  hep:invariant-mass2(hep:add-pt-eta-phi-m2($p1, $p2), $p3)
};

declare function hep:add-pt-eta-phi-m2($p1, $p2) {
  let $a := hep:to-px-py-pz-e($p1)
  let $b := hep:to-px-py-pz-e($p2)
  return hep:from-px-py-pz-e({ "px": $a.px + $b.px, "py": $a.py + $b.py,
                               "pz": $a.pz + $b.pz, "e": $a.e + $b.e })
};

declare function hep:add-pt-eta-phi-m3($p1, $p2, $p3) {
  hep:add-pt-eta-phi-m2(hep:add-pt-eta-phi-m2($p1, $p2), $p3)
};

declare function hep:delta-phi($phi1, $phi2) {
  (($phi1 - $phi2 + 3 * pi()) mod (2 * pi())) - pi()
};

declare function hep:delta-r($p1, $p2) {
  sqrt(pow($p1.eta - $p2.eta, 2) +
       pow(hep:delta-phi($p1.phi, $p2.phi), 2))
};

declare function hep:transverse-mass($pt1, $phi1, $pt2, $phi2) {
  sqrt(2 * $pt1 * $pt2 * (1 - cos(hep:delta-phi($phi1, $phi2))))
};

declare function hep:histogram($values, $lo, $hi, $bins) {
  for $v in $values
  let $b := floor(($v - $lo) div (($hi - $lo) div $bins))
  group by $b
  return { "bin": $b, "count": count($v) }
};
)jq";

// ---------------------------------------------------------------------------
// RDataFrame dialect: C++ with lambdas over RVec columns.
// ---------------------------------------------------------------------------

const char* const kRdf[8] = {
    // Q1
    R"cpp(auto df = ROOT::RDataFrame("Events", input);
auto h = df.Histo1D({"q1", "MET", 100, 0., 200.}, "MET_pt");
h->Draw();
)cpp",
    // Q2
    R"cpp(auto df = ROOT::RDataFrame("Events", input);
auto h = df.Histo1D({"q2", "Jet pt", 100, 0., 200.}, "Jet_pt");
h->Draw();
)cpp",
    // Q3
    R"cpp(auto df = ROOT::RDataFrame("Events", input);
auto h = df.Define("goodJet_pt",
                   [](const ROOT::RVecF &pt, const ROOT::RVecF &eta) {
                     return pt[abs(eta) < 1.f];
                   },
                   {"Jet_pt", "Jet_eta"})
             .Histo1D({"q3", "Jet pt |eta|<1", 100, 0., 200.}, "goodJet_pt");
h->Draw();
)cpp",
    // Q4
    R"cpp(auto df = ROOT::RDataFrame("Events", input);
auto h = df.Filter([](const ROOT::RVecF &pt) {
                     return ROOT::VecOps::Sum(pt > 40.f) >= 2;
                   },
                   {"Jet_pt"})
             .Histo1D({"q4", "MET, >=2 jets pt>40", 100, 0., 200.},
                      "MET_pt");
h->Draw();
)cpp",
    // Q5
    R"cpp(auto df = ROOT::RDataFrame("Events", input);
auto selected = df.Filter(
    [](const ROOT::RVecF &pt, const ROOT::RVecF &eta,
       const ROOT::RVecF &phi, const ROOT::RVecF &mass,
       const ROOT::RVecI &charge) {
      const auto c = ROOT::VecOps::Combinations(pt, 2);
      for (size_t p = 0; p < c[0].size(); ++p) {
        const auto i = c[0][p], j = c[1][p];
        if (charge[i] == charge[j]) continue;
        const auto m =
            (ROOT::Math::PtEtaPhiMVector(pt[i], eta[i], phi[i], mass[i]) +
             ROOT::Math::PtEtaPhiMVector(pt[j], eta[j], phi[j], mass[j]))
                .M();
        if (m > 60. && m < 120.) return true;
      }
      return false;
    },
    {"Muon_pt", "Muon_eta", "Muon_phi", "Muon_mass", "Muon_charge"});
auto h = selected.Histo1D({"q5", "MET, OS dimuon", 100, 0., 200.},
                          "MET_pt");
h->Draw();
)cpp",
    // Q6
    R"cpp(auto df = ROOT::RDataFrame("Events", input);
auto best = df.Filter([](const ROOT::RVecF &pt) { return pt.size() >= 3; },
                      {"Jet_pt"})
    .Define("trijet",
            [](const ROOT::RVecF &pt, const ROOT::RVecF &eta,
               const ROOT::RVecF &phi, const ROOT::RVecF &mass) {
              const auto c = ROOT::VecOps::Combinations(pt, 3);
              float best_diff = 1e30f;
              ROOT::RVecU best_idx{0, 0, 0};
              for (size_t t = 0; t < c[0].size(); ++t) {
                const auto i = c[0][t], j = c[1][t], k = c[2][t];
                const auto p4 =
                    ROOT::Math::PtEtaPhiMVector(pt[i], eta[i], phi[i],
                                                mass[i]) +
                    ROOT::Math::PtEtaPhiMVector(pt[j], eta[j], phi[j],
                                                mass[j]) +
                    ROOT::Math::PtEtaPhiMVector(pt[k], eta[k], phi[k],
                                                mass[k]);
                const float diff = std::abs(p4.M() - 172.5f);
                if (diff < best_diff) {
                  best_diff = diff;
                  best_idx = {i, j, k};
                }
              }
              return best_idx;
            },
            {"Jet_pt", "Jet_eta", "Jet_phi", "Jet_mass"})
    .Define("trijet_pt",
            [](const ROOT::RVecF &pt, const ROOT::RVecF &eta,
               const ROOT::RVecF &phi, const ROOT::RVecF &mass,
               const ROOT::RVecU &idx) {
              return static_cast<float>(
                  (ROOT::Math::PtEtaPhiMVector(pt[idx[0]], eta[idx[0]],
                                               phi[idx[0]], mass[idx[0]]) +
                   ROOT::Math::PtEtaPhiMVector(pt[idx[1]], eta[idx[1]],
                                               phi[idx[1]], mass[idx[1]]) +
                   ROOT::Math::PtEtaPhiMVector(pt[idx[2]], eta[idx[2]],
                                               phi[idx[2]], mass[idx[2]]))
                      .Pt());
            },
            {"Jet_pt", "Jet_eta", "Jet_phi", "Jet_mass", "trijet"})
    .Define("trijet_btag",
            [](const ROOT::RVecF &btag, const ROOT::RVecU &idx) {
              return ROOT::VecOps::Max(ROOT::VecOps::Take(btag, idx));
            },
            {"Jet_btag", "trijet"});
auto h1 = best.Histo1D({"q6a", "Trijet pt", 100, 0., 300.}, "trijet_pt");
auto h2 = best.Histo1D({"q6b", "Trijet max btag", 100, 0., 1.},
                       "trijet_btag");
h1->Draw();
h2->Draw();
)cpp",
    // Q7
    R"cpp(auto df = ROOT::RDataFrame("Events", input);
auto h = df.Define("goodJet_sumPt",
    [](const ROOT::RVecF &jpt, const ROOT::RVecF &jeta,
       const ROOT::RVecF &jphi, const ROOT::RVecF &ept,
       const ROOT::RVecF &eeta, const ROOT::RVecF &ephi,
       const ROOT::RVecF &mpt, const ROOT::RVecF &meta,
       const ROOT::RVecF &mphi) {
      const auto lep_pt = ROOT::VecOps::Concatenate(ept, mpt);
      const auto lep_eta = ROOT::VecOps::Concatenate(eeta, meta);
      const auto lep_phi = ROOT::VecOps::Concatenate(ephi, mphi);
      float sum = 0.f;
      for (size_t i = 0; i < jpt.size(); ++i) {
        if (jpt[i] <= 30.f) continue;
        bool isolated = true;
        for (size_t l = 0; l < lep_pt.size(); ++l) {
          if (lep_pt[l] <= 10.f) continue;
          if (ROOT::VecOps::DeltaR(jeta[i], lep_eta[l], jphi[i],
                                   lep_phi[l]) < 0.4f) {
            isolated = false;
            break;
          }
        }
        if (isolated) sum += jpt[i];
      }
      return sum;
    },
    {"Jet_pt", "Jet_eta", "Jet_phi", "Electron_pt", "Electron_eta",
     "Electron_phi", "Muon_pt", "Muon_eta", "Muon_phi"})
    .Histo1D({"q7", "Sum pt isolated jets", 100, 0., 500.},
             "goodJet_sumPt");
h->Draw();
)cpp",
    // Q8
    R"cpp(struct Lepton {
  float pt, eta, phi, mass;
  int charge, flavor;
};
auto df = ROOT::RDataFrame("Events", input);
auto h = df.Define("leptons",
    [](const ROOT::RVecF &ept, const ROOT::RVecF &eeta,
       const ROOT::RVecF &ephi, const ROOT::RVecF &emass,
       const ROOT::RVecI &echarge, const ROOT::RVecF &mpt,
       const ROOT::RVecF &meta, const ROOT::RVecF &mphi,
       const ROOT::RVecF &mmass, const ROOT::RVecI &mcharge) {
      std::vector<Lepton> leptons;
      for (size_t i = 0; i < ept.size(); ++i)
        leptons.push_back({ept[i], eeta[i], ephi[i], emass[i],
                           echarge[i], 0});
      for (size_t i = 0; i < mpt.size(); ++i)
        leptons.push_back({mpt[i], meta[i], mphi[i], mmass[i],
                           mcharge[i], 1});
      return leptons;
    },
    {"Electron_pt", "Electron_eta", "Electron_phi", "Electron_mass",
     "Electron_charge", "Muon_pt", "Muon_eta", "Muon_phi", "Muon_mass",
     "Muon_charge"})
    .Filter([](const std::vector<Lepton> &l) { return l.size() >= 3; },
            {"leptons"})
    .Define("mt",
            [](const std::vector<Lepton> &leptons, float met_pt,
               float met_phi) {
              float best_diff = 1e30f;
              int bi = -1, bj = -1;
              for (size_t i = 0; i < leptons.size(); ++i) {
                for (size_t j = i + 1; j < leptons.size(); ++j) {
                  if (leptons[i].flavor != leptons[j].flavor) continue;
                  if (leptons[i].charge == leptons[j].charge) continue;
                  const auto &a = leptons[i];
                  const auto &b = leptons[j];
                  const float m =
                      (ROOT::Math::PtEtaPhiMVector(a.pt, a.eta, a.phi,
                                                   a.mass) +
                       ROOT::Math::PtEtaPhiMVector(b.pt, b.eta, b.phi,
                                                   b.mass))
                          .M();
                  const float diff = std::abs(m - 91.2f);
                  if (diff < best_diff) {
                    best_diff = diff;
                    bi = i;
                    bj = j;
                  }
                }
              }
              if (bi < 0) return -1.f;
              int other = -1;
              for (size_t l = 0; l < leptons.size(); ++l) {
                if (static_cast<int>(l) == bi ||
                    static_cast<int>(l) == bj)
                  continue;
                if (other < 0 || leptons[l].pt > leptons[other].pt)
                  other = l;
              }
              if (other < 0) return -1.f;
              const float dphi =
                  ROOT::VecOps::DeltaPhi(met_phi, leptons[other].phi);
              return std::sqrt(2.f * met_pt * leptons[other].pt *
                               (1.f - std::cos(dphi)));
            },
            {"leptons", "MET_pt", "MET_phi"})
    .Filter([](float mt) { return mt >= 0.f; }, {"mt"})
    .Histo1D({"q8", "Transverse mass", 100, 0., 250.}, "mt");
h->Draw();
)cpp",
};

}  // namespace

namespace {

// The boilerplate every ROOT analysis macro carries: includes, implicit-MT
// setup, the input chain, and the histogram plotting/saving helper. The
// paper counts such shared code toward the implementation size, which is
// one reason RDataFrame has the largest character count in Table 1.
const char* const kRdfPrelude =
    R"cpp(#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <ROOT/RDataFrame.hxx>
#include <ROOT/RVec.hxx>
#include <Math/Vector4D.h>
#include <TCanvas.h>
#include <TChain.h>
#include <TH1D.h>
#include <TStyle.h>

static std::string input;

void InitAnalysis(int argc, char **argv) {
  input = argc > 1 ? argv[1] : "Run2012B_SingleMu.root";
  ROOT::EnableImplicitMT();
  gStyle->SetOptStat(111111);
}

template <typename RResultPtr>
void SaveHistogram(RResultPtr &h, const std::string &name) {
  TCanvas canvas(name.c_str(), name.c_str(), 800, 600);
  canvas.SetLogy();
  h->SetLineWidth(2);
  h->Draw();
  canvas.SaveAs((name + ".png").c_str());
  std::printf("%s: %lld entries, mean %.3f\n", name.c_str(),
              static_cast<long long>(h->GetEntries()), h->GetMean());
}

float DeltaPhiWrapped(float phi1, float phi2) {
  float d = phi1 - phi2;
  while (d > M_PI) d -= 2 * M_PI;
  while (d <= -M_PI) d += 2 * M_PI;
  return d;
}
)cpp";

}  // namespace

std::string SharedPrelude(Dialect dialect) {
  switch (dialect) {
    case Dialect::kBigQuery:
      return kBigQueryPrelude;
    case Dialect::kPresto:
      return kPrestoPrelude;
    case Dialect::kJsoniq:
      return kJsoniqPrelude;
    case Dialect::kAthena:
      // Athena has no usable UDFs (paper §3.6): there is nothing to share;
      // every query inlines the physics formulae.
      return "";
    case Dialect::kRDataFrame:
      return kRdfPrelude;
  }
  return "";
}

Result<std::string> QueryText(Dialect dialect, int q) {
  if (q < 1 || q > 8) return Status::Invalid("query id must be in 1..8");
  const int i = q - 1;
  switch (dialect) {
    case Dialect::kBigQuery:
      return std::string(kBigQuery[i]);
    case Dialect::kPresto:
      return std::string(kPresto[i]);
    case Dialect::kJsoniq:
      return std::string(kJsoniq[i]);
    case Dialect::kRDataFrame:
      return std::string(kRdf[i]);
    case Dialect::kAthena:
      return AthenaQueryText(q);
  }
  return Status::Invalid("unknown dialect");
}

}  // namespace hepq::lang
