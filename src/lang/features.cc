#include "lang/features.h"

namespace hepq::lang {

std::string SupportToString(Support support) {
  switch (support) {
    case Support::kNone:
      return "-";
    case Support::kOneStar:
      return "*";
    case Support::kTwoStars:
      return "**";
    case Support::kThreeStars:
      return "***";
    case Support::kParen:
      return "(**)";
  }
  return "?";
}

Support FeatureRow::ForDialect(Dialect dialect) const {
  switch (dialect) {
    case Dialect::kAthena:
      return athena;
    case Dialect::kBigQuery:
      return bigquery;
    case Dialect::kPresto:
      return presto;
    case Dialect::kJsoniq:
      return jsoniq;
    case Dialect::kRDataFrame:
      return rdataframe;
  }
  return Support::kNone;
}

const std::vector<FeatureRow>& FeatureMatrix() {
  using S = Support;
  // Transcribed from Table 1 of the paper (§3.7).
  static const auto& matrix = *new std::vector<FeatureRow>{
      {"R1.1", "unnest arrays", S::kTwoStars, S::kTwoStars, S::kOneStar,
       S::kThreeStars, S::kTwoStars},
      {"R1.2", "asymmetric combinations", S::kThreeStars, S::kThreeStars,
       S::kTwoStars, S::kThreeStars, S::kTwoStars},
      {"R1.3", "symmetric combinations", S::kThreeStars, S::kThreeStars,
       S::kTwoStars, S::kThreeStars, S::kTwoStars},
      {"R1.4", "UDFs", S::kNone, S::kTwoStars, S::kParen, S::kThreeStars,
       S::kThreeStars},
      {"R2.1", "structured types", S::kTwoStars, S::kThreeStars,
       S::kTwoStars, S::kThreeStars, S::kNone},
      {"R2.2", "nested sub-query", S::kNone, S::kThreeStars, S::kNone,
       S::kThreeStars, S::kThreeStars},
      {"R2.3", "variables", S::kNone, S::kNone, S::kNone, S::kThreeStars,
       S::kThreeStars},
      {"R2.4", "group by variable", S::kNone, S::kThreeStars, S::kNone,
       S::kThreeStars, S::kThreeStars},
      {"R2.5", "struct params in UDFs", S::kOneStar, S::kOneStar,
       S::kOneStar, S::kThreeStars, S::kThreeStars},
      {"R2.6", "tables in UDFs", S::kNone, S::kNone, S::kNone,
       S::kThreeStars, S::kThreeStars},
      {"R3.1", "inline struct types", S::kNone, S::kThreeStars, S::kNone,
       S::kThreeStars, S::kNone},
      {"R3.2", "anonymous structs", S::kTwoStars, S::kThreeStars,
       S::kThreeStars, S::kNone, S::kThreeStars},
      {"R3.3", "array functions", S::kTwoStars, S::kTwoStars,
       S::kThreeStars, S::kTwoStars, S::kThreeStars},
      {"R3.4", "array construction", S::kNone, S::kTwoStars, S::kNone,
       S::kThreeStars, S::kThreeStars},
      {"R3.5", "unnest whole structs", S::kThreeStars, S::kThreeStars,
       S::kNone, S::kThreeStars, S::kNone},
  };
  return matrix;
}

}  // namespace hepq::lang
