#ifndef HEPQUERY_LANG_METRICS_H_
#define HEPQUERY_LANG_METRICS_H_

#include <string>
#include <vector>

#include "lang/corpus.h"

namespace hepq::lang {

/// Conciseness metrics of one query text (Table 1, bottom block):
/// characters exclude whitespace; lines exclude blank lines and comments;
/// clauses count language-construct keywords plus calls to built-in or
/// user-defined functions.
struct ConcisenessMetrics {
  int characters = 0;
  int lines = 0;
  int clauses = 0;
  int unique_clauses = 0;

  void Add(const ConcisenessMetrics& o) {
    characters += o.characters;
    lines += o.lines;
    clauses += o.clauses;
    // unique_clauses is not additive; aggregate via AnalyzeDialect.
  }
};

/// Analyzes one query text.
ConcisenessMetrics AnalyzeQuery(Dialect dialect, const std::string& text);

/// The distinct clause/construct tokens found in `text` (for the
/// unique-clause metrics).
std::vector<std::string> ClauseTokens(Dialect dialect,
                                      const std::string& text);

/// Aggregate over all eight queries plus the dialect's shared prelude.
struct DialectSummary {
  Dialect dialect = Dialect::kBigQuery;
  int characters = 0;
  int lines = 0;
  int clauses = 0;
  double avg_clauses_per_query = 0.0;
  int unique_clauses = 0;  // distinct constructs across the whole corpus
  double avg_unique_clauses_per_query = 0.0;
};

Result<DialectSummary> SummarizeDialect(Dialect dialect);

}  // namespace hepq::lang

#endif  // HEPQUERY_LANG_METRICS_H_
