#ifndef HEPQUERY_LANG_FEATURES_H_
#define HEPQUERY_LANG_FEATURES_H_

#include <string>
#include <vector>

#include "lang/corpus.h"

namespace hepq::lang {

/// Support level of a language feature in one system (Table 1, top block):
/// kNone = "-", and one to three stars for increasingly good support.
/// kParen mirrors the paper's "(**)" for Presto's experimental UDFs.
enum class Support {
  kNone = 0,
  kOneStar = 1,
  kTwoStars = 2,
  kThreeStars = 3,
  kParen = 4,  // experimental / preview ("(**)")
};

std::string SupportToString(Support support);

/// One functional requirement from the paper's §3 analysis.
struct FeatureRow {
  std::string id;     // "R1.1"
  std::string label;  // "unnest arrays"
  Support athena;
  Support bigquery;
  Support presto;
  Support jsoniq;
  Support rdataframe;

  Support ForDialect(Dialect dialect) const;
};

/// The full R1.1–R3.5 feature matrix of Table 1.
const std::vector<FeatureRow>& FeatureMatrix();

}  // namespace hepq::lang

#endif  // HEPQUERY_LANG_FEATURES_H_
