#ifndef HEPQUERY_LANG_CORPUS_H_
#define HEPQUERY_LANG_CORPUS_H_

#include <string>
#include <vector>

#include "core/status.h"

namespace hepq::lang {

/// The five language dialects of Table 1.
enum class Dialect {
  kAthena,
  kBigQuery,
  kPresto,
  kJsoniq,
  kRDataFrame,
};

inline constexpr Dialect kAllDialects[] = {
    Dialect::kAthena, Dialect::kBigQuery, Dialect::kPresto, Dialect::kJsoniq,
    Dialect::kRDataFrame};

const char* DialectName(Dialect dialect);

/// The full text of ADL query `q` (1..8) in `dialect`, modelled on the
/// paper's public implementations (github.com/RumbleDB/
/// hep-iris-benchmark-scripts). These texts are the corpus over which the
/// Table 1 conciseness metrics are computed; the executable counterparts
/// live in src/queries.
Result<std::string> QueryText(Dialect dialect, int q);

/// Athena's texts are assembled from inlined formula fragments (no UDFs);
/// exposed for the corpus tests.
Result<std::string> AthenaQueryText(int q);

/// Shared helper code that a dialect needs once for the whole benchmark
/// (UDF/library definitions); included in the corpus totals, as in the
/// paper.
std::string SharedPrelude(Dialect dialect);

}  // namespace hepq::lang

#endif  // HEPQUERY_LANG_CORPUS_H_
