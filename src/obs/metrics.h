#ifndef HEPQUERY_OBS_METRICS_H_
#define HEPQUERY_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hepq::obs::metrics {

// Process-lifetime metrics registry: named counters, gauges, and
// fixed-bucket latency histograms that accumulate across every query a
// process runs — the scrape surface a long-lived `hepqd` daemon needs,
// where a TraceSession (one run, explicit start/stop) is the wrong shape.
//
// The cost contract mirrors trace.cc: when metrics are disabled (the
// default) every instrument site is one relaxed atomic load; when enabled,
// counters are striped over cache-line-padded atomics so concurrent
// workers never contend on one line, and the warm path performs zero heap
// allocations. Registration (the only allocating operation) happens once
// per site via a function-local static:
//
//   static auto& hits = metrics::GetCounter("hepq_cache_chunk_hits_total");
//   hits.Add(1);
//
// Metric names must be string literals (the registry stores the pointer).
// By convention they follow Prometheus naming: `hepq_<area>_<what>_total`
// for counters, `_ns` suffixed histograms, and optional fixed label sets
// spelled inline (`hepq_queries_runs_total{engine="rdf"}`).

inline constexpr int kCounterStripes = 8;
/// Finite histogram buckets; bucket b spans (bound[b-1], 1024ns << b].
/// One overflow bucket past the last bound. 1.024 us .. ~33.6 ms.
inline constexpr int kHistogramBuckets = 16;

/// Inclusive upper bound (Prometheus `le`) of finite bucket b, in ns.
inline constexpr int64_t HistogramBucketBoundNs(int bucket) {
  return int64_t{1024} << bucket;
}

namespace internal {
extern std::atomic<bool> g_enabled;
/// Stable per-thread stripe index (round-robin assignment on first use).
unsigned StripeIndexForThread();
}  // namespace internal

/// True when metric accumulation is on. One relaxed atomic load — the
/// entire cost of every instrument site in a production (disabled) run.
inline bool MetricsEnabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Flips accumulation on/off. Values accumulated while enabled persist.
void SetMetricsEnabled(bool enabled);

/// Monotonic counter, striped over cache-line-padded atomics so parallel
/// workers on different threads rarely share a line.
class Counter {
 public:
  explicit Counter(const char* name) : name_(name) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta = 1) {
    if (!MetricsEnabled()) return;
    cells_[internal::StripeIndexForThread()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum over stripes. Relaxed; exact once concurrent writers have joined.
  uint64_t Value() const;
  void Reset();
  const char* name() const { return name_; }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  const char* name_;
  Cell cells_[kCounterStripes];
};

/// Instantaneous signed value (queue depth, resident bytes). Unstriped:
/// gauges are set/adjusted at coarse points, not in per-row loops.
class Gauge {
 public:
  explicit Gauge(const char* name) : name_(name) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Sub(int64_t delta) { Add(-delta); }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  const char* name() const { return name_; }

 private:
  const char* name_;
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram (power-of-two bounds from 1.024 us, one
/// overflow bucket) plus exact sum/count. Bounds are compile-time fixed so
/// observation is branch-light and merging across processes is index-wise.
class Histogram {
 public:
  explicit Histogram(const char* name) : name_(name) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(int64_t ns);

  uint64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  uint64_t TotalCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  int64_t SumNs() const { return sum_ns_.load(std::memory_order_relaxed); }
  void Reset();
  const char* name() const { return name_; }

  /// Index of the finite or overflow bucket `ns` falls into.
  static int BucketFor(int64_t ns);

 private:
  const char* name_;
  std::atomic<uint64_t> buckets_[kHistogramBuckets + 1] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_ns_{0};
};

/// Looks up (or registers) the named metric. `name` must be a string
/// literal; the same name always returns the same instance. Thread-safe;
/// allocates only on first registration of a name.
Counter& GetCounter(const char* name);
Gauge& GetGauge(const char* name);
Histogram& GetHistogram(const char* name);

enum class MetricKind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// One metric's point-in-time value, detached from the registry — the
/// unit of exposition, cross-process shipping, and merging.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;               ///< counter / gauge value
  std::vector<uint64_t> buckets;   ///< histogram: kHistogramBuckets+1 counts
  uint64_t observations = 0;       ///< histogram: total count
  int64_t sum_ns = 0;              ///< histogram: sum of observed ns
};

/// Every registered metric's current value, sorted by name — deterministic
/// modulo the values themselves.
std::vector<MetricSample> SnapshotMetrics();

/// Merges `from` into `into` by name: counters, gauges, and histogram
/// buckets sum; names only in `from` are appended. Keeps `into` sorted.
void MergeMetricSamples(std::vector<MetricSample>* into,
                        const std::vector<MetricSample>& from);

/// Prometheus text exposition (TYPE comments + samples). Histogram bucket
/// lines are cumulative with `le` labels, per the format.
std::string MetricsToPrometheus(const std::vector<MetricSample>& samples);

/// The samples as a JSON array (each sample one object), embeddable in a
/// RunReport; MetricsToJson wraps it in a `{"metrics": ...}` document.
std::string MetricSamplesJsonArray(const std::vector<MetricSample>& samples);
std::string MetricsToJson(const std::vector<MetricSample>& samples);

/// Zeroes every registered metric's value (registrations persist). Tests
/// only — production metrics are process-lifetime by design.
void ResetMetricsForTest();

}  // namespace hepq::obs::metrics

#endif  // HEPQUERY_OBS_METRICS_H_
