#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace hepq::obs {

namespace {

// ---- minimal JSON writer -------------------------------------------------

void AppendEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "0";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

/// Comma-managing appender for one object or array scope.
class JsonScope {
 public:
  JsonScope(std::string* out, char open, char close)
      : out_(out), close_(close) {
    out_->push_back(open);
  }
  ~JsonScope() { out_->push_back(close_); }

  std::string* Sep() {
    if (!first_) out_->push_back(',');
    first_ = false;
    return out_;
  }
  std::string* Key(const char* key) {
    Sep();
    AppendEscaped(out_, key);
    out_->push_back(':');
    return out_;
  }
  void Int(const char* key, int64_t v) { *Key(key) += std::to_string(v); }
  void UInt(const char* key, uint64_t v) { *Key(key) += std::to_string(v); }
  void Num(const char* key, double v) { AppendDouble(Key(key), v); }
  void Str(const char* key, std::string_view v) { AppendEscaped(Key(key), v); }
  void Bool(const char* key, bool v) { *Key(key) += v ? "true" : "false"; }

 private:
  std::string* out_;
  char close_;
  bool first_ = true;
};

// ---- exclusive-time computation ------------------------------------------

struct SelfTimes {
  // Indexed like the span vector it was computed from.
  std::vector<int64_t> wall;
  std::vector<int64_t> cpu;
};

/// Exclusive times per span. `spans` must be the records of ONE thread in
/// end order (which is how ThreadBufs store them). Spans on one thread
/// nest properly, so in end order a span's direct children are exactly
/// the already-seen spans, not yet claimed by another parent, whose start
/// is >= its own — a single stack pass.
SelfTimes ComputeSelfTimes(const std::vector<SpanRecord>& spans) {
  SelfTimes self;
  self.wall.resize(spans.size());
  self.cpu.resize(spans.size());
  struct Open {
    int64_t start_ns;
    int64_t wall_ns;
    int64_t cpu_ns;
  };
  std::vector<Open> stack;
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    int64_t child_wall = 0, child_cpu = 0;
    while (!stack.empty() && stack.back().start_ns >= s.start_ns) {
      child_wall += stack.back().wall_ns;
      child_cpu += stack.back().cpu_ns;
      stack.pop_back();
    }
    self.wall[i] = std::max<int64_t>(0, s.duration_ns() - child_wall);
    self.cpu[i] = std::max<int64_t>(0, s.cpu_ns - child_cpu);
    stack.push_back(Open{s.start_ns, s.duration_ns(), s.cpu_ns});
  }
  return self;
}

std::string FormatNs(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%10.3f ms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= 10ull * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%8.1f MB",
                  static_cast<double>(bytes) / 1e6);
  } else if (bytes >= 10ull * 1000) {
    std::snprintf(buf, sizeof(buf), "%8.1f kB",
                  static_cast<double>(bytes) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%8llu B ",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace

double RunReport::cpu_ns_per_event() const {
  if (info.events_processed <= 0) return 0.0;
  return info.cpu_seconds * 1e9 / static_cast<double>(info.events_processed);
}

double RunReport::storage_bytes_per_event() const {
  if (info.events_processed <= 0) return 0.0;
  return static_cast<double>(scan.storage_bytes) /
         static_cast<double>(info.events_processed);
}

double RunReport::decoded_bytes_per_event() const {
  if (info.events_processed <= 0) return 0.0;
  return static_cast<double>(scan.decoded_bytes) /
         static_cast<double>(info.events_processed);
}

double RunReport::events_per_sec_per_core() const {
  if (info.cpu_seconds <= 0.0) return 0.0;
  return static_cast<double>(info.events_processed) / info.cpu_seconds;
}

int64_t RunReport::cpu_ns() const {
  return static_cast<int64_t>(std::llround(info.cpu_seconds * 1e9));
}

int64_t RunReport::wall_ns() const {
  return static_cast<int64_t>(std::llround(info.wall_seconds * 1e9));
}

double RunReport::span_coverage() const {
  if (run_span_ns <= 0) return 0.0;
  return static_cast<double>(total_span_ns) /
         static_cast<double>(run_span_ns);
}

double RunReport::vops_per_event() const {
  if (info.events_processed <= 0) return 0.0;
  for (const CounterSummary& counter : counters) {
    if (counter.stage == Stage::kVexprKernel &&
        counter.name == "vops_retired") {
      return static_cast<double>(counter.count) /
             static_cast<double>(info.events_processed);
    }
  }
  return 0.0;
}

double RunReport::vexpr_fused_coverage() const {
  uint64_t retired = 0;
  uint64_t fused = 0;
  for (const CounterSummary& counter : counters) {
    if (counter.stage != Stage::kVexprKernel) continue;
    if (counter.name == "vops_retired") retired = counter.count;
    if (counter.name == "vops_fused") fused = counter.count;
  }
  if (retired == 0) return 0.0;
  return static_cast<double>(fused) / static_cast<double>(retired);
}

RunReport BuildRunReport(const TraceSession& session, const RunInfo& info,
                         const ScanStats& scan, size_t max_timeline_entries,
                         size_t max_stragglers) {
  RunReport report;
  report.info = info;
  report.scan = scan;
  report.window_ns = session.stop_ns() - session.start_ns();

  const std::vector<SpanRecord> merged = session.MergedSpans();

  // Regroup by thread (already each in end order after a stable pass over
  // seq, since MergedSpans sorts by start — rebuild end order per thread).
  const int num_threads = session.num_threads();
  std::vector<std::vector<SpanRecord>> per_thread(
      static_cast<size_t>(std::max(num_threads, 1)));
  for (const SpanRecord& span : merged) {
    per_thread[span.thread_index].push_back(span);
  }
  for (auto& spans : per_thread) {
    std::sort(spans.begin(), spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return a.seq < b.seq;
              });
  }

  // Stage rollup from per-thread exclusive times.
  std::vector<StageSummary> stages(kNumStages);
  for (int s = 0; s < kNumStages; ++s) {
    stages[static_cast<size_t>(s)].stage = static_cast<Stage>(s);
  }
  for (const auto& spans : per_thread) {
    const SelfTimes self = ComputeSelfTimes(spans);
    for (size_t i = 0; i < spans.size(); ++i) {
      StageSummary& stage = stages[static_cast<size_t>(spans[i].stage)];
      stage.wall_ns += self.wall[i];
      stage.cpu_ns += self.cpu[i];
      stage.bytes += spans[i].bytes;
      ++stage.count;
    }
  }
  for (const StageSummary& stage : stages) {
    if (stage.count > 0) report.stages.push_back(stage);
  }

  // Root span + top-level coverage.
  for (const SpanRecord& span : merged) {
    if (span.stage == Stage::kRun && span.duration_ns() > report.run_span_ns) {
      report.run_span_ns = span.duration_ns();
    }
  }
  // "Top level" for coverage purposes means depth 1 when a run root
  // exists (children of the root), else depth 0.
  const uint8_t top_depth = report.run_span_ns > 0 ? 1 : 0;
  for (const SpanRecord& span : merged) {
    if (span.depth == top_depth) report.total_span_ns += span.duration_ns();
  }

  // Worker summaries from row-group spans.
  int64_t window_start = session.start_ns();
  int64_t window_end = session.stop_ns();
  if (window_end <= window_start) {
    // Session still active when the report was built: fall back to the
    // span extent.
    for (const SpanRecord& span : merged) {
      window_end = std::max(window_end, span.end_ns);
    }
  }
  const int64_t window = std::max<int64_t>(window_end - window_start, 0);
  // Keyed by the runtime worker id the scheduler stamped on each span —
  // not the trace thread index, whose numbering depends on which thread
  // happened to register its buffer first. Untagged spans land on w0.
  std::vector<const SpanRecord*> row_group_spans;
  int max_worker = 0;
  for (const SpanRecord& span : merged) {
    if (span.stage != Stage::kRowGroup) continue;
    row_group_spans.push_back(&span);
    max_worker = std::max(max_worker, static_cast<int>(span.worker));
  }
  for (int w = 0; w <= max_worker; ++w) {
    WorkerSummary worker;
    worker.worker = w;
    std::vector<const SpanRecord*> groups;
    for (const SpanRecord* span : row_group_spans) {
      if (std::max(static_cast<int>(span->worker), 0) != w) continue;
      groups.push_back(span);
      worker.busy_ns += span->duration_ns();
      ++worker.row_groups;
      if (span->queue_ns > worker.max_queue_ns) {
        worker.max_queue_ns = span->queue_ns;
        worker.max_queue_group = span->group;
      }
    }
    if (groups.empty()) continue;
    worker.idle_ns = std::max<int64_t>(window - worker.busy_ns, 0);
    worker.busy_fraction =
        window > 0 ? static_cast<double>(worker.busy_ns) /
                         static_cast<double>(window)
                   : 0.0;
    std::sort(groups.begin(), groups.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                return a->start_ns < b->start_ns;
              });
    for (const SpanRecord* span : groups) {
      if (max_timeline_entries > 0 &&
          worker.timeline.size() >= max_timeline_entries) {
        worker.timeline_truncated = true;
        break;
      }
      worker.timeline.push_back(WorkerSummary::TimelineEntry{
          span->group, span->slot, span->start_ns - window_start,
          span->duration_ns(), span->queue_ns, span->bytes});
    }
    report.workers.push_back(std::move(worker));
  }

  // Stragglers: slowest row-group spans across all workers.
  std::vector<const SpanRecord*> row_groups = row_group_spans;
  std::sort(row_groups.begin(), row_groups.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              if (a->duration_ns() != b->duration_ns()) {
                return a->duration_ns() > b->duration_ns();
              }
              return a->group < b->group;
            });
  for (size_t i = 0; i < row_groups.size() && i < max_stragglers; ++i) {
    const SpanRecord* span = row_groups[i];
    Straggler straggler;
    straggler.group = span->group;
    straggler.worker = span->worker;
    straggler.slot = span->slot;
    straggler.wall_ns = span->duration_ns();
    straggler.bytes = span->bytes;
    report.stragglers.push_back(straggler);
  }

  for (const CounterRecord& counter : session.MergedCounters()) {
    report.counters.push_back(CounterSummary{counter.name, counter.stage,
                                             counter.ns, counter.count,
                                             counter.bytes});
  }

  report.cost_inputs.cpu_seconds = info.cpu_seconds;
  report.cost_inputs.storage_bytes = scan.storage_bytes;
  report.cost_inputs.logical_bytes_bq = scan.logical_bytes_bq;
  report.cost_inputs.row_groups =
      static_cast<int>(std::max<size_t>(row_groups.size(), 1));
  report.cost_inputs.events = info.events_processed;
  report.metrics = metrics::SnapshotMetrics();
  return report;
}

std::string ReportToJson(const RunReport& report) {
  std::string out;
  out.reserve(4096);
  {
    JsonScope root(&out, '{', '}');
    root.Int("schema_version", RunReport::kSchemaVersion);
    root.Str("query", report.info.query);
    root.Str("engine", report.info.engine);
    root.Int("threads", report.info.threads);
    root.Int("events_processed", report.info.events_processed);
    root.Int("wall_ns", report.wall_ns());
    root.Int("cpu_ns", report.cpu_ns());
    root.Int("run_span_ns", report.run_span_ns);
    root.Int("total_span_ns", report.total_span_ns);
    root.Int("window_ns", report.window_ns);
    root.Num("span_coverage", report.span_coverage());
    {
      JsonScope fig(root.Key("figure4"), '{', '}');
      fig.Num("cpu_ns_per_event", report.cpu_ns_per_event());
      fig.Num("storage_bytes_per_event", report.storage_bytes_per_event());
      fig.Num("decoded_bytes_per_event", report.decoded_bytes_per_event());
      fig.Num("events_per_sec_per_core", report.events_per_sec_per_core());
    }
    {
      JsonScope vm(root.Key("expr_vm"), '{', '}');
      vm.Num("vops_per_event", report.vops_per_event());
      vm.Num("fused_coverage", report.vexpr_fused_coverage());
    }
    {
      JsonScope scan(root.Key("scan"), '{', '}');
      scan.UInt("storage_bytes", report.scan.storage_bytes);
      scan.UInt("encoded_bytes", report.scan.encoded_bytes);
      scan.UInt("logical_bytes_bq", report.scan.logical_bytes_bq);
      scan.UInt("ideal_bytes", report.scan.ideal_bytes);
      scan.UInt("chunks_read", report.scan.chunks_read);
      scan.UInt("values_read", report.scan.values_read);
      scan.UInt("decoded_bytes", report.scan.decoded_bytes);
      scan.UInt("pages_read", report.scan.pages_read);
      scan.UInt("pages_pruned", report.scan.pages_pruned);
      scan.UInt("rows_pruned", report.scan.rows_pruned);
      scan.UInt("rows_read", report.scan.rows_read);
      scan.UInt("lanes_pruned", report.scan.lanes_pruned);
      scan.UInt("groups_pruned", report.scan.groups_pruned);
    }
    {
      // decoded_bytes (from disk, this run) + cache_bytes_served == the
      // bytes the query consumed — the cache hierarchy's reconciliation
      // invariant, emitted pre-summed so consumers need no arithmetic.
      JsonScope cache(root.Key("cache"), '{', '}');
      cache.UInt("footer_hits", report.scan.footer_cache_hits);
      cache.UInt("footer_misses", report.scan.footer_cache_misses);
      cache.UInt("chunk_hits", report.scan.chunk_cache_hits);
      cache.UInt("chunk_misses", report.scan.chunk_cache_misses);
      cache.UInt("cache_bytes_served", report.scan.cache_bytes_served);
      cache.UInt("consumed_bytes",
                 report.scan.decoded_bytes + report.scan.cache_bytes_served);
    }
    {
      JsonScope stages(root.Key("stages"), '[', ']');
      for (const StageSummary& stage : report.stages) {
        JsonScope s(stages.Sep(), '{', '}');
        s.Str("stage", StageName(stage.stage));
        s.Int("wall_ns", stage.wall_ns);
        s.Int("cpu_ns", stage.cpu_ns);
        s.UInt("bytes", stage.bytes);
        s.UInt("count", stage.count);
      }
    }
    {
      JsonScope processes(root.Key("processes"), '[', ']');
      for (const RunReport::ProcessSummary& process : report.processes) {
        JsonScope p(processes.Sep(), '{', '}');
        p.Int("proc", process.proc);
        p.Int("shard_begin", process.shard_begin);
        p.Int("shard_end", process.shard_end);
        p.Int("threads", process.threads);
        p.Int("events", process.events);
        p.Num("wall_seconds", process.wall_seconds);
        p.Num("cpu_seconds", process.cpu_seconds);
        p.UInt("storage_bytes", process.storage_bytes);
        p.UInt("decoded_bytes", process.decoded_bytes);
        p.UInt("cache_bytes_served", process.cache_bytes_served);
        p.Bool("report_received", process.report_received);
      }
    }
    root.Bool("partial", report.partial);
    {
      JsonScope warnings(root.Key("warnings"), '[', ']');
      for (const std::string& warning : report.warnings) {
        AppendEscaped(warnings.Sep(), warning);
      }
    }
    *root.Key("metrics") += metrics::MetricSamplesJsonArray(report.metrics);
    {
      JsonScope workers(root.Key("workers"), '[', ']');
      for (const WorkerSummary& worker : report.workers) {
        JsonScope w(workers.Sep(), '{', '}');
        w.Int("proc", worker.proc);
        w.Int("worker", worker.worker);
        w.Int("busy_ns", worker.busy_ns);
        w.Int("idle_ns", worker.idle_ns);
        w.Num("busy_fraction", worker.busy_fraction);
        w.Int("row_groups", worker.row_groups);
        w.Int("max_queue_ns", worker.max_queue_ns);
        w.Int("max_queue_group", worker.max_queue_group);
        w.Bool("timeline_truncated", worker.timeline_truncated);
        {
          JsonScope timeline(w.Key("timeline"), '[', ']');
          for (const auto& entry : worker.timeline) {
            JsonScope e(timeline.Sep(), '{', '}');
            e.Int("group", entry.group);
            e.Int("slot", entry.slot);
            e.Int("start_ns", entry.start_ns);
            e.Int("dur_ns", entry.dur_ns);
            e.Int("queue_ns", entry.queue_ns);
            e.UInt("bytes", entry.bytes);
          }
        }
      }
    }
    {
      JsonScope stragglers(root.Key("stragglers"), '[', ']');
      for (const Straggler& straggler : report.stragglers) {
        JsonScope s(stragglers.Sep(), '{', '}');
        s.Int("group", straggler.group);
        s.Int("proc", straggler.proc);
        s.Int("worker", straggler.worker);
        s.Int("slot", straggler.slot);
        s.Int("wall_ns", straggler.wall_ns);
        s.UInt("bytes", straggler.bytes);
      }
    }
    {
      JsonScope leaves(root.Key("per_leaf"), '[', ']');
      for (const LeafScanStats& leaf : report.scan.leaves) {
        if (leaf.decoded_bytes == 0 && leaf.pages_read == 0 &&
            leaf.chunks_read == 0 && leaf.pages_pruned == 0 &&
            leaf.cache_bytes_served == 0) {
          continue;
        }
        JsonScope l(leaves.Sep(), '{', '}');
        l.Str("leaf", leaf.path);
        l.UInt("decoded_bytes", leaf.decoded_bytes);
        l.UInt("storage_bytes", leaf.storage_bytes);
        l.UInt("chunks_read", leaf.chunks_read);
        l.UInt("pages_read", leaf.pages_read);
        l.UInt("pages_pruned", leaf.pages_pruned);
        l.UInt("cache_bytes_served", leaf.cache_bytes_served);
      }
    }
    {
      JsonScope counters(root.Key("counters"), '[', ']');
      for (const CounterSummary& counter : report.counters) {
        JsonScope c(counters.Sep(), '{', '}');
        c.Str("name", counter.name);
        c.Str("stage", StageName(counter.stage));
        c.Int("ns", counter.ns);
        c.UInt("count", counter.count);
        c.UInt("bytes", counter.bytes);
      }
    }
    {
      JsonScope cost(root.Key("cost_inputs"), '{', '}');
      cost.Num("cpu_seconds", report.cost_inputs.cpu_seconds);
      cost.UInt("storage_bytes", report.cost_inputs.storage_bytes);
      cost.UInt("logical_bytes_bq", report.cost_inputs.logical_bytes_bq);
      cost.Int("row_groups", report.cost_inputs.row_groups);
      cost.Int("events", report.cost_inputs.events);
    }
  }
  out.push_back('\n');
  return out;
}

std::string ReportToTable(const RunReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "profile: %s %s  threads=%d  events=%lld  wall=%.3f ms  "
                "cpu=%.3f ms  coverage=%.1f%%\n",
                report.info.engine.c_str(), report.info.query.c_str(),
                report.info.threads,
                static_cast<long long>(report.info.events_processed),
                report.info.wall_seconds * 1e3, report.info.cpu_seconds * 1e3,
                100.0 * report.span_coverage());
  out += line;

  if (!report.processes.empty()) {
    out += "  proc  shards        events        decoded      served    "
           "cpu\n";
    for (const RunReport::ProcessSummary& process : report.processes) {
      std::snprintf(line, sizeof(line),
                    "  p%-4d [%d,%d)%*s %10lld %s %s %9.3f ms%s\n",
                    process.proc, process.shard_begin, process.shard_end,
                    process.shard_end >= 10 ? 4 : 6, "",
                    static_cast<long long>(process.events),
                    FormatBytes(process.decoded_bytes).c_str(),
                    FormatBytes(process.cache_bytes_served).c_str(),
                    process.cpu_seconds * 1e3,
                    process.report_received ? "" : "   [no report]");
      out += line;
    }
  }
  for (const std::string& warning : report.warnings) {
    out += "  warning: " + warning + "\n";
  }

  out += "  stage          self wall      self cpu         bytes    spans\n";
  for (const StageSummary& stage : report.stages) {
    std::snprintf(line, sizeof(line), "  %-10s %s %s  %s %8llu\n",
                  StageName(stage.stage), FormatNs(stage.wall_ns).c_str(),
                  FormatNs(stage.cpu_ns).c_str(),
                  FormatBytes(stage.bytes).c_str(),
                  static_cast<unsigned long long>(stage.count));
    out += line;
  }

  if (!report.workers.empty()) {
    out += "  worker     busy        idle        busy%   groups   "
           "max queue (group)\n";
    for (const WorkerSummary& worker : report.workers) {
      char label[24];
      if (report.processes.empty()) {
        std::snprintf(label, sizeof(label), "w%d", worker.worker);
      } else {
        std::snprintf(label, sizeof(label), "p%d:w%d", worker.proc,
                      worker.worker);
      }
      std::snprintf(line, sizeof(line),
                    "  %-5s %s %s %7.1f%% %8lld %s (%d)\n",
                    label, FormatNs(worker.busy_ns).c_str(),
                    FormatNs(worker.idle_ns).c_str(),
                    100.0 * worker.busy_fraction,
                    static_cast<long long>(worker.row_groups),
                    FormatNs(worker.max_queue_ns).c_str(),
                    worker.max_queue_group);
      out += line;
    }
  }

  if (!report.stragglers.empty()) {
    out += "  stragglers (slowest row groups):\n";
    for (const Straggler& straggler : report.stragglers) {
      std::snprintf(line, sizeof(line),
                    "    group %-6d %s  worker %-3d slot %-4d %s\n",
                    straggler.group, FormatNs(straggler.wall_ns).c_str(),
                    straggler.worker, straggler.slot,
                    FormatBytes(straggler.bytes).c_str());
      out += line;
    }
  }

  bool any_leaf = false;
  for (const LeafScanStats& leaf : report.scan.leaves) {
    if (leaf.decoded_bytes != 0 || leaf.pages_read != 0 ||
        leaf.chunks_read != 0 || leaf.pages_pruned != 0) {
      any_leaf = true;
      break;
    }
  }
  if (any_leaf) {
    out += "  leaf                       decoded      stored   chunks    "
           "pages   pruned\n";
    for (const LeafScanStats& leaf : report.scan.leaves) {
      if (leaf.decoded_bytes == 0 && leaf.pages_read == 0 &&
          leaf.chunks_read == 0 && leaf.pages_pruned == 0) {
        continue;
      }
      std::snprintf(line, sizeof(line),
                    "  %-24s %s %s %8llu %8llu %8llu\n", leaf.path.c_str(),
                    FormatBytes(leaf.decoded_bytes).c_str(),
                    FormatBytes(leaf.storage_bytes).c_str(),
                    static_cast<unsigned long long>(leaf.chunks_read),
                    static_cast<unsigned long long>(leaf.pages_read),
                    static_cast<unsigned long long>(leaf.pages_pruned));
      out += line;
    }
  }

  if (!report.counters.empty()) {
    out += "  counter                 time         count\n";
    for (const CounterSummary& counter : report.counters) {
      std::snprintf(line, sizeof(line), "  %-18s %s %10llu\n",
                    counter.name.c_str(), FormatNs(counter.ns).c_str(),
                    static_cast<unsigned long long>(counter.count));
      out += line;
    }
  }
  return out;
}

std::string ChromeTraceJson(const TraceSession& session) {
  const std::vector<SpanRecord> spans = session.MergedSpans();
  const int64_t epoch = session.start_ns();
  std::string out;
  out.reserve(spans.size() * 128 + 256);
  out += "{\"traceEvents\":[";
  bool first = true;
  const int num_threads = session.num_threads();
  for (int t = 0; t < num_threads; ++t) {
    if (!first) out += ",";
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"name\":\"trace-thread-%d\"}}",
                  t, t);
    out += buf;
  }
  for (const SpanRecord& span : spans) {
    if (!first) out += ",";
    first = false;
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{",
        span.name, StageName(span.stage),
        static_cast<double>(span.start_ns - epoch) / 1e3,
        static_cast<double>(span.duration_ns()) / 1e3, span.thread_index);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"worker\":%d,\"group\":%d,\"slot\":%d,\"leaf\":%d,"
                  "\"bytes\":%llu,\"queue_us\":%.3f,\"cpu_us\":%.3f}}",
                  span.worker, span.group, span.slot, span.leaf,
                  static_cast<unsigned long long>(span.bytes),
                  static_cast<double>(span.queue_ns) / 1e3,
                  static_cast<double>(span.cpu_ns) / 1e3);
    out += buf;
  }
  out += "]}\n";
  return out;
}

const char* ProcessReport::InternName(const std::string& name) {
  for (const auto& owned : name_pool) {
    if (*owned == name) return owned->c_str();
  }
  name_pool.push_back(std::make_unique<std::string>(name));
  return name_pool.back()->c_str();
}

ProcessReport BuildProcessReport(const TraceSession& session,
                                 const RunInfo& info, const ScanStats& scan,
                                 int shard_begin, int shard_end) {
  ProcessReport process;
  process.shard_begin = shard_begin;
  process.shard_end = shard_end;
  process.session_start_ns = session.start_ns();
  process.session_stop_ns = session.stop_ns();
  process.report = BuildRunReport(session, info, scan);
  // Span names are string literals here (the in-process case); the wire
  // decoder reroutes them through name_pool instead.
  process.spans = session.MergedSpans();
  return process;
}

RunReport MergeProcessReports(const RunInfo& info, const ScanStats& merged_scan,
                              const std::vector<ProcessReport>& reports,
                              size_t max_stragglers) {
  RunReport merged;
  merged.info = info;
  merged.scan = merged_scan;

  std::vector<StageSummary> stages(kNumStages);
  for (int s = 0; s < kNumStages; ++s) {
    stages[static_cast<size_t>(s)].stage = static_cast<Stage>(s);
  }

  for (size_t p = 0; p < reports.size(); ++p) {
    const ProcessReport& process = reports[p];
    RunReport::ProcessSummary summary;
    summary.proc = static_cast<int>(p);
    summary.shard_begin = process.shard_begin;
    summary.shard_end = process.shard_end;
    if (!process.received) {
      summary.report_received = false;
      merged.partial = true;
      merged.warnings.push_back(
          "worker for shards [" + std::to_string(process.shard_begin) + "," +
          std::to_string(process.shard_end) +
          ") sent no run report; per-process attribution is incomplete");
      merged.processes.push_back(summary);
      continue;
    }
    const RunReport& r = process.report;
    summary.threads = r.info.threads;
    summary.events = r.info.events_processed;
    summary.wall_seconds = r.info.wall_seconds;
    summary.cpu_seconds = r.info.cpu_seconds;
    summary.storage_bytes = r.scan.storage_bytes;
    summary.decoded_bytes = r.scan.decoded_bytes;
    summary.cache_bytes_served = r.scan.cache_bytes_served;
    merged.processes.push_back(summary);

    // Traced durations sum across processes: the merged report answers
    // "how much traced work happened", not "how long did the wall run"
    // (that is info.wall_seconds, the coordinator's own measurement).
    merged.run_span_ns += r.run_span_ns;
    merged.total_span_ns += r.total_span_ns;
    merged.window_ns = std::max(merged.window_ns, r.window_ns);

    for (const StageSummary& stage : r.stages) {
      StageSummary& acc = stages[static_cast<size_t>(stage.stage)];
      acc.wall_ns += stage.wall_ns;
      acc.cpu_ns += stage.cpu_ns;
      acc.bytes += stage.bytes;
      acc.count += stage.count;
    }
    for (WorkerSummary worker : r.workers) {
      worker.proc = static_cast<int>(p);
      merged.workers.push_back(std::move(worker));
    }
    for (Straggler straggler : r.stragglers) {
      straggler.proc = static_cast<int>(p);
      merged.stragglers.push_back(straggler);
    }
    for (const CounterSummary& counter : r.counters) {
      bool found = false;
      for (CounterSummary& acc : merged.counters) {
        if (acc.stage == counter.stage && acc.name == counter.name) {
          acc.ns += counter.ns;
          acc.count += counter.count;
          acc.bytes += counter.bytes;
          found = true;
          break;
        }
      }
      if (!found) merged.counters.push_back(counter);
    }
    metrics::MergeMetricSamples(&merged.metrics, r.metrics);
  }

  for (const StageSummary& stage : stages) {
    if (stage.count > 0) merged.stages.push_back(stage);
  }
  std::sort(merged.counters.begin(), merged.counters.end(),
            [](const CounterSummary& a, const CounterSummary& b) {
              if (a.stage != b.stage) return a.stage < b.stage;
              return a.name < b.name;
            });
  std::sort(merged.stragglers.begin(), merged.stragglers.end(),
            [](const Straggler& a, const Straggler& b) {
              if (a.wall_ns != b.wall_ns) return a.wall_ns > b.wall_ns;
              if (a.proc != b.proc) return a.proc < b.proc;
              return a.group < b.group;
            });
  if (merged.stragglers.size() > max_stragglers) {
    merged.stragglers.resize(max_stragglers);
  }

  // The coordinator's own registry (scatter frame/CRC/spawn counters)
  // joins the per-worker snapshots.
  metrics::MergeMetricSamples(&merged.metrics, metrics::SnapshotMetrics());

  merged.cost_inputs.cpu_seconds = info.cpu_seconds;
  merged.cost_inputs.storage_bytes = merged_scan.storage_bytes;
  merged.cost_inputs.logical_bytes_bq = merged_scan.logical_bytes_bq;
  int64_t row_groups = 0;
  for (const StageSummary& stage : merged.stages) {
    if (stage.stage == Stage::kRowGroup) {
      row_groups = static_cast<int64_t>(stage.count);
    }
  }
  merged.cost_inputs.row_groups =
      static_cast<int>(std::max<int64_t>(row_groups, 1));
  merged.cost_inputs.events = info.events_processed;
  return merged;
}

std::string MultiProcessChromeTraceJson(
    const std::vector<ProcessReport>& reports) {
  // One shared epoch: the earliest session start across processes. The
  // steady clock is machine-wide, so per-process offsets against it
  // reproduce the real concurrency picture.
  int64_t epoch = 0;
  bool have_epoch = false;
  size_t total_spans = 0;
  for (const ProcessReport& process : reports) {
    if (!process.received) continue;
    if (!have_epoch || process.session_start_ns < epoch) {
      epoch = process.session_start_ns;
      have_epoch = true;
    }
    total_spans += process.spans.size();
  }
  std::string out;
  out.reserve(total_spans * 128 + 512);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (size_t p = 0; p < reports.size(); ++p) {
    const ProcessReport& process = reports[p];
    if (!process.received) continue;
    const int pid = static_cast<int>(p) + 1;
    char buf[256];
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,"
                  "\"args\":{\"name\":\"worker p%zu shards [%d,%d)\"}}",
                  pid, p, process.shard_begin, process.shard_end);
    out += buf;
    int num_threads = 0;
    for (const SpanRecord& span : process.spans) {
      num_threads = std::max(num_threads,
                             static_cast<int>(span.thread_index) + 1);
    }
    for (int t = 0; t < num_threads; ++t) {
      out += ",";
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,"
                    "\"tid\":%d,\"args\":{\"name\":\"p%zu-thread-%d\"}}",
                    pid, t, p, t);
      out += buf;
    }
    for (const SpanRecord& span : process.spans) {
      out += ",";
      std::snprintf(
          buf, sizeof(buf),
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
          "\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{",
          span.name, StageName(span.stage),
          static_cast<double>(span.start_ns - epoch) / 1e3,
          static_cast<double>(span.duration_ns()) / 1e3, pid,
          span.thread_index);
      out += buf;
      std::snprintf(buf, sizeof(buf),
                    "\"worker\":%d,\"group\":%d,\"slot\":%d,\"leaf\":%d,"
                    "\"bytes\":%llu,\"queue_us\":%.3f,\"cpu_us\":%.3f}}",
                    span.worker, span.group, span.slot, span.leaf,
                    static_cast<unsigned long long>(span.bytes),
                    static_cast<double>(span.queue_ns) / 1e3,
                    static_cast<double>(span.cpu_ns) / 1e3);
      out += buf;
    }
  }
  out += "]}\n";
  return out;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return Status::IoError("short write: " + path);
  }
  return Status::OK();
}

}  // namespace hepq::obs
