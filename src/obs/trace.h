#ifndef HEPQUERY_OBS_TRACE_H_
#define HEPQUERY_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace hepq::obs {

// Lightweight always-compiled tracing layer. A TraceSession, while
// started, collects timed spans and aggregated counters from every thread
// that executes instrumented code. Instrumentation sites construct a
// ScopedSpan unconditionally; when no session is active the constructor is
// a single relaxed atomic load and the destructor a null check, so the
// layer costs near-nothing on production runs. When a session is active,
// each span is recorded into a per-thread buffer (registered once per
// thread per session, with capacity reserved up front) so the hot path
// performs zero heap allocations after that per-thread warmup.
//
// Exactly one session can be active at a time, process-wide. Sessions
// must be stopped (all instrumented work joined) before their buffers are
// read; the parallel runtime's job-completion handshake provides the
// happens-before edge between worker span writes and the reader.

/// Coarse stage taxonomy every span and counter is tagged with. Stages —
/// not span names — are the unit of the per-stage report table, and map
/// onto the paper's cost accounting: decode/prune/late-mat are the
/// storage-side bytes (Figure 4b), expr/event-loop the compute side
/// (Figure 4a), row-group/merge the scheduling overhead.
enum class Stage : uint8_t {
  kRun = 0,     ///< root span of one query execution
  kOpen,        ///< opening readers / files
  kPlan,        ///< planning, binding, expression compilation
  kRowGroup,    ///< one scheduled row-group task (scheduling envelope)
  kDecode,      ///< storage decode: read + checksum + decompress + decode
  kPagePrune,   ///< zone-map evaluation (group- and page-level)
  kLateMat,     ///< late-materialization predicate pre-pass
  kExpr,        ///< expression / kernel evaluation
  kEventLoop,   ///< per-event interpretation (rdf lambdas, unnest, FLWOR)
  kMerge,       ///< merging per-group partials into the final result
  kVexprKernel, ///< fused simd-tier batch kernels (engine/vexpr_fuse)
  kCacheLookup, ///< footer/chunk/result cache probes (src/cache)
  kOther,
};

inline constexpr int kNumStages = 13;

/// Stable lowercase name of a stage (e.g. "decode", "row_group").
const char* StageName(Stage stage);

/// One finished span. `name` must point at a string literal (spans never
/// own memory). Records live in per-thread buffers in *end* order; `seq`
/// is the position in that order and, with `thread_index`, makes merge
/// ordering deterministic even when two spans share a start timestamp.
struct SpanRecord {
  const char* name = "";
  int64_t start_ns = 0;  ///< steady_clock, same epoch as TraceSession
  int64_t end_ns = 0;
  int64_t cpu_ns = 0;    ///< thread CPU time consumed inside the span
  uint64_t bytes = 0;    ///< stage-defined payload (decode: decoded bytes)
  int64_t queue_ns = 0;  ///< scheduling wait before the span (row groups)
  int32_t worker = -1;   ///< runtime worker id, when scheduled
  int32_t group = -1;    ///< row-group index, when applicable
  int32_t slot = -1;     ///< position in the LPT-sorted task order
  int32_t leaf = -1;     ///< leaf column index, for decode spans
  uint32_t seq = 0;      ///< per-thread end-order sequence number
  uint16_t thread_index = 0;  ///< dense per-session thread id
  uint8_t depth = 0;     ///< nesting depth at start (0 = top level)
  Stage stage = Stage::kOther;

  int64_t duration_ns() const { return end_ns - start_ns; }
};

/// One aggregated counter: cheap accumulation for sites where a span per
/// occurrence would be too fine-grained (e.g. per-row FLWOR clauses).
/// Counters with the same (name, stage) merge by summing.
struct CounterRecord {
  const char* name = "";
  Stage stage = Stage::kOther;
  int64_t ns = 0;
  uint64_t count = 0;
  uint64_t bytes = 0;
};

struct TraceOptions {
  /// Span capacity reserved per thread at registration. Runs recording
  /// more spans per thread than this reallocate (correct, but no longer
  /// allocation-free).
  size_t reserve_spans_per_thread = 1 << 14;
  /// Capture per-span thread CPU time (one clock_gettime pair per span).
  bool capture_cpu_time = true;
};

/// Monotonic (steady_clock) timestamp in nanoseconds.
int64_t NowNs();

class TraceSession {
 public:
  explicit TraceSession(TraceOptions options = {});
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Installs this session as the process-wide active one. Exactly one
  /// session may be active at a time (asserted).
  void Start();

  /// Uninstalls the session. Instrumented work must have been joined by
  /// the caller before reading the accessors below. Idempotent.
  void Stop();

  bool active() const;
  int64_t start_ns() const { return start_ns_; }
  int64_t stop_ns() const { return stop_ns_; }

  /// All spans from all threads, sorted by (start_ns, thread_index, seq)
  /// — a deterministic order for any interleaving that produced the same
  /// timestamps. Call after Stop().
  std::vector<SpanRecord> MergedSpans() const;

  /// All counters merged by (name, stage), sorted by stage then name.
  std::vector<CounterRecord> MergedCounters() const;

  /// Number of threads that recorded at least one span or counter.
  int num_threads() const;

  // ---- internal API used by ScopedSpan / CountStage ----

  struct ThreadBuf {
    std::vector<SpanRecord> spans;       // in end order
    std::vector<CounterRecord> counters; // few entries, linear-searched
    uint32_t next_seq = 0;
    uint16_t index = 0;
  };

  /// The calling thread's buffer, registering it on first use (the only
  /// allocating operation; subsequent calls are a TLS cache hit).
  ThreadBuf* BufForThread();

  /// Currently active session, or nullptr. A single acquire load.
  static TraceSession* Active();

  bool capture_cpu_time() const { return options_.capture_cpu_time; }

 private:
  TraceOptions options_;
  uint64_t id_ = 0;  ///< process-unique, never reused; validates TLS cache
  int64_t start_ns_ = 0;
  int64_t stop_ns_ = 0;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
};

/// True when a trace session is active. One relaxed atomic load; sites
/// guarding non-span bookkeeping (e.g. queue-wait arrays) test this once.
bool TracingActive();

/// Adds to the calling thread's (name, stage) counter. No-op when no
/// session is active. `name` must be a string literal.
void CountStage(const char* name, Stage stage, int64_t ns, uint64_t count = 1,
                uint64_t bytes = 0);

/// RAII span. Construct at the top of the region to measure; annotate via
/// the setters (no-ops when inactive); the destructor records the span.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, Stage stage) {
    TraceSession* session = TraceSession::Active();
    if (session == nullptr) return;
    Init(session, name, stage);
  }
  ~ScopedSpan() {
    if (session_ != nullptr) Finish();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return session_ != nullptr; }

  /// Ends the span now instead of at scope exit (for regions that do not
  /// coincide with a C++ scope). Idempotent.
  void End() {
    if (session_ != nullptr) {
      Finish();
      session_ = nullptr;
    }
  }

  void set_bytes(uint64_t bytes) { bytes_ = bytes; }
  void add_bytes(uint64_t bytes) { bytes_ += bytes; }
  void set_queue_ns(int64_t ns) { queue_ns_ = ns; }
  void set_worker(int worker) { worker_ = worker; }
  void set_group(int group) { group_ = group; }
  void set_slot(int slot) { slot_ = slot; }
  void set_leaf(int leaf) { leaf_ = leaf; }

  int64_t start_ns() const { return start_ns_; }

 private:
  void Init(TraceSession* session, const char* name, Stage stage);
  void Finish();

  TraceSession* session_ = nullptr;
  const char* name_ = "";
  int64_t start_ns_ = 0;
  int64_t start_cpu_ns_ = 0;
  uint64_t bytes_ = 0;
  int64_t queue_ns_ = 0;
  int32_t worker_ = -1;
  int32_t group_ = -1;
  int32_t slot_ = -1;
  int32_t leaf_ = -1;
  uint8_t depth_ = 0;
  Stage stage_ = Stage::kOther;
};

}  // namespace hepq::obs

#endif  // HEPQUERY_OBS_TRACE_H_
