#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

namespace hepq::obs::metrics {

namespace internal {

std::atomic<bool> g_enabled{false};

unsigned StripeIndexForThread() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned index =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterStripes;
  return index;
}

}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
}

int Histogram::BucketFor(int64_t ns) {
  if (ns <= HistogramBucketBoundNs(0)) return 0;
  // bound[b] = 1024 << b, so the bucket is the highest set bit of
  // ceil(ns / 1024) - 1 shifted past the first bound.
  const uint64_t v = static_cast<uint64_t>(ns - 1) >> 10;
  const int bucket = 64 - __builtin_clzll(v);
  return bucket < kHistogramBuckets ? bucket : kHistogramBuckets;
}

void Histogram::Observe(int64_t ns) {
  if (!MetricsEnabled()) return;
  if (ns < 0) ns = 0;
  buckets_[BucketFor(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

namespace {

/// All registered metrics. Entries are never removed, so references
/// handed out by the Get* functions stay valid for the process lifetime.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Counter>> counters;
  std::vector<std::unique_ptr<Gauge>> gauges;
  std::vector<std::unique_ptr<Histogram>> histograms;

  static Registry& Instance() {
    static Registry* registry = new Registry();  // never destroyed
    return *registry;
  }
};

template <typename T>
T& FindOrCreate(std::vector<std::unique_ptr<T>>* entries, const char* name) {
  Registry& registry = Registry::Instance();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& entry : *entries) {
    if (std::strcmp(entry->name(), name) == 0) return *entry;
  }
  entries->push_back(std::make_unique<T>(name));
  return *entries->back();
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Metric name with any inline label set stripped — what Prometheus TYPE
/// lines name ("hepq_runs_total{engine=\"rdf\"}" -> "hepq_runs_total").
std::string_view BaseName(const std::string& name) {
  const size_t brace = name.find('{');
  return std::string_view(name).substr(
      0, brace == std::string::npos ? name.size() : brace);
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "counter";
}

}  // namespace

Counter& GetCounter(const char* name) {
  return FindOrCreate(&Registry::Instance().counters, name);
}

Gauge& GetGauge(const char* name) {
  return FindOrCreate(&Registry::Instance().gauges, name);
}

Histogram& GetHistogram(const char* name) {
  return FindOrCreate(&Registry::Instance().histograms, name);
}

std::vector<MetricSample> SnapshotMetrics() {
  Registry& registry = Registry::Instance();
  std::vector<MetricSample> samples;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    samples.reserve(registry.counters.size() + registry.gauges.size() +
                    registry.histograms.size());
    for (const auto& counter : registry.counters) {
      MetricSample sample;
      sample.name = counter->name();
      sample.kind = MetricKind::kCounter;
      sample.value = static_cast<int64_t>(counter->Value());
      samples.push_back(std::move(sample));
    }
    for (const auto& gauge : registry.gauges) {
      MetricSample sample;
      sample.name = gauge->name();
      sample.kind = MetricKind::kGauge;
      sample.value = gauge->Value();
      samples.push_back(std::move(sample));
    }
    for (const auto& histogram : registry.histograms) {
      MetricSample sample;
      sample.name = histogram->name();
      sample.kind = MetricKind::kHistogram;
      sample.buckets.resize(kHistogramBuckets + 1);
      for (int b = 0; b <= kHistogramBuckets; ++b) {
        sample.buckets[static_cast<size_t>(b)] = histogram->BucketCount(b);
      }
      sample.observations = histogram->TotalCount();
      sample.sum_ns = histogram->SumNs();
      samples.push_back(std::move(sample));
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return samples;
}

void MergeMetricSamples(std::vector<MetricSample>* into,
                        const std::vector<MetricSample>& from) {
  for (const MetricSample& sample : from) {
    auto it = std::lower_bound(
        into->begin(), into->end(), sample,
        [](const MetricSample& a, const MetricSample& b) {
          return a.name < b.name;
        });
    if (it == into->end() || it->name != sample.name) {
      into->insert(it, sample);
      continue;
    }
    if (it->kind != sample.kind) continue;  // name collision across kinds
    it->value += sample.value;
    it->observations += sample.observations;
    it->sum_ns += sample.sum_ns;
    if (it->buckets.size() < sample.buckets.size()) {
      it->buckets.resize(sample.buckets.size(), 0);
    }
    for (size_t b = 0; b < sample.buckets.size(); ++b) {
      it->buckets[b] += sample.buckets[b];
    }
  }
}

std::string MetricsToPrometheus(const std::vector<MetricSample>& samples) {
  std::string out;
  out.reserve(samples.size() * 64 + 64);
  std::string last_base;
  for (const MetricSample& sample : samples) {
    const std::string_view base = BaseName(sample.name);
    if (base != last_base) {
      out += "# TYPE ";
      out += base;
      out.push_back(' ');
      out += KindName(sample.kind);
      out.push_back('\n');
      last_base.assign(base);
    }
    if (sample.kind == MetricKind::kHistogram) {
      // Bucket lines are cumulative, per the exposition format; the
      // stored per-bucket counts are exclusive.
      uint64_t cumulative = 0;
      for (size_t b = 0; b < sample.buckets.size(); ++b) {
        cumulative += sample.buckets[b];
        out += sample.name;
        out += "_bucket{le=\"";
        if (b + 1 == sample.buckets.size()) {
          out += "+Inf";
        } else {
          out += std::to_string(HistogramBucketBoundNs(static_cast<int>(b)));
        }
        out += "\"} ";
        out += std::to_string(cumulative);
        out.push_back('\n');
      }
      out += sample.name;
      out += "_sum ";
      out += std::to_string(sample.sum_ns);
      out.push_back('\n');
      out += sample.name;
      out += "_count ";
      out += std::to_string(sample.observations);
      out.push_back('\n');
    } else {
      out += sample.name;
      out.push_back(' ');
      out += std::to_string(sample.value);
      out.push_back('\n');
    }
  }
  return out;
}

std::string MetricSamplesJsonArray(const std::vector<MetricSample>& samples) {
  std::string out;
  out.reserve(samples.size() * 64 + 2);
  out.push_back('[');
  bool first = true;
  for (const MetricSample& sample : samples) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, sample.name);
    out += ",\"kind\":\"";
    out += KindName(sample.kind);
    out += "\"";
    if (sample.kind == MetricKind::kHistogram) {
      out += ",\"count\":";
      out += std::to_string(sample.observations);
      out += ",\"sum_ns\":";
      out += std::to_string(sample.sum_ns);
      out += ",\"buckets\":[";
      for (size_t b = 0; b < sample.buckets.size(); ++b) {
        if (b > 0) out.push_back(',');
        out += std::to_string(sample.buckets[b]);
      }
      out.push_back(']');
    } else {
      out += ",\"value\":";
      out += std::to_string(sample.value);
    }
    out.push_back('}');
  }
  out.push_back(']');
  return out;
}

std::string MetricsToJson(const std::vector<MetricSample>& samples) {
  std::string out = "{\"bucket_bounds_ns\":[";
  for (int b = 0; b < kHistogramBuckets; ++b) {
    if (b > 0) out.push_back(',');
    out += std::to_string(HistogramBucketBoundNs(b));
  }
  out += "],\"metrics\":";
  out += MetricSamplesJsonArray(samples);
  out += "}\n";
  return out;
}

void ResetMetricsForTest() {
  Registry& registry = Registry::Instance();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& counter : registry.counters) counter->Reset();
  for (const auto& gauge : registry.gauges) gauge->Reset();
  for (const auto& histogram : registry.histograms) histogram->Reset();
}

}  // namespace hepq::obs::metrics
