#include "obs/trace.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <ctime>
#include <string_view>

namespace hepq::obs {

namespace {

// The active session. Instrumentation sites do one load of this pointer;
// everything else happens only when it is non-null.
std::atomic<TraceSession*> g_active{nullptr};

// Monotonic session ids validate the thread-local buffer cache: a cached
// pointer is only used while its session id matches the active session's,
// so buffers of destroyed sessions can never be dereferenced.
std::atomic<uint64_t> g_next_session_id{1};

struct TlsCache {
  uint64_t session_id = 0;
  TraceSession::ThreadBuf* buf = nullptr;
};
thread_local TlsCache t_cache;

// Current nesting depth on this thread (only maintained while a session
// is active at span construction).
thread_local int t_depth = 0;

int64_t ThreadCpuNs() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
#else
  return 0;
#endif
}

}  // namespace

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kRun: return "run";
    case Stage::kOpen: return "open";
    case Stage::kPlan: return "plan";
    case Stage::kRowGroup: return "row_group";
    case Stage::kDecode: return "decode";
    case Stage::kPagePrune: return "page_prune";
    case Stage::kLateMat: return "late_mat";
    case Stage::kExpr: return "expr";
    case Stage::kEventLoop: return "event_loop";
    case Stage::kMerge: return "merge";
    case Stage::kVexprKernel: return "vexpr_kernel";
    case Stage::kCacheLookup: return "cache_lookup";
    case Stage::kOther: return "other";
  }
  return "other";
}

TraceSession::TraceSession(TraceOptions options)
    : options_(options),
      id_(g_next_session_id.fetch_add(1, std::memory_order_relaxed)) {}

TraceSession::~TraceSession() { Stop(); }

void TraceSession::Start() {
  start_ns_ = NowNs();
  TraceSession* expected = nullptr;
  const bool installed = g_active.compare_exchange_strong(
      expected, this, std::memory_order_release, std::memory_order_relaxed);
  (void)installed;
  assert(installed && "another TraceSession is already active");
}

void TraceSession::Stop() {
  TraceSession* expected = this;
  if (g_active.compare_exchange_strong(expected, nullptr,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
    stop_ns_ = NowNs();
  }
}

bool TraceSession::active() const {
  return g_active.load(std::memory_order_acquire) == this;
}

TraceSession* TraceSession::Active() {
  return g_active.load(std::memory_order_acquire);
}

TraceSession::ThreadBuf* TraceSession::BufForThread() {
  if (t_cache.session_id == id_) return t_cache.buf;
  std::lock_guard<std::mutex> lock(mu_);
  auto buf = std::make_unique<ThreadBuf>();
  buf->index = static_cast<uint16_t>(bufs_.size());
  buf->spans.reserve(options_.reserve_spans_per_thread);
  buf->counters.reserve(32);
  ThreadBuf* raw = buf.get();
  bufs_.push_back(std::move(buf));
  t_cache.session_id = id_;
  t_cache.buf = raw;
  return raw;
}

std::vector<SpanRecord> TraceSession::MergedSpans() const {
  std::vector<SpanRecord> merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (const auto& buf : bufs_) total += buf->spans.size();
    merged.reserve(total);
    for (const auto& buf : bufs_) {
      merged.insert(merged.end(), buf->spans.begin(), buf->spans.end());
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.thread_index != b.thread_index) {
                return a.thread_index < b.thread_index;
              }
              return a.seq < b.seq;
            });
  return merged;
}

std::vector<CounterRecord> TraceSession::MergedCounters() const {
  std::vector<CounterRecord> merged;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : bufs_) {
    for (const CounterRecord& counter : buf->counters) {
      auto it = std::find_if(merged.begin(), merged.end(),
                             [&](const CounterRecord& m) {
                               return m.stage == counter.stage &&
                                      std::string_view(m.name) ==
                                          std::string_view(counter.name);
                             });
      if (it == merged.end()) {
        merged.push_back(counter);
      } else {
        it->ns += counter.ns;
        it->count += counter.count;
        it->bytes += counter.bytes;
      }
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const CounterRecord& a, const CounterRecord& b) {
              if (a.stage != b.stage) return a.stage < b.stage;
              return std::string_view(a.name) < std::string_view(b.name);
            });
  return merged;
}

int TraceSession::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(bufs_.size());
}

bool TracingActive() {
  return g_active.load(std::memory_order_acquire) != nullptr;
}

void CountStage(const char* name, Stage stage, int64_t ns, uint64_t count,
                uint64_t bytes) {
  TraceSession* session = TraceSession::Active();
  if (session == nullptr) return;
  TraceSession::ThreadBuf* buf = session->BufForThread();
  for (CounterRecord& counter : buf->counters) {
    if (counter.stage == stage &&
        std::string_view(counter.name) == std::string_view(name)) {
      counter.ns += ns;
      counter.count += count;
      counter.bytes += bytes;
      return;
    }
  }
  buf->counters.push_back(CounterRecord{name, stage, ns, count, bytes});
}

void ScopedSpan::Init(TraceSession* session, const char* name, Stage stage) {
  session_ = session;
  name_ = name;
  stage_ = stage;
  depth_ = static_cast<uint8_t>(std::min(t_depth, 255));
  ++t_depth;
  if (session->capture_cpu_time()) start_cpu_ns_ = ThreadCpuNs();
  start_ns_ = NowNs();  // last: exclude our own setup from the span
}

void ScopedSpan::Finish() {
  const int64_t end_ns = NowNs();
  const int64_t cpu_ns =
      session_->capture_cpu_time() ? ThreadCpuNs() - start_cpu_ns_ : 0;
  --t_depth;
  TraceSession::ThreadBuf* buf = session_->BufForThread();
  SpanRecord record;
  record.name = name_;
  record.start_ns = start_ns_;
  record.end_ns = end_ns;
  record.cpu_ns = cpu_ns;
  record.bytes = bytes_;
  record.queue_ns = queue_ns_;
  record.worker = worker_;
  record.group = group_;
  record.slot = slot_;
  record.leaf = leaf_;
  record.seq = buf->next_seq++;
  record.thread_index = buf->index;
  record.depth = depth_;
  record.stage = stage_;
  buf->spans.push_back(record);
}

}  // namespace hepq::obs
