#ifndef HEPQUERY_OBS_REPORT_H_
#define HEPQUERY_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/simulator.h"
#include "core/status.h"
#include "fileio/reader.h"
#include "obs/trace.h"

namespace hepq::obs {

// Machine- and human-readable run reports built from a stopped
// TraceSession plus the engine's own end-of-run totals. The report's
// headline numbers (events, CPU ns, decoded bytes, storage bytes) are
// copied from the engine result / ScanStats — the same totals every bench
// prints — so they reconcile exactly; the trace contributes the per-stage,
// per-worker, and per-leaf attribution underneath them.

/// Identity and end-of-run totals of the traced query execution, supplied
/// by the caller from the frontend's result struct.
struct RunInfo {
  std::string query;   ///< e.g. "Q5"
  std::string engine;  ///< e.g. "bigquery-shape"
  int threads = 1;
  int64_t events_processed = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
};

/// Exclusive (self) time of one stage, summed over all spans of that
/// stage on all threads: a span's time minus the time of spans nested
/// inside it, so the stage rows partition the traced time and sum to the
/// total span coverage.
struct StageSummary {
  Stage stage = Stage::kOther;
  int64_t wall_ns = 0;  ///< exclusive wall time
  int64_t cpu_ns = 0;   ///< exclusive thread-CPU time
  uint64_t bytes = 0;   ///< sum of span byte payloads (inclusive)
  uint64_t count = 0;   ///< number of spans
};

/// Busy/idle accounting of one runtime worker over the run window, from
/// the row-group spans (the scheduling envelope) stamped with its id.
struct WorkerSummary {
  int worker = 0;  ///< runtime worker id (same numbering as stragglers)
  int64_t busy_ns = 0;        ///< sum of row-group span durations
  int64_t idle_ns = 0;        ///< window minus busy
  double busy_fraction = 0.0; ///< busy / window
  int64_t row_groups = 0;
  int64_t max_queue_ns = 0;   ///< worst scheduling wait before a group
  int max_queue_group = -1;
  /// Timeline of executed row groups in start order (capped; see
  /// timeline_truncated).
  struct TimelineEntry {
    int group = -1;
    int slot = -1;
    int64_t start_ns = 0;  ///< relative to the run window start
    int64_t dur_ns = 0;
    int64_t queue_ns = 0;
    uint64_t bytes = 0;
  };
  std::vector<TimelineEntry> timeline;
  bool timeline_truncated = false;
};

/// One of the slowest row-group spans of the run — the stragglers the
/// LPT schedule is supposed to keep off the critical path.
struct Straggler {
  int group = -1;
  int worker = -1;
  int slot = -1;
  int64_t wall_ns = 0;
  uint64_t bytes = 0;
};

/// An aggregated counter with owned storage (CounterRecord points at
/// string literals; the report owns its strings).
struct CounterSummary {
  std::string name;
  Stage stage = Stage::kOther;
  int64_t ns = 0;
  uint64_t count = 0;
  uint64_t bytes = 0;
};

struct RunReport {
  /// v2: added the `expr_vm` object (vops_per_event, fused_coverage) —
  /// the expression-VM dispatch-overhead quantities derived from the
  /// vexpr_kernel stage counters.
  /// v3: added the `cache` object (footer/chunk hit+miss counters,
  /// cache_bytes_served, consumed_bytes) and `cache_bytes_served` on
  /// per_leaf entries. `consumed_bytes = decoded_bytes +
  /// cache_bytes_served` reconciles by construction: every byte a query
  /// consumes was either decoded from storage this run or served from
  /// the process-wide chunk cache.
  static constexpr int kSchemaVersion = 3;

  RunInfo info;
  ScanStats scan;  ///< bit-copied from the engine result

  int64_t run_span_ns = 0;    ///< duration of the root `run` span (0 if none)
  int64_t total_span_ns = 0;  ///< sum of top-level span durations
  int64_t window_ns = 0;      ///< session start→stop window

  std::vector<StageSummary> stages;      ///< ordered by Stage enum
  std::vector<WorkerSummary> workers;    ///< ordered by thread index
  std::vector<Straggler> stragglers;     ///< slowest row groups, descending
  std::vector<CounterSummary> counters;  ///< stage/name-merged counters

  /// Cost-model inputs, ready to feed cloud::Simulator — the bridge from
  /// a profiled run to the paper's price/performance projections.
  cloud::MeasuredQuery cost_inputs;

  // Figure 4 quantities (a: CPU per event, b: bytes per event, c:
  // per-core throughput), derived from info + scan.
  double cpu_ns_per_event() const;
  double storage_bytes_per_event() const;
  double decoded_bytes_per_event() const;
  double events_per_sec_per_core() const;
  /// CPU seconds as integer nanoseconds (the reconciliation currency).
  int64_t cpu_ns() const;
  int64_t wall_ns() const;
  /// Fraction of the root run span covered by top-level child spans.
  double span_coverage() const;
  /// Expression-VM dispatch overhead, from the vexpr_kernel stage
  /// counters: source VOps retired per processed event, and the fraction
  /// of them absorbed into fused superinstructions (0 when untraced, on
  /// the interpret tier, or when no expression kernels ran).
  double vops_per_event() const;
  double vexpr_fused_coverage() const;
};

/// Builds a report from a stopped session. `max_timeline_entries` caps
/// each worker's timeline (0 = unlimited); `max_stragglers` caps the
/// straggler list.
RunReport BuildRunReport(const TraceSession& session, const RunInfo& info,
                         const ScanStats& scan,
                         size_t max_timeline_entries = 512,
                         size_t max_stragglers = 5);

/// The RunReport as a JSON document (schema_version 2; see DESIGN.md).
std::string ReportToJson(const RunReport& report);

/// Human-readable per-stage/per-worker/per-leaf table for `--profile`.
std::string ReportToTable(const RunReport& report);

/// All spans of a stopped session in Chrome `trace_event` JSON, loadable
/// in chrome://tracing and Perfetto. Timestamps are microseconds relative
/// to the session start; tid is the dense per-session thread index.
std::string ChromeTraceJson(const TraceSession& session);

/// Writes `content` to `path` (overwrites).
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace hepq::obs

#endif  // HEPQUERY_OBS_REPORT_H_
