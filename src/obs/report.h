#ifndef HEPQUERY_OBS_REPORT_H_
#define HEPQUERY_OBS_REPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cloud/simulator.h"
#include "core/status.h"
#include "fileio/reader.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hepq::obs {

// Machine- and human-readable run reports built from a stopped
// TraceSession plus the engine's own end-of-run totals. The report's
// headline numbers (events, CPU ns, decoded bytes, storage bytes) are
// copied from the engine result / ScanStats — the same totals every bench
// prints — so they reconcile exactly; the trace contributes the per-stage,
// per-worker, and per-leaf attribution underneath them.

/// Identity and end-of-run totals of the traced query execution, supplied
/// by the caller from the frontend's result struct.
struct RunInfo {
  std::string query;   ///< e.g. "Q5"
  std::string engine;  ///< e.g. "bigquery-shape"
  int threads = 1;
  int64_t events_processed = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
};

/// Exclusive (self) time of one stage, summed over all spans of that
/// stage on all threads: a span's time minus the time of spans nested
/// inside it, so the stage rows partition the traced time and sum to the
/// total span coverage.
struct StageSummary {
  Stage stage = Stage::kOther;
  int64_t wall_ns = 0;  ///< exclusive wall time
  int64_t cpu_ns = 0;   ///< exclusive thread-CPU time
  uint64_t bytes = 0;   ///< sum of span byte payloads (inclusive)
  uint64_t count = 0;   ///< number of spans
};

/// Busy/idle accounting of one runtime worker over the run window, from
/// the row-group spans (the scheduling envelope) stamped with its id.
struct WorkerSummary {
  int worker = 0;  ///< runtime worker id (same numbering as stragglers)
  /// Owning process index in a merged multi-process report (shard order),
  /// 0 for single-process runs. The stable cross-process worker identity
  /// is the pair `proc:worker`.
  int proc = 0;
  int64_t busy_ns = 0;        ///< sum of row-group span durations
  int64_t idle_ns = 0;        ///< window minus busy
  double busy_fraction = 0.0; ///< busy / window
  int64_t row_groups = 0;
  int64_t max_queue_ns = 0;   ///< worst scheduling wait before a group
  int max_queue_group = -1;
  /// Timeline of executed row groups in start order (capped; see
  /// timeline_truncated).
  struct TimelineEntry {
    int group = -1;
    int slot = -1;
    int64_t start_ns = 0;  ///< relative to the run window start
    int64_t dur_ns = 0;
    int64_t queue_ns = 0;
    uint64_t bytes = 0;
  };
  std::vector<TimelineEntry> timeline;
  bool timeline_truncated = false;
};

/// One of the slowest row-group spans of the run — the stragglers the
/// LPT schedule is supposed to keep off the critical path.
struct Straggler {
  int group = -1;
  int worker = -1;
  int proc = 0;  ///< owning process in a merged report (see WorkerSummary)
  int slot = -1;
  int64_t wall_ns = 0;
  uint64_t bytes = 0;
};

/// An aggregated counter with owned storage (CounterRecord points at
/// string literals; the report owns its strings).
struct CounterSummary {
  std::string name;
  Stage stage = Stage::kOther;
  int64_t ns = 0;
  uint64_t count = 0;
  uint64_t bytes = 0;
};

struct RunReport {
  /// v2: added the `expr_vm` object (vops_per_event, fused_coverage) —
  /// the expression-VM dispatch-overhead quantities derived from the
  /// vexpr_kernel stage counters.
  /// v3: added the `cache` object (footer/chunk hit+miss counters,
  /// cache_bytes_served, consumed_bytes) and `cache_bytes_served` on
  /// per_leaf entries. `consumed_bytes = decoded_bytes +
  /// cache_bytes_served` reconciles by construction: every byte a query
  /// consumes was either decoded from storage this run or served from
  /// the process-wide chunk cache.
  /// v4: multi-process + metrics. Added `processes[]` (one entry per
  /// scatter worker, shard order; empty for in-process runs), `partial` +
  /// `warnings` (a worker whose kReport frame was lost degrades the
  /// report, never the result), `proc` on workers/stragglers, and
  /// `metrics` (the process-wide metrics registry snapshot). The
  /// per-process decoded-byte and cache totals sum bit-exactly to the
  /// top-level `scan` object: both sides add the same per-shard integer
  /// counters, only in different orders.
  static constexpr int kSchemaVersion = 4;

  RunInfo info;
  ScanStats scan;  ///< bit-copied from the engine result

  int64_t run_span_ns = 0;    ///< duration of the root `run` span (0 if none)
  int64_t total_span_ns = 0;  ///< sum of top-level span durations
  int64_t window_ns = 0;      ///< session start→stop window

  std::vector<StageSummary> stages;      ///< ordered by Stage enum
  std::vector<WorkerSummary> workers;    ///< ordered by (proc, worker id)
  std::vector<Straggler> stragglers;     ///< slowest row groups, descending
  std::vector<CounterSummary> counters;  ///< stage/name-merged counters

  /// One scatter worker process's contribution to a merged report, in
  /// shard order. Empty for single-process runs.
  struct ProcessSummary {
    int proc = 0;         ///< index in shard order (== merge order)
    int shard_begin = 0;  ///< global shard range [begin, end)
    int shard_end = 0;
    int threads = 1;
    int64_t events = 0;
    double wall_seconds = 0.0;
    double cpu_seconds = 0.0;
    uint64_t storage_bytes = 0;
    uint64_t decoded_bytes = 0;
    uint64_t cache_bytes_served = 0;
    /// False when the worker's kReport frame never arrived (its shard
    /// results did — the report degrades, the histograms do not).
    bool report_received = true;
  };
  std::vector<ProcessSummary> processes;

  /// True when at least one worker's report is missing; `warnings` then
  /// carries one deterministic line per missing worker (keyed by shard
  /// range, never by pid — identical for any worker count).
  bool partial = false;
  std::vector<std::string> warnings;

  /// Snapshot of the process-wide metrics registry at report-build time
  /// (merged across processes in a multi-process report).
  std::vector<metrics::MetricSample> metrics;

  /// Cost-model inputs, ready to feed cloud::Simulator — the bridge from
  /// a profiled run to the paper's price/performance projections.
  cloud::MeasuredQuery cost_inputs;

  // Figure 4 quantities (a: CPU per event, b: bytes per event, c:
  // per-core throughput), derived from info + scan.
  double cpu_ns_per_event() const;
  double storage_bytes_per_event() const;
  double decoded_bytes_per_event() const;
  double events_per_sec_per_core() const;
  /// CPU seconds as integer nanoseconds (the reconciliation currency).
  int64_t cpu_ns() const;
  int64_t wall_ns() const;
  /// Fraction of the root run span covered by top-level child spans.
  double span_coverage() const;
  /// Expression-VM dispatch overhead, from the vexpr_kernel stage
  /// counters: source VOps retired per processed event, and the fraction
  /// of them absorbed into fused superinstructions (0 when untraced, on
  /// the interpret tier, or when no expression kernels ran).
  double vops_per_event() const;
  double vexpr_fused_coverage() const;
};

/// Builds a report from a stopped session. `max_timeline_entries` caps
/// each worker's timeline (0 = unlimited); `max_stragglers` caps the
/// straggler list.
RunReport BuildRunReport(const TraceSession& session, const RunInfo& info,
                         const ScanStats& scan,
                         size_t max_timeline_entries = 512,
                         size_t max_stragglers = 5);

// ---- cross-process reports (the scatter kReport frame body) --------------

/// One worker process's complete observability payload: its aggregated
/// RunReport over its shard range, plus the raw spans so the coordinator
/// can stitch every process into one Chrome trace. Move-only: decoded
/// span names live in `name_pool` (stable heap storage).
struct ProcessReport {
  int shard_begin = 0;  ///< global shard range [begin, end) this covers
  int shard_end = 0;
  /// False for a placeholder standing in for a worker whose kReport frame
  /// was lost; such entries carry only the shard range.
  bool received = true;
  /// Session window in CLOCK_MONOTONIC ns. The clock is machine-wide, so
  /// timestamps from co-located worker processes share an epoch and the
  /// stitched trace aligns without clock translation.
  int64_t session_start_ns = 0;
  int64_t session_stop_ns = 0;
  RunReport report;
  /// All spans of the worker's session, merge-ordered. After wire decode,
  /// `name` pointers point into `name_pool`.
  std::vector<SpanRecord> spans;
  std::vector<std::unique_ptr<std::string>> name_pool;

  /// Interns `name` in the pool (dedup by value) and returns a pointer
  /// valid for this ProcessReport's lifetime.
  const char* InternName(const std::string& name);
};

/// Builds the kReport payload body for one worker: BuildRunReport over the
/// worker's whole session plus the raw span list. `info`/`scan` are the
/// worker's own aggregated totals over shards [shard_begin, shard_end).
ProcessReport BuildProcessReport(const TraceSession& session,
                                 const RunInfo& info, const ScanStats& scan,
                                 int shard_begin, int shard_end);

/// Deterministically merges per-worker reports (shard order — the order
/// the coordinator spawned them) into one cross-process RunReport:
/// workers/stragglers renumbered `proc:slot`, stages and counters summed,
/// span times summed across processes, one ProcessSummary per worker, and
/// a metrics section merged from every process plus the coordinator's own
/// registry. `info` and `merged_scan` come from the coordinator's merged
/// QueryRunOutput, so the report's headline totals are exactly what the
/// run printed; per-process scan totals sum to them bit-exactly (integer
/// sums of the same per-shard counters). A not-received entry yields a
/// `partial` report with a deterministic warning keyed by shard range.
RunReport MergeProcessReports(const RunInfo& info, const ScanStats& merged_scan,
                              const std::vector<ProcessReport>& reports,
                              size_t max_stragglers = 5);

/// The RunReport as a JSON document (kSchemaVersion; see DESIGN.md).
std::string ReportToJson(const RunReport& report);

/// Human-readable per-stage/per-worker/per-leaf table for `--profile`.
std::string ReportToTable(const RunReport& report);

/// All spans of a stopped session in Chrome `trace_event` JSON, loadable
/// in chrome://tracing and Perfetto. Timestamps are microseconds relative
/// to the session start; tid is the dense per-session thread index.
std::string ChromeTraceJson(const TraceSession& session);

/// Every process's spans stitched into one Chrome trace: pid = process
/// index (shard order) + 1, tid = per-process thread index, process_name
/// metadata names the shard range. Timestamps are relative to the
/// earliest session start across processes (one shared CLOCK_MONOTONIC
/// epoch), so worker timelines line up as they ran.
std::string MultiProcessChromeTraceJson(
    const std::vector<ProcessReport>& reports);

/// Writes `content` to `path` (overwrites).
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace hepq::obs

#endif  // HEPQUERY_OBS_REPORT_H_
