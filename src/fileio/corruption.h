#ifndef HEPQUERY_FILEIO_CORRUPTION_H_
#define HEPQUERY_FILEIO_CORRUPTION_H_

// Deterministic corruption injection for .laq files, shared by the
// laq_fuzz tool and tests/corruption_test.cc. Given a valid file, the
// helpers here enumerate and apply three mutation families:
//
//   1. truncations (at structural boundaries or arbitrary offsets),
//   2. bit flips anywhere in the file,
//   3. targeted footer field mutations, re-serialized with a *correct*
//      footer CRC so they exercise the metadata validation pass rather
//      than the checksum.
//
// Every mutation is classified by how it must be detected, so a harness
// can assert "this mutated file yields a non-OK Status" with the right
// strength for each class (see MutationClass).

#include <cstdint>
#include <string>
#include <vector>

#include "fileio/reader.h"

namespace hepq::laqfuzz {

/// How a mutation is guaranteed to be detected.
enum class MutationClass {
  /// Structure is broken: the trailer, footer CRC, or the metadata
  /// validation pass rejects the file regardless of reader options.
  kStructural,
  /// Chunk data is altered under an unchanged chunk CRC32 entry: detection
  /// is guaranteed only when ReaderOptions::validate_checksums is true.
  /// With checksums off, the read must still be safe (no crash, no
  /// sanitizer report) but may succeed with altered values.
  kChecksummed,
  /// Plausible-looking metadata changes (encoding flips, statistics) that
  /// usually fail decode but are not provably detectable. Only the
  /// no-crash guarantee applies.
  kBestEffort,
};

const char* MutationClassName(MutationClass c);

/// A valid .laq file loaded into memory together with its parsed
/// structure, the substrate every mutation is derived from.
struct LaqImage {
  std::vector<uint8_t> bytes;
  FileMetadata metadata;
  uint64_t data_end = 0;     ///< first byte of the footer payload
  uint64_t footer_size = 0;  ///< bytes of footer payload (pre-trailer)
};

/// Loads and structurally verifies a .laq file (it must open cleanly).
Result<LaqImage> LoadLaqImage(const std::string& path);

/// Sorted, de-duplicated structural offsets of the image: 0, end of magic,
/// every chunk begin/end, footer begin, the three trailer fields, and the
/// file size. Truncating at (or next to) each of these exercises every
/// "half-written file" shape a crashed writer can leave behind.
std::vector<uint64_t> StructuralBoundaries(const LaqImage& image);

/// `image` truncated to its first `size` bytes.
std::vector<uint8_t> TruncateAt(const LaqImage& image, uint64_t size);

/// `image` with bit `bit` (0..7) of byte `offset` flipped.
std::vector<uint8_t> FlipBit(const LaqImage& image, uint64_t offset, int bit);

/// Detection class of a single-bit flip at `offset`: flips at or beyond
/// the data/footer boundary (and in the leading magic) are structural,
/// flips inside chunk data are only checksum-guaranteed.
MutationClass FlipClass(const LaqImage& image, uint64_t offset);

/// Which footer field a targeted mutation rewrites.
enum class MutatedField {
  kFileOffset,
  kCompressedSize,
  kEncodedSize,
  kNumValues,
  kEncoding,
  kCodec,
  kChunkCrc32,
  kStats,
  kNumRows,    // row-group level; chunk index ignored
  kTotalRows,  // file level; group/chunk indices ignored
};

const char* MutatedFieldName(MutatedField f);

/// One deterministic footer mutation: set `field` of chunk `leaf` in row
/// group `group` to `value`, re-serialize the footer, and recompute the
/// footer CRC so only the metadata validation pass (or a decode failure)
/// can catch it.
struct FieldMutation {
  int group = 0;
  int leaf = 0;
  MutatedField field = MutatedField::kFileOffset;
  uint64_t value = 0;
  MutationClass mclass = MutationClass::kStructural;
};

/// The full deterministic footer-mutation corpus for `image`: for every
/// chunk, boundary-breaking offsets/sizes/counts (kStructural), CRC and
/// off-by-one size rewrites (kChecksummed), and encoding/codec/statistics
/// flips (kBestEffort where not provable).
std::vector<FieldMutation> EnumerateFieldMutations(const LaqImage& image);

/// Applies `m` to a copy of the image's metadata and rebuilds the file
/// bytes (data region unchanged, new footer, new trailer with correct
/// size/CRC).
std::vector<uint8_t> ApplyFieldMutation(const LaqImage& image,
                                        const FieldMutation& m);

/// Rebuilds image bytes around `mutated` metadata (used by tests that
/// craft their own metadata edits).
std::vector<uint8_t> RebuildWithMetadata(const LaqImage& image,
                                         const FileMetadata& mutated);

/// Writes `bytes` to `path`, replacing any existing file.
Status WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes);

/// Opens `path` and reads every row group with every column, exercising
/// the whole storage read path. Returns the first error, or OK if the file
/// read completely.
Status ReadEverything(const std::string& path, const ReaderOptions& options);

}  // namespace hepq::laqfuzz

#endif  // HEPQUERY_FILEIO_CORRUPTION_H_
