#include "fileio/varint.h"

#include <cstring>

namespace hepq {

void PutVarint(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

void PutSignedVarint(std::vector<uint8_t>* out, int64_t value) {
  const uint64_t zz =
      (static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63);
  PutVarint(out, zz);
}

Status ByteReader::GetVarint(uint64_t* out) {
  uint64_t result = 0;
  int shift = 0;
  while (pos_ < size_) {
    const uint8_t byte = data_[pos_++];
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = result;
      return Status::OK();
    }
    shift += 7;
    if (shift >= 64) return Status::Corruption("varint too long");
  }
  return Status::Corruption("truncated varint");
}

Status ByteReader::GetSignedVarint(int64_t* out) {
  uint64_t zz = 0;
  HEPQ_RETURN_NOT_OK(GetVarint(&zz));
  *out = static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
  return Status::OK();
}

Status ByteReader::GetFixed32(uint32_t* out) {
  if (remaining() < 4) return Status::Corruption("truncated fixed32");
  std::memcpy(out, data_ + pos_, 4);
  pos_ += 4;
  return Status::OK();
}

Status ByteReader::GetFixed64(uint64_t* out) {
  if (remaining() < 8) return Status::Corruption("truncated fixed64");
  std::memcpy(out, data_ + pos_, 8);
  pos_ += 8;
  return Status::OK();
}

Status ByteReader::GetDouble(double* out) {
  uint64_t bits = 0;
  HEPQ_RETURN_NOT_OK(GetFixed64(&bits));
  std::memcpy(out, &bits, 8);
  return Status::OK();
}

Status ByteReader::GetString(std::string* out) {
  uint64_t n = 0;
  HEPQ_RETURN_NOT_OK(GetVarint(&n));
  if (remaining() < n) return Status::Corruption("truncated string");
  out->assign(reinterpret_cast<const char*>(data_ + pos_),
              static_cast<size_t>(n));
  pos_ += static_cast<size_t>(n);
  return Status::OK();
}

Status ByteReader::GetBytes(void* out, size_t n) {
  if (remaining() < n) return Status::Corruption("truncated bytes");
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::Skip(size_t n) {
  if (remaining() < n) return Status::Corruption("skip past end");
  pos_ += n;
  return Status::OK();
}

void PutFixed32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t n = out->size();
  out->resize(n + 4);
  std::memcpy(out->data() + n, &v, 4);
}

void PutFixed64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t n = out->size();
  out->resize(n + 8);
  std::memcpy(out->data() + n, &v, 8);
}

void PutDouble(std::vector<uint8_t>* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  PutFixed64(out, bits);
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutVarint(out, s.size());
  out->insert(out->end(), s.begin(), s.end());
}

}  // namespace hepq
