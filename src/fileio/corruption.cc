#include "fileio/corruption.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "fileio/crc32.h"
#include "fileio/varint.h"

namespace hepq::laqfuzz {

const char* MutationClassName(MutationClass c) {
  switch (c) {
    case MutationClass::kStructural:
      return "structural";
    case MutationClass::kChecksummed:
      return "checksummed";
    case MutationClass::kBestEffort:
      return "best-effort";
  }
  return "unknown";
}

const char* MutatedFieldName(MutatedField f) {
  switch (f) {
    case MutatedField::kFileOffset:
      return "file_offset";
    case MutatedField::kCompressedSize:
      return "compressed_size";
    case MutatedField::kEncodedSize:
      return "encoded_size";
    case MutatedField::kNumValues:
      return "num_values";
    case MutatedField::kEncoding:
      return "encoding";
    case MutatedField::kCodec:
      return "codec";
    case MutatedField::kChunkCrc32:
      return "crc32";
    case MutatedField::kStats:
      return "stats";
    case MutatedField::kNumRows:
      return "num_rows";
    case MutatedField::kTotalRows:
      return "total_rows";
  }
  return "unknown";
}

Result<LaqImage> LoadLaqImage(const std::string& path) {
  // Open through the real reader first: the image must be a *valid* file,
  // otherwise mutation classes mean nothing.
  std::unique_ptr<LaqReader> reader;
  HEPQ_ASSIGN_OR_RETURN(reader, LaqReader::Open(path));

  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::IoError("cannot reopen '" + path + "'");
  LaqImage image;
  image.metadata = reader->metadata();
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::IoError("seek failed");
  }
  const long size = std::ftell(file);
  if (size < 0) {
    std::fclose(file);
    return Status::IoError("cannot determine file size");
  }
  image.bytes.resize(static_cast<size_t>(size));
  if (std::fseek(file, 0, SEEK_SET) != 0 ||
      std::fread(image.bytes.data(), 1, image.bytes.size(), file) !=
          image.bytes.size()) {
    std::fclose(file);
    return Status::IoError("cannot read '" + path + "'");
  }
  std::fclose(file);

  uint32_t footer_size = 0;
  std::memcpy(&footer_size, image.bytes.data() + image.bytes.size() - 12, 4);
  image.footer_size = footer_size;
  image.data_end = image.bytes.size() - 12 - footer_size;
  return image;
}

std::vector<uint64_t> StructuralBoundaries(const LaqImage& image) {
  std::vector<uint64_t> b = {0, 4, image.data_end,
                             image.bytes.size() - 12,
                             image.bytes.size() - 8,
                             image.bytes.size() - 4,
                             image.bytes.size()};
  for (const RowGroupMeta& rg : image.metadata.row_groups) {
    for (const ChunkMeta& chunk : rg.chunks) {
      b.push_back(chunk.file_offset);
      b.push_back(chunk.file_offset + chunk.compressed_size);
    }
  }
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  return b;
}

std::vector<uint8_t> TruncateAt(const LaqImage& image, uint64_t size) {
  return std::vector<uint8_t>(
      image.bytes.begin(),
      image.bytes.begin() + static_cast<ptrdiff_t>(
                                std::min<uint64_t>(size, image.bytes.size())));
}

std::vector<uint8_t> FlipBit(const LaqImage& image, uint64_t offset,
                             int bit) {
  std::vector<uint8_t> out = image.bytes;
  out[static_cast<size_t>(offset % out.size())] ^=
      static_cast<uint8_t>(1u << (bit & 7));
  return out;
}

MutationClass FlipClass(const LaqImage& image, uint64_t offset) {
  // Leading magic, footer, and trailer are all structurally verified on
  // open; chunk data is vouched for only by the per-chunk CRC32.
  if (offset < 4 || offset >= image.data_end) {
    return MutationClass::kStructural;
  }
  for (const RowGroupMeta& rg : image.metadata.row_groups) {
    for (const ChunkMeta& chunk : rg.chunks) {
      if (offset >= chunk.file_offset &&
          offset < chunk.file_offset + chunk.compressed_size) {
        return MutationClass::kChecksummed;
      }
    }
  }
  return MutationClass::kBestEffort;  // padding byte: no CRC covers it
}

namespace {

FileMetadata MutateMetadata(const FileMetadata& meta, const FieldMutation& m) {
  FileMetadata out = meta;
  if (m.field == MutatedField::kTotalRows) {
    out.total_rows = static_cast<int64_t>(m.value);
    return out;
  }
  RowGroupMeta& rg = out.row_groups[static_cast<size_t>(m.group)];
  if (m.field == MutatedField::kNumRows) {
    rg.num_rows = static_cast<int64_t>(m.value);
    return out;
  }
  ChunkMeta& chunk = rg.chunks[static_cast<size_t>(m.leaf)];
  switch (m.field) {
    case MutatedField::kFileOffset:
      chunk.file_offset = m.value;
      break;
    case MutatedField::kCompressedSize:
      chunk.compressed_size = m.value;
      break;
    case MutatedField::kEncodedSize:
      chunk.encoded_size = m.value;
      break;
    case MutatedField::kNumValues:
      chunk.num_values = m.value;
      break;
    case MutatedField::kEncoding:
      chunk.encoding = static_cast<Encoding>(m.value);
      break;
    case MutatedField::kCodec:
      chunk.codec = static_cast<Codec>(m.value);
      break;
    case MutatedField::kChunkCrc32:
      chunk.crc32 = static_cast<uint32_t>(m.value);
      break;
    case MutatedField::kStats:
      // Inverted statistics: min strictly above max.
      chunk.has_stats = true;
      chunk.min_value = 1.0;
      chunk.max_value = 0.0;
      break;
    case MutatedField::kNumRows:
    case MutatedField::kTotalRows:
      break;  // handled above
  }
  return out;
}

/// Classifies a candidate mutation: if the Open()-time validation pass
/// provably rejects the mutated metadata the mutation is structural;
/// otherwise CRC rewrites and size shrinks are caught by the chunk
/// checksum, and anything else is best-effort (usually a decode failure,
/// but not provably so).
MutationClass ClassifyFieldMutation(const LaqImage& image,
                                    const FileMetadata& mutated,
                                    const FieldMutation& m) {
  const Status validation = ValidateFileMetadata(
      mutated, /*data_begin=*/4, image.data_end,
      ReaderOptions{}.max_chunk_decoded_bytes);
  if (!validation.ok()) return MutationClass::kStructural;
  if (m.field == MutatedField::kChunkCrc32 ||
      m.field == MutatedField::kCompressedSize) {
    return MutationClass::kChecksummed;
  }
  return MutationClass::kBestEffort;
}

}  // namespace

std::vector<FieldMutation> EnumerateFieldMutations(const LaqImage& image) {
  const FileMetadata& meta = image.metadata;
  std::vector<FieldMutation> candidates;
  const uint64_t file_size = image.bytes.size();
  for (size_t g = 0; g < meta.row_groups.size(); ++g) {
    const RowGroupMeta& rg = meta.row_groups[g];
    candidates.push_back({static_cast<int>(g), 0, MutatedField::kNumRows,
                          static_cast<uint64_t>(rg.num_rows) + 1});
    for (size_t c = 0; c < rg.chunks.size(); ++c) {
      const ChunkMeta& chunk = rg.chunks[c];
      const int gi = static_cast<int>(g);
      const int ci = static_cast<int>(c);
      auto add = [&](MutatedField field, uint64_t value) {
        candidates.push_back({gi, ci, field, value});
      };
      add(MutatedField::kFileOffset, file_size);
      add(MutatedField::kFileOffset, 0);
      add(MutatedField::kCompressedSize, image.data_end);
      add(MutatedField::kCompressedSize, chunk.compressed_size + 1);
      if (chunk.compressed_size > 0) {
        add(MutatedField::kCompressedSize, chunk.compressed_size - 1);
      }
      add(MutatedField::kEncodedSize, 0);
      add(MutatedField::kEncodedSize, chunk.num_values * 25 + 64);
      add(MutatedField::kNumValues, chunk.num_values + 1);
      if (chunk.num_values > 0) add(MutatedField::kNumValues, 0);
      add(MutatedField::kNumValues, 1ull << 61);  // allocation bomb
      for (uint8_t e = 0; e <= static_cast<uint8_t>(Encoding::kFor); ++e) {
        if (e != static_cast<uint8_t>(chunk.encoding)) {
          add(MutatedField::kEncoding, e);
        }
      }
      add(MutatedField::kCodec,
          chunk.codec == Codec::kNone ? static_cast<uint64_t>(Codec::kLz)
                                      : static_cast<uint64_t>(Codec::kNone));
      add(MutatedField::kChunkCrc32, chunk.crc32 ^ 0x5a5a5a5au);
      add(MutatedField::kStats, 0);
    }
  }
  candidates.push_back({0, 0, MutatedField::kTotalRows,
                        static_cast<uint64_t>(meta.total_rows) + 1});
  for (FieldMutation& m : candidates) {
    m.mclass = ClassifyFieldMutation(image, MutateMetadata(meta, m), m);
  }
  return candidates;
}

std::vector<uint8_t> RebuildWithMetadata(const LaqImage& image,
                                         const FileMetadata& mutated) {
  std::vector<uint8_t> out(image.bytes.begin(),
                           image.bytes.begin() +
                               static_cast<ptrdiff_t>(image.data_end));
  std::vector<uint8_t> footer;
  SerializeFileMetadata(mutated, &footer);
  out.insert(out.end(), footer.begin(), footer.end());
  PutFixed32(&out, static_cast<uint32_t>(footer.size()));
  PutFixed32(&out, Crc32(footer.data(), footer.size()));
  out.insert(out.end(), kLaqMagic, kLaqMagic + 4);
  return out;
}

std::vector<uint8_t> ApplyFieldMutation(const LaqImage& image,
                                        const FieldMutation& m) {
  return RebuildWithMetadata(image, MutateMetadata(image.metadata, m));
}

Status WriteBytes(const std::string& path,
                  const std::vector<uint8_t>& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
    std::fclose(file);
    return Status::IoError("short write to '" + path + "'");
  }
  if (std::fclose(file) != 0) return Status::IoError("close failed");
  return Status::OK();
}

Status ReadEverything(const std::string& path,
                      const ReaderOptions& options) {
  std::unique_ptr<LaqReader> reader;
  HEPQ_ASSIGN_OR_RETURN(reader, LaqReader::Open(path, options));
  ScratchBuffers scratch;
  for (int g = 0; g < reader->num_row_groups(); ++g) {
    std::vector<std::string> all;
    for (const Field& f : reader->schema().fields()) all.push_back(f.name);
    RecordBatchPtr batch;
    HEPQ_RETURN_NOT_OK(
        reader->ReadRowGroup(g, all, &scratch).MoveTo(&batch));
    if (batch->num_rows() !=
        reader->metadata().row_groups[static_cast<size_t>(g)].num_rows) {
      return Status::Corruption("row group decoded to wrong row count");
    }
  }
  return Status::OK();
}

}  // namespace hepq::laqfuzz
