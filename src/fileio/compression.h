#ifndef HEPQUERY_FILEIO_COMPRESSION_H_
#define HEPQUERY_FILEIO_COMPRESSION_H_

#include <cstdint>
#include <vector>

#include "core/status.h"

namespace hepq {

/// Block compression codecs for column chunks. kLz is a from-scratch
/// byte-oriented LZ77 codec in the LZ4-block family: greedy hash-table
/// matching, 64 KiB window, token = 4-bit literal length + 4-bit match
/// length with extension bytes and 2-byte little-endian match offsets.
/// It trades ratio for speed, like the snappy/lz4 codecs used with Parquet
/// in the paper's setup.
enum class Codec : uint8_t {
  kNone = 0,
  kLz = 1,
};

const char* CodecName(Codec codec);

/// Compresses `input` with `codec`, appending to `out` (which is cleared).
/// For kLz the output is self-delimiting given its size.
Status Compress(Codec codec, const uint8_t* input, size_t input_size,
                std::vector<uint8_t>* out);

/// Decompresses exactly `decompressed_size` bytes into `out`.
/// Fails with Corruption on malformed streams.
Status Decompress(Codec codec, const uint8_t* input, size_t input_size,
                  size_t decompressed_size, std::vector<uint8_t>* out);

}  // namespace hepq

#endif  // HEPQUERY_FILEIO_COMPRESSION_H_
