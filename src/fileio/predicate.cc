#include "fileio/predicate.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace hepq {

void ScanPredicateSet::Intersect(const std::string& leaf_path, double lo,
                                 double hi) {
  // NaN bounds would make every zone comparison false and silently disable
  // the predicate while still claiming one exists; drop them instead.
  if (std::isnan(lo) || std::isnan(hi)) return;
  for (ScanPredicate& p : predicates_) {
    if (!p.item && p.leaf_path == leaf_path) {
      p.min_value = std::max(p.min_value, lo);
      p.max_value = std::min(p.max_value, hi);
      return;
    }
  }
  predicates_.push_back(ScanPredicate{leaf_path, lo, hi, /*item=*/false});
}

void ScanPredicateSet::AddRange(const std::string& leaf_path, double lo,
                                double hi) {
  Intersect(leaf_path, lo, hi);
}

void ScanPredicateSet::AddMinCount(const std::string& list_column,
                                   int64_t n) {
  Intersect(list_column + "#lengths", static_cast<double>(n),
            std::numeric_limits<double>::infinity());
}

void ScanPredicateSet::AddItemRange(const std::string& leaf_path, double lo,
                                    double hi) {
  if (std::isnan(lo) || std::isnan(hi)) return;
  predicates_.push_back(ScanPredicate{leaf_path, lo, hi, /*item=*/true});
}

void ScanPredicateSet::Merge(const ScanPredicateSet& other) {
  for (const ScanPredicate& p : other.predicates_) {
    if (p.item) {
      AddItemRange(p.leaf_path, p.min_value, p.max_value);
    } else {
      Intersect(p.leaf_path, p.min_value, p.max_value);
    }
  }
}

std::string ScanPredicateSet::ToString() const {
  std::ostringstream os;
  for (const ScanPredicate& p : predicates_) {
    os << p.leaf_path << (p.item ? " has element in [" : " in [")
       << p.min_value << ", " << p.max_value << "]\n";
  }
  return os.str();
}

std::vector<BoundScanPredicate> BindScanPredicates(
    const ScanPredicateSet& set, const FileMetadata& meta) {
  std::vector<BoundScanPredicate> bound;
  bound.reserve(set.size());
  for (const ScanPredicate& p : set.predicates()) {
    const int leaf = meta.LeafIndex(p.leaf_path);
    if (leaf < 0) continue;  // file doesn't carry this leaf: cannot prune
    const LeafDesc& desc = meta.layout[static_cast<size_t>(leaf)];
    const DataType& field_type =
        *meta.schema.field(desc.field_index).type;
    BoundScanPredicate b;
    b.leaf_index = leaf;
    b.min_value = p.min_value;
    b.max_value = p.max_value;
    b.is_lengths = desc.is_lengths;
    b.per_row = desc.is_lengths || field_type.id() != TypeId::kList;
    // An existence condition on what turns out to be a per-row leaf would
    // be applied per-row, which is stronger than the frontend asserted;
    // drop such mislabeled predicates rather than risk over-pruning.
    if (p.item && b.per_row) continue;
    bound.push_back(b);
  }
  return bound;
}

}  // namespace hepq
