#include "fileio/predicate.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace hepq {

void ScanPredicateSet::Intersect(const std::string& leaf_path, double lo,
                                 double hi) {
  // NaN bounds would make every zone comparison false and silently disable
  // the predicate while still claiming one exists; drop them instead.
  if (std::isnan(lo) || std::isnan(hi)) return;
  for (ScanPredicate& p : predicates_) {
    if (!p.item && p.leaf_path == leaf_path) {
      p.min_value = std::max(p.min_value, lo);
      p.max_value = std::min(p.max_value, hi);
      return;
    }
  }
  predicates_.push_back(ScanPredicate{leaf_path, lo, hi, /*item=*/false});
}

void ScanPredicateSet::AddRange(const std::string& leaf_path, double lo,
                                double hi) {
  Intersect(leaf_path, lo, hi);
}

void ScanPredicateSet::AddMinCount(const std::string& list_column,
                                   int64_t n) {
  Intersect(list_column + "#lengths", static_cast<double>(n),
            std::numeric_limits<double>::infinity());
}

void ScanPredicateSet::AddItemRange(const std::string& leaf_path, double lo,
                                    double hi) {
  if (std::isnan(lo) || std::isnan(hi)) return;
  predicates_.push_back(ScanPredicate{leaf_path, lo, hi, /*item=*/true});
}

void ScanPredicateSet::AddMinCountSum(
    const std::vector<std::string>& list_columns, int64_t n) {
  if (list_columns.empty() || n < 1) return;
  SumMinCountPredicate pred;
  pred.min_total = n;
  for (const std::string& column : list_columns) {
    pred.lengths_leaves.push_back(column + "#lengths");
  }
  // Keep only the tightest bound over an identical leaf set; different
  // sets stay separate conjuncts.
  for (SumMinCountPredicate& existing : sum_predicates_) {
    if (existing.lengths_leaves == pred.lengths_leaves) {
      existing.min_total = std::max(existing.min_total, pred.min_total);
      return;
    }
  }
  sum_predicates_.push_back(std::move(pred));
}

void ScanPredicateSet::Merge(const ScanPredicateSet& other) {
  for (const ScanPredicate& p : other.predicates_) {
    if (p.item) {
      AddItemRange(p.leaf_path, p.min_value, p.max_value);
    } else {
      Intersect(p.leaf_path, p.min_value, p.max_value);
    }
  }
  for (const SumMinCountPredicate& p : other.sum_predicates_) {
    auto same_leaves = [&p](const SumMinCountPredicate& existing) {
      return existing.lengths_leaves == p.lengths_leaves;
    };
    const auto it = std::find_if(sum_predicates_.begin(),
                                 sum_predicates_.end(), same_leaves);
    if (it != sum_predicates_.end()) {
      it->min_total = std::max(it->min_total, p.min_total);
    } else {
      sum_predicates_.push_back(p);
    }
  }
}

std::string ScanPredicateSet::ToString() const {
  std::ostringstream os;
  for (const ScanPredicate& p : predicates_) {
    os << p.leaf_path << (p.item ? " has element in [" : " in [")
       << p.min_value << ", " << p.max_value << "]\n";
  }
  for (const SumMinCountPredicate& p : sum_predicates_) {
    for (size_t i = 0; i < p.lengths_leaves.size(); ++i) {
      os << (i == 0 ? "" : " + ") << p.lengths_leaves[i];
    }
    os << " >= " << p.min_total << "\n";
  }
  return os.str();
}

std::vector<BoundScanPredicate> BindScanPredicates(
    const ScanPredicateSet& set, const FileMetadata& meta) {
  std::vector<BoundScanPredicate> bound;
  bound.reserve(set.size());
  for (const ScanPredicate& p : set.predicates()) {
    const int leaf = meta.LeafIndex(p.leaf_path);
    if (leaf < 0) continue;  // file doesn't carry this leaf: cannot prune
    const LeafDesc& desc = meta.layout[static_cast<size_t>(leaf)];
    const DataType& field_type =
        *meta.schema.field(desc.field_index).type;
    BoundScanPredicate b;
    b.leaf_index = leaf;
    b.min_value = p.min_value;
    b.max_value = p.max_value;
    b.is_lengths = desc.is_lengths;
    b.per_row = desc.is_lengths || field_type.id() != TypeId::kList;
    // An existence condition on what turns out to be a per-row leaf would
    // be applied per-row, which is stronger than the frontend asserted;
    // drop such mislabeled predicates rather than risk over-pruning.
    if (p.item && b.per_row) continue;
    bound.push_back(b);
  }
  return bound;
}

std::vector<BoundSumPredicate> BindSumPredicates(const ScanPredicateSet& set,
                                                 const FileMetadata& meta) {
  std::vector<BoundSumPredicate> bound;
  for (const SumMinCountPredicate& p : set.sum_predicates()) {
    BoundSumPredicate b;
    b.min_total = p.min_total;
    bool complete = !p.lengths_leaves.empty();
    for (const std::string& leaf_path : p.lengths_leaves) {
      const int leaf = meta.LeafIndex(leaf_path);
      if (leaf < 0 ||
          !meta.layout[static_cast<size_t>(leaf)].is_lengths) {
        complete = false;
        break;
      }
      b.leaf_indices.push_back(leaf);
    }
    if (complete) bound.push_back(std::move(b));
  }
  return bound;
}

}  // namespace hepq
