#include "fileio/writer.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "fileio/crc32.h"
#include "fileio/varint.h"

namespace hepq {

namespace {

/// Collects the raw values of one leaf across a set of buffered batches
/// into a contiguous byte vector of `physical` elements. Returns the value
/// count. For lengths leaves, emits one int32 list length per row.
struct LeafValues {
  std::vector<uint8_t> bytes;
  size_t count = 0;
  bool has_stats = false;
  double min_value = 0.0;
  double max_value = 0.0;
};

template <typename T>
void AppendTyped(const std::vector<T>& src, LeafValues* out) {
  const size_t old = out->bytes.size();
  out->bytes.resize(old + src.size() * sizeof(T));
  if (!src.empty()) {
    // Guarded: memcpy from an empty span's null data() is UB.
    std::memcpy(out->bytes.data() + old, src.data(), src.size() * sizeof(T));
  }
  out->count += src.size();
  for (const T& v : src) {
    const double d = static_cast<double>(v);
    // NaN is unordered: folding it through std::min/max poisons the zone
    // map into [NaN, NaN], which compares false against everything and
    // would make the chunk look prunable by any predicate. Skip NaNs; a
    // column with no orderable value at all simply carries no stats.
    if (std::isnan(d)) continue;
    if (!out->has_stats) {
      out->has_stats = true;
      out->min_value = out->max_value = d;
    } else {
      out->min_value = std::min(out->min_value, d);
      out->max_value = std::max(out->max_value, d);
    }
  }
}

template <typename T>
void AppendSpanTyped(std::span<const T> src, LeafValues* out) {
  const size_t old = out->bytes.size();
  out->bytes.resize(old + src.size() * sizeof(T));
  if (!src.empty()) {
    // Guarded: memcpy from an empty span's null data() is UB.
    std::memcpy(out->bytes.data() + old, src.data(), src.size() * sizeof(T));
  }
  out->count += src.size();
  for (const T& v : src) {
    const double d = static_cast<double>(v);
    // NaN is unordered: folding it through std::min/max poisons the zone
    // map into [NaN, NaN], which compares false against everything and
    // would make the chunk look prunable by any predicate. Skip NaNs; a
    // column with no orderable value at all simply carries no stats.
    if (std::isnan(d)) continue;
    if (!out->has_stats) {
      out->has_stats = true;
      out->min_value = out->max_value = d;
    } else {
      out->min_value = std::min(out->min_value, d);
      out->max_value = std::max(out->max_value, d);
    }
  }
}

Status AppendPrimitive(const Array& array, LeafValues* out) {
  switch (array.type()->id()) {
    case TypeId::kFloat32:
      AppendSpanTyped(static_cast<const Float32Array&>(array).values(), out);
      return Status::OK();
    case TypeId::kFloat64:
      AppendSpanTyped(static_cast<const Float64Array&>(array).values(), out);
      return Status::OK();
    case TypeId::kInt32:
      AppendSpanTyped(static_cast<const Int32Array&>(array).values(), out);
      return Status::OK();
    case TypeId::kInt64:
      AppendSpanTyped(static_cast<const Int64Array&>(array).values(), out);
      return Status::OK();
    case TypeId::kBool:
      AppendSpanTyped(static_cast<const BoolArray&>(array).values(), out);
      return Status::OK();
    default:
      return Status::Invalid("leaf is not primitive");
  }
}

/// Resolves the array a leaf's values live in, within one batch.
Status AppendLeafFromBatch(const LeafDesc& leaf, const RecordBatch& batch,
                           LeafValues* out) {
  const ArrayPtr& column = batch.column(leaf.field_index);
  const DataType& type = *column->type();
  if (leaf.is_lengths) {
    const auto& list = static_cast<const ListArray&>(*column);
    std::vector<int32_t> lengths(static_cast<size_t>(list.length()));
    for (int64_t i = 0; i < list.length(); ++i) {
      lengths[static_cast<size_t>(i)] = list.list_length(i);
    }
    AppendTyped(lengths, out);
    return Status::OK();
  }
  if (type.is_primitive()) {
    return AppendPrimitive(*column, out);
  }
  if (type.id() == TypeId::kStruct) {
    const auto& st = static_cast<const StructArray&>(*column);
    return AppendPrimitive(*st.child(leaf.member_index), out);
  }
  // List column: values live in the child.
  const auto& list = static_cast<const ListArray&>(*column);
  const Array& child = *list.child();
  if (child.type()->is_primitive()) {
    return AppendPrimitive(child, out);
  }
  const auto& st = static_cast<const StructArray&>(child);
  return AppendPrimitive(*st.child(leaf.member_index), out);
}

template <typename T>
void MinMaxOver(const T* values, size_t count, PageMeta* page) {
  for (size_t i = 0; i < count; ++i) {
    const double d = static_cast<double>(values[i]);
    if (std::isnan(d)) continue;  // same rationale as the chunk-level stats
    if (!page->has_stats) {
      page->has_stats = true;
      page->min_value = page->max_value = d;
    } else {
      page->min_value = std::min(page->min_value, d);
      page->max_value = std::max(page->max_value, d);
    }
  }
}

void ComputePageStats(TypeId physical, const void* data, size_t count,
                      PageMeta* page) {
  switch (physical) {
    case TypeId::kFloat32:
      MinMaxOver(static_cast<const float*>(data), count, page);
      break;
    case TypeId::kFloat64:
      MinMaxOver(static_cast<const double*>(data), count, page);
      break;
    case TypeId::kInt32:
      MinMaxOver(static_cast<const int32_t*>(data), count, page);
      break;
    case TypeId::kInt64:
      MinMaxOver(static_cast<const int64_t*>(data), count, page);
      break;
    case TypeId::kBool:
      MinMaxOver(static_cast<const uint8_t*>(data), count, page);
      break;
    default:
      break;  // non-primitive leaves cannot occur (layout is validated)
  }
}

}  // namespace

LaqWriter::LaqWriter(std::FILE* file, SchemaPtr schema,
                     std::vector<LeafDesc> layout, WriterOptions options)
    : file_(file),
      schema_(std::move(schema)),
      layout_(std::move(layout)),
      options_(options) {
  metadata_.schema = *schema_;
  metadata_.layout = layout_;
}

LaqWriter::~LaqWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status ValidateWriterOptions(const WriterOptions& options) {
  if (options.row_group_size <= 0) {
    return Status::Invalid("WriterOptions: row_group_size must be positive");
  }
  if (options.page_values <= 0) {
    return Status::Invalid("WriterOptions: page_values must be positive");
  }
  return Status::OK();
}

Result<std::unique_ptr<LaqWriter>> LaqWriter::Open(const std::string& path,
                                                   SchemaPtr schema,
                                                   WriterOptions options) {
  HEPQ_RETURN_NOT_OK(ValidateWriterOptions(options));
  std::vector<LeafDesc> layout;
  HEPQ_ASSIGN_OR_RETURN(layout, ComputeLeafLayout(*schema));
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  auto writer = std::unique_ptr<LaqWriter>(
      new LaqWriter(file, std::move(schema), std::move(layout), options));
  if (std::fwrite(kLaqMagic, 1, 4, file) != 4) {
    return Status::IoError("failed to write magic");
  }
  writer->file_pos_ = 4;
  return writer;
}

Status LaqWriter::WriteBatch(const RecordBatch& batch) {
  if (closed_) return Status::Invalid("writer already closed");
  if (!batch.schema()->Equals(*schema_)) {
    return Status::Invalid("batch schema does not match writer schema");
  }
  buffered_.push_back(std::make_shared<RecordBatch>(batch));
  buffered_rows_ += batch.num_rows();
  if (buffered_rows_ >= options_.row_group_size) {
    HEPQ_RETURN_NOT_OK(FlushRowGroup());
  }
  return Status::OK();
}

Status LaqWriter::WriteChunk(const LeafDesc& leaf, TypeId physical,
                             const void* data, size_t count,
                             ChunkMeta* meta) {
  const Encoding encoding =
      ChooseEncoding(physical, data, count, options_.advanced_encodings);
  const size_t width = static_cast<size_t>(PrimitiveWidth(physical));
  const uint8_t* bytes = static_cast<const uint8_t*>(data);

  // Page partition: one encoding unit per `page_values` values (each page
  // restarts the encoder, so the reader can decode any page on its own).
  // Rounded down to a multiple of 8 so bit-packed bool pages cover whole
  // bytes. page_values is validated positive at Open.
  size_t per_page = static_cast<size_t>(options_.page_values);
  per_page = std::max<size_t>(8, per_page - per_page % 8);

  std::vector<PageMeta> pages;
  std::vector<std::vector<uint8_t>> page_encoded;
  std::vector<std::vector<uint8_t>> page_compressed;
  Codec codec = options_.codec;
  bool any_expanded = false;
  for (size_t offset = 0; offset < count; offset += per_page) {
    const size_t n = std::min(per_page, count - offset);
    std::vector<uint8_t> encoded;
    HEPQ_RETURN_NOT_OK(EncodeValues(physical, encoding,
                                    bytes + offset * width, n, &encoded));
    std::vector<uint8_t> compressed;
    HEPQ_RETURN_NOT_OK(
        Compress(codec, encoded.data(), encoded.size(), &compressed));
    if (compressed.size() >= encoded.size()) any_expanded = true;
    PageMeta page;
    page.num_values = n;
    if (options_.write_statistics) {
      ComputePageStats(physical, bytes + offset * width, n, &page);
    }
    pages.push_back(page);
    page_encoded.push_back(std::move(encoded));
    page_compressed.push_back(std::move(compressed));
  }
  if (count == 0 || any_expanded) {
    // Incompressible somewhere (common for float columns, as the paper
    // notes): store the whole chunk plain. Falling back per chunk rather
    // than per page keeps the codec a chunk-level property, as in v1.
    codec = Codec::kNone;
    page_compressed = page_encoded;
  }

  meta->file_offset = file_pos_;
  meta->compressed_size = 0;
  meta->encoded_size = 0;
  meta->num_values = count;
  meta->encoding = encoding;
  meta->codec = codec;
  uint32_t chunk_crc = 0;
  for (size_t p = 0; p < pages.size(); ++p) {
    pages[p].encoded_size = page_encoded[p].size();
    pages[p].compressed_size = page_compressed[p].size();
    pages[p].crc32 = Crc32(page_compressed[p].data(), page_compressed[p].size());
    // The chunk CRC covers the concatenated page bytes, so a full
    // (skip-free) read can verify the chunk with one pass as before.
    chunk_crc = Crc32(page_compressed[p].data(), page_compressed[p].size(),
                      chunk_crc);
    meta->encoded_size += page_encoded[p].size();
    meta->compressed_size += page_compressed[p].size();
    if (!page_compressed[p].empty() &&
        std::fwrite(page_compressed[p].data(), 1, page_compressed[p].size(),
                    file_) != page_compressed[p].size()) {
      return Status::IoError("failed to write chunk for leaf " + leaf.path);
    }
  }
  meta->crc32 = chunk_crc;
  meta->pages = std::move(pages);
  file_pos_ += meta->compressed_size;
  return Status::OK();
}

Status LaqWriter::FlushRowGroup() {
  if (buffered_rows_ == 0) return Status::OK();
  RowGroupMeta rg;
  rg.num_rows = buffered_rows_;
  rg.chunks.resize(layout_.size());
  for (size_t l = 0; l < layout_.size(); ++l) {
    const LeafDesc& leaf = layout_[l];
    LeafValues values;
    for (const RecordBatchPtr& batch : buffered_) {
      HEPQ_RETURN_NOT_OK(AppendLeafFromBatch(leaf, *batch, &values));
    }
    ChunkMeta* meta = &rg.chunks[l];
    HEPQ_RETURN_NOT_OK(WriteChunk(leaf, leaf.physical, values.bytes.data(),
                                  values.count, meta));
    if (options_.write_statistics && values.has_stats) {
      meta->has_stats = true;
      meta->min_value = values.min_value;
      meta->max_value = values.max_value;
    }
  }
  metadata_.row_groups.push_back(std::move(rg));
  rows_written_ += buffered_rows_;
  buffered_.clear();
  buffered_rows_ = 0;
  return Status::OK();
}

Status LaqWriter::Close() {
  if (closed_) return Status::Invalid("writer already closed");
  HEPQ_RETURN_NOT_OK(FlushRowGroup());
  metadata_.total_rows = rows_written_;
  std::vector<uint8_t> footer;
  SerializeFileMetadata(metadata_, &footer);
  if (std::fwrite(footer.data(), 1, footer.size(), file_) != footer.size()) {
    return Status::IoError("failed to write footer");
  }
  std::vector<uint8_t> trailer;
  PutFixed32(&trailer, static_cast<uint32_t>(footer.size()));
  PutFixed32(&trailer, Crc32(footer.data(), footer.size()));
  trailer.insert(trailer.end(), kLaqMagic, kLaqMagic + 4);
  if (std::fwrite(trailer.data(), 1, trailer.size(), file_) !=
      trailer.size()) {
    return Status::IoError("failed to write trailer");
  }
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    return Status::IoError("failed to close file");
  }
  file_ = nullptr;
  closed_ = true;
  return Status::OK();
}

Status WriteLaqFile(const std::string& path, SchemaPtr schema,
                    const std::vector<RecordBatchPtr>& batches,
                    WriterOptions options) {
  std::unique_ptr<LaqWriter> writer;
  HEPQ_ASSIGN_OR_RETURN(writer, LaqWriter::Open(path, schema, options));
  for (const RecordBatchPtr& batch : batches) {
    HEPQ_RETURN_NOT_OK(writer->WriteBatch(*batch));
  }
  return writer->Close();
}

}  // namespace hepq
