#include "fileio/reader.h"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>

#include "cache/cache.h"
#include "fileio/crc32.h"
#include "fileio/varint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hepq {

namespace {

Result<ArrayPtr> BuildPrimitiveArray(TypeId type,
                                     const std::vector<uint8_t>& bytes,
                                     size_t count) {
  // `bytes` holds the decoded chunk; a corrupt file can make the caller's
  // expected count (derived from row counts or list lengths) exceed what
  // the chunk actually decoded to, so the copies below must never trust
  // `count` alone.
  const int width = PrimitiveWidth(type);
  if (width <= 0) return Status::Invalid("not a primitive leaf type");
  if (count > bytes.size() / static_cast<size_t>(width)) {
    return Status::Corruption("leaf chunk holds fewer values than expected");
  }
  switch (type) {
    case TypeId::kFloat32: {
      std::vector<float> v(count);
      if (count != 0) std::memcpy(v.data(), bytes.data(), count * sizeof(float));
      return ArrayPtr(std::make_shared<Float32Array>(DataType::Float32(),
                                                     std::move(v)));
    }
    case TypeId::kFloat64: {
      std::vector<double> v(count);
      if (count != 0) std::memcpy(v.data(), bytes.data(), count * sizeof(double));
      return ArrayPtr(std::make_shared<Float64Array>(DataType::Float64(),
                                                     std::move(v)));
    }
    case TypeId::kInt32: {
      std::vector<int32_t> v(count);
      if (count != 0) std::memcpy(v.data(), bytes.data(), count * sizeof(int32_t));
      return ArrayPtr(
          std::make_shared<Int32Array>(DataType::Int32(), std::move(v)));
    }
    case TypeId::kInt64: {
      std::vector<int64_t> v(count);
      if (count != 0) std::memcpy(v.data(), bytes.data(), count * sizeof(int64_t));
      return ArrayPtr(
          std::make_shared<Int64Array>(DataType::Int64(), std::move(v)));
    }
    case TypeId::kBool: {
      std::vector<uint8_t> v(count);
      if (count != 0) std::memcpy(v.data(), bytes.data(), count);
      return ArrayPtr(
          std::make_shared<BoolArray>(DataType::Bool(), std::move(v)));
    }
    default:
      return Status::Invalid("not a primitive leaf type");
  }
}

/// Folds a row group's decoded per-row list lengths into offsets. Lengths
/// are data, not metadata: the footer CRC and the Open()-time validation
/// pass cannot vouch for them, and a crafted or bit-flipped chunk (or one
/// read with validate_checksums off) can decode to negative or absurd
/// values. Each length is range-checked before it becomes an array offset;
/// the summed item count is returned for cross-checking against the values
/// leaf.
Status FoldLengthsToOffsets(const std::vector<uint8_t>& values, int64_t rows,
                            std::vector<uint32_t>* offsets,
                            size_t* num_items) {
  if (values.size() / sizeof(int32_t) < static_cast<size_t>(rows)) {
    return Status::Corruption("lengths chunk shorter than row count");
  }
  offsets->assign(static_cast<size_t>(rows) + 1, 0);
  const auto* lengths = reinterpret_cast<const int32_t*>(values.data());
  uint64_t total = 0;
  for (int64_t i = 0; i < rows; ++i) {
    const int32_t length = lengths[i];
    if (length < 0) {
      return Status::Corruption("negative list length in lengths chunk");
    }
    total += static_cast<uint64_t>(length);
    if (total > UINT32_MAX) {
      return Status::Corruption("list lengths overflow 32-bit offsets");
    }
    (*offsets)[static_cast<size_t>(i) + 1] = static_cast<uint32_t>(total);
  }
  *num_items = static_cast<size_t>(total);
  return Status::OK();
}

/// Writes `n` lanes of `value` (converted to the leaf's physical type) —
/// the fail-fill for a zone-map-skipped page. The fill is the page's
/// recorded minimum, which lies outside the predicate's range, so the
/// query's own gate rejects these lanes exactly as it would the true
/// values. Integer casts clamp so an extreme double can never overflow
/// into UB; clamping keeps the value on the same (failing) side of the
/// range boundary.
void FillLanes(TypeId type, double value, size_t n, uint8_t* out) {
  switch (type) {
    case TypeId::kFloat32:
      std::fill_n(reinterpret_cast<float*>(out), n,
                  static_cast<float>(value));
      break;
    case TypeId::kFloat64:
      std::fill_n(reinterpret_cast<double*>(out), n, value);
      break;
    case TypeId::kInt32: {
      const double c = std::clamp(value, -2147483648.0, 2147483647.0);
      std::fill_n(reinterpret_cast<int32_t*>(out), n,
                  static_cast<int32_t>(c));
      break;
    }
    case TypeId::kInt64: {
      int64_t v;
      if (value >= 9223372036854775808.0) {
        v = std::numeric_limits<int64_t>::max();
      } else if (value <= -9223372036854775808.0) {
        v = std::numeric_limits<int64_t>::min();
      } else {
        v = static_cast<int64_t>(value);
      }
      std::fill_n(reinterpret_cast<int64_t*>(out), n, v);
      break;
    }
    case TypeId::kBool:
      std::fill_n(out, n, static_cast<uint8_t>(value != 0.0 ? 1 : 0));
      break;
    default:
      break;  // non-primitive leaves cannot occur (layout is validated)
  }
}

/// Clears `alive[r]` for every row whose value falls outside the
/// predicate's range (NaN counts as outside, matching how a comparison
/// gate evaluates it).
template <typename T>
void MarkDeadTyped(const T* values, size_t rows,
                   const BoundScanPredicate& pred, uint8_t* alive) {
  for (size_t r = 0; r < rows; ++r) {
    const double d = static_cast<double>(values[r]);
    if (!(d >= pred.min_value && d <= pred.max_value)) alive[r] = 0;
  }
}

void MarkDead(TypeId type, const std::vector<uint8_t>& values, size_t rows,
              const BoundScanPredicate& pred, uint8_t* alive) {
  switch (type) {
    case TypeId::kFloat32:
      MarkDeadTyped(reinterpret_cast<const float*>(values.data()), rows,
                    pred, alive);
      break;
    case TypeId::kFloat64:
      MarkDeadTyped(reinterpret_cast<const double*>(values.data()), rows,
                    pred, alive);
      break;
    case TypeId::kInt32:
      MarkDeadTyped(reinterpret_cast<const int32_t*>(values.data()), rows,
                    pred, alive);
      break;
    case TypeId::kInt64:
      MarkDeadTyped(reinterpret_cast<const int64_t*>(values.data()), rows,
                    pred, alive);
      break;
    case TypeId::kBool:
      MarkDeadTyped(values.data(), rows, pred, alive);
      break;
    default:
      break;
  }
}

}  // namespace

struct LaqReader::FilterState {
  /// Per-row predicates (at most one per leaf: ranges intersect).
  std::vector<BoundScanPredicate> per_row;
  /// Leaf values decoded by the late-materialization pre-pass, consumed
  /// (moved out) when the projection loop reaches the leaf.
  std::map<int, std::vector<uint8_t>> cache;
};

LaqReader::~LaqReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<LaqReader>> LaqReader::Open(const std::string& path,
                                                   ReaderOptions options) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  // RAII guard until ownership is transferred to the reader.
  auto guard = std::unique_ptr<std::FILE, int (*)(std::FILE*)>(file,
                                                               &std::fclose);
  if (std::fseek(file, 0, SEEK_END) != 0) {
    return Status::IoError("seek failed");
  }
  const long file_size = std::ftell(file);
  if (file_size < 0) return Status::IoError("cannot determine file size");
  if (file_size < 16) return Status::Corruption("file too small to be laq");

  uint8_t magic[4];
  if (std::fseek(file, 0, SEEK_SET) != 0 ||
      std::fread(magic, 1, 4, file) != 4) {
    return Status::IoError("cannot read file header");
  }
  if (std::memcmp(magic, kLaqMagic, 4) != 0) {
    return Status::Corruption("bad leading magic (not a laq file?)");
  }

  uint8_t trailer[12];
  if (std::fseek(file, file_size - 12, SEEK_SET) != 0 ||
      std::fread(trailer, 1, 12, file) != 12) {
    return Status::IoError("cannot read trailer");
  }
  if (std::memcmp(trailer + 8, kLaqMagic, 4) != 0) {
    return Status::Corruption("bad trailing magic (not a laq file?)");
  }
  uint32_t footer_size = 0, footer_crc = 0;
  std::memcpy(&footer_size, trailer, 4);
  std::memcpy(&footer_crc, trailer + 4, 4);
  if (static_cast<long>(footer_size) + 16 > file_size) {
    return Status::Corruption("footer size exceeds file size");
  }
  std::vector<uint8_t> footer(footer_size);
  if (std::fseek(file, file_size - 12 - static_cast<long>(footer_size),
                 SEEK_SET) != 0 ||
      std::fread(footer.data(), 1, footer_size, file) != footer_size) {
    return Status::IoError("cannot read footer");
  }
  if (Crc32(footer.data(), footer.size()) != footer_crc) {
    return Status::Corruption("footer checksum mismatch");
  }

  // Footer/metadata cache: everything above — magics, trailer, footer
  // read, CRC recompute over the *current* bytes — ran unconditionally,
  // so any corruption a cold open would report has already been reported.
  // What a hit skips is only the parse + validation of footer bytes
  // proven byte-identical (same recomputed CRC over the same size) to a
  // previously validated open, which is deterministic: same bytes, same
  // outcome.
  cache::FileIdentity identity;
  identity.size = static_cast<uint64_t>(file_size);
  struct stat st;
  if (::fstat(fileno(file), &st) == 0) {
    identity.mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                        st.st_mtim.tv_nsec;
  }
  identity.footer_crc = footer_crc;

  std::shared_ptr<const FileMetadata> metadata;
  uint64_t file_id = 0;
  bool footer_hit = false;
  if (options.footer_cache) {
    obs::ScopedSpan span("footer_cache", obs::Stage::kCacheLookup);
    if (auto entry = cache::FooterCache::Process().Find(
            path, identity, options.max_chunk_decoded_bytes)) {
      metadata = entry->metadata;
      file_id = entry->file_id;
      footer_hit = true;
    }
  }
  if (metadata == nullptr) {
    auto parsed = std::make_shared<FileMetadata>();
    HEPQ_RETURN_NOT_OK(ParseFileMetadata(footer.data(), footer.size(),
                                         parsed.get()));
    // A CRC-valid footer can still describe an impossible file (crafted
    // input, or a correct footer over truncated data). Validate every
    // metadata-derived integer once, here, so the read path below never
    // has to re-check offsets, sizes, or counts against the file.
    const uint64_t data_end = static_cast<uint64_t>(file_size) - 12 -
                              static_cast<uint64_t>(footer_size);
    HEPQ_RETURN_NOT_OK(ValidateFileMetadata(*parsed, /*data_begin=*/4,
                                            data_end,
                                            options.max_chunk_decoded_bytes));
    metadata = std::move(parsed);
    if (options.footer_cache) {
      file_id = cache::FooterCache::Process()
                    .Insert(path, identity, options.max_chunk_decoded_bytes,
                            metadata)
                    ->file_id;
    }
  }
  guard.release();
  auto reader = std::unique_ptr<LaqReader>(
      new LaqReader(file, std::move(metadata), std::move(options), file_id));
  if (reader->options_.footer_cache) {
    reader->stats_.footer_cache_hits = footer_hit ? 1 : 0;
    reader->stats_.footer_cache_misses = footer_hit ? 0 : 1;
  }
  // One per-leaf stats slot per layout leaf, sized here once so the
  // decode path updates them by index with zero allocations.
  reader->stats_.leaves.resize(reader->meta().layout.size());
  for (size_t i = 0; i < reader->meta().layout.size(); ++i) {
    reader->stats_.leaves[i].path = reader->meta().layout[i].path;
  }
  return reader;
}

void LaqReader::BillLeaf(const ChunkMeta& chunk, const LeafDesc& leaf) {
  if (leaf.is_lengths) {
    // Offsets are physically read but not billed by BigQuery's
    // logical-column accounting; they do count toward the ideal bytes a
    // C++ Parquet reader must fetch.
    stats_.ideal_bytes += chunk.num_values * 4;
  } else {
    stats_.logical_bytes_bq += chunk.num_values * 8;
    stats_.ideal_bytes +=
        chunk.num_values *
        static_cast<uint64_t>(PrimitiveWidth(leaf.physical));
  }
}

Status LaqReader::ReadLeaf(int group, int leaf_index, bool billed,
                           ScratchBuffers* scratch,
                           const BoundScanPredicate* pred) {
  const RowGroupMeta& rg = meta().row_groups[static_cast<size_t>(group)];
  const ChunkMeta& chunk = rg.chunks[static_cast<size_t>(leaf_index)];
  const LeafDesc& leaf = meta().layout[static_cast<size_t>(leaf_index)];
  const size_t width = static_cast<size_t>(PrimitiveWidth(leaf.physical));

  // The decode span's byte payload is the delta of the decoded-bytes
  // counter across this call, so the sum of decode-span bytes in a trace
  // bit-matches ScanStats::decoded_bytes by construction.
  obs::ScopedSpan span("decode_leaf", obs::Stage::kDecode);
  if (span.active()) {
    span.set_group(group);
    span.set_leaf(leaf_index);
  }
  LeafScanStats& leaf_stats = stats_.leaves[static_cast<size_t>(leaf_index)];
  const uint64_t decoded_before = stats_.decoded_bytes;
  const uint64_t pages_before = stats_.pages_read;
  const uint64_t pruned_before = stats_.pages_pruned;

  // Decoded-chunk cache. The key's file generation id pins the exact
  // bytes (path + size + mtime + footer CRC) the cached decode came
  // from, so a hit is the same buffer a full cold decode would produce —
  // including under a predicate: serving the complete chunk where a cold
  // read would fail-fill skipped pages is the bit-identity-safe direction
  // (the true values of a zone-disjoint page fail the gating predicate
  // too, by the zone-map invariant). Only fully decoded clean chunks are
  // inserted below, so corrupt chunks always decode — and fail — cold.
  cache::ChunkCache* chunk_cache =
      file_id_ != 0 ? options_.chunk_cache.get() : nullptr;
  const cache::ChunkKey cache_key{file_id_, leaf_index, group};
  if (chunk_cache != nullptr) {
    obs::ScopedSpan lookup("chunk_cache", obs::Stage::kCacheLookup);
    if (chunk_cache->Get(cache_key, &scratch->values)) {
      const uint64_t served = scratch->values.size();
      if (lookup.active()) lookup.set_bytes(served);
      stats_.values_read += chunk.num_values;
      stats_.chunk_cache_hits += 1;
      stats_.cache_bytes_served += served;
      leaf_stats.cache_bytes_served += served;
      if (billed) BillLeaf(chunk, leaf);
      return Status::OK();
    }
    stats_.chunk_cache_misses += 1;
  }

  // Every buffer is resized, never recreated: past its high-water mark the
  // scratch pool makes this whole path allocation-free.
  std::vector<uint8_t>& compressed = scratch->compressed;
  compressed.resize(chunk.compressed_size);
  if (std::fseek(file_, static_cast<long>(chunk.file_offset), SEEK_SET) != 0) {
    return Status::IoError("seek to chunk failed");
  }
  if (!compressed.empty() &&
      std::fread(compressed.data(), 1, compressed.size(), file_) !=
          compressed.size()) {
    return Status::IoError("short read of chunk " + leaf.path);
  }

  // Which pages can zone-map skipping rule out? Lengths leaves are never
  // skipped: their exact values become array offsets and cross-checks.
  size_t dead_pages = 0;
  if (pred != nullptr && options_.scan_pushdown && !leaf.is_lengths) {
    obs::ScopedSpan prune_span("page_zone_scan", obs::Stage::kPagePrune);
    if (prune_span.active()) {
      prune_span.set_group(group);
      prune_span.set_leaf(leaf_index);
    }
    for (const PageMeta& page : chunk.pages) {
      if (page.has_stats &&
          ZoneDisjoint(page.min_value, page.max_value, *pred)) {
        ++dead_pages;
      }
    }
  }

  const size_t count = static_cast<size_t>(chunk.num_values);
  scratch->values.resize(count * width);

  if (dead_pages == 0) {
    // Full read: the chunk-level checksum covers the concatenated page
    // bytes, so one pass verifies everything exactly as in v1.
    if (options_.validate_checksums &&
        Crc32(compressed.data(), compressed.size()) != chunk.crc32) {
      return Status::Corruption("checksum mismatch in chunk " + leaf.path);
    }
    if (chunk.pages.empty()) {
      HEPQ_RETURN_NOT_OK(Decompress(chunk.codec, compressed.data(),
                                    compressed.size(), chunk.encoded_size,
                                    &scratch->encoded));
      HEPQ_RETURN_NOT_OK(DecodeValues(leaf.physical, chunk.encoding,
                                      scratch->encoded.data(),
                                      scratch->encoded.size(), count,
                                      scratch->values.data()));
    } else {
      // Encodings restart per page (delta chains do not cross pages), so
      // paged chunks always decode page by page.
      size_t byte_offset = 0, value_offset = 0;
      for (const PageMeta& page : chunk.pages) {
        HEPQ_RETURN_NOT_OK(Decompress(chunk.codec,
                                      compressed.data() + byte_offset,
                                      page.compressed_size,
                                      page.encoded_size, &scratch->encoded));
        HEPQ_RETURN_NOT_OK(DecodeValues(
            leaf.physical, chunk.encoding, scratch->encoded.data(),
            scratch->encoded.size(), static_cast<size_t>(page.num_values),
            scratch->values.data() + value_offset * width));
        byte_offset += page.compressed_size;
        value_offset += static_cast<size_t>(page.num_values);
      }
      stats_.pages_read += chunk.pages.size();
    }
    stats_.encoded_bytes += chunk.encoded_size;
    stats_.decoded_bytes += count * width;
  } else {
    // Partial read: live pages verify their own checksums; dead pages skip
    // checksum + decompress + decode entirely and fail-fill their lanes.
    size_t byte_offset = 0, value_offset = 0;
    for (const PageMeta& page : chunk.pages) {
      const size_t n = static_cast<size_t>(page.num_values);
      if (page.has_stats &&
          ZoneDisjoint(page.min_value, page.max_value, *pred)) {
        FillLanes(leaf.physical, page.min_value, n,
                  scratch->values.data() + value_offset * width);
        stats_.pages_pruned += 1;
        stats_.lanes_pruned += page.num_values;
      } else {
        if (options_.validate_checksums &&
            Crc32(compressed.data() + byte_offset, page.compressed_size) !=
                page.crc32) {
          return Status::Corruption("checksum mismatch in page of chunk " +
                                    leaf.path);
        }
        HEPQ_RETURN_NOT_OK(Decompress(chunk.codec,
                                      compressed.data() + byte_offset,
                                      page.compressed_size,
                                      page.encoded_size, &scratch->encoded));
        HEPQ_RETURN_NOT_OK(DecodeValues(
            leaf.physical, chunk.encoding, scratch->encoded.data(),
            scratch->encoded.size(), n,
            scratch->values.data() + value_offset * width));
        stats_.pages_read += 1;
        stats_.encoded_bytes += page.encoded_size;
        stats_.decoded_bytes += n * width;
      }
      byte_offset += page.compressed_size;
      value_offset += n;
    }
  }

  stats_.storage_bytes += chunk.compressed_size;
  stats_.chunks_read += 1;
  stats_.values_read += chunk.num_values;
  leaf_stats.storage_bytes += chunk.compressed_size;
  leaf_stats.chunks_read += 1;
  leaf_stats.decoded_bytes += stats_.decoded_bytes - decoded_before;
  leaf_stats.pages_read += stats_.pages_read - pages_before;
  leaf_stats.pages_pruned += stats_.pages_pruned - pruned_before;
  if (span.active()) span.set_bytes(stats_.decoded_bytes - decoded_before);
  static auto& decoded =
      obs::metrics::GetCounter("hepq_fileio_decoded_bytes_total");
  static auto& pruned =
      obs::metrics::GetCounter("hepq_fileio_pages_pruned_total");
  decoded.Add(static_cast<int64_t>(stats_.decoded_bytes - decoded_before));
  pruned.Add(static_cast<int64_t>(stats_.pages_pruned - pruned_before));
  if (billed) BillLeaf(chunk, leaf);
  // Admit only complete clean decodes: a partial (fail-filled) buffer is
  // option-dependent, and an errored decode never reaches this line —
  // both properties the corruption-determinism argument relies on.
  if (chunk_cache != nullptr && dead_pages == 0) {
    chunk_cache->Insert(cache_key, scratch->values.data(),
                        scratch->values.size());
  }
  return Status::OK();
}

Status LaqReader::ReadProjectedLeaf(int group, int leaf_index, bool billed,
                                    ScratchBuffers* scratch,
                                    FilterState* filter) {
  if (filter != nullptr) {
    const auto it = filter->cache.find(leaf_index);
    if (it != filter->cache.end()) {
      // Pre-decoded by the late-materialization pass (unbilled there);
      // only the requested-column accounting remains to be added.
      scratch->values = std::move(it->second);
      filter->cache.erase(it);
      if (billed) {
        BillLeaf(meta().row_groups[static_cast<size_t>(group)]
                     .chunks[static_cast<size_t>(leaf_index)],
                 meta().layout[static_cast<size_t>(leaf_index)]);
      }
      return Status::OK();
    }
    for (const BoundScanPredicate& p : filter->per_row) {
      if (p.leaf_index == leaf_index) {
        return ReadLeaf(group, leaf_index, billed, scratch, &p);
      }
    }
  }
  return ReadLeaf(group, leaf_index, billed, scratch);
}

Status LaqReader::ReadLeafValues(int group_index, const std::string& leaf_path,
                                 ScratchBuffers* scratch) {
  if (group_index < 0 || group_index >= num_row_groups()) {
    return Status::OutOfRange("row group index out of range");
  }
  const int leaf = meta().LeafIndex(leaf_path);
  if (leaf < 0) {
    return Status::KeyError("no leaf column '" + leaf_path + "'");
  }
  return ReadLeaf(group_index, leaf, /*billed=*/true, scratch);
}

Status LaqReader::ResolveProjection(
    const std::vector<std::string>& projection,
    std::vector<ResolvedColumn>* out) const {
  const Schema& schema = meta().schema;
  std::map<int, ResolvedColumn> by_field;
  for (const std::string& entry : projection) {
    const size_t dot = entry.find('.');
    const std::string column_name =
        dot == std::string::npos ? entry : entry.substr(0, dot);
    const int field_index = schema.FieldIndex(column_name);
    if (field_index < 0) {
      return Status::KeyError("projection references unknown column '" +
                              column_name + "'");
    }
    ResolvedColumn& rc =
        by_field.emplace(field_index, ResolvedColumn{field_index, {}, false})
            .first->second;
    if (dot == std::string::npos) {
      rc.whole_column = true;
      continue;
    }
    const std::string member_name = entry.substr(dot + 1);
    const DataType& type = *schema.field(field_index).type;
    const DataType* struct_type = nullptr;
    if (type.id() == TypeId::kStruct) {
      struct_type = &type;
    } else if (type.id() == TypeId::kList &&
               type.item_type()->id() == TypeId::kStruct) {
      struct_type = type.item_type().get();
    } else {
      return Status::Invalid("column '" + column_name +
                             "' has no member '" + member_name + "'");
    }
    const int member = struct_type->FieldIndex(member_name);
    if (member < 0) {
      return Status::KeyError("no member '" + member_name + "' in column '" +
                              column_name + "'");
    }
    if (std::find(rc.member_indices.begin(), rc.member_indices.end(),
                  member) == rc.member_indices.end()) {
      rc.member_indices.push_back(member);
    }
  }
  out->clear();
  for (auto& [field_index, rc] : by_field) {
    std::sort(rc.member_indices.begin(), rc.member_indices.end());
    out->push_back(std::move(rc));
  }
  return Status::OK();
}

Result<RecordBatchPtr> LaqReader::ReadRowGroup(
    int group_index, const std::vector<std::string>& projection) {
  ScratchBuffers transient;
  return ReadRowGroup(group_index, projection, &transient);
}

Result<RecordBatchPtr> LaqReader::ReadRowGroup(
    int group_index, const std::vector<std::string>& projection,
    ScratchBuffers* scratch) {
  ScratchBuffers transient;
  if (scratch == nullptr) scratch = &transient;
  if (group_index < 0 || group_index >= num_row_groups()) {
    return Status::OutOfRange("row group index out of range");
  }
  return ReadRowGroupImpl(group_index, projection, scratch, nullptr);
}

Result<RecordBatchPtr> LaqReader::ReadRowGroupImpl(
    int group_index, const std::vector<std::string>& projection,
    ScratchBuffers* scratch, FilterState* filter) {
  std::vector<ResolvedColumn> resolved;
  HEPQ_RETURN_NOT_OK(ResolveProjection(projection, &resolved));
  if (resolved.empty()) {
    return Status::Invalid("empty projection");
  }
  const Schema& schema = meta().schema;
  const int64_t rows =
      meta().row_groups[static_cast<size_t>(group_index)].num_rows;
  // Every group reaches here at most once per scan (pruned groups return
  // before this point), so rows_pruned + rows_read == total rows.
  stats_.rows_read += static_cast<uint64_t>(rows);

  std::vector<Field> out_fields;
  std::vector<ArrayPtr> out_columns;

  for (const ResolvedColumn& rc : resolved) {
    const Field& field = schema.field(rc.field_index);
    const DataType& type = *field.type;

    // Determine which struct members to materialize and which the storage
    // layer is forced to read anyway.
    const DataType* struct_type = nullptr;
    if (type.id() == TypeId::kStruct) {
      struct_type = &type;
    } else if (type.id() == TypeId::kList &&
               type.item_type()->id() == TypeId::kStruct) {
      struct_type = type.item_type().get();
    }

    std::vector<int> selected = rc.member_indices;
    if (rc.whole_column && struct_type != nullptr) {
      selected.clear();
      for (int m = 0; m < struct_type->num_fields(); ++m) {
        selected.push_back(m);
      }
    }

    if (struct_type == nullptr) {
      // Primitive or list-of-primitive column: read its value leaf (and
      // lengths leaf for lists).
      if (type.is_primitive()) {
        const int leaf = meta().LeafIndex(field.name);
        HEPQ_RETURN_NOT_OK(ReadProjectedLeaf(group_index, leaf,
                                             /*billed=*/true, scratch,
                                             filter));
        ArrayPtr array;
        HEPQ_ASSIGN_OR_RETURN(
            array, BuildPrimitiveArray(type.id(), scratch->values,
                                       static_cast<size_t>(rows)));
        out_fields.push_back(field);
        out_columns.push_back(std::move(array));
      } else {
        const int lengths_leaf = meta().LeafIndex(field.name + "#lengths");
        const int values_leaf = meta().LeafIndex(field.name + ".item");
        // Lengths are read first and immediately folded into offsets, so
        // the values read below may reuse the same scratch buffer.
        HEPQ_RETURN_NOT_OK(ReadProjectedLeaf(group_index, lengths_leaf,
                                             /*billed=*/true, scratch,
                                             filter));
        std::vector<uint32_t> offsets;
        size_t num_items = 0;
        HEPQ_RETURN_NOT_OK(
            FoldLengthsToOffsets(scratch->values, rows, &offsets, &num_items));
        const ChunkMeta& values_chunk =
            meta().row_groups[static_cast<size_t>(group_index)]
                .chunks[static_cast<size_t>(values_leaf)];
        if (num_items != static_cast<size_t>(values_chunk.num_values)) {
          return Status::Corruption("list lengths of '" + field.name +
                                    "' do not sum to the values leaf count");
        }
        HEPQ_RETURN_NOT_OK(ReadProjectedLeaf(group_index, values_leaf,
                                             /*billed=*/true, scratch,
                                             filter));
        ArrayPtr child;
        HEPQ_ASSIGN_OR_RETURN(
            child, BuildPrimitiveArray(type.item_type()->id(), scratch->values,
                                       num_items));
        std::shared_ptr<ListArray> list;
        HEPQ_ASSIGN_OR_RETURN(list,
                              ListArray::Make(std::move(offsets), child));
        out_fields.push_back(field);
        out_columns.push_back(std::move(list));
      }
      continue;
    }

    // Struct-bearing column. Without struct projection pushdown the storage
    // layer reads every member leaf; only the selected ones are returned.
    std::vector<int> to_read = selected;
    if (!options_.struct_projection_pushdown) {
      to_read.clear();
      for (int m = 0; m < struct_type->num_fields(); ++m) {
        to_read.push_back(m);
      }
    }

    // Lengths/offsets for list columns.
    std::vector<uint32_t> offsets;
    size_t num_items = static_cast<size_t>(rows);
    if (type.id() == TypeId::kList) {
      const int lengths_leaf = meta().LeafIndex(field.name + "#lengths");
      HEPQ_RETURN_NOT_OK(ReadProjectedLeaf(group_index, lengths_leaf,
                                           /*billed=*/true, scratch,
                                           filter));
      HEPQ_RETURN_NOT_OK(
          FoldLengthsToOffsets(scratch->values, rows, &offsets, &num_items));
      // All member leaves of one list column carry the same value count
      // (enforced at Open); the decoded lengths must agree with it.
      if (!to_read.empty()) {
        const int first_leaf = meta().LeafIndex(
            field.name + "." +
            struct_type->fields()[static_cast<size_t>(to_read.front())].name);
        if (first_leaf >= 0) {
          const ChunkMeta& member_chunk =
              meta().row_groups[static_cast<size_t>(group_index)]
                  .chunks[static_cast<size_t>(first_leaf)];
          if (num_items != static_cast<size_t>(member_chunk.num_values)) {
            return Status::Corruption(
                "list lengths of '" + field.name +
                "' do not sum to the member leaf count");
          }
        }
      }
    }

    std::vector<Field> member_fields;
    std::vector<ArrayPtr> member_arrays;
    for (int m : to_read) {
      const Field& member = struct_type->fields()[static_cast<size_t>(m)];
      const int leaf = meta().LeafIndex(field.name + "." + member.name);
      if (leaf < 0) {
        return Status::Corruption("missing leaf for " + field.name + "." +
                                  member.name);
      }
      const bool wanted =
          std::find(selected.begin(), selected.end(), m) != selected.end();
      HEPQ_RETURN_NOT_OK(ReadProjectedLeaf(group_index, leaf,
                                           /*billed=*/wanted, scratch,
                                           filter));
      if (!wanted) continue;  // physically read, logically discarded
      ArrayPtr array;
      HEPQ_ASSIGN_OR_RETURN(
          array, BuildPrimitiveArray(member.type->id(), scratch->values,
                                     num_items));
      member_fields.push_back(member);
      member_arrays.push_back(std::move(array));
    }
    std::shared_ptr<StructArray> struct_array;
    HEPQ_ASSIGN_OR_RETURN(struct_array,
                          StructArray::Make(std::move(member_fields),
                                            std::move(member_arrays)));
    if (type.id() == TypeId::kList) {
      std::shared_ptr<ListArray> list;
      HEPQ_ASSIGN_OR_RETURN(
          list, ListArray::Make(std::move(offsets), struct_array));
      out_fields.push_back(Field{field.name, list->type()});
      out_columns.push_back(std::move(list));
    } else {
      out_fields.push_back(Field{field.name, struct_array->type()});
      out_columns.push_back(std::move(struct_array));
    }
  }

  auto out_schema = std::make_shared<Schema>(std::move(out_fields));
  std::shared_ptr<RecordBatch> batch;
  HEPQ_ASSIGN_OR_RETURN(batch,
                        RecordBatch::Make(out_schema, std::move(out_columns)));
  return RecordBatchPtr(batch);
}

Result<RecordBatchPtr> LaqReader::ReadRowGroup(int group_index) {
  std::vector<std::string> all;
  for (const Field& f : meta().schema.fields()) all.push_back(f.name);
  return ReadRowGroup(group_index, all);
}

Result<RecordBatchPtr> LaqReader::ReadRowGroupFiltered(
    int group_index, const std::vector<std::string>& projection,
    const ScanPredicateSet& predicates, ScratchBuffers* scratch) {
  if (!options_.scan_pushdown || predicates.empty()) {
    return ReadRowGroup(group_index, projection, scratch);
  }
  ScratchBuffers transient;
  if (scratch == nullptr) scratch = &transient;
  if (group_index < 0 || group_index >= num_row_groups()) {
    return Status::OutOfRange("row group index out of range");
  }
  const RowGroupMeta& rg =
      meta().row_groups[static_cast<size_t>(group_index)];
  const std::vector<BoundScanPredicate> bound =
      BindScanPredicates(predicates, meta());

  // Level 1: row-group pruning on the chunk zone maps. Any one violated
  // necessary condition rules out every row of the group; nothing is read.
  {
    obs::ScopedSpan zone_span("group_zone_check", obs::Stage::kPagePrune);
    if (zone_span.active()) zone_span.set_group(group_index);
    for (const BoundScanPredicate& b : bound) {
      const ChunkMeta& chunk = rg.chunks[static_cast<size_t>(b.leaf_index)];
      if (chunk.has_stats &&
          ZoneDisjoint(chunk.min_value, chunk.max_value, b)) {
        stats_.groups_pruned += 1;
        stats_.rows_pruned += static_cast<uint64_t>(rg.num_rows);
        return RecordBatchPtr();
      }
    }
    // Union min-counts: a row's combined list size is bounded above by
    // the sum of the per-leaf zone maxima, so if even that bound misses
    // the threshold, no row in the group can pass.
    for (const BoundSumPredicate& s :
         BindSumPredicates(predicates, meta())) {
      double max_total = 0.0;
      bool all_stats = true;
      for (const int leaf : s.leaf_indices) {
        const ChunkMeta& chunk = rg.chunks[static_cast<size_t>(leaf)];
        if (!chunk.has_stats) {
          all_stats = false;
          break;
        }
        max_total += chunk.max_value;
      }
      if (all_stats && max_total < static_cast<double>(s.min_total)) {
        stats_.groups_pruned += 1;
        stats_.rows_pruned += static_cast<uint64_t>(rg.num_rows);
        return RecordBatchPtr();
      }
    }
  }

  FilterState filter;
  for (const BoundScanPredicate& b : bound) {
    if (b.per_row) filter.per_row.push_back(b);
  }

  // Level 3 (late materialization): decode the predicate-bearing leaves
  // first — with level-2 page skipping applied — and evaluate the per-row
  // conjunction over them. A group with no surviving row is dead before
  // any other projected column is touched. Fail-filled lanes of skipped
  // pages fall outside their own predicate's range, so they can never
  // resurrect a row here.
  if (options_.late_materialization && !filter.per_row.empty()) {
    obs::ScopedSpan latemat_span("late_materialization",
                                 obs::Stage::kLateMat);
    if (latemat_span.active()) latemat_span.set_group(group_index);
    const size_t rows = static_cast<size_t>(rg.num_rows);
    std::vector<uint8_t> alive(rows, 1);
    for (const BoundScanPredicate& p : filter.per_row) {
      HEPQ_RETURN_NOT_OK(ReadLeaf(group_index, p.leaf_index,
                                  /*billed=*/false, scratch, &p));
      // Per-row leaves hold exactly num_rows values (validated at Open).
      MarkDead(meta().layout[static_cast<size_t>(p.leaf_index)].physical,
               scratch->values, rows, p, alive.data());
      filter.cache[p.leaf_index] = std::move(scratch->values);
    }
    if (std::find(alive.begin(), alive.end(), uint8_t{1}) == alive.end()) {
      stats_.groups_pruned += 1;
      stats_.rows_pruned += static_cast<uint64_t>(rg.num_rows);
      return RecordBatchPtr();
    }
  }

  return ReadRowGroupImpl(group_index, projection, scratch, &filter);
}

Result<std::vector<int>> LaqReader::SelectRowGroups(
    const std::string& leaf_path, double min_value,
    double max_value) const {
  const int leaf = meta().LeafIndex(leaf_path);
  if (leaf < 0) {
    return Status::KeyError("no leaf column '" + leaf_path + "'");
  }
  if (min_value > max_value) {
    return Status::Invalid("empty statistics range");
  }
  std::vector<int> groups;
  for (int g = 0; g < num_row_groups(); ++g) {
    const ChunkMeta& chunk =
        meta().row_groups[static_cast<size_t>(g)]
            .chunks[static_cast<size_t>(leaf)];
    if (!chunk.has_stats || (chunk.min_value <= max_value &&
                             chunk.max_value >= min_value)) {
      groups.push_back(g);
    }
  }
  return groups;
}

Result<uint64_t> LaqReader::IdealBytesForProjection(
    const std::vector<std::string>& projection) const {
  std::vector<ResolvedColumn> resolved;
  HEPQ_RETURN_NOT_OK(ResolveProjection(projection, &resolved));
  uint64_t total = 0;
  for (const RowGroupMeta& rg : meta().row_groups) {
    for (const ResolvedColumn& rc : resolved) {
      const Field& field = meta().schema.field(rc.field_index);
      const DataType& type = *field.type;
      auto leaf_bytes = [&](const std::string& path) -> uint64_t {
        const int leaf = meta().LeafIndex(path);
        if (leaf < 0) return 0;
        const ChunkMeta& c = rg.chunks[static_cast<size_t>(leaf)];
        const LeafDesc& d = meta().layout[static_cast<size_t>(leaf)];
        return c.num_values * static_cast<uint64_t>(PrimitiveWidth(d.physical));
      };
      if (type.is_primitive()) {
        total += leaf_bytes(field.name);
        continue;
      }
      const DataType* struct_type = nullptr;
      if (type.id() == TypeId::kStruct) {
        struct_type = &type;
      } else {
        total += leaf_bytes(field.name + "#lengths");
        if (type.item_type()->is_primitive()) {
          total += leaf_bytes(field.name + ".item");
          continue;
        }
        struct_type = type.item_type().get();
      }
      std::vector<int> selected = rc.member_indices;
      if (rc.whole_column) {
        selected.clear();
        for (int m = 0; m < struct_type->num_fields(); ++m) {
          selected.push_back(m);
        }
      }
      for (int m : selected) {
        total += leaf_bytes(field.name + "." +
                            struct_type->fields()[static_cast<size_t>(m)].name);
      }
    }
  }
  return total;
}

}  // namespace hepq
