#include "fileio/format.h"

#include "fileio/varint.h"

namespace hepq {

namespace {

Status AppendStructLeaves(const std::string& prefix, const DataType& type,
                          int field_index, std::vector<LeafDesc>* out) {
  for (int m = 0; m < type.num_fields(); ++m) {
    const Field& member = type.fields()[static_cast<size_t>(m)];
    if (!member.type->is_primitive()) {
      return Status::NotImplemented(
          "nested type inside struct not supported: " + prefix + "." +
          member.name);
    }
    out->push_back(LeafDesc{prefix + "." + member.name, member.type->id(),
                            field_index, m, false});
  }
  return Status::OK();
}

void SerializeType(const DataType& type, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(type.id()));
  if (type.is_primitive()) return;
  PutVarint(out, static_cast<uint64_t>(type.num_fields()));
  for (const Field& f : type.fields()) {
    PutString(out, f.name);
    SerializeType(*f.type, out);
  }
}

Status ParseType(ByteReader* reader, DataTypePtr* out, int depth = 0) {
  if (depth > 8) return Status::Corruption("type nesting too deep");
  uint8_t id_byte = 0;
  HEPQ_RETURN_NOT_OK(reader->GetBytes(&id_byte, 1));
  if (id_byte > static_cast<uint8_t>(TypeId::kStruct)) {
    return Status::Corruption("invalid type id");
  }
  const TypeId id = static_cast<TypeId>(id_byte);
  switch (id) {
    case TypeId::kFloat32:
      *out = DataType::Float32();
      return Status::OK();
    case TypeId::kFloat64:
      *out = DataType::Float64();
      return Status::OK();
    case TypeId::kInt32:
      *out = DataType::Int32();
      return Status::OK();
    case TypeId::kInt64:
      *out = DataType::Int64();
      return Status::OK();
    case TypeId::kBool:
      *out = DataType::Bool();
      return Status::OK();
    case TypeId::kList:
    case TypeId::kStruct: {
      uint64_t n = 0;
      HEPQ_RETURN_NOT_OK(reader->GetVarint(&n));
      if (n == 0 || n > 4096) return Status::Corruption("bad child count");
      std::vector<Field> fields;
      fields.reserve(static_cast<size_t>(n));
      for (uint64_t i = 0; i < n; ++i) {
        Field f;
        HEPQ_RETURN_NOT_OK(reader->GetString(&f.name));
        HEPQ_RETURN_NOT_OK(ParseType(reader, &f.type, depth + 1));
        fields.push_back(std::move(f));
      }
      if (id == TypeId::kList) {
        if (fields.size() != 1) {
          return Status::Corruption("list type must have one child");
        }
        *out = DataType::List(fields[0].type);
      } else {
        *out = DataType::Struct(std::move(fields));
      }
      return Status::OK();
    }
  }
  return Status::Corruption("unreachable type id");
}

}  // namespace

Result<std::vector<LeafDesc>> ComputeLeafLayout(const Schema& schema) {
  std::vector<LeafDesc> out;
  for (int i = 0; i < schema.num_fields(); ++i) {
    const Field& field = schema.field(i);
    const DataType& type = *field.type;
    if (type.is_primitive()) {
      out.push_back(LeafDesc{field.name, type.id(), i, -1, false});
    } else if (type.id() == TypeId::kStruct) {
      HEPQ_RETURN_NOT_OK(AppendStructLeaves(field.name, type, i, &out));
    } else {  // list
      const DataType& item = *type.item_type();
      out.push_back(
          LeafDesc{field.name + "#lengths", TypeId::kInt32, i, -1, true});
      if (item.is_primitive()) {
        out.push_back(LeafDesc{field.name + ".item", item.id(), i, -1, false});
      } else if (item.id() == TypeId::kStruct) {
        HEPQ_RETURN_NOT_OK(AppendStructLeaves(field.name, item, i, &out));
      } else {
        return Status::NotImplemented("list of " + item.ToString() +
                                      " not supported");
      }
    }
  }
  return out;
}

int FileMetadata::LeafIndex(const std::string& path) const {
  for (size_t i = 0; i < layout.size(); ++i) {
    if (layout[i].path == path) return static_cast<int>(i);
  }
  return -1;
}

void SerializeFileMetadata(const FileMetadata& meta,
                           std::vector<uint8_t>* out) {
  out->clear();
  PutFixed32(out, meta.version);
  PutVarint(out, static_cast<uint64_t>(meta.schema.num_fields()));
  for (const Field& f : meta.schema.fields()) {
    PutString(out, f.name);
    SerializeType(*f.type, out);
  }
  PutVarint(out, static_cast<uint64_t>(meta.total_rows));
  PutVarint(out, meta.row_groups.size());
  for (const RowGroupMeta& rg : meta.row_groups) {
    PutVarint(out, static_cast<uint64_t>(rg.num_rows));
    PutVarint(out, rg.chunks.size());
    for (const ChunkMeta& c : rg.chunks) {
      PutVarint(out, c.file_offset);
      PutVarint(out, c.compressed_size);
      PutVarint(out, c.encoded_size);
      PutVarint(out, c.num_values);
      out->push_back(static_cast<uint8_t>(c.encoding));
      out->push_back(static_cast<uint8_t>(c.codec));
      PutFixed32(out, c.crc32);
      out->push_back(c.has_stats ? 1 : 0);
      if (c.has_stats) {
        PutDouble(out, c.min_value);
        PutDouble(out, c.max_value);
      }
      PutVarint(out, c.pages.size());
      for (const PageMeta& p : c.pages) {
        PutVarint(out, p.num_values);
        PutVarint(out, p.compressed_size);
        PutVarint(out, p.encoded_size);
        PutFixed32(out, p.crc32);
        out->push_back(p.has_stats ? 1 : 0);
        if (p.has_stats) {
          PutDouble(out, p.min_value);
          PutDouble(out, p.max_value);
        }
      }
    }
  }
}

Status ParseFileMetadata(const uint8_t* data, size_t size,
                         FileMetadata* out) {
  ByteReader reader(data, size);
  HEPQ_RETURN_NOT_OK(reader.GetFixed32(&out->version));
  if (out->version < 1 || out->version > kLaqVersion) {
    return Status::Corruption("unsupported laq version");
  }
  uint64_t num_fields = 0;
  HEPQ_RETURN_NOT_OK(reader.GetVarint(&num_fields));
  if (num_fields > 65536) return Status::Corruption("bad field count");
  std::vector<Field> fields;
  fields.reserve(static_cast<size_t>(num_fields));
  for (uint64_t i = 0; i < num_fields; ++i) {
    Field f;
    HEPQ_RETURN_NOT_OK(reader.GetString(&f.name));
    HEPQ_RETURN_NOT_OK(ParseType(&reader, &f.type));
    fields.push_back(std::move(f));
  }
  out->schema = Schema(std::move(fields));
  HEPQ_ASSIGN_OR_RETURN(out->layout, ComputeLeafLayout(out->schema));

  uint64_t total_rows = 0;
  HEPQ_RETURN_NOT_OK(reader.GetVarint(&total_rows));
  out->total_rows = static_cast<int64_t>(total_rows);

  uint64_t num_groups = 0;
  HEPQ_RETURN_NOT_OK(reader.GetVarint(&num_groups));
  if (num_groups > (1u << 24)) return Status::Corruption("bad group count");
  out->row_groups.clear();
  out->row_groups.reserve(static_cast<size_t>(num_groups));
  for (uint64_t g = 0; g < num_groups; ++g) {
    RowGroupMeta rg;
    uint64_t rows = 0, num_chunks = 0;
    HEPQ_RETURN_NOT_OK(reader.GetVarint(&rows));
    rg.num_rows = static_cast<int64_t>(rows);
    HEPQ_RETURN_NOT_OK(reader.GetVarint(&num_chunks));
    if (num_chunks != out->layout.size()) {
      return Status::Corruption("chunk count does not match leaf layout");
    }
    rg.chunks.reserve(static_cast<size_t>(num_chunks));
    for (uint64_t c = 0; c < num_chunks; ++c) {
      ChunkMeta cm;
      HEPQ_RETURN_NOT_OK(reader.GetVarint(&cm.file_offset));
      HEPQ_RETURN_NOT_OK(reader.GetVarint(&cm.compressed_size));
      HEPQ_RETURN_NOT_OK(reader.GetVarint(&cm.encoded_size));
      HEPQ_RETURN_NOT_OK(reader.GetVarint(&cm.num_values));
      uint8_t enc = 0, codec = 0, has_stats = 0;
      HEPQ_RETURN_NOT_OK(reader.GetBytes(&enc, 1));
      HEPQ_RETURN_NOT_OK(reader.GetBytes(&codec, 1));
      if (enc > static_cast<uint8_t>(Encoding::kFor) ||
          codec > static_cast<uint8_t>(Codec::kLz)) {
        return Status::Corruption("invalid encoding or codec id");
      }
      cm.encoding = static_cast<Encoding>(enc);
      cm.codec = static_cast<Codec>(codec);
      HEPQ_RETURN_NOT_OK(reader.GetFixed32(&cm.crc32));
      HEPQ_RETURN_NOT_OK(reader.GetBytes(&has_stats, 1));
      cm.has_stats = has_stats != 0;
      if (cm.has_stats) {
        HEPQ_RETURN_NOT_OK(reader.GetDouble(&cm.min_value));
        HEPQ_RETURN_NOT_OK(reader.GetDouble(&cm.max_value));
      }
      if (out->version >= 2) {
        uint64_t num_pages = 0;
        HEPQ_RETURN_NOT_OK(reader.GetVarint(&num_pages));
        // A page holds at least one value, so a chunk can never have more
        // pages than values; the cap also bounds the allocation below.
        if (num_pages > cm.num_values || num_pages > (1u << 24)) {
          return Status::Corruption("bad page count");
        }
        cm.pages.reserve(static_cast<size_t>(num_pages));
        for (uint64_t p = 0; p < num_pages; ++p) {
          PageMeta pm;
          HEPQ_RETURN_NOT_OK(reader.GetVarint(&pm.num_values));
          HEPQ_RETURN_NOT_OK(reader.GetVarint(&pm.compressed_size));
          HEPQ_RETURN_NOT_OK(reader.GetVarint(&pm.encoded_size));
          HEPQ_RETURN_NOT_OK(reader.GetFixed32(&pm.crc32));
          uint8_t page_stats = 0;
          HEPQ_RETURN_NOT_OK(reader.GetBytes(&page_stats, 1));
          pm.has_stats = page_stats != 0;
          if (pm.has_stats) {
            HEPQ_RETURN_NOT_OK(reader.GetDouble(&pm.min_value));
            HEPQ_RETURN_NOT_OK(reader.GetDouble(&pm.max_value));
          }
          cm.pages.push_back(pm);
        }
      }
      rg.chunks.push_back(cm);
    }
    out->row_groups.push_back(std::move(rg));
  }
  if (!reader.AtEnd()) return Status::Corruption("trailing footer bytes");
  return Status::OK();
}

namespace {

std::string ChunkContext(const FileMetadata& meta, size_t group,
                         size_t leaf) {
  return " (row group " + std::to_string(group) + ", leaf '" +
         meta.layout[leaf].path + "')";
}

/// Worst-case bytes per value of the varint encodings: RLE emits per run a
/// run-length varint (<= 10 bytes) plus a zig-zag value (<= 10 bytes) and a
/// run covers >= 1 value; delta emits one zig-zag varint (1..10 bytes) per
/// value.
constexpr uint64_t kMaxRleBytesPerValue = 20;
constexpr uint64_t kMaxDeltaBytesPerValue = 10;
/// Dict worst case (all values distinct): <= 10-byte dictionary entry plus
/// an 8-byte index per value, with the count varint amortized; a one-value
/// page is 1 + 10 = 11 bytes, so 20/value covers every page size. FOR
/// worst case is the <= 10-byte base plus width byte plus 8 packed bytes
/// per value, likewise covered by 20/value down to one-value pages.
constexpr uint64_t kMaxDictBytesPerValue = 20;
constexpr uint64_t kMaxForBytesPerValue = 20;

}  // namespace

Status ValidateFileMetadata(const FileMetadata& meta, uint64_t data_begin,
                            uint64_t data_end,
                            uint64_t max_chunk_decoded_bytes) {
  if (data_end < data_begin) {
    return Status::Corruption("file data region is inverted");
  }
  const uint64_t data_bytes = data_end - data_begin;
  if (meta.total_rows < 0) return Status::Corruption("negative total_rows");
  uint64_t sum_rows = 0;
  uint64_t total_storage = 0;
  for (size_t g = 0; g < meta.row_groups.size(); ++g) {
    const RowGroupMeta& rg = meta.row_groups[g];
    if (rg.num_rows < 0) {
      return Status::Corruption("negative row count in row group " +
                                std::to_string(g));
    }
    const uint64_t rows = static_cast<uint64_t>(rg.num_rows);
    sum_rows += rows;
    if (sum_rows < rows ||
        sum_rows > static_cast<uint64_t>(meta.total_rows)) {
      return Status::Corruption("row group rows exceed total_rows");
    }
    if (rg.chunks.size() != meta.layout.size()) {
      return Status::Corruption("chunk count does not match leaf layout");
    }
    // Item leaves of one list column must agree on their value count; the
    // first one seen per field sets the expectation.
    std::vector<int64_t> field_item_count(
        static_cast<size_t>(meta.schema.num_fields()), -1);
    for (size_t c = 0; c < rg.chunks.size(); ++c) {
      const ChunkMeta& chunk = rg.chunks[c];
      const LeafDesc& leaf = meta.layout[c];
      const uint64_t width =
          static_cast<uint64_t>(PrimitiveWidth(leaf.physical));
      if (width == 0) {
        return Status::Corruption("leaf has no physical width" +
                                  ChunkContext(meta, g, c));
      }
      // Allocation cap first: everything below may multiply num_values.
      if (chunk.num_values > max_chunk_decoded_bytes / width) {
        return Status::Corruption("chunk decoded size exceeds limit" +
                                  ChunkContext(meta, g, c));
      }
      // File bounds (subtraction order avoids uint64 overflow).
      if (chunk.file_offset < data_begin || chunk.file_offset > data_end ||
          chunk.compressed_size > data_end - chunk.file_offset) {
        return Status::Corruption("chunk extends past data region" +
                                  ChunkContext(meta, g, c));
      }
      total_storage += chunk.compressed_size;
      if (total_storage > data_bytes) {
        return Status::Corruption(
            "chunks claim more bytes than the file holds" +
            ChunkContext(meta, g, c));
      }
      // Value-count consistency with the schema shape.
      const DataType& field_type =
          *meta.schema.field(leaf.field_index).type;
      const bool per_row =
          leaf.is_lengths || field_type.id() != TypeId::kList;
      if (per_row) {
        if (chunk.num_values != rows) {
          return Status::Corruption("per-row leaf value count != num_rows" +
                                    ChunkContext(meta, g, c));
        }
      } else {
        int64_t& expected =
            field_item_count[static_cast<size_t>(leaf.field_index)];
        if (expected < 0) {
          expected = static_cast<int64_t>(chunk.num_values);
        } else if (static_cast<uint64_t>(expected) != chunk.num_values) {
          return Status::Corruption(
              "list item leaves disagree on value count" +
              ChunkContext(meta, g, c));
        }
      }
      // Encoding legality + encoded_size consistency.
      const bool integer_leaf = leaf.physical == TypeId::kInt32 ||
                                leaf.physical == TypeId::kInt64;
      switch (chunk.encoding) {
        case Encoding::kPlain:
          if (chunk.encoded_size != chunk.num_values * width) {
            return Status::Corruption("plain encoded_size mismatch" +
                                      ChunkContext(meta, g, c));
          }
          break;
        case Encoding::kBitPack:
          if (leaf.physical != TypeId::kBool) {
            return Status::Corruption("bitpack on non-bool leaf" +
                                      ChunkContext(meta, g, c));
          }
          if (chunk.encoded_size != (chunk.num_values + 7) / 8) {
            return Status::Corruption("bitpack encoded_size mismatch" +
                                      ChunkContext(meta, g, c));
          }
          break;
        case Encoding::kRleVarint:
          if (!integer_leaf) {
            return Status::Corruption("rle on non-integer leaf" +
                                      ChunkContext(meta, g, c));
          }
          if ((chunk.num_values == 0) != (chunk.encoded_size == 0) ||
              chunk.encoded_size > chunk.num_values * kMaxRleBytesPerValue) {
            return Status::Corruption("rle encoded_size out of bounds" +
                                      ChunkContext(meta, g, c));
          }
          break;
        case Encoding::kDeltaVarint:
          if (!integer_leaf) {
            return Status::Corruption("delta on non-integer leaf" +
                                      ChunkContext(meta, g, c));
          }
          if (chunk.encoded_size < chunk.num_values ||
              chunk.encoded_size >
                  chunk.num_values * kMaxDeltaBytesPerValue) {
            return Status::Corruption("delta encoded_size out of bounds" +
                                      ChunkContext(meta, g, c));
          }
          break;
        case Encoding::kDict:
          if (!integer_leaf) {
            return Status::Corruption("dict on non-integer leaf" +
                                      ChunkContext(meta, g, c));
          }
          // The writer never dict-encodes an empty chunk (ChooseEncoding
          // returns plain for count 0), and every page carries at least the
          // dictionary-count varint.
          if (chunk.num_values == 0 || chunk.encoded_size == 0 ||
              chunk.encoded_size > chunk.num_values * kMaxDictBytesPerValue) {
            return Status::Corruption("dict encoded_size out of bounds" +
                                      ChunkContext(meta, g, c));
          }
          break;
        case Encoding::kFor:
          if (!integer_leaf) {
            return Status::Corruption("for on non-integer leaf" +
                                      ChunkContext(meta, g, c));
          }
          // Every FOR page carries at least a base varint and a width byte.
          if (chunk.num_values == 0 || chunk.encoded_size < 2 ||
              chunk.encoded_size > chunk.num_values * kMaxForBytesPerValue) {
            return Status::Corruption("for encoded_size out of bounds" +
                                      ChunkContext(meta, g, c));
          }
          break;
      }
      // Codec invariants the writer guarantees.
      switch (chunk.codec) {
        case Codec::kNone:
          if (chunk.compressed_size != chunk.encoded_size) {
            return Status::Corruption("uncompressed chunk size mismatch" +
                                      ChunkContext(meta, g, c));
          }
          break;
        case Codec::kLz:
          if (chunk.encoded_size == 0 ? chunk.compressed_size != 0
                                      : (chunk.compressed_size == 0 ||
                                         chunk.compressed_size >=
                                             chunk.encoded_size)) {
            return Status::Corruption("lz chunk size out of bounds" +
                                      ChunkContext(meta, g, c));
          }
          break;
      }
      if (chunk.has_stats && chunk.min_value > chunk.max_value) {
        return Status::Corruption("inverted min/max statistics" +
                                  ChunkContext(meta, g, c));
      }
      // Page partition invariants. Pages are optional (version-1 files and
      // hand-built footers have none); when present their per-page sizes
      // must tile the chunk exactly, because the reader seeks inside the
      // chunk's compressed bytes by summing them.
      if (!chunk.pages.empty()) {
        uint64_t sum_values = 0, sum_compressed = 0, sum_encoded = 0;
        for (size_t p = 0; p < chunk.pages.size(); ++p) {
          const PageMeta& page = chunk.pages[p];
          const bool final_page = p + 1 == chunk.pages.size();
          if (page.num_values == 0) {
            return Status::Corruption("empty page" + ChunkContext(meta, g, c));
          }
          sum_values += page.num_values;
          sum_compressed += page.compressed_size;
          sum_encoded += page.encoded_size;
          if (sum_values > chunk.num_values ||
              sum_compressed > chunk.compressed_size ||
              sum_encoded > chunk.encoded_size) {
            return Status::Corruption("page sizes exceed chunk totals" +
                                      ChunkContext(meta, g, c));
          }
          // Per-page encoding bounds mirror the chunk-level ones: each page
          // is an independent encoding unit.
          switch (chunk.encoding) {
            case Encoding::kPlain:
              if (page.encoded_size != page.num_values * width) {
                return Status::Corruption("plain page encoded_size mismatch" +
                                          ChunkContext(meta, g, c));
              }
              break;
            case Encoding::kBitPack:
              // Non-final pages must pack whole bytes, otherwise the
              // per-page (n+7)/8 sizes would not sum to the chunk's.
              if (!final_page && page.num_values % 8 != 0) {
                return Status::Corruption("ragged bitpack page" +
                                          ChunkContext(meta, g, c));
              }
              if (page.encoded_size != (page.num_values + 7) / 8) {
                return Status::Corruption(
                    "bitpack page encoded_size mismatch" +
                    ChunkContext(meta, g, c));
              }
              break;
            case Encoding::kRleVarint:
              if (page.encoded_size == 0 ||
                  page.encoded_size >
                      page.num_values * kMaxRleBytesPerValue) {
                return Status::Corruption("rle page encoded_size out of "
                                          "bounds" +
                                          ChunkContext(meta, g, c));
              }
              break;
            case Encoding::kDeltaVarint:
              if (page.encoded_size < page.num_values ||
                  page.encoded_size >
                      page.num_values * kMaxDeltaBytesPerValue) {
                return Status::Corruption("delta page encoded_size out of "
                                          "bounds" +
                                          ChunkContext(meta, g, c));
              }
              break;
            case Encoding::kDict:
              if (page.encoded_size == 0 ||
                  page.encoded_size >
                      page.num_values * kMaxDictBytesPerValue) {
                return Status::Corruption("dict page encoded_size out of "
                                          "bounds" +
                                          ChunkContext(meta, g, c));
              }
              break;
            case Encoding::kFor:
              if (page.encoded_size < 2 ||
                  page.encoded_size >
                      page.num_values * kMaxForBytesPerValue) {
                return Status::Corruption("for page encoded_size out of "
                                          "bounds" +
                                          ChunkContext(meta, g, c));
              }
              break;
          }
          switch (chunk.codec) {
            case Codec::kNone:
              if (page.compressed_size != page.encoded_size) {
                return Status::Corruption("uncompressed page size mismatch" +
                                          ChunkContext(meta, g, c));
              }
              break;
            case Codec::kLz:
              if (page.compressed_size == 0 ||
                  page.compressed_size >= page.encoded_size) {
                return Status::Corruption("lz page size out of bounds" +
                                          ChunkContext(meta, g, c));
              }
              break;
          }
          if (page.has_stats && page.min_value > page.max_value) {
            return Status::Corruption("inverted page min/max statistics" +
                                      ChunkContext(meta, g, c));
          }
        }
        if (sum_values != chunk.num_values ||
            sum_compressed != chunk.compressed_size ||
            sum_encoded != chunk.encoded_size) {
          return Status::Corruption("page sizes do not sum to chunk totals" +
                                    ChunkContext(meta, g, c));
        }
      }
    }
  }
  if (sum_rows != static_cast<uint64_t>(meta.total_rows)) {
    return Status::Corruption("row group rows do not sum to total_rows");
  }
  return Status::OK();
}

}  // namespace hepq
