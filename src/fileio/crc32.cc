#include "fileio/crc32.h"

namespace hepq {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t length, uint32_t seed) {
  static const Crc32Table& table = *new Crc32Table();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < length; ++i) {
    c = table.entries[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace hepq
