#ifndef HEPQUERY_FILEIO_READER_H_
#define HEPQUERY_FILEIO_READER_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "columnar/array.h"
#include "fileio/format.h"
#include "fileio/predicate.h"

namespace hepq {

/// Per-leaf-column slice of the IO accounting: what `laq_inspect --pages`
/// shows statically, measured on a live run. Merged by `path` when stats
/// from several readers are added together.
struct LeafScanStats {
  std::string path;
  uint64_t storage_bytes = 0;
  uint64_t decoded_bytes = 0;
  uint64_t chunks_read = 0;
  uint64_t pages_read = 0;
  uint64_t pages_pruned = 0;
  /// Decoded bytes served from the process-wide chunk cache instead of
  /// storage (such chunks contribute nothing to the counters above).
  uint64_t cache_bytes_served = 0;

  void AddCounters(const LeafScanStats& o) {
    storage_bytes += o.storage_bytes;
    decoded_bytes += o.decoded_bytes;
    chunks_read += o.chunks_read;
    pages_read += o.pages_read;
    pages_pruned += o.pages_pruned;
    cache_bytes_served += o.cache_bytes_served;
  }
};

/// IO accounting of a reader, the raw material for the paper's Figure 4b
/// (bytes scanned per event) and for the two QaaS pricing models.
struct ScanStats {
  /// Bytes actually fetched from storage (compressed). This is what Athena
  /// bills ("bytes actually read from storage").
  uint64_t storage_bytes = 0;
  /// Bytes after decompression/decoding.
  uint64_t encoded_bytes = 0;
  /// BigQuery's accounting: number of entries of each *requested* value
  /// column times 8 bytes — the engine exposes only 64-bit types to the
  /// user even when the file stores 32-bit values, hence the 2x inflation
  /// the paper observes.
  uint64_t logical_bytes_bq = 0;
  /// Ideal bytes: entries of requested value leaves times their physical
  /// width (4 B for most), the "ideal" line of Figure 4b.
  uint64_t ideal_bytes = 0;
  uint64_t chunks_read = 0;
  uint64_t values_read = 0;
  /// Bytes actually decoded to physical values (num_values * width of
  /// every page or chunk that went through the decoder). This is the
  /// counter predicate pushdown + late materialization drives down:
  /// skipped pages and dead row groups decode nothing.
  uint64_t decoded_bytes = 0;
  uint64_t pages_read = 0;
  uint64_t pages_pruned = 0;
  /// Rows of row groups skipped whole (group zone map, or a late-
  /// materialization pre-pass that proved the group dead). Group-level
  /// only — page skips never touch it — so the invariant
  /// `rows_pruned + rows_read == total rows` holds exactly per scan.
  /// (Before PR 7 this also accrued per-leaf page-skip lanes, which
  /// double-counted rows when a dead group's pre-pass skipped pages.)
  uint64_t rows_pruned = 0;
  /// Rows of row groups that reached the decoder, counted once per
  /// ReadRowGroup/ReadRowGroupFiltered call even if every predicate
  /// leaf's pages were skipped.
  uint64_t rows_read = 0;
  /// Per-leaf value lanes of pages skipped by the page zone map
  /// (diagnostic; one row may count once per predicate leaf).
  uint64_t lanes_pruned = 0;
  uint64_t groups_pruned = 0;
  /// Footer/metadata cache outcome of this reader's Open (at most one of
  /// the two is 1 per reader; totals accumulate across readers).
  uint64_t footer_cache_hits = 0;
  uint64_t footer_cache_misses = 0;
  /// Decoded-chunk cache outcomes. A hit serves the full decoded chunk
  /// without touching storage, so it adds to none of storage/encoded/
  /// decoded_bytes; `cache_bytes_served` carries its byte volume instead.
  /// The reconciliation `decoded_bytes + cache_bytes_served == bytes
  /// consumed by the query` holds by construction.
  uint64_t chunk_cache_hits = 0;
  uint64_t chunk_cache_misses = 0;
  uint64_t cache_bytes_served = 0;
  /// Per-leaf breakdown of storage/decoded bytes and page pruning. A
  /// LaqReader sizes this once at Open (one slot per leaf of the file's
  /// layout) so updating it on the decode path is index-addressed and
  /// allocation-free.
  std::vector<LeafScanStats> leaves;

  /// Zeroes every counter. Leaf slots keep their paths (counters zeroed
  /// in place) so a reset on a warmed-up reader stays allocation-free —
  /// the micro benchmarks assert zero allocations per decoded group.
  void Reset() {
    std::vector<LeafScanStats> kept = std::move(leaves);
    for (LeafScanStats& leaf : kept) {
      leaf.storage_bytes = 0;
      leaf.decoded_bytes = 0;
      leaf.chunks_read = 0;
      leaf.pages_read = 0;
      leaf.pages_pruned = 0;
      leaf.cache_bytes_served = 0;
    }
    *this = ScanStats{};
    leaves = std::move(kept);
  }

  /// Adds `o`, merging per-leaf entries by path (readers over the same
  /// file produce identically ordered slots, so the merge is linear).
  void Add(const ScanStats& o) {
    storage_bytes += o.storage_bytes;
    encoded_bytes += o.encoded_bytes;
    logical_bytes_bq += o.logical_bytes_bq;
    ideal_bytes += o.ideal_bytes;
    chunks_read += o.chunks_read;
    values_read += o.values_read;
    decoded_bytes += o.decoded_bytes;
    pages_read += o.pages_read;
    pages_pruned += o.pages_pruned;
    rows_pruned += o.rows_pruned;
    rows_read += o.rows_read;
    lanes_pruned += o.lanes_pruned;
    groups_pruned += o.groups_pruned;
    footer_cache_hits += o.footer_cache_hits;
    footer_cache_misses += o.footer_cache_misses;
    chunk_cache_hits += o.chunk_cache_hits;
    chunk_cache_misses += o.chunk_cache_misses;
    cache_bytes_served += o.cache_bytes_served;
    for (size_t i = 0; i < o.leaves.size(); ++i) {
      if (i < leaves.size() && leaves[i].path == o.leaves[i].path) {
        leaves[i].AddCounters(o.leaves[i]);
        continue;
      }
      bool found = false;
      for (LeafScanStats& mine : leaves) {
        if (mine.path == o.leaves[i].path) {
          mine.AddCounters(o.leaves[i]);
          found = true;
          break;
        }
      }
      if (!found) leaves.push_back(o.leaves[i]);
    }
  }
};

/// Reusable decode buffers for the chunk read path. Each read resizes
/// them as needed but never releases capacity, so after a warm-up row
/// group the read+decompress+decode pipeline performs zero heap
/// allocations per chunk. One ScratchBuffers must not be shared between
/// threads; the parallel runtime keeps one per worker.
struct ScratchBuffers {
  std::vector<uint8_t> compressed;  ///< raw chunk bytes from storage
  std::vector<uint8_t> encoded;     ///< after decompression
  std::vector<uint8_t> values;      ///< after decoding (physical width)

  /// Releases all capacity (for tests that compare cold vs warm paths).
  /// Swap with a temporary: plain `v = {}` only clears the size.
  void Release() {
    std::vector<uint8_t>().swap(compressed);
    std::vector<uint8_t>().swap(encoded);
    std::vector<uint8_t>().swap(values);
  }
};

struct ReaderOptions {
  /// When false, selecting any member of a struct (top-level or inside a
  /// particle list) reads *all* members of that struct from storage — the
  /// Java Parquet limitation of Presto/Athena that the paper measures; the
  /// C++ implementation (this one) does not have the limitation, so the
  /// default is true.
  bool struct_projection_pushdown = true;
  /// Verify chunk checksums while reading.
  bool validate_checksums = true;
  /// Honor scan predicates with zone-map pruning: whole row groups whose
  /// chunk statistics cannot satisfy a predicate are skipped at
  /// ReadRowGroupFiltered time, and within surviving chunks, pages whose
  /// page statistics cannot satisfy it skip their checksum + decompress +
  /// decode work. Results are bit-identical either way (see predicate.h).
  bool scan_pushdown = true;
  /// Decode predicate-bearing columns first and evaluate the predicates
  /// over them; when no row of the group can survive, the remaining
  /// projected columns are never read at all.
  bool late_materialization = true;
  /// Upper bound on the decoded size (num_values * physical width) of any
  /// single chunk, enforced by the metadata validation pass in Open(). A
  /// footer — even one whose CRC matches — can otherwise drive multi-GiB
  /// allocations from a few mutated varint bytes. The checksum toggle does
  /// not affect this: metadata validation always runs.
  uint64_t max_chunk_decoded_bytes = 1ull << 30;
  /// Consult the process-wide footer/metadata cache in Open(): a shard
  /// whose (size, mtime, recomputed footer CRC) matches a previously
  /// validated open skips footer parse + validation. All the cheap
  /// integrity checks (magics, trailer, footer read, CRC recompute)
  /// still run on every open, so a cached open reports exactly the same
  /// error as a cold open for any corruption. Off only for tests and
  /// ablations — the cache costs no data bytes.
  bool footer_cache = true;
  /// Decoded-chunk LRU shared across readers, workers, and frontends;
  /// null disables chunk caching. Requires `footer_cache` (the cache key
  /// is the footer cache's file generation id).
  std::shared_ptr<cache::ChunkCache> chunk_cache;
};

/// Reads .laq columnar files with projection pushdown.
class LaqReader {
 public:
  ~LaqReader();

  LaqReader(const LaqReader&) = delete;
  LaqReader& operator=(const LaqReader&) = delete;

  static Result<std::unique_ptr<LaqReader>> Open(const std::string& path,
                                                 ReaderOptions options = {});

  const FileMetadata& metadata() const { return *metadata_; }
  const Schema& schema() const { return metadata_->schema; }
  int num_row_groups() const {
    return static_cast<int>(metadata_->row_groups.size());
  }
  int64_t total_rows() const { return metadata_->total_rows; }

  /// Footer-cache generation id of the bytes this reader was opened on
  /// (0 when the footer cache was bypassed). Chunk-cache keys embed it,
  /// so entries of replaced file contents are unreachable by design.
  uint64_t file_id() const { return file_id_; }

  /// Reads one row group with a column projection. Each projection entry is
  /// either a top-level column name ("MET", "Jet") selecting the whole
  /// column, or a leaf path ("Jet.pt", "Muon.charge") selecting single
  /// struct members. The returned batch's schema contains exactly the
  /// requested members (independently of how many leaves had to be read
  /// from storage, which ScanStats accounts for).
  Result<RecordBatchPtr> ReadRowGroup(
      int group_index, const std::vector<std::string>& projection);

  /// Same, decoding through caller-owned scratch buffers so repeated reads
  /// reuse allocations. `scratch` must stay private to one thread. Passing
  /// nullptr uses transient buffers (identical results, fresh allocations).
  Result<RecordBatchPtr> ReadRowGroup(int group_index,
                                      const std::vector<std::string>& projection,
                                      ScratchBuffers* scratch);

  /// Reads one row group with all columns.
  Result<RecordBatchPtr> ReadRowGroup(int group_index);

  /// Predicate-aware row-group read. Returns a *null* batch pointer when
  /// the predicates prove no row of the group can survive (the group's
  /// zone maps are disjoint from a predicate, or late materialization
  /// found no surviving row); callers must treat a null batch as "group
  /// processed, zero rows selected" and account its row count themselves.
  /// A non-null batch is bit-identical to ReadRowGroup's: pages skipped by
  /// zone maps have their lanes filled with the page minimum, a value that
  /// provably fails the gating predicate the query itself will evaluate
  /// (see predicate.h). With scan_pushdown off or no usable predicate this
  /// is exactly ReadRowGroup.
  Result<RecordBatchPtr> ReadRowGroupFiltered(
      int group_index, const std::vector<std::string>& projection,
      const ScanPredicateSet& predicates, ScratchBuffers* scratch);

  /// Runs only the storage decode path (read, checksum, decompress, decode)
  /// for one leaf chunk, leaving the decoded values in `scratch->values`.
  /// No arrays are materialized: with a warmed-up scratch this performs
  /// zero heap allocations, which the micro benchmarks assert. Updates
  /// ScanStats like any other read.
  Status ReadLeafValues(int group_index, const std::string& leaf_path,
                        ScratchBuffers* scratch);

  /// Sum of the physical widths of all value leaves times their entry
  /// counts for the given projection across the whole file — the "ideal
  /// (type width)" reference line of Figure 4b.
  Result<uint64_t> IdealBytesForProjection(
      const std::vector<std::string>& projection) const;

  /// Row-group pruning on the footer's min/max statistics: the indices of
  /// all row groups whose leaf `leaf_path` ("event", "MET.pt", "Jet.pt")
  /// may contain values in [min_value, max_value]. Groups without
  /// statistics are conservatively kept. No chunk data is read.
  Result<std::vector<int>> SelectRowGroups(const std::string& leaf_path,
                                           double min_value,
                                           double max_value) const;

  const ScanStats& scan_stats() const { return stats_; }
  void ResetScanStats() { stats_.Reset(); }

 private:
  LaqReader(std::FILE* file, std::shared_ptr<const FileMetadata> metadata,
            ReaderOptions options, uint64_t file_id)
      : file_(file),
        metadata_(std::move(metadata)),
        options_(std::move(options)),
        file_id_(file_id) {}

  /// Shorthand for the shared (possibly cache-banked) metadata.
  const FileMetadata& meta() const { return *metadata_; }

  /// Reads + decodes the chunk of leaf `leaf_index` in `group` into
  /// `scratch->values`. `billed` says whether this leaf was requested
  /// (affects logical/ideal bytes). When `pred` is non-null (a per-row
  /// predicate on this very leaf) and the chunk has pages, pages whose
  /// zone map is disjoint from the predicate skip checksum + decompress +
  /// decode and have their lanes fail-filled with the page minimum.
  Status ReadLeaf(int group, int leaf_index, bool billed,
                  ScratchBuffers* scratch,
                  const BoundScanPredicate* pred = nullptr);

  /// Adds the logical/ideal ("requested column") bytes of one leaf chunk.
  void BillLeaf(const ChunkMeta& chunk, const LeafDesc& leaf);

  /// Per-read state of a filtered read: per-row predicates plus leaf
  /// values already decoded by the late-materialization pre-pass.
  struct FilterState;

  Result<RecordBatchPtr> ReadRowGroupImpl(
      int group_index, const std::vector<std::string>& projection,
      ScratchBuffers* scratch, FilterState* filter);

  /// ReadLeaf through the filter state: consumes a cached pre-pass decode
  /// when present, otherwise reads with this leaf's predicate (if any).
  Status ReadProjectedLeaf(int group, int leaf_index, bool billed,
                           ScratchBuffers* scratch, FilterState* filter);

  struct ResolvedColumn {
    int field_index;
    std::vector<int> member_indices;  // selected struct members, or empty
    bool whole_column;
  };
  Status ResolveProjection(const std::vector<std::string>& projection,
                           std::vector<ResolvedColumn>* out) const;

  std::FILE* file_;
  /// Shared with the process-wide footer cache: metadata is parsed and
  /// validated once per file generation and referenced by every reader
  /// opened on the same bytes.
  std::shared_ptr<const FileMetadata> metadata_;
  ReaderOptions options_;
  uint64_t file_id_ = 0;
  ScanStats stats_;
};

}  // namespace hepq

#endif  // HEPQUERY_FILEIO_READER_H_
