#ifndef HEPQUERY_FILEIO_LAYOUT_OPTIMIZER_H_
#define HEPQUERY_FILEIO_LAYOUT_OPTIMIZER_H_

#include <string>
#include <vector>

#include "fileio/format.h"
#include "fileio/writer.h"

namespace hepq {

/// Layout optimization pass: rewrites a laq file into a pruning-friendly
/// copy. Events are reordered by a composite cluster key (trigger-skim
/// style), the reorder applied consistently to every leaf, so zone maps
/// become selective while every histogram stays bit-identical — fills are
/// weight-1 sums and all per-event quantities are permutation-invariant
/// under the deterministic merge.
struct OptimizeOptions {
  /// Leaf paths that form the composite sort key, most significant first.
  /// Accepted forms mirror the storage layout: "Muon#lengths" (list
  /// length), "MET.pt" (struct member), "PV.npvs", top-level primitives
  /// ("event"), and list item leaves like "Jet.pt", which sort by the
  /// per-event maximum (leading object) with empty lists first.
  ///
  /// The default clusters by the multiplicity gates the ADL queries
  /// actually push down (Q5 cuts nMuon >= 2, Q8 cuts nElectron + nMuon >=
  /// 3, Q4/Q6/Q7 cut nJet >= 2..3) with MET.pt as the kinematic
  /// tiebreaker that narrows its page zones. Lepton lengths lead so the
  /// lexicographic strata keep the summed lepton multiplicity coherent
  /// per row group, which the union sum-of-zone-maxima prune feeds on.
  std::vector<std::string> cluster_keys = {"Muon#lengths",
                                           "Electron#lengths",
                                           "Jet#lengths", "MET.pt"};
  /// Rows per output row group; 0 derives it from the data statistics
  /// (enough groups that a multiplicity cut can skip whole groups, but
  /// large enough to amortize per-group decode setup).
  int64_t row_group_size = 0;
  /// Values per output page; 0 derives it so every chunk gets multiple
  /// independently skippable pages.
  int64_t page_values = 0;
  Codec codec = Codec::kLz;
  /// Dictionary/frame-of-reference integer encodings (see encoding.h).
  bool advanced_encodings = true;
  bool write_statistics = true;
};

/// Per-leaf layout summary. A page is "prunable" when its zone map is
/// strictly narrower than the column's overall page-stat range — the same
/// rule `laq_inspect --pages` reports, a layout-quality proxy that needs
/// no query: a predicate with a cut inside the column range can skip such
/// a page, never a full-range one.
struct LeafLayoutSummary {
  std::string path;
  TypeId physical = TypeId::kFloat32;
  Encoding encoding = Encoding::kPlain;
  uint64_t storage_bytes = 0;
  uint64_t pages = 0;
  uint64_t prunable_pages = 0;

  double prunable_fraction() const {
    return pages == 0 ? 0.0
                      : static_cast<double>(prunable_pages) /
                            static_cast<double>(pages);
  }
};

/// Whole-file layout summary, computed from footer metadata only.
struct LayoutAnalysis {
  int64_t total_rows = 0;
  int row_groups = 0;
  uint64_t storage_bytes = 0;
  std::vector<LeafLayoutSummary> leaves;
};

/// Summarizes `path`'s layout from its footer (no chunk data is read).
Result<LayoutAnalysis> AnalyzeLaqFile(const std::string& path);

/// Rewrites `input` into `output` per `options` and returns the analysis
/// of the written file. The output is a complete, self-contained laq file
/// with the same schema and rows; only order, partitioning, and encodings
/// differ.
Result<LayoutAnalysis> OptimizeLaqFile(const std::string& input,
                                       const std::string& output,
                                       const OptimizeOptions& options = {});

/// Extracts the per-event sort key for `path` from a batch (exposed for
/// tests). List item leaves reduce to the per-event maximum; events with
/// empty lists get -infinity so they cluster together at the front.
Result<std::vector<double>> ExtractClusterKey(const RecordBatch& batch,
                                              const std::string& path);

/// The derived sizing used when OptimizeOptions leaves a field at 0
/// (exposed so tools can print what a rewrite would choose).
int64_t DeriveRowGroupSize(int64_t total_rows);
int64_t DerivePageValues(int64_t row_group_size);

}  // namespace hepq

#endif  // HEPQUERY_FILEIO_LAYOUT_OPTIMIZER_H_
