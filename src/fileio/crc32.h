#ifndef HEPQUERY_FILEIO_CRC32_H_
#define HEPQUERY_FILEIO_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace hepq {

/// CRC-32 (IEEE 802.3 polynomial, reflected). Every column chunk on disk
/// carries a checksum so the reader can detect corruption.
uint32_t Crc32(const void* data, size_t length, uint32_t seed = 0);

}  // namespace hepq

#endif  // HEPQUERY_FILEIO_CRC32_H_
