#ifndef HEPQUERY_FILEIO_WRITER_H_
#define HEPQUERY_FILEIO_WRITER_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "columnar/array.h"
#include "fileio/format.h"

namespace hepq {

struct WriterOptions {
  /// Target rows per row group. Row groups align to batch boundaries: the
  /// writer accumulates whole batches and flushes once the buffered row
  /// count reaches this target, so feeding batches of exactly this size
  /// produces exact-size row groups. The paper's data set averages ~400 k
  /// events per row group; benchmarks scale this down proportionally.
  int64_t row_group_size = 100000;
  Codec codec = Codec::kLz;
  /// Collect per-chunk min/max statistics (enables row-group pruning).
  /// Also controls the per-page statistics that drive page skipping.
  bool write_statistics = true;
  /// Values per page within a chunk. Pages are independently encoded and
  /// compressed so the reader can skip interior pages whose zone map rules
  /// them out. Rounded down to a multiple of 8 (bit-packed bool pages must
  /// pack whole bytes, with a floor of 8).
  int64_t page_values = 4096;
  /// Adds the dictionary (kDict) and frame-of-reference (kFor) encodings
  /// to the writer's candidate set for integer leaves. Off by default so
  /// ordinary writes stay byte-identical across versions; the layout
  /// optimizer turns it on.
  bool advanced_encodings = false;
};

/// Rejects option combinations the writer cannot honor: non-positive
/// `row_group_size` (every batch would flush as its own degenerate row
/// group) and non-positive `page_values` (would silently fall back to a
/// single page per chunk, defeating page pruning). Called by
/// LaqWriter::Open; exposed so tools can validate flags before touching
/// the output path.
Status ValidateWriterOptions(const WriterOptions& options);

/// Writes RecordBatches into a .laq columnar file.
class LaqWriter {
 public:
  ~LaqWriter();

  LaqWriter(const LaqWriter&) = delete;
  LaqWriter& operator=(const LaqWriter&) = delete;

  static Result<std::unique_ptr<LaqWriter>> Open(const std::string& path,
                                                 SchemaPtr schema,
                                                 WriterOptions options = {});

  /// Appends a batch; schema must match. May trigger a row-group flush.
  Status WriteBatch(const RecordBatch& batch);

  /// Flushes buffered rows and writes the footer. Must be called exactly
  /// once; the destructor aborts the file (leaving it unreadable) if the
  /// writer was not closed.
  Status Close();

  int64_t rows_written() const { return rows_written_; }

 private:
  LaqWriter(std::FILE* file, SchemaPtr schema, std::vector<LeafDesc> layout,
            WriterOptions options);

  Status FlushRowGroup();
  Status WriteChunk(const LeafDesc& leaf, TypeId physical, const void* data,
                    size_t count, ChunkMeta* meta);

  std::FILE* file_;
  SchemaPtr schema_;
  std::vector<LeafDesc> layout_;
  WriterOptions options_;
  FileMetadata metadata_;
  std::vector<RecordBatchPtr> buffered_;
  int64_t buffered_rows_ = 0;
  int64_t rows_written_ = 0;
  uint64_t file_pos_ = 0;
  bool closed_ = false;
};

/// Convenience: writes a sequence of batches to `path` in one call.
Status WriteLaqFile(const std::string& path, SchemaPtr schema,
                    const std::vector<RecordBatchPtr>& batches,
                    WriterOptions options = {});

}  // namespace hepq

#endif  // HEPQUERY_FILEIO_WRITER_H_
