#ifndef HEPQUERY_FILEIO_ENCODING_H_
#define HEPQUERY_FILEIO_ENCODING_H_

#include <cstdint>
#include <vector>

#include "columnar/types.h"
#include "core/status.h"

namespace hepq {

/// Per-chunk value encodings, applied before block compression:
///   kPlain     — raw little-endian values (the only choice for floats,
///                which rarely repeat; matches Parquet PLAIN).
///   kRleVarint — (varint run-length, zig-zag varint value) pairs; chosen
///                for integer leaves with long runs (charges, counts).
///   kBitPack   — 8 booleans per byte.
///   kDeltaVarint — zig-zag varint of successive differences; chosen for
///                near-monotonic integer leaves (event ids, luminosity
///                blocks), where deltas are tiny.
enum class Encoding : uint8_t {
  kPlain = 0,
  kRleVarint = 1,
  kBitPack = 2,
  kDeltaVarint = 3,
};

const char* EncodingName(Encoding encoding);

/// Serializes `count` values of primitive type `type` from `data`.
Status EncodeValues(TypeId type, Encoding encoding, const void* data,
                    size_t count, std::vector<uint8_t>* out);

/// Inverse of EncodeValues. `out` must have room for `count` values.
Status DecodeValues(TypeId type, Encoding encoding, const uint8_t* data,
                    size_t size, size_t count, void* out);

/// Picks an encoding for a chunk: bit-packing for bools, RLE for integer
/// data whose run structure makes it smaller than plain, plain otherwise.
Encoding ChooseEncoding(TypeId type, const void* data, size_t count);

}  // namespace hepq

#endif  // HEPQUERY_FILEIO_ENCODING_H_
