#ifndef HEPQUERY_FILEIO_ENCODING_H_
#define HEPQUERY_FILEIO_ENCODING_H_

#include <cstdint>
#include <vector>

#include "columnar/types.h"
#include "core/status.h"

namespace hepq {

/// Per-chunk value encodings, applied before block compression:
///   kPlain     — raw little-endian values (the only choice for floats,
///                which rarely repeat; matches Parquet PLAIN).
///   kRleVarint — (varint run-length, zig-zag varint value) pairs; chosen
///                for integer leaves with long runs (charges, counts).
///   kBitPack   — 8 booleans per byte.
///   kDeltaVarint — zig-zag varint of successive differences; chosen for
///                near-monotonic integer leaves (event ids, luminosity
///                blocks), where deltas are tiny.
///   kDict      — sorted dictionary of distinct values (zig-zag varints)
///                followed by bit-packed indices at the minimal width;
///                chosen for low-cardinality integer leaves (charge,
///                jetId, decayMode) by the layout optimizer.
///   kFor       — frame of reference: zig-zag varint base (the minimum)
///                plus bit-packed offsets at the minimal width; chosen
///                for narrow-range integer leaves (counts, npvs).
/// kDict and kFor restart per page like every other encoding; each page
/// carries its own dictionary/base, so pages stay independently decodable
/// and zone-map skippable.
enum class Encoding : uint8_t {
  kPlain = 0,
  kRleVarint = 1,
  kBitPack = 2,
  kDeltaVarint = 3,
  kDict = 4,
  kFor = 5,
};

const char* EncodingName(Encoding encoding);

/// Serializes `count` values of primitive type `type` from `data`.
Status EncodeValues(TypeId type, Encoding encoding, const void* data,
                    size_t count, std::vector<uint8_t>* out);

/// Inverse of EncodeValues. `out` must have room for `count` values.
/// Defensive against arbitrary input bytes: every length, dictionary
/// index, bit width, and padding bit is validated before use, and values
/// that do not fit the leaf's physical type are rejected as Corruption.
Status DecodeValues(TypeId type, Encoding encoding, const uint8_t* data,
                    size_t size, size_t count, void* out);

/// Picks an encoding for a chunk: bit-packing for bools, RLE for integer
/// data whose run structure makes it smaller than plain, plain otherwise.
/// With `advanced` set (WriterOptions::advanced_encodings, the layout
/// optimizer's default), the dictionary and frame-of-reference encodings
/// join the candidate set; they are picked only when their exact size
/// estimate beats every classic candidate by a margin, so files written
/// by default builds are byte-identical to pre-kDict builds.
Encoding ChooseEncoding(TypeId type, const void* data, size_t count,
                        bool advanced = false);

}  // namespace hepq

#endif  // HEPQUERY_FILEIO_ENCODING_H_
