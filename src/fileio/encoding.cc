#include "fileio/encoding.h"

#include <algorithm>
#include <cstring>

#include "fileio/varint.h"

namespace hepq {

const char* EncodingName(Encoding encoding) {
  switch (encoding) {
    case Encoding::kPlain:
      return "plain";
    case Encoding::kRleVarint:
      return "rle";
    case Encoding::kBitPack:
      return "bitpack";
    case Encoding::kDeltaVarint:
      return "delta";
  }
  return "unknown";
}

namespace {

template <typename T>
void EncodeRle(const T* values, size_t count, std::vector<uint8_t>* out) {
  size_t i = 0;
  while (i < count) {
    size_t run = 1;
    while (i + run < count && values[i + run] == values[i]) ++run;
    PutVarint(out, run);
    PutSignedVarint(out, static_cast<int64_t>(values[i]));
    i += run;
  }
}

template <typename T>
Status DecodeRle(const uint8_t* data, size_t size, size_t count, T* out) {
  ByteReader reader(data, size);
  size_t produced = 0;
  while (produced < count) {
    uint64_t run = 0;
    int64_t value = 0;
    HEPQ_RETURN_NOT_OK(reader.GetVarint(&run));
    HEPQ_RETURN_NOT_OK(reader.GetSignedVarint(&value));
    if (run == 0 || run > count - produced) {
      return Status::Corruption("rle: run overflows value count");
    }
    if constexpr (sizeof(T) == 4) {
      // A 64-bit varint value that does not fit the leaf's 32-bit physical
      // type would otherwise truncate silently.
      if (value < INT32_MIN || value > INT32_MAX) {
        return Status::Corruption("rle: value out of range for leaf type");
      }
    }
    // One fill per run instead of a per-element loop: the compiler turns
    // this into memset-style wide stores, which matters for the long runs
    // RLE is chosen for (lengths leaves, near-constant columns).
    std::fill_n(out + produced, run, static_cast<T>(value));
    produced += run;
  }
  if (!reader.AtEnd()) return Status::Corruption("rle: trailing bytes");
  return Status::OK();
}

template <typename T>
void EncodeDelta(const T* values, size_t count, std::vector<uint8_t>* out) {
  int64_t previous = 0;
  for (size_t i = 0; i < count; ++i) {
    const int64_t v = static_cast<int64_t>(values[i]);
    PutSignedVarint(out, v - previous);
    previous = v;
  }
}

template <typename T>
Status DecodeDelta(const uint8_t* data, size_t size, size_t count, T* out) {
  // The truncation branch is hoisted out of the hot loop: a varint is at
  // most 10 bytes, so while that much slack remains the bytes can be
  // consumed without per-byte bounds checks. The checked ByteReader path
  // handles the buffer tail (and all corrupt inputs exactly as before).
  //
  // The prefix sum accumulates in uint64 (wrap-around is defined) rather
  // than int64: crafted deltas can exceed any value range, and signed
  // overflow would be UB the sanitizer jobs trap on.
  size_t pos = 0;
  size_t i = 0;
  uint64_t previous = 0;
  while (i < count && size - pos >= 10) {
    uint64_t zz = 0;
    int shift = 0;
    uint8_t byte;
    do {
      byte = data[pos++];
      zz |= static_cast<uint64_t>(byte & 0x7f) << shift;
      shift += 7;
    } while ((byte & 0x80) != 0 && shift < 64);
    if ((byte & 0x80) != 0) return Status::Corruption("varint too long");
    previous += (zz >> 1) ^ (~(zz & 1) + 1);  // un-zig-zag, wrapping add
    const int64_t value = static_cast<int64_t>(previous);
    if constexpr (sizeof(T) == 4) {
      if (value < INT32_MIN || value > INT32_MAX) {
        return Status::Corruption("delta: value out of range for leaf type");
      }
    }
    out[i++] = static_cast<T>(value);
  }
  ByteReader reader(data + pos, size - pos);
  for (; i < count; ++i) {
    int64_t delta = 0;
    HEPQ_RETURN_NOT_OK(reader.GetSignedVarint(&delta));
    previous += static_cast<uint64_t>(delta);
    const int64_t value = static_cast<int64_t>(previous);
    if constexpr (sizeof(T) == 4) {
      if (value < INT32_MIN || value > INT32_MAX) {
        return Status::Corruption("delta: value out of range for leaf type");
      }
    }
    out[i] = static_cast<T>(value);
  }
  if (!reader.AtEnd()) return Status::Corruption("delta: trailing bytes");
  return Status::OK();
}

void EncodeBitPack(const uint8_t* values, size_t count,
                   std::vector<uint8_t>* out) {
  out->resize((count + 7) / 8, 0);
  for (size_t i = 0; i < count; ++i) {
    if (values[i]) (*out)[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  }
}

Status DecodeBitPack(const uint8_t* data, size_t size, size_t count,
                     uint8_t* out) {
  if (size != (count + 7) / 8) {
    return Status::Corruption("bitpack: size mismatch");
  }
  for (size_t i = 0; i < count; ++i) {
    out[i] = (data[i / 8] >> (i % 8)) & 1u;
  }
  return Status::OK();
}

/// Values whose delta from the predecessor fits one zig-zag varint byte.
template <typename T>
size_t CountSmallDeltas(const T* values, size_t count) {
  if (count == 0) return 0;
  size_t small = 1;
  for (size_t i = 1; i < count; ++i) {
    const int64_t delta =
        static_cast<int64_t>(values[i]) - static_cast<int64_t>(values[i - 1]);
    if (delta >= -64 && delta < 64) ++small;
  }
  return small;
}

template <typename T>
size_t CountRuns(const T* values, size_t count) {
  if (count == 0) return 0;
  size_t runs = 1;
  for (size_t i = 1; i < count; ++i) {
    if (values[i] != values[i - 1]) ++runs;
  }
  return runs;
}

}  // namespace

Status EncodeValues(TypeId type, Encoding encoding, const void* data,
                    size_t count, std::vector<uint8_t>* out) {
  out->clear();
  const int width = PrimitiveWidth(type);
  if (width == 0) return Status::Invalid("cannot encode nested type");
  switch (encoding) {
    case Encoding::kPlain: {
      const size_t n = count * static_cast<size_t>(width);
      out->resize(n);
      if (n != 0) std::memcpy(out->data(), data, n);  // null src if empty
      return Status::OK();
    }
    case Encoding::kRleVarint:
      switch (type) {
        case TypeId::kInt32:
          EncodeRle(static_cast<const int32_t*>(data), count, out);
          return Status::OK();
        case TypeId::kInt64:
          EncodeRle(static_cast<const int64_t*>(data), count, out);
          return Status::OK();
        default:
          return Status::Invalid("rle encoding requires an integer type");
      }
    case Encoding::kBitPack:
      if (type != TypeId::kBool) {
        return Status::Invalid("bitpack encoding requires bool");
      }
      EncodeBitPack(static_cast<const uint8_t*>(data), count, out);
      return Status::OK();
    case Encoding::kDeltaVarint:
      switch (type) {
        case TypeId::kInt32:
          EncodeDelta(static_cast<const int32_t*>(data), count, out);
          return Status::OK();
        case TypeId::kInt64:
          EncodeDelta(static_cast<const int64_t*>(data), count, out);
          return Status::OK();
        default:
          return Status::Invalid("delta encoding requires an integer type");
      }
  }
  return Status::Invalid("unknown encoding");
}

Status DecodeValues(TypeId type, Encoding encoding, const uint8_t* data,
                    size_t size, size_t count, void* out) {
  const int width = PrimitiveWidth(type);
  if (width == 0) return Status::Invalid("cannot decode nested type");
  switch (encoding) {
    case Encoding::kPlain: {
      const size_t n = count * static_cast<size_t>(width);
      if (size != n) return Status::Corruption("plain: size mismatch");
      if (n != 0) std::memcpy(out, data, n);  // null src/dst if empty
      return Status::OK();
    }
    case Encoding::kRleVarint:
      switch (type) {
        case TypeId::kInt32:
          return DecodeRle(data, size, count, static_cast<int32_t*>(out));
        case TypeId::kInt64:
          return DecodeRle(data, size, count, static_cast<int64_t*>(out));
        default:
          return Status::Invalid("rle decoding requires an integer type");
      }
    case Encoding::kBitPack:
      if (type != TypeId::kBool) {
        return Status::Invalid("bitpack decoding requires bool");
      }
      return DecodeBitPack(data, size, count, static_cast<uint8_t*>(out));
    case Encoding::kDeltaVarint:
      switch (type) {
        case TypeId::kInt32:
          return DecodeDelta(data, size, count, static_cast<int32_t*>(out));
        case TypeId::kInt64:
          return DecodeDelta(data, size, count, static_cast<int64_t*>(out));
        default:
          return Status::Invalid("delta decoding requires an integer type");
      }
  }
  return Status::Invalid("unknown encoding");
}

Encoding ChooseEncoding(TypeId type, const void* data, size_t count) {
  if (type == TypeId::kBool) return Encoding::kBitPack;
  if (type == TypeId::kInt32 || type == TypeId::kInt64) {
    if (count == 0) return Encoding::kPlain;
    const bool is32 = type == TypeId::kInt32;
    const size_t runs =
        is32 ? CountRuns(static_cast<const int32_t*>(data), count)
             : CountRuns(static_cast<const int64_t*>(data), count);
    // Estimated sizes: ~4 bytes per RLE run (varint count + zig-zag
    // value); ~1.3 bytes per value for delta when nearly all deltas fit a
    // single byte (near-monotonic event ids), unusable otherwise. Ties go
    // to plain, which decodes fastest.
    const size_t plain_size = count * static_cast<size_t>(PrimitiveWidth(type));
    const size_t rle_estimate = runs * 4;
    const size_t small_deltas =
        is32 ? CountSmallDeltas(static_cast<const int32_t*>(data), count)
             : CountSmallDeltas(static_cast<const int64_t*>(data), count);
    const bool delta_viable = small_deltas >= count - count / 8;
    const size_t delta_estimate =
        delta_viable ? count + count / 3 + 16 : plain_size;
    if (delta_estimate < plain_size && delta_estimate <= rle_estimate) {
      return Encoding::kDeltaVarint;
    }
    if (rle_estimate < plain_size) return Encoding::kRleVarint;
  }
  return Encoding::kPlain;
}

}  // namespace hepq
