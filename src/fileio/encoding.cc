#include "fileio/encoding.h"

#include <algorithm>
#include <cstring>

#include "fileio/varint.h"

namespace hepq {

const char* EncodingName(Encoding encoding) {
  switch (encoding) {
    case Encoding::kPlain:
      return "plain";
    case Encoding::kRleVarint:
      return "rle";
    case Encoding::kBitPack:
      return "bitpack";
    case Encoding::kDeltaVarint:
      return "delta";
    case Encoding::kDict:
      return "dict";
    case Encoding::kFor:
      return "for";
  }
  return "unknown";
}

namespace {

template <typename T>
void EncodeRle(const T* values, size_t count, std::vector<uint8_t>* out) {
  size_t i = 0;
  while (i < count) {
    size_t run = 1;
    while (i + run < count && values[i + run] == values[i]) ++run;
    PutVarint(out, run);
    PutSignedVarint(out, static_cast<int64_t>(values[i]));
    i += run;
  }
}

template <typename T>
Status DecodeRle(const uint8_t* data, size_t size, size_t count, T* out) {
  ByteReader reader(data, size);
  size_t produced = 0;
  while (produced < count) {
    uint64_t run = 0;
    int64_t value = 0;
    HEPQ_RETURN_NOT_OK(reader.GetVarint(&run));
    HEPQ_RETURN_NOT_OK(reader.GetSignedVarint(&value));
    if (run == 0 || run > count - produced) {
      return Status::Corruption("rle: run overflows value count");
    }
    if constexpr (sizeof(T) == 4) {
      // A 64-bit varint value that does not fit the leaf's 32-bit physical
      // type would otherwise truncate silently.
      if (value < INT32_MIN || value > INT32_MAX) {
        return Status::Corruption("rle: value out of range for leaf type");
      }
    }
    // One fill per run instead of a per-element loop: the compiler turns
    // this into memset-style wide stores, which matters for the long runs
    // RLE is chosen for (lengths leaves, near-constant columns).
    std::fill_n(out + produced, run, static_cast<T>(value));
    produced += run;
  }
  if (!reader.AtEnd()) return Status::Corruption("rle: trailing bytes");
  return Status::OK();
}

template <typename T>
void EncodeDelta(const T* values, size_t count, std::vector<uint8_t>* out) {
  int64_t previous = 0;
  for (size_t i = 0; i < count; ++i) {
    const int64_t v = static_cast<int64_t>(values[i]);
    PutSignedVarint(out, v - previous);
    previous = v;
  }
}

template <typename T>
Status DecodeDelta(const uint8_t* data, size_t size, size_t count, T* out) {
  // The truncation branch is hoisted out of the hot loop: a varint is at
  // most 10 bytes, so while that much slack remains the bytes can be
  // consumed without per-byte bounds checks. The checked ByteReader path
  // handles the buffer tail (and all corrupt inputs exactly as before).
  //
  // The prefix sum accumulates in uint64 (wrap-around is defined) rather
  // than int64: crafted deltas can exceed any value range, and signed
  // overflow would be UB the sanitizer jobs trap on.
  size_t pos = 0;
  size_t i = 0;
  uint64_t previous = 0;
  while (i < count && size - pos >= 10) {
    uint64_t zz = 0;
    int shift = 0;
    uint8_t byte;
    do {
      byte = data[pos++];
      zz |= static_cast<uint64_t>(byte & 0x7f) << shift;
      shift += 7;
    } while ((byte & 0x80) != 0 && shift < 64);
    if ((byte & 0x80) != 0) return Status::Corruption("varint too long");
    previous += (zz >> 1) ^ (~(zz & 1) + 1);  // un-zig-zag, wrapping add
    const int64_t value = static_cast<int64_t>(previous);
    if constexpr (sizeof(T) == 4) {
      if (value < INT32_MIN || value > INT32_MAX) {
        return Status::Corruption("delta: value out of range for leaf type");
      }
    }
    out[i++] = static_cast<T>(value);
  }
  ByteReader reader(data + pos, size - pos);
  for (; i < count; ++i) {
    int64_t delta = 0;
    HEPQ_RETURN_NOT_OK(reader.GetSignedVarint(&delta));
    previous += static_cast<uint64_t>(delta);
    const int64_t value = static_cast<int64_t>(previous);
    if constexpr (sizeof(T) == 4) {
      if (value < INT32_MIN || value > INT32_MAX) {
        return Status::Corruption("delta: value out of range for leaf type");
      }
    }
    out[i] = static_cast<T>(value);
  }
  if (!reader.AtEnd()) return Status::Corruption("delta: trailing bytes");
  return Status::OK();
}

void EncodeBitPack(const uint8_t* values, size_t count,
                   std::vector<uint8_t>* out) {
  out->resize((count + 7) / 8, 0);
  for (size_t i = 0; i < count; ++i) {
    if (values[i]) (*out)[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  }
}

Status DecodeBitPack(const uint8_t* data, size_t size, size_t count,
                     uint8_t* out) {
  if (size != (count + 7) / 8) {
    return Status::Corruption("bitpack: size mismatch");
  }
  for (size_t i = 0; i < count; ++i) {
    out[i] = (data[i / 8] >> (i % 8)) & 1u;
  }
  return Status::OK();
}

/// Smallest width (in bits) that can hold `v`; 0 for v == 0.
int BitsFor(uint64_t v) {
  int bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

/// Appends `count` values of `width` bits each, little-endian bit order
/// (value i occupies bits [i*width, (i+1)*width) of the stream). Padding
/// bits in the final byte are zero, which the decoder enforces.
void PackBits(const uint64_t* values, size_t count, int width,
              std::vector<uint8_t>* out) {
  if (width == 0) return;
  const size_t start = out->size();
  out->resize(start + (count * static_cast<size_t>(width) + 7) / 8, 0);
  uint8_t* bytes = out->data() + start;
  size_t bit = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = values[i];
    int remaining = width;
    while (remaining > 0) {
      const int offset = static_cast<int>(bit % 8);
      const int take = std::min(remaining, 8 - offset);
      bytes[bit / 8] |= static_cast<uint8_t>(
          (v & ((take == 64 ? 0 : (1ull << take)) - 1)) << offset);
      v >>= take;
      bit += static_cast<size_t>(take);
      remaining -= take;
    }
  }
}

/// Reads `count` values of `width` bits from `data` (exactly
/// ceil(count*width/8) bytes). Rejects short buffers and nonzero padding
/// bits — an honest encoder always zeroes them, so set bits there mean
/// the page was damaged in a way the CRC did not catch.
Status UnpackBits(const uint8_t* data, size_t size, size_t count, int width,
                  uint64_t* out) {
  if (width == 0) {
    std::fill_n(out, count, uint64_t{0});
    if (size != 0) return Status::Corruption("bitunpack: trailing bytes");
    return Status::OK();
  }
  const size_t total_bits = count * static_cast<size_t>(width);
  if (size != (total_bits + 7) / 8) {
    return Status::Corruption("bitunpack: size mismatch");
  }
  size_t bit = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    int got = 0;
    while (got < width) {
      const int offset = static_cast<int>(bit % 8);
      const int take = std::min(width - got, 8 - offset);
      const uint64_t piece =
          (static_cast<uint64_t>(data[bit / 8]) >> offset) &
          ((take == 64 ? 0 : (1ull << take)) - 1);
      v |= piece << got;
      got += take;
      bit += static_cast<size_t>(take);
    }
    out[i] = v;
  }
  if (total_bits % 8 != 0) {
    const uint8_t tail = data[size - 1];
    const int used = static_cast<int>(total_bits % 8);
    if ((tail >> used) != 0) {
      return Status::Corruption("bitunpack: nonzero padding bits");
    }
  }
  return Status::OK();
}

/// Dictionary layout: varint distinct-count, the sorted distinct values
/// as zig-zag varints, then every value's dictionary index bit-packed at
/// width = BitsFor(distinct_count - 1). The width is derived from the
/// count on both sides rather than stored, so it cannot disagree.
template <typename T>
void EncodeDict(const T* values, size_t count, std::vector<uint8_t>* out) {
  std::vector<T> dict(values, values + count);
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  PutVarint(out, dict.size());
  for (const T v : dict) PutSignedVarint(out, static_cast<int64_t>(v));
  if (dict.size() <= 1) return;  // width 0: indices carry no information
  const int width = BitsFor(dict.size() - 1);
  std::vector<uint64_t> indices(count);
  for (size_t i = 0; i < count; ++i) {
    indices[i] = static_cast<uint64_t>(
        std::lower_bound(dict.begin(), dict.end(), values[i]) - dict.begin());
  }
  PackBits(indices.data(), count, width, out);
}

template <typename T>
Status DecodeDict(const uint8_t* data, size_t size, size_t count, T* out) {
  ByteReader reader(data, size);
  uint64_t dict_count = 0;
  HEPQ_RETURN_NOT_OK(reader.GetVarint(&dict_count));
  if (count == 0) {
    if (dict_count != 0 || !reader.AtEnd()) {
      return Status::Corruption("dict: nonempty dictionary for empty page");
    }
    return Status::OK();
  }
  // More distinct entries than values cannot come from an honest encoder
  // and would let a crafted page force a huge allocation.
  if (dict_count == 0 || dict_count > count) {
    return Status::Corruption("dict: dictionary size out of range");
  }
  std::vector<T> dict(static_cast<size_t>(dict_count));
  for (size_t i = 0; i < dict.size(); ++i) {
    int64_t v = 0;
    HEPQ_RETURN_NOT_OK(reader.GetSignedVarint(&v));
    if constexpr (sizeof(T) == 4) {
      if (v < INT32_MIN || v > INT32_MAX) {
        return Status::Corruption("dict: value out of range for leaf type");
      }
    }
    dict[i] = static_cast<T>(v);
  }
  if (dict_count == 1) {
    std::fill_n(out, count, dict[0]);
    if (!reader.AtEnd()) return Status::Corruption("dict: trailing bytes");
    return Status::OK();
  }
  const int width = BitsFor(dict_count - 1);
  std::vector<uint64_t> indices(count);
  HEPQ_RETURN_NOT_OK(UnpackBits(data + reader.position(),
                                size - reader.position(), count, width,
                                indices.data()));
  for (size_t i = 0; i < count; ++i) {
    if (indices[i] >= dict_count) {
      return Status::Corruption("dict: index out of range");
    }
    out[i] = dict[indices[i]];
  }
  return Status::OK();
}

/// Frame-of-reference layout: zig-zag varint base (the page minimum), one
/// width byte, then every value's offset from the base bit-packed at that
/// width. Offsets are computed in uint64 so the int64 extremes wrap
/// instead of overflowing.
template <typename T>
void EncodeFor(const T* values, size_t count, std::vector<uint8_t>* out) {
  if (count == 0) {
    PutSignedVarint(out, 0);
    out->push_back(0);
    return;
  }
  T lo = values[0];
  T hi = values[0];
  for (size_t i = 1; i < count; ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  const uint64_t span =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);  // wrapping
  const int width = BitsFor(span);
  PutSignedVarint(out, static_cast<int64_t>(lo));
  out->push_back(static_cast<uint8_t>(width));
  if (width == 0) return;
  std::vector<uint64_t> offsets(count);
  for (size_t i = 0; i < count; ++i) {
    offsets[i] = static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(lo);
  }
  PackBits(offsets.data(), count, width, out);
}

template <typename T>
Status DecodeFor(const uint8_t* data, size_t size, size_t count, T* out) {
  ByteReader reader(data, size);
  int64_t base = 0;
  HEPQ_RETURN_NOT_OK(reader.GetSignedVarint(&base));
  uint8_t width = 0;
  HEPQ_RETURN_NOT_OK(reader.GetBytes(&width, 1));
  if (width > 64) return Status::Corruption("for: bit width out of range");
  if (count == 0) {
    if (!reader.AtEnd()) return Status::Corruption("for: trailing bytes");
    return Status::OK();
  }
  std::vector<uint64_t> offsets(count);
  HEPQ_RETURN_NOT_OK(UnpackBits(data + reader.position(),
                                size - reader.position(), count, width,
                                offsets.data()));
  for (size_t i = 0; i < count; ++i) {
    // Wrapping add: a crafted base + offset pair can exceed any value
    // range, and signed overflow would be UB the sanitizer jobs trap on.
    const int64_t value = static_cast<int64_t>(
        static_cast<uint64_t>(base) + offsets[i]);
    if constexpr (sizeof(T) == 4) {
      if (value < INT32_MIN || value > INT32_MAX) {
        return Status::Corruption("for: value out of range for leaf type");
      }
    }
    out[i] = static_cast<T>(value);
  }
  return Status::OK();
}

/// Values whose delta from the predecessor fits one zig-zag varint byte.
template <typename T>
size_t CountSmallDeltas(const T* values, size_t count) {
  if (count == 0) return 0;
  size_t small = 1;
  for (size_t i = 1; i < count; ++i) {
    const int64_t delta =
        static_cast<int64_t>(values[i]) - static_cast<int64_t>(values[i - 1]);
    if (delta >= -64 && delta < 64) ++small;
  }
  return small;
}

template <typename T>
size_t CountRuns(const T* values, size_t count) {
  if (count == 0) return 0;
  size_t runs = 1;
  for (size_t i = 1; i < count; ++i) {
    if (values[i] != values[i - 1]) ++runs;
  }
  return runs;
}

size_t VarintLen(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

size_t SignedVarintLen(int64_t v) {
  return VarintLen((static_cast<uint64_t>(v) << 1) ^
                   static_cast<uint64_t>(v >> 63));
}

/// Exact encoded sizes for the advanced integer encodings (cheap enough
/// to compute at write time: one sort of the chunk's values).
template <typename T>
void AdvancedSizes(const T* values, size_t count, size_t* dict_size,
                   size_t* for_size) {
  std::vector<T> sorted(values, values + count);
  std::sort(sorted.begin(), sorted.end());
  size_t dict_payload = 0;
  size_t card = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i == 0 || sorted[i] != sorted[i - 1]) {
      dict_payload += SignedVarintLen(static_cast<int64_t>(sorted[i]));
      ++card;
    }
  }
  const int dict_width = card <= 1 ? 0 : BitsFor(card - 1);
  *dict_size = VarintLen(card) + dict_payload +
               (count * static_cast<size_t>(dict_width) + 7) / 8;
  const uint64_t span = static_cast<uint64_t>(sorted.back()) -
                        static_cast<uint64_t>(sorted.front());  // wrapping
  const int for_width = BitsFor(span);
  *for_size = SignedVarintLen(static_cast<int64_t>(sorted.front())) + 1 +
              (count * static_cast<size_t>(for_width) + 7) / 8;
}

}  // namespace

Status EncodeValues(TypeId type, Encoding encoding, const void* data,
                    size_t count, std::vector<uint8_t>* out) {
  out->clear();
  const int width = PrimitiveWidth(type);
  if (width == 0) return Status::Invalid("cannot encode nested type");
  switch (encoding) {
    case Encoding::kPlain: {
      const size_t n = count * static_cast<size_t>(width);
      out->resize(n);
      if (n != 0) std::memcpy(out->data(), data, n);  // null src if empty
      return Status::OK();
    }
    case Encoding::kRleVarint:
      switch (type) {
        case TypeId::kInt32:
          EncodeRle(static_cast<const int32_t*>(data), count, out);
          return Status::OK();
        case TypeId::kInt64:
          EncodeRle(static_cast<const int64_t*>(data), count, out);
          return Status::OK();
        default:
          return Status::Invalid("rle encoding requires an integer type");
      }
    case Encoding::kBitPack:
      if (type != TypeId::kBool) {
        return Status::Invalid("bitpack encoding requires bool");
      }
      EncodeBitPack(static_cast<const uint8_t*>(data), count, out);
      return Status::OK();
    case Encoding::kDeltaVarint:
      switch (type) {
        case TypeId::kInt32:
          EncodeDelta(static_cast<const int32_t*>(data), count, out);
          return Status::OK();
        case TypeId::kInt64:
          EncodeDelta(static_cast<const int64_t*>(data), count, out);
          return Status::OK();
        default:
          return Status::Invalid("delta encoding requires an integer type");
      }
    case Encoding::kDict:
      switch (type) {
        case TypeId::kInt32:
          EncodeDict(static_cast<const int32_t*>(data), count, out);
          return Status::OK();
        case TypeId::kInt64:
          EncodeDict(static_cast<const int64_t*>(data), count, out);
          return Status::OK();
        default:
          return Status::Invalid("dict encoding requires an integer type");
      }
    case Encoding::kFor:
      switch (type) {
        case TypeId::kInt32:
          EncodeFor(static_cast<const int32_t*>(data), count, out);
          return Status::OK();
        case TypeId::kInt64:
          EncodeFor(static_cast<const int64_t*>(data), count, out);
          return Status::OK();
        default:
          return Status::Invalid("for encoding requires an integer type");
      }
  }
  return Status::Invalid("unknown encoding");
}

Status DecodeValues(TypeId type, Encoding encoding, const uint8_t* data,
                    size_t size, size_t count, void* out) {
  const int width = PrimitiveWidth(type);
  if (width == 0) return Status::Invalid("cannot decode nested type");
  switch (encoding) {
    case Encoding::kPlain: {
      const size_t n = count * static_cast<size_t>(width);
      if (size != n) return Status::Corruption("plain: size mismatch");
      if (n != 0) std::memcpy(out, data, n);  // null src/dst if empty
      return Status::OK();
    }
    case Encoding::kRleVarint:
      switch (type) {
        case TypeId::kInt32:
          return DecodeRle(data, size, count, static_cast<int32_t*>(out));
        case TypeId::kInt64:
          return DecodeRle(data, size, count, static_cast<int64_t*>(out));
        default:
          return Status::Invalid("rle decoding requires an integer type");
      }
    case Encoding::kBitPack:
      if (type != TypeId::kBool) {
        return Status::Invalid("bitpack decoding requires bool");
      }
      return DecodeBitPack(data, size, count, static_cast<uint8_t*>(out));
    case Encoding::kDeltaVarint:
      switch (type) {
        case TypeId::kInt32:
          return DecodeDelta(data, size, count, static_cast<int32_t*>(out));
        case TypeId::kInt64:
          return DecodeDelta(data, size, count, static_cast<int64_t*>(out));
        default:
          return Status::Invalid("delta decoding requires an integer type");
      }
    case Encoding::kDict:
      switch (type) {
        case TypeId::kInt32:
          return DecodeDict(data, size, count, static_cast<int32_t*>(out));
        case TypeId::kInt64:
          return DecodeDict(data, size, count, static_cast<int64_t*>(out));
        default:
          return Status::Invalid("dict decoding requires an integer type");
      }
    case Encoding::kFor:
      switch (type) {
        case TypeId::kInt32:
          return DecodeFor(data, size, count, static_cast<int32_t*>(out));
        case TypeId::kInt64:
          return DecodeFor(data, size, count, static_cast<int64_t*>(out));
        default:
          return Status::Invalid("for decoding requires an integer type");
      }
  }
  return Status::Invalid("unknown encoding");
}

Encoding ChooseEncoding(TypeId type, const void* data, size_t count,
                        bool advanced) {
  if (type == TypeId::kBool) return Encoding::kBitPack;
  if (type == TypeId::kInt32 || type == TypeId::kInt64) {
    if (count == 0) return Encoding::kPlain;
    const bool is32 = type == TypeId::kInt32;
    const size_t runs =
        is32 ? CountRuns(static_cast<const int32_t*>(data), count)
             : CountRuns(static_cast<const int64_t*>(data), count);
    // Estimated sizes: ~4 bytes per RLE run (varint count + zig-zag
    // value); ~1.3 bytes per value for delta when nearly all deltas fit a
    // single byte (near-monotonic event ids), unusable otherwise. Ties go
    // to plain, which decodes fastest.
    const size_t plain_size = count * static_cast<size_t>(PrimitiveWidth(type));
    const size_t rle_estimate = runs * 4;
    const size_t small_deltas =
        is32 ? CountSmallDeltas(static_cast<const int32_t*>(data), count)
             : CountSmallDeltas(static_cast<const int64_t*>(data), count);
    const bool delta_viable = small_deltas >= count - count / 8;
    const size_t delta_estimate =
        delta_viable ? count + count / 3 + 16 : plain_size;
    Encoding classic = Encoding::kPlain;
    size_t classic_size = plain_size;
    if (delta_estimate < plain_size && delta_estimate <= rle_estimate) {
      classic = Encoding::kDeltaVarint;
      classic_size = delta_estimate;
    } else if (rle_estimate < plain_size) {
      classic = Encoding::kRleVarint;
      classic_size = rle_estimate;
    }
    if (advanced) {
      // Dict and FOR sizes are exact (one sort of the chunk), so a small
      // margin over the classic *estimates* is enough to avoid flapping on
      // leaves where RLE already wins (lengths leaves, near-constant
      // columns). FOR is preferred at equal size — decode is branch-free.
      size_t dict_size = 0;
      size_t for_size = 0;
      if (is32) {
        AdvancedSizes(static_cast<const int32_t*>(data), count, &dict_size,
                      &for_size);
      } else {
        AdvancedSizes(static_cast<const int64_t*>(data), count, &dict_size,
                      &for_size);
      }
      const size_t margin = classic_size - classic_size / 8;
      if (for_size <= dict_size && for_size < margin) return Encoding::kFor;
      if (dict_size < for_size && dict_size < margin) return Encoding::kDict;
    }
    return classic;
  }
  return Encoding::kPlain;
}

}  // namespace hepq
