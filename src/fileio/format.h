#ifndef HEPQUERY_FILEIO_FORMAT_H_
#define HEPQUERY_FILEIO_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/types.h"
#include "core/status.h"
#include "fileio/compression.h"
#include "fileio/encoding.h"

namespace hepq {

// On-disk layout of a .laq file ("lightweight analytics query" format, the
// repository's Parquet stand-in):
//
//   [4-byte magic "LAQ1"]
//   [column chunks, row group by row group, leaf by leaf]
//   [footer: serialized FileMetadata]
//   [fixed32 footer size][fixed32 footer crc][4-byte magic "LAQ1"]
//
// Nested columns are shredded Dremel-style into primitive leaves. The HEP
// event schema only needs nesting depth <= 1 (lists of structs of
// primitives), so instead of general repetition/definition levels each list
// column stores one "#lengths" leaf (int32 per row, RLE-friendly) plus one
// values leaf per struct member.

inline constexpr char kLaqMagic[4] = {'L', 'A', 'Q', '1'};
/// Version 2 added per-page metadata inside column chunks (see PageMeta).
/// Version-1 footers (no page lists) still parse; their chunks simply
/// read as single unpaged units.
inline constexpr uint32_t kLaqVersion = 2;

/// One primitive leaf of the shredded schema.
struct LeafDesc {
  std::string path;      // "MET", "MET.phi", "Jet#lengths", "Jet.pt", ...
  TypeId physical;       // physical element type of the leaf
  int field_index = -1;  // top-level column this leaf belongs to
  int member_index = -1; // struct member index inside the column, or -1
  bool is_lengths = false;  // true for a list's per-row lengths leaf
};

/// Shreds a schema into its leaf layout. Supported column shapes:
/// primitive; struct of primitives; list of primitive; list of struct of
/// primitives. Deeper nesting returns NotImplemented (HEP events never
/// need it).
Result<std::vector<LeafDesc>> ComputeLeafLayout(const Schema& schema);

/// One page of a column chunk: a run of values encoded and compressed
/// independently (encodings restart at page boundaries), stored
/// back-to-back inside the chunk's compressed bytes. Pages are the
/// granularity of fine-grained zone-map skipping: a page whose
/// [min_value, max_value] cannot satisfy a scan predicate skips its
/// checksum + decompress + decode work entirely.
struct PageMeta {
  uint64_t num_values = 0;
  uint64_t compressed_size = 0;  // this page's bytes on storage
  uint64_t encoded_size = 0;     // this page's bytes before compression
  uint32_t crc32 = 0;            // over this page's compressed bytes
  bool has_stats = false;        // false e.g. for an all-NaN page
  double min_value = 0.0;
  double max_value = 0.0;
};

/// Location + properties of one leaf chunk within a row group.
struct ChunkMeta {
  uint64_t file_offset = 0;
  uint64_t compressed_size = 0;  // bytes on storage
  uint64_t encoded_size = 0;     // bytes after encoding, before compression
  uint64_t num_values = 0;
  Encoding encoding = Encoding::kPlain;
  Codec codec = Codec::kNone;
  uint32_t crc32 = 0;  // over the compressed bytes
  bool has_stats = false;
  double min_value = 0.0;  // numeric min/max for row-group pruning
  double max_value = 0.0;
  /// Page partition of the chunk, in value order; page sizes sum to the
  /// chunk totals. Empty for a version-1 chunk (or a hand-built footer):
  /// the chunk is then one opaque unit with no interior skipping.
  std::vector<PageMeta> pages;
};

struct RowGroupMeta {
  int64_t num_rows = 0;
  std::vector<ChunkMeta> chunks;  // one per leaf, in layout order
};

struct FileMetadata {
  uint32_t version = kLaqVersion;
  Schema schema;
  std::vector<LeafDesc> layout;
  std::vector<RowGroupMeta> row_groups;
  int64_t total_rows = 0;

  int num_leaves() const { return static_cast<int>(layout.size()); }
  /// Index of the leaf with the given path, or -1.
  int LeafIndex(const std::string& path) const;
};

/// Serializes the footer payload (excluding trailing size/crc/magic).
void SerializeFileMetadata(const FileMetadata& meta,
                           std::vector<uint8_t>* out);

/// Parses a footer payload produced by SerializeFileMetadata.
Status ParseFileMetadata(const uint8_t* data, size_t size,
                         FileMetadata* out);

/// Cross-checks parsed metadata against the physical file layout so that no
/// footer-derived integer ever reaches a resize()/memcpy/fseek unchecked.
/// `data_begin`/`data_end` delimit the chunk-data region of the file (after
/// the leading magic, before the footer). `max_chunk_decoded_bytes` caps the
/// decoded size (`num_values * width`) of any single chunk, bounding
/// allocations driven by a corrupt or hostile footer.
///
/// Invariants enforced (see DESIGN.md "Storage-layer validation"):
///   - every chunk's [file_offset, file_offset + compressed_size) lies
///     inside [data_begin, data_end), and the chunks of the file together
///     do not claim more bytes than the data region holds;
///   - per-chunk value counts are consistent with the schema: a lengths
///     leaf and every per-row leaf (top-level primitive, non-list struct
///     member) hold exactly `num_rows` values, and all item leaves of one
///     list column hold the same count;
///   - `encoded_size` is consistent with (encoding, physical type,
///     num_values): exact for plain/bitpack, bounded for the varint
///     encodings; the encoding is legal for the leaf's physical type;
///   - codec invariants the writer guarantees (kNone: compressed ==
///     encoded; kLz: 0 < compressed < encoded for non-empty chunks);
///   - row counts are non-negative and sum to total_rows; min/max
///     statistics are ordered.
Status ValidateFileMetadata(const FileMetadata& meta, uint64_t data_begin,
                            uint64_t data_end,
                            uint64_t max_chunk_decoded_bytes);

}  // namespace hepq

#endif  // HEPQUERY_FILEIO_FORMAT_H_
