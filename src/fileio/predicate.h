#ifndef HEPQUERY_FILEIO_PREDICATE_H_
#define HEPQUERY_FILEIO_PREDICATE_H_

#include <string>
#include <vector>

#include "fileio/format.h"

namespace hepq {

// Scan-predicate IR: the sargable residue of a query's filters, shared by
// every frontend (engine stages, flat WHERE steps, rdf Filter hints, doc
// FLWOR guards) and consumed by the storage layer for zone-map pruning.
//
// A ScanPredicate is one conservative *necessary* condition: "leaf value
// in [min_value, max_value]" must hold for a row to possibly survive the
// query's own gating predicate. The frontends only extract conjuncts that
// gate every histogram fill (top-level AND terms of a stage / WHERE /
// guard that precedes all output), which is what makes zone-map skipping
// sound:
//
//   - a row group whose zone [chunk.min, chunk.max] is disjoint from the
//     range can be skipped wholesale — no row in it can pass the gate;
//   - within a chunk, a page whose zone is disjoint can skip its
//     decompress + decode + checksum work. Its lanes are filled with the
//     page's min_value, which *also* lies outside the range, so when the
//     engine evaluates the original (unmodified) gate over the batch those
//     rows fail exactly as their true values would. Results stay
//     bit-identical with no cooperation from any executor ("fail-fill").
//
// The extraction is best-effort: anything a frontend cannot prove sargable
// is simply not added, and a predicate naming a leaf the file does not
// have is ignored at scan time. An empty set disables pruning.

/// One necessary range condition on a leaf column.
struct ScanPredicate {
  std::string leaf_path;  // "MET.pt", "Jet#lengths", "Jet.pt", ...
  /// Closed conservative interval: rows outside [min_value, max_value]
  /// cannot survive the query gate. Use +-infinity for one-sided bounds.
  double min_value = 0.0;
  double max_value = 0.0;
  /// True for element-existence conditions (AddItemRange). Per-row ranges
  /// on one leaf are intersected (the row's single value must satisfy
  /// all), but existence conditions must stay separate: an element in A
  /// and an element in B does not imply an element in A intersect B.
  bool item = false;
};

/// One necessary lower bound on the combined size of several lists (union
/// lists like "Lepton" = Electron + Muon): the sum of the lists' lengths
/// must reach `min_total` for a row to survive. No single lengths leaf
/// bounds a union, but the sum of the *zone maxima* of all source lengths
/// leaves bounds the per-row sum, which enables row-group pruning.
struct SumMinCountPredicate {
  std::vector<std::string> lengths_leaves;  // "Electron#lengths", ...
  int64_t min_total = 0;
};

/// A conjunction of ScanPredicates, one per distinct leaf (ranges on the
/// same leaf are intersected as they are added).
class ScanPredicateSet {
 public:
  /// Adds (intersects) the necessary condition `leaf value in [lo, hi]`.
  void AddRange(const std::string& leaf_path, double lo, double hi);

  /// Adds the necessary condition `|list_column| >= n` via the list's
  /// lengths leaf ("<col>#lengths" in [n, +inf)).
  void AddMinCount(const std::string& list_column, int64_t n);

  /// Adds the necessary condition "some element of `list_column`'s member
  /// leaf lies in [lo, hi]" (from exists/count>=1 style gates). Item
  /// leaves hold many values per row, so this only ever enables
  /// *row-group* pruning: if the whole group's zone is disjoint, no event
  /// in it has a qualifying element and every event fails the gate.
  void AddItemRange(const std::string& leaf_path, double lo, double hi);

  /// Adds the necessary condition `sum over columns of |list| >= n` for a
  /// union list concatenating several storage columns. Enables row-group
  /// pruning only (see SumMinCountPredicate); n < 1 or an empty column
  /// set adds nothing.
  void AddMinCountSum(const std::vector<std::string>& list_columns,
                      int64_t n);

  bool empty() const {
    return predicates_.empty() && sum_predicates_.empty();
  }
  size_t size() const { return predicates_.size() + sum_predicates_.size(); }
  const std::vector<ScanPredicate>& predicates() const { return predicates_; }
  const std::vector<SumMinCountPredicate>& sum_predicates() const {
    return sum_predicates_;
  }

  /// Union of the other set's conditions into this one (same-leaf ranges
  /// intersect, making the conjunction stronger).
  void Merge(const ScanPredicateSet& other);

  /// Debug rendering, one predicate per line ("Jet#lengths in [2, inf)").
  std::string ToString() const;

 private:
  void Intersect(const std::string& leaf_path, double lo, double hi);

  std::vector<ScanPredicate> predicates_;
  std::vector<SumMinCountPredicate> sum_predicates_;
};

/// A ScanPredicate resolved against one file's leaf layout.
struct BoundScanPredicate {
  int leaf_index = -1;
  double min_value = 0.0;
  double max_value = 0.0;
  /// True when the leaf holds exactly one value per event row (top-level
  /// primitive, struct member, or a list's lengths leaf). Per-row
  /// predicates participate in page skipping and batch-time evaluation;
  /// item-leaf predicates only in row-group pruning.
  bool per_row = false;
  bool is_lengths = false;
};

/// A SumMinCountPredicate resolved against one file's leaf layout.
struct BoundSumPredicate {
  std::vector<int> leaf_indices;  // all lengths leaves, all present
  int64_t min_total = 0;
};

/// Resolves `set` against `meta`, dropping predicates whose leaf the file
/// does not carry. Never fails: pruning is an optimization, not a
/// requirement.
std::vector<BoundScanPredicate> BindScanPredicates(
    const ScanPredicateSet& set, const FileMetadata& meta);

/// Resolves the sum-of-lengths conditions. A condition is dropped unless
/// *every* source lengths leaf exists (a missing term would make the
/// zone-sum bound unsound).
std::vector<BoundSumPredicate> BindSumPredicates(
    const ScanPredicateSet& set, const FileMetadata& meta);

/// True when a zone [stats_min, stats_max] is disjoint from the
/// predicate's range, i.e. nothing under the zone can satisfy it.
inline bool ZoneDisjoint(double stats_min, double stats_max,
                         const BoundScanPredicate& pred) {
  return stats_min > pred.max_value || stats_max < pred.min_value;
}

}  // namespace hepq

#endif  // HEPQUERY_FILEIO_PREDICATE_H_
