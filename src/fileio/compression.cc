#include "fileio/compression.h"

#include <cstring>

namespace hepq {

const char* CodecName(Codec codec) {
  switch (codec) {
    case Codec::kNone:
      return "none";
    case Codec::kLz:
      return "lz";
  }
  return "unknown";
}

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 14;

inline uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Emits a literal run + match pair in LZ4-block token format.
void EmitSequence(const uint8_t* literals, size_t literal_len,
                  size_t match_len, size_t offset,
                  std::vector<uint8_t>* out) {
  const size_t lit_token = literal_len < 15 ? literal_len : 15;
  // match_len == 0 encodes "trailing literals only" (end of block).
  const size_t match_code = match_len == 0 ? 0 : match_len - kMinMatch;
  const size_t match_token = match_code < 15 ? match_code : 15;
  out->push_back(static_cast<uint8_t>((lit_token << 4) | match_token));
  if (lit_token == 15) {
    size_t rest = literal_len - 15;
    while (rest >= 255) {
      out->push_back(255);
      rest -= 255;
    }
    out->push_back(static_cast<uint8_t>(rest));
  }
  out->insert(out->end(), literals, literals + literal_len);
  if (match_len == 0) return;
  out->push_back(static_cast<uint8_t>(offset & 0xff));
  out->push_back(static_cast<uint8_t>(offset >> 8));
  if (match_token == 15) {
    size_t rest = match_code - 15;
    while (rest >= 255) {
      out->push_back(255);
      rest -= 255;
    }
    out->push_back(static_cast<uint8_t>(rest));
  }
}

void LzCompress(const uint8_t* input, size_t n, std::vector<uint8_t>* out) {
  out->reserve(n / 2 + 64);
  std::vector<uint32_t> table(static_cast<size_t>(1) << kHashBits, 0);
  // Positions in `table` are stored +1 so 0 means "empty".
  size_t anchor = 0;  // start of the pending literal run
  size_t pos = 0;
  while (n >= kMinMatch && pos + kMinMatch <= n) {
    const uint32_t h = Hash4(input + pos);
    const uint32_t candidate_plus1 = table[h];
    table[h] = static_cast<uint32_t>(pos) + 1;
    if (candidate_plus1 != 0) {
      const size_t cand = candidate_plus1 - 1;
      const size_t offset = pos - cand;
      if (offset > 0 && offset <= kMaxOffset &&
          std::memcmp(input + cand, input + pos, kMinMatch) == 0) {
        size_t match_len = kMinMatch;
        while (pos + match_len < n &&
               input[cand + match_len] == input[pos + match_len]) {
          ++match_len;
        }
        EmitSequence(input + anchor, pos - anchor, match_len, offset, out);
        pos += match_len;
        anchor = pos;
        continue;
      }
    }
    ++pos;
  }
  // Trailing literals.
  EmitSequence(input + anchor, n - anchor, 0, 0, out);
}

Status LzDecompress(const uint8_t* input, size_t n, size_t expected,
                    std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(expected);
  size_t pos = 0;
  while (pos < n) {
    const uint8_t token = input[pos++];
    size_t literal_len = token >> 4;
    if (literal_len == 15) {
      uint8_t b;
      do {
        if (pos >= n) return Status::Corruption("lz: truncated literal len");
        b = input[pos++];
        literal_len += b;
      } while (b == 255);
    }
    if (pos + literal_len > n) {
      return Status::Corruption("lz: literal run past end");
    }
    if (literal_len > expected - out->size()) {
      return Status::Corruption("lz: output exceeds expected size");
    }
    out->insert(out->end(), input + pos, input + pos + literal_len);
    pos += literal_len;
    if (pos >= n) break;  // final sequence carries no match
    if (pos + 2 > n) return Status::Corruption("lz: truncated offset");
    const size_t offset = static_cast<size_t>(input[pos]) |
                          (static_cast<size_t>(input[pos + 1]) << 8);
    pos += 2;
    size_t match_code = token & 0x0f;
    if (match_code == 15) {
      uint8_t b;
      do {
        if (pos >= n) return Status::Corruption("lz: truncated match len");
        b = input[pos++];
        match_code += b;
      } while (b == 255);
    }
    const size_t match_len = match_code + kMinMatch;
    if (offset == 0 || offset > out->size()) {
      return Status::Corruption("lz: invalid match offset");
    }
    // A crafted stream of overlapping matches can otherwise balloon the
    // output to many times `expected` before the final size check; cap
    // every expansion up front. `out->size() <= expected` is an invariant,
    // so the subtraction cannot underflow.
    if (match_len > expected - out->size()) {
      return Status::Corruption("lz: output exceeds expected size");
    }
    // Byte-by-byte copy: matches may overlap their own output.
    size_t src = out->size() - offset;
    for (size_t i = 0; i < match_len; ++i) {
      out->push_back((*out)[src + i]);
    }
  }
  if (out->size() != expected) {
    return Status::Corruption("lz: decompressed size mismatch");
  }
  return Status::OK();
}

}  // namespace

Status Compress(Codec codec, const uint8_t* input, size_t input_size,
                std::vector<uint8_t>* out) {
  out->clear();
  switch (codec) {
    case Codec::kNone:
      out->assign(input, input + input_size);
      return Status::OK();
    case Codec::kLz:
      if (input_size == 0) return Status::OK();
      LzCompress(input, input_size, out);
      return Status::OK();
  }
  return Status::Invalid("unknown codec");
}

Status Decompress(Codec codec, const uint8_t* input, size_t input_size,
                  size_t decompressed_size, std::vector<uint8_t>* out) {
  switch (codec) {
    case Codec::kNone:
      if (input_size != decompressed_size) {
        return Status::Corruption("uncompressed chunk size mismatch");
      }
      out->assign(input, input + input_size);
      return Status::OK();
    case Codec::kLz:
      if (decompressed_size == 0) {
        out->clear();
        return input_size == 0
                   ? Status::OK()
                   : Status::Corruption("lz: nonempty stream for empty chunk");
      }
      return LzDecompress(input, input_size, decompressed_size, out);
  }
  return Status::Invalid("unknown codec");
}

}  // namespace hepq
