#include "fileio/layout_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "fileio/reader.h"

namespace hepq {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

double PrimitiveValueAt(const Array& array, int64_t i) {
  switch (array.type()->id()) {
    case TypeId::kFloat32:
      return static_cast<double>(
          static_cast<const Float32Array&>(array).Value(i));
    case TypeId::kFloat64:
      return static_cast<const Float64Array&>(array).Value(i);
    case TypeId::kInt32:
      return static_cast<double>(
          static_cast<const Int32Array&>(array).Value(i));
    case TypeId::kInt64:
      return static_cast<double>(
          static_cast<const Int64Array&>(array).Value(i));
    case TypeId::kBool:
      return static_cast<double>(
          static_cast<const BoolArray&>(array).Value(i));
    default:
      return kNegInf;  // unreachable: callers resolve to primitive leaves
  }
}

/// Per-event maximum of a list item leaf (the leading object's value);
/// events with empty lists get -inf so they cluster together.
void MaxPerEvent(const ListArray& list, const Array& items,
                 std::vector<double>* out) {
  for (int64_t i = 0; i < list.length(); ++i) {
    const uint32_t begin = list.list_offset(i);
    const uint32_t end = list.list_offset(i + 1);
    double best = kNegInf;
    for (uint32_t j = begin; j < end; ++j) {
      const double v = PrimitiveValueAt(items, static_cast<int64_t>(j));
      if (std::isnan(v)) continue;  // same rationale as the writer's stats
      best = std::max(best, v);
    }
    out->push_back(best);
  }
}

// ---- Generic gather / concat over the columnar tree -----------------------

template <typename T>
ArrayPtr GatherPrimitive(const PrimitiveArray<T>& src,
                         const std::vector<int64_t>& indices) {
  std::vector<T> values;
  values.reserve(indices.size());
  for (const int64_t i : indices) values.push_back(src.Value(i));
  return std::make_shared<PrimitiveArray<T>>(src.type(), std::move(values));
}

ArrayPtr GatherArray(const ArrayPtr& array,
                     const std::vector<int64_t>& indices) {
  switch (array->type()->id()) {
    case TypeId::kFloat32:
      return GatherPrimitive(static_cast<const Float32Array&>(*array),
                             indices);
    case TypeId::kFloat64:
      return GatherPrimitive(static_cast<const Float64Array&>(*array),
                             indices);
    case TypeId::kInt32:
      return GatherPrimitive(static_cast<const Int32Array&>(*array), indices);
    case TypeId::kInt64:
      return GatherPrimitive(static_cast<const Int64Array&>(*array), indices);
    case TypeId::kBool:
      return GatherPrimitive(static_cast<const BoolArray&>(*array), indices);
    case TypeId::kStruct: {
      const auto& st = static_cast<const StructArray&>(*array);
      std::vector<ArrayPtr> children;
      children.reserve(st.children().size());
      for (const ArrayPtr& child : st.children()) {
        children.push_back(GatherArray(child, indices));
      }
      return std::make_shared<StructArray>(array->type(),
                                           std::move(children));
    }
    case TypeId::kList: {
      const auto& list = static_cast<const ListArray&>(*array);
      std::vector<uint32_t> offsets;
      offsets.reserve(indices.size() + 1);
      offsets.push_back(0);
      std::vector<int64_t> child_indices;
      for (const int64_t i : indices) {
        const uint32_t begin = list.list_offset(i);
        const uint32_t end = list.list_offset(i + 1);
        for (uint32_t j = begin; j < end; ++j) {
          child_indices.push_back(static_cast<int64_t>(j));
        }
        offsets.push_back(static_cast<uint32_t>(child_indices.size()));
      }
      ArrayPtr child = GatherArray(list.child(), child_indices);
      return std::make_shared<ListArray>(array->type(), std::move(offsets),
                                         std::move(child));
    }
  }
  return nullptr;  // unreachable: layout types are validated at Open
}

template <typename T>
ArrayPtr ConcatPrimitive(const std::vector<ArrayPtr>& parts) {
  std::vector<T> values;
  for (const ArrayPtr& part : parts) {
    const auto& typed = static_cast<const PrimitiveArray<T>&>(*part);
    values.insert(values.end(), typed.values().begin(), typed.values().end());
  }
  return std::make_shared<PrimitiveArray<T>>(parts.front()->type(),
                                             std::move(values));
}

ArrayPtr ConcatArrays(const std::vector<ArrayPtr>& parts) {
  switch (parts.front()->type()->id()) {
    case TypeId::kFloat32:
      return ConcatPrimitive<float>(parts);
    case TypeId::kFloat64:
      return ConcatPrimitive<double>(parts);
    case TypeId::kInt32:
      return ConcatPrimitive<int32_t>(parts);
    case TypeId::kInt64:
      return ConcatPrimitive<int64_t>(parts);
    case TypeId::kBool:
      return ConcatPrimitive<uint8_t>(parts);
    case TypeId::kStruct: {
      const size_t num_children =
          static_cast<const StructArray&>(*parts.front()).children().size();
      std::vector<ArrayPtr> children;
      for (size_t c = 0; c < num_children; ++c) {
        std::vector<ArrayPtr> slices;
        slices.reserve(parts.size());
        for (const ArrayPtr& part : parts) {
          slices.push_back(
              static_cast<const StructArray&>(*part).child(
                  static_cast<int>(c)));
        }
        children.push_back(ConcatArrays(slices));
      }
      return std::make_shared<StructArray>(parts.front()->type(),
                                           std::move(children));
    }
    case TypeId::kList: {
      std::vector<uint32_t> offsets;
      offsets.push_back(0);
      std::vector<ArrayPtr> children;
      uint32_t base = 0;
      for (const ArrayPtr& part : parts) {
        const auto& list = static_cast<const ListArray&>(*part);
        for (int64_t i = 0; i < list.length(); ++i) {
          offsets.push_back(base + list.list_offset(i + 1));
        }
        base = offsets.back();
        children.push_back(list.child());
      }
      ArrayPtr child = ConcatArrays(children);
      return std::make_shared<ListArray>(parts.front()->type(),
                                         std::move(offsets),
                                         std::move(child));
    }
  }
  return nullptr;  // unreachable
}

}  // namespace

Result<std::vector<double>> ExtractClusterKey(const RecordBatch& batch,
                                              const std::string& path) {
  std::vector<double> keys;
  keys.reserve(static_cast<size_t>(batch.num_rows()));

  std::string field_name = path;
  std::string member;
  bool lengths = false;
  const size_t hash = path.find("#lengths");
  const size_t dot = path.find('.');
  if (hash != std::string::npos) {
    field_name = path.substr(0, hash);
    lengths = true;
  } else if (dot != std::string::npos) {
    field_name = path.substr(0, dot);
    member = path.substr(dot + 1);
  }

  const ArrayPtr column = batch.ColumnByName(field_name);
  if (column == nullptr) {
    return Status::KeyError("cluster key '" + path + "': no column '" +
                            field_name + "'");
  }
  const DataType& type = *column->type();

  if (lengths) {
    if (type.id() != TypeId::kList) {
      return Status::KeyError("cluster key '" + path +
                              "': column is not a list");
    }
    const auto& list = static_cast<const ListArray&>(*column);
    for (int64_t i = 0; i < list.length(); ++i) {
      keys.push_back(static_cast<double>(list.list_length(i)));
    }
    return keys;
  }
  if (type.is_primitive()) {
    if (!member.empty()) {
      return Status::KeyError("cluster key '" + path +
                              "': primitive column has no members");
    }
    for (int64_t i = 0; i < column->length(); ++i) {
      keys.push_back(PrimitiveValueAt(*column, i));
    }
    return keys;
  }
  if (type.id() == TypeId::kStruct) {
    const auto& st = static_cast<const StructArray&>(*column);
    const ArrayPtr child = st.ChildByName(member);
    if (child == nullptr || !child->type()->is_primitive()) {
      return Status::KeyError("cluster key '" + path + "': no member '" +
                              member + "'");
    }
    for (int64_t i = 0; i < child->length(); ++i) {
      keys.push_back(PrimitiveValueAt(*child, i));
    }
    return keys;
  }
  if (type.id() == TypeId::kList) {
    const auto& list = static_cast<const ListArray&>(*column);
    const Array& child = *list.child();
    if (child.type()->is_primitive()) {
      if (member != "item" && !member.empty()) {
        return Status::KeyError("cluster key '" + path +
                                "': list of primitives has only 'item'");
      }
      MaxPerEvent(list, child, &keys);
      return keys;
    }
    const auto& st = static_cast<const StructArray&>(child);
    const ArrayPtr item = st.ChildByName(member);
    if (item == nullptr || !item->type()->is_primitive()) {
      return Status::KeyError("cluster key '" + path + "': no member '" +
                              member + "'");
    }
    MaxPerEvent(list, *item, &keys);
    return keys;
  }
  return Status::KeyError("cluster key '" + path + "': unsupported column");
}

int64_t DeriveRowGroupSize(int64_t total_rows) {
  // Enough groups that a multiplicity gate can skip many whole groups
  // (the dominant win: lengths leaves are never page-skipped because
  // their values become offsets), but large enough to amortize per-group
  // decode setup and keep the footer small. Measured on the 20k-event
  // generator set, 512-row groups prune ~10-15% more decoded bytes than
  // 2048-row groups on the multiplicity-gated queries while adding <2%
  // footer overhead, so the floor sits at 512.
  return std::clamp<int64_t>(total_rows / 64, 512, 65536);
}

int64_t DerivePageValues(int64_t row_group_size) {
  // Several pages per chunk so interior kinematic pages can be skipped
  // independently; multiples of 8 keep bit-packed bool pages byte-aligned.
  return std::clamp<int64_t>(row_group_size / 8, 256, 4096);
}

Result<LayoutAnalysis> AnalyzeLaqFile(const std::string& path) {
  std::unique_ptr<LaqReader> reader;
  HEPQ_ASSIGN_OR_RETURN(reader, LaqReader::Open(path));
  const FileMetadata& meta = reader->metadata();

  LayoutAnalysis analysis;
  analysis.total_rows = meta.total_rows;
  analysis.row_groups = static_cast<int>(meta.row_groups.size());
  analysis.leaves.resize(meta.layout.size());

  // First pass: the per-leaf range of all page stats; a page is prunable
  // iff its zone is strictly inside that range (same rule as laq_inspect).
  std::vector<double> col_min(meta.layout.size(),
                              std::numeric_limits<double>::infinity());
  std::vector<double> col_max(meta.layout.size(), kNegInf);
  for (const RowGroupMeta& rg : meta.row_groups) {
    for (size_t l = 0; l < rg.chunks.size(); ++l) {
      for (const PageMeta& page : rg.chunks[l].pages) {
        if (!page.has_stats) continue;
        col_min[l] = std::min(col_min[l], page.min_value);
        col_max[l] = std::max(col_max[l], page.max_value);
      }
    }
  }
  for (size_t l = 0; l < meta.layout.size(); ++l) {
    LeafLayoutSummary& leaf = analysis.leaves[l];
    leaf.path = meta.layout[l].path;
    leaf.physical = meta.layout[l].physical;
  }
  for (const RowGroupMeta& rg : meta.row_groups) {
    for (size_t l = 0; l < rg.chunks.size(); ++l) {
      const ChunkMeta& chunk = rg.chunks[l];
      LeafLayoutSummary& leaf = analysis.leaves[l];
      leaf.encoding = chunk.encoding;
      leaf.storage_bytes += chunk.compressed_size;
      analysis.storage_bytes += chunk.compressed_size;
      for (const PageMeta& page : chunk.pages) {
        leaf.pages += 1;
        if (page.has_stats &&
            (page.min_value > col_min[l] || page.max_value < col_max[l])) {
          leaf.prunable_pages += 1;
        }
      }
    }
  }
  return analysis;
}

Result<LayoutAnalysis> OptimizeLaqFile(const std::string& input,
                                       const std::string& output,
                                       const OptimizeOptions& options) {
  std::unique_ptr<LaqReader> reader;
  HEPQ_ASSIGN_OR_RETURN(reader, LaqReader::Open(input));

  std::vector<std::string> projection;
  for (const Field& f : reader->schema().fields()) {
    projection.push_back(f.name);
  }

  // Materialize the whole dataset once. The optimizer is an offline
  // rewrite pass (like a skim job), so trading memory for a global sort
  // is the right call at the scales the repo runs.
  std::vector<ArrayPtr> columns;
  {
    std::vector<RecordBatchPtr> groups;
    for (int g = 0; g < reader->num_row_groups(); ++g) {
      RecordBatchPtr batch;
      HEPQ_ASSIGN_OR_RETURN(batch, reader->ReadRowGroup(g, projection));
      groups.push_back(std::move(batch));
    }
    if (groups.empty()) {
      return Status::Invalid("cannot optimize an empty file");
    }
    for (int c = 0; c < groups.front()->num_columns(); ++c) {
      std::vector<ArrayPtr> parts;
      parts.reserve(groups.size());
      for (const RecordBatchPtr& g : groups) parts.push_back(g->column(c));
      columns.push_back(ConcatArrays(parts));
    }
  }
  auto schema = std::make_shared<Schema>(reader->schema());
  const int64_t total_rows = reader->total_rows();
  RecordBatch all(schema, total_rows, columns);

  // Composite cluster key: lexicographic over the key columns, NaN last
  // within each key, stable so equal-key events keep file order — the
  // rewrite is fully deterministic.
  std::vector<std::vector<double>> keys;
  for (const std::string& path : options.cluster_keys) {
    std::vector<double> key;
    HEPQ_ASSIGN_OR_RETURN(key, ExtractClusterKey(all, path));
    keys.push_back(std::move(key));
  }
  std::vector<int64_t> perm(static_cast<size_t>(total_rows));
  std::iota(perm.begin(), perm.end(), int64_t{0});
  if (!keys.empty()) {
    std::stable_sort(perm.begin(), perm.end(),
                     [&keys](int64_t a, int64_t b) {
                       for (const std::vector<double>& key : keys) {
                         const double ka = key[static_cast<size_t>(a)];
                         const double kb = key[static_cast<size_t>(b)];
                         const bool na = std::isnan(ka);
                         const bool nb = std::isnan(kb);
                         if (na || nb) {
                           if (na != nb) return nb;  // NaN sorts last
                           continue;
                         }
                         if (ka < kb) return true;
                         if (kb < ka) return false;
                       }
                       return false;
                     });
  }

  WriterOptions writer_options;
  writer_options.row_group_size = options.row_group_size > 0
                                      ? options.row_group_size
                                      : DeriveRowGroupSize(total_rows);
  writer_options.page_values = options.page_values > 0
                                   ? options.page_values
                                   : DerivePageValues(
                                         writer_options.row_group_size);
  writer_options.codec = options.codec;
  writer_options.write_statistics = options.write_statistics;
  writer_options.advanced_encodings = options.advanced_encodings;

  std::unique_ptr<LaqWriter> writer;
  HEPQ_ASSIGN_OR_RETURN(writer,
                        LaqWriter::Open(output, schema, writer_options));
  const int64_t step = writer_options.row_group_size;
  for (int64_t offset = 0; offset < total_rows; offset += step) {
    const int64_t n = std::min(step, total_rows - offset);
    const std::vector<int64_t> slice(
        perm.begin() + static_cast<ptrdiff_t>(offset),
        perm.begin() + static_cast<ptrdiff_t>(offset + n));
    std::vector<ArrayPtr> out_columns;
    out_columns.reserve(columns.size());
    for (const ArrayPtr& column : columns) {
      out_columns.push_back(GatherArray(column, slice));
    }
    HEPQ_RETURN_NOT_OK(
        writer->WriteBatch(RecordBatch(schema, n, std::move(out_columns))));
  }
  HEPQ_RETURN_NOT_OK(writer->Close());
  return AnalyzeLaqFile(output);
}

}  // namespace hepq
