#include "fileio/dataset_reader.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>

namespace hepq {

bool IsDirectory(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

Result<std::vector<std::string>> ListLaqFiles(const std::string& directory) {
  DIR* dir = ::opendir(directory.c_str());
  if (dir == nullptr) {
    return Status::Invalid("cannot open dataset directory '" + directory +
                           "'");
  }
  std::vector<std::string> paths;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".laq") == 0) {
      paths.push_back(directory + "/" + name);
    }
  }
  ::closedir(dir);
  if (paths.empty()) {
    return Status::Invalid("no .laq files in dataset directory '" +
                           directory + "'");
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

Result<std::unique_ptr<DatasetReader>> DatasetReader::Open(
    const std::vector<std::string>& paths, ReaderOptions options) {
  if (paths.empty()) {
    return Status::Invalid("data set needs at least one file");
  }
  auto dataset = std::unique_ptr<DatasetReader>(new DatasetReader());
  dataset->group_offsets_.push_back(0);
  for (const std::string& path : paths) {
    std::unique_ptr<LaqReader> reader;
    HEPQ_ASSIGN_OR_RETURN(reader, LaqReader::Open(path, options));
    if (!dataset->files_.empty() &&
        !reader->schema().Equals(dataset->files_.front()->schema())) {
      return Status::Invalid("file '" + path +
                             "' has a different schema than the first "
                             "file of the data set");
    }
    dataset->total_row_groups_ += reader->num_row_groups();
    dataset->total_rows_ += reader->total_rows();
    dataset->group_offsets_.push_back(dataset->total_row_groups_);
    dataset->files_.push_back(std::move(reader));
  }
  return dataset;
}

Result<std::unique_ptr<DatasetReader>> DatasetReader::OpenDirectory(
    const std::string& directory, ReaderOptions options) {
  std::vector<std::string> paths;
  HEPQ_ASSIGN_OR_RETURN(paths, ListLaqFiles(directory));
  return Open(paths, options);
}

Result<std::pair<int, int>> DatasetReader::Locate(int index) const {
  if (index < 0 || index >= total_row_groups_) {
    return Status::OutOfRange("row group index out of range");
  }
  // group_offsets_ is sorted; find the owning file.
  const auto it = std::upper_bound(group_offsets_.begin(),
                                   group_offsets_.end(), index);
  const int file = static_cast<int>(it - group_offsets_.begin()) - 1;
  return std::make_pair(file,
                        index - group_offsets_[static_cast<size_t>(file)]);
}

Result<RecordBatchPtr> DatasetReader::ReadRowGroup(
    int index, const std::vector<std::string>& projection) {
  std::pair<int, int> location;
  HEPQ_ASSIGN_OR_RETURN(location, Locate(index));
  return files_[static_cast<size_t>(location.first)]->ReadRowGroup(
      location.second, projection);
}

Result<RecordBatchPtr> DatasetReader::ReadRowGroup(int index) {
  std::pair<int, int> location;
  HEPQ_ASSIGN_OR_RETURN(location, Locate(index));
  return files_[static_cast<size_t>(location.first)]->ReadRowGroup(
      location.second);
}

ScanStats DatasetReader::scan_stats() const {
  ScanStats total;
  for (const auto& file : files_) {
    total.Add(file->scan_stats());
  }
  return total;
}

void DatasetReader::ResetScanStats() {
  for (auto& file : files_) {
    file->ResetScanStats();
  }
}

}  // namespace hepq
