#ifndef HEPQUERY_FILEIO_DATASET_READER_H_
#define HEPQUERY_FILEIO_DATASET_READER_H_

#include <memory>
#include <string>
#include <vector>

#include "fileio/reader.h"

namespace hepq {

/// True if `path` names an existing directory (a sharded dataset root).
bool IsDirectory(const std::string& path);

/// Every "*.laq" file in `directory`, sorted by name — the canonical shard
/// order shared by DatasetReader, the exec dataset runtime, the
/// scatter/gather coordinator, and the dataset-aware tools (all of them
/// must agree on shard numbering). A missing or empty directory is an
/// Invalid error naming the path.
Result<std::vector<std::string>> ListLaqFiles(const std::string& directory);

/// A partitioned data set: an ordered collection of .laq files exposed as
/// one logical table whose row groups are globally numbered across files.
/// This mirrors how the paper's systems see the benchmark data — external
/// tables over a directory of Parquet files, with files (and the row
/// groups inside them) as the parallelization units.
class DatasetReader {
 public:
  /// Opens every path as a .laq file; all schemas must match.
  static Result<std::unique_ptr<DatasetReader>> Open(
      const std::vector<std::string>& paths, ReaderOptions options = {});

  /// Opens every "*.laq" file in `directory`, sorted by name.
  static Result<std::unique_ptr<DatasetReader>> OpenDirectory(
      const std::string& directory, ReaderOptions options = {});

  const Schema& schema() const { return files_.front()->schema(); }
  int num_files() const { return static_cast<int>(files_.size()); }
  int num_row_groups() const { return total_row_groups_; }
  int64_t total_rows() const { return total_rows_; }

  /// Reads global row group `index` (spanning file boundaries) with a
  /// projection, as LaqReader::ReadRowGroup does.
  Result<RecordBatchPtr> ReadRowGroup(
      int index, const std::vector<std::string>& projection);
  Result<RecordBatchPtr> ReadRowGroup(int index);

  /// Aggregated IO accounting across all member files.
  ScanStats scan_stats() const;
  void ResetScanStats();

  /// The underlying reader of one file (for statistics-based pruning or
  /// metadata inspection).
  const LaqReader& file(int i) const { return *files_[static_cast<size_t>(i)]; }

 private:
  DatasetReader() = default;

  /// Maps a global group index to (file, local group).
  Result<std::pair<int, int>> Locate(int index) const;

  std::vector<std::unique_ptr<LaqReader>> files_;
  std::vector<int> group_offsets_;  // prefix sums; size = files + 1
  int total_row_groups_ = 0;
  int64_t total_rows_ = 0;
};

}  // namespace hepq

#endif  // HEPQUERY_FILEIO_DATASET_READER_H_
