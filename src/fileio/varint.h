#ifndef HEPQUERY_FILEIO_VARINT_H_
#define HEPQUERY_FILEIO_VARINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace hepq {

/// LEB128-style unsigned varint append.
void PutVarint(std::vector<uint8_t>* out, uint64_t value);

/// Zig-zag-encoded signed varint append.
void PutSignedVarint(std::vector<uint8_t>* out, int64_t value);

/// Cursor over a byte buffer for decoding. All Get* methods fail cleanly on
/// truncated input (required for robust footer parsing of damaged files).
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ >= size_; }

  Status GetVarint(uint64_t* out);
  Status GetSignedVarint(int64_t* out);
  Status GetFixed32(uint32_t* out);
  Status GetFixed64(uint64_t* out);
  Status GetDouble(double* out);
  Status GetString(std::string* out);
  Status GetBytes(void* out, size_t n);
  Status Skip(size_t n);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Append helpers used by the footer serializer.
void PutFixed32(std::vector<uint8_t>* out, uint32_t v);
void PutFixed64(std::vector<uint8_t>* out, uint64_t v);
void PutDouble(std::vector<uint8_t>* out, double v);
void PutString(std::vector<uint8_t>* out, const std::string& s);

}  // namespace hepq

#endif  // HEPQUERY_FILEIO_VARINT_H_
