#ifndef HEPQUERY_DOC_FUNCTIONS_H_
#define HEPQUERY_DOC_FUNCTIONS_H_

namespace hepq::doc {

/// Registers the core (fn:) and physics (hep:) builtin function library in
/// the process-wide registry. Idempotent; called by DocRunner, call it
/// yourself when evaluating expressions directly.
///
/// Core: count, sum, min, max, abs, sqrt, exists, empty, not.
/// Physics (the "module library" of paper §3.6): hep:add-pt-eta-phi-m2/-m3
/// (pseudo-particle construction), hep:invariant-mass2/-mass3, hep:delta-r,
/// hep:delta-phi, hep:transverse-mass.
void EnsureDocFunctionsRegistered();

}  // namespace hepq::doc

#endif  // HEPQUERY_DOC_FUNCTIONS_H_
