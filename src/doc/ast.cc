#include "doc/ast.h"

#include <algorithm>
#include <map>

namespace hepq::doc {

Result<Sequence> DocContext::Lookup(const std::string& name) const {
  for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
    if (it->first == name) return it->second;
  }
  return Status::KeyError("undefined variable $" + name);
}

namespace {

class NumExpr final : public DocExpr {
 public:
  explicit NumExpr(double v) : item_(Item::Number(v)) {}
  Result<Sequence> Eval(DocContext* ctx) const override {
    ++ctx->steps;
    return Sequence{item_};
  }
  DocShape Shape() const override {
    DocShape s;
    s.kind = DocShape::Kind::kNum;
    s.num = item_->AsDouble();
    return s;
  }

 private:
  ItemPtr item_;
};

class BoolExpr final : public DocExpr {
 public:
  explicit BoolExpr(bool v) : item_(Item::Bool(v)) {}
  Result<Sequence> Eval(DocContext* ctx) const override {
    ++ctx->steps;
    return Sequence{item_};
  }

 private:
  ItemPtr item_;
};

class VarExpr final : public DocExpr {
 public:
  explicit VarExpr(std::string name) : name_(std::move(name)) {}
  Result<Sequence> Eval(DocContext* ctx) const override {
    ++ctx->steps;
    return ctx->Lookup(name_);
  }
  DocShape Shape() const override {
    DocShape s;
    s.kind = DocShape::Kind::kVar;
    s.name = name_;
    return s;
  }

 private:
  std::string name_;
};

class ContextItemExpr final : public DocExpr {
 public:
  Result<Sequence> Eval(DocContext* ctx) const override {
    ++ctx->steps;
    if (!ctx->HasContextItem()) {
      return Status::Invalid("$$ used outside a predicate");
    }
    return Sequence{ctx->ContextItem()};
  }
  DocShape Shape() const override {
    DocShape s;
    s.kind = DocShape::Kind::kContextItem;
    return s;
  }
};

class MemberExpr final : public DocExpr {
 public:
  MemberExpr(DocExprPtr input, std::string name)
      : input_(std::move(input)), name_(std::move(name)) {}
  Result<Sequence> Eval(DocContext* ctx) const override {
    ++ctx->steps;
    Sequence in;
    HEPQ_ASSIGN_OR_RETURN(in, input_->Eval(ctx));
    Sequence out;
    for (const ItemPtr& item : in) {
      if (!item->IsObject()) continue;  // JSONiq: non-objects yield empty
      ItemPtr member = item->Member(name_);
      if (member != nullptr) out.push_back(std::move(member));
    }
    return out;
  }
  DocShape Shape() const override {
    DocShape s;
    s.kind = DocShape::Kind::kMember;
    s.name = name_;
    s.input = input_.get();
    return s;
  }

 private:
  DocExprPtr input_;
  std::string name_;
};

class UnboxExpr final : public DocExpr {
 public:
  explicit UnboxExpr(DocExprPtr input) : input_(std::move(input)) {}
  Result<Sequence> Eval(DocContext* ctx) const override {
    ++ctx->steps;
    Sequence in;
    HEPQ_ASSIGN_OR_RETURN(in, input_->Eval(ctx));
    Sequence out;
    for (const ItemPtr& item : in) {
      if (!item->IsArray()) continue;
      const Sequence& elements = item->Elements();
      out.insert(out.end(), elements.begin(), elements.end());
    }
    return out;
  }
  DocShape Shape() const override {
    DocShape s;
    s.kind = DocShape::Kind::kUnbox;
    s.input = input_.get();
    return s;
  }

 private:
  DocExprPtr input_;
};

class PredicateExpr final : public DocExpr {
 public:
  PredicateExpr(DocExprPtr input, DocExprPtr predicate)
      : input_(std::move(input)), predicate_(std::move(predicate)) {}
  Result<Sequence> Eval(DocContext* ctx) const override {
    ++ctx->steps;
    Sequence in;
    HEPQ_ASSIGN_OR_RETURN(in, input_->Eval(ctx));
    Sequence out;
    for (size_t i = 0; i < in.size(); ++i) {
      ctx->PushContextItem(in[i]);
      auto pred_result = predicate_->Eval(ctx);
      ctx->PopContextItem();
      if (!pred_result.ok()) return pred_result.status();
      const Sequence& pred = *pred_result;
      if (pred.size() == 1 && pred.front()->IsNumber()) {
        // Positional predicate (1-based).
        if (static_cast<double>(i + 1) == pred.front()->AsDouble()) {
          out.push_back(in[i]);
        }
      } else if (EffectiveBooleanValue(pred)) {
        out.push_back(in[i]);
      }
    }
    return out;
  }
  DocShape Shape() const override {
    DocShape s;
    s.kind = DocShape::Kind::kPredicate;
    s.input = input_.get();
    s.predicate = predicate_.get();
    return s;
  }

 private:
  DocExprPtr input_;
  DocExprPtr predicate_;
};

class BinExpr final : public DocExpr {
 public:
  BinExpr(DocBinOp op, DocExprPtr lhs, DocExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Result<Sequence> Eval(DocContext* ctx) const override {
    ++ctx->steps;
    Sequence lhs;
    HEPQ_ASSIGN_OR_RETURN(lhs, lhs_->Eval(ctx));
    if (op_ == DocBinOp::kAnd) {
      if (!EffectiveBooleanValue(lhs)) return Sequence{Item::Bool(false)};
      Sequence rhs;
      HEPQ_ASSIGN_OR_RETURN(rhs, rhs_->Eval(ctx));
      return Sequence{Item::Bool(EffectiveBooleanValue(rhs))};
    }
    if (op_ == DocBinOp::kOr) {
      if (EffectiveBooleanValue(lhs)) return Sequence{Item::Bool(true)};
      Sequence rhs;
      HEPQ_ASSIGN_OR_RETURN(rhs, rhs_->Eval(ctx));
      return Sequence{Item::Bool(EffectiveBooleanValue(rhs))};
    }
    Sequence rhs;
    HEPQ_ASSIGN_OR_RETURN(rhs, rhs_->Eval(ctx));
    // Arithmetic/comparison on empty operands yields the empty sequence.
    if (lhs.empty() || rhs.empty()) return Sequence{};
    const double a = lhs.front()->AsDouble();
    const double b = rhs.front()->AsDouble();
    switch (op_) {
      case DocBinOp::kAdd:
        return Sequence{Item::Number(a + b)};
      case DocBinOp::kSub:
        return Sequence{Item::Number(a - b)};
      case DocBinOp::kMul:
        return Sequence{Item::Number(a * b)};
      case DocBinOp::kDiv:
        return Sequence{Item::Number(a / b)};
      case DocBinOp::kLt:
        return Sequence{Item::Bool(a < b)};
      case DocBinOp::kLe:
        return Sequence{Item::Bool(a <= b)};
      case DocBinOp::kGt:
        return Sequence{Item::Bool(a > b)};
      case DocBinOp::kGe:
        return Sequence{Item::Bool(a >= b)};
      case DocBinOp::kEq:
        return Sequence{Item::Bool(a == b)};
      case DocBinOp::kNe:
        return Sequence{Item::Bool(a != b)};
      default:
        return Status::Invalid("unhandled binary operator");
    }
  }
  DocShape Shape() const override {
    DocShape s;
    s.kind = DocShape::Kind::kBin;
    s.bin_op = op_;
    s.args = {lhs_.get(), rhs_.get()};
    return s;
  }

 private:
  DocBinOp op_;
  DocExprPtr lhs_;
  DocExprPtr rhs_;
};

class CallExpr final : public DocExpr {
 public:
  CallExpr(std::string name, std::vector<DocExprPtr> args)
      : name_(std::move(name)), args_(std::move(args)) {}
  Result<Sequence> Eval(DocContext* ctx) const override {
    ++ctx->steps;
    DocFunction fn;
    HEPQ_ASSIGN_OR_RETURN(fn, LookupDocFunction(name_));
    std::vector<Sequence> args;
    args.reserve(args_.size());
    for (const DocExprPtr& arg : args_) {
      Sequence value;
      HEPQ_ASSIGN_OR_RETURN(value, arg->Eval(ctx));
      args.push_back(std::move(value));
    }
    return fn(args);
  }
  DocShape Shape() const override {
    DocShape s;
    s.kind = DocShape::Kind::kCall;
    s.name = name_;
    s.args.reserve(args_.size());
    for (const DocExprPtr& arg : args_) s.args.push_back(arg.get());
    return s;
  }

 private:
  std::string name_;
  std::vector<DocExprPtr> args_;
};

class ObjectExpr final : public DocExpr {
 public:
  explicit ObjectExpr(std::vector<std::pair<std::string, DocExprPtr>> members)
      : members_(std::move(members)) {}
  Result<Sequence> Eval(DocContext* ctx) const override {
    ++ctx->steps;
    std::vector<std::pair<std::string, ItemPtr>> out;
    out.reserve(members_.size());
    for (const auto& [name, expr] : members_) {
      Sequence value;
      HEPQ_ASSIGN_OR_RETURN(value, expr->Eval(ctx));
      out.emplace_back(name,
                       value.empty() ? Item::Null() : value.front());
    }
    return Sequence{Item::Object(std::move(out))};
  }

 private:
  std::vector<std::pair<std::string, DocExprPtr>> members_;
};

class ArrayExpr final : public DocExpr {
 public:
  explicit ArrayExpr(DocExprPtr contents) : contents_(std::move(contents)) {}
  Result<Sequence> Eval(DocContext* ctx) const override {
    ++ctx->steps;
    Sequence value;
    HEPQ_ASSIGN_OR_RETURN(value, contents_->Eval(ctx));
    return Sequence{Item::Array(std::move(value))};
  }

 private:
  DocExprPtr contents_;
};

class IfExpr final : public DocExpr {
 public:
  IfExpr(DocExprPtr condition, DocExprPtr then_expr, DocExprPtr else_expr)
      : condition_(std::move(condition)),
        then_(std::move(then_expr)),
        else_(std::move(else_expr)) {}
  Result<Sequence> Eval(DocContext* ctx) const override {
    ++ctx->steps;
    Sequence cond;
    HEPQ_ASSIGN_OR_RETURN(cond, condition_->Eval(ctx));
    if (EffectiveBooleanValue(cond)) return then_->Eval(ctx);
    if (else_ == nullptr) return Sequence{};
    return else_->Eval(ctx);
  }
  DocShape Shape() const override {
    DocShape s;
    s.kind = DocShape::Kind::kIf;
    s.input = condition_.get();
    s.args = {then_.get(), else_.get()};  // else_ may be null
    return s;
  }

 private:
  DocExprPtr condition_;
  DocExprPtr then_;
  DocExprPtr else_;
};

class ConcatExpr final : public DocExpr {
 public:
  explicit ConcatExpr(std::vector<DocExprPtr> parts)
      : parts_(std::move(parts)) {}
  Result<Sequence> Eval(DocContext* ctx) const override {
    ++ctx->steps;
    Sequence out;
    for (const DocExprPtr& part : parts_) {
      Sequence value;
      HEPQ_ASSIGN_OR_RETURN(value, part->Eval(ctx));
      out.insert(out.end(), value.begin(), value.end());
    }
    return out;
  }

 private:
  std::vector<DocExprPtr> parts_;
};

class QuantifiedExpr final : public DocExpr {
 public:
  QuantifiedExpr(bool existential, std::string var, DocExprPtr source,
                 DocExprPtr predicate)
      : existential_(existential),
        var_(std::move(var)),
        source_(std::move(source)),
        predicate_(std::move(predicate)) {}

  Result<Sequence> Eval(DocContext* ctx) const override {
    ++ctx->steps;
    Sequence in;
    HEPQ_ASSIGN_OR_RETURN(in, source_->Eval(ctx));
    for (const ItemPtr& item : in) {
      ctx->Push(var_, Sequence{item});
      auto pred = predicate_->Eval(ctx);
      ctx->Pop();
      if (!pred.ok()) return pred.status();
      const bool holds = EffectiveBooleanValue(*pred);
      if (existential_ && holds) return Sequence{Item::Bool(true)};
      if (!existential_ && !holds) return Sequence{Item::Bool(false)};
    }
    return Sequence{Item::Bool(!existential_)};
  }

 private:
  bool existential_;
  std::string var_;
  DocExprPtr source_;
  DocExprPtr predicate_;
};

class FlworExpr final : public DocExpr {
 public:
  FlworExpr(std::vector<FlworClause> clauses, DocExprPtr return_expr,
            DocExprPtr order_by_key, bool order_descending)
      : clauses_(std::move(clauses)),
        return_(std::move(return_expr)),
        order_by_key_(std::move(order_by_key)),
        order_descending_(order_descending) {
    for (size_t i = 0; i < clauses_.size(); ++i) {
      const FlworClause& clause = clauses_[i];
      if (clause.kind == FlworClause::Kind::kGroupBy &&
          group_by_index_ < 0) {
        group_by_index_ = static_cast<int>(i);
      }
      if (group_by_index_ < 0) {
        if (clause.kind == FlworClause::Kind::kFor ||
            clause.kind == FlworClause::Kind::kLet) {
          bound_vars_.push_back(clause.var);
          if (!clause.position_var.empty()) {
            bound_vars_.push_back(clause.position_var);
          }
        }
      }
    }
  }

  Result<Sequence> Eval(DocContext* ctx) const override {
    ++ctx->steps;
    Sequence out;
    std::vector<std::pair<double, Sequence>> ordered;
    if (group_by_index_ >= 0) {
      HEPQ_RETURN_NOT_OK(EvalGrouped(ctx, &out, &ordered));
    } else {
      HEPQ_RETURN_NOT_OK(Recurse(ctx, 0, &out, &ordered));
    }
    if (order_by_key_ != nullptr) {
      std::stable_sort(ordered.begin(), ordered.end(),
                       [this](const auto& a, const auto& b) {
                         return order_descending_ ? a.first > b.first
                                                  : a.first < b.first;
                       });
      for (auto& [key, value] : ordered) {
        out.insert(out.end(), value.begin(), value.end());
      }
    }
    return out;
  }

  DocShape Shape() const override {
    DocShape s;
    s.kind = DocShape::Kind::kFlwor;
    s.clauses = &clauses_;
    return s;
  }

 private:
  /// Materializes the pre-group tuple stream, groups it by the grouping
  /// variable's atomic value (first-seen order), rebinds variables per
  /// JSONiq semantics, and continues with the post-group clauses.
  Status EvalGrouped(
      DocContext* ctx, Sequence* out,
      std::vector<std::pair<double, Sequence>>* ordered) const {
    const std::string& group_var =
        clauses_[static_cast<size_t>(group_by_index_)].var;
    bool grouping_var_bound = false;
    for (const std::string& var : bound_vars_) {
      if (var == group_var) grouping_var_bound = true;
    }
    if (!grouping_var_bound) {
      return Status::KeyError("group by references unbound variable $" +
                              group_var);
    }

    using Tuple = std::vector<Sequence>;  // parallel to bound_vars_
    std::vector<Tuple> tuples;
    std::function<Status(size_t)> collect = [&](size_t depth) -> Status {
      if (depth == static_cast<size_t>(group_by_index_)) {
        Tuple tuple;
        tuple.reserve(bound_vars_.size());
        for (const std::string& var : bound_vars_) {
          Sequence value;
          HEPQ_ASSIGN_OR_RETURN(value, ctx->Lookup(var));
          tuple.push_back(std::move(value));
        }
        tuples.push_back(std::move(tuple));
        return Status::OK();
      }
      const FlworClause& clause = clauses_[depth];
      switch (clause.kind) {
        case FlworClause::Kind::kFor: {
          Sequence in;
          HEPQ_ASSIGN_OR_RETURN(in, clause.expr->Eval(ctx));
          for (size_t i = 0; i < in.size(); ++i) {
            ctx->Push(clause.var, Sequence{in[i]});
            if (!clause.position_var.empty()) {
              ctx->Push(clause.position_var,
                        Sequence{Item::Number(static_cast<double>(i + 1))});
            }
            const Status st = collect(depth + 1);
            if (!clause.position_var.empty()) ctx->Pop();
            ctx->Pop();
            HEPQ_RETURN_NOT_OK(st);
          }
          return Status::OK();
        }
        case FlworClause::Kind::kLet: {
          Sequence value;
          HEPQ_ASSIGN_OR_RETURN(value, clause.expr->Eval(ctx));
          ctx->Push(clause.var, std::move(value));
          const Status st = collect(depth + 1);
          ctx->Pop();
          return st;
        }
        case FlworClause::Kind::kWhere: {
          Sequence cond;
          HEPQ_ASSIGN_OR_RETURN(cond, clause.expr->Eval(ctx));
          if (!EffectiveBooleanValue(cond)) return Status::OK();
          return collect(depth + 1);
        }
        case FlworClause::Kind::kGroupBy:
          return Status::Invalid("only one group-by clause is supported");
      }
      return Status::Invalid("unknown FLWOR clause");
    };
    HEPQ_RETURN_NOT_OK(collect(0));

    // Group by the serialized atomic key, preserving first-seen order.
    size_t group_slot = 0;
    for (size_t v = 0; v < bound_vars_.size(); ++v) {
      if (bound_vars_[v] == group_var) group_slot = v;
    }
    std::vector<std::string> key_order;
    std::map<std::string, std::vector<size_t>> groups;
    std::map<std::string, ItemPtr> key_items;
    for (size_t t = 0; t < tuples.size(); ++t) {
      const Sequence& key_seq = tuples[t][group_slot];
      if (key_seq.size() != 1) {
        return Status::TypeError(
            "group by key must be a singleton atomic value");
      }
      const std::string key = key_seq.front()->ToJson();
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) {
        key_order.push_back(key);
        key_items[key] = key_seq.front();
      }
      it->second.push_back(t);
    }

    for (const std::string& key : key_order) {
      size_t pushed = 0;
      for (size_t v = 0; v < bound_vars_.size(); ++v) {
        if (v == group_slot) {
          ctx->Push(group_var, Sequence{key_items[key]});
        } else {
          Sequence concatenated;
          for (size_t t : groups[key]) {
            const Sequence& value = tuples[t][v];
            concatenated.insert(concatenated.end(), value.begin(),
                                value.end());
          }
          ctx->Push(bound_vars_[v], std::move(concatenated));
        }
        ++pushed;
      }
      const Status st = Recurse(
          ctx, static_cast<size_t>(group_by_index_) + 1, out, ordered);
      for (size_t p = 0; p < pushed; ++p) ctx->Pop();
      HEPQ_RETURN_NOT_OK(st);
    }
    return Status::OK();
  }

  Status Recurse(DocContext* ctx, size_t depth, Sequence* out,
                 std::vector<std::pair<double, Sequence>>* ordered) const {
    if (depth == clauses_.size()) {
      if (order_by_key_ != nullptr) {
        Sequence key;
        HEPQ_ASSIGN_OR_RETURN(key, order_by_key_->Eval(ctx));
        Sequence value;
        HEPQ_ASSIGN_OR_RETURN(value, return_->Eval(ctx));
        ordered->emplace_back(SequenceToDouble(key), std::move(value));
      } else {
        Sequence value;
        HEPQ_ASSIGN_OR_RETURN(value, return_->Eval(ctx));
        out->insert(out->end(), value.begin(), value.end());
      }
      return Status::OK();
    }
    const FlworClause& clause = clauses_[depth];
    switch (clause.kind) {
      case FlworClause::Kind::kFor: {
        Sequence in;
        HEPQ_ASSIGN_OR_RETURN(in, clause.expr->Eval(ctx));
        for (size_t i = 0; i < in.size(); ++i) {
          ctx->Push(clause.var, Sequence{in[i]});
          if (!clause.position_var.empty()) {
            ctx->Push(clause.position_var,
                      Sequence{Item::Number(static_cast<double>(i + 1))});
          }
          const Status st = Recurse(ctx, depth + 1, out, ordered);
          if (!clause.position_var.empty()) ctx->Pop();
          ctx->Pop();
          HEPQ_RETURN_NOT_OK(st);
        }
        return Status::OK();
      }
      case FlworClause::Kind::kLet: {
        Sequence value;
        HEPQ_ASSIGN_OR_RETURN(value, clause.expr->Eval(ctx));
        ctx->Push(clause.var, std::move(value));
        const Status st = Recurse(ctx, depth + 1, out, ordered);
        ctx->Pop();
        return st;
      }
      case FlworClause::Kind::kWhere: {
        Sequence cond;
        HEPQ_ASSIGN_OR_RETURN(cond, clause.expr->Eval(ctx));
        if (!EffectiveBooleanValue(cond)) return Status::OK();
        return Recurse(ctx, depth + 1, out, ordered);
      }
      case FlworClause::Kind::kGroupBy:
        return Status::Invalid("only one group-by clause is supported");
    }
    return Status::Invalid("unknown FLWOR clause");
  }

  std::vector<FlworClause> clauses_;
  DocExprPtr return_;
  DocExprPtr order_by_key_;
  bool order_descending_;
  int group_by_index_ = -1;
  std::vector<std::string> bound_vars_;  // vars bound before the group-by
};

std::map<std::string, DocFunction>& FunctionRegistry() {
  static auto& registry = *new std::map<std::string, DocFunction>();
  return registry;
}

}  // namespace

DocExprPtr DNum(double value) { return std::make_shared<NumExpr>(value); }
DocExprPtr DBool(bool value) { return std::make_shared<BoolExpr>(value); }
DocExprPtr DVar(std::string name) {
  return std::make_shared<VarExpr>(std::move(name));
}
DocExprPtr DContextItem() { return std::make_shared<ContextItemExpr>(); }
DocExprPtr DMember(DocExprPtr input, std::string name) {
  return std::make_shared<MemberExpr>(std::move(input), std::move(name));
}
DocExprPtr DUnbox(DocExprPtr input) {
  return std::make_shared<UnboxExpr>(std::move(input));
}
DocExprPtr DPredicate(DocExprPtr input, DocExprPtr predicate) {
  return std::make_shared<PredicateExpr>(std::move(input),
                                         std::move(predicate));
}
DocExprPtr DBin(DocBinOp op, DocExprPtr lhs, DocExprPtr rhs) {
  return std::make_shared<BinExpr>(op, std::move(lhs), std::move(rhs));
}
DocExprPtr DCall(std::string function, std::vector<DocExprPtr> args) {
  return std::make_shared<CallExpr>(std::move(function), std::move(args));
}
DocExprPtr DObject(std::vector<std::pair<std::string, DocExprPtr>> members) {
  return std::make_shared<ObjectExpr>(std::move(members));
}
DocExprPtr DArray(DocExprPtr contents) {
  return std::make_shared<ArrayExpr>(std::move(contents));
}
DocExprPtr DIf(DocExprPtr condition, DocExprPtr then_expr,
               DocExprPtr else_expr) {
  return std::make_shared<IfExpr>(std::move(condition), std::move(then_expr),
                                  std::move(else_expr));
}
DocExprPtr DConcat(std::vector<DocExprPtr> parts) {
  return std::make_shared<ConcatExpr>(std::move(parts));
}
DocExprPtr DFlwor(std::vector<FlworClause> clauses, DocExprPtr return_expr,
                  DocExprPtr order_by_key, bool order_descending) {
  return std::make_shared<FlworExpr>(std::move(clauses),
                                     std::move(return_expr),
                                     std::move(order_by_key),
                                     order_descending);
}

DocExprPtr DSome(std::string var, DocExprPtr source, DocExprPtr predicate) {
  return std::make_shared<QuantifiedExpr>(true, std::move(var),
                                          std::move(source),
                                          std::move(predicate));
}

DocExprPtr DEvery(std::string var, DocExprPtr source, DocExprPtr predicate) {
  return std::make_shared<QuantifiedExpr>(false, std::move(var),
                                          std::move(source),
                                          std::move(predicate));
}

void RegisterDocFunction(const std::string& name, DocFunction fn) {
  FunctionRegistry()[name] = std::move(fn);
}

Result<DocFunction> LookupDocFunction(const std::string& name) {
  auto& registry = FunctionRegistry();
  const auto it = registry.find(name);
  if (it == registry.end()) {
    return Status::KeyError("unknown function " + name + "()");
  }
  return it->second;
}

}  // namespace hepq::doc
