#include "doc/runner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/stopwatch.h"
#include "doc/convert.h"
#include "doc/functions.h"
#include "exec/exec.h"
#include "obs/trace.h"

namespace hepq::doc {

namespace {

/// Interprets the query over one row group's batch, accumulating into a
/// per-group partial (histograms pre-sized by the caller).
Status RunBatch(const DocQuery& query, const RecordBatch& batch,
                DocQueryResult* result) {
  // Per-clause attribution: a span per row (let alone per clause) would
  // dwarf the work being measured, so clause timings accumulate into
  // per-batch counters instead. All timing is gated on an active session
  // — a production run takes only the one `tracing` branch per batch.
  obs::ScopedSpan batch_span("flwor_batch", obs::Stage::kEventLoop);
  const bool tracing = batch_span.active();
  int64_t let_ns = 0, where_ns = 0, return_ns = 0;
  int64_t let_evals = 0, where_evals = 0, return_fills = 0;
  const int64_t rows = batch.num_rows();
  for (int64_t row = 0; row < rows; ++row) {
    DocContext ctx;
    ctx.Push("event", Sequence{EventToItem(batch, row)});
    size_t pushed = 1;
    int64_t t0 = tracing ? obs::NowNs() : 0;
    for (const auto& [name, expr] : query.lets) {
      auto value = expr->Eval(&ctx);
      if (!value.ok()) return value.status();
      ctx.Push(name, std::move(*value));
      ++pushed;
      ++let_evals;
    }
    if (tracing) {
      const int64_t t1 = obs::NowNs();
      let_ns += t1 - t0;
      t0 = t1;
    }
    bool selected = true;
    if (query.guard != nullptr) {
      Sequence cond;
      HEPQ_ASSIGN_OR_RETURN(cond, query.guard->Eval(&ctx));
      selected = EffectiveBooleanValue(cond);
      ++where_evals;
    }
    if (tracing) {
      const int64_t t1 = obs::NowNs();
      where_ns += t1 - t0;
      t0 = t1;
    }
    if (selected) {
      ++result->events_selected;
      for (size_t f = 0; f < query.fills.size(); ++f) {
        Sequence values;
        HEPQ_ASSIGN_OR_RETURN(values, query.fills[f].second->Eval(&ctx));
        for (const ItemPtr& item : values) {
          result->histograms[f].Fill(item->AsDouble());
        }
        ++return_fills;
      }
      if (tracing) return_ns += obs::NowNs() - t0;
    }
    result->interpreter_steps += ctx.steps;
    for (size_t p = 0; p < pushed; ++p) ctx.Pop();
  }
  if (tracing) {
    obs::CountStage("flwor_let", obs::Stage::kExpr, let_ns,
                    static_cast<uint64_t>(let_evals));
    obs::CountStage("flwor_where", obs::Stage::kExpr, where_ns,
                    static_cast<uint64_t>(where_evals));
    obs::CountStage("flwor_return", obs::Stage::kExpr, return_ns,
                    static_cast<uint64_t>(return_fills));
  }
  result->events_processed += rows;
  return Status::OK();
}

DocQueryResult EmptyResult(const DocQuery& query) {
  DocQueryResult result;
  for (const auto& [spec, expr] : query.fills) {
    result.histograms.emplace_back(spec);
  }
  return result;
}

Status MergeResult(DocQueryResult* into, const DocQueryResult& part) {
  for (size_t f = 0; f < into->histograms.size(); ++f) {
    HEPQ_RETURN_NOT_OK(into->histograms[f].Merge(part.histograms[f]));
  }
  into->events_processed += part.events_processed;
  into->events_selected += part.events_selected;
  into->interpreter_steps += part.interpreter_steps;
  return Status::OK();
}

// ---- Scan-predicate extraction --------------------------------------------
//
// Pattern-matches the FLWOR guard for sargable necessary conditions (see
// fileio/predicate.h for the fail-fill soundness contract). The guard gates
// every fill in RunBatch, so rows that provably fail an extracted conjunct
// can be zone-map-pruned without touching any histogram: pruned groups are
// compensated as processed-but-unselected, and fail-filled lanes evaluate
// the unmodified guard to false exactly as their true values would.

using DocEnv = std::vector<std::pair<std::string, const DocExpr*>>;

/// Follows $var chains through let bindings (innermost wins); leaves the
/// expression untouched when the variable is unbound (e.g. $event).
const DocExpr* ResolveDocVar(const DocExpr* e, const DocEnv& env) {
  for (int depth = 0; e != nullptr && depth < 32; ++depth) {
    DocShape s = e->Shape();
    if (s.kind != DocShape::Kind::kVar) return e;
    const DocExpr* next = nullptr;
    for (auto it = env.rbegin(); it != env.rend(); ++it) {
      if (it->first == s.name) {
        next = it->second;
        break;
      }
    }
    if (next == nullptr) return e;
    e = next;
  }
  return e;
}

/// Matches the particle-collection idiom `$event.<column>[]`.
bool MatchDocParticles(const DocExpr* e, const DocEnv& env,
                       std::string* column) {
  e = ResolveDocVar(e, env);
  if (e == nullptr) return false;
  const DocShape unbox = e->Shape();
  if (unbox.kind != DocShape::Kind::kUnbox) return false;
  const DocExpr* member_expr = ResolveDocVar(unbox.input, env);
  if (member_expr == nullptr) return false;
  const DocShape member = member_expr->Shape();
  if (member.kind != DocShape::Kind::kMember) return false;
  const DocExpr* root = ResolveDocVar(member.input, env);
  if (root == nullptr) return false;
  const DocShape var = root->Shape();
  if (var.kind != DocShape::Kind::kVar || var.name != "event") return false;
  *column = member.name;
  return true;
}

/// Matches a member chain rooted at $event with no unboxing, yielding the
/// dotted leaf path ("MET.pt"). Chains through list members degenerate to
/// empty sequences in the interpreter and bind conservatively in fileio,
/// so no kind check is needed here.
bool MatchDocScalarLeaf(const DocExpr* e, const DocEnv& env,
                        std::string* path) {
  e = ResolveDocVar(e, env);
  if (e == nullptr) return false;
  const DocShape s = e->Shape();
  if (s.kind != DocShape::Kind::kMember) return false;
  const DocExpr* input = ResolveDocVar(s.input, env);
  if (input == nullptr) return false;
  const DocShape inner = input->Shape();
  if (inner.kind == DocShape::Kind::kVar && inner.name == "event") {
    *path = s.name;
    return true;
  }
  std::string prefix;
  if (!MatchDocScalarLeaf(s.input, env, &prefix)) return false;
  *path = prefix + "." + s.name;
  return true;
}

void SplitDocConjuncts(const DocExpr* e, std::vector<const DocExpr*>* out) {
  if (e == nullptr) return;
  const DocShape s = e->Shape();
  if (s.kind == DocShape::Kind::kBin && s.bin_op == DocBinOp::kAnd) {
    SplitDocConjuncts(s.args[0], out);
    SplitDocConjuncts(s.args[1], out);
    return;
  }
  out->push_back(e);
}

bool DocCmpToRange(DocBinOp op, double lit, double* lo, double* hi) {
  const double inf = std::numeric_limits<double>::infinity();
  switch (op) {
    case DocBinOp::kGt:
    case DocBinOp::kGe:
      *lo = lit;
      *hi = inf;
      return true;
    case DocBinOp::kLt:
    case DocBinOp::kLe:
      *lo = -inf;
      *hi = lit;
      return true;
    case DocBinOp::kEq:
      *lo = lit;
      *hi = lit;
      return true;
    default:
      return false;
  }
}

DocBinOp MirrorDocCmp(DocBinOp op) {
  switch (op) {
    case DocBinOp::kLt:
      return DocBinOp::kGt;
    case DocBinOp::kLe:
      return DocBinOp::kGe;
    case DocBinOp::kGt:
      return DocBinOp::kLt;
    case DocBinOp::kGe:
      return DocBinOp::kLe;
    default:
      return op;
  }
}

/// Normalizes a comparison conjunct to `<variable-side> op <literal>`;
/// returns the variable-side expression or nullptr.
const DocExpr* MatchDocCmpWithLit(const DocShape& s, const DocEnv& env,
                                  DocBinOp* op, double* lit) {
  if (s.kind != DocShape::Kind::kBin || s.args.size() != 2) return nullptr;
  switch (s.bin_op) {
    case DocBinOp::kLt:
    case DocBinOp::kLe:
    case DocBinOp::kGt:
    case DocBinOp::kGe:
    case DocBinOp::kEq:
      break;
    default:
      return nullptr;
  }
  const DocExpr* lhs = ResolveDocVar(s.args[0], env);
  const DocExpr* rhs = ResolveDocVar(s.args[1], env);
  if (lhs == nullptr || rhs == nullptr) return nullptr;
  const DocShape ls = lhs->Shape();
  const DocShape rs = rhs->Shape();
  if (rs.kind == DocShape::Kind::kNum) {
    *op = s.bin_op;
    *lit = rs.num;
    return lhs;
  }
  if (ls.kind == DocShape::Kind::kNum) {
    *op = MirrorDocCmp(s.bin_op);
    *lit = ls.num;
    return rhs;
  }
  return nullptr;
}

/// Extracts `$$.<member> op literal` element conditions from a predicate
/// expression applied to elements of `column`.
void ExtractDocItemRanges(const DocExpr* pred, const std::string& column,
                          const DocEnv& env, ScanPredicateSet* out) {
  std::vector<const DocExpr*> conjuncts;
  SplitDocConjuncts(pred, &conjuncts);
  for (const DocExpr* conjunct : conjuncts) {
    DocBinOp op = DocBinOp::kAdd;
    double lit = 0.0;
    const DocExpr* side =
        MatchDocCmpWithLit(conjunct->Shape(), env, &op, &lit);
    if (side == nullptr) continue;
    const DocShape member = side->Shape();
    if (member.kind != DocShape::Kind::kMember) continue;
    const DocExpr* root = ResolveDocVar(member.input, env);
    if (root == nullptr ||
        root->Shape().kind != DocShape::Kind::kContextItem) {
      continue;
    }
    double lo = 0.0;
    double hi = 0.0;
    if (!DocCmpToRange(op, lit, &lo, &hi)) continue;
    out->AddItemRange(column + "." + member.name, lo, hi);
  }
}

void ExtractDocConjunct(const DocExpr* e, const DocEnv& env,
                        ScanPredicateSet* out);

/// Necessary conditions of "this expression evaluates to a non-empty
/// sequence" — the meaning of exists(...) and of an absent-else `if`.
void ExtractDocExists(const DocExpr* e, const DocEnv& env,
                      ScanPredicateSet* out) {
  e = ResolveDocVar(e, env);
  if (e == nullptr) return;
  const DocShape s = e->Shape();
  switch (s.kind) {
    case DocShape::Kind::kUnbox: {
      std::string column;
      if (MatchDocParticles(e, env, &column)) out->AddMinCount(column, 1);
      return;
    }
    case DocShape::Kind::kIf: {
      // No else branch: a non-empty result requires the condition to hold
      // AND the then-branch to be non-empty.
      if (s.args.size() == 2 && s.args[1] == nullptr) {
        ExtractDocConjunct(s.input, env, out);
        ExtractDocExists(s.args[0], env, out);
      }
      return;
    }
    case DocShape::Kind::kPredicate: {
      const DocShape pred = s.predicate->Shape();
      if (pred.kind == DocShape::Kind::kNum) {
        // Positional predicate input[n]: non-empty iff input has >= n
        // items (n is 1-based).
        ExtractDocExists(s.input, env, out);
        std::string column;
        const double n = std::floor(pred.num);
        if (n == pred.num && n >= 1.0 && n <= 1e9 &&
            MatchDocParticles(s.input, env, &column)) {
          out->AddMinCount(column, static_cast<int64_t>(n));
        }
        return;
      }
      std::string column;
      if (MatchDocParticles(s.input, env, &column)) {
        out->AddMinCount(column, 1);
        ExtractDocItemRanges(s.predicate, column, env, out);
      } else {
        ExtractDocExists(s.input, env, out);
      }
      return;
    }
    case DocShape::Kind::kFlwor: {
      // A non-empty FLWOR result needs every for-source non-empty; strict
      // orderings between "at" position counters of for-clauses over the
      // same collection raise that to the longest such chain.
      struct ForClause {
        std::string column;
        std::string position_var;
      };
      DocEnv local = env;
      std::vector<ForClause> fors;
      std::vector<const DocExpr*> wheres;
      for (const FlworClause& clause : *s.clauses) {
        switch (clause.kind) {
          case FlworClause::Kind::kFor: {
            std::string column;
            if (MatchDocParticles(clause.expr.get(), local, &column)) {
              fors.push_back(ForClause{column, clause.position_var});
            }
            break;
          }
          case FlworClause::Kind::kLet:
            local.emplace_back(clause.var, clause.expr.get());
            break;
          case FlworClause::Kind::kWhere:
            SplitDocConjuncts(clause.expr.get(), &wheres);
            break;
          case FlworClause::Kind::kGroupBy:
            break;
        }
      }
      if (fors.empty()) return;
      // before[a][b]: position of for-clause a is strictly less than b's.
      const size_t n = fors.size();
      std::vector<std::vector<bool>> before(n, std::vector<bool>(n, false));
      auto position_index = [&](const DocExpr* var_expr) -> int {
        if (var_expr == nullptr) return -1;
        const DocShape vs = var_expr->Shape();
        if (vs.kind != DocShape::Kind::kVar) return -1;
        for (size_t i = 0; i < n; ++i) {
          if (!fors[i].position_var.empty() &&
              fors[i].position_var == vs.name) {
            return static_cast<int>(i);
          }
        }
        return -1;
      };
      for (const DocExpr* where : wheres) {
        const DocShape ws = where->Shape();
        if (ws.kind != DocShape::Kind::kBin || ws.args.size() != 2) continue;
        int a = -1;
        int b = -1;
        if (ws.bin_op == DocBinOp::kLt) {
          a = position_index(ws.args[0]);
          b = position_index(ws.args[1]);
        } else if (ws.bin_op == DocBinOp::kGt) {
          a = position_index(ws.args[1]);
          b = position_index(ws.args[0]);
        } else {
          continue;
        }
        if (a >= 0 && b >= 0 && a != b &&
            fors[static_cast<size_t>(a)].column ==
                fors[static_cast<size_t>(b)].column) {
          before[static_cast<size_t>(a)][static_cast<size_t>(b)] = true;
        }
      }
      // Longest strict chain per clause (the ordering is a DAG: kLt edges
      // between distinct position counters cannot form a cycle that a
      // non-empty result could satisfy, and memoization caps the walk).
      std::vector<int> longest(n, 0);
      std::function<int(size_t)> chain = [&](size_t u) -> int {
        if (longest[u] > 0) return longest[u];
        int best = 1;
        for (size_t v = 0; v < n; ++v) {
          if (before[u][v] && longest[v] != -1) {
            longest[u] = -1;  // cycle guard: mark in-progress
            best = std::max(best, 1 + chain(v));
          }
        }
        longest[u] = best;
        return best;
      };
      std::vector<std::pair<std::string, int>> column_bound;
      for (size_t i = 0; i < n; ++i) {
        const int len = chain(i);
        bool found = false;
        for (auto& [column, bound] : column_bound) {
          if (column == fors[i].column) {
            bound = std::max(bound, len);
            found = true;
          }
        }
        if (!found) column_bound.emplace_back(fors[i].column, len);
      }
      for (const auto& [column, bound] : column_bound) {
        out->AddMinCount(column, bound);
      }
      // Element conditions on a for-variable's members hold for at least
      // one element whenever the FLWOR yields anything.
      for (const DocExpr* where : wheres) {
        DocBinOp op = DocBinOp::kAdd;
        double lit = 0.0;
        const DocExpr* side =
            MatchDocCmpWithLit(where->Shape(), local, &op, &lit);
        if (side == nullptr) continue;
        const DocShape member = side->Shape();
        if (member.kind != DocShape::Kind::kMember) continue;
        const DocShape root = member.input->Shape();
        if (root.kind != DocShape::Kind::kVar) continue;
        for (const FlworClause& clause : *s.clauses) {
          if (clause.kind != FlworClause::Kind::kFor ||
              clause.var != root.name) {
            continue;
          }
          std::string column;
          double lo = 0.0;
          double hi = 0.0;
          if (MatchDocParticles(clause.expr.get(), local, &column) &&
              DocCmpToRange(op, lit, &lo, &hi)) {
            out->AddItemRange(column + "." + member.name, lo, hi);
          }
          break;
        }
      }
      return;
    }
    default:
      return;
  }
}

void ExtractDocConjunct(const DocExpr* e, const DocEnv& env,
                        ScanPredicateSet* out) {
  e = ResolveDocVar(e, env);
  if (e == nullptr) return;
  const DocShape s = e->Shape();
  if (s.kind == DocShape::Kind::kBin && s.bin_op == DocBinOp::kAnd) {
    ExtractDocConjunct(s.args[0], env, out);
    ExtractDocConjunct(s.args[1], env, out);
    return;
  }
  if (s.kind == DocShape::Kind::kCall && s.name == "exists" &&
      s.args.size() == 1) {
    ExtractDocExists(s.args[0], env, out);
    return;
  }
  DocBinOp op = DocBinOp::kAdd;
  double lit = 0.0;
  const DocExpr* side = MatchDocCmpWithLit(s, env, &op, &lit);
  if (side == nullptr) return;
  double lo = 0.0;
  double hi = 0.0;

  // count(<source>) op literal.
  const DocShape call = side->Shape();
  if (call.kind == DocShape::Kind::kCall && call.name == "count" &&
      call.args.size() == 1) {
    const DocExpr* src = ResolveDocVar(call.args[0], env);
    if (src == nullptr) return;
    std::string column;
    if (MatchDocParticles(src, env, &column)) {
      // Exact cardinality: any comparison maps onto the lengths leaf.
      if (DocCmpToRange(op, lit, &lo, &hi)) {
        out->AddRange(column + "#lengths", lo, hi);
      }
      return;
    }
    const DocShape pred_shape = src->Shape();
    if (pred_shape.kind == DocShape::Kind::kPredicate &&
        MatchDocParticles(pred_shape.input, env, &column)) {
      // count(col[pred]) >= n: at least n elements overall, and at least
      // one of them satisfies every sargable element condition.
      double min_count = 0.0;
      if (op == DocBinOp::kGe) {
        min_count = std::ceil(lit);
      } else if (op == DocBinOp::kGt) {
        min_count = std::floor(lit) + 1.0;
      } else {
        return;
      }
      if (!(min_count >= 1.0) || min_count > 1e9) return;
      out->AddMinCount(column, static_cast<int64_t>(min_count));
      ExtractDocItemRanges(pred_shape.predicate, column, env, out);
    }
    return;
  }

  // <scalar leaf> op literal.
  std::string path;
  if (MatchDocScalarLeaf(side, env, &path) &&
      DocCmpToRange(op, lit, &lo, &hi)) {
    out->AddRange(path, lo, hi);
  }
}

/// Sargable residue of the query guard (empty when there is no guard or
/// nothing matches): necessary conditions every selected event satisfies.
ScanPredicateSet ExtractDocScanPredicates(const DocQuery& query) {
  ScanPredicateSet out;
  if (query.guard == nullptr) return out;
  DocEnv env;
  env.reserve(query.lets.size());
  for (const auto& [name, expr] : query.lets) {
    env.emplace_back(name, expr.get());
  }
  std::vector<const DocExpr*> conjuncts;
  SplitDocConjuncts(query.guard.get(), &conjuncts);
  for (const DocExpr* conjunct : conjuncts) {
    ExtractDocConjunct(conjunct, env, &out);
  }
  return out;
}

Result<RecordBatchPtr> ReadGroup(LaqReader* reader, const DocQuery& query,
                                 const ScanPredicateSet& preds, int group,
                                 ScratchBuffers* scratch) {
  // Full-width read unless the query carries a projection (Rumble only
  // pushes projections for the simplest queries, paper Figure 4b).
  if (query.projection.empty()) {
    std::vector<std::string> all;
    for (const Field& f : reader->schema().fields()) all.push_back(f.name);
    return reader->ReadRowGroupFiltered(group, all, preds, scratch);
  }
  return reader->ReadRowGroupFiltered(group, query.projection, preds,
                                      scratch);
}

}  // namespace

Result<DocQueryResult> RunDocQuery(LaqReader* reader, const DocQuery& query) {
  obs::ScopedSpan run_span("run", obs::Stage::kRun);
  EnsureDocFunctionsRegistered();
  DocQueryResult result = EmptyResult(query);
  reader->ResetScanStats();
  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();

  const ScanPredicateSet preds = ExtractDocScanPredicates(query);
  std::vector<DocQueryResult> partials(
      static_cast<size_t>(reader->num_row_groups()));
  for (DocQueryResult& p : partials) p = EmptyResult(query);
  ScratchBuffers scratch;
  HEPQ_RETURN_NOT_OK(exec::RunRowGroups(
      /*num_threads=*/1, exec::MakeRowGroupTasks(reader->metadata()),
      [&](int /*worker*/, int g) -> Status {
        RecordBatchPtr batch;
        HEPQ_ASSIGN_OR_RETURN(batch,
                              ReadGroup(reader, query, preds, g, &scratch));
        if (batch == nullptr) {
          // Zone maps proved no event in this group can pass the guard:
          // everything counts as processed-but-unselected.
          partials[static_cast<size_t>(g)].events_processed +=
              reader->metadata().row_groups[static_cast<size_t>(g)].num_rows;
          return Status::OK();
        }
        return RunBatch(query, *batch, &partials[static_cast<size_t>(g)]);
      }));
  {
    obs::ScopedSpan merge_span("merge", obs::Stage::kMerge);
    for (const DocQueryResult& p : partials) {
      HEPQ_RETURN_NOT_OK(MergeResult(&result, p));
    }
  }

  result.wall_seconds = wall.Seconds();
  result.cpu_seconds = ProcessCpuSeconds() - cpu0;
  result.scan = reader->scan_stats();
  return result;
}

Result<DocQueryResult> RunDocQuery(const std::string& path,
                                   ReaderOptions reader_options,
                                   int num_threads, const DocQuery& query) {
  obs::ScopedSpan run_span("run", obs::Stage::kRun);
  EnsureDocFunctionsRegistered();
  DocQueryResult result = EmptyResult(query);
  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();

  exec::DatasetLayout layout;
  HEPQ_ASSIGN_OR_RETURN(layout,
                        exec::ResolveDatasetLayout(path, reader_options));
  exec::WorkerReaders readers(&layout, reader_options,
                              std::max(num_threads, 1));
  std::vector<exec::RowGroupTask> tasks = exec::MakeRowGroupTasks(layout);
  const int workers = exec::EffectiveWorkers(num_threads, tasks.size());

  const ScanPredicateSet preds = ExtractDocScanPredicates(query);
  std::vector<DocQueryResult> partials(layout.groups.size());
  for (DocQueryResult& p : partials) p = EmptyResult(query);
  HEPQ_RETURN_NOT_OK(exec::RunRowGroups(
      workers, std::move(tasks), [&](int worker, int g) -> Status {
        const exec::DatasetLayout::Group& loc =
            layout.groups[static_cast<size_t>(g)];
        LaqReader* reader;
        HEPQ_ASSIGN_OR_RETURN(reader, readers.reader(worker, loc.file));
        RecordBatchPtr batch;
        HEPQ_ASSIGN_OR_RETURN(batch, ReadGroup(reader, query, preds,
                                               loc.local_group,
                                               readers.scratch(worker)));
        if (batch == nullptr) {
          partials[static_cast<size_t>(g)].events_processed += loc.num_rows;
          return Status::OK();
        }
        return RunBatch(query, *batch, &partials[static_cast<size_t>(g)]);
      }));
  {
    // Two-level deterministic merge (per-file subtotal in local group
    // order, then file order) — matches the scatter/gather coordinator's
    // association exactly, so P-process runs are bit-identical (see
    // exec::DatasetLayout).
    obs::ScopedSpan merge_span("merge", obs::Stage::kMerge);
    size_t g = 0;
    for (int file = 0; file < layout.num_files(); ++file) {
      DocQueryResult file_total = EmptyResult(query);
      for (; g < partials.size() && layout.groups[g].file == file; ++g) {
        HEPQ_RETURN_NOT_OK(MergeResult(&file_total, partials[g]));
      }
      HEPQ_RETURN_NOT_OK(MergeResult(&result, file_total));
    }
  }

  result.wall_seconds = wall.Seconds();
  result.cpu_seconds = ProcessCpuSeconds() - cpu0;
  result.scan = readers.TotalScanStats();
  return result;
}

}  // namespace hepq::doc
