#include "doc/runner.h"

#include "core/stopwatch.h"
#include "doc/convert.h"
#include "doc/functions.h"

namespace hepq::doc {

Result<DocQueryResult> RunDocQuery(LaqReader* reader, const DocQuery& query) {
  EnsureDocFunctionsRegistered();
  DocQueryResult result;
  for (const auto& [spec, expr] : query.fills) {
    result.histograms.emplace_back(spec);
  }
  reader->ResetScanStats();
  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();

  for (int g = 0; g < reader->num_row_groups(); ++g) {
    // Full-width read unless the query carries a projection (Rumble only
    // pushes projections for the simplest queries, paper Figure 4b).
    RecordBatchPtr batch;
    if (query.projection.empty()) {
      HEPQ_ASSIGN_OR_RETURN(batch, reader->ReadRowGroup(g));
    } else {
      HEPQ_ASSIGN_OR_RETURN(batch,
                            reader->ReadRowGroup(g, query.projection));
    }
    const int64_t rows = batch->num_rows();
    for (int64_t row = 0; row < rows; ++row) {
      DocContext ctx;
      ctx.Push("event", Sequence{EventToItem(*batch, row)});
      size_t pushed = 1;
      for (const auto& [name, expr] : query.lets) {
        auto value = expr->Eval(&ctx);
        if (!value.ok()) return value.status();
        ctx.Push(name, std::move(*value));
        ++pushed;
      }
      bool selected = true;
      if (query.guard != nullptr) {
        Sequence cond;
        HEPQ_ASSIGN_OR_RETURN(cond, query.guard->Eval(&ctx));
        selected = EffectiveBooleanValue(cond);
      }
      if (selected) {
        ++result.events_selected;
        for (size_t f = 0; f < query.fills.size(); ++f) {
          Sequence values;
          HEPQ_ASSIGN_OR_RETURN(values, query.fills[f].second->Eval(&ctx));
          for (const ItemPtr& item : values) {
            result.histograms[f].Fill(item->AsDouble());
          }
        }
      }
      result.interpreter_steps += ctx.steps;
      for (size_t p = 0; p < pushed; ++p) ctx.Pop();
    }
    result.events_processed += rows;
  }

  result.wall_seconds = wall.Seconds();
  result.cpu_seconds = ProcessCpuSeconds() - cpu0;
  result.scan = reader->scan_stats();
  return result;
}

}  // namespace hepq::doc
