#include "doc/runner.h"

#include <algorithm>
#include <utility>

#include "core/stopwatch.h"
#include "doc/convert.h"
#include "doc/functions.h"
#include "exec/exec.h"

namespace hepq::doc {

namespace {

/// Interprets the query over one row group's batch, accumulating into a
/// per-group partial (histograms pre-sized by the caller).
Status RunBatch(const DocQuery& query, const RecordBatch& batch,
                DocQueryResult* result) {
  const int64_t rows = batch.num_rows();
  for (int64_t row = 0; row < rows; ++row) {
    DocContext ctx;
    ctx.Push("event", Sequence{EventToItem(batch, row)});
    size_t pushed = 1;
    for (const auto& [name, expr] : query.lets) {
      auto value = expr->Eval(&ctx);
      if (!value.ok()) return value.status();
      ctx.Push(name, std::move(*value));
      ++pushed;
    }
    bool selected = true;
    if (query.guard != nullptr) {
      Sequence cond;
      HEPQ_ASSIGN_OR_RETURN(cond, query.guard->Eval(&ctx));
      selected = EffectiveBooleanValue(cond);
    }
    if (selected) {
      ++result->events_selected;
      for (size_t f = 0; f < query.fills.size(); ++f) {
        Sequence values;
        HEPQ_ASSIGN_OR_RETURN(values, query.fills[f].second->Eval(&ctx));
        for (const ItemPtr& item : values) {
          result->histograms[f].Fill(item->AsDouble());
        }
      }
    }
    result->interpreter_steps += ctx.steps;
    for (size_t p = 0; p < pushed; ++p) ctx.Pop();
  }
  result->events_processed += rows;
  return Status::OK();
}

DocQueryResult EmptyResult(const DocQuery& query) {
  DocQueryResult result;
  for (const auto& [spec, expr] : query.fills) {
    result.histograms.emplace_back(spec);
  }
  return result;
}

Status MergeResult(DocQueryResult* into, const DocQueryResult& part) {
  for (size_t f = 0; f < into->histograms.size(); ++f) {
    HEPQ_RETURN_NOT_OK(into->histograms[f].Merge(part.histograms[f]));
  }
  into->events_processed += part.events_processed;
  into->events_selected += part.events_selected;
  into->interpreter_steps += part.interpreter_steps;
  return Status::OK();
}

Result<RecordBatchPtr> ReadGroup(LaqReader* reader, const DocQuery& query,
                                 int group, ScratchBuffers* scratch) {
  // Full-width read unless the query carries a projection (Rumble only
  // pushes projections for the simplest queries, paper Figure 4b).
  if (query.projection.empty()) {
    std::vector<std::string> all;
    for (const Field& f : reader->schema().fields()) all.push_back(f.name);
    return reader->ReadRowGroup(group, all, scratch);
  }
  return reader->ReadRowGroup(group, query.projection, scratch);
}

}  // namespace

Result<DocQueryResult> RunDocQuery(LaqReader* reader, const DocQuery& query) {
  EnsureDocFunctionsRegistered();
  DocQueryResult result = EmptyResult(query);
  reader->ResetScanStats();
  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();

  std::vector<DocQueryResult> partials(
      static_cast<size_t>(reader->num_row_groups()));
  for (DocQueryResult& p : partials) p = EmptyResult(query);
  ScratchBuffers scratch;
  HEPQ_RETURN_NOT_OK(exec::RunRowGroups(
      /*num_threads=*/1, exec::MakeRowGroupTasks(reader->metadata()),
      [&](int /*worker*/, int g) -> Status {
        RecordBatchPtr batch;
        HEPQ_ASSIGN_OR_RETURN(batch, ReadGroup(reader, query, g, &scratch));
        return RunBatch(query, *batch, &partials[static_cast<size_t>(g)]);
      }));
  for (const DocQueryResult& p : partials) {
    HEPQ_RETURN_NOT_OK(MergeResult(&result, p));
  }

  result.wall_seconds = wall.Seconds();
  result.cpu_seconds = ProcessCpuSeconds() - cpu0;
  result.scan = reader->scan_stats();
  return result;
}

Result<DocQueryResult> RunDocQuery(const std::string& path,
                                   ReaderOptions reader_options,
                                   int num_threads, const DocQuery& query) {
  EnsureDocFunctionsRegistered();
  DocQueryResult result = EmptyResult(query);
  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();

  exec::WorkerReaders readers(path, reader_options,
                              std::max(num_threads, 1));
  const FileMetadata* metadata;
  HEPQ_ASSIGN_OR_RETURN(metadata, readers.metadata());
  std::vector<exec::RowGroupTask> tasks = exec::MakeRowGroupTasks(*metadata);
  const int workers = exec::EffectiveWorkers(num_threads, tasks.size());

  std::vector<DocQueryResult> partials(metadata->row_groups.size());
  for (DocQueryResult& p : partials) p = EmptyResult(query);
  HEPQ_RETURN_NOT_OK(exec::RunRowGroups(
      workers, std::move(tasks), [&](int worker, int g) -> Status {
        LaqReader* reader;
        HEPQ_ASSIGN_OR_RETURN(reader, readers.reader(worker));
        RecordBatchPtr batch;
        HEPQ_ASSIGN_OR_RETURN(
            batch, ReadGroup(reader, query, g, readers.scratch(worker)));
        return RunBatch(query, *batch, &partials[static_cast<size_t>(g)]);
      }));
  for (const DocQueryResult& p : partials) {
    HEPQ_RETURN_NOT_OK(MergeResult(&result, p));
  }

  result.wall_seconds = wall.Seconds();
  result.cpu_seconds = ProcessCpuSeconds() - cpu0;
  result.scan = readers.TotalScanStats();
  return result;
}

}  // namespace hepq::doc
