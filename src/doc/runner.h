#ifndef HEPQUERY_DOC_RUNNER_H_
#define HEPQUERY_DOC_RUNNER_H_

#include <string>
#include <vector>

#include "core/histogram.h"
#include "doc/ast.h"
#include "fileio/reader.h"

namespace hepq::doc {

/// A per-event document query: `lets` are evaluated in order with $event
/// bound (so later bindings may use earlier ones — the FLWOR `let` chain of
/// the paper's Listing 7b); `guard` (optional) drops the event; each fill
/// expression produces the values added to its histogram.
struct DocQuery {
  std::string name;
  std::vector<std::pair<std::string, DocExprPtr>> lets;
  DocExprPtr guard;
  std::vector<std::pair<HistogramSpec, DocExprPtr>> fills;
  /// Columns to read. Empty = full-width scan. The paper observes that
  /// Rumble pushes projections into the scan only for the simplest
  /// queries (Figure 4b); builders set this for Q1/Q2 accordingly.
  std::vector<std::string> projection;
};

struct DocQueryResult {
  std::vector<Histogram1D> histograms;
  int64_t events_processed = 0;
  int64_t events_selected = 0;
  uint64_t interpreter_steps = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  ScanStats scan;
};

/// Executes a DocQuery the way Rumble executes JSONiq over Parquet in the
/// paper's setup: the scan reads the *entire* file (no projection
/// pushdown), every event is boxed into an item tree, and a tree-walking
/// interpreter evaluates the query per event. Single-threaded, but routed
/// through the shared row-group runtime (per-group partials merged in
/// group order, pooled decode buffers).
Result<DocQueryResult> RunDocQuery(LaqReader* reader, const DocQuery& query);

/// Parallel execution: scans `path` with up to `num_threads` workers of
/// the shared pool, each with its own reader and scratch buffers. Results
/// are bit-identical to the single-threaded overload.
Result<DocQueryResult> RunDocQuery(const std::string& path,
                                   ReaderOptions reader_options,
                                   int num_threads, const DocQuery& query);

}  // namespace hepq::doc

#endif  // HEPQUERY_DOC_RUNNER_H_
