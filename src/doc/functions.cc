#include "doc/functions.h"

#include <cmath>
#include <limits>
#include <mutex>

#include "core/physics.h"
#include "doc/ast.h"

namespace hepq::doc {

namespace {

Result<PtEtaPhiM> ParticleFromItem(const Sequence& seq) {
  if (seq.size() != 1 || !seq.front()->IsObject()) {
    return Status::TypeError("expected a particle object argument");
  }
  const Item& obj = *seq.front();
  PtEtaPhiM p;
  const ItemPtr pt = obj.Member("pt");
  const ItemPtr eta = obj.Member("eta");
  const ItemPtr phi = obj.Member("phi");
  const ItemPtr mass = obj.Member("mass");
  if (pt == nullptr || eta == nullptr || phi == nullptr || mass == nullptr) {
    return Status::KeyError(
        "particle object needs pt/eta/phi/mass members");
  }
  p.pt = pt->AsDouble();
  p.eta = eta->AsDouble();
  p.phi = phi->AsDouble();
  p.mass = mass->AsDouble();
  return p;
}

ItemPtr ParticleToItem(const PtEtaPhiM& p) {
  return Item::Object({{"pt", Item::Number(p.pt)},
                       {"eta", Item::Number(p.eta)},
                       {"phi", Item::Number(p.phi)},
                       {"mass", Item::Number(p.mass)}});
}

Status ExpectArgs(const std::vector<Sequence>& args, size_t n,
                  const char* name) {
  if (args.size() != n) {
    return Status::Invalid(std::string(name) + "() expects " +
                           std::to_string(n) + " arguments");
  }
  return Status::OK();
}

void RegisterAll() {
  RegisterDocFunction("count", [](const std::vector<Sequence>& args)
                                   -> Result<Sequence> {
    HEPQ_RETURN_NOT_OK(ExpectArgs(args, 1, "count"));
    return Sequence{Item::Number(static_cast<double>(args[0].size()))};
  });
  RegisterDocFunction(
      "exists", [](const std::vector<Sequence>& args) -> Result<Sequence> {
        HEPQ_RETURN_NOT_OK(ExpectArgs(args, 1, "exists"));
        return Sequence{Item::Bool(!args[0].empty())};
      });
  RegisterDocFunction(
      "empty", [](const std::vector<Sequence>& args) -> Result<Sequence> {
        HEPQ_RETURN_NOT_OK(ExpectArgs(args, 1, "empty"));
        return Sequence{Item::Bool(args[0].empty())};
      });
  RegisterDocFunction(
      "not", [](const std::vector<Sequence>& args) -> Result<Sequence> {
        HEPQ_RETURN_NOT_OK(ExpectArgs(args, 1, "not"));
        return Sequence{Item::Bool(!EffectiveBooleanValue(args[0]))};
      });
  RegisterDocFunction(
      "sum", [](const std::vector<Sequence>& args) -> Result<Sequence> {
        HEPQ_RETURN_NOT_OK(ExpectArgs(args, 1, "sum"));
        double total = 0.0;
        for (const ItemPtr& item : args[0]) total += item->AsDouble();
        return Sequence{Item::Number(total)};
      });
  RegisterDocFunction(
      "min", [](const std::vector<Sequence>& args) -> Result<Sequence> {
        HEPQ_RETURN_NOT_OK(ExpectArgs(args, 1, "min"));
        if (args[0].empty()) return Sequence{};
        double best = std::numeric_limits<double>::infinity();
        for (const ItemPtr& item : args[0]) {
          best = std::min(best, item->AsDouble());
        }
        return Sequence{Item::Number(best)};
      });
  RegisterDocFunction(
      "max", [](const std::vector<Sequence>& args) -> Result<Sequence> {
        HEPQ_RETURN_NOT_OK(ExpectArgs(args, 1, "max"));
        if (args[0].empty()) return Sequence{};
        double best = -std::numeric_limits<double>::infinity();
        for (const ItemPtr& item : args[0]) {
          best = std::max(best, item->AsDouble());
        }
        return Sequence{Item::Number(best)};
      });
  RegisterDocFunction(
      "abs", [](const std::vector<Sequence>& args) -> Result<Sequence> {
        HEPQ_RETURN_NOT_OK(ExpectArgs(args, 1, "abs"));
        if (args[0].empty()) return Sequence{};
        return Sequence{Item::Number(std::abs(args[0].front()->AsDouble()))};
      });
  RegisterDocFunction(
      "sqrt", [](const std::vector<Sequence>& args) -> Result<Sequence> {
        HEPQ_RETURN_NOT_OK(ExpectArgs(args, 1, "sqrt"));
        if (args[0].empty()) return Sequence{};
        return Sequence{Item::Number(std::sqrt(args[0].front()->AsDouble()))};
      });

  RegisterDocFunction(
      "hep:add-pt-eta-phi-m2",
      [](const std::vector<Sequence>& args) -> Result<Sequence> {
        HEPQ_RETURN_NOT_OK(ExpectArgs(args, 2, "hep:add-pt-eta-phi-m2"));
        PtEtaPhiM p1, p2;
        HEPQ_ASSIGN_OR_RETURN(p1, ParticleFromItem(args[0]));
        HEPQ_ASSIGN_OR_RETURN(p2, ParticleFromItem(args[1]));
        return Sequence{ParticleToItem(p1 + p2)};
      });
  RegisterDocFunction(
      "hep:add-pt-eta-phi-m3",
      [](const std::vector<Sequence>& args) -> Result<Sequence> {
        HEPQ_RETURN_NOT_OK(ExpectArgs(args, 3, "hep:add-pt-eta-phi-m3"));
        PtEtaPhiM p1, p2, p3;
        HEPQ_ASSIGN_OR_RETURN(p1, ParticleFromItem(args[0]));
        HEPQ_ASSIGN_OR_RETURN(p2, ParticleFromItem(args[1]));
        HEPQ_ASSIGN_OR_RETURN(p3, ParticleFromItem(args[2]));
        return Sequence{ParticleToItem(AddPtEtaPhiM3(p1, p2, p3))};
      });
  RegisterDocFunction(
      "hep:invariant-mass2",
      [](const std::vector<Sequence>& args) -> Result<Sequence> {
        HEPQ_RETURN_NOT_OK(ExpectArgs(args, 2, "hep:invariant-mass2"));
        PtEtaPhiM p1, p2;
        HEPQ_ASSIGN_OR_RETURN(p1, ParticleFromItem(args[0]));
        HEPQ_ASSIGN_OR_RETURN(p2, ParticleFromItem(args[1]));
        return Sequence{Item::Number(InvariantMass2(p1, p2))};
      });
  RegisterDocFunction(
      "hep:invariant-mass3",
      [](const std::vector<Sequence>& args) -> Result<Sequence> {
        HEPQ_RETURN_NOT_OK(ExpectArgs(args, 3, "hep:invariant-mass3"));
        PtEtaPhiM p1, p2, p3;
        HEPQ_ASSIGN_OR_RETURN(p1, ParticleFromItem(args[0]));
        HEPQ_ASSIGN_OR_RETURN(p2, ParticleFromItem(args[1]));
        HEPQ_ASSIGN_OR_RETURN(p3, ParticleFromItem(args[2]));
        return Sequence{Item::Number(InvariantMass3(p1, p2, p3))};
      });
  RegisterDocFunction(
      "hep:delta-r",
      [](const std::vector<Sequence>& args) -> Result<Sequence> {
        HEPQ_RETURN_NOT_OK(ExpectArgs(args, 2, "hep:delta-r"));
        PtEtaPhiM p1, p2;
        HEPQ_ASSIGN_OR_RETURN(p1, ParticleFromItem(args[0]));
        HEPQ_ASSIGN_OR_RETURN(p2, ParticleFromItem(args[1]));
        return Sequence{Item::Number(DeltaR(p1.eta, p1.phi, p2.eta, p2.phi))};
      });
  RegisterDocFunction(
      "hep:delta-phi",
      [](const std::vector<Sequence>& args) -> Result<Sequence> {
        HEPQ_RETURN_NOT_OK(ExpectArgs(args, 2, "hep:delta-phi"));
        if (args[0].empty() || args[1].empty()) return Sequence{};
        return Sequence{Item::Number(DeltaPhi(args[0].front()->AsDouble(),
                                              args[1].front()->AsDouble()))};
      });
  RegisterDocFunction(
      "hep:transverse-mass",
      [](const std::vector<Sequence>& args) -> Result<Sequence> {
        HEPQ_RETURN_NOT_OK(ExpectArgs(args, 4, "hep:transverse-mass"));
        for (const Sequence& arg : args) {
          if (arg.empty()) return Sequence{};
        }
        return Sequence{Item::Number(TransverseMass(
            args[0].front()->AsDouble(), args[1].front()->AsDouble(),
            args[2].front()->AsDouble(), args[3].front()->AsDouble()))};
      });
}

}  // namespace

void EnsureDocFunctionsRegistered() {
  static std::once_flag once;
  std::call_once(once, RegisterAll);
}

}  // namespace hepq::doc
