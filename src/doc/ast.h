#ifndef HEPQUERY_DOC_AST_H_
#define HEPQUERY_DOC_AST_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "doc/item.h"

namespace hepq::doc {

/// Dynamic evaluation environment: lexically scoped variable bindings plus
/// the context-item stack for predicate expressions ($$). Lookup is by
/// string, as in a straightforward tree-walking JSONiq interpreter.
class DocContext {
 public:
  void Push(const std::string& name, Sequence value) {
    bindings_.emplace_back(name, std::move(value));
  }
  void Pop() { bindings_.pop_back(); }

  Result<Sequence> Lookup(const std::string& name) const;

  void PushContextItem(ItemPtr item) {
    context_items_.push_back(std::move(item));
  }
  void PopContextItem() { context_items_.pop_back(); }
  const ItemPtr& ContextItem() const { return context_items_.back(); }
  bool HasContextItem() const { return !context_items_.empty(); }

  /// Interpreter step counter (instrumentation for Table 2 / Figure 4).
  uint64_t steps = 0;

 private:
  std::vector<std::pair<std::string, Sequence>> bindings_;
  std::vector<ItemPtr> context_items_;
};

enum class DocBinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
};

class DocExpr;
struct FlworClause;

/// Structural reflection of one expression node, consumed by the
/// scan-predicate extraction (doc/runner.cc): it pattern-matches FLWOR
/// guards like `count($event.Jet[][$$.pt > 40]) > 1` without widening the
/// interpreter's class hierarchy. Nodes the extraction cannot use report
/// kOther. Child pointers stay owned by the reflected node.
struct DocShape {
  enum class Kind {
    kNum,
    kVar,
    kContextItem,
    kMember,
    kUnbox,
    kPredicate,
    kBin,
    kCall,
    kIf,
    kFlwor,
    kOther,
  };
  Kind kind = Kind::kOther;
  double num = 0.0;
  std::string name;  // variable / member / function name
  DocBinOp bin_op = DocBinOp::kAdd;
  const DocExpr* input = nullptr;      // member/unbox/predicate input, if cond
  const DocExpr* predicate = nullptr;  // DPredicate's predicate expression
  std::vector<const DocExpr*> args;    // bin {lhs,rhs} / call args /
                                       // if {then,else} (null = absent)
  const std::vector<FlworClause>* clauses = nullptr;  // kFlwor
};

/// A JSONiq-style expression: evaluates to a sequence of items.
class DocExpr {
 public:
  virtual ~DocExpr() = default;
  virtual Result<Sequence> Eval(DocContext* ctx) const = 0;
  /// Reflects the node for predicate extraction; defaults to opaque.
  virtual DocShape Shape() const { return DocShape{}; }
};

using DocExprPtr = std::shared_ptr<const DocExpr>;

// ---- Expression factories -------------------------------------------------

DocExprPtr DNum(double value);
DocExprPtr DBool(bool value);
/// Variable reference "$name" (pass the name without the dollar sign).
DocExprPtr DVar(std::string name);
/// The context item "$$" inside a predicate.
DocExprPtr DContextItem();
/// Member access ".name": maps over objects in the input sequence.
DocExprPtr DMember(DocExprPtr input, std::string name);
/// Array unboxing "[]": flattens arrays in the input sequence.
DocExprPtr DUnbox(DocExprPtr input);
/// Predicate "input[pred]": a numeric singleton predicate selects by
/// position (1-based); otherwise filters by effective boolean value with
/// the element bound as context item.
DocExprPtr DPredicate(DocExprPtr input, DocExprPtr predicate);
DocExprPtr DBin(DocBinOp op, DocExprPtr lhs, DocExprPtr rhs);
/// Builtin function call; see RegisterHepFunctions for the library.
DocExprPtr DCall(std::string function, std::vector<DocExprPtr> args);
/// Object constructor { "a": expr, ... }.
DocExprPtr DObject(std::vector<std::pair<std::string, DocExprPtr>> members);
/// Array constructor [ expr ].
DocExprPtr DArray(DocExprPtr contents);
/// if (cond) then .. else ..
DocExprPtr DIf(DocExprPtr condition, DocExprPtr then_expr,
               DocExprPtr else_expr);
/// Sequence concatenation (comma operator).
DocExprPtr DConcat(std::vector<DocExprPtr> parts);

/// Quantified expression "some $var in source satisfies predicate":
/// true iff at least one binding makes the predicate's EBV true.
/// Short-circuits on the first witness.
DocExprPtr DSome(std::string var, DocExprPtr source, DocExprPtr predicate);

/// "every $var in source satisfies predicate": true iff all bindings
/// satisfy the predicate (vacuously true on the empty sequence).
DocExprPtr DEvery(std::string var, DocExprPtr source, DocExprPtr predicate);

// ---- FLWOR ------------------------------------------------------------

struct FlworClause {
  enum class Kind { kFor, kLet, kWhere, kGroupBy } kind = Kind::kFor;
  std::string var;           // bound variable for for/let/group-by
  std::string position_var;  // "at $i" counter for for (optional)
  DocExprPtr expr;           // unused for group-by
};

/// FLWOR expression (for/let/where/group-by clauses) with optional
/// trailing "order by <key> [descending]";
/// the key is evaluated per tuple and the return values are emitted in key
/// order (stable). This covers the "closest-to" idiom
/// `(for ... order by abs(...) return ...)[1]` used by Q6/Q8.
DocExprPtr DFlwor(std::vector<FlworClause> clauses, DocExprPtr return_expr,
                  DocExprPtr order_by_key = nullptr,
                  bool order_descending = false);

inline FlworClause For(std::string var, DocExprPtr expr,
                       std::string position_var = "") {
  return FlworClause{FlworClause::Kind::kFor, std::move(var),
                     std::move(position_var), std::move(expr)};
}
inline FlworClause Let(std::string var, DocExprPtr expr) {
  return FlworClause{FlworClause::Kind::kLet, std::move(var), "",
                     std::move(expr)};
}
inline FlworClause Where(DocExprPtr expr) {
  return FlworClause{FlworClause::Kind::kWhere, "", "", std::move(expr)};
}
/// "group by $var": groups the tuple stream by the (atomic) value of an
/// already-bound variable. Within each group, $var is bound to the key
/// and every other variable bound before the clause becomes the
/// concatenated sequence of its per-tuple values — JSONiq's grouping
/// semantics, and the mechanism behind the hep:histogram library function
/// of the corpus. Must appear after at least one for/let clause; at most
/// one group-by per FLWOR.
inline FlworClause GroupBy(std::string var) {
  return FlworClause{FlworClause::Kind::kGroupBy, std::move(var), "",
                     nullptr};
}

/// Builtin function signature: args are already-evaluated sequences.
using DocFunction =
    std::function<Result<Sequence>(const std::vector<Sequence>&)>;

/// Global function registry (fn: core functions + hep: physics library).
/// Registered once at process start via an internal initializer; exposed
/// for tests and user extensions.
void RegisterDocFunction(const std::string& name, DocFunction fn);
Result<DocFunction> LookupDocFunction(const std::string& name);

}  // namespace hepq::doc

#endif  // HEPQUERY_DOC_AST_H_
