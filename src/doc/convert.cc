#include "doc/convert.h"

namespace hepq::doc {

namespace {

ItemPtr PrimitiveToItem(const Array& array, int64_t index) {
  switch (array.type()->id()) {
    case TypeId::kFloat32:
      return Item::Number(
          static_cast<const Float32Array&>(array).Value(index));
    case TypeId::kFloat64:
      return Item::Number(
          static_cast<const Float64Array&>(array).Value(index));
    case TypeId::kInt32:
      return Item::Number(static_cast<const Int32Array&>(array).Value(index));
    case TypeId::kInt64:
      return Item::Number(static_cast<double>(
          static_cast<const Int64Array&>(array).Value(index)));
    case TypeId::kBool:
      return Item::Bool(static_cast<const BoolArray&>(array).Value(index) !=
                        0);
    default:
      return Item::Null();
  }
}

ItemPtr StructRowToItem(const StructArray& array, int64_t index) {
  std::vector<std::pair<std::string, ItemPtr>> members;
  const auto& fields = array.type()->fields();
  members.reserve(fields.size());
  for (size_t m = 0; m < fields.size(); ++m) {
    members.emplace_back(
        fields[m].name,
        PrimitiveToItem(*array.child(static_cast<int>(m)), index));
  }
  return Item::Object(std::move(members));
}

ItemPtr ValueToItem(const Array& array, int64_t index) {
  if (array.type()->is_primitive()) return PrimitiveToItem(array, index);
  if (array.type()->id() == TypeId::kStruct) {
    return StructRowToItem(static_cast<const StructArray&>(array), index);
  }
  const auto& list = static_cast<const ListArray&>(array);
  const uint32_t begin = list.list_offset(index);
  const uint32_t end = begin + static_cast<uint32_t>(list.list_length(index));
  Sequence elements;
  elements.reserve(end - begin);
  const Array& child = *list.child();
  for (uint32_t i = begin; i < end; ++i) {
    elements.push_back(ValueToItem(child, static_cast<int64_t>(i)));
  }
  return Item::Array(std::move(elements));
}

}  // namespace

ItemPtr EventToItem(const RecordBatch& batch, int64_t row) {
  std::vector<std::pair<std::string, ItemPtr>> members;
  members.reserve(static_cast<size_t>(batch.num_columns()));
  for (int c = 0; c < batch.num_columns(); ++c) {
    members.emplace_back(batch.schema()->field(c).name,
                         ValueToItem(*batch.column(c), row));
  }
  return Item::Object(std::move(members));
}

}  // namespace hepq::doc
