#ifndef HEPQUERY_DOC_ITEM_H_
#define HEPQUERY_DOC_ITEM_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hepq::doc {

class Item;
using ItemPtr = std::shared_ptr<const Item>;
/// JSONiq sequences are flat, ordered collections of items.
using Sequence = std::vector<ItemPtr>;

/// A boxed JSON value — the runtime representation of the Rumble/JSONiq
/// execution model the paper benchmarks. Every number, object, and array
/// is heap-allocated and reference-counted; member lookup is by string.
/// This boxing is deliberately kept (rather than optimized away) because it
/// is the cost driver that makes the document engine one-plus orders of
/// magnitude slower than the columnar engines, as the paper measures for
/// Rumble.
class Item {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  static ItemPtr Null();
  static ItemPtr Bool(bool value);
  static ItemPtr Number(double value);
  static ItemPtr String(std::string value);
  static ItemPtr Array(Sequence elements);
  static ItemPtr Object(std::vector<std::pair<std::string, ItemPtr>> members);

  Kind kind() const { return kind_; }
  bool IsNumber() const { return kind_ == Kind::kNumber; }
  bool IsObject() const { return kind_ == Kind::kObject; }
  bool IsArray() const { return kind_ == Kind::kArray; }

  /// Numeric value; numbers only (0 otherwise).
  double AsDouble() const { return number_; }
  /// Effective boolean value (JSONiq EBV of a singleton).
  bool AsBool() const;
  const std::string& AsString() const { return string_; }

  /// Array elements (empty for non-arrays).
  const Sequence& Elements() const { return elements_; }

  /// Object member by name, or nullptr. Linear scan by string — the
  /// realistic cost of schema-less records.
  ItemPtr Member(const std::string& name) const;
  const std::vector<std::pair<std::string, ItemPtr>>& Members() const {
    return members_;
  }

  std::string ToJson() const;

 private:
  explicit Item(Kind kind) : kind_(kind) {}

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Sequence elements_;
  std::vector<std::pair<std::string, ItemPtr>> members_;
};

/// Singleton-number helper: first item's numeric value, or `fallback` for
/// an empty sequence.
double SequenceToDouble(const Sequence& seq, double fallback = 0.0);

/// JSONiq effective boolean value of a sequence: empty -> false,
/// singleton -> item EBV, else true (node sequences are truthy).
bool EffectiveBooleanValue(const Sequence& seq);

}  // namespace hepq::doc

#endif  // HEPQUERY_DOC_ITEM_H_
