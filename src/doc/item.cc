#include "doc/item.h"

#include <cstdio>

namespace hepq::doc {

ItemPtr Item::Null() {
  static const ItemPtr& instance =
      *new ItemPtr(std::shared_ptr<Item>(new Item(Kind::kNull)));
  return instance;
}

ItemPtr Item::Bool(bool value) {
  auto item = std::shared_ptr<Item>(new Item(Kind::kBool));
  item->bool_ = value;
  return item;
}

ItemPtr Item::Number(double value) {
  auto item = std::shared_ptr<Item>(new Item(Kind::kNumber));
  item->number_ = value;
  return item;
}

ItemPtr Item::String(std::string value) {
  auto item = std::shared_ptr<Item>(new Item(Kind::kString));
  item->string_ = std::move(value);
  return item;
}

ItemPtr Item::Array(Sequence elements) {
  auto item = std::shared_ptr<Item>(new Item(Kind::kArray));
  item->elements_ = std::move(elements);
  return item;
}

ItemPtr Item::Object(std::vector<std::pair<std::string, ItemPtr>> members) {
  auto item = std::shared_ptr<Item>(new Item(Kind::kObject));
  item->members_ = std::move(members);
  return item;
}

bool Item::AsBool() const {
  switch (kind_) {
    case Kind::kNull:
      return false;
    case Kind::kBool:
      return bool_;
    case Kind::kNumber:
      return number_ != 0.0;
    case Kind::kString:
      return !string_.empty();
    default:
      return true;
  }
}

ItemPtr Item::Member(const std::string& name) const {
  for (const auto& [key, value] : members_) {
    if (key == name) return value;
  }
  return nullptr;
}

std::string Item::ToJson() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kNumber: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", number_);
      return buf;
    }
    case Kind::kString:
      return "\"" + string_ + "\"";
    case Kind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) out += ",";
        out += elements_[i]->ToJson();
      }
      return out + "]";
    }
    case Kind::kObject: {
      std::string out = "{";
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"" + members_[i].first + "\":" + members_[i].second->ToJson();
      }
      return out + "}";
    }
  }
  return "null";
}

double SequenceToDouble(const Sequence& seq, double fallback) {
  if (seq.empty()) return fallback;
  return seq.front()->AsDouble();
}

bool EffectiveBooleanValue(const Sequence& seq) {
  if (seq.empty()) return false;
  if (seq.size() == 1) return seq.front()->AsBool();
  return true;
}

}  // namespace hepq::doc
