#ifndef HEPQUERY_DOC_CONVERT_H_
#define HEPQUERY_DOC_CONVERT_H_

#include "columnar/array.h"
#include "doc/item.h"

namespace hepq::doc {

/// Materializes one event of a columnar batch as a fully boxed JSON-like
/// item tree: {"run": ..., "MET": {...}, "Jet": [{...}, ...], ...}.
/// This conversion — performed for every event regardless of which fields
/// the query touches — models the document-engine ingestion cost that
/// dominates Rumble's runtime in the paper.
ItemPtr EventToItem(const RecordBatch& batch, int64_t row);

}  // namespace hepq::doc

#endif  // HEPQUERY_DOC_CONVERT_H_
