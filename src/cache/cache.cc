#include "cache/cache.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

namespace hepq::cache {

namespace metrics = hepq::obs::metrics;

namespace {

/// FNV-1a 64, the version-hash accumulator. Not used for any in-memory
/// table (those use exact keys); only for the dataset version stamp.
uint64_t FnvMix(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t FnvMixU64(uint64_t h, uint64_t v) { return FnvMix(h, &v, sizeof(v)); }

}  // namespace

// ---------------------------------------------------------------- Footer

std::shared_ptr<const FooterCache::Entry> FooterCache::Find(
    const std::string& path, const FileIdentity& identity,
    uint64_t chunk_limit) {
  std::shared_ptr<const Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(path);
    if (it != entries_.end()) entry = it->second;
  }
  // A hit must have seen byte-identical footer bytes (size + mtime + CRC)
  // and have validated them under a limit at least as strict as the
  // caller's: metadata that passed a smaller limit passes a larger one,
  // never the other way around.
  static auto& hits = metrics::GetCounter("hepq_cache_footer_hits_total");
  static auto& misses = metrics::GetCounter("hepq_cache_footer_misses_total");
  if (entry != nullptr && entry->identity == identity &&
      entry->validated_chunk_limit <= chunk_limit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    hits.Add(1);
    return entry;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  misses.Add(1);
  return nullptr;
}

std::shared_ptr<const FooterCache::Entry> FooterCache::Insert(
    const std::string& path, const FileIdentity& identity,
    uint64_t validated_chunk_limit,
    std::shared_ptr<const FileMetadata> metadata) {
  // Generation ids start at 1: id 0 means "not cache-managed" to readers,
  // which then bypass the chunk cache entirely.
  static std::atomic<uint64_t> next_file_id{1};
  auto entry = std::make_shared<Entry>();
  entry->identity = identity;
  entry->validated_chunk_limit = validated_chunk_limit;
  entry->metadata = std::move(metadata);
  entry->file_id = next_file_id.fetch_add(1, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<const Entry>& slot = entries_[path];
  if (slot != nullptr && slot->identity == identity &&
      slot->validated_chunk_limit <= validated_chunk_limit) {
    // Lost a race with another opener of the same bytes; keep the first
    // banked generation so both openers share one chunk-cache keyspace.
    return slot;
  }
  static auto& evictions =
      metrics::GetCounter("hepq_cache_footer_evictions_total");
  if (slot != nullptr) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    evictions.Add(1);
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  slot = std::move(entry);
  return slot;
}

CacheCounters FooterCache::counters() const {
  CacheCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.inserts = inserts_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  c.entries = entries_.size();
  return c;
}

void FooterCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

FooterCache& FooterCache::Process() {
  static FooterCache* instance = new FooterCache();  // never destroyed
  return *instance;
}

// ----------------------------------------------------------------- Chunk

ChunkCache::ChunkCache(CacheOptions options) : options_(options) {
  stripe_budget_ = std::max<uint64_t>(1, options_.decoded_budget_bytes /
                                             static_cast<uint64_t>(kStripes));
}

bool ChunkCache::Get(const ChunkKey& key, std::vector<uint8_t>* out) {
  std::shared_ptr<const std::vector<uint8_t>> data;
  Stripe& stripe = StripeFor(key);
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.index.find(key);
    if (it != stripe.index.end()) {
      stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
      data = it->second->data;
    }
  }
  static auto& hits = metrics::GetCounter("hepq_cache_chunk_hits_total");
  static auto& misses = metrics::GetCounter("hepq_cache_chunk_misses_total");
  static auto& served =
      metrics::GetCounter("hepq_cache_chunk_bytes_served_total");
  if (data == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    misses.Add(1);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  hits.Add(1);
  bytes_served_.fetch_add(data->size(), std::memory_order_relaxed);
  served.Add(static_cast<int64_t>(data->size()));
  // Copy outside the lock: the shared_ptr keeps the bytes alive even if
  // another thread evicts the node meanwhile.
  out->resize(data->size());
  if (!data->empty()) std::memcpy(out->data(), data->data(), data->size());
  return true;
}

void ChunkCache::Insert(const ChunkKey& key, const uint8_t* data,
                        size_t size) {
  if (static_cast<uint64_t>(size) > stripe_budget_) return;
  Stripe& stripe = StripeFor(key);
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.index.find(key);
    if (it != stripe.index.end()) {
      // Same key => same decoded bytes (the file generation id pins the
      // source bytes); only the recency changes.
      stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
      return;
    }
    auto bytes = std::make_shared<std::vector<uint8_t>>(data, data + size);
    stripe.lru.push_front(Node{key, std::move(bytes)});
    stripe.index[key] = stripe.lru.begin();
    stripe.bytes += size;
    while (stripe.bytes > stripe_budget_ && stripe.lru.size() > 1) {
      const Node& victim = stripe.lru.back();
      stripe.bytes -= victim.data->size();
      stripe.index.erase(victim.key);
      stripe.lru.pop_back();
      ++evicted;
    }
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (evicted != 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    static auto& evictions =
        metrics::GetCounter("hepq_cache_chunk_evictions_total");
    evictions.Add(static_cast<int64_t>(evicted));
  }
}

CacheCounters ChunkCache::counters() const {
  CacheCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.inserts = inserts_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  c.bytes_served = bytes_served_.load(std::memory_order_relaxed);
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(const_cast<Stripe&>(stripe).mu);
    c.bytes_held += stripe.bytes;
    c.entries += stripe.lru.size();
  }
  return c;
}

void ChunkCache::Clear() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.lru.clear();
    stripe.index.clear();
    stripe.bytes = 0;
  }
}

// ---------------------------------------------------------------- Result

ResultCache::ResultCache(size_t max_entries)
    : max_entries_(std::max<size_t>(1, max_entries)) {}

bool ResultCache::Get(const std::string& key, CachedResult* out) {
  std::lock_guard<std::mutex> lock(mu_);
  static auto& hits = metrics::GetCounter("hepq_cache_result_hits_total");
  static auto& misses = metrics::GetCounter("hepq_cache_result_misses_total");
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    misses.Add(1);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->value;
  hits_.fetch_add(1, std::memory_order_relaxed);
  hits.Add(1);
  return true;
}

void ResultCache::Insert(const std::string& key, CachedResult value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->value = std::move(value);
    return;
  }
  lru_.push_front(Node{key, std::move(value)});
  index_[key] = lru_.begin();
  inserts_.fetch_add(1, std::memory_order_relaxed);
  static auto& evictions =
      metrics::GetCounter("hepq_cache_result_evictions_total");
  while (lru_.size() > max_entries_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    evictions.Add(1);
  }
}

CacheCounters ResultCache::counters() const {
  CacheCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.inserts = inserts_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  c.entries = lru_.size();
  return c;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

// --------------------------------------------------------------- Version

namespace {

/// The trailer fields of one shard, read without parsing the footer. The
/// stored CRC covers the footer bytes, which embed every chunk's CRC and
/// statistics — a content stamp for the whole shard.
struct ShardStamp {
  uint64_t size = 0;
  uint32_t footer_size = 0;
  uint32_t footer_crc = 0;
};

Result<ShardStamp> ReadShardStamp(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  auto guard =
      std::unique_ptr<std::FILE, int (*)(std::FILE*)>(file, &std::fclose);
  if (std::fseek(file, 0, SEEK_END) != 0) {
    return Status::IoError("seek failed");
  }
  const long size = std::ftell(file);
  if (size < 16) return Status::Corruption("file too small to be laq");
  uint8_t trailer[12];
  if (std::fseek(file, size - 12, SEEK_SET) != 0 ||
      std::fread(trailer, 1, 12, file) != 12) {
    return Status::IoError("cannot read trailer");
  }
  if (std::memcmp(trailer + 8, kLaqMagic, 4) != 0) {
    return Status::Corruption("bad trailing magic (not a laq file?)");
  }
  ShardStamp stamp;
  stamp.size = static_cast<uint64_t>(size);
  std::memcpy(&stamp.footer_size, trailer, 4);
  std::memcpy(&stamp.footer_crc, trailer + 4, 4);
  return stamp;
}

}  // namespace

Result<uint64_t> DatasetVersion(const std::string& path) {
  std::vector<std::string> shards;
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IoError("cannot stat '" + path + "'");
  }
  if (S_ISDIR(st.st_mode)) {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) {
      return Status::IoError("cannot open directory '" + path + "'");
    }
    for (struct dirent* e = ::readdir(dir); e != nullptr;
         e = ::readdir(dir)) {
      const std::string name = e->d_name;
      if (name.size() > 4 && name.substr(name.size() - 4) == ".laq") {
        shards.push_back(name);
      }
    }
    ::closedir(dir);
    if (shards.empty()) {
      return Status::Invalid("no .laq files in '" + path + "'");
    }
    // Sorted by name: the canonical shard order every dataset consumer
    // uses, so the version is independent of readdir order.
    std::sort(shards.begin(), shards.end());
    for (std::string& shard : shards) shard = path + "/" + shard;
  } else {
    shards.push_back(path);
  }

  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  h = FnvMixU64(h, shards.size());
  for (const std::string& shard : shards) {
    // Basename only: the version describes content, not where the
    // directory happens to be mounted.
    const size_t slash = shard.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? shard : shard.substr(slash + 1);
    ShardStamp stamp;
    HEPQ_ASSIGN_OR_RETURN(stamp, ReadShardStamp(shard));
    h = FnvMix(h, base.data(), base.size());
    h = FnvMixU64(h, stamp.size);
    h = FnvMixU64(h, stamp.footer_size);
    h = FnvMixU64(h, stamp.footer_crc);
  }
  return h;
}

}  // namespace hepq::cache
