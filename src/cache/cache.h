#ifndef HEPQUERY_CACHE_CACHE_H_
#define HEPQUERY_CACHE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/histogram.h"
#include "core/status.h"
#include "fileio/format.h"

namespace hepq::cache {

// Process-wide cache hierarchy for the laq read path, the warm-path
// machinery behind the hepqd service model (ROADMAP item 1): three
// independent levels that all key on *content identity*, never on wall
// time, so a hit is bit-identical to the cold computation by
// construction.
//
//   1. FooterCache  — path + (size, mtime, footer CRC) -> validated
//      FileMetadata. Always on; saves footer parse + validation, zero
//      data bytes. A hit requires the recomputed footer CRC of the
//      current bytes to equal the cached one, so a cached open behaves
//      exactly like a cold open for every corruption class.
//   2. ChunkCache   — (file generation id, leaf, row group) -> fully
//      decoded clean chunk bytes. Striped LRU under a byte budget.
//      Insertion happens only for chunks that decoded completely and
//      cleanly (no page skips, no errors), which preserves the
//      deterministic first-error contract of the corruption hardening
//      pass verbatim: corrupt chunks are never cached, so they decode —
//      and fail — cold on every run.
//   3. ResultCache  — canonical query fingerprint + dataset version ->
//      exploded Histogram1D state (HistogramParts round-trips raw
//      IEEE-754 bits, so a result-cache hit is bit-identical).

/// Byte budget knobs for the decoded-chunk LRU. The footer and result
/// caches are metadata-sized and not budgeted.
struct CacheOptions {
  /// Upper bound on the sum of decoded chunk bytes held by a ChunkCache.
  /// Split evenly across the lock stripes; a single chunk larger than a
  /// stripe's share is never admitted.
  uint64_t decoded_budget_bytes = 256ull << 20;
};

/// Monotonic counter snapshot of one cache level (all levels share this
/// shape so tools can print them uniformly).
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t bytes_served = 0;  ///< decoded bytes returned by hits
  uint64_t bytes_held = 0;    ///< current resident decoded bytes
  uint64_t entries = 0;       ///< current resident entries
};

/// What makes a file "the same file as before": the stat identity plus
/// the CRC of the actual footer bytes read this open. Two opens with
/// equal FileIdentity saw byte-identical footers over an equally sized
/// file, so parse + validation are guaranteed to produce the same
/// metadata (validation also depends on the caller's chunk-size limit,
/// which the cache checks separately).
struct FileIdentity {
  uint64_t size = 0;
  int64_t mtime_ns = 0;
  uint32_t footer_crc = 0;

  bool operator==(const FileIdentity& o) const {
    return size == o.size && mtime_ns == o.mtime_ns &&
           footer_crc == o.footer_crc;
  }
};

/// Always-on footer/metadata cache. One entry per path; a changed
/// identity replaces the entry and allocates a fresh file generation id,
/// which transitively invalidates every ChunkCache entry of the old
/// bytes (their keys become unreachable).
class FooterCache {
 public:
  struct Entry {
    FileIdentity identity;
    /// The max_chunk_decoded_bytes limit the metadata was validated
    /// under. A lookup with a smaller (stricter) limit must revalidate.
    uint64_t validated_chunk_limit = 0;
    /// Process-unique generation id of (path, identity); the ChunkCache
    /// key component that makes stale decoded chunks unreachable.
    uint64_t file_id = 0;
    std::shared_ptr<const FileMetadata> metadata;
  };

  /// The banked entry for `path` if its identity matches and it was
  /// validated under a limit no looser than `chunk_limit`; else null.
  std::shared_ptr<const Entry> Find(const std::string& path,
                                    const FileIdentity& identity,
                                    uint64_t chunk_limit);

  /// Banks validated metadata, assigning a fresh file generation id. If
  /// another thread banked the same identity first, returns that entry
  /// (first writer wins; both validated the same bytes).
  std::shared_ptr<const Entry> Insert(
      const std::string& path, const FileIdentity& identity,
      uint64_t validated_chunk_limit,
      std::shared_ptr<const FileMetadata> metadata);

  CacheCounters counters() const;
  void Clear();

  /// The process-wide instance every LaqReader::Open consults.
  static FooterCache& Process();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const Entry>> entries_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
};

/// Decoded-chunk LRU key. `file_id` is a FooterCache generation id, so
/// the key pins the exact bytes (path + size + mtime + footer CRC) the
/// chunk was decoded from; leaf + group address the chunk within them.
/// Page ranges and decode options need no key component because only
/// complete clean decodes are inserted — a full decode is the same bytes
/// under every option set (fail-filled partial reads are never cached).
struct ChunkKey {
  uint64_t file_id = 0;
  int32_t leaf = 0;
  int32_t group = 0;

  bool operator==(const ChunkKey& o) const {
    return file_id == o.file_id && leaf == o.leaf && group == o.group;
  }
};

/// Thread-safe decoded-chunk LRU, striped to keep workers off each
/// other's locks: key -> stripe by hash, each stripe an independent LRU
/// under budget/stripes bytes.
class ChunkCache {
 public:
  explicit ChunkCache(CacheOptions options = {});

  /// On hit, resizes `*out` to the chunk's decoded size and copies the
  /// bytes in (the copy runs outside the stripe lock). Counts a miss
  /// otherwise.
  bool Get(const ChunkKey& key, std::vector<uint8_t>* out);

  /// Admits a fully decoded clean chunk. Oversized chunks (larger than a
  /// stripe's budget share) are ignored; re-inserting a resident key
  /// refreshes its LRU position without copying (same key => same bytes).
  void Insert(const ChunkKey& key, const uint8_t* data, size_t size);

  uint64_t budget_bytes() const { return options_.decoded_budget_bytes; }
  CacheCounters counters() const;
  void Clear();

 private:
  struct Node {
    ChunkKey key;
    std::shared_ptr<const std::vector<uint8_t>> data;
  };
  struct KeyHash {
    size_t operator()(const ChunkKey& k) const {
      uint64_t h = k.file_id * 0x9e3779b97f4a7c15ull;
      h ^= (static_cast<uint64_t>(static_cast<uint32_t>(k.leaf)) << 32) |
           static_cast<uint32_t>(k.group);
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };
  struct Stripe {
    std::mutex mu;
    std::list<Node> lru;  // front = most recently used
    std::unordered_map<ChunkKey, std::list<Node>::iterator, KeyHash> index;
    uint64_t bytes = 0;
  };

  static constexpr int kStripes = 16;

  Stripe& StripeFor(const ChunkKey& key) {
    return stripes_[KeyHash{}(key) % kStripes];
  }

  CacheOptions options_;
  uint64_t stripe_budget_ = 0;
  Stripe stripes_[kStripes];
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> bytes_served_{0};
};

/// One cached query result: everything QueryRunOutput carries that is a
/// function of (query, dataset) alone. Histograms are stored exploded
/// (HistogramParts) and rebuilt on hit, which reproduces the source
/// histograms bit for bit. Timings and scan stats are deliberately not
/// cached — a hit reports its own (near-zero) costs.
struct CachedResult {
  std::vector<HistogramParts> histograms;
  int64_t events_processed = 0;
  uint64_t ops = 0;
};

/// Exact-string-keyed LRU of query results. Keys are full canonical
/// fingerprints (engine + plan text + dataset version), not hashes, so
/// a hit can never be a collision.
class ResultCache {
 public:
  explicit ResultCache(size_t max_entries = 256);

  bool Get(const std::string& key, CachedResult* out);
  void Insert(const std::string& key, CachedResult value);

  CacheCounters counters() const;
  void Clear();

 private:
  struct Node {
    std::string key;
    CachedResult value;
  };

  size_t max_entries_;
  mutable std::mutex mu_;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Node>::iterator> index_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
};

/// Content version of the dataset at `path` (a .laq file or a directory
/// of "*.laq" shards): a hash over the sorted shard list and each
/// shard's stored footer CRC and sizes. The footer embeds every chunk's
/// CRC and statistics, so its CRC is effectively a content hash of the
/// whole shard — regenerating a dataset (even to the same row count)
/// changes the version and invalidates cached results. Deliberately
/// mtime-free: a byte-identical rewrite keeps its cached results.
Result<uint64_t> DatasetVersion(const std::string& path);

}  // namespace hepq::cache

#endif  // HEPQUERY_CACHE_CACHE_H_
