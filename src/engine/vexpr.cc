#include "engine/vexpr.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/physics.h"
#include "engine/vexpr_fuse.h"
#include "obs/trace.h"

namespace hepq::engine {

const char* VOpName(VOp op) {
  switch (op) {
    case VOp::kConst: return "const";
    case VOp::kLoad: return "load";
    case VOp::kAdd: return "add";
    case VOp::kSub: return "sub";
    case VOp::kMul: return "mul";
    case VOp::kDiv: return "div";
    case VOp::kLt: return "lt";
    case VOp::kLe: return "le";
    case VOp::kGt: return "gt";
    case VOp::kGe: return "ge";
    case VOp::kEq: return "eq";
    case VOp::kNe: return "ne";
    case VOp::kAnd: return "and";
    case VOp::kOr: return "or";
    case VOp::kAbs: return "abs";
    case VOp::kSqrt: return "sqrt";
    case VOp::kNot: return "not";
    case VOp::kMin2: return "min";
    case VOp::kMax2: return "max";
    case VOp::kDeltaPhi: return "delta_phi";
    case VOp::kDeltaR: return "delta_r";
    case VOp::kInvMass2: return "inv_mass2";
    case VOp::kInvMass3: return "inv_mass3";
    case VOp::kSumPt3: return "sum_pt3";
    case VOp::kTransverseMass: return "transverse_mass";
    case VOp::kMassOfSum2: return "mass_of_sum2";
    case VOp::kMassOfSum3: return "mass_of_sum3";
    case VOp::kPtOfSum3: return "pt_of_sum3";
  }
  return "?";
}

VOp VOpFor(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return VOp::kAdd;
    case BinOp::kSub: return VOp::kSub;
    case BinOp::kMul: return VOp::kMul;
    case BinOp::kDiv: return VOp::kDiv;
    case BinOp::kLt: return VOp::kLt;
    case BinOp::kLe: return VOp::kLe;
    case BinOp::kGt: return VOp::kGt;
    case BinOp::kGe: return VOp::kGe;
    case BinOp::kEq: return VOp::kEq;
    case BinOp::kNe: return VOp::kNe;
    case BinOp::kAnd: return VOp::kAnd;
    case BinOp::kOr: return VOp::kOr;
  }
  return VOp::kAdd;
}

VOp VOpFor(Fn fn) {
  switch (fn) {
    case Fn::kAbs: return VOp::kAbs;
    case Fn::kSqrt: return VOp::kSqrt;
    case Fn::kNot: return VOp::kNot;
    case Fn::kMin2: return VOp::kMin2;
    case Fn::kMax2: return VOp::kMax2;
    case Fn::kDeltaPhi: return VOp::kDeltaPhi;
    case Fn::kDeltaR: return VOp::kDeltaR;
    case Fn::kInvMass2: return VOp::kInvMass2;
    case Fn::kInvMass3: return VOp::kInvMass3;
    case Fn::kSumPt3: return VOp::kSumPt3;
    case Fn::kTransverseMass: return VOp::kTransverseMass;
  }
  return VOp::kAbs;
}

int VOpArity(VOp op) {
  switch (op) {
    case VOp::kConst:
    case VOp::kLoad:
      return 0;
    case VOp::kAbs:
    case VOp::kSqrt:
    case VOp::kNot:
      return 1;
    case VOp::kDeltaR:
    case VOp::kTransverseMass:
      return 4;
    case VOp::kInvMass2:
    case VOp::kMassOfSum2:
      return 8;
    case VOp::kInvMass3:
    case VOp::kSumPt3:
    case VOp::kMassOfSum3:
    case VOp::kPtOfSum3:
      return 12;
    default:
      return 2;
  }
}

double VOpApply(VOp op, const double* v) {
  switch (op) {
    case VOp::kAdd: return v[0] + v[1];
    case VOp::kSub: return v[0] - v[1];
    case VOp::kMul: return v[0] * v[1];
    case VOp::kDiv: return v[0] / v[1];
    case VOp::kLt: return v[0] < v[1] ? 1.0 : 0.0;
    case VOp::kLe: return v[0] <= v[1] ? 1.0 : 0.0;
    case VOp::kGt: return v[0] > v[1] ? 1.0 : 0.0;
    case VOp::kGe: return v[0] >= v[1] ? 1.0 : 0.0;
    case VOp::kEq: return v[0] == v[1] ? 1.0 : 0.0;
    case VOp::kNe: return v[0] != v[1] ? 1.0 : 0.0;
    // Eager && / || match the interpreter's short-circuit forms exactly:
    // operands reaching a VM program are pure, and booleans are exact 0/1.
    case VOp::kAnd: return v[0] != 0.0 && v[1] != 0.0 ? 1.0 : 0.0;
    case VOp::kOr: return v[0] != 0.0 || v[1] != 0.0 ? 1.0 : 0.0;
    case VOp::kAbs: return std::abs(v[0]);
    case VOp::kSqrt: return std::sqrt(v[0]);
    case VOp::kNot: return v[0] != 0.0 ? 0.0 : 1.0;
    case VOp::kMin2: return std::min(v[0], v[1]);
    case VOp::kMax2: return std::max(v[0], v[1]);
    case VOp::kDeltaPhi: return DeltaPhi(v[0], v[1]);
    case VOp::kDeltaR: return DeltaR(v[0], v[1], v[2], v[3]);
    case VOp::kInvMass2:
      return InvariantMass2({v[0], v[1], v[2], v[3]},
                            {v[4], v[5], v[6], v[7]});
    case VOp::kInvMass3:
      return InvariantMass3({v[0], v[1], v[2], v[3]},
                            {v[4], v[5], v[6], v[7]},
                            {v[8], v[9], v[10], v[11]});
    case VOp::kSumPt3:
      return AddPtEtaPhiM3({v[0], v[1], v[2], v[3]},
                           {v[4], v[5], v[6], v[7]},
                           {v[8], v[9], v[10], v[11]})
          .pt;
    case VOp::kTransverseMass:
      return TransverseMass(v[0], v[1], v[2], v[3]);
    case VOp::kMassOfSum2:
      return MassOfSum2({v[0], v[1], v[2], v[3]}, {v[4], v[5], v[6], v[7]});
    case VOp::kMassOfSum3:
      return MassOfSum3({v[0], v[1], v[2], v[3]}, {v[4], v[5], v[6], v[7]},
                        {v[8], v[9], v[10], v[11]});
    case VOp::kPtOfSum3:
      return PtOfSum3({v[0], v[1], v[2], v[3]}, {v[4], v[5], v[6], v[7]},
                      {v[8], v[9], v[10], v[11]});
    case VOp::kConst:
    case VOp::kLoad:
      break;
  }
  return 0.0;
}

double* VScratch::Reg(int r, int n) {
  if (static_cast<size_t>(r) >= regs_.size()) {
    regs_.resize(static_cast<size_t>(r) + 1);
  }
  std::vector<double>& buf = regs_[static_cast<size_t>(r)];
  if (buf.size() < static_cast<size_t>(n)) {
    buf.resize(static_cast<size_t>(n));
  }
  return buf.data();
}

double* VScratch::Block(int num_temps) {
  // Over-allocate by one cacheline and hand out an aligned pointer: the
  // fused strip loops then run over 64-byte-aligned temporaries, which the
  // vectorizer can load without peel loops.
  const size_t need =
      static_cast<size_t>(num_temps) * kVexprBlockLanes + 64 / sizeof(double);
  if (block_.size() < need) block_.resize(need);
  const uintptr_t addr = reinterpret_cast<uintptr_t>(block_.data());
  const uintptr_t aligned = (addr + 63) & ~static_cast<uintptr_t>(63);
  return reinterpret_cast<double*>(aligned);
}

namespace {

template <typename T>
void GatherInto(const T* src, const uint32_t* index, int n, double* d) {
  if (index != nullptr) {
    for (int i = 0; i < n; ++i) d[i] = static_cast<double>(src[index[i]]);
  } else {
    for (int i = 0; i < n; ++i) d[i] = static_cast<double>(src[i]);
  }
}

// One dense lane loop per operator. Each lane performs the exact IEEE
// operation sequence of the interpreter's switch in expr.cc (same helper
// calls, same comparison forms), so results are bit-identical; the only
// difference is dispatch amortized over the batch.
#define HEPQ_VM_LOOP2(expr)                          \
  do {                                               \
    const double* a = args[0];                       \
    const double* b = args[1];                       \
    for (int i = 0; i < n; ++i) d[i] = (expr);       \
  } while (0)

void RunInstr(VOp op, const double* const* args, int n, double* d) {
  switch (op) {
    case VOp::kAdd: HEPQ_VM_LOOP2(a[i] + b[i]); break;
    case VOp::kSub: HEPQ_VM_LOOP2(a[i] - b[i]); break;
    case VOp::kMul: HEPQ_VM_LOOP2(a[i] * b[i]); break;
    case VOp::kDiv: HEPQ_VM_LOOP2(a[i] / b[i]); break;
    case VOp::kLt: HEPQ_VM_LOOP2(a[i] < b[i] ? 1.0 : 0.0); break;
    case VOp::kLe: HEPQ_VM_LOOP2(a[i] <= b[i] ? 1.0 : 0.0); break;
    case VOp::kGt: HEPQ_VM_LOOP2(a[i] > b[i] ? 1.0 : 0.0); break;
    case VOp::kGe: HEPQ_VM_LOOP2(a[i] >= b[i] ? 1.0 : 0.0); break;
    case VOp::kEq: HEPQ_VM_LOOP2(a[i] == b[i] ? 1.0 : 0.0); break;
    case VOp::kNe: HEPQ_VM_LOOP2(a[i] != b[i] ? 1.0 : 0.0); break;
    case VOp::kAnd:
      HEPQ_VM_LOOP2(a[i] != 0.0 && b[i] != 0.0 ? 1.0 : 0.0);
      break;
    case VOp::kOr:
      HEPQ_VM_LOOP2(a[i] != 0.0 || b[i] != 0.0 ? 1.0 : 0.0);
      break;
    case VOp::kMin2: HEPQ_VM_LOOP2(std::min(a[i], b[i])); break;
    case VOp::kMax2: HEPQ_VM_LOOP2(std::max(a[i], b[i])); break;
    case VOp::kAbs: {
      const double* a = args[0];
      for (int i = 0; i < n; ++i) d[i] = std::abs(a[i]);
      break;
    }
    case VOp::kSqrt: {
      const double* a = args[0];
      for (int i = 0; i < n; ++i) d[i] = std::sqrt(a[i]);
      break;
    }
    case VOp::kNot: {
      const double* a = args[0];
      for (int i = 0; i < n; ++i) d[i] = a[i] != 0.0 ? 0.0 : 1.0;
      break;
    }
    case VOp::kDeltaPhi: {
      const double* a = args[0];
      const double* b = args[1];
      for (int i = 0; i < n; ++i) d[i] = DeltaPhi(a[i], b[i]);
      break;
    }
    case VOp::kDeltaR: {
      for (int i = 0; i < n; ++i) {
        d[i] = DeltaR(args[0][i], args[1][i], args[2][i], args[3][i]);
      }
      break;
    }
    case VOp::kInvMass2: {
      for (int i = 0; i < n; ++i) {
        d[i] = InvariantMass2(
            {args[0][i], args[1][i], args[2][i], args[3][i]},
            {args[4][i], args[5][i], args[6][i], args[7][i]});
      }
      break;
    }
    case VOp::kInvMass3: {
      for (int i = 0; i < n; ++i) {
        d[i] = InvariantMass3(
            {args[0][i], args[1][i], args[2][i], args[3][i]},
            {args[4][i], args[5][i], args[6][i], args[7][i]},
            {args[8][i], args[9][i], args[10][i], args[11][i]});
      }
      break;
    }
    case VOp::kSumPt3: {
      for (int i = 0; i < n; ++i) {
        d[i] = AddPtEtaPhiM3(
                   {args[0][i], args[1][i], args[2][i], args[3][i]},
                   {args[4][i], args[5][i], args[6][i], args[7][i]},
                   {args[8][i], args[9][i], args[10][i], args[11][i]})
                   .pt;
      }
      break;
    }
    case VOp::kTransverseMass: {
      for (int i = 0; i < n; ++i) {
        d[i] = TransverseMass(args[0][i], args[1][i], args[2][i], args[3][i]);
      }
      break;
    }
    case VOp::kMassOfSum2: {
      for (int i = 0; i < n; ++i) {
        d[i] = MassOfSum2({args[0][i], args[1][i], args[2][i], args[3][i]},
                          {args[4][i], args[5][i], args[6][i], args[7][i]});
      }
      break;
    }
    case VOp::kMassOfSum3: {
      for (int i = 0; i < n; ++i) {
        d[i] = MassOfSum3({args[0][i], args[1][i], args[2][i], args[3][i]},
                          {args[4][i], args[5][i], args[6][i], args[7][i]},
                          {args[8][i], args[9][i], args[10][i], args[11][i]});
      }
      break;
    }
    case VOp::kPtOfSum3: {
      for (int i = 0; i < n; ++i) {
        d[i] = PtOfSum3({args[0][i], args[1][i], args[2][i], args[3][i]},
                        {args[4][i], args[5][i], args[6][i], args[7][i]},
                        {args[8][i], args[9][i], args[10][i], args[11][i]});
      }
      break;
    }
    case VOp::kConst:
    case VOp::kLoad:
      break;  // handled by the caller
  }
}

#undef HEPQ_VM_LOOP2

}  // namespace

void VProgram::Run(const VColumn* cols, int n, VScratch* scratch,
                   double* out) const {
  if (n <= 0) return;
  if (scratch->simd() && fused_ != nullptr) {
    fused_->Run(cols, n, scratch, out);
    return;
  }
  RunBytecode(cols, n, scratch, out);
}

int VProgram::RunGate(const VColumn* cols, int n, VScratch* scratch,
                      bool negate, uint32_t* sel_out) const {
  if (n <= 0) return 0;
  if (scratch->simd() && fused_ != nullptr) {
    return fused_->RunGate(cols, n, scratch, negate, sel_out);
  }
  // Bytecode fallback: evaluate the 0/1 vector, then compact — the exact
  // selection the fused gate produces. The values land in a register one
  // past the program's own (sized up front so the inner Reg calls cannot
  // reallocate under the pointer).
  double* vals = scratch->Reg(num_regs_, n);
  RunBytecode(cols, n, scratch, vals);
  int count = 0;
  for (int i = 0; i < n; ++i) {
    if ((vals[i] != 0.0) != negate) sel_out[count++] = static_cast<uint32_t>(i);
  }
  return count;
}

void VProgram::RunBytecode(const VColumn* cols, int n, VScratch* scratch,
                           double* out) const {
  // Same dispatch-overhead counters as the fused tier (vexpr_kernels.cc):
  // vops_retired counts source VOps x lanes with the time spent, so a
  // profiled run attributes kernel time identically on either tier. The
  // bytecode tier fuses nothing, so no vops_fused record is emitted.
  const bool traced = obs::TracingActive();
  const int64_t t0 = traced ? obs::NowNs() : 0;
  const double* arg_ptrs[12];
  for (const VInstr& in : code_) {
    double* d = scratch->Reg(in.dst, n);
    switch (in.op) {
      case VOp::kConst: {
        const double v = consts_[in.index];
        for (int i = 0; i < n; ++i) d[i] = v;
        break;
      }
      case VOp::kLoad: {
        const VColumn& c = cols[in.index];
        if (c.data == nullptr) {
          const double v = c.splat;
          for (int i = 0; i < n; ++i) d[i] = v;
          break;
        }
        // The per-type dispatch the interpreter pays on every
        // MemberAccessor::Get runs once per (instruction, batch) here.
        switch (c.type) {
          case TypeId::kFloat32:
            GatherInto(static_cast<const float*>(c.data), c.index, n, d);
            break;
          case TypeId::kFloat64:
            GatherInto(static_cast<const double*>(c.data), c.index, n, d);
            break;
          case TypeId::kInt32:
            GatherInto(static_cast<const int32_t*>(c.data), c.index, n, d);
            break;
          case TypeId::kInt64:
            GatherInto(static_cast<const int64_t*>(c.data), c.index, n, d);
            break;
          case TypeId::kBool:
            GatherInto(static_cast<const uint8_t*>(c.data), c.index, n, d);
            break;
          default:
            // Unreachable: BatchBindings rejects non-primitive leaves at
            // bind time (see AccessorFor in context.cc).
            for (int i = 0; i < n; ++i) d[i] = 0.0;
            break;
        }
        break;
      }
      default: {
        for (int k = 0; k < in.num_args; ++k) {
          arg_ptrs[k] = scratch->Reg(args_[in.first_arg + k], n);
        }
        RunInstr(in.op, arg_ptrs, n, d);
        break;
      }
    }
  }
  std::memcpy(out, scratch->Reg(result_reg_, n),
              static_cast<size_t>(n) * sizeof(double));
  if (traced) {
    obs::CountStage("vops_retired", obs::Stage::kVexprKernel,
                    obs::NowNs() - t0,
                    static_cast<uint64_t>(code_.size()) *
                        static_cast<uint64_t>(n));
  }
}

std::string VProgram::ToString() const {
  std::string out;
  char buf[64];
  for (const VInstr& in : code_) {
    std::snprintf(buf, sizeof(buf), "r%u = %s", in.dst, VOpName(in.op));
    out += buf;
    if (in.op == VOp::kConst) {
      std::snprintf(buf, sizeof(buf), " %g", consts_[in.index]);
      out += buf;
    } else if (in.op == VOp::kLoad) {
      std::snprintf(buf, sizeof(buf), " slot%u", in.index);
      out += buf;
    } else {
      for (int k = 0; k < in.num_args; ++k) {
        std::snprintf(buf, sizeof(buf), " r%u", args_[in.first_arg + k]);
        out += buf;
      }
    }
    out += "\n";
  }
  std::snprintf(buf, sizeof(buf), "ret r%u\n", result_reg_);
  out += buf;
  return out;
}

// ---- Builder ---------------------------------------------------------------

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// CSE key tags; kept distinct from VOp values used in op keys.
constexpr uint64_t kKeyConst = ~uint64_t{0};
constexpr uint64_t kKeyLoad = ~uint64_t{1};

}  // namespace

int VProgramBuilder::NewReg(bool is_const, double value) {
  const int r = program_.num_regs_++;
  reg_const_.push_back({is_const, value});
  return r;
}

int VProgramBuilder::Const(double value) {
  std::vector<uint64_t> key{kKeyConst, DoubleBits(value)};
  auto it = cse_.find(key);
  if (it != cse_.end()) return it->second;
  // Folded-away constants never reach the instruction stream; the register
  // is materialized lazily the first time a non-folded op consumes it.
  const int r = NewReg(true, value);
  cse_.emplace(std::move(key), r);
  return r;
}

int VProgramBuilder::Load(int slot) {
  std::vector<uint64_t> key{kKeyLoad, static_cast<uint64_t>(slot)};
  auto it = cse_.find(key);
  if (it != cse_.end()) return it->second;
  const int r = NewReg(false, 0.0);
  program_.code_.push_back({VOp::kLoad, static_cast<uint16_t>(r),
                            static_cast<uint16_t>(slot), 0, 0});
  if (slot + 1 > program_.num_slots_) program_.num_slots_ = slot + 1;
  cse_.emplace(std::move(key), r);
  return r;
}

void VProgramBuilder::Materialize(int reg) {
  if (!reg_const_[static_cast<size_t>(reg)].first) return;
  if (materialized_.size() < reg_const_.size()) {
    materialized_.resize(reg_const_.size(), false);
  }
  if (materialized_[static_cast<size_t>(reg)]) return;
  materialized_[static_cast<size_t>(reg)] = true;
  const double value = reg_const_[static_cast<size_t>(reg)].second;
  const uint16_t ci = static_cast<uint16_t>(program_.consts_.size());
  program_.consts_.push_back(value);
  program_.code_.push_back(
      {VOp::kConst, static_cast<uint16_t>(reg), ci, 0, 0});
}

int VProgramBuilder::Op(VOp op, const std::vector<int>& arg_regs) {
  // Constant folding: if every argument is a known constant, apply the
  // exact scalar semantics now and emit nothing.
  bool all_const = true;
  double vals[12];
  for (size_t k = 0; k < arg_regs.size(); ++k) {
    const auto& rc = reg_const_[static_cast<size_t>(arg_regs[k])];
    if (!rc.first) {
      all_const = false;
      break;
    }
    vals[k] = rc.second;
  }
  if (all_const) return Const(VOpApply(op, vals));

  std::vector<uint64_t> key;
  key.reserve(arg_regs.size() + 1);
  key.push_back(static_cast<uint64_t>(op));
  for (int r : arg_regs) key.push_back(static_cast<uint64_t>(r));
  auto it = cse_.find(key);
  if (it != cse_.end()) return it->second;

  for (int r : arg_regs) Materialize(r);
  const int dst = NewReg(false, 0.0);
  VInstr in;
  in.op = op;
  in.dst = static_cast<uint16_t>(dst);
  in.first_arg = static_cast<uint16_t>(program_.args_.size());
  in.num_args = static_cast<uint16_t>(arg_regs.size());
  for (int r : arg_regs) program_.args_.push_back(static_cast<uint16_t>(r));
  program_.code_.push_back(in);
  cse_.emplace(std::move(key), dst);
  return dst;
}

bool VProgramBuilder::IsConst(int reg, double* value) const {
  const auto& rc = reg_const_[static_cast<size_t>(reg)];
  if (rc.first && value != nullptr) *value = rc.second;
  return rc.first;
}

VProgram VProgramBuilder::Finish(int result_reg) {
  Materialize(result_reg);
  program_.result_reg_ = static_cast<uint16_t>(result_reg);
  // The fusion pass runs once here, so every program carries its simd-tier
  // plan; which tier Run actually executes is VScratch's decision.
  program_.fused_ = BuildFusedPlan(program_);
  return std::move(program_);
}

// ---- Scratch ---------------------------------------------------------------

std::vector<double>* VexprScratch::AcquireF64() {
  if (f64_used_ == f64_.size()) {
    f64_.push_back(std::make_unique<std::vector<double>>());
  }
  std::vector<double>* v = f64_[f64_used_++].get();
  v->clear();
  return v;
}

std::vector<uint32_t>* VexprScratch::AcquireU32() {
  if (u32_used_ == u32_.size()) {
    u32_.push_back(std::make_unique<std::vector<uint32_t>>());
  }
  std::vector<uint32_t>* v = u32_[u32_used_++].get();
  v->clear();
  return v;
}

std::vector<VColumn>* VexprScratch::AcquireCols() {
  if (cols_used_ == cols_.size()) {
    cols_.push_back(std::make_unique<std::vector<VColumn>>());
  }
  std::vector<VColumn>* v = cols_[cols_used_++].get();
  v->clear();
  return v;
}

void VexprScratch::ResetAll() {
  f64_used_ = 0;
  u32_used_ = 0;
  cols_used_ = 0;
}

}  // namespace hepq::engine
