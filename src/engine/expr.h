#ifndef HEPQUERY_ENGINE_EXPR_H_
#define HEPQUERY_ENGINE_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/context.h"

namespace hepq::engine {

enum class BinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
};

/// Built-in scalar functions. The physics entries mirror the UDF library
/// every HEP system ships (paper §3.6): they consume flattened
/// (pt, eta, phi, mass) argument groups.
enum class Fn {
  kAbs,       // 1 arg
  kSqrt,      // 1 arg
  kNot,       // 1 arg
  kMin2,      // 2 args
  kMax2,      // 2 args
  kDeltaPhi,  // (phi1, phi2)
  kDeltaR,    // (eta1, phi1, eta2, phi2)
  kInvMass2,  // (pt1,eta1,phi1,m1, pt2,eta2,phi2,m2)
  kInvMass3,  // 12 args, three (pt,eta,phi,m) groups
  kSumPt3,    // 12 args: pt of the three-particle system four-momentum
  kTransverseMass,  // (pt1, phi1, pt2, phi2)
};

enum class AggKind { kCount, kSum, kMin, kMax, kAny };

/// One loop level of a combination search.
struct ComboLoop {
  int list_slot;
  int iter_slot;
};

/// Which execution tier an engine uses for its expression trees — the
/// ablation ladder of DESIGN.md "Expression execution":
///   kInterpreted — per-row virtual-dispatch tree walk (the Rumble end);
///   kBytecode    — vectorized bytecode VM, one full-batch register loop
///                  per opcode (engine/vexpr, PR 3);
///   kSimd        — the bytecode program after the fusion pass
///                  (engine/vexpr_fuse): straight-line op runs grouped
///                  into strip-mined batch kernels (the default).
/// All three produce bit-identical results; only the cost model differs.
enum class ExprExec {
  kInterpreted,
  kBytecode,
  kSimd,
  /// Deprecated alias for the default compiled tier (now the fused one).
  kCompiled = kSimd,
};

class Expr;

/// Structural reflection of one expression node, consumed by the
/// vectorizing compiler (engine/vexpr): it lowers trees to batch bytecode
/// without widening the interpreter's class hierarchy or exposing the
/// node classes outside expr.cc. Child pointers stay owned by the
/// reflected node and are valid while the tree is alive.
struct ExprShape {
  enum class Kind {
    kLit,
    kScalarRef,
    kIterMember,
    kIterOrdinal,
    kListSize,
    kBin,
    kCall,
    kAgg,
    kBestCombination,
    kAnyCombination,
  };
  Kind kind = Kind::kLit;
  double lit = 0.0;
  int list_slot = -1;
  int iter_slot = -1;
  int member_slot = -1;
  int scalar_slot = -1;
  BinOp bin_op = BinOp::kAdd;
  Fn fn = Fn::kAbs;
  AggKind agg_kind = AggKind::kCount;
  std::vector<ComboLoop> loops;        // combination searches
  std::vector<const Expr*> operands;   // kBin operands / kCall arguments
  const Expr* filter = nullptr;        // agg / combination filter (or null)
  const Expr* value = nullptr;         // agg value / combination key (or null)
};

/// Interpreted scalar expression evaluated once per event (or per bound
/// particle combination). Booleans are represented as 0.0 / 1.0. This is
/// the execution model of the "BigQuery plan shape": array logic runs as
/// expressions inside the scan, with no flattening of the event table.
class Expr {
 public:
  virtual ~Expr() = default;
  virtual double Eval(EvalContext* ctx) const = 0;
  /// Compact plan rendering for EXPLAIN output and error messages.
  virtual std::string ToString() const = 0;
  /// Reflects the node's structure for the vectorizing compiler.
  virtual ExprShape Shape() const = 0;
  bool EvalBool(EvalContext* ctx) const { return Eval(ctx) != 0.0; }
};

using ExprPtr = std::shared_ptr<const Expr>;

// ---- Node factories -------------------------------------------------------

ExprPtr Lit(double value);
/// Scalar leaf of the event (slot from the query's scalar declarations).
ExprPtr ScalarRef(int scalar_slot);
/// Member `member_slot` of the particle bound to iterator `iter_slot`,
/// which iterates over list `list_slot`.
ExprPtr IterMember(int list_slot, int iter_slot, int member_slot);
/// The ordinal (0-based position within its event) of iterator `iter_slot`
/// over `list_slot` — SQL's WITH ORDINALITY / JSONiq's `at $i`.
ExprPtr IterOrdinal(int list_slot, int iter_slot);
ExprPtr Bin(BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Call(Fn fn, std::vector<ExprPtr> args);

/// Number of particles in a list — CARDINALITY / ARRAY_LENGTH.
ExprPtr ListSize(int list_slot);

/// Aggregates over the elements of one list within the current event
/// (SQL's correlated nested subquery, Listing 4a of the paper; JSONiq's
/// `count($event.jets[][...])`). Binds `iter_slot` to each element in
/// turn; elements failing `filter` (optional) are skipped; `value`
/// (optional, defaults to 1) is aggregated. May be nested: `filter` /
/// `value` can themselves aggregate over other lists with other iterator
/// slots, which is how Q7's "no lepton within dR < 0.4" veto runs.
ExprPtr AggOverList(AggKind kind, int list_slot, int iter_slot,
                    ExprPtr filter, ExprPtr value);

/// Finds the combination of particles minimizing `key` subject to
/// `filter` (optional), exploring the Cartesian product of the loops;
/// loops over the same list are restricted to strictly increasing ordinals
/// (symmetric combinations, e.g. Q6's trijet). On success the winning
/// element indices stay bound to the loops' iterator slots for all
/// subsequently evaluated expressions, and the expression yields 1.
/// Yields 0 if no combination passes the filter.
ExprPtr BestCombination(std::vector<ComboLoop> loops, ExprPtr filter,
                        ExprPtr key);

/// Like BestCombination but only tests for existence (Q5): yields 1 as
/// soon as some combination passes `filter`, leaving it bound.
ExprPtr AnyCombination(std::vector<ComboLoop> loops, ExprPtr filter);

/// Finds the single element of `list_slot` minimizing `key` subject to
/// `filter`, binding `iter_slot` to it (Q8's "highest-pt lepton not in the
/// pair" uses the negated pt as key). Yields 1 if found, else 0.
ExprPtr BestElement(int list_slot, int iter_slot, ExprPtr filter,
                    ExprPtr key);

// ---- Convenience wrappers -------------------------------------------------

inline ExprPtr Add(ExprPtr a, ExprPtr b) {
  return Bin(BinOp::kAdd, std::move(a), std::move(b));
}
inline ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return Bin(BinOp::kSub, std::move(a), std::move(b));
}
inline ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return Bin(BinOp::kMul, std::move(a), std::move(b));
}
inline ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Bin(BinOp::kLt, std::move(a), std::move(b));
}
inline ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Bin(BinOp::kGt, std::move(a), std::move(b));
}
inline ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Bin(BinOp::kGe, std::move(a), std::move(b));
}
inline ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Bin(BinOp::kLe, std::move(a), std::move(b));
}
inline ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Bin(BinOp::kEq, std::move(a), std::move(b));
}
inline ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return Bin(BinOp::kNe, std::move(a), std::move(b));
}
inline ExprPtr And(ExprPtr a, ExprPtr b) {
  return Bin(BinOp::kAnd, std::move(a), std::move(b));
}
inline ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Bin(BinOp::kOr, std::move(a), std::move(b));
}
inline ExprPtr Abs(ExprPtr a) { return Call(Fn::kAbs, {std::move(a)}); }
inline ExprPtr Not(ExprPtr a) { return Call(Fn::kNot, {std::move(a)}); }

}  // namespace hepq::engine

#endif  // HEPQUERY_ENGINE_EXPR_H_
