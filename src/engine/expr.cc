#include "engine/expr.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "core/physics.h"

namespace hepq::engine {

namespace {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "!=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
  }
  return "?";
}

const char* FnName(Fn fn) {
  switch (fn) {
    case Fn::kAbs: return "abs";
    case Fn::kSqrt: return "sqrt";
    case Fn::kNot: return "not";
    case Fn::kMin2: return "min";
    case Fn::kMax2: return "max";
    case Fn::kDeltaPhi: return "delta_phi";
    case Fn::kDeltaR: return "delta_r";
    case Fn::kInvMass2: return "inv_mass2";
    case Fn::kInvMass3: return "inv_mass3";
    case Fn::kSumPt3: return "sum_pt3";
    case Fn::kTransverseMass: return "transverse_mass";
  }
  return "?";
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount: return "count";
    case AggKind::kSum: return "sum";
    case AggKind::kMin: return "min";
    case AggKind::kMax: return "max";
    case AggKind::kAny: return "any";
  }
  return "?";
}

std::string LoopsToString(const std::vector<ComboLoop>& loops) {
  std::string out;
  for (size_t i = 0; i < loops.size(); ++i) {
    if (i > 0) out += ", ";
    out += "list" + std::to_string(loops[i].list_slot) + "@it" +
           std::to_string(loops[i].iter_slot);
  }
  return out;
}

class LitExpr final : public Expr {
 public:
  explicit LitExpr(double v) : value_(v) {}
  double Eval(EvalContext*) const override { return value_; }
  std::string ToString() const override {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", value_);
    return buf;
  }
  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kLit;
    s.lit = value_;
    return s;
  }

 private:
  double value_;
};

class ScalarRefExpr final : public Expr {
 public:
  explicit ScalarRefExpr(int slot) : slot_(slot) {}
  double Eval(EvalContext* ctx) const override {
    return ctx->bindings->scalar(slot_).Get(ctx->row);
  }
  std::string ToString() const override {
    return "scalar" + std::to_string(slot_);
  }
  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kScalarRef;
    s.scalar_slot = slot_;
    return s;
  }

 private:
  int slot_;
};

class IterMemberExpr final : public Expr {
 public:
  IterMemberExpr(int list_slot, int iter_slot, int member_slot)
      : list_slot_(list_slot),
        iter_slot_(iter_slot),
        member_slot_(member_slot) {}
  double Eval(EvalContext* ctx) const override {
    const ListBinding& list = ctx->bindings->list(list_slot_);
    return list.members[static_cast<size_t>(member_slot_)].Get(
        ctx->iter_index[iter_slot_]);
  }
  std::string ToString() const override {
    return "it" + std::to_string(iter_slot_) + ".m" +
           std::to_string(member_slot_);
  }
  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kIterMember;
    s.list_slot = list_slot_;
    s.iter_slot = iter_slot_;
    s.member_slot = member_slot_;
    return s;
  }

 private:
  int list_slot_;
  int iter_slot_;
  int member_slot_;
};

class IterOrdinalExpr final : public Expr {
 public:
  IterOrdinalExpr(int list_slot, int iter_slot)
      : list_slot_(list_slot), iter_slot_(iter_slot) {}
  double Eval(EvalContext* ctx) const override {
    const ListBinding& list = ctx->bindings->list(list_slot_);
    return static_cast<double>(ctx->iter_index[iter_slot_] -
                               list.begin(ctx->row));
  }
  std::string ToString() const override {
    return "ordinal(it" + std::to_string(iter_slot_) + ")";
  }
  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kIterOrdinal;
    s.list_slot = list_slot_;
    s.iter_slot = iter_slot_;
    return s;
  }

 private:
  int list_slot_;
  int iter_slot_;
};

class BinExpr final : public Expr {
 public:
  BinExpr(BinOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  double Eval(EvalContext* ctx) const override {
    // Short-circuit logical operators.
    if (op_ == BinOp::kAnd) {
      return lhs_->EvalBool(ctx) && rhs_->EvalBool(ctx) ? 1.0 : 0.0;
    }
    if (op_ == BinOp::kOr) {
      return lhs_->EvalBool(ctx) || rhs_->EvalBool(ctx) ? 1.0 : 0.0;
    }
    const double a = lhs_->Eval(ctx);
    const double b = rhs_->Eval(ctx);
    switch (op_) {
      case BinOp::kAdd:
        return a + b;
      case BinOp::kSub:
        return a - b;
      case BinOp::kMul:
        return a * b;
      case BinOp::kDiv:
        return a / b;
      case BinOp::kLt:
        return a < b ? 1.0 : 0.0;
      case BinOp::kLe:
        return a <= b ? 1.0 : 0.0;
      case BinOp::kGt:
        return a > b ? 1.0 : 0.0;
      case BinOp::kGe:
        return a >= b ? 1.0 : 0.0;
      case BinOp::kEq:
        return a == b ? 1.0 : 0.0;
      case BinOp::kNe:
        return a != b ? 1.0 : 0.0;
      default:
        return 0.0;
    }
  }
  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + BinOpName(op_) + " " +
           rhs_->ToString() + ")";
  }
  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kBin;
    s.bin_op = op_;
    s.operands = {lhs_.get(), rhs_.get()};
    return s;
  }

 private:
  BinOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class CallExpr final : public Expr {
 public:
  CallExpr(Fn fn, std::vector<ExprPtr> args)
      : fn_(fn), args_(std::move(args)) {}
  double Eval(EvalContext* ctx) const override {
    double v[12];
    const size_t n = args_.size();
    for (size_t i = 0; i < n; ++i) v[i] = args_[i]->Eval(ctx);
    switch (fn_) {
      case Fn::kAbs:
        return std::abs(v[0]);
      case Fn::kSqrt:
        return std::sqrt(v[0]);
      case Fn::kNot:
        return v[0] != 0.0 ? 0.0 : 1.0;
      case Fn::kMin2:
        return std::min(v[0], v[1]);
      case Fn::kMax2:
        return std::max(v[0], v[1]);
      case Fn::kDeltaPhi:
        return DeltaPhi(v[0], v[1]);
      case Fn::kDeltaR:
        return DeltaR(v[0], v[1], v[2], v[3]);
      case Fn::kInvMass2:
        return InvariantMass2({v[0], v[1], v[2], v[3]},
                              {v[4], v[5], v[6], v[7]});
      case Fn::kInvMass3:
        return InvariantMass3({v[0], v[1], v[2], v[3]},
                              {v[4], v[5], v[6], v[7]},
                              {v[8], v[9], v[10], v[11]});
      case Fn::kSumPt3:
        return AddPtEtaPhiM3({v[0], v[1], v[2], v[3]},
                             {v[4], v[5], v[6], v[7]},
                             {v[8], v[9], v[10], v[11]})
            .pt;
      case Fn::kTransverseMass:
        return TransverseMass(v[0], v[1], v[2], v[3]);
    }
    return 0.0;
  }
  std::string ToString() const override {
    std::string out = std::string(FnName(fn_)) + "(";
    for (size_t i = 0; i < args_.size(); ++i) {
      if (i > 0) out += ", ";
      out += args_[i]->ToString();
    }
    return out + ")";
  }
  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kCall;
    s.fn = fn_;
    s.operands.reserve(args_.size());
    for (const ExprPtr& arg : args_) s.operands.push_back(arg.get());
    return s;
  }

 private:
  Fn fn_;
  std::vector<ExprPtr> args_;
};

class ListSizeExpr final : public Expr {
 public:
  explicit ListSizeExpr(int list_slot) : list_slot_(list_slot) {}
  double Eval(EvalContext* ctx) const override {
    return ctx->bindings->list(list_slot_).size(ctx->row);
  }
  std::string ToString() const override {
    return "cardinality(list" + std::to_string(list_slot_) + ")";
  }
  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kListSize;
    s.list_slot = list_slot_;
    return s;
  }

 private:
  int list_slot_;
};

class AggOverListExpr final : public Expr {
 public:
  AggOverListExpr(AggKind kind, int list_slot, int iter_slot, ExprPtr filter,
                  ExprPtr value)
      : kind_(kind),
        list_slot_(list_slot),
        iter_slot_(iter_slot),
        filter_(std::move(filter)),
        value_(std::move(value)) {}

  double Eval(EvalContext* ctx) const override {
    const ListBinding& list = ctx->bindings->list(list_slot_);
    const uint32_t begin = list.begin(ctx->row);
    const uint32_t end = list.end(ctx->row);
    const uint32_t saved = ctx->iter_index[iter_slot_];
    double acc;
    switch (kind_) {
      case AggKind::kMin:
        acc = std::numeric_limits<double>::infinity();
        break;
      case AggKind::kMax:
        acc = -std::numeric_limits<double>::infinity();
        break;
      default:
        acc = 0.0;
    }
    for (uint32_t i = begin; i < end; ++i) {
      ctx->iter_index[iter_slot_] = i;
      ++ctx->ops;
      if (filter_ != nullptr && !filter_->EvalBool(ctx)) continue;
      const double v = value_ != nullptr ? value_->Eval(ctx) : 1.0;
      switch (kind_) {
        case AggKind::kCount:
          acc += 1.0;
          break;
        case AggKind::kSum:
          acc += v;
          break;
        case AggKind::kMin:
          acc = std::min(acc, v);
          break;
        case AggKind::kMax:
          acc = std::max(acc, v);
          break;
        case AggKind::kAny:
          if (v != 0.0) {
            ctx->iter_index[iter_slot_] = saved;
            return 1.0;
          }
          break;
      }
    }
    ctx->iter_index[iter_slot_] = saved;
    return acc;
  }
  std::string ToString() const override {
    std::string out = std::string(AggKindName(kind_)) + "(list" +
                      std::to_string(list_slot_) + "@it" +
                      std::to_string(iter_slot_);
    if (filter_ != nullptr) out += " where " + filter_->ToString();
    if (value_ != nullptr) out += " -> " + value_->ToString();
    return out + ")";
  }
  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kAgg;
    s.agg_kind = kind_;
    s.list_slot = list_slot_;
    s.iter_slot = iter_slot_;
    s.filter = filter_.get();
    s.value = value_.get();
    return s;
  }

 private:
  AggKind kind_;
  int list_slot_;
  int iter_slot_;
  ExprPtr filter_;
  ExprPtr value_;
};

/// Shared machinery for combination searches: iterates the (restricted)
/// Cartesian product of the loop lists, calling `visit` for each
/// combination that survives the per-loop symmetric-deduplication rule.
class CombinationExprBase : public Expr {
 protected:
  explicit CombinationExprBase(std::vector<ComboLoop> loops)
      : loops_(std::move(loops)) {}

  template <typename Visit>
  void ForEachCombination(EvalContext* ctx, const Visit& visit) const {
    Recurse(ctx, 0, visit);
  }

 private:
  template <typename Visit>
  void Recurse(EvalContext* ctx, size_t depth, const Visit& visit) const {
    if (depth == loops_.size()) {
      ++ctx->ops;
      visit();
      return;
    }
    const ComboLoop& loop = loops_[depth];
    const ListBinding& list = ctx->bindings->list(loop.list_slot);
    uint32_t begin = list.begin(ctx->row);
    const uint32_t end = list.end(ctx->row);
    // Symmetric combinations: if an earlier loop runs over the same list,
    // start strictly after its current element so each unordered
    // combination is explored exactly once.
    for (size_t d = 0; d < depth; ++d) {
      if (loops_[d].list_slot == loop.list_slot) {
        begin = std::max(begin, ctx->iter_index[loops_[d].iter_slot] + 1);
      }
    }
    for (uint32_t i = begin; i < end; ++i) {
      ctx->iter_index[loop.iter_slot] = i;
      Recurse(ctx, depth + 1, visit);
    }
  }

 protected:
  std::vector<ComboLoop> loops_;
};

class BestCombinationExpr final : public CombinationExprBase {
 public:
  BestCombinationExpr(std::vector<ComboLoop> loops, ExprPtr filter,
                      ExprPtr key)
      : CombinationExprBase(std::move(loops)),
        filter_(std::move(filter)),
        key_(std::move(key)) {}

  double Eval(EvalContext* ctx) const override {
    double best_key = std::numeric_limits<double>::infinity();
    uint32_t best[kMaxIterators];
    bool found = false;
    ForEachCombination(ctx, [&] {
      if (filter_ != nullptr && !filter_->EvalBool(ctx)) return;
      const double k = key_->Eval(ctx);
      if (!found || k < best_key) {
        found = true;
        best_key = k;
        for (const ComboLoop& loop : loops_) {
          best[loop.iter_slot] = ctx->iter_index[loop.iter_slot];
        }
      }
    });
    if (!found) return 0.0;
    for (const ComboLoop& loop : loops_) {
      ctx->iter_index[loop.iter_slot] = best[loop.iter_slot];
    }
    return 1.0;
  }
  std::string ToString() const override {
    std::string out = "best_combination(" + LoopsToString(loops_);
    if (filter_ != nullptr) out += " where " + filter_->ToString();
    return out + " minimize " + key_->ToString() + ")";
  }
  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kBestCombination;
    s.loops = loops_;
    s.filter = filter_.get();
    s.value = key_.get();
    return s;
  }

 private:
  ExprPtr filter_;
  ExprPtr key_;
};

class AnyCombinationExpr final : public CombinationExprBase {
 public:
  AnyCombinationExpr(std::vector<ComboLoop> loops, ExprPtr filter)
      : CombinationExprBase(std::move(loops)), filter_(std::move(filter)) {}

  double Eval(EvalContext* ctx) const override {
    bool found = false;
    uint32_t bound[kMaxIterators];
    ForEachCombination(ctx, [&] {
      if (found) return;  // no early exit from the recursion; cheap check
      if (filter_ == nullptr || filter_->EvalBool(ctx)) {
        found = true;
        for (const ComboLoop& loop : loops_) {
          bound[loop.iter_slot] = ctx->iter_index[loop.iter_slot];
        }
      }
    });
    if (!found) return 0.0;
    for (const ComboLoop& loop : loops_) {
      ctx->iter_index[loop.iter_slot] = bound[loop.iter_slot];
    }
    return 1.0;
  }
  std::string ToString() const override {
    std::string out = "any_combination(" + LoopsToString(loops_);
    if (filter_ != nullptr) out += " where " + filter_->ToString();
    return out + ")";
  }
  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kAnyCombination;
    s.loops = loops_;
    s.filter = filter_.get();
    return s;
  }

 private:
  ExprPtr filter_;
};

}  // namespace

ExprPtr Lit(double value) { return std::make_shared<LitExpr>(value); }

ExprPtr ScalarRef(int scalar_slot) {
  return std::make_shared<ScalarRefExpr>(scalar_slot);
}

ExprPtr IterMember(int list_slot, int iter_slot, int member_slot) {
  return std::make_shared<IterMemberExpr>(list_slot, iter_slot, member_slot);
}

ExprPtr IterOrdinal(int list_slot, int iter_slot) {
  return std::make_shared<IterOrdinalExpr>(list_slot, iter_slot);
}

ExprPtr Bin(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<BinExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr Call(Fn fn, std::vector<ExprPtr> args) {
  return std::make_shared<CallExpr>(fn, std::move(args));
}

ExprPtr ListSize(int list_slot) {
  return std::make_shared<ListSizeExpr>(list_slot);
}

ExprPtr AggOverList(AggKind kind, int list_slot, int iter_slot,
                    ExprPtr filter, ExprPtr value) {
  return std::make_shared<AggOverListExpr>(kind, list_slot, iter_slot,
                                           std::move(filter),
                                           std::move(value));
}

ExprPtr BestCombination(std::vector<ComboLoop> loops, ExprPtr filter,
                        ExprPtr key) {
  return std::make_shared<BestCombinationExpr>(
      std::move(loops), std::move(filter), std::move(key));
}

ExprPtr AnyCombination(std::vector<ComboLoop> loops, ExprPtr filter) {
  return std::make_shared<AnyCombinationExpr>(std::move(loops),
                                              std::move(filter));
}

ExprPtr BestElement(int list_slot, int iter_slot, ExprPtr filter,
                    ExprPtr key) {
  return BestCombination({{list_slot, iter_slot}}, std::move(filter),
                         std::move(key));
}

}  // namespace hepq::engine
