#ifndef HEPQUERY_ENGINE_VEXPR_H_
#define HEPQUERY_ENGINE_VEXPR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/histogram.h"
#include "engine/expr.h"

namespace hepq::engine {

// Vectorized expression bytecode.
//
// An Expr (or FlatExpr) tree is lowered once into a flat postfix program:
// every leaf and every operator becomes one instruction that evaluates a
// *batch of lanes* into a reusable register buffer. The lowering performs
// constant folding and common-subexpression elimination, and resolves
// member accessors to typed input slots, so the per-lane hot loop contains
// no virtual dispatch, no shared_ptr chasing, and no per-access type
// switch — the `MemberAccessor::Get` switch runs once per (instruction,
// batch) instead of once per access. This is the paper's fast execution
// model (BigQuery's vectorized array expressions) as opposed to the
// tree-walking interpreter (the Rumble end of Figure 1); both are kept and
// selectable via ExprExec so the gap stays measurable.
//
// Below the bytecode sits a third tier: Finish() runs the fusion pass
// (engine/vexpr_fuse), which regroups the whole straight-line program
// into superinstruction "batch kernels" executed strip-mined over small
// lane blocks, so intermediates stay in registers/L1 instead of making a
// full-batch round trip per opcode. Run() picks bytecode or fused
// execution from the VScratch tier flag (set by the drivers from
// ExprExec), so every call site gets the selected tier without signature
// changes.
//
// Results are bit-identical to the interpreter across all tiers: each
// arithmetic opcode is the same single IEEE operation on the same
// operands, and every physics opcode either calls the same out-of-line
// helper in core/physics.cc that the interpreter calls, or (the fused
// structure-of-arrays kernels) repeats the helper's exact operation
// sequence in a TU compiled with the same contraction rules (see the
// notes in core/physics.h and engine/vexpr_kernels.cc).

/// VM opcodes. kConst splats a constant-pool entry; kLoad gathers a typed
/// input slot; everything else consumes argument registers lane-wise.
enum class VOp : uint8_t {
  kConst,
  kLoad,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,  // eager: operands are pure, so evaluating both sides is exact
  kOr,
  kAbs,
  kSqrt,
  kNot,
  kMin2,
  kMax2,
  kDeltaPhi,
  kDeltaR,
  kInvMass2,
  kInvMass3,
  kSumPt3,
  kTransverseMass,
  // Decomposed combination kernels: operands are Cartesian components
  // (px, py, pz, E per particle) produced once per list *element*, so the
  // per-lane work is add + reduce instead of a full cylindrical conversion
  // per combination (see the note in core/physics.h).
  kMassOfSum2,
  kMassOfSum3,
  kPtOfSum3,
};

const char* VOpName(VOp op);
VOp VOpFor(BinOp op);
VOp VOpFor(Fn fn);
/// Number of argument registers `op` consumes (0 for kConst / kLoad).
int VOpArity(VOp op);
/// Applies `op` to one lane of arguments — the exact scalar semantics of
/// the VM loops, shared with the constant folder so folded and evaluated
/// results are bit-identical.
double VOpApply(VOp op, const double* v);

struct VInstr {
  VOp op = VOp::kConst;
  uint16_t dst = 0;        // destination register
  uint16_t index = 0;      // kConst: constant-pool slot; kLoad: input slot
  uint16_t first_arg = 0;  // offset into VProgram's argument list
  uint16_t num_args = 0;
};

/// One input slot bound for a Run: a typed base pointer read through an
/// optional per-lane index vector (gather), or a splat constant when
/// `data` is null. The type dispatch happens once per instruction, never
/// per lane.
struct VColumn {
  TypeId type = TypeId::kFloat64;
  const void* data = nullptr;
  const uint32_t* index = nullptr;  // null: lane i reads data[i]
  double splat = 0.0;
};

/// Reusable register buffers for one worker. Buffers keep their capacity
/// across row groups, so steady-state execution allocates nothing. The
/// scratch also carries the execution-tier flag (drivers set it once per
/// batch from ExprExec) and the cacheline-aligned strip-block storage of
/// the fused tier.
class VScratch {
 public:
  double* Reg(int r, int n);

  /// Tier selector consulted by VProgram::Run: true (the default) runs
  /// the fused strip-mined kernels, false the per-opcode bytecode loops.
  void set_simd(bool simd) { simd_ = simd; }
  bool simd() const { return simd_; }

  /// 64-byte-aligned block storage for `num_temps` fused-kernel strip
  /// temporaries of kVexprBlockLanes lanes each. Capacity is kept, so
  /// steady-state fused execution allocates nothing.
  double* Block(int num_temps);

 private:
  std::vector<std::vector<double>> regs_;
  std::vector<double> block_;
  bool simd_ = true;
};

class VFusedPlan;  // engine/vexpr_fuse.h

/// A compiled batch program: flat postfix instruction list over a constant
/// pool, input slots, and registers, plus the fused superinstruction plan
/// built from it at Finish time. Immutable after Finish; Run is const and
/// thread-safe (each worker brings its own VScratch).
class VProgram {
 public:
  VProgram() = default;

  int num_slots() const { return num_slots_; }
  int num_regs() const { return num_regs_; }
  int num_instrs() const { return static_cast<int>(code_.size()); }

  // Read access for the fusion pass and tests.
  const std::vector<VInstr>& code() const { return code_; }
  const std::vector<uint16_t>& args() const { return args_; }
  const std::vector<double>& consts() const { return consts_; }
  int result_reg() const { return result_reg_; }

  /// Evaluates all instructions over lanes [0, n), writing the result
  /// register to out[0..n). cols must provide num_slots() entries.
  /// Dispatches to the fused tier when scratch->simd() is set and the
  /// fusion pass produced a plan, else runs the per-opcode bytecode loops.
  void Run(const VColumn* cols, int n, VScratch* scratch, double* out) const;

  /// Fused gate: evaluates the program as a predicate over lanes [0, n)
  /// and writes the passing lane indices (result != 0, xor `negate`) to
  /// sel_out[0..return) in ascending order, without materializing the 0/1
  /// value vector. sel_out must hold n entries. Falls back to Run + a
  /// compare pass on the bytecode tier — selections are bit-identical
  /// either way.
  int RunGate(const VColumn* cols, int n, VScratch* scratch, bool negate,
              uint32_t* sel_out) const;

  /// The fused plan (null only for default-constructed programs).
  const VFusedPlan* fused() const { return fused_.get(); }

  /// Disassembly for EXPLAIN output and tests.
  std::string ToString() const;

 private:
  friend class VProgramBuilder;
  void RunBytecode(const VColumn* cols, int n, VScratch* scratch,
                   double* out) const;
  std::vector<VInstr> code_;
  std::vector<uint16_t> args_;
  std::vector<double> consts_;
  std::shared_ptr<const VFusedPlan> fused_;
  int num_slots_ = 0;
  int num_regs_ = 0;
  uint16_t result_reg_ = 0;
};

/// Builds a VProgram bottom-up. Every Const/Load/Op returns a register id;
/// identical subcomputations are merged (CSE) and operations over
/// all-constant arguments are folded at build time.
class VProgramBuilder {
 public:
  int Const(double value);
  /// Loads input slot `slot` (caller-assigned; slots need not be dense,
  /// the program sizes itself to the largest slot id + 1).
  int Load(int slot);
  int Op(VOp op, const std::vector<int>& arg_regs);

  /// True (with the value) when `reg` folded to a constant.
  bool IsConst(int reg, double* value) const;

  VProgram Finish(int result_reg);

 private:
  VProgram program_;
  std::vector<std::pair<bool, double>> reg_const_;
  std::vector<bool> materialized_;
  std::map<std::vector<uint64_t>, int> cse_;
  int NewReg(bool is_const, double value);
  /// Emits the deferred kConst instruction for a folded register the first
  /// time a non-folded consumer needs it in the instruction stream.
  void Materialize(int reg);
};

/// Per-worker state of the compiled event-shape path: VM registers plus a
/// stack-scoped pool of index and value buffers used for lane frames,
/// selection vectors, and driver outputs. Everything keeps its capacity
/// across row groups — after warm-up the compiled path performs no heap
/// allocation per row group (micro_kernels asserts this).
class VexprScratch {
 public:
  VScratch vm;

  std::vector<double>* AcquireF64();
  std::vector<uint32_t>* AcquireU32();
  std::vector<VColumn>* AcquireCols();

  /// Returns every buffer acquired since construction to the pool; call
  /// once per batch before use.
  void ResetAll();

  /// RAII stack frame: buffers acquired inside the scope return to the
  /// pool on exit (capacity kept), so loops that acquire per iteration
  /// reuse the same buffers. Callers must not hold pointers into a scope's
  /// buffers after it exits.
  class Scope {
   public:
    explicit Scope(VexprScratch* s)
        : s_(s),
          f64_mark_(s->f64_used_),
          u32_mark_(s->u32_used_),
          cols_mark_(s->cols_used_) {}
    ~Scope() {
      s_->f64_used_ = f64_mark_;
      s_->u32_used_ = u32_mark_;
      s_->cols_used_ = cols_mark_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    VexprScratch* s_;
    size_t f64_mark_;
    size_t u32_mark_;
    size_t cols_mark_;
  };

 private:
  std::vector<std::unique_ptr<std::vector<double>>> f64_;
  std::vector<std::unique_ptr<std::vector<uint32_t>>> u32_;
  std::vector<std::unique_ptr<std::vector<VColumn>>> cols_;
  size_t f64_used_ = 0;
  size_t u32_used_ = 0;
  size_t cols_used_ = 0;
};

/// The parts of an EventQuery the compiler needs (EventQuery fills this in
/// from its declarations; the split keeps event_query.h light).
struct CompiledQuerySpec {
  std::vector<ExprPtr> stages;
  struct Fill {
    ExprPtr scalar;  // exactly one representation is active, as in FillSpec
    int list_slot = -1;
    int iter_slot = -1;
    ExprPtr filter;
    ExprPtr value;
    std::vector<ComboLoop> loops;
    bool per_element = false;
    bool per_combination = false;
  };
  std::vector<Fill> fills;
};

/// A fully compiled event-shape query: stage predicates narrow an event
/// selection vector, aggregate and combination drivers batch their inner
/// filter/score bodies across all surviving events, and fills evaluate
/// over the final selection. ExecuteBatch mirrors the interpreter loop in
/// EventQuery::ExecuteBatch bit for bit, including the ops counters.
class CompiledEventQuery {
 public:
  ~CompiledEventQuery();

  static Result<std::shared_ptr<const CompiledEventQuery>> Compile(
      CompiledQuerySpec spec);

  /// Runs over rows [0, num_rows) of the bound batch. Histograms must be
  /// sized to the fills; `events_selected` and `ops` accumulate.
  Status ExecuteBatch(const BatchBindings& bindings, int64_t num_rows,
                      VexprScratch* scratch,
                      std::vector<Histogram1D>* histograms,
                      int64_t* events_selected, uint64_t* ops) const;

 private:
  CompiledEventQuery();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Compiles a single expression for batch evaluation over the events of a
/// bound batch — the direct cross-check surface used by the randomized
/// compiler tests and the expression micro-benchmarks.
class CompiledExprKernel {
 public:
  static Result<CompiledExprKernel> Compile(ExprPtr expr);

  /// Evaluates the expression once per row in [0, num_rows), exactly like
  /// calling Expr::Eval per row with a fresh EvalContext (all iterators
  /// initially bound to element 0). `ops` accumulates element and
  /// combination visits as the interpreter would count them.
  Status Eval(const BatchBindings& bindings, int64_t num_rows,
              VexprScratch* scratch, double* out, uint64_t* ops) const;

  /// Predicate form of Eval: writes the passing row indices (result != 0)
  /// to sel_out[0..return) in ascending order and returns their count —
  /// the fused gate+fill path the engines use for filter stages. sel_out
  /// must hold num_rows entries.
  Result<int> Gate(const BatchBindings& bindings, int64_t num_rows,
                   VexprScratch* scratch, uint32_t* sel_out,
                   uint64_t* ops) const;

  /// The compiled batch program — read access for the fused-plan stats
  /// (coverage, micro-op counts) reported by the expression benchmarks.
  /// Empty (zero instructions) when the expression fell back to the
  /// per-lane interpreter (combination searches).
  const VProgram& program() const;

 private:
  std::shared_ptr<const void> impl_;
};

}  // namespace hepq::engine

#endif  // HEPQUERY_ENGINE_VEXPR_H_
