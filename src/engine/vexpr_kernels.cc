// Strip-mined execution of fused expression plans (the simd tier).
//
// Bit-identity contract: every micro-op body below performs the exact IEEE
// operation sequence of the corresponding bytecode loop in vexpr.cc —
// same operand order, same comparison forms, same out-of-line helper
// calls — and the structure-of-arrays Cartesian kernels inline the
// operation sequences of MassOfSum2/3 and PtOfSum3 from core/physics.cc
// verbatim. This file, physics.cc, and fourvector.cc are all compiled
// with -ffp-contract=off (see the CMakeLists), so no build mode can
// contract a*b+c into an FMA here while the helper keeps separate
// rounding, or vice versa. Do not reassociate, hoist, or "simplify" any
// arithmetic in this file without re-running the three-tier agreement
// matrix in vexpr_test.
//
// The full-strip bodies run with a constant trip count (kVexprBlockLanes)
// over 64-byte-aligned temporaries, which is what lets the compiler
// auto-vectorize them; CI greps the -fopt-info-vec report for this file
// to keep that true (see HEPQ_VEC_REPORT in the top-level CMakeLists).

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "core/physics.h"
#include "engine/vexpr_fuse.h"
#include "obs/trace.h"

namespace hepq::engine {

namespace {

constexpr int kW = kVexprBlockLanes;

template <typename T>
void LoadStrip(const T* src, const uint32_t* index, int base, int w,
               double* d) {
  if (index != nullptr) {
    const uint32_t* idx = index + base;
    for (int i = 0; i < w; ++i) d[i] = static_cast<double>(src[idx[i]]);
  } else {
    const T* s = src + base;
    if (w == kW) {
      for (int i = 0; i < kW; ++i) d[i] = static_cast<double>(s[i]);
    } else {
      for (int i = 0; i < w; ++i) d[i] = static_cast<double>(s[i]);
    }
  }
}

// One column into one strip temporary: splat, then type dispatch. Shared
// by the kLoad micro-op and the staged fallback of the gather-absorbed
// kernels.
void LoadStripCol(const VColumn& col, int base, int w, double* d) {
  if (col.data == nullptr) {
    const double v = col.splat;
    for (int i = 0; i < w; ++i) d[i] = v;
    return;
  }
  switch (col.type) {
    case TypeId::kFloat32:
      LoadStrip(static_cast<const float*>(col.data), col.index, base, w, d);
      break;
    case TypeId::kFloat64:
      LoadStrip(static_cast<const double*>(col.data), col.index, base, w, d);
      break;
    case TypeId::kInt32:
      LoadStrip(static_cast<const int32_t*>(col.data), col.index, base, w, d);
      break;
    case TypeId::kInt64:
      LoadStrip(static_cast<const int64_t*>(col.data), col.index, base, w, d);
      break;
    case TypeId::kBool:
      LoadStrip(static_cast<const uint8_t*>(col.data), col.index, base, w, d);
      break;
    default:
      for (int i = 0; i < w; ++i) d[i] = 0.0;
      break;
  }
}

// Inline replicas of the per-lane core/physics helpers, copied operation
// for operation from physics.cc (this TU and that one are both compiled
// with -ffp-contract=off, so they round identically). Replicating them
// here removes an out-of-line call per lane from the strip loops; the
// three-tier agreement matrix in vexpr_test pins them to the originals.
inline double DeltaPhiLane(double phi1, double phi2) {
  double d = phi1 - phi2;
  if (!std::isfinite(d)) return std::numeric_limits<double>::quiet_NaN();
  while (d > M_PI) d -= 2.0 * M_PI;
  while (d <= -M_PI) d += 2.0 * M_PI;
  return d;
}

inline double DeltaRLane(double eta1, double phi1, double eta2, double phi2) {
  const double deta = eta1 - eta2;
  const double dphi = DeltaPhiLane(phi1, phi2);
  return std::sqrt(deta * deta + dphi * dphi);
}

inline double TransverseMassLane(double pt1, double phi1, double pt2,
                                 double phi2) {
  const double arg =
      2.0 * pt1 * pt2 * (1.0 - std::cos(DeltaPhiLane(phi1, phi2)));
  return arg > 0.0 ? std::sqrt(arg) : 0.0;
}

// A particle's four momentum components viewed structure-of-arrays for
// the gather-absorbed kernels: all four slots must be raw double columns
// sharing one index vector (the shape the combination-frame drivers
// bind). Any other shape falls back to staged strips.
struct SoAView {
  const double* c[4];
  const uint32_t* idx;
};

bool SoAParticle(const VColumn* cols, const uint16_t* slots, SoAView* v) {
  v->idx = cols[slots[0]].index;
  for (int k = 0; k < 4; ++k) {
    const VColumn& col = cols[slots[k]];
    if (col.type != TypeId::kFloat64 || col.data == nullptr ||
        col.index != v->idx) {
      return false;
    }
    v->c[k] = static_cast<const double*>(col.data);
  }
  return true;
}

}  // namespace

// Emits the loop body twice: once with the constant trip count kW (the
// full-strip fast path the vectorizer unrolls into straight SIMD) and
// once with the runtime bound w (the final partial strip). Both execute
// the identical per-lane expression, so path choice cannot change bits.
#define HEPQ_FUSED_LANES(body)                    \
  do {                                            \
    if (w == kW) {                                \
      for (int i = 0; i < kW; ++i) { body; }      \
    } else {                                      \
      for (int i = 0; i < w; ++i) { body; }       \
    }                                             \
  } while (0)

void VFusedPlan::ExecStrip(const VColumn* cols, int base, int w,
                           double* t) const {
  const uint16_t* const pool = args_.data();
  const double* p[12];
  for (const MInstr& m : mops_) {
    double* const d = t + m.dst * kW;
    const uint16_t* ia = pool + m.first_arg;
    // Gather-absorbed ops carry input slot ids in the args pool, not strip
    // temp ids — their operands must not be resolved against the block.
    const bool slot_args = m.op >= MOp::kMassOfSum2G;
    const double* const a =
        !slot_args && m.num_args > 0 ? t + ia[0] * kW : nullptr;
    const double* const b =
        !slot_args && m.num_args > 1 ? t + ia[1] * kW : nullptr;
    const double* const c =
        !slot_args && m.num_args > 2 ? t + ia[2] * kW : nullptr;
    switch (m.op) {
      case MOp::kSplat: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = v);
        break;
      }
      case MOp::kLoad:
        LoadStripCol(cols[m.aux], base, w, d);
        break;
      case MOp::kAbs:
        HEPQ_FUSED_LANES(d[i] = std::abs(a[i]));
        break;
      case MOp::kSqrt:
        HEPQ_FUSED_LANES(d[i] = std::sqrt(a[i]));
        break;
      case MOp::kNot:
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 ? 0.0 : 1.0);
        break;
      case MOp::kAdd:
        HEPQ_FUSED_LANES(d[i] = a[i] + b[i]);
        break;
      case MOp::kSub:
        HEPQ_FUSED_LANES(d[i] = a[i] - b[i]);
        break;
      case MOp::kMul:
        HEPQ_FUSED_LANES(d[i] = a[i] * b[i]);
        break;
      case MOp::kDiv:
        HEPQ_FUSED_LANES(d[i] = a[i] / b[i]);
        break;
      case MOp::kLt:
        HEPQ_FUSED_LANES(d[i] = a[i] < b[i] ? 1.0 : 0.0);
        break;
      case MOp::kLe:
        HEPQ_FUSED_LANES(d[i] = a[i] <= b[i] ? 1.0 : 0.0);
        break;
      case MOp::kGt:
        HEPQ_FUSED_LANES(d[i] = a[i] > b[i] ? 1.0 : 0.0);
        break;
      case MOp::kGe:
        HEPQ_FUSED_LANES(d[i] = a[i] >= b[i] ? 1.0 : 0.0);
        break;
      case MOp::kEq:
        HEPQ_FUSED_LANES(d[i] = a[i] == b[i] ? 1.0 : 0.0);
        break;
      case MOp::kNe:
        HEPQ_FUSED_LANES(d[i] = a[i] != b[i] ? 1.0 : 0.0);
        break;
      case MOp::kAnd:
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 && b[i] != 0.0 ? 1.0 : 0.0);
        break;
      case MOp::kOr:
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 || b[i] != 0.0 ? 1.0 : 0.0);
        break;
      case MOp::kMin2:
        HEPQ_FUSED_LANES(d[i] = std::min(a[i], b[i]));
        break;
      case MOp::kMax2:
        HEPQ_FUSED_LANES(d[i] = std::max(a[i], b[i]));
        break;
      case MOp::kAddImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] + v);
        break;
      }
      case MOp::kSubImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] - v);
        break;
      }
      case MOp::kRsubImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = v - a[i]);
        break;
      }
      case MOp::kMulImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] * v);
        break;
      }
      case MOp::kDivImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] / v);
        break;
      }
      case MOp::kRdivImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = v / a[i]);
        break;
      }
      case MOp::kLtImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] < v ? 1.0 : 0.0);
        break;
      }
      case MOp::kLeImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] <= v ? 1.0 : 0.0);
        break;
      }
      case MOp::kGtImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] > v ? 1.0 : 0.0);
        break;
      }
      case MOp::kGeImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] >= v ? 1.0 : 0.0);
        break;
      }
      case MOp::kEqImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] == v ? 1.0 : 0.0);
        break;
      }
      case MOp::kNeImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] != v ? 1.0 : 0.0);
        break;
      }
      case MOp::kAndLt:
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 && b[i] < c[i] ? 1.0 : 0.0);
        break;
      case MOp::kAndLe:
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 && b[i] <= c[i] ? 1.0 : 0.0);
        break;
      case MOp::kAndGt:
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 && b[i] > c[i] ? 1.0 : 0.0);
        break;
      case MOp::kAndGe:
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 && b[i] >= c[i] ? 1.0 : 0.0);
        break;
      case MOp::kOrLt:
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 || b[i] < c[i] ? 1.0 : 0.0);
        break;
      case MOp::kOrLe:
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 || b[i] <= c[i] ? 1.0 : 0.0);
        break;
      case MOp::kOrGt:
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 || b[i] > c[i] ? 1.0 : 0.0);
        break;
      case MOp::kOrGe:
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 || b[i] >= c[i] ? 1.0 : 0.0);
        break;
      case MOp::kAndLtImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 && b[i] < v ? 1.0 : 0.0);
        break;
      }
      case MOp::kAndLeImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 && b[i] <= v ? 1.0 : 0.0);
        break;
      }
      case MOp::kAndGtImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 && b[i] > v ? 1.0 : 0.0);
        break;
      }
      case MOp::kAndGeImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 && b[i] >= v ? 1.0 : 0.0);
        break;
      }
      case MOp::kOrLtImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 || b[i] < v ? 1.0 : 0.0);
        break;
      }
      case MOp::kOrLeImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 || b[i] <= v ? 1.0 : 0.0);
        break;
      }
      case MOp::kOrGtImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 || b[i] > v ? 1.0 : 0.0);
        break;
      }
      case MOp::kOrGeImm: {
        const double v = imms_[m.aux];
        HEPQ_FUSED_LANES(d[i] = a[i] != 0.0 || b[i] >= v ? 1.0 : 0.0);
        break;
      }
      // Per-lane helper bodies: data-dependent control flow (angle
      // wrapping, mass clamping) keeps these scalar, but the inline Lane
      // replicas above save an out-of-line call per lane and their inputs
      // are already L1-hot in the strip.
      case MOp::kDeltaPhi:
        for (int i = 0; i < w; ++i) d[i] = DeltaPhiLane(a[i], b[i]);
        break;
      case MOp::kDeltaR:
        for (int i = 0; i < w; ++i) {
          d[i] = DeltaRLane(a[i], b[i], c[i], (t + ia[3] * kW)[i]);
        }
        break;
      case MOp::kTransverseMass:
        for (int i = 0; i < w; ++i) {
          d[i] = TransverseMassLane(a[i], b[i], c[i], (t + ia[3] * kW)[i]);
        }
        break;
      case MOp::kInvMass2:
        for (int k = 0; k < 8; ++k) p[k] = t + ia[k] * kW;
        for (int i = 0; i < w; ++i) {
          d[i] = InvariantMass2({p[0][i], p[1][i], p[2][i], p[3][i]},
                                {p[4][i], p[5][i], p[6][i], p[7][i]});
        }
        break;
      case MOp::kInvMass3:
        for (int k = 0; k < 12; ++k) p[k] = t + ia[k] * kW;
        for (int i = 0; i < w; ++i) {
          d[i] = InvariantMass3({p[0][i], p[1][i], p[2][i], p[3][i]},
                                {p[4][i], p[5][i], p[6][i], p[7][i]},
                                {p[8][i], p[9][i], p[10][i], p[11][i]});
        }
        break;
      case MOp::kSumPt3:
        for (int k = 0; k < 12; ++k) p[k] = t + ia[k] * kW;
        for (int i = 0; i < w; ++i) {
          d[i] = AddPtEtaPhiM3({p[0][i], p[1][i], p[2][i], p[3][i]},
                               {p[4][i], p[5][i], p[6][i], p[7][i]},
                               {p[8][i], p[9][i], p[10][i], p[11][i]})
                     .pt;
        }
        break;
      // Structure-of-arrays Cartesian kernels. Args are (px, py, pz, e)
      // per particle; the bodies repeat PxPyPzE::operator+ / Mass() / Pt()
      // from core/fourvector.h operation for operation (componentwise
      // left-associated sums, m2 = e*e - (px*px + py*py + pz*pz), the
      // m2 > 0 clamp before sqrt) so the inlined, vectorized form rounds
      // identically to the out-of-line helper the other tiers call.
      case MOp::kMassOfSum2:
        for (int k = 0; k < 8; ++k) p[k] = t + ia[k] * kW;
        HEPQ_FUSED_LANES({
          const double px = p[0][i] + p[4][i];
          const double py = p[1][i] + p[5][i];
          const double pz = p[2][i] + p[6][i];
          const double e = p[3][i] + p[7][i];
          const double m2 = e * e - (px * px + py * py + pz * pz);
          d[i] = m2 > 0.0 ? std::sqrt(m2) : 0.0;
        });
        break;
      case MOp::kMassOfSum3:
        for (int k = 0; k < 12; ++k) p[k] = t + ia[k] * kW;
        HEPQ_FUSED_LANES({
          const double px = (p[0][i] + p[4][i]) + p[8][i];
          const double py = (p[1][i] + p[5][i]) + p[9][i];
          const double pz = (p[2][i] + p[6][i]) + p[10][i];
          const double e = (p[3][i] + p[7][i]) + p[11][i];
          const double m2 = e * e - (px * px + py * py + pz * pz);
          d[i] = m2 > 0.0 ? std::sqrt(m2) : 0.0;
        });
        break;
      case MOp::kPtOfSum3:
        for (int k = 0; k < 12; ++k) p[k] = t + ia[k] * kW;
        // std::hypot is the exact call Pt() makes; it stays a scalar libm
        // call, but the component sums above it still vectorize.
        for (int i = 0; i < w; ++i) {
          const double px = (p[0][i] + p[4][i]) + p[8][i];
          const double py = (p[1][i] + p[5][i]) + p[9][i];
          d[i] = std::hypot(px, py);
        }
        break;
      // Gather-absorbed forms: ia[] holds input slot ids. Fast path when
      // every particle binds four raw double columns sharing one index
      // vector — then each lane reads the components straight from the
      // source columns (one gathered load each) instead of the kernel
      // first filling 8/12 staging strips. The arithmetic is the staged
      // body verbatim, so both paths round identically; any other column
      // shape (splats, float32, mixed indices) stages locally and runs
      // the same body.
      case MOp::kMassOfSum2G: {
        SoAView v1, v2;
        if (SoAParticle(cols, ia, &v1) && SoAParticle(cols, ia + 4, &v2)) {
          for (int i = 0; i < w; ++i) {
            const uint32_t u = static_cast<uint32_t>(base + i);
            const uint32_t l1 = v1.idx != nullptr ? v1.idx[u] : u;
            const uint32_t l2 = v2.idx != nullptr ? v2.idx[u] : u;
            const double px = v1.c[0][l1] + v2.c[0][l2];
            const double py = v1.c[1][l1] + v2.c[1][l2];
            const double pz = v1.c[2][l1] + v2.c[2][l2];
            const double e = v1.c[3][l1] + v2.c[3][l2];
            const double m2 = e * e - (px * px + py * py + pz * pz);
            d[i] = m2 > 0.0 ? std::sqrt(m2) : 0.0;
          }
          break;
        }
        alignas(64) double stage[8 * kW];
        for (int k = 0; k < 8; ++k) {
          p[k] = stage + k * kW;
          LoadStripCol(cols[ia[k]], base, w, stage + k * kW);
        }
        HEPQ_FUSED_LANES({
          const double px = p[0][i] + p[4][i];
          const double py = p[1][i] + p[5][i];
          const double pz = p[2][i] + p[6][i];
          const double e = p[3][i] + p[7][i];
          const double m2 = e * e - (px * px + py * py + pz * pz);
          d[i] = m2 > 0.0 ? std::sqrt(m2) : 0.0;
        });
        break;
      }
      case MOp::kMassOfSum3G: {
        SoAView v1, v2, v3;
        if (SoAParticle(cols, ia, &v1) && SoAParticle(cols, ia + 4, &v2) &&
            SoAParticle(cols, ia + 8, &v3)) {
          for (int i = 0; i < w; ++i) {
            const uint32_t u = static_cast<uint32_t>(base + i);
            const uint32_t l1 = v1.idx != nullptr ? v1.idx[u] : u;
            const uint32_t l2 = v2.idx != nullptr ? v2.idx[u] : u;
            const uint32_t l3 = v3.idx != nullptr ? v3.idx[u] : u;
            const double px = (v1.c[0][l1] + v2.c[0][l2]) + v3.c[0][l3];
            const double py = (v1.c[1][l1] + v2.c[1][l2]) + v3.c[1][l3];
            const double pz = (v1.c[2][l1] + v2.c[2][l2]) + v3.c[2][l3];
            const double e = (v1.c[3][l1] + v2.c[3][l2]) + v3.c[3][l3];
            const double m2 = e * e - (px * px + py * py + pz * pz);
            d[i] = m2 > 0.0 ? std::sqrt(m2) : 0.0;
          }
          break;
        }
        alignas(64) double stage[12 * kW];
        for (int k = 0; k < 12; ++k) {
          p[k] = stage + k * kW;
          LoadStripCol(cols[ia[k]], base, w, stage + k * kW);
        }
        HEPQ_FUSED_LANES({
          const double px = (p[0][i] + p[4][i]) + p[8][i];
          const double py = (p[1][i] + p[5][i]) + p[9][i];
          const double pz = (p[2][i] + p[6][i]) + p[10][i];
          const double e = (p[3][i] + p[7][i]) + p[11][i];
          const double m2 = e * e - (px * px + py * py + pz * pz);
          d[i] = m2 > 0.0 ? std::sqrt(m2) : 0.0;
        });
        break;
      }
      case MOp::kPtOfSum3G: {
        SoAView v1, v2, v3;
        if (SoAParticle(cols, ia, &v1) && SoAParticle(cols, ia + 4, &v2) &&
            SoAParticle(cols, ia + 8, &v3)) {
          for (int i = 0; i < w; ++i) {
            const uint32_t u = static_cast<uint32_t>(base + i);
            const uint32_t l1 = v1.idx != nullptr ? v1.idx[u] : u;
            const uint32_t l2 = v2.idx != nullptr ? v2.idx[u] : u;
            const uint32_t l3 = v3.idx != nullptr ? v3.idx[u] : u;
            const double px = (v1.c[0][l1] + v2.c[0][l2]) + v3.c[0][l3];
            const double py = (v1.c[1][l1] + v2.c[1][l2]) + v3.c[1][l3];
            d[i] = std::hypot(px, py);
          }
          break;
        }
        alignas(64) double stage[12 * kW];
        for (int k = 0; k < 12; ++k) {
          p[k] = stage + k * kW;
          LoadStripCol(cols[ia[k]], base, w, stage + k * kW);
        }
        for (int i = 0; i < w; ++i) {
          const double px = (p[0][i] + p[4][i]) + p[8][i];
          const double py = (p[1][i] + p[5][i]) + p[9][i];
          d[i] = std::hypot(px, py);
        }
        break;
      }
    }
  }
}

#undef HEPQ_FUSED_LANES

void VFusedPlan::Run(const VColumn* cols, int n, VScratch* scratch,
                     double* out) const {
  if (n <= 0) return;
  const bool traced = obs::TracingActive();
  const int64_t t0 = traced ? obs::NowNs() : 0;
  double* const t = scratch->Block(num_temps_);
  const double* const res = t + result_temp_ * kW;
  for (int base = 0; base < n; base += kW) {
    const int w = std::min(kW, n - base);
    ExecStrip(cols, base, w, t);
    std::memcpy(out + base, res, static_cast<size_t>(w) * sizeof(double));
  }
  if (traced) {
    const uint64_t lanes = static_cast<uint64_t>(n);
    obs::CountStage("vops_retired", obs::Stage::kVexprKernel,
                    obs::NowNs() - t0,
                    static_cast<uint64_t>(num_source_ops_) * lanes);
    obs::CountStage(
        "vops_fused", obs::Stage::kVexprKernel, 0,
        static_cast<uint64_t>(num_source_ops_ - num_micro_ops()) * lanes);
  }
}

int VFusedPlan::RunGate(const VColumn* cols, int n, VScratch* scratch,
                        bool negate, uint32_t* sel_out) const {
  if (n <= 0) return 0;
  const bool traced = obs::TracingActive();
  const int64_t t0 = traced ? obs::NowNs() : 0;
  double* const t = scratch->Block(num_temps_);
  const double* const res = t + result_temp_ * kW;
  int count = 0;
  for (int base = 0; base < n; base += kW) {
    const int w = std::min(kW, n - base);
    ExecStrip(cols, base, w, t);
    // Per-strip compaction in ascending lane order — the selection the
    // bytecode fallback (Run + compare pass) produces, minus the 0/1
    // value-vector round trip.
    for (int i = 0; i < w; ++i) {
      if ((res[i] != 0.0) != negate) {
        sel_out[count++] = static_cast<uint32_t>(base + i);
      }
    }
  }
  if (traced) {
    const uint64_t lanes = static_cast<uint64_t>(n);
    obs::CountStage("vops_retired", obs::Stage::kVexprKernel,
                    obs::NowNs() - t0,
                    static_cast<uint64_t>(num_source_ops_) * lanes);
    obs::CountStage(
        "vops_fused", obs::Stage::kVexprKernel, 0,
        static_cast<uint64_t>(num_source_ops_ - num_micro_ops()) * lanes);
  }
  return count;
}

}  // namespace hepq::engine
