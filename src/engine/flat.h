#ifndef HEPQUERY_ENGINE_FLAT_H_
#define HEPQUERY_ENGINE_FLAT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/histogram.h"
#include "engine/expr.h"
#include "fileio/reader.h"

namespace hepq::engine {

class VProgramBuilder;

/// A fully materialized flat (NF1) batch: named all-double columns. This is
/// what CROSS JOIN UNNEST produces in the Presto/Athena plan shape — every
/// event-level attribute is duplicated per emitted particle row, which is
/// exactly the cost the paper attributes to that shape.
struct FlatBatch {
  std::vector<std::string> names;
  std::vector<std::vector<double>> columns;
  size_t num_rows = 0;

  int ColumnIndex(const std::string& name) const;
  void Clear();
  uint64_t NumCells() const { return num_rows * columns.size(); }
};

class FlatExpr;

/// Structural reflection of one flat-expression node, consumed by the
/// scan-predicate extraction (anything it cannot use reports kOther).
/// Child pointers stay owned by the reflected node.
struct FlatShape {
  enum class Kind { kLit, kCol, kBin, kOther };
  Kind kind = Kind::kOther;
  double lit = 0.0;
  std::string col;  // kCol: the referenced column name
  BinOp bin_op = BinOp::kAdd;
  const FlatExpr* lhs = nullptr;  // kBin
  const FlatExpr* rhs = nullptr;
};

/// Expression over one flat row.
class FlatExpr {
 public:
  virtual ~FlatExpr() = default;
  virtual double Eval(const FlatBatch& batch, size_t row) const = 0;
  bool EvalBool(const FlatBatch& batch, size_t row) const {
    return Eval(batch, row) != 0.0;
  }
  /// Resolves column references against the batch layout; called once per
  /// pipeline preparation.
  virtual Status Resolve(const FlatBatch& batch) = 0;
  /// Lowers the (resolved) expression into `builder`, returning the result
  /// register. Column references load the flat column as an input slot, so
  /// the compiled program evaluates a whole chunk per instruction.
  virtual Result<int> Lower(VProgramBuilder* builder) const = 0;
  /// Reflects the node for predicate extraction; defaults to opaque.
  virtual FlatShape Shape() const { return FlatShape{}; }
};

using FlatExprPtr = std::shared_ptr<FlatExpr>;

FlatExprPtr FlatLit(double value);
/// Named column reference; resolved at pipeline preparation.
FlatExprPtr FlatCol(std::string name);
FlatExprPtr FlatBin(BinOp op, FlatExprPtr lhs, FlatExprPtr rhs);
FlatExprPtr FlatCall(Fn fn, std::vector<FlatExprPtr> args);

inline FlatExprPtr FlatLt(FlatExprPtr a, FlatExprPtr b) {
  return FlatBin(BinOp::kLt, std::move(a), std::move(b));
}
inline FlatExprPtr FlatGt(FlatExprPtr a, FlatExprPtr b) {
  return FlatBin(BinOp::kGt, std::move(a), std::move(b));
}
inline FlatExprPtr FlatGe(FlatExprPtr a, FlatExprPtr b) {
  return FlatBin(BinOp::kGe, std::move(a), std::move(b));
}
inline FlatExprPtr FlatAnd(FlatExprPtr a, FlatExprPtr b) {
  return FlatBin(BinOp::kAnd, std::move(a), std::move(b));
}
inline FlatExprPtr FlatAbs(FlatExprPtr a) {
  return FlatCall(Fn::kAbs, {std::move(a)});
}

/// One UNNEST participant in the FROM clause. Each member `m` becomes the
/// flat column "<alias>.<m>"; WITH ORDINALITY adds "<alias>.idx".
struct UnnestList {
  std::string column;                // e.g. "Jet"
  std::vector<std::string> members;  // e.g. {"pt", "eta"}
  std::string alias;                 // e.g. "j1"
};

/// Grouped aggregation functions over the flat rows, keyed by event.
enum class FlatAggKind {
  kCount,   // COUNT(*)
  kSum,     // SUM(input)
  kMin,     // MIN(input)
  kMax,     // MAX(input)
  kFirst,   // ARBITRARY(input): event-constant columns carried as keys
  kMinBy,   // MIN_BY(input, key)
};

struct FlatAggSpec {
  FlatAggKind kind = FlatAggKind::kCount;
  std::string input;   // input column name (unused for kCount)
  std::string key;     // ordering column for kMinBy
  std::string output;  // output column name
};

struct FlatQueryResult {
  std::vector<Histogram1D> histograms;
  int64_t events_processed = 0;
  /// Flat rows materialized by the unnest (the plan-shape cost driver and
  /// the Table 2 ops proxy for this engine).
  uint64_t rows_materialized = 0;
  uint64_t cells_materialized = 0;
  int64_t groups = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  ScanStats scan;
};

/// The Presto/Athena plan shape (Listing 4b of the paper): CROSS JOIN
/// UNNEST flattens the particle arrays (duplicating event columns), WHERE
/// filters the flat rows, and GROUP BY event undoes the flattening for
/// per-event predicates (HAVING) before the final histogram aggregation.
///
/// Pipeline steps run in registration order and see columns added by
/// earlier projections. If any aggregate is registered, HAVING and
/// histogram fills run over the per-event aggregate output; otherwise they
/// run directly over the flat rows (Q2/Q3-style queries).
class FlatPipeline {
 public:
  explicit FlatPipeline(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// FROM events CROSS JOIN UNNEST(...) [CROSS JOIN UNNEST(...) ...].
  /// With no unnest list, rows are the events themselves (Q1).
  void AddUnnest(UnnestList list);
  /// Event-level scalar carried through the flattening ("MET.pt").
  void AddKeepScalar(const std::string& leaf_path);
  /// WHERE predicate over flat rows (and previously projected columns).
  void AddFilter(FlatExprPtr predicate);
  /// Computed column over flat rows.
  void AddProject(std::string name, FlatExprPtr value);
  /// GROUP BY event aggregate.
  void AddAggregate(FlatAggSpec spec);
  /// HAVING predicate over the aggregate output.
  void AddHaving(FlatExprPtr predicate);
  /// Final histogram: filled per aggregate-output row if aggregates exist,
  /// else per surviving flat row.
  int AddHistogram(HistogramSpec spec, FlatExprPtr value);

  /// Selects between the vectorized bytecode path (the default) and the
  /// per-row tree-walking interpreter. In compiled mode filters narrow a
  /// selection vector instead of physically compacting every materialized
  /// column; results are bit-identical either way, and the interpreter is
  /// kept for the interpreted-vs-compiled ablation.
  void set_expr_exec(ExprExec exec) { expr_exec_ = exec; }
  ExprExec expr_exec() const { return expr_exec_; }

  /// Runs the pipeline over all row groups of `reader`, single-threaded
  /// but through the shared row-group runtime.
  Result<FlatQueryResult> Execute(LaqReader* reader) const;

  /// Parallel execution: scans `path` with up to `num_threads` workers,
  /// each with its own reader, scratch buffers, and per-row-group
  /// aggregation state (sound because every event's rows live in exactly
  /// one row group). Results are bit-identical to the overload above.
  Result<FlatQueryResult> Execute(const std::string& path,
                                  ReaderOptions reader_options,
                                  int num_threads) const;

  std::vector<std::string> Projection() const;

  /// Sargable residue of the WHERE/HAVING steps and the unnest structure
  /// (an event only emits flat rows when every unnest list is non-empty;
  /// strict idx-order filters raise that bound). Only conditions every
  /// output row must satisfy are extracted — see fileio/predicate.h.
  ScanPredicateSet ScanPredicates() const;

  /// EXPLAIN-style plan rendering: unnests, steps, aggregates, having,
  /// fills (expressions are shown by name only; FlatExpr has no
  /// renderer).
  std::string Explain() const;

 private:
  struct Step {
    bool is_filter = false;
    std::string name;  // projection output column
    FlatExprPtr expr;
  };
  /// Where ExecuteImpl gets readers/scratch/metadata from; defined in
  /// flat.cc (wraps either one caller-owned reader or a per-worker set).
  struct ScanSource;
  Result<FlatQueryResult> ExecuteImpl(ScanSource* source) const;

  std::string name_;
  std::vector<UnnestList> unnests_;
  std::vector<std::string> keep_scalars_;
  std::vector<Step> steps_;
  std::vector<FlatAggSpec> aggregates_;
  std::vector<FlatExprPtr> having_;
  std::vector<std::pair<HistogramSpec, FlatExprPtr>> fills_;
  ExprExec expr_exec_ = ExprExec::kSimd;
};

}  // namespace hepq::engine

#endif  // HEPQUERY_ENGINE_FLAT_H_
