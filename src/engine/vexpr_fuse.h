#ifndef HEPQUERY_ENGINE_VEXPR_FUSE_H_
#define HEPQUERY_ENGINE_VEXPR_FUSE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/vexpr.h"

namespace hepq::engine {

// The fusion pass: the third expression-execution tier.
//
// A finished VProgram is a straight-line SSA instruction list (control
// flow — aggregates, combination searches, short-circuit residue — never
// reaches the VM; it lives in the drivers of vexpr_compile.cc, which are
// therefore the fusion boundaries). BuildFusedPlan regroups that list
// into superinstruction "micro-ops" executed strip-mined: the batch is
// cut into blocks of kVexprBlockLanes lanes and ALL micro-ops run over
// one block before moving to the next, with every temporary held in a
// small cacheline-aligned block buffer (VScratch::Block) that stays in
// registers/L1. Compared to the bytecode tier this removes the
// full-batch store+reload round trip each opcode pays, and shrinks the
// instruction stream via three rewrites:
//
//   1. load fusion — kConst/kLoad instructions stop materializing
//      full-batch register buffers; constants become immediates and slot
//      loads gather directly into the strip block (contiguous fast path
//      when the VColumn has no index vector, gather path otherwise —
//      the selection-density dichotomy of the drivers);
//   2. immediate forms — binary ops with one folded-constant operand
//      become reg-imm micro-ops (kGtImm, kMulImm, ...), keeping the
//      operand on the side it occupied so the IEEE operation sequence
//      is unchanged; NaN immediates are never folded (NaN payload
//      propagation is operand-order-sensitive on x86);
//   3. compare+mask fusion — an And/Or whose comparison operand has no
//      other consumer absorbs it (kAndGtImm, kOrLt, ...), collapsing
//      the gate trees of event cuts into one micro-op per level;
//   4. SoA gather absorption — a Cartesian kernel (kMassOfSum2/3,
//      kPtOfSum3) whose every operand is a single-use load absorbs the
//      loads (kMassOfSum3G, ...): the kernel reads the component columns
//      directly through their per-particle index vectors, eliminating
//      the 8/12 staging strips a combination frame would otherwise fill
//      before every mass evaluation.
//
// The Cartesian combination kernels (kMassOfSum2/3, kPtOfSum3) become
// structure-of-arrays loops over the strip whose inline math repeats the
// core/physics helper sequences operation for operation; vexpr_kernels.cc
// is compiled with -ffp-contract=off (as are physics.cc/fourvector.cc)
// so no build can contract them differently than the helpers. Everything
// else about bit-identity is structural: same ops, same operand order,
// same per-lane evaluation order, no reassociation — reductions never
// enter the VM, so the fused tier introduces no reduction-order hazard.

/// Lanes per strip block. 64 doubles = 8 cachelines per temporary; a
/// typical fused program holds 10-30 live temporaries, so the whole
/// working set stays L1-resident while each micro-op's inner loop is a
/// constant-trip-count, auto-vectorizable sweep (checked in CI via
/// -fopt-info-vec on vexpr_kernels.cc).
inline constexpr int kVexprBlockLanes = 64;

/// Fused micro-op kinds. Operand order is load-bearing: reg-reg forms
/// mirror the bytecode loops exactly, imm forms keep the immediate on
/// the side the constant occupied (R* = immediate on the left).
enum class MOp : uint8_t {
  kSplat,  // d = imm (constant the peephole could not absorb)
  kLoad,   // d = convert(cols[aux]) — dense or gather, type-dispatched
  // unary
  kAbs,
  kSqrt,
  kNot,
  // binary reg-reg
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
  kMin2,
  kMax2,
  // binary reg-imm
  kAddImm,
  kSubImm,
  kRsubImm,  // d = imm - a
  kMulImm,
  kDivImm,   // d = a / imm
  kRdivImm,  // d = imm / a
  kLtImm,
  kLeImm,
  kGtImm,
  kGeImm,
  kEqImm,
  kNeImm,
  // fused compare+mask: d = mask(a) &/| (b CMP c) — gate-tree levels
  kAndLt,
  kAndLe,
  kAndGt,
  kAndGe,
  kOrLt,
  kOrLe,
  kOrGt,
  kOrGe,
  // fused compare+mask with immediate comparand: d = mask(a) &/| (b CMP imm)
  kAndLtImm,
  kAndLeImm,
  kAndGtImm,
  kAndGeImm,
  kOrLtImm,
  kOrLeImm,
  kOrGtImm,
  kOrGeImm,
  // per-lane calls into core/physics (data-dependent control flow keeps
  // these scalar; they fuse into the strip, not into vector lanes)
  kDeltaPhi,
  kDeltaR,
  kInvMass2,
  kInvMass3,
  kSumPt3,
  kTransverseMass,
  // structure-of-arrays Cartesian kernels: inline PxPyPzE component
  // sums + mass/pt, vectorizable (pt keeps the scalar hypot call)
  kMassOfSum2,
  kMassOfSum3,
  kPtOfSum3,
  // gather-absorbed SoA kernels: every operand was a single-use kLoad, so
  // the args are input SLOT ids (not temps) and the kernel reads the
  // component columns directly through their index vectors — no staging
  // strip per component. Values are identical to the staged forms; only
  // the data path changes.
  kMassOfSum2G,
  kMassOfSum3G,
  kPtOfSum3G,
};

const char* MOpName(MOp op);

struct MInstr {
  MOp op = MOp::kSplat;
  uint8_t num_args = 0;    // operand count in VFusedPlan's args pool
  uint16_t dst = 0;        // strip temp id
  uint16_t aux = 0;        // kLoad: input slot; imm forms: immediate index
  uint16_t first_arg = 0;  // offset into VFusedPlan's args pool
};

/// The fused execution plan of one VProgram: micro-op list, immediate
/// pool, and strip-temp layout. Built once at VProgram::Finish, immutable
/// and thread-safe afterwards (workers bring their own VScratch blocks).
class VFusedPlan {
 public:
  int num_temps() const { return num_temps_; }
  int num_micro_ops() const { return static_cast<int>(mops_.size()); }
  /// Source VOps the plan covers (every instruction of the VProgram).
  int num_source_ops() const { return num_source_ops_; }
  /// Fraction of source VOps absorbed into superinstructions — the
  /// fused-kernel coverage surfaced in micro_kernels and RunReports.
  double fused_coverage() const;

  /// Strip-mined execution over lanes [0, n); out[0..n) gets the result.
  void Run(const VColumn* cols, int n, VScratch* scratch, double* out) const;

  /// Fused gate: evaluates and compacts in one pass, writing passing lane
  /// indices (result != 0, xor negate) to sel_out; returns their count.
  int RunGate(const VColumn* cols, int n, VScratch* scratch, bool negate,
              uint32_t* sel_out) const;

  /// Micro-op disassembly for the fusion-pass unit tests.
  std::string ToString() const;

 private:
  friend std::shared_ptr<const VFusedPlan> BuildFusedPlan(
      const VProgram& program);
  /// Executes every micro-op over lanes [base, base+w) of the bound
  /// columns into the strip block `t` (vexpr_kernels.cc).
  void ExecStrip(const VColumn* cols, int base, int w, double* t) const;

  std::vector<MInstr> mops_;
  std::vector<uint16_t> args_;  // temp ids, indexed by MInstr::first_arg
  std::vector<double> imms_;
  int num_temps_ = 0;
  uint16_t result_temp_ = 0;
  int num_source_ops_ = 0;
};

/// Runs the fusion pass over a finished program. Never fails: any shape
/// the peepholes do not recognize stays a generic micro-op.
std::shared_ptr<const VFusedPlan> BuildFusedPlan(const VProgram& program);

}  // namespace hepq::engine

#endif  // HEPQUERY_ENGINE_VEXPR_FUSE_H_
