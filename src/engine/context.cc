#include "engine/context.h"

namespace hepq::engine {

namespace {

Result<MemberAccessor> AccessorFor(const Array& values) {
  MemberAccessor acc;
  acc.type = values.type()->id();
  switch (acc.type) {
    case TypeId::kFloat32:
      acc.data = static_cast<const Float32Array&>(values).raw();
      break;
    case TypeId::kFloat64:
      acc.data = static_cast<const Float64Array&>(values).raw();
      break;
    case TypeId::kInt32:
      acc.data = static_cast<const Int32Array&>(values).raw();
      break;
    case TypeId::kInt64:
      acc.data = static_cast<const Int64Array&>(values).raw();
      break;
    case TypeId::kBool:
      acc.data = static_cast<const BoolArray&>(values).raw();
      break;
    default:
      // Declared here with a Status so MemberAccessor::Get never sees an
      // unsupported type at evaluation time.
      return Status::TypeError(std::string("accessor requires a primitive "
                                           "array, got ") +
                               TypeIdName(acc.type));
  }
  return acc;
}

}  // namespace

Status BatchBindings::BindUnion(const RecordBatch& batch,
                                const ListDecl& decl) {
  const size_t num_members = decl.members.size();
  struct BoundSource {
    const ListArray* list;
    std::vector<MemberAccessor> members;  // one per mapped member
    bool has_tag;
    double tag;
  };
  std::vector<BoundSource> sources;
  for (const UnionSource& source : decl.union_sources) {
    ArrayPtr column = batch.ColumnByName(source.column);
    if (column == nullptr || column->type()->id() != TypeId::kList) {
      return Status::KeyError("union source '" + source.column +
                              "' is not a list column in the batch");
    }
    const auto& list = static_cast<const ListArray&>(*column);
    const Array& child = *list.child();
    if (child.type()->id() != TypeId::kStruct) {
      return Status::TypeError("union source '" + source.column +
                               "' must contain structs");
    }
    const auto& st = static_cast<const StructArray&>(child);
    BoundSource bound;
    bound.list = &list;
    bound.has_tag = source.members.size() + 1 == num_members;
    bound.tag = source.tag;
    if (!bound.has_tag && source.members.size() != num_members) {
      return Status::Invalid("union source '" + source.column +
                             "' maps the wrong number of members");
    }
    for (const std::string& member : source.members) {
      ArrayPtr m = st.ChildByName(member);
      if (m == nullptr) {
        return Status::KeyError("union source '" + source.column +
                                "' has no member '" + member + "'");
      }
      MemberAccessor acc;
      HEPQ_ASSIGN_OR_RETURN(acc, AccessorFor(*m));
      bound.members.push_back(acc);
    }
    sources.push_back(std::move(bound));
  }

  // Materialize the concatenated list: per event, all elements of source 0,
  // then source 1, etc. This copy is the real cost of the "Leptons" CTE.
  // Two passes: the offsets pass fixes every output position, so the fill
  // pass writes into exactly-sized buffers with no per-element push_back
  // (no reallocation, no capacity checks in the hot loop).
  const int64_t rows = batch.num_rows();
  std::vector<uint32_t> offsets(static_cast<size_t>(rows) + 1, 0);
  for (int64_t row = 0; row < rows; ++row) {
    uint32_t count = 0;
    for (const BoundSource& source : sources) {
      count += static_cast<uint32_t>(source.list->list_length(row));
    }
    offsets[static_cast<size_t>(row) + 1] =
        offsets[static_cast<size_t>(row)] + count;
  }
  const size_t total = offsets[static_cast<size_t>(rows)];
  std::vector<std::vector<double>> values(num_members);
  for (auto& column : values) column.resize(total);
  for (int64_t row = 0; row < rows; ++row) {
    size_t at = offsets[static_cast<size_t>(row)];
    for (const BoundSource& source : sources) {
      const uint32_t begin =
          source.list->list_offset(static_cast<int64_t>(row));
      const uint32_t end =
          begin +
          static_cast<uint32_t>(source.list->list_length(row));
      for (uint32_t i = begin; i < end; ++i, ++at) {
        for (size_t m = 0; m < source.members.size(); ++m) {
          values[m][at] = source.members[m].Get(i);
        }
        if (source.has_tag) {
          values[num_members - 1][at] = source.tag;
        }
      }
    }
  }

  ListBinding binding;
  owned_offsets_.push_back(std::move(offsets));
  binding.offsets = owned_offsets_.back().data();
  for (size_t m = 0; m < num_members; ++m) {
    owned_values_.push_back(std::move(values[m]));
    binding.members.push_back(
        MemberAccessor{TypeId::kFloat64, owned_values_.back().data()});
  }
  lists_.push_back(std::move(binding));
  return Status::OK();
}

Result<BatchBindings> BatchBindings::Bind(
    const RecordBatch& batch, const std::vector<ListDecl>& lists,
    const std::vector<ScalarDecl>& scalars) {
  BatchBindings out;
  for (const ListDecl& decl : lists) {
    if (!decl.union_sources.empty()) {
      HEPQ_RETURN_NOT_OK(out.BindUnion(batch, decl));
      continue;
    }
    ArrayPtr column = batch.ColumnByName(decl.column);
    if (column == nullptr) {
      return Status::KeyError("batch has no column '" + decl.column + "'");
    }
    if (column->type()->id() != TypeId::kList) {
      return Status::TypeError("column '" + decl.column + "' is not a list");
    }
    const auto& list = static_cast<const ListArray&>(*column);
    ListBinding binding;
    binding.offsets = list.offsets().data();
    const Array& child = *list.child();
    for (const std::string& member : decl.members) {
      const Array* values = nullptr;
      if (child.type()->id() == TypeId::kStruct) {
        const auto& st = static_cast<const StructArray&>(child);
        ArrayPtr m = st.ChildByName(member);
        if (m == nullptr) {
          return Status::KeyError("list '" + decl.column +
                                  "' has no member '" + member + "'");
        }
        values = m.get();
        MemberAccessor acc;
        HEPQ_ASSIGN_OR_RETURN(acc, AccessorFor(*values));
        binding.members.push_back(acc);
        // Keep the child array alive through the batch; accessors hold raw
        // pointers, so the caller must keep the batch alive while binding
        // is in use (enforced by the per-row-group execution loop).
      } else {
        MemberAccessor acc;
        HEPQ_ASSIGN_OR_RETURN(acc, AccessorFor(child));
        binding.members.push_back(acc);
      }
    }
    out.lists_.push_back(std::move(binding));
  }
  for (const ScalarDecl& decl : scalars) {
    const size_t dot = decl.leaf_path.find('.');
    const std::string column_name = dot == std::string::npos
                                        ? decl.leaf_path
                                        : decl.leaf_path.substr(0, dot);
    ArrayPtr column = batch.ColumnByName(column_name);
    if (column == nullptr) {
      return Status::KeyError("batch has no column '" + column_name + "'");
    }
    const Array* values = column.get();
    if (dot != std::string::npos) {
      if (column->type()->id() != TypeId::kStruct) {
        return Status::TypeError("column '" + column_name +
                                 "' is not a struct");
      }
      const auto& st = static_cast<const StructArray&>(*column);
      ArrayPtr m = st.ChildByName(decl.leaf_path.substr(dot + 1));
      if (m == nullptr) {
        return Status::KeyError("no scalar leaf '" + decl.leaf_path + "'");
      }
      values = m.get();
    }
    MemberAccessor acc;
    HEPQ_ASSIGN_OR_RETURN(acc, AccessorFor(*values));
    out.scalars_.push_back(acc);
  }
  return out;
}

}  // namespace hepq::engine
