#include "engine/flat.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <unordered_map>
#include <utility>

#include "core/physics.h"
#include "core/stopwatch.h"
#include "engine/vexpr.h"
#include "exec/exec.h"
#include "obs/trace.h"

namespace hepq::engine {

int FlatBatch::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void FlatBatch::Clear() {
  num_rows = 0;
  for (auto& column : columns) column.clear();
}

namespace {

class FlatLitExpr final : public FlatExpr {
 public:
  explicit FlatLitExpr(double v) : value_(v) {}
  double Eval(const FlatBatch&, size_t) const override { return value_; }
  Status Resolve(const FlatBatch&) override { return Status::OK(); }
  Result<int> Lower(VProgramBuilder* builder) const override {
    return builder->Const(value_);
  }
  FlatShape Shape() const override {
    FlatShape s;
    s.kind = FlatShape::Kind::kLit;
    s.lit = value_;
    return s;
  }

 private:
  double value_;
};

class FlatColExpr final : public FlatExpr {
 public:
  explicit FlatColExpr(std::string name) : name_(std::move(name)) {}
  double Eval(const FlatBatch& batch, size_t row) const override {
    return batch.columns[static_cast<size_t>(index_)][row];
  }
  Status Resolve(const FlatBatch& batch) override {
    index_ = batch.ColumnIndex(name_);
    if (index_ < 0) {
      return Status::KeyError("flat pipeline has no column '" + name_ + "'");
    }
    return Status::OK();
  }
  Result<int> Lower(VProgramBuilder* builder) const override {
    if (index_ < 0) {
      return Status::Invalid("FlatColExpr '" + name_ +
                             "' lowered before Resolve");
    }
    return builder->Load(index_);
  }
  FlatShape Shape() const override {
    FlatShape s;
    s.kind = FlatShape::Kind::kCol;
    s.col = name_;
    return s;
  }

 private:
  std::string name_;
  int index_ = -1;
};

class FlatBinExpr final : public FlatExpr {
 public:
  FlatBinExpr(BinOp op, FlatExprPtr lhs, FlatExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  double Eval(const FlatBatch& batch, size_t row) const override {
    if (op_ == BinOp::kAnd) {
      return lhs_->EvalBool(batch, row) && rhs_->EvalBool(batch, row) ? 1.0
                                                                      : 0.0;
    }
    if (op_ == BinOp::kOr) {
      return lhs_->EvalBool(batch, row) || rhs_->EvalBool(batch, row) ? 1.0
                                                                      : 0.0;
    }
    const double a = lhs_->Eval(batch, row);
    const double b = rhs_->Eval(batch, row);
    switch (op_) {
      case BinOp::kAdd:
        return a + b;
      case BinOp::kSub:
        return a - b;
      case BinOp::kMul:
        return a * b;
      case BinOp::kDiv:
        return a / b;
      case BinOp::kLt:
        return a < b ? 1.0 : 0.0;
      case BinOp::kLe:
        return a <= b ? 1.0 : 0.0;
      case BinOp::kGt:
        return a > b ? 1.0 : 0.0;
      case BinOp::kGe:
        return a >= b ? 1.0 : 0.0;
      case BinOp::kEq:
        return a == b ? 1.0 : 0.0;
      case BinOp::kNe:
        return a != b ? 1.0 : 0.0;
      default:
        return 0.0;
    }
  }
  Status Resolve(const FlatBatch& batch) override {
    HEPQ_RETURN_NOT_OK(lhs_->Resolve(batch));
    return rhs_->Resolve(batch);
  }
  Result<int> Lower(VProgramBuilder* builder) const override {
    // Flat expressions are pure, so evaluating both sides of And/Or
    // eagerly is exact — the short-circuit above is only a scalar-path
    // optimization.
    int lhs, rhs;
    HEPQ_ASSIGN_OR_RETURN(lhs, lhs_->Lower(builder));
    HEPQ_ASSIGN_OR_RETURN(rhs, rhs_->Lower(builder));
    return builder->Op(VOpFor(op_), {lhs, rhs});
  }
  FlatShape Shape() const override {
    FlatShape s;
    s.kind = FlatShape::Kind::kBin;
    s.bin_op = op_;
    s.lhs = lhs_.get();
    s.rhs = rhs_.get();
    return s;
  }

 private:
  BinOp op_;
  FlatExprPtr lhs_;
  FlatExprPtr rhs_;
};

class FlatCallExpr final : public FlatExpr {
 public:
  FlatCallExpr(Fn fn, std::vector<FlatExprPtr> args)
      : fn_(fn), args_(std::move(args)) {}
  double Eval(const FlatBatch& batch, size_t row) const override {
    double v[12];
    for (size_t i = 0; i < args_.size(); ++i) {
      v[i] = args_[i]->Eval(batch, row);
    }
    switch (fn_) {
      case Fn::kAbs:
        return std::abs(v[0]);
      case Fn::kSqrt:
        return std::sqrt(v[0]);
      case Fn::kNot:
        return v[0] != 0.0 ? 0.0 : 1.0;
      case Fn::kMin2:
        return std::min(v[0], v[1]);
      case Fn::kMax2:
        return std::max(v[0], v[1]);
      case Fn::kDeltaPhi:
        return DeltaPhi(v[0], v[1]);
      case Fn::kDeltaR:
        return DeltaR(v[0], v[1], v[2], v[3]);
      case Fn::kInvMass2:
        return InvariantMass2({v[0], v[1], v[2], v[3]},
                              {v[4], v[5], v[6], v[7]});
      case Fn::kInvMass3:
        return InvariantMass3({v[0], v[1], v[2], v[3]},
                              {v[4], v[5], v[6], v[7]},
                              {v[8], v[9], v[10], v[11]});
      case Fn::kSumPt3:
        return AddPtEtaPhiM3({v[0], v[1], v[2], v[3]},
                             {v[4], v[5], v[6], v[7]},
                             {v[8], v[9], v[10], v[11]})
            .pt;
      case Fn::kTransverseMass:
        return TransverseMass(v[0], v[1], v[2], v[3]);
    }
    return 0.0;
  }
  Status Resolve(const FlatBatch& batch) override {
    for (auto& arg : args_) HEPQ_RETURN_NOT_OK(arg->Resolve(batch));
    return Status::OK();
  }
  Result<int> Lower(VProgramBuilder* builder) const override {
    std::vector<int> regs;
    regs.reserve(args_.size());
    for (const FlatExprPtr& arg : args_) {
      int reg;
      HEPQ_ASSIGN_OR_RETURN(reg, arg->Lower(builder));
      regs.push_back(reg);
    }
    return builder->Op(VOpFor(fn_), regs);
  }

 private:
  Fn fn_;
  std::vector<FlatExprPtr> args_;
};

/// Hash aggregation state, keyed by the __event column.
class EventAggregator {
 public:
  explicit EventAggregator(const std::vector<FlatAggSpec>& specs)
      : specs_(specs) {
    state_offsets_.reserve(specs.size());
    int offset = 0;
    for (const FlatAggSpec& spec : specs) {
      state_offsets_.push_back(offset);
      offset += spec.kind == FlatAggKind::kMinBy ? 2 : 1;
    }
    state_width_ = offset;
  }

  Status Resolve(const FlatBatch& layout) {
    input_cols_.assign(specs_.size(), -1);
    key_cols_.assign(specs_.size(), -1);
    for (size_t a = 0; a < specs_.size(); ++a) {
      const FlatAggSpec& spec = specs_[a];
      if (spec.kind != FlatAggKind::kCount) {
        input_cols_[a] = layout.ColumnIndex(spec.input);
        if (input_cols_[a] < 0) {
          return Status::KeyError("aggregate input column '" + spec.input +
                                  "' not found");
        }
      }
      if (spec.kind == FlatAggKind::kMinBy) {
        key_cols_[a] = layout.ColumnIndex(spec.key);
        if (key_cols_[a] < 0) {
          return Status::KeyError("aggregate key column '" + spec.key +
                                  "' not found");
        }
      }
    }
    return Status::OK();
  }

  void Consume(const FlatBatch& batch, int event_col) {
    Consume(batch, event_col, nullptr, batch.num_rows);
  }

  /// Selection-vector form: consumes rows sel[0..n) (all rows when `sel`
  /// is null). Visiting the same surviving rows in the same ascending
  /// order as the compacting path keeps group insertion order — and hence
  /// the merged output — bit-identical.
  void Consume(const FlatBatch& batch, int event_col, const uint32_t* sel,
               size_t n) {
    const auto& event_ids =
        batch.columns[static_cast<size_t>(event_col)];
    for (size_t lane = 0; lane < n; ++lane) {
      const size_t row = sel != nullptr ? sel[lane] : lane;
      const int64_t key = static_cast<int64_t>(event_ids[row]);
      auto [it, inserted] = groups_.try_emplace(key, states_.size());
      if (inserted) {
        keys_.push_back(key);
        states_.resize(states_.size() + static_cast<size_t>(state_width_));
        InitState(&states_[it->second]);
      }
      double* state = &states_[it->second];
      for (size_t a = 0; a < specs_.size(); ++a) {
        double* s = state + state_offsets_[a];
        const FlatAggSpec& spec = specs_[a];
        const double v =
            spec.kind == FlatAggKind::kCount
                ? 1.0
                : batch.columns[static_cast<size_t>(input_cols_[a])][row];
        switch (spec.kind) {
          case FlatAggKind::kCount:
          case FlatAggKind::kSum:
            s[0] += v;
            break;
          case FlatAggKind::kMin:
            s[0] = std::min(s[0], v);
            break;
          case FlatAggKind::kMax:
            s[0] = std::max(s[0], v);
            break;
          case FlatAggKind::kFirst:
            if (std::isnan(s[0])) s[0] = v;
            break;
          case FlatAggKind::kMinBy: {
            const double k =
                batch.columns[static_cast<size_t>(key_cols_[a])][row];
            if (k < s[0]) {
              s[0] = k;
              s[1] = v;
            }
            break;
          }
        }
      }
    }
  }

  /// Emits one row per group: "__event" plus one column per aggregate.
  FlatBatch Finish() const {
    FlatBatch out;
    out.names.push_back("__event");
    for (const FlatAggSpec& spec : specs_) out.names.push_back(spec.output);
    out.columns.resize(out.names.size());
    out.num_rows = keys_.size();
    for (size_t g = 0; g < keys_.size(); ++g) {
      out.columns[0].push_back(static_cast<double>(keys_[g]));
      const double* state = &states_[g * static_cast<size_t>(state_width_)];
      for (size_t a = 0; a < specs_.size(); ++a) {
        const double* s = state + state_offsets_[a];
        const double v =
            specs_[a].kind == FlatAggKind::kMinBy ? s[1] : s[0];
        out.columns[a + 1].push_back(v);
      }
    }
    return out;
  }

  size_t num_groups() const { return keys_.size(); }

 private:
  void InitState(double* state) {
    for (size_t a = 0; a < specs_.size(); ++a) {
      double* s = state + state_offsets_[a];
      switch (specs_[a].kind) {
        case FlatAggKind::kCount:
        case FlatAggKind::kSum:
          s[0] = 0.0;
          break;
        case FlatAggKind::kMin:
          s[0] = std::numeric_limits<double>::infinity();
          break;
        case FlatAggKind::kMax:
          s[0] = -std::numeric_limits<double>::infinity();
          break;
        case FlatAggKind::kFirst:
          s[0] = std::numeric_limits<double>::quiet_NaN();
          break;
        case FlatAggKind::kMinBy:
          s[0] = std::numeric_limits<double>::infinity();
          s[1] = 0.0;
          break;
      }
    }
  }

  const std::vector<FlatAggSpec>& specs_;
  std::vector<int> state_offsets_;
  int state_width_ = 0;
  std::unordered_map<int64_t, size_t> groups_;  // key -> state offset
  std::vector<int64_t> keys_;                   // insertion order
  std::vector<double> states_;
  std::vector<int> input_cols_;
  std::vector<int> key_cols_;
};

constexpr size_t kChunkRows = 32768;

}  // namespace

FlatExprPtr FlatLit(double value) {
  return std::make_shared<FlatLitExpr>(value);
}
FlatExprPtr FlatCol(std::string name) {
  return std::make_shared<FlatColExpr>(std::move(name));
}
FlatExprPtr FlatBin(BinOp op, FlatExprPtr lhs, FlatExprPtr rhs) {
  return std::make_shared<FlatBinExpr>(op, std::move(lhs), std::move(rhs));
}
FlatExprPtr FlatCall(Fn fn, std::vector<FlatExprPtr> args) {
  return std::make_shared<FlatCallExpr>(fn, std::move(args));
}

void FlatPipeline::AddUnnest(UnnestList list) {
  unnests_.push_back(std::move(list));
}
void FlatPipeline::AddKeepScalar(const std::string& leaf_path) {
  keep_scalars_.push_back(leaf_path);
}
void FlatPipeline::AddFilter(FlatExprPtr predicate) {
  Step step;
  step.is_filter = true;
  step.expr = std::move(predicate);
  steps_.push_back(std::move(step));
}
void FlatPipeline::AddProject(std::string name, FlatExprPtr value) {
  Step step;
  step.name = std::move(name);
  step.expr = std::move(value);
  steps_.push_back(std::move(step));
}
void FlatPipeline::AddAggregate(FlatAggSpec spec) {
  aggregates_.push_back(std::move(spec));
}
void FlatPipeline::AddHaving(FlatExprPtr predicate) {
  having_.push_back(std::move(predicate));
}
int FlatPipeline::AddHistogram(HistogramSpec spec, FlatExprPtr value) {
  fills_.emplace_back(std::move(spec), std::move(value));
  return static_cast<int>(fills_.size()) - 1;
}

std::vector<std::string> FlatPipeline::Projection() const {
  std::vector<std::string> projection;
  for (const UnnestList& u : unnests_) {
    for (const std::string& member : u.members) {
      projection.push_back(u.column + "." + member);
    }
    if (u.members.empty()) projection.push_back(u.column);
  }
  for (const std::string& scalar : keep_scalars_) {
    projection.push_back(scalar);
  }
  if (projection.empty()) projection.push_back("event");
  return projection;
}

namespace {

/// Flattens nested kAnd nodes into their conjuncts.
void SplitFlatConjuncts(const FlatExpr* e,
                        std::vector<const FlatExpr*>* out) {
  const FlatShape s = e->Shape();
  if (s.kind == FlatShape::Kind::kBin && s.bin_op == BinOp::kAnd) {
    SplitFlatConjuncts(s.lhs, out);
    SplitFlatConjuncts(s.rhs, out);
    return;
  }
  out->push_back(e);
}

/// `x op lit` as a closed conservative range on x (kNe carries nothing).
bool FlatCmpToRange(BinOp op, double lit, double* lo, double* hi) {
  const double inf = std::numeric_limits<double>::infinity();
  switch (op) {
    case BinOp::kGt:
    case BinOp::kGe:
      *lo = lit;
      *hi = inf;
      return true;
    case BinOp::kLt:
    case BinOp::kLe:
      *lo = -inf;
      *hi = lit;
      return true;
    case BinOp::kEq:
      *lo = lit;
      *hi = lit;
      return true;
    default:
      return false;
  }
}

BinOp MirrorFlatCmp(BinOp op) {
  switch (op) {
    case BinOp::kLt:
      return BinOp::kGt;
    case BinOp::kLe:
      return BinOp::kGe;
    case BinOp::kGt:
      return BinOp::kLt;
    case BinOp::kGe:
      return BinOp::kLe;
    default:
      return op;
  }
}

/// Decomposes `var cmp literal` (either operand order), normalizing the
/// comparison to have the variable on the left.
const FlatExpr* MatchFlatCmpWithLit(const FlatShape& s, BinOp* op,
                                    double* lit) {
  if (s.kind != FlatShape::Kind::kBin) return nullptr;
  const FlatShape lhs = s.lhs->Shape();
  const FlatShape rhs = s.rhs->Shape();
  if (rhs.kind == FlatShape::Kind::kLit) {
    *op = s.bin_op;
    *lit = rhs.lit;
    return s.lhs;
  }
  if (lhs.kind == FlatShape::Kind::kLit) {
    *op = MirrorFlatCmp(s.bin_op);
    *lit = lhs.lit;
    return s.rhs;
  }
  return nullptr;
}

}  // namespace

ScanPredicateSet FlatPipeline::ScanPredicates() const {
  ScanPredicateSet preds;
  std::vector<const FlatExpr*> conjuncts;
  for (const Step& step : steps_) {
    if (step.is_filter) SplitFlatConjuncts(step.expr.get(), &conjuncts);
  }

  // An event emits flat rows only when every unnest list is non-empty
  // (the Cartesian product is empty otherwise); strict idx-order filters
  // between aliases of the same column ("m1.idx < m2.idx") mean those
  // aliases bind distinct elements, so the longest strict chain raises
  // the cardinality bound (Q5 pairs need 2 muons, Q6 trijets 3 jets).
  const size_t n_unnests = unnests_.size();
  std::vector<std::vector<char>> before(n_unnests,
                                        std::vector<char>(n_unnests, 0));
  auto alias_index = [&](const std::string& col) -> int {
    for (size_t u = 0; u < n_unnests; ++u) {
      if (col == unnests_[u].alias + ".idx") return static_cast<int>(u);
    }
    return -1;
  };
  for (const FlatExpr* conjunct : conjuncts) {
    const FlatShape s = conjunct->Shape();
    if (s.kind != FlatShape::Kind::kBin ||
        (s.bin_op != BinOp::kLt && s.bin_op != BinOp::kGt)) {
      continue;
    }
    const FlatShape lhs = s.lhs->Shape();
    const FlatShape rhs = s.rhs->Shape();
    if (lhs.kind != FlatShape::Kind::kCol ||
        rhs.kind != FlatShape::Kind::kCol) {
      continue;
    }
    int a = alias_index(lhs.col);
    int b = alias_index(rhs.col);
    if (a < 0 || b < 0) continue;
    if (s.bin_op == BinOp::kGt) std::swap(a, b);
    if (unnests_[static_cast<size_t>(a)].column ==
        unnests_[static_cast<size_t>(b)].column) {
      before[static_cast<size_t>(a)][static_cast<size_t>(b)] = 1;
    }
  }
  // Longest strict chain through each alias (graphs here are 2-3 nodes).
  std::vector<int> chain(n_unnests, 0);
  std::function<int(size_t)> longest = [&](size_t u) -> int {
    if (chain[u] != 0) return chain[u];
    int best = 1;
    for (size_t v = 0; v < n_unnests; ++v) {
      if (before[u][v]) best = std::max(best, 1 + longest(v));
    }
    return chain[u] = best;
  };
  for (size_t u = 0; u < n_unnests; ++u) {
    bool first = true;
    for (size_t v = 0; v < u; ++v) {
      if (unnests_[v].column == unnests_[u].column) first = false;
    }
    if (!first) continue;
    int bound = 1;
    for (size_t v = 0; v < n_unnests; ++v) {
      if (unnests_[v].column == unnests_[u].column) {
        bound = std::max(bound, longest(v));
      }
    }
    preds.AddMinCount(unnests_[u].column, bound);
  }

  // WHERE conjuncts comparing a column with a literal: keep-scalars are
  // event-constant (a failing event contributes no row at all), unnest
  // members are element-existence conditions.
  for (const FlatExpr* conjunct : conjuncts) {
    BinOp op;
    double lit;
    const FlatExpr* var = MatchFlatCmpWithLit(conjunct->Shape(), &op, &lit);
    if (var == nullptr) continue;
    const FlatShape v = var->Shape();
    if (v.kind != FlatShape::Kind::kCol) continue;
    double lo, hi;
    if (!FlatCmpToRange(op, lit, &lo, &hi)) continue;
    bool matched = false;
    for (const std::string& scalar : keep_scalars_) {
      if (v.col == scalar) {
        preds.AddRange(scalar, lo, hi);
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const UnnestList& u : unnests_) {
      for (const std::string& member : u.members) {
        if (v.col == u.alias + "." + member) {
          preds.AddItemRange(u.column + "." + member, lo, hi);
          matched = true;
          break;
        }
      }
      if (matched) break;
    }
  }

  // HAVING COUNT(*) >= n over a single unnest: the count tallies
  // surviving elements of that one list, so the event needs at least
  // ceil(n) elements (Listing 4b's n_jets >= 2).
  if (n_unnests == 1) {
    for (const FlatExprPtr& predicate : having_) {
      std::vector<const FlatExpr*> having_conjuncts;
      SplitFlatConjuncts(predicate.get(), &having_conjuncts);
      for (const FlatExpr* conjunct : having_conjuncts) {
        BinOp op;
        double lit;
        const FlatExpr* var =
            MatchFlatCmpWithLit(conjunct->Shape(), &op, &lit);
        if (var == nullptr || (op != BinOp::kGe && op != BinOp::kGt)) {
          continue;
        }
        const FlatShape v = var->Shape();
        if (v.kind != FlatShape::Kind::kCol) continue;
        for (const FlatAggSpec& spec : aggregates_) {
          if (spec.kind == FlatAggKind::kCount && spec.output == v.col) {
            const double n =
                op == BinOp::kGe ? std::ceil(lit) : std::floor(lit) + 1.0;
            if (n >= 1.0) {
              preds.AddMinCount(unnests_[0].column,
                                static_cast<int64_t>(n));
            }
          }
        }
      }
    }
  }
  return preds;
}

std::string FlatPipeline::Explain() const {
  std::string out = "FlatPipeline " + name_ + " (unnest + regroup plan)\n";
  for (const UnnestList& u : unnests_) {
    out += "  CROSS JOIN UNNEST(" + u.column + ") AS " + u.alias + " {";
    for (size_t m = 0; m < u.members.size(); ++m) {
      if (m > 0) out += ", ";
      out += u.members[m];
    }
    out += "} WITH ORDINALITY\n";
  }
  for (const std::string& scalar : keep_scalars_) {
    out += "  keep " + scalar + "\n";
  }
  for (const Step& step : steps_) {
    out += step.is_filter ? "  WHERE <predicate>\n"
                          : "  PROJECT " + step.name + "\n";
  }
  if (!aggregates_.empty()) {
    out += "  GROUP BY event:";
    for (const FlatAggSpec& spec : aggregates_) {
      out += " " + spec.output;
    }
    out += "\n";
  }
  for (size_t h = 0; h < having_.size(); ++h) {
    out += "  HAVING <predicate>\n";
  }
  for (const auto& [spec, expr] : fills_) {
    out += "  fill '" + spec.name + "'\n";
  }
  return out;
}

struct FlatPipeline::ScanSource {
  int num_threads = 1;
  const exec::DatasetLayout* layout = nullptr;
  std::function<Result<LaqReader*>(int worker, int file)> reader;
  std::function<ScratchBuffers*(int worker)> scratch;
  std::function<VexprScratch*(int worker)> vexpr;
  std::function<ScanStats()> scan_stats;
};

Result<FlatQueryResult> FlatPipeline::Execute(LaqReader* reader) const {
  reader->ResetScanStats();
  ScratchBuffers scratch;
  VexprScratch vexpr_scratch;
  const exec::DatasetLayout layout =
      exec::MakeSingleFileLayout("<open reader>", reader->metadata());
  ScanSource source;
  source.num_threads = 1;
  source.layout = &layout;
  source.reader = [reader](int, int) -> Result<LaqReader*> { return reader; };
  source.scratch = [&scratch](int) { return &scratch; };
  source.vexpr = [&vexpr_scratch](int) { return &vexpr_scratch; };
  source.scan_stats = [reader]() { return reader->scan_stats(); };
  return ExecuteImpl(&source);
}

Result<FlatQueryResult> FlatPipeline::Execute(const std::string& path,
                                              ReaderOptions reader_options,
                                              int num_threads) const {
  exec::DatasetLayout layout;
  HEPQ_ASSIGN_OR_RETURN(layout,
                        exec::ResolveDatasetLayout(path, reader_options));
  exec::WorkerReaders readers(&layout, reader_options,
                              std::max(num_threads, 1));
  ScanSource source;
  source.num_threads = num_threads;
  source.layout = &layout;
  source.reader = [&readers](int worker, int file) {
    return readers.reader(worker, file);
  };
  source.scratch = [&readers](int worker) { return readers.scratch(worker); };
  source.vexpr = [&readers](int worker) -> VexprScratch* {
    std::shared_ptr<void>& slot = readers.engine_scratch(worker);
    if (slot == nullptr) slot = std::make_shared<VexprScratch>();
    return static_cast<VexprScratch*>(slot.get());
  };
  source.scan_stats = [&readers] { return readers.TotalScanStats(); };
  return ExecuteImpl(&source);
}

Result<FlatQueryResult> FlatPipeline::ExecuteImpl(ScanSource* source) const {
  obs::ScopedSpan run_span("run", obs::Stage::kRun);
  FlatQueryResult result;
  for (const auto& [spec, expr] : fills_) {
    result.histograms.emplace_back(spec);
  }
  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();
  obs::ScopedSpan plan_span("flat_compile", obs::Stage::kPlan);

  // ---- layout of the flat chunk (shared by every worker's chunk) ----
  FlatBatch layout;
  layout.names.push_back("__event");
  for (const UnnestList& u : unnests_) {
    layout.names.push_back(u.alias + ".idx");
    for (const std::string& member : u.members) {
      layout.names.push_back(u.alias + "." + member);
    }
  }
  for (const std::string& scalar : keep_scalars_) {
    layout.names.push_back(scalar);
  }
  const size_t base_columns = layout.names.size();
  // Projections extend the layout in step order.
  for (const Step& step : steps_) {
    if (!step.is_filter) layout.names.push_back(step.name);
  }
  layout.columns.resize(layout.names.size());

  // Resolve all flat-row expressions against the final layout. Resolve
  // mutates the shared expression nodes, so it must finish before the
  // parallel scan starts; Eval afterwards is const and thread-safe.
  for (const Step& step : steps_) {
    HEPQ_RETURN_NOT_OK(step.expr->Resolve(layout));
  }
  const bool grouped = !aggregates_.empty();
  EventAggregator prototype(aggregates_);
  if (grouped) {
    HEPQ_RETURN_NOT_OK(prototype.Resolve(layout));
  }

  // HAVING and fills run over the aggregate output when grouped.
  FlatBatch agg_layout;
  if (grouped) {
    agg_layout.names.push_back("__event");
    for (const FlatAggSpec& spec : aggregates_) {
      agg_layout.names.push_back(spec.output);
    }
    agg_layout.columns.resize(agg_layout.names.size());
  }
  const FlatBatch& sink_layout = grouped ? agg_layout : layout;
  for (const FlatExprPtr& predicate : having_) {
    HEPQ_RETURN_NOT_OK(predicate->Resolve(sink_layout));
  }
  for (const auto& [spec, expr] : fills_) {
    HEPQ_RETURN_NOT_OK(expr->Resolve(sink_layout));
  }
  if (!grouped && !having_.empty()) {
    return Status::Invalid("HAVING requires aggregates");
  }

  // ---- compile the hot flat-row expressions to bytecode ----
  // One program per pipeline step and (when ungrouped) per fill; HAVING
  // and grouped fills run over the tiny per-event aggregate output where
  // batching buys nothing, so they stay on the interpreter. Input slot
  // ids are the chunk column indices, so a worker binds the program by
  // pointing VColumns at its chunk's columns through its selection
  // vector. Programs are immutable after this block and shared by all
  // workers; each worker brings its own VexprScratch.
  const bool compiled = expr_exec_ != ExprExec::kInterpreted;
  std::vector<VProgram> step_programs;
  std::vector<VProgram> fill_programs;
  if (compiled) {
    step_programs.reserve(steps_.size());
    for (const Step& step : steps_) {
      VProgramBuilder builder;
      int reg;
      HEPQ_ASSIGN_OR_RETURN(reg, step.expr->Lower(&builder));
      step_programs.push_back(builder.Finish(reg));
    }
    if (!grouped) {
      fill_programs.reserve(fills_.size());
      for (const auto& [spec, expr] : fills_) {
        VProgramBuilder builder;
        int reg;
        HEPQ_ASSIGN_OR_RETURN(reg, expr->Lower(&builder));
        fill_programs.push_back(builder.Finish(reg));
      }
    }
  }

  // ---- declarations for the storage bindings ----
  std::vector<ListDecl> list_decls;
  for (const UnnestList& u : unnests_) {
    list_decls.push_back(ListDecl{u.column, u.members, {}});
  }
  std::vector<ScalarDecl> scalar_decls;
  for (const std::string& s : keep_scalars_) {
    scalar_decls.push_back(ScalarDecl{s});
  }

  plan_span.End();

  const exec::DatasetLayout& layout_map = *source->layout;
  const size_t num_groups = layout_map.groups.size();
  // Event ids are global row numbers across the whole dataset: per-group
  // bases accumulated over the layout's file-major group order.
  std::vector<int64_t> event_base(num_groups + 1, 0);
  for (size_t g = 0; g < num_groups; ++g) {
    event_base[g + 1] = event_base[g] + layout_map.groups[g].num_rows;
  }

  // Per-row-group partial state, merged in ascending group order below.
  // GROUP BY event can be split this way because an event's flat rows all
  // come from the one row group holding the event.
  struct GroupPartial {
    GroupPartial(const EventAggregator& proto,
                 const std::vector<Histogram1D>& histo_specs)
        : aggregator(proto), histos(histo_specs) {}
    EventAggregator aggregator;
    std::vector<Histogram1D> histos;
    int64_t events = 0;
    uint64_t rows_materialized = 0;
    uint64_t cells_materialized = 0;
  };
  std::vector<GroupPartial> partials;
  partials.reserve(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    partials.emplace_back(prototype, result.histograms);
  }

  // ---- scan ----
  const std::vector<std::string> projection = Projection();
  const ScanPredicateSet preds = ScanPredicates();
  HEPQ_RETURN_NOT_OK(exec::RunRowGroups(
      source->num_threads, exec::MakeRowGroupTasks(layout_map),
      [&](int worker, int g) -> Status {
        const exec::DatasetLayout::Group& loc =
            layout_map.groups[static_cast<size_t>(g)];
        LaqReader* reader;
        HEPQ_ASSIGN_OR_RETURN(reader, source->reader(worker, loc.file));
        RecordBatchPtr batch;
        HEPQ_ASSIGN_OR_RETURN(
            batch,
            reader->ReadRowGroupFiltered(loc.local_group, projection, preds,
                                         source->scratch(worker)));
        if (batch == nullptr) {
          // Pruned group: no event in it can emit an output row, but the
          // events were still processed.
          partials[static_cast<size_t>(g)].events = loc.num_rows;
          return Status::OK();
        }
        BatchBindings bindings;
        HEPQ_ASSIGN_OR_RETURN(
            bindings, BatchBindings::Bind(*batch, list_decls, scalar_decls));
        GroupPartial& p = partials[static_cast<size_t>(g)];
        FlatBatch chunk = layout;
        VexprScratch* vs = compiled ? source->vexpr(worker) : nullptr;
        if (vs != nullptr) vs->vm.set_simd(expr_exec_ == ExprExec::kSimd);

        auto flush_interpreted = [&]() -> Status {
          if (chunk.num_rows == 0) return Status::OK();
          obs::ScopedSpan flush_span("flat_flush", obs::Stage::kExpr);
          // Apply projections and filters in order. Filters compact all
          // columns materialized so far — the real cost of filtering flat
          // data.
          size_t live_columns = base_columns;
          for (const Step& step : steps_) {
            if (!step.is_filter) {
              auto& out = chunk.columns[live_columns];
              out.resize(chunk.num_rows);
              for (size_t row = 0; row < chunk.num_rows; ++row) {
                out[row] = step.expr->Eval(chunk, row);
              }
              ++live_columns;
              continue;
            }
            size_t kept = 0;
            for (size_t row = 0; row < chunk.num_rows; ++row) {
              if (!step.expr->EvalBool(chunk, row)) continue;
              if (kept != row) {
                for (size_t c = 0; c < live_columns; ++c) {
                  chunk.columns[c][kept] = chunk.columns[c][row];
                }
              }
              ++kept;
            }
            chunk.num_rows = kept;
            for (size_t c = 0; c < live_columns; ++c) {
              chunk.columns[c].resize(kept);
            }
          }
          if (grouped) {
            p.aggregator.Consume(chunk, /*event_col=*/0);
          } else {
            for (size_t f = 0; f < fills_.size(); ++f) {
              for (size_t row = 0; row < chunk.num_rows; ++row) {
                p.histos[f].Fill(fills_[f].second->Eval(chunk, row));
              }
            }
          }
          chunk.Clear();
          return Status::OK();
        };

        // Compiled flush: run each step's program over the live lanes.
        // Filters narrow the selection vector instead of compacting every
        // materialized column, so downstream steps, fills, and the GROUP
        // BY consume shrink without the interpreter path's O(columns)
        // rewrite per filter. Lane order stays ascending, so group
        // insertion order and fill order match the compacting path and
        // results are bit-identical.
        auto flush_compiled = [&]() -> Status {
          if (chunk.num_rows == 0) return Status::OK();
          obs::ScopedSpan flush_span("flat_flush", obs::Stage::kExpr);
          VexprScratch::Scope scope(vs);
          std::vector<uint32_t>* sel = vs->AcquireU32();
          std::vector<uint32_t>* gate = vs->AcquireU32();
          std::vector<double>* vals = vs->AcquireF64();
          std::vector<VColumn>* cols = vs->AcquireCols();
          cols->assign(chunk.columns.size(), VColumn{});
          const uint32_t* sel_ptr = nullptr;  // null: all rows live
          size_t live = chunk.num_rows;
          auto bind_cols = [&]() {
            for (size_t c = 0; c < chunk.columns.size(); ++c) {
              (*cols)[c].type = TypeId::kFloat64;
              (*cols)[c].data = chunk.columns[c].data();
              (*cols)[c].index = sel_ptr;
            }
          };
          size_t live_columns = base_columns;
          for (size_t s = 0; s < steps_.size(); ++s) {
            const Step& step = steps_[s];
            bind_cols();
            if (!step.is_filter) {
              vals->resize(live);
              step_programs[s].Run(cols->data(), static_cast<int>(live),
                                   &vs->vm, vals->data());
              // Scatter through the selection so later gathers see the
              // value at its row position; dead rows stay unwritten (and
              // unread).
              auto& out = chunk.columns[live_columns];
              out.resize(chunk.num_rows);
              if (sel_ptr != nullptr) {
                for (size_t i = 0; i < live; ++i) out[sel_ptr[i]] = (*vals)[i];
              } else {
                std::copy(vals->begin(), vals->end(), out.begin());
              }
              ++live_columns;
              continue;
            }
            // Fused gate: the passing lane positions come out of the VM
            // directly (no 0/1 vector). When the selection is still dense
            // (sel_ptr null, the common first-filter case) lane positions
            // ARE row indices; otherwise remap through the old selection —
            // the gate output is ascending, so the rewrite is in-place.
            if (sel_ptr == nullptr) {
              sel->resize(live);
              const int kept = step_programs[s].RunGate(
                  cols->data(), static_cast<int>(live), &vs->vm,
                  /*negate=*/false, sel->data());
              sel->resize(static_cast<size_t>(kept));
            } else {
              gate->resize(live);
              const int kept = step_programs[s].RunGate(
                  cols->data(), static_cast<int>(live), &vs->vm,
                  /*negate=*/false, gate->data());
              for (int i = 0; i < kept; ++i) (*sel)[i] = (*sel)[(*gate)[i]];
              sel->resize(static_cast<size_t>(kept));
            }
            sel_ptr = sel->data();
            live = sel->size();
            if (live == 0) break;
          }
          if (live > 0) {
            if (grouped) {
              p.aggregator.Consume(chunk, /*event_col=*/0, sel_ptr, live);
            } else {
              for (size_t f = 0; f < fills_.size(); ++f) {
                vals->resize(live);
                bind_cols();
                fill_programs[f].Run(cols->data(), static_cast<int>(live),
                                     &vs->vm, vals->data());
                for (size_t i = 0; i < live; ++i) {
                  p.histos[f].Fill((*vals)[i]);
                }
              }
            }
          }
          chunk.Clear();
          return Status::OK();
        };

        auto flush_chunk = [&]() -> Status {
          return compiled ? flush_compiled() : flush_interpreted();
        };

        obs::ScopedSpan loop_span("unnest_emit", obs::Stage::kEventLoop);
        if (loop_span.active()) {
          loop_span.set_worker(worker);
          loop_span.set_group(g);
        }
        const int64_t rows = batch->num_rows();
        std::vector<uint32_t> cursor(unnests_.size());
        for (int64_t row = 0; row < rows; ++row) {
          const double event_id =
              static_cast<double>(event_base[static_cast<size_t>(g)] + row);
          // Full Cartesian product of the unnest lists, exactly like
          // chained CROSS JOIN UNNEST; symmetric dedup (idx1 < idx2)
          // happens in WHERE.
          std::function<Status(size_t)> emit = [&](size_t depth) -> Status {
            if (depth == unnests_.size()) {
              size_t c = 0;
              chunk.columns[c++].push_back(event_id);
              for (size_t u = 0; u < unnests_.size(); ++u) {
                const ListBinding& list = bindings.list(static_cast<int>(u));
                const uint32_t i = cursor[u];
                chunk.columns[c++].push_back(static_cast<double>(
                    i - list.begin(static_cast<uint32_t>(row))));
                for (size_t m = 0; m < unnests_[u].members.size(); ++m) {
                  chunk.columns[c++].push_back(list.members[m].Get(i));
                }
              }
              for (size_t s = 0; s < keep_scalars_.size(); ++s) {
                chunk.columns[c++].push_back(
                    bindings.scalar(static_cast<int>(s))
                        .Get(static_cast<uint32_t>(row)));
              }
              ++chunk.num_rows;
              ++p.rows_materialized;
              p.cells_materialized += base_columns;
              if (chunk.num_rows >= kChunkRows) {
                HEPQ_RETURN_NOT_OK(flush_chunk());
              }
              return Status::OK();
            }
            const ListBinding& list =
                bindings.list(static_cast<int>(depth));
            const uint32_t begin = list.begin(static_cast<uint32_t>(row));
            const uint32_t end = list.end(static_cast<uint32_t>(row));
            for (uint32_t i = begin; i < end; ++i) {
              cursor[depth] = i;
              HEPQ_RETURN_NOT_OK(emit(depth + 1));
            }
            return Status::OK();
          };
          HEPQ_RETURN_NOT_OK(emit(0));
        }
        HEPQ_RETURN_NOT_OK(flush_chunk());
        p.events = rows;
        return Status::OK();
      }));

  // ---- two-level deterministic merge ----
  // Group partials fold into a per-file histogram subtotal in local group
  // order, subtotals fold into the result in file order — the exact FP
  // association a scatter/gather coordinator reproduces when it merges
  // per-shard worker results, so P-process runs stay bit-identical (see
  // exec::DatasetLayout).
  obs::ScopedSpan merge_span("merge", obs::Stage::kMerge);
  size_t gi = 0;
  for (int file = 0; file < layout_map.num_files(); ++file) {
    std::vector<Histogram1D> file_histos;
    file_histos.reserve(fills_.size());
    for (const auto& [spec, expr] : fills_) file_histos.emplace_back(spec);
    for (; gi < num_groups && layout_map.groups[gi].file == file; ++gi) {
      GroupPartial& p = partials[gi];
      result.events_processed += p.events;
      result.rows_materialized += p.rows_materialized;
      result.cells_materialized += p.cells_materialized;
      if (!grouped) {
        for (size_t f = 0; f < fills_.size(); ++f) {
          HEPQ_RETURN_NOT_OK(file_histos[f].Merge(p.histos[f]));
        }
        continue;
      }
      // Event keys are disjoint across row groups, so concatenating the
      // per-group aggregate outputs in group order reproduces the
      // sequential scan's group order exactly.
      FlatBatch groups = p.aggregator.Finish();
      result.groups += static_cast<int64_t>(groups.num_rows);
      for (size_t row = 0; row < groups.num_rows; ++row) {
        bool pass = true;
        for (const FlatExprPtr& predicate : having_) {
          if (!predicate->EvalBool(groups, row)) {
            pass = false;
            break;
          }
        }
        if (!pass) continue;
        for (size_t f = 0; f < fills_.size(); ++f) {
          file_histos[f].Fill(fills_[f].second->Eval(groups, row));
        }
      }
    }
    for (size_t f = 0; f < fills_.size(); ++f) {
      HEPQ_RETURN_NOT_OK(result.histograms[f].Merge(file_histos[f]));
    }
  }

  merge_span.End();

  result.wall_seconds = wall.Seconds();
  result.cpu_seconds = ProcessCpuSeconds() - cpu0;
  result.scan = source->scan_stats();
  return result;
}

}  // namespace hepq::engine
