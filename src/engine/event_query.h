#ifndef HEPQUERY_ENGINE_EVENT_QUERY_H_
#define HEPQUERY_ENGINE_EVENT_QUERY_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/histogram.h"
#include "engine/expr.h"
#include "fileio/reader.h"

namespace hepq::engine {

class CompiledEventQuery;
class VexprScratch;

struct EventQueryResult {
  std::vector<Histogram1D> histograms;
  int64_t events_processed = 0;
  int64_t events_selected = 0;
  /// Elements and combinations explored (Table 2's "#ops/event" numerator).
  uint64_t ops = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  ScanStats scan;

  /// Folds another partial result into this one: histograms merge, event
  /// and op counters add. Timings and scan stats are left untouched (they
  /// are per-run, not per-partition).
  Status Merge(const EventQueryResult& other);
};

/// A compiled per-event query plan in the "BigQuery shape": the event table
/// is scanned once, nested-array logic runs as expressions inside the scan
/// (nested subqueries / array functions), and surviving events feed one or
/// more histogram aggregations. No flattening ever happens — contrast with
/// FlatPipeline (flat.h), the Presto/Athena shape.
class EventQuery {
 public:
  explicit EventQuery(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Declares a particle list with the members the query touches.
  /// Returns the list slot; member slots are the positions in `members`.
  int DeclareList(const std::string& column,
                  std::vector<std::string> members);

  /// Declares a derived list concatenating `sources` per event (Q7/Q8's
  /// light-lepton collection). See ListDecl for the member-mapping rules.
  int DeclareUnionList(const std::string& name,
                       std::vector<std::string> members,
                       std::vector<UnionSource> sources);

  /// Declares a scalar leaf ("MET.pt"). Returns the scalar slot.
  int DeclareScalar(const std::string& leaf_path);

  /// Appends a pipeline stage: the event is dropped unless `guard`
  /// evaluates truthy. BestCombination/AnyCombination guards leave their
  /// winning particles bound for later stages and fills.
  void AddStage(ExprPtr guard);

  /// Books a histogram filled once per surviving event.
  int AddHistogram(HistogramSpec spec, ExprPtr value);

  /// Books a histogram filled once per element of `list_slot` (bound to
  /// `iter_slot`) passing `filter` (optional), with `value` as fill value.
  int AddPerElementHistogram(HistogramSpec spec, int list_slot, int iter_slot,
                             ExprPtr filter, ExprPtr value);

  /// Books a histogram filled once per particle *combination* passing
  /// `filter` — the SQL "emit every qualifying pair" pattern (e.g. the
  /// full dimuon spectrum). Loops over the same list are restricted to
  /// strictly increasing ordinals, as in BestCombination.
  int AddPerCombinationHistogram(HistogramSpec spec,
                                 std::vector<ComboLoop> loops,
                                 ExprPtr filter, ExprPtr value);

  /// Selects between the vectorized bytecode path (the default) and the
  /// per-row tree-walking interpreter. Results are bit-identical; the
  /// interpreter is kept for the interpreted-vs-compiled ablation.
  void set_expr_exec(ExprExec exec) { expr_exec_ = exec; }
  ExprExec expr_exec() const { return expr_exec_; }

  /// Storage projection implied by the declarations.
  std::vector<std::string> Projection() const;

  /// Sargable residue of the stage predicates: per-event scalar
  /// comparisons, list-cardinality bounds (via the lengths leaf), and
  /// element-existence ranges, extracted from top-level conjuncts only —
  /// every extracted condition gates all fills, which is what makes
  /// zone-map pruning result-preserving (see fileio/predicate.h).
  ScanPredicateSet ScanPredicates() const;

  /// EXPLAIN-style plan rendering: declarations, stages, and fills.
  std::string Explain() const;

  /// Runs the query over all row groups of `reader`, single-threaded but
  /// through the shared row-group runtime (per-group partials merged in
  /// group order, pooled decode buffers).
  Result<EventQueryResult> Execute(LaqReader* reader) const;

  /// Parallel execution: scans `path` with up to `num_threads` workers of
  /// the shared pool, each with its own reader and scratch buffers.
  /// Results are bit-identical to the single-threaded overload.
  Result<EventQueryResult> Execute(const std::string& path,
                                   ReaderOptions reader_options,
                                   int num_threads) const;

  /// Runs the query over one in-memory batch, merging into `result`
  /// (histograms must already be sized; used by Execute and by tests).
  /// In compiled mode a thread-local VexprScratch backs the VM buffers.
  Status ExecuteBatch(const RecordBatch& batch,
                      EventQueryResult* result) const;

  /// Same, with an explicit per-worker scratch (ignored in interpreted
  /// mode; may be null, falling back to the thread-local one).
  Status ExecuteBatch(const RecordBatch& batch, EventQueryResult* result,
                      VexprScratch* scratch) const;

  /// Creates an empty result with histograms initialized to the specs.
  EventQueryResult MakeResult() const;

 private:
  struct PerElementFill {
    int list_slot;
    int iter_slot;
    ExprPtr filter;
    ExprPtr value;
  };
  struct FillSpec {
    HistogramSpec spec;
    ExprPtr scalar;          // exactly one representation is active
    PerElementFill element;
    std::vector<ComboLoop> combo_loops;  // with element.filter/.value
    bool per_element = false;
    bool per_combination = false;
  };

  /// Compiles the stages and fills to bytecode on first use (compiled
  /// mode only). Safe to race; Execute paths call it before fanning out.
  Status EnsureCompiled() const;

  std::string name_;
  std::vector<ListDecl> lists_;
  std::vector<ScalarDecl> scalars_;
  std::vector<ExprPtr> stages_;
  std::vector<FillSpec> fills_;
  ExprExec expr_exec_ = ExprExec::kSimd;
  // Behind a pointer so EventQuery stays movable (builders return by
  // value); the compiled plan cache moves with the query.
  mutable std::unique_ptr<std::mutex> compile_mu_ =
      std::make_unique<std::mutex>();
  mutable std::shared_ptr<const CompiledEventQuery> compiled_;
};

}  // namespace hepq::engine

#endif  // HEPQUERY_ENGINE_EVENT_QUERY_H_
