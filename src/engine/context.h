#ifndef HEPQUERY_ENGINE_CONTEXT_H_
#define HEPQUERY_ENGINE_CONTEXT_H_

#include <cassert>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "columnar/array.h"
#include "core/status.h"

namespace hepq::engine {

/// Untyped read accessor for one primitive leaf; converts to double at the
/// access site (the engine computes in double precision like BigQuery,
/// which exposes only 64-bit numeric types to queries).
struct MemberAccessor {
  TypeId type = TypeId::kFloat64;
  const void* data = nullptr;

  double Get(uint32_t i) const {
    switch (type) {
      case TypeId::kFloat32:
        return static_cast<const float*>(data)[i];
      case TypeId::kFloat64:
        return static_cast<const double*>(data)[i];
      case TypeId::kInt32:
        return static_cast<const int32_t*>(data)[i];
      case TypeId::kInt64:
        return static_cast<double>(static_cast<const int64_t*>(data)[i]);
      case TypeId::kBool:
        return static_cast<const uint8_t*>(data)[i];
      default:
        // Unsupported leaf types are rejected with a Status when the
        // accessor is built (AccessorFor in context.cc), so this branch is
        // unreachable for any bound accessor. A hand-rolled accessor that
        // slips through yields NaN — loud in every histogram — instead of
        // a silent 0.0 masquerading as data.
        assert(false && "MemberAccessor bound to a non-primitive type");
        return std::numeric_limits<double>::quiet_NaN();
    }
  }
};

/// A particle list column bound to a batch: shared offsets plus one
/// accessor per declared member, in declaration order.
struct ListBinding {
  const uint32_t* offsets = nullptr;
  std::vector<MemberAccessor> members;

  uint32_t begin(uint32_t row) const { return offsets[row]; }
  uint32_t end(uint32_t row) const { return offsets[row + 1]; }
  uint32_t size(uint32_t row) const { return end(row) - begin(row); }
};

/// One source collection of a derived union list (see ListDecl).
struct UnionSource {
  std::string column;                // e.g. "Electron"
  std::vector<std::string> members;  // parallel to the union's members
  double tag = 0.0;  // value of the implicit trailing "tag" member, if any
};

/// Compile-time declaration of the columns a query touches.
///
/// When `union_sources` is non-empty the declaration describes a *derived*
/// list materialized per batch by concatenating the sources per event —
/// the "Leptons AS (...)" CTE / hep:concat-leptons() pattern of Q7/Q8.
/// Each source maps its member paths onto the union's members in order;
/// if a source lists one member fewer than the union declares, the last
/// union member is filled with the source's constant `tag` (the flavor
/// column distinguishing electrons from muons).
struct ListDecl {
  std::string column;                // e.g. "Jet", or a synthetic name
  std::vector<std::string> members;  // e.g. {"pt", "eta"}
  std::vector<UnionSource> union_sources;
};

struct ScalarDecl {
  std::string leaf_path;  // e.g. "MET.pt" or "event"
};

/// Declarations resolved against one RecordBatch. Move-only: derived
/// (union) lists point into internal buffers, which a copy would not
/// share. The batch must outlive the bindings.
class BatchBindings {
 public:
  BatchBindings() = default;
  BatchBindings(BatchBindings&&) = default;
  BatchBindings& operator=(BatchBindings&&) = default;
  BatchBindings(const BatchBindings&) = delete;
  BatchBindings& operator=(const BatchBindings&) = delete;

  static Result<BatchBindings> Bind(const RecordBatch& batch,
                                    const std::vector<ListDecl>& lists,
                                    const std::vector<ScalarDecl>& scalars);

  const ListBinding& list(int slot) const {
    return lists_[static_cast<size_t>(slot)];
  }
  const MemberAccessor& scalar(int slot) const {
    return scalars_[static_cast<size_t>(slot)];
  }

 private:
  Status BindUnion(const RecordBatch& batch, const ListDecl& decl);

  std::vector<ListBinding> lists_;
  std::vector<MemberAccessor> scalars_;
  // Backing storage for materialized union lists; ListBinding pointers of
  // derived lists point into these (stable: reserved up front).
  std::vector<std::vector<uint32_t>> owned_offsets_;
  std::vector<std::vector<double>> owned_values_;
};

inline constexpr int kMaxIterators = 4;

/// Evaluation state for one event: which batch, which row, and which
/// particle (absolute child-array index) each iterator slot is bound to.
struct EvalContext {
  const BatchBindings* bindings = nullptr;
  uint32_t row = 0;
  uint32_t iter_index[kMaxIterators] = {0, 0, 0, 0};
  /// Counts element visits and combination evaluations (Table 2).
  uint64_t ops = 0;
};

}  // namespace hepq::engine

#endif  // HEPQUERY_ENGINE_CONTEXT_H_
