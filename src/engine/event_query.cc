#include "engine/event_query.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/stopwatch.h"
#include "engine/vexpr.h"
#include "exec/exec.h"
#include "obs/trace.h"

namespace hepq::engine {

int EventQuery::DeclareList(const std::string& column,
                            std::vector<std::string> members) {
  lists_.push_back(ListDecl{column, std::move(members), {}});
  return static_cast<int>(lists_.size()) - 1;
}

int EventQuery::DeclareUnionList(const std::string& name,
                                 std::vector<std::string> members,
                                 std::vector<UnionSource> sources) {
  lists_.push_back(ListDecl{name, std::move(members), std::move(sources)});
  return static_cast<int>(lists_.size()) - 1;
}

int EventQuery::DeclareScalar(const std::string& leaf_path) {
  scalars_.push_back(ScalarDecl{leaf_path});
  return static_cast<int>(scalars_.size()) - 1;
}

void EventQuery::AddStage(ExprPtr guard) {
  stages_.push_back(std::move(guard));
}

int EventQuery::AddHistogram(HistogramSpec spec, ExprPtr value) {
  FillSpec fill;
  fill.spec = std::move(spec);
  fill.scalar = std::move(value);
  fills_.push_back(std::move(fill));
  return static_cast<int>(fills_.size()) - 1;
}

int EventQuery::AddPerElementHistogram(HistogramSpec spec, int list_slot,
                                       int iter_slot, ExprPtr filter,
                                       ExprPtr value) {
  FillSpec fill;
  fill.spec = std::move(spec);
  fill.per_element = true;
  fill.element =
      PerElementFill{list_slot, iter_slot, std::move(filter),
                     std::move(value)};
  fills_.push_back(std::move(fill));
  return static_cast<int>(fills_.size()) - 1;
}

int EventQuery::AddPerCombinationHistogram(HistogramSpec spec,
                                            std::vector<ComboLoop> loops,
                                            ExprPtr filter, ExprPtr value) {
  FillSpec fill;
  fill.spec = std::move(spec);
  fill.per_combination = true;
  fill.combo_loops = std::move(loops);
  fill.element.filter = std::move(filter);
  fill.element.value = std::move(value);
  fills_.push_back(std::move(fill));
  return static_cast<int>(fills_.size()) - 1;
}

namespace {

/// Iterates the (symmetric-deduplicated) Cartesian product of `loops`,
/// calling `visit` with the iterators bound — shared by the
/// per-combination fill; mirrors the recursion inside BestCombination.
template <typename Visit>
void ForEachCombination(const std::vector<ComboLoop>& loops,
                        EvalContext* ctx, size_t depth, const Visit& visit) {
  if (depth == loops.size()) {
    ++ctx->ops;
    visit();
    return;
  }
  const ComboLoop& loop = loops[depth];
  const ListBinding& list = ctx->bindings->list(loop.list_slot);
  uint32_t begin = list.begin(ctx->row);
  const uint32_t end = list.end(ctx->row);
  for (size_t d = 0; d < depth; ++d) {
    if (loops[d].list_slot == loop.list_slot) {
      begin = std::max(begin, ctx->iter_index[loops[d].iter_slot] + 1);
    }
  }
  for (uint32_t i = begin; i < end; ++i) {
    ctx->iter_index[loop.iter_slot] = i;
    ForEachCombination(loops, ctx, depth + 1, visit);
  }
}

}  // namespace

std::vector<std::string> EventQuery::Projection() const {
  std::vector<std::string> projection;
  for (const ListDecl& list : lists_) {
    if (!list.union_sources.empty()) {
      // Derived lists read their sources' leaves from storage.
      for (const UnionSource& source : list.union_sources) {
        for (const std::string& member : source.members) {
          projection.push_back(source.column + "." + member);
        }
      }
      continue;
    }
    for (const std::string& member : list.members) {
      projection.push_back(list.column + "." + member);
    }
    if (list.members.empty()) projection.push_back(list.column);
  }
  for (const ScalarDecl& scalar : scalars_) {
    projection.push_back(scalar.leaf_path);
  }
  return projection;
}

namespace {

/// Flattens nested kAnd nodes into their conjuncts. Every conjunct of a
/// stage gates all fills (an event must pass the whole stage before any
/// histogram fill runs), the soundness requirement of predicate.h.
void SplitConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  const ExprShape s = e->Shape();
  if (s.kind == ExprShape::Kind::kBin && s.bin_op == BinOp::kAnd) {
    SplitConjuncts(s.operands[0], out);
    SplitConjuncts(s.operands[1], out);
    return;
  }
  out->push_back(e);
}

/// `x op lit` as a closed conservative range on x. kNe carries no range
/// information; the arithmetic/logic ops are not comparisons.
bool CmpToRange(BinOp op, double lit, double* lo, double* hi) {
  const double inf = std::numeric_limits<double>::infinity();
  switch (op) {
    case BinOp::kGt:
    case BinOp::kGe:
      *lo = lit;
      *hi = inf;
      return true;
    case BinOp::kLt:
    case BinOp::kLe:
      *lo = -inf;
      *hi = lit;
      return true;
    case BinOp::kEq:
      *lo = lit;
      *hi = lit;
      return true;
    default:
      return false;
  }
}

/// Rewrites `lit op x` as `x op' lit`.
BinOp MirrorCmp(BinOp op) {
  switch (op) {
    case BinOp::kLt:
      return BinOp::kGt;
    case BinOp::kLe:
      return BinOp::kGe;
    case BinOp::kGt:
      return BinOp::kLt;
    case BinOp::kGe:
      return BinOp::kLe;
    default:
      return op;
  }
}

/// Decomposes a conjunct of the form `var cmp literal` (either operand
/// order). Returns the variable side and the comparison normalized to
/// have the variable on the left.
const Expr* MatchCmpWithLit(const ExprShape& s, BinOp* op, double* lit) {
  if (s.kind != ExprShape::Kind::kBin) return nullptr;
  const ExprShape lhs = s.operands[0]->Shape();
  const ExprShape rhs = s.operands[1]->Shape();
  if (rhs.kind == ExprShape::Kind::kLit) {
    *op = s.bin_op;
    *lit = rhs.lit;
    return s.operands[0];
  }
  if (lhs.kind == ExprShape::Kind::kLit) {
    *op = MirrorCmp(s.bin_op);
    *lit = lhs.lit;
    return s.operands[1];
  }
  return nullptr;
}

}  // namespace

ScanPredicateSet EventQuery::ScanPredicates() const {
  ScanPredicateSet preds;
  std::vector<const Expr*> conjuncts;
  for (const ExprPtr& stage : stages_) {
    SplitConjuncts(stage.get(), &conjuncts);
  }
  auto plain_list = [&](int slot) {
    // Union lists concatenate several storage columns; there is no single
    // lengths leaf to bound, so they are never extracted as ranges.
    return slot >= 0 && slot < static_cast<int>(lists_.size()) &&
           lists_[static_cast<size_t>(slot)].union_sources.empty();
  };
  // For union lists, |union| = sum of the source list sizes, so minimum-
  // count gates become sum-of-lengths conditions instead.
  auto union_columns = [&](int slot) {
    std::vector<std::string> columns;
    if (slot >= 0 && slot < static_cast<int>(lists_.size())) {
      for (const UnionSource& source :
           lists_[static_cast<size_t>(slot)].union_sources) {
        columns.push_back(source.column);
      }
    }
    return columns;
  };
  for (const Expr* conjunct : conjuncts) {
    const ExprShape s = conjunct->Shape();
    if (s.kind == ExprShape::Kind::kAnyCombination ||
        s.kind == ExprShape::Kind::kBestCombination) {
      // The stage passes only if some combination exists, so each list
      // must carry at least as many elements as the loops over it.
      for (size_t i = 0; i < s.loops.size(); ++i) {
        const int slot = s.loops[i].list_slot;
        int64_t over_list = 0;
        for (const ComboLoop& loop : s.loops) {
          if (loop.list_slot == slot) ++over_list;
        }
        bool first = true;
        for (size_t j = 0; j < i; ++j) {
          if (s.loops[j].list_slot == slot) first = false;
        }
        if (!first) continue;
        if (plain_list(slot)) {
          preds.AddMinCount(lists_[static_cast<size_t>(slot)].column,
                            over_list);
        } else {
          preds.AddMinCountSum(union_columns(slot), over_list);
        }
      }
      continue;
    }
    BinOp op;
    double lit;
    const Expr* var = MatchCmpWithLit(s, &op, &lit);
    if (var == nullptr) continue;
    double lo, hi;
    const ExprShape v = var->Shape();
    if (v.kind == ExprShape::Kind::kScalarRef) {
      if (!CmpToRange(op, lit, &lo, &hi)) continue;
      preds.AddRange(scalars_[static_cast<size_t>(v.scalar_slot)].leaf_path,
                     lo, hi);
    } else if (v.kind == ExprShape::Kind::kListSize) {
      if (!CmpToRange(op, lit, &lo, &hi)) continue;
      if (plain_list(v.list_slot)) {
        preds.AddRange(
            lists_[static_cast<size_t>(v.list_slot)].column + "#lengths", lo,
            hi);
      } else if (lo > 0.0 && std::isfinite(lo)) {
        // Only the lower bound survives for a union: |union| >= lo means
        // the source lengths must sum to at least ceil(lo).
        preds.AddMinCountSum(union_columns(v.list_slot),
                             static_cast<int64_t>(std::ceil(lo)));
      }
    } else if (v.kind == ExprShape::Kind::kAgg &&
               v.agg_kind == AggKind::kCount) {
      // count(elements of list passing filter) >= n: the list must hold
      // at least ceil(n) elements, and (n >= 1) some element must pass
      // the filter when the filter is itself a sargable member range.
      if (op != BinOp::kGe && op != BinOp::kGt) continue;
      const double min_count =
          op == BinOp::kGe ? std::ceil(lit) : std::floor(lit) + 1.0;
      if (min_count < 1.0) continue;
      if (!plain_list(v.list_slot)) {
        // Unfiltered counts over a union bound the summed source lengths;
        // a filtered count still implies the unfiltered one.
        preds.AddMinCountSum(union_columns(v.list_slot),
                             static_cast<int64_t>(min_count));
        continue;
      }
      const ListDecl& list = lists_[static_cast<size_t>(v.list_slot)];
      preds.AddMinCount(list.column, static_cast<int64_t>(min_count));
      if (v.filter == nullptr) continue;
      const ExprShape f = v.filter->Shape();
      BinOp fop;
      double flit;
      const Expr* fvar = MatchCmpWithLit(f, &fop, &flit);
      if (fvar == nullptr) continue;
      const ExprShape m = fvar->Shape();
      if (m.kind != ExprShape::Kind::kIterMember ||
          m.list_slot != v.list_slot || m.iter_slot != v.iter_slot) {
        continue;
      }
      if (!CmpToRange(fop, flit, &lo, &hi)) continue;
      preds.AddItemRange(
          list.column + "." +
              list.members[static_cast<size_t>(m.member_slot)],
          lo, hi);
    }
  }
  return preds;
}

std::string EventQuery::Explain() const {
  std::string out = "EventQuery " + name_ + " (per-event expression plan)\n";
  for (size_t l = 0; l < lists_.size(); ++l) {
    out += "  list" + std::to_string(l) + " = " + lists_[l].column;
    if (!lists_[l].union_sources.empty()) {
      out += " (union of";
      for (const UnionSource& source : lists_[l].union_sources) {
        out += " " + source.column;
      }
      out += ")";
    }
    out += " {";
    for (size_t m = 0; m < lists_[l].members.size(); ++m) {
      if (m > 0) out += ", ";
      out += "m" + std::to_string(m) + "=" + lists_[l].members[m];
    }
    out += "}\n";
  }
  for (size_t c = 0; c < scalars_.size(); ++c) {
    out += "  scalar" + std::to_string(c) + " = " + scalars_[c].leaf_path +
           "\n";
  }
  for (size_t stage = 0; stage < stages_.size(); ++stage) {
    out += "  stage " + std::to_string(stage) + ": " +
           stages_[stage]->ToString() + "\n";
  }
  for (size_t f = 0; f < fills_.size(); ++f) {
    out += "  fill '" + fills_[f].spec.name + "': ";
    if (fills_[f].per_combination) {
      out += "per-combination";
      if (fills_[f].element.filter != nullptr) {
        out += " where " + fills_[f].element.filter->ToString();
      }
      out += " <- " + fills_[f].element.value->ToString();
    } else if (fills_[f].per_element) {
      out += "per-element(list" +
             std::to_string(fills_[f].element.list_slot) + ")";
      if (fills_[f].element.filter != nullptr) {
        out += " where " + fills_[f].element.filter->ToString();
      }
      out += " <- " + fills_[f].element.value->ToString();
    } else {
      out += fills_[f].scalar->ToString();
    }
    out += "\n";
  }
  return out;
}

EventQueryResult EventQuery::MakeResult() const {
  EventQueryResult result;
  result.histograms.reserve(fills_.size());
  for (const FillSpec& fill : fills_) {
    result.histograms.emplace_back(fill.spec);
  }
  return result;
}

Status EventQuery::EnsureCompiled() const {
  std::lock_guard<std::mutex> lock(*compile_mu_);
  if (compiled_ != nullptr) return Status::OK();
  obs::ScopedSpan span("vexpr_compile", obs::Stage::kPlan);
  CompiledQuerySpec spec;
  spec.stages = stages_;
  spec.fills.reserve(fills_.size());
  for (const FillSpec& fill : fills_) {
    CompiledQuerySpec::Fill f;
    f.scalar = fill.scalar;
    f.list_slot = fill.element.list_slot;
    f.iter_slot = fill.element.iter_slot;
    f.filter = fill.element.filter;
    f.value = fill.element.value;
    f.loops = fill.combo_loops;
    f.per_element = fill.per_element;
    f.per_combination = fill.per_combination;
    spec.fills.push_back(std::move(f));
  }
  HEPQ_ASSIGN_OR_RETURN(compiled_,
                        CompiledEventQuery::Compile(std::move(spec)));
  return Status::OK();
}

Status EventQuery::ExecuteBatch(const RecordBatch& batch,
                                EventQueryResult* result) const {
  return ExecuteBatch(batch, result, nullptr);
}

Status EventQuery::ExecuteBatch(const RecordBatch& batch,
                                EventQueryResult* result,
                                VexprScratch* scratch) const {
  obs::ScopedSpan span("expr_batch", obs::Stage::kExpr);
  if (expr_exec_ != ExprExec::kInterpreted) {
    HEPQ_RETURN_NOT_OK(EnsureCompiled());
    if (scratch == nullptr) {
      thread_local VexprScratch tls_scratch;
      scratch = &tls_scratch;
    }
    scratch->vm.set_simd(expr_exec_ == ExprExec::kSimd);
    BatchBindings bindings;
    HEPQ_ASSIGN_OR_RETURN(bindings,
                          BatchBindings::Bind(batch, lists_, scalars_));
    const int64_t rows = batch.num_rows();
    HEPQ_RETURN_NOT_OK(compiled_->ExecuteBatch(
        bindings, rows, scratch, &result->histograms,
        &result->events_selected, &result->ops));
    result->events_processed += rows;
    return Status::OK();
  }
  BatchBindings bindings;
  HEPQ_ASSIGN_OR_RETURN(bindings,
                        BatchBindings::Bind(batch, lists_, scalars_));
  EvalContext ctx;
  ctx.bindings = &bindings;
  const int64_t rows = batch.num_rows();
  for (int64_t row = 0; row < rows; ++row) {
    ctx.row = static_cast<uint32_t>(row);
    ++ctx.ops;  // the per-event base record access (Table 2's "+1")
    bool pass = true;
    for (const ExprPtr& stage : stages_) {
      if (!stage->EvalBool(&ctx)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    ++result->events_selected;
    for (size_t f = 0; f < fills_.size(); ++f) {
      const FillSpec& fill = fills_[f];
      Histogram1D& hist = result->histograms[f];
      if (fill.per_combination) {
        ForEachCombination(fill.combo_loops, &ctx, 0, [&] {
          if (fill.element.filter != nullptr &&
              !fill.element.filter->EvalBool(&ctx)) {
            return;
          }
          hist.Fill(fill.element.value->Eval(&ctx));
        });
        continue;
      }
      if (!fill.per_element) {
        hist.Fill(fill.scalar->Eval(&ctx));
        continue;
      }
      const ListBinding& list = bindings.list(fill.element.list_slot);
      const uint32_t begin = list.begin(ctx.row);
      const uint32_t end = list.end(ctx.row);
      for (uint32_t i = begin; i < end; ++i) {
        ctx.iter_index[fill.element.iter_slot] = i;
        ++ctx.ops;
        if (fill.element.filter != nullptr &&
            !fill.element.filter->EvalBool(&ctx)) {
          continue;
        }
        hist.Fill(fill.element.value->Eval(&ctx));
      }
    }
  }
  result->events_processed += rows;
  result->ops += ctx.ops;
  return Status::OK();
}

Status EventQueryResult::Merge(const EventQueryResult& other) {
  if (histograms.size() != other.histograms.size()) {
    return Status::Invalid("cannot merge results with different bookings");
  }
  for (size_t i = 0; i < histograms.size(); ++i) {
    HEPQ_RETURN_NOT_OK(histograms[i].Merge(other.histograms[i]));
  }
  events_processed += other.events_processed;
  events_selected += other.events_selected;
  ops += other.ops;
  return Status::OK();
}

Result<EventQueryResult> EventQuery::Execute(LaqReader* reader) const {
  obs::ScopedSpan run_span("run", obs::Stage::kRun);
  EventQueryResult result = MakeResult();
  const std::vector<std::string> projection = Projection();
  const ScanPredicateSet preds = ScanPredicates();
  reader->ResetScanStats();
  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();
  const int num_groups = reader->num_row_groups();
  std::vector<EventQueryResult> partials(static_cast<size_t>(num_groups));
  for (EventQueryResult& p : partials) p = MakeResult();
  if (expr_exec_ != ExprExec::kInterpreted) HEPQ_RETURN_NOT_OK(EnsureCompiled());
  ScratchBuffers scratch;
  VexprScratch vexpr_scratch;
  HEPQ_RETURN_NOT_OK(exec::RunRowGroups(
      /*num_threads=*/1, exec::MakeRowGroupTasks(reader->metadata()),
      [&](int /*worker*/, int g) -> Status {
        RecordBatchPtr batch;
        HEPQ_ASSIGN_OR_RETURN(
            batch, reader->ReadRowGroupFiltered(g, projection, preds,
                                                &scratch));
        EventQueryResult& partial = partials[static_cast<size_t>(g)];
        if (batch == nullptr) {
          // Pruned group: every row provably fails a gating predicate.
          partial.events_processed +=
              reader->metadata().row_groups[static_cast<size_t>(g)].num_rows;
          return Status::OK();
        }
        return ExecuteBatch(*batch, &partial, &vexpr_scratch);
      }));
  {
    obs::ScopedSpan merge_span("merge", obs::Stage::kMerge);
    for (const EventQueryResult& p : partials) {
      HEPQ_RETURN_NOT_OK(result.Merge(p));
    }
  }
  result.wall_seconds = wall.Seconds();
  result.cpu_seconds = ProcessCpuSeconds() - cpu0;
  result.scan = reader->scan_stats();
  return result;
}

Result<EventQueryResult> EventQuery::Execute(const std::string& path,
                                             ReaderOptions reader_options,
                                             int num_threads) const {
  obs::ScopedSpan run_span("run", obs::Stage::kRun);
  EventQueryResult result = MakeResult();
  const std::vector<std::string> projection = Projection();
  const ScanPredicateSet preds = ScanPredicates();
  Stopwatch wall;
  const double cpu0 = ProcessCpuSeconds();

  // Resolving the layout up front (a footer read per dataset file) gives
  // us the global row-group map; workers open shard readers lazily on
  // their first task touching each file.
  exec::DatasetLayout layout;
  HEPQ_ASSIGN_OR_RETURN(layout,
                        exec::ResolveDatasetLayout(path, reader_options));
  exec::WorkerReaders readers(&layout, reader_options,
                              std::max(num_threads, 1));
  std::vector<exec::RowGroupTask> tasks = exec::MakeRowGroupTasks(layout);
  const int workers = exec::EffectiveWorkers(num_threads, tasks.size());

  std::vector<EventQueryResult> partials(layout.groups.size());
  for (EventQueryResult& p : partials) p = MakeResult();
  if (expr_exec_ != ExprExec::kInterpreted) HEPQ_RETURN_NOT_OK(EnsureCompiled());
  HEPQ_RETURN_NOT_OK(exec::RunRowGroups(
      workers, std::move(tasks), [&](int worker, int g) -> Status {
        const exec::DatasetLayout::Group& loc =
            layout.groups[static_cast<size_t>(g)];
        LaqReader* reader;
        HEPQ_ASSIGN_OR_RETURN(reader, readers.reader(worker, loc.file));
        RecordBatchPtr batch;
        HEPQ_ASSIGN_OR_RETURN(
            batch,
            reader->ReadRowGroupFiltered(loc.local_group, projection, preds,
                                         readers.scratch(worker)));
        EventQueryResult& partial = partials[static_cast<size_t>(g)];
        if (batch == nullptr) {
          partial.events_processed += loc.num_rows;
          return Status::OK();
        }
        // The VM's per-worker buffers live in the exec runtime's scratch
        // slot, reused across every row group this worker processes.
        std::shared_ptr<void>& slot = readers.engine_scratch(worker);
        if (slot == nullptr) slot = std::make_shared<VexprScratch>();
        return ExecuteBatch(*batch, &partial,
                            static_cast<VexprScratch*>(slot.get()));
      }));
  {
    // Two-level deterministic merge: group partials fold into a per-file
    // subtotal in local group order, subtotals fold into the result in
    // file order. The scatter/gather coordinator reproduces exactly this
    // association from per-shard results, so P-process runs are
    // bit-identical to this path (see exec::DatasetLayout).
    obs::ScopedSpan merge_span("merge", obs::Stage::kMerge);
    size_t g = 0;
    for (int f = 0; f < layout.num_files(); ++f) {
      EventQueryResult file_total = MakeResult();
      for (; g < layout.groups.size() && layout.groups[g].file == f; ++g) {
        HEPQ_RETURN_NOT_OK(file_total.Merge(partials[g]));
      }
      HEPQ_RETURN_NOT_OK(result.Merge(file_total));
    }
  }
  result.wall_seconds = wall.Seconds();
  result.cpu_seconds = ProcessCpuSeconds() - cpu0;
  result.scan = readers.TotalScanStats();
  return result;
}

}  // namespace hepq::engine
