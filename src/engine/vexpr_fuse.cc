#include "engine/vexpr_fuse.h"

#include <cmath>
#include <cstdio>
#include <vector>

namespace hepq::engine {

namespace {

// Working form of one micro-op while the peepholes rewrite the program:
// operands inline, immediates unpacked, tombstone instead of erase so reg
// ids stay stable until the final renumbering.
struct WorkOp {
  MOp op = MOp::kSplat;
  uint16_t dst = 0;
  uint16_t aux = 0;  // kLoad: input slot
  double imm = 0.0;
  bool has_imm = false;
  bool deleted = false;
  bool slot_args = false;  // G-forms: args are input slots, not temps
  std::vector<uint16_t> args;
};

MOp GenericMOp(VOp op) {
  switch (op) {
    case VOp::kConst:
      return MOp::kSplat;
    case VOp::kLoad:
      return MOp::kLoad;
    case VOp::kAdd:
      return MOp::kAdd;
    case VOp::kSub:
      return MOp::kSub;
    case VOp::kMul:
      return MOp::kMul;
    case VOp::kDiv:
      return MOp::kDiv;
    case VOp::kLt:
      return MOp::kLt;
    case VOp::kLe:
      return MOp::kLe;
    case VOp::kGt:
      return MOp::kGt;
    case VOp::kGe:
      return MOp::kGe;
    case VOp::kEq:
      return MOp::kEq;
    case VOp::kNe:
      return MOp::kNe;
    case VOp::kAnd:
      return MOp::kAnd;
    case VOp::kOr:
      return MOp::kOr;
    case VOp::kAbs:
      return MOp::kAbs;
    case VOp::kSqrt:
      return MOp::kSqrt;
    case VOp::kNot:
      return MOp::kNot;
    case VOp::kMin2:
      return MOp::kMin2;
    case VOp::kMax2:
      return MOp::kMax2;
    case VOp::kDeltaPhi:
      return MOp::kDeltaPhi;
    case VOp::kDeltaR:
      return MOp::kDeltaR;
    case VOp::kInvMass2:
      return MOp::kInvMass2;
    case VOp::kInvMass3:
      return MOp::kInvMass3;
    case VOp::kSumPt3:
      return MOp::kSumPt3;
    case VOp::kTransverseMass:
      return MOp::kTransverseMass;
    case VOp::kMassOfSum2:
      return MOp::kMassOfSum2;
    case VOp::kMassOfSum3:
      return MOp::kMassOfSum3;
    case VOp::kPtOfSum3:
      return MOp::kPtOfSum3;
  }
  return MOp::kSplat;
}

/// Immediate form of `op` with the constant on the right (d = a OP imm),
/// or kSplat when none exists (min/max: std::min/std::max are asymmetric
/// under NaN, and And/Or with a constant side never survive the builder's
/// constant folder in a shape worth an imm form).
MOp RhsImmForm(MOp op) {
  switch (op) {
    case MOp::kAdd:
      return MOp::kAddImm;
    case MOp::kSub:
      return MOp::kSubImm;
    case MOp::kMul:
      return MOp::kMulImm;
    case MOp::kDiv:
      return MOp::kDivImm;
    case MOp::kLt:
      return MOp::kLtImm;
    case MOp::kLe:
      return MOp::kLeImm;
    case MOp::kGt:
      return MOp::kGtImm;
    case MOp::kGe:
      return MOp::kGeImm;
    case MOp::kEq:
      return MOp::kEqImm;
    case MOp::kNe:
      return MOp::kNeImm;
    default:
      return MOp::kSplat;
  }
}

/// Immediate form of `op` with the constant on the left (d = imm OP a).
/// Addition and multiplication commute bit-exactly when at most one
/// operand is NaN (guaranteed: the immediate is finite); comparisons flip
/// to the mirrored predicate, exact even for NaN (both sides false);
/// subtraction and division get dedicated reversed micro-ops.
MOp LhsImmForm(MOp op) {
  switch (op) {
    case MOp::kAdd:
      return MOp::kAddImm;
    case MOp::kSub:
      return MOp::kRsubImm;
    case MOp::kMul:
      return MOp::kMulImm;
    case MOp::kDiv:
      return MOp::kRdivImm;
    case MOp::kLt:
      return MOp::kGtImm;  // imm < a  ==  a > imm
    case MOp::kLe:
      return MOp::kGeImm;
    case MOp::kGt:
      return MOp::kLtImm;
    case MOp::kGe:
      return MOp::kLeImm;
    case MOp::kEq:
      return MOp::kEqImm;
    case MOp::kNe:
      return MOp::kNeImm;
    default:
      return MOp::kSplat;
  }
}

/// Fused mask-op absorbing `cmp` into an And/Or, or kSplat if the pair
/// has no fused form (kEq/kNe comparisons stay standalone: they almost
/// never gate event cuts, so the ISA leaves them out).
MOp FusedMaskForm(MOp mask_op, MOp cmp) {
  const bool is_and = mask_op == MOp::kAnd;
  switch (cmp) {
    case MOp::kLt:
      return is_and ? MOp::kAndLt : MOp::kOrLt;
    case MOp::kLe:
      return is_and ? MOp::kAndLe : MOp::kOrLe;
    case MOp::kGt:
      return is_and ? MOp::kAndGt : MOp::kOrGt;
    case MOp::kGe:
      return is_and ? MOp::kAndGe : MOp::kOrGe;
    case MOp::kLtImm:
      return is_and ? MOp::kAndLtImm : MOp::kOrLtImm;
    case MOp::kLeImm:
      return is_and ? MOp::kAndLeImm : MOp::kOrLeImm;
    case MOp::kGtImm:
      return is_and ? MOp::kAndGtImm : MOp::kOrGtImm;
    case MOp::kGeImm:
      return is_and ? MOp::kAndGeImm : MOp::kOrGeImm;
    default:
      return MOp::kSplat;
  }
}

bool IsAbsorbableCmp(MOp op) {
  switch (op) {
    case MOp::kLt:
    case MOp::kLe:
    case MOp::kGt:
    case MOp::kGe:
    case MOp::kLtImm:
    case MOp::kLeImm:
    case MOp::kGtImm:
    case MOp::kGeImm:
      return true;
    default:
      return false;
  }
}

/// Gather-absorbed form of a Cartesian SoA kernel, kSplat if none.
MOp GatherForm(MOp op) {
  switch (op) {
    case MOp::kMassOfSum2:
      return MOp::kMassOfSum2G;
    case MOp::kMassOfSum3:
      return MOp::kMassOfSum3G;
    case MOp::kPtOfSum3:
      return MOp::kPtOfSum3G;
    default:
      return MOp::kSplat;
  }
}

/// True for micro-ops whose args pool entries are input slot ids rather
/// than strip temps (the gather-absorbed SoA kernels).
bool HasSlotArgs(MOp op) {
  switch (op) {
    case MOp::kMassOfSum2G:
    case MOp::kMassOfSum3G:
    case MOp::kPtOfSum3G:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* MOpName(MOp op) {
  switch (op) {
    case MOp::kSplat:
      return "splat";
    case MOp::kLoad:
      return "load";
    case MOp::kAbs:
      return "abs";
    case MOp::kSqrt:
      return "sqrt";
    case MOp::kNot:
      return "not";
    case MOp::kAdd:
      return "add";
    case MOp::kSub:
      return "sub";
    case MOp::kMul:
      return "mul";
    case MOp::kDiv:
      return "div";
    case MOp::kLt:
      return "lt";
    case MOp::kLe:
      return "le";
    case MOp::kGt:
      return "gt";
    case MOp::kGe:
      return "ge";
    case MOp::kEq:
      return "eq";
    case MOp::kNe:
      return "ne";
    case MOp::kAnd:
      return "and";
    case MOp::kOr:
      return "or";
    case MOp::kMin2:
      return "min2";
    case MOp::kMax2:
      return "max2";
    case MOp::kAddImm:
      return "add_imm";
    case MOp::kSubImm:
      return "sub_imm";
    case MOp::kRsubImm:
      return "rsub_imm";
    case MOp::kMulImm:
      return "mul_imm";
    case MOp::kDivImm:
      return "div_imm";
    case MOp::kRdivImm:
      return "rdiv_imm";
    case MOp::kLtImm:
      return "lt_imm";
    case MOp::kLeImm:
      return "le_imm";
    case MOp::kGtImm:
      return "gt_imm";
    case MOp::kGeImm:
      return "ge_imm";
    case MOp::kEqImm:
      return "eq_imm";
    case MOp::kNeImm:
      return "ne_imm";
    case MOp::kAndLt:
      return "and_lt";
    case MOp::kAndLe:
      return "and_le";
    case MOp::kAndGt:
      return "and_gt";
    case MOp::kAndGe:
      return "and_ge";
    case MOp::kOrLt:
      return "or_lt";
    case MOp::kOrLe:
      return "or_le";
    case MOp::kOrGt:
      return "or_gt";
    case MOp::kOrGe:
      return "or_ge";
    case MOp::kAndLtImm:
      return "and_lt_imm";
    case MOp::kAndLeImm:
      return "and_le_imm";
    case MOp::kAndGtImm:
      return "and_gt_imm";
    case MOp::kAndGeImm:
      return "and_ge_imm";
    case MOp::kOrLtImm:
      return "or_lt_imm";
    case MOp::kOrLeImm:
      return "or_le_imm";
    case MOp::kOrGtImm:
      return "or_gt_imm";
    case MOp::kOrGeImm:
      return "or_ge_imm";
    case MOp::kDeltaPhi:
      return "delta_phi";
    case MOp::kDeltaR:
      return "delta_r";
    case MOp::kInvMass2:
      return "inv_mass2";
    case MOp::kInvMass3:
      return "inv_mass3";
    case MOp::kSumPt3:
      return "sum_pt3";
    case MOp::kTransverseMass:
      return "transverse_mass";
    case MOp::kMassOfSum2:
      return "mass_of_sum2";
    case MOp::kMassOfSum3:
      return "mass_of_sum3";
    case MOp::kPtOfSum3:
      return "pt_of_sum3";
    case MOp::kMassOfSum2G:
      return "mass_of_sum2_g";
    case MOp::kMassOfSum3G:
      return "mass_of_sum3_g";
    case MOp::kPtOfSum3G:
      return "pt_of_sum3_g";
  }
  return "?";
}

double VFusedPlan::fused_coverage() const {
  if (num_source_ops_ <= 0) return 0.0;
  return static_cast<double>(num_source_ops_ - num_micro_ops()) /
         static_cast<double>(num_source_ops_);
}

std::string VFusedPlan::ToString() const {
  std::string s;
  char buf[96];
  for (const MInstr& m : mops_) {
    std::snprintf(buf, sizeof(buf), "t%u = %s", m.dst, MOpName(m.op));
    s += buf;
    if (m.op == MOp::kLoad) {
      std::snprintf(buf, sizeof(buf), " slot%u", m.aux);
      s += buf;
    }
    const bool slot_args = HasSlotArgs(m.op);
    for (int a = 0; a < m.num_args; ++a) {
      std::snprintf(buf, sizeof(buf), slot_args ? " slot%u" : " t%u",
                    args_[m.first_arg + a]);
      s += buf;
    }
    switch (m.op) {
      case MOp::kSplat:
      case MOp::kAddImm:
      case MOp::kSubImm:
      case MOp::kRsubImm:
      case MOp::kMulImm:
      case MOp::kDivImm:
      case MOp::kRdivImm:
      case MOp::kLtImm:
      case MOp::kLeImm:
      case MOp::kGtImm:
      case MOp::kGeImm:
      case MOp::kEqImm:
      case MOp::kNeImm:
      case MOp::kAndLtImm:
      case MOp::kAndLeImm:
      case MOp::kAndGtImm:
      case MOp::kAndGeImm:
      case MOp::kOrLtImm:
      case MOp::kOrLeImm:
      case MOp::kOrGtImm:
      case MOp::kOrGeImm:
        std::snprintf(buf, sizeof(buf), " #%g", imms_[m.aux]);
        s += buf;
        break;
      default:
        break;
    }
    s += "\n";
  }
  std::snprintf(buf, sizeof(buf), "ret t%u\n", result_temp_);
  s += buf;
  return s;
}

std::shared_ptr<const VFusedPlan> BuildFusedPlan(const VProgram& program) {
  const std::vector<VInstr>& code = program.code();
  const std::vector<uint16_t>& pargs = program.args();
  const std::vector<double>& consts = program.consts();
  if (code.empty()) return nullptr;

  // ---- Translate to the working form --------------------------------------
  std::vector<WorkOp> work(code.size());
  // Register metadata. Registers are SSA (the builder assigns each exactly
  // once), so defining-instruction and use-count maps are exact.
  std::vector<int> def(program.num_regs(), -1);
  std::vector<int> uses(program.num_regs(), 0);
  for (size_t i = 0; i < code.size(); ++i) {
    const VInstr& vi = code[i];
    WorkOp& w = work[i];
    w.op = GenericMOp(vi.op);
    w.dst = vi.dst;
    def[vi.dst] = static_cast<int>(i);
    if (vi.op == VOp::kConst) {
      w.imm = consts[vi.index];
      w.has_imm = true;
    } else if (vi.op == VOp::kLoad) {
      w.aux = vi.index;
    } else {
      w.args.assign(pargs.begin() + vi.first_arg,
                    pargs.begin() + vi.first_arg + vi.num_args);
      for (uint16_t a : w.args) ++uses[a];
    }
  }
  const uint16_t result_reg = static_cast<uint16_t>(program.result_reg());
  ++uses[result_reg];

  auto splat_of = [&](uint16_t reg, double* value) {
    const WorkOp& d = work[def[reg]];
    if (d.op != MOp::kSplat || d.deleted) return false;
    *value = d.imm;
    return true;
  };

  // ---- Peephole 1: immediate forms ----------------------------------------
  // Only finite constants are folded: a NaN immediate could change which
  // NaN payload x86 propagates when the other lane is also NaN, and the
  // tiers must stay bit-identical even on adversarial inputs.
  for (WorkOp& w : work) {
    if (w.args.size() != 2) continue;
    double c;
    if (RhsImmForm(w.op) != MOp::kSplat && splat_of(w.args[1], &c) &&
        std::isfinite(c)) {
      --uses[w.args[1]];
      w.op = RhsImmForm(w.op);
      w.imm = c;
      w.has_imm = true;
      w.args.resize(1);
    } else if (LhsImmForm(w.op) != MOp::kSplat && splat_of(w.args[0], &c) &&
               std::isfinite(c)) {
      --uses[w.args[0]];
      w.op = LhsImmForm(w.op);
      w.imm = c;
      w.has_imm = true;
      w.args[0] = w.args[1];
      w.args.resize(1);
    }
  }

  // ---- Peephole 2: compare+mask fusion ------------------------------------
  // An And/Or absorbs one comparison operand when that comparison has no
  // other consumer (single-use SSA value). Exact: the comparison's result
  // is exactly 0.0 or 1.0, so `cmp != 0.0` in the mask loop equals the
  // predicate itself, and both operand expressions are pure.
  for (WorkOp& w : work) {
    if ((w.op != MOp::kAnd && w.op != MOp::kOr) || w.args.size() != 2)
      continue;
    for (int side = 1; side >= 0; --side) {  // prefer the rhs comparison
      const uint16_t cmp_reg = w.args[side];
      WorkOp& cmp = work[def[cmp_reg]];
      if (cmp.deleted || uses[cmp_reg] != 1 || !IsAbsorbableCmp(cmp.op))
        continue;
      const MOp fused = FusedMaskForm(w.op, cmp.op);
      if (fused == MOp::kSplat) continue;
      const uint16_t mask = w.args[1 - side];
      w.op = fused;
      w.imm = cmp.imm;
      w.has_imm = cmp.has_imm;
      w.args.clear();
      w.args.push_back(mask);
      for (uint16_t a : cmp.args) w.args.push_back(a);
      --uses[cmp_reg];
      cmp.deleted = true;
      break;
    }
  }

  // ---- Peephole 2b: SoA gather absorption ---------------------------------
  // A Cartesian kernel whose every component operand is a single-use load
  // reads the columns directly (through their index vectors) instead of
  // staging 8/12 full strips first. The kernel's arithmetic is untouched;
  // only the data path changes, so values stay bit-identical.
  for (WorkOp& w : work) {
    const MOp g = GatherForm(w.op);
    if (g == MOp::kSplat || w.deleted || w.args.empty()) continue;
    bool ok = true;
    for (uint16_t a : w.args) {
      const WorkOp& ld = work[def[a]];
      if (ld.deleted || ld.op != MOp::kLoad || uses[a] != 1) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    w.op = g;
    w.slot_args = true;
    for (size_t k = 0; k < w.args.size(); ++k) {
      WorkOp& ld = work[def[w.args[k]]];
      --uses[w.args[k]];
      ld.deleted = true;
      w.args[k] = ld.aux;  // input slot id, not a temp
    }
  }

  // ---- Peephole 3: dead splats --------------------------------------------
  // Splats whose every consumer took them as an immediate no longer need a
  // strip temporary.
  for (WorkOp& w : work) {
    if (w.op == MOp::kSplat && uses[w.dst] == 0 && w.dst != result_reg)
      w.deleted = true;
  }

  // ---- Renumber into the final plan ---------------------------------------
  auto plan = std::make_shared<VFusedPlan>();
  std::vector<uint16_t> remap(program.num_regs(), 0);
  uint16_t next_temp = 0;
  for (const WorkOp& w : work)
    if (!w.deleted) remap[w.dst] = next_temp++;
  for (const WorkOp& w : work) {
    if (w.deleted) continue;
    MInstr m;
    m.op = w.op;
    m.dst = remap[w.dst];
    m.num_args = static_cast<uint8_t>(w.args.size());
    m.first_arg = static_cast<uint16_t>(plan->args_.size());
    for (uint16_t a : w.args)
      plan->args_.push_back(w.slot_args ? a : remap[a]);
    if (w.has_imm) {
      m.aux = static_cast<uint16_t>(plan->imms_.size());
      plan->imms_.push_back(w.imm);
    } else {
      m.aux = w.aux;  // kLoad slot (0 otherwise)
    }
    plan->mops_.push_back(m);
  }
  plan->num_temps_ = next_temp;
  plan->result_temp_ = remap[result_reg];
  plan->num_source_ops_ = static_cast<int>(code.size());
  return plan;
}

}  // namespace hepq::engine
