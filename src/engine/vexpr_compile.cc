// Lowers Expr trees (via their Shape() reflection) into VProgram bytecode
// plus a small set of batched drivers — aggregates, combination searches,
// stage predicates, histogram fills — that together replicate the
// tree-walking interpreter bit for bit, including its ops accounting
// (Table 2): +1 per event base access, +1 per aggregate element visited
// (kAny stops counting at its first match), +1 per combination enumerated.
//
// The lowering is total: any subtree the vectorizer cannot express
// (combination searches in value position, logical operators whose
// operands have side effects on the ops counter) degrades to a per-lane
// interpreter "producer" for exactly that subtree, so correctness never
// depends on the shape of the query.

#include <algorithm>
#include <array>
#include <limits>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/physics.h"
#include "engine/vexpr.h"

namespace hepq::engine {

namespace {

/// Events never split across combination-search flushes; a chunk grows past
/// this only when a single event has more combinations.
constexpr int kComboChunkLanes = 16384;

/// A set of evaluation lanes: each lane is an (event row, iterator
/// bindings) tuple — an event for stage predicates, a list element for
/// aggregate bodies, a particle combination for searches. All iterator
/// columns are absolute child-array indices, like EvalContext::iter_index.
struct Frame {
  const BatchBindings* bindings = nullptr;
  int n = 0;
  const uint32_t* event = nullptr;
  const uint32_t* iter[kMaxIterators] = {nullptr, nullptr, nullptr, nullptr};
};

// ---- Purity analysis -------------------------------------------------------

/// A subtree is pure iff evaluating it neither touches the ops counter nor
/// binds iterators — i.e. it contains no aggregate or combination node.
bool IsPure(const Expr* e) {
  const ExprShape s = e->Shape();
  switch (s.kind) {
    case ExprShape::Kind::kAgg:
    case ExprShape::Kind::kBestCombination:
    case ExprShape::Kind::kAnyCombination:
      return false;
    default:
      break;
  }
  for (const Expr* op : s.operands) {
    if (!IsPure(op)) return false;
  }
  return true;
}

bool ContainsCombination(const Expr* e) {
  if (e == nullptr) return false;
  const ExprShape s = e->Shape();
  if (s.kind == ExprShape::Kind::kBestCombination ||
      s.kind == ExprShape::Kind::kAnyCombination) {
    return true;
  }
  for (const Expr* op : s.operands) {
    if (ContainsCombination(op)) return true;
  }
  return ContainsCombination(s.filter) || ContainsCombination(s.value);
}

// ---- Compiled structures ---------------------------------------------------

struct AggNode;

/// A whole-column input computed outside the bytecode program: either a
/// batched aggregate or a per-lane interpreter walk of one subtree.
struct Producer {
  std::unique_ptr<AggNode> agg;
  const Expr* interp = nullptr;
};

/// How one VProgram input slot is filled from a Frame. kCartesian slots
/// are bound in groups of four (px, py, pz, E of one particle) by the
/// decomposed-combination pre-pass below, not by the generic slot loop.
struct SlotDesc {
  enum class Kind {
    kScalar,
    kMember,
    kOrdinal,
    kListSize,
    kProduced,
    kCartesian
  };
  Kind kind = Kind::kScalar;
  int list_slot = -1;
  int iter_slot = -1;
  int member_slot = -1;
  int scalar_slot = -1;
  int producer = -1;
};

/// One per-element Cartesian conversion: the (pt, eta, phi, mass) member
/// quad of one list, converted through PtEtaPhiM::ToPxPyPzE — the same
/// out-of-line helper every interpreter combination calls, so gathering
/// converted components per lane is bit-identical to converting per lane.
struct CartesianTable {
  int list_slot = -1;
  std::array<int, 4> members{};
};

/// Four consecutive input slots (first_slot .. first_slot+3) holding the
/// px/py/pz/E of the particle one iterator binds, read from `table`.
struct CartesianGroup {
  int table = -1;
  int iter_slot = -1;
  int first_slot = -1;
};

/// Distinct (list, member-quad) tables one scalar can reference; queries
/// use one or two, the lowering falls back past the cap.
constexpr int kMaxCartesianTables = 8;

struct CompiledScalar {
  VProgram program;
  std::vector<SlotDesc> slots;
  std::vector<Producer> producers;
  std::vector<CartesianTable> ctables;
  std::vector<CartesianGroup> cgroups;

  bool pure() const { return producers.empty(); }
  void Eval(const Frame& f, VexprScratch* s, double* out,
            uint64_t* ops) const;
  /// Predicate form: binds and runs the fused gate, writing the passing
  /// lane positions (ascending) to sel_out and returning their count —
  /// the 0/1 vector of Eval never materializes.
  int Gate(const Frame& f, VexprScratch* s, bool negate, uint32_t* sel_out,
           uint64_t* ops) const;

 private:
  void BindCartesian(const Frame& f, VexprScratch* s,
                     std::vector<VColumn>* cols) const;
  /// Binds every input slot of `program` for frame `f` (cols must hold
  /// slots.size() entries). Producer slots evaluate here, so `ops`
  /// accounting is identical for Eval and Gate.
  void Bind(const Frame& f, VexprScratch* s, std::vector<VColumn>* cols,
            uint64_t* ops) const;
};

/// One atom of a conjunction: `scalar` must be nonzero (or zero when
/// negated) for a lane to pass.
struct Conjunct {
  bool negate = false;
  CompiledScalar scalar;
};

/// An ordered conjunction evaluated with lane narrowing: conjunct k runs
/// only on lanes that passed conjuncts 0..k-1, which reproduces the
/// interpreter's left-to-right && short-circuit for any producers inside.
struct CompiledPredicate {
  std::vector<Conjunct> conjuncts;

  bool pure() const {
    for (const Conjunct& c : conjuncts) {
      if (!c.scalar.pure()) return false;
    }
    return true;
  }

  /// Narrows `live` (ascending lane indices into `f`) to passing lanes.
  void Narrow(const Frame& f, VexprScratch* s, std::vector<uint32_t>* live,
              uint64_t* ops) const;

  /// Writes 0/1 per lane without narrowing. Only valid when pure().
  void Eval01(const Frame& f, VexprScratch* s, double* out,
              uint64_t* ops) const;
};

struct AggNode {
  AggKind kind = AggKind::kCount;
  int list_slot = -1;
  int iter_slot = -1;
  bool has_filter = false;
  CompiledPredicate filter;
  bool has_value = false;
  CompiledScalar value;

  void Eval(const Frame& f, VexprScratch* s, double* out,
            uint64_t* ops) const;
};

/// A combination search in stage position: enumerates the deduplicated
/// Cartesian product per event, reduces to the best / first passing
/// combination, binds winners, and narrows the event selection.
struct ComboSearch {
  std::vector<ComboLoop> loops;
  bool best = false;  // strict-minimum argmin vs existence
  bool has_filter = false;
  CompiledScalar filter;  // pure by construction
  CompiledScalar key;     // pure; best only
};

/// One step of a stage's top-level conjunction.
struct StageUnit {
  enum class Kind { kConjunct, kCombo, kInterp };
  Kind kind = Kind::kConjunct;
  Conjunct conjunct;
  ComboSearch combo;
  const Expr* interp = nullptr;
};

struct CompiledStage {
  std::vector<StageUnit> units;
};

struct CompiledFill {
  enum class Kind { kScalar, kElement, kCombo, kInterp };
  Kind kind = Kind::kScalar;
  CompiledScalar scalar;  // kScalar
  int list_slot = -1;     // kElement
  int iter_slot = -1;
  bool has_filter = false;
  CompiledPredicate filter;  // kElement / kCombo
  CompiledScalar value;
  std::vector<ComboLoop> loops;             // kCombo
  const CompiledQuerySpec::Fill* src = nullptr;  // kInterp
};

// ---- Frame helpers ---------------------------------------------------------

/// Gathers `f` at `idx[0..m)` into scratch-backed buffers. The caller's
/// scratch scope owns the result's storage.
Frame GatherFrame(const Frame& f, const uint32_t* idx, int m,
                  VexprScratch* s) {
  Frame g;
  g.bindings = f.bindings;
  g.n = m;
  std::vector<uint32_t>* ev = s->AcquireU32();
  ev->resize(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) (*ev)[i] = f.event[idx[i]];
  g.event = ev->data();
  for (int k = 0; k < kMaxIterators; ++k) {
    std::vector<uint32_t>* it = s->AcquireU32();
    it->resize(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) (*it)[i] = f.iter[k][idx[i]];
    g.iter[k] = it->data();
  }
  return g;
}

/// Builds the event-level frame for the current selection: one lane per
/// selected row, iterators gathered from the per-row binding columns.
Frame MakeEventFrame(const BatchBindings& bindings,
                     const std::vector<uint32_t>& sel,
                     uint32_t* const bc[kMaxIterators], VexprScratch* s) {
  Frame f;
  f.bindings = &bindings;
  f.n = static_cast<int>(sel.size());
  f.event = sel.data();
  for (int k = 0; k < kMaxIterators; ++k) {
    std::vector<uint32_t>* it = s->AcquireU32();
    it->resize(sel.size());
    for (size_t i = 0; i < sel.size(); ++i) (*it)[i] = bc[k][sel[i]];
    f.iter[k] = it->data();
  }
  return f;
}

// ---- Evaluation ------------------------------------------------------------

void CompiledScalar::BindCartesian(const Frame& f, VexprScratch* s,
                                   std::vector<VColumn>* cols) const {
  if (cgroups.empty() || f.n <= 0) return;

  // Two strategies per table, chosen by element reuse. A shared table
  // converts every element of [min, max] once and each lane gathers
  // components; the dense fallback converts per (lane, particle), exactly
  // the interpreter's cost, and wins when lanes reference few elements
  // from a wide index range. Both convert through the same helper, so the
  // choice never changes a bit of the result.
  struct TableBind {
    uint32_t min = 0;
    uint32_t max = 0;
    bool any = false;
    bool shared = false;
    int64_t ngroups = 0;
    const double* comp[4] = {nullptr, nullptr, nullptr, nullptr};
  };
  TableBind tb[kMaxCartesianTables];
  for (const CartesianGroup& g : cgroups) {
    TableBind& t = tb[g.table];
    ++t.ngroups;
    const uint32_t* it = f.iter[g.iter_slot];
    for (int i = 0; i < f.n; ++i) {
      const uint32_t j = it[i];
      if (!t.any) {
        t.min = t.max = j;
        t.any = true;
      } else {
        t.min = std::min(t.min, j);
        t.max = std::max(t.max, j);
      }
    }
  }
  for (size_t ti = 0; ti < ctables.size(); ++ti) {
    TableBind& t = tb[ti];
    if (!t.any) continue;
    const int64_t range = static_cast<int64_t>(t.max) - t.min + 1;
    if (range > t.ngroups * f.n) continue;
    const CartesianTable& ct = ctables[ti];
    const ListBinding& list = f.bindings->list(ct.list_slot);
    const MemberAccessor& mpt = list.members[static_cast<size_t>(ct.members[0])];
    const MemberAccessor& meta = list.members[static_cast<size_t>(ct.members[1])];
    const MemberAccessor& mphi = list.members[static_cast<size_t>(ct.members[2])];
    const MemberAccessor& mmass = list.members[static_cast<size_t>(ct.members[3])];
    double* comp[4];
    for (int c = 0; c < 4; ++c) {
      std::vector<double>* buf = s->AcquireF64();
      buf->resize(static_cast<size_t>(range));
      comp[c] = buf->data();
      t.comp[c] = comp[c];
    }
    for (int64_t r = 0; r < range; ++r) {
      const uint32_t j = t.min + static_cast<uint32_t>(r);
      const PxPyPzE v =
          PtEtaPhiM{mpt.Get(j), meta.Get(j), mphi.Get(j), mmass.Get(j)}
              .ToPxPyPzE();
      comp[0][r] = v.px;
      comp[1][r] = v.py;
      comp[2][r] = v.pz;
      comp[3][r] = v.e;
    }
    t.shared = true;
  }
  for (const CartesianGroup& g : cgroups) {
    const TableBind& t = tb[g.table];
    if (t.shared) {
      const uint32_t* idx = f.iter[g.iter_slot];
      if (t.min != 0) {
        std::vector<uint32_t>* adj = s->AcquireU32();
        adj->resize(static_cast<size_t>(f.n));
        for (int i = 0; i < f.n; ++i) (*adj)[i] = idx[i] - t.min;
        idx = adj->data();
      }
      for (int c = 0; c < 4; ++c) {
        VColumn vc;
        vc.type = TypeId::kFloat64;
        vc.data = t.comp[c];
        vc.index = idx;
        (*cols)[static_cast<size_t>(g.first_slot + c)] = vc;
      }
    } else {
      const CartesianTable& ct = ctables[static_cast<size_t>(g.table)];
      const ListBinding& list = f.bindings->list(ct.list_slot);
      const MemberAccessor& mpt =
          list.members[static_cast<size_t>(ct.members[0])];
      const MemberAccessor& meta =
          list.members[static_cast<size_t>(ct.members[1])];
      const MemberAccessor& mphi =
          list.members[static_cast<size_t>(ct.members[2])];
      const MemberAccessor& mmass =
          list.members[static_cast<size_t>(ct.members[3])];
      double* comp[4];
      for (int c = 0; c < 4; ++c) {
        std::vector<double>* buf = s->AcquireF64();
        buf->resize(static_cast<size_t>(f.n));
        comp[c] = buf->data();
      }
      const uint32_t* it = f.iter[g.iter_slot];
      for (int i = 0; i < f.n; ++i) {
        const uint32_t j = it[i];
        const PxPyPzE v =
            PtEtaPhiM{mpt.Get(j), meta.Get(j), mphi.Get(j), mmass.Get(j)}
                .ToPxPyPzE();
        comp[0][i] = v.px;
        comp[1][i] = v.py;
        comp[2][i] = v.pz;
        comp[3][i] = v.e;
      }
      for (int c = 0; c < 4; ++c) {
        VColumn vc;
        vc.type = TypeId::kFloat64;
        vc.data = comp[c];
        (*cols)[static_cast<size_t>(g.first_slot + c)] = vc;
      }
    }
  }
}

void CompiledScalar::Eval(const Frame& f, VexprScratch* s, double* out,
                          uint64_t* ops) const {
  VexprScratch::Scope scope(s);
  std::vector<VColumn>* cols = s->AcquireCols();
  cols->resize(slots.size());
  Bind(f, s, cols, ops);
  program.Run(cols->data(), f.n, &s->vm, out);
}

int CompiledScalar::Gate(const Frame& f, VexprScratch* s, bool negate,
                         uint32_t* sel_out, uint64_t* ops) const {
  VexprScratch::Scope scope(s);
  std::vector<VColumn>* cols = s->AcquireCols();
  cols->resize(slots.size());
  Bind(f, s, cols, ops);
  return program.RunGate(cols->data(), f.n, &s->vm, negate, sel_out);
}

void CompiledScalar::Bind(const Frame& f, VexprScratch* s,
                          std::vector<VColumn>* cols, uint64_t* ops) const {
  BindCartesian(f, s, cols);
  for (size_t i = 0; i < slots.size(); ++i) {
    const SlotDesc& d = slots[i];
    if (d.kind == SlotDesc::Kind::kCartesian) continue;
    VColumn c;
    switch (d.kind) {
      case SlotDesc::Kind::kScalar: {
        const MemberAccessor& a = f.bindings->scalar(d.scalar_slot);
        c.type = a.type;
        c.data = a.data;
        c.index = f.event;
        break;
      }
      case SlotDesc::Kind::kMember: {
        const MemberAccessor& a =
            f.bindings->list(d.list_slot)
                .members[static_cast<size_t>(d.member_slot)];
        c.type = a.type;
        c.data = a.data;
        c.index = f.iter[d.iter_slot];
        break;
      }
      case SlotDesc::Kind::kOrdinal: {
        std::vector<double>* buf = s->AcquireF64();
        buf->resize(static_cast<size_t>(f.n));
        const ListBinding& list = f.bindings->list(d.list_slot);
        const uint32_t* it = f.iter[d.iter_slot];
        for (int j = 0; j < f.n; ++j) {
          (*buf)[j] = static_cast<double>(it[j] - list.begin(f.event[j]));
        }
        c.type = TypeId::kFloat64;
        c.data = buf->data();
        break;
      }
      case SlotDesc::Kind::kListSize: {
        std::vector<double>* buf = s->AcquireF64();
        buf->resize(static_cast<size_t>(f.n));
        const ListBinding& list = f.bindings->list(d.list_slot);
        for (int j = 0; j < f.n; ++j) {
          (*buf)[j] = static_cast<double>(list.size(f.event[j]));
        }
        c.type = TypeId::kFloat64;
        c.data = buf->data();
        break;
      }
      case SlotDesc::Kind::kProduced: {
        std::vector<double>* buf = s->AcquireF64();
        buf->resize(static_cast<size_t>(f.n));
        const Producer& p = producers[static_cast<size_t>(d.producer)];
        if (p.agg != nullptr) {
          p.agg->Eval(f, s, buf->data(), ops);
        } else {
          // Per-lane interpreter walk: exact semantics (short-circuit, ops
          // side effects) for the one subtree the VM cannot express.
          for (int j = 0; j < f.n; ++j) {
            EvalContext ctx;
            ctx.bindings = f.bindings;
            ctx.row = f.event[j];
            for (int k = 0; k < kMaxIterators; ++k) {
              ctx.iter_index[k] = f.iter[k][j];
            }
            (*buf)[j] = p.interp->Eval(&ctx);
            *ops += ctx.ops;
          }
        }
        c.type = TypeId::kFloat64;
        c.data = buf->data();
        break;
      }
      case SlotDesc::Kind::kCartesian:
        break;  // bound by BindCartesian above
    }
    (*cols)[i] = c;
  }
}

void CompiledPredicate::Narrow(const Frame& f, VexprScratch* s,
                               std::vector<uint32_t>* live,
                               uint64_t* ops) const {
  for (const Conjunct& c : conjuncts) {
    if (live->empty()) return;
    VexprScratch::Scope scope(s);
    const int m = static_cast<int>(live->size());
    // Live lanes are an ascending subset of [0, f.n), so a full-size set
    // is the identity and the frame can be used as-is.
    const Frame g = m == f.n ? f : GatherFrame(f, live->data(), m, s);
    // Fused gate+fill: the gate emits passing positions within the live
    // set directly (ascending), so the narrow is an in-place remap.
    std::vector<uint32_t>* gate = s->AcquireU32();
    gate->resize(static_cast<size_t>(m));
    const int kept = c.scalar.Gate(g, s, c.negate, gate->data(), ops);
    for (int i = 0; i < kept; ++i) (*live)[i] = (*live)[(*gate)[i]];
    live->resize(static_cast<size_t>(kept));
  }
}

void CompiledPredicate::Eval01(const Frame& f, VexprScratch* s, double* out,
                               uint64_t* ops) const {
  VexprScratch::Scope scope(s);
  std::vector<double>* vals = s->AcquireF64();
  vals->resize(static_cast<size_t>(f.n));
  for (int i = 0; i < f.n; ++i) out[i] = 1.0;
  for (const Conjunct& c : conjuncts) {
    c.scalar.Eval(f, s, vals->data(), ops);
    for (int i = 0; i < f.n; ++i) {
      const bool pass = ((*vals)[i] != 0.0) != c.negate;
      if (!pass) out[i] = 0.0;
    }
  }
}

void AggNode::Eval(const Frame& f, VexprScratch* s, double* out,
                   uint64_t* ops) const {
  VexprScratch::Scope scope(s);
  const ListBinding& list = f.bindings->list(list_slot);

  // Child frame: one lane per (parent lane, list element), elements in
  // ascending order within each parent lane — the interpreter's loop order.
  std::vector<uint32_t>* cev = s->AcquireU32();
  std::vector<uint32_t>* seg = s->AcquireU32();
  std::vector<uint32_t>* cit[kMaxIterators];
  for (int k = 0; k < kMaxIterators; ++k) cit[k] = s->AcquireU32();
  seg->reserve(static_cast<size_t>(f.n) + 1);
  for (int L = 0; L < f.n; ++L) {
    seg->push_back(static_cast<uint32_t>(cev->size()));
    const uint32_t e = f.event[L];
    const uint32_t begin = list.begin(e);
    const uint32_t end = list.end(e);
    for (uint32_t j = begin; j < end; ++j) {
      cev->push_back(e);
      for (int k = 0; k < kMaxIterators; ++k) {
        cit[k]->push_back(k == iter_slot ? j : f.iter[k][L]);
      }
    }
  }
  seg->push_back(static_cast<uint32_t>(cev->size()));
  const int cn = static_cast<int>(cev->size());
  Frame cf;
  cf.bindings = f.bindings;
  cf.n = cn;
  cf.event = cev->data();
  for (int k = 0; k < kMaxIterators; ++k) cf.iter[k] = cit[k]->data();

  if (kind == AggKind::kAny) {
    // The interpreter counts one op per element visited and stops at the
    // first element whose filter passes and value is nonzero. Filter and
    // value are pure here (enforced at compile time), so batch-evaluating
    // them over all elements is unobservable; only the visit count must
    // respect the early exit.
    double* fv = nullptr;
    double* vv = nullptr;
    if (has_filter) {
      std::vector<double>* fbuf = s->AcquireF64();
      fbuf->resize(static_cast<size_t>(cn));
      filter.Eval01(cf, s, fbuf->data(), ops);
      fv = fbuf->data();
    }
    if (has_value) {
      std::vector<double>* vbuf = s->AcquireF64();
      vbuf->resize(static_cast<size_t>(cn));
      value.Eval(cf, s, vbuf->data(), ops);
      vv = vbuf->data();
    }
    for (int L = 0; L < f.n; ++L) {
      const uint32_t begin = (*seg)[static_cast<size_t>(L)];
      const uint32_t end = (*seg)[static_cast<size_t>(L) + 1];
      bool found = false;
      uint64_t visited = 0;
      for (uint32_t j = begin; j < end; ++j) {
        ++visited;
        if (fv != nullptr && fv[j] == 0.0) continue;
        const double v = vv != nullptr ? vv[j] : 1.0;
        if (v != 0.0) {
          found = true;
          break;
        }
      }
      out[L] = found ? 1.0 : 0.0;
      *ops += visited;
    }
    return;
  }

  // Count / sum / min / max visit every element.
  *ops += static_cast<uint64_t>(cn);
  std::vector<uint32_t>* live = s->AcquireU32();
  live->resize(static_cast<size_t>(cn));
  for (int j = 0; j < cn; ++j) (*live)[static_cast<size_t>(j)] =
      static_cast<uint32_t>(j);
  if (has_filter) filter.Narrow(cf, s, live, ops);
  const int m = static_cast<int>(live->size());
  double* vv = nullptr;
  if (has_value) {
    const Frame vf = m == cn ? cf : GatherFrame(cf, live->data(), m, s);
    std::vector<double>* vbuf = s->AcquireF64();
    vbuf->resize(static_cast<size_t>(m));
    value.Eval(vf, s, vbuf->data(), ops);
    vv = vbuf->data();
  }
  double init = 0.0;
  if (kind == AggKind::kMin) init = std::numeric_limits<double>::infinity();
  if (kind == AggKind::kMax) init = -std::numeric_limits<double>::infinity();
  for (int L = 0; L < f.n; ++L) out[L] = init;
  // Passing lanes are ascending, so walking them with a cursor over the
  // segment table reduces each parent lane in interpreter element order.
  size_t L = 0;
  for (int i = 0; i < m; ++i) {
    const uint32_t j = (*live)[static_cast<size_t>(i)];
    while ((*seg)[L + 1] <= j) ++L;
    const double v = vv != nullptr ? vv[i] : 1.0;
    switch (kind) {
      case AggKind::kCount:
        out[L] += 1.0;
        break;
      case AggKind::kSum:
        out[L] += v;
        break;
      case AggKind::kMin:
        out[L] = std::min(out[L], v);
        break;
      case AggKind::kMax:
        out[L] = std::max(out[L], v);
        break;
      case AggKind::kAny:
        break;  // handled above
    }
  }
}

// ---- Lowering --------------------------------------------------------------

CompiledScalar LowerScalar(const Expr* e);
CompiledPredicate LowerPredicate(const Expr* e);

class ScalarLowerer {
 public:
  CompiledScalar Lower(const Expr* root) {
    const int reg = LowerNode(root);
    cs_.program = b_.Finish(reg);
    return std::move(cs_);
  }

  /// Lowers the whole tree as one per-lane interpreter producer — used
  /// when batching any part would change observable binding semantics.
  CompiledScalar LowerAsInterp(const Expr* root) {
    const int reg = InterpLoad(root);
    cs_.program = b_.Finish(reg);
    return std::move(cs_);
  }

 private:
  CompiledScalar cs_;
  VProgramBuilder b_;
  std::map<std::array<int, 4>, int> leaf_slots_;

  int LeafLoad(SlotDesc d) {
    const std::array<int, 4> key{static_cast<int>(d.kind), d.list_slot,
                                 d.iter_slot >= 0 ? d.iter_slot
                                                  : d.scalar_slot,
                                 d.member_slot};
    auto it = leaf_slots_.find(key);
    if (it != leaf_slots_.end()) return b_.Load(it->second);
    const int slot = static_cast<int>(cs_.slots.size());
    cs_.slots.push_back(d);
    leaf_slots_.emplace(key, slot);
    return b_.Load(slot);
  }

  int ProducerLoad(Producer p) {
    SlotDesc d;
    d.kind = SlotDesc::Kind::kProduced;
    d.producer = static_cast<int>(cs_.producers.size());
    cs_.producers.push_back(std::move(p));
    const int slot = static_cast<int>(cs_.slots.size());
    cs_.slots.push_back(d);
    return b_.Load(slot);
  }

  int InterpLoad(const Expr* e) {
    Producer p;
    p.interp = e;
    return ProducerLoad(std::move(p));
  }

  /// Lowers InvMass2/InvMass3/SumPt3 calls whose arguments are per-particle
  /// (pt, eta, phi, mass) member quads to the decomposed Cartesian form:
  /// slots deliver px/py/pz/E converted once per list element, the opcode
  /// only adds and reduces per lane. Returns -1 when the call does not
  /// match (arguments are not plain iterator members), leaving the generic
  /// per-lane opcode to handle it.
  int TryLowerCartesianCall(const ExprShape& s) {
    VOp op;
    size_t particles;
    switch (s.fn) {
      case Fn::kInvMass2:
        op = VOp::kMassOfSum2;
        particles = 2;
        break;
      case Fn::kInvMass3:
        op = VOp::kMassOfSum3;
        particles = 3;
        break;
      case Fn::kSumPt3:
        op = VOp::kPtOfSum3;
        particles = 3;
        break;
      default:
        return -1;
    }
    if (s.operands.size() != particles * 4) return -1;
    std::vector<int> regs;
    regs.reserve(particles * 4);
    for (size_t g = 0; g < particles; ++g) {
      int list = -1;
      int iter = -1;
      std::array<int, 4> members{};
      for (int c = 0; c < 4; ++c) {
        const ExprShape a = s.operands[g * 4 + static_cast<size_t>(c)]->Shape();
        if (a.kind != ExprShape::Kind::kIterMember) return -1;
        if (c == 0) {
          list = a.list_slot;
          iter = a.iter_slot;
        } else if (a.list_slot != list || a.iter_slot != iter) {
          return -1;
        }
        members[static_cast<size_t>(c)] = a.member_slot;
      }
      int table = -1;
      for (size_t t = 0; t < cs_.ctables.size(); ++t) {
        if (cs_.ctables[t].list_slot == list &&
            cs_.ctables[t].members == members) {
          table = static_cast<int>(t);
          break;
        }
      }
      if (table < 0) {
        if (cs_.ctables.size() >= kMaxCartesianTables) return -1;
        table = static_cast<int>(cs_.ctables.size());
        cs_.ctables.push_back({list, members});
      }
      int first_slot = -1;
      for (const CartesianGroup& cg : cs_.cgroups) {
        if (cg.table == table && cg.iter_slot == iter) {
          first_slot = cg.first_slot;
          break;
        }
      }
      if (first_slot < 0) {
        first_slot = static_cast<int>(cs_.slots.size());
        for (int c = 0; c < 4; ++c) {
          SlotDesc d;
          d.kind = SlotDesc::Kind::kCartesian;
          d.list_slot = list;
          d.iter_slot = iter;
          d.member_slot = c;  // component: px, py, pz, E
          cs_.slots.push_back(d);
        }
        cs_.cgroups.push_back({table, iter, first_slot});
      }
      for (int c = 0; c < 4; ++c) regs.push_back(b_.Load(first_slot + c));
    }
    return b_.Op(op, regs);
  }

  int LowerNode(const Expr* e) {
    const ExprShape s = e->Shape();
    switch (s.kind) {
      case ExprShape::Kind::kLit:
        return b_.Const(s.lit);
      case ExprShape::Kind::kScalarRef: {
        SlotDesc d;
        d.kind = SlotDesc::Kind::kScalar;
        d.scalar_slot = s.scalar_slot;
        return LeafLoad(d);
      }
      case ExprShape::Kind::kIterMember: {
        SlotDesc d;
        d.kind = SlotDesc::Kind::kMember;
        d.list_slot = s.list_slot;
        d.iter_slot = s.iter_slot;
        d.member_slot = s.member_slot;
        return LeafLoad(d);
      }
      case ExprShape::Kind::kIterOrdinal: {
        SlotDesc d;
        d.kind = SlotDesc::Kind::kOrdinal;
        d.list_slot = s.list_slot;
        d.iter_slot = s.iter_slot;
        return LeafLoad(d);
      }
      case ExprShape::Kind::kListSize: {
        SlotDesc d;
        d.kind = SlotDesc::Kind::kListSize;
        d.list_slot = s.list_slot;
        return LeafLoad(d);
      }
      case ExprShape::Kind::kBin: {
        if ((s.bin_op == BinOp::kAnd || s.bin_op == BinOp::kOr) &&
            (!IsPure(s.operands[0]) || !IsPure(s.operands[1]))) {
          // Eager evaluation would run the impure side on lanes the
          // interpreter short-circuits past, skewing the ops counter.
          return InterpLoad(e);
        }
        const int l = LowerNode(s.operands[0]);
        const int r = LowerNode(s.operands[1]);
        return b_.Op(VOpFor(s.bin_op), {l, r});
      }
      case ExprShape::Kind::kCall: {
        const int cart = TryLowerCartesianCall(s);
        if (cart >= 0) return cart;
        std::vector<int> regs;
        regs.reserve(s.operands.size());
        for (const Expr* arg : s.operands) regs.push_back(LowerNode(arg));
        return b_.Op(VOpFor(s.fn), regs);
      }
      case ExprShape::Kind::kAgg: {
        auto node = std::make_unique<AggNode>();
        node->kind = s.agg_kind;
        node->list_slot = s.list_slot;
        node->iter_slot = s.iter_slot;
        if (s.filter != nullptr) {
          node->has_filter = true;
          node->filter = LowerPredicate(s.filter);
        }
        if (s.value != nullptr) {
          node->has_value = true;
          node->value = LowerScalar(s.value);
        }
        if (s.agg_kind == AggKind::kAny &&
            ((node->has_filter && !node->filter.pure()) ||
             (node->has_value && !node->value.pure()))) {
          // kAny's early exit makes the inner ops count data-dependent;
          // only pure bodies can be batched without observing it.
          return InterpLoad(e);
        }
        Producer p;
        p.agg = std::move(node);
        return ProducerLoad(std::move(p));
      }
      case ExprShape::Kind::kBestCombination:
      case ExprShape::Kind::kAnyCombination:
        // In value position the bindings a search establishes must be
        // visible to the enclosing evaluation only — the per-lane walk
        // keeps that containment exact.
        return InterpLoad(e);
    }
    return b_.Const(0.0);
  }
};

CompiledScalar LowerScalar(const Expr* e) {
  ScalarLowerer lowerer;
  return lowerer.Lower(e);
}

void SplitConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  const ExprShape s = e->Shape();
  if (s.kind == ExprShape::Kind::kBin && s.bin_op == BinOp::kAnd) {
    SplitConjuncts(s.operands[0], out);
    SplitConjuncts(s.operands[1], out);
    return;
  }
  out->push_back(e);
}

Conjunct LowerConjunct(const Expr* e) {
  Conjunct c;
  // Unwrap Not(...) wrappers into the negate flag so the atom inside can
  // still narrow lanes (Q7's veto: Not(any lepton close by)).
  while (true) {
    const ExprShape s = e->Shape();
    if (s.kind == ExprShape::Kind::kCall && s.fn == Fn::kNot) {
      c.negate = !c.negate;
      e = s.operands[0];
      continue;
    }
    break;
  }
  c.scalar = LowerScalar(e);
  return c;
}

CompiledPredicate LowerPredicate(const Expr* e) {
  CompiledPredicate p;
  std::vector<const Expr*> parts;
  SplitConjuncts(e, &parts);
  p.conjuncts.reserve(parts.size());
  for (const Expr* part : parts) p.conjuncts.push_back(LowerConjunct(part));
  return p;
}

CompiledStage LowerStage(const Expr* root) {
  CompiledStage stage;
  std::vector<const Expr*> parts;
  SplitConjuncts(root, &parts);
  for (const Expr* part : parts) {
    StageUnit unit;
    const ExprShape s = part->Shape();
    const bool is_search = s.kind == ExprShape::Kind::kBestCombination ||
                           s.kind == ExprShape::Kind::kAnyCombination;
    if (is_search && (s.filter == nullptr || IsPure(s.filter)) &&
        (s.value == nullptr || IsPure(s.value))) {
      unit.kind = StageUnit::Kind::kCombo;
      unit.combo.loops = s.loops;
      unit.combo.best = s.kind == ExprShape::Kind::kBestCombination;
      if (s.filter != nullptr) {
        unit.combo.has_filter = true;
        unit.combo.filter = LowerScalar(s.filter);
      }
      if (s.value != nullptr) unit.combo.key = LowerScalar(s.value);
    } else if (ContainsCombination(part)) {
      // A search not at conjunct root (or with impure innards) must bind
      // iterators through the per-event walk to keep them visible to
      // later stages and fills.
      unit.kind = StageUnit::Kind::kInterp;
      unit.interp = part;
    } else {
      unit.kind = StageUnit::Kind::kConjunct;
      unit.conjunct = LowerConjunct(part);
    }
    stage.units.push_back(std::move(unit));
  }
  return stage;
}

CompiledFill LowerFill(const CompiledQuerySpec::Fill& fill) {
  CompiledFill out;
  out.src = &fill;
  const bool combos_inside = ContainsCombination(fill.scalar.get()) ||
                             ContainsCombination(fill.filter.get()) ||
                             ContainsCombination(fill.value.get());
  if (combos_inside) {
    out.kind = CompiledFill::Kind::kInterp;
    return out;
  }
  if (fill.per_combination) {
    out.kind = CompiledFill::Kind::kCombo;
    out.loops = fill.loops;
    if (fill.filter != nullptr) {
      out.has_filter = true;
      out.filter = LowerPredicate(fill.filter.get());
    }
    out.value = LowerScalar(fill.value.get());
    return out;
  }
  if (fill.per_element) {
    out.kind = CompiledFill::Kind::kElement;
    out.list_slot = fill.list_slot;
    out.iter_slot = fill.iter_slot;
    if (fill.filter != nullptr) {
      out.has_filter = true;
      out.filter = LowerPredicate(fill.filter.get());
    }
    out.value = LowerScalar(fill.value.get());
    return out;
  }
  out.kind = CompiledFill::Kind::kScalar;
  out.scalar = LowerScalar(fill.scalar.get());
  return out;
}

// ---- Combination enumeration -----------------------------------------------

/// Appends every (symmetric-deduplicated) combination of `loops` for event
/// `row` as lanes: event id, loop iterators set to the combination, other
/// iterators inherited from the binding columns. Returns the count, which
/// is the interpreter's per-event ops contribution.
uint64_t EnumerateCombos(const std::vector<ComboLoop>& loops,
                         const BatchBindings& bindings, uint32_t row,
                         uint32_t* const bc[kMaxIterators],
                         std::vector<uint32_t>* ev,
                         std::vector<uint32_t>* const cit[kMaxIterators]) {
  const size_t depth_count = loops.size();
  const ListBinding* lists[kMaxIterators];
  for (size_t d = 0; d < depth_count; ++d) {
    lists[d] = &bindings.list(loops[d].list_slot);
  }
  int slot_to_depth[kMaxIterators] = {-1, -1, -1, -1};
  for (size_t d = 0; d < depth_count; ++d) {
    slot_to_depth[loops[d].iter_slot] = static_cast<int>(d);
  }
  uint32_t cur[kMaxIterators] = {0, 0, 0, 0};
  uint64_t count = 0;

  const auto emit = [&]() {
    ++count;
    ev->push_back(row);
    for (int k = 0; k < kMaxIterators; ++k) {
      cit[k]->push_back(slot_to_depth[k] >= 0
                            ? cur[slot_to_depth[k]]
                            : bc[k][row]);
    }
  };
  const auto recurse = [&](const auto& self, size_t depth) -> void {
    if (depth == depth_count) {
      emit();
      return;
    }
    if (depth >= static_cast<size_t>(kMaxIterators)) return;  // unreachable
    uint32_t begin = lists[depth]->begin(row);
    const uint32_t end = lists[depth]->end(row);
    for (size_t d = 0; d < depth; ++d) {
      if (loops[d].list_slot == loops[depth].list_slot) {
        begin = std::max(begin, cur[d] + 1);
      }
    }
    for (uint32_t i = begin; i < end; ++i) {
      cur[depth] = i;
      self(self, depth + 1);
    }
  };
  recurse(recurse, 0);
  return count;
}

/// Runs a combination-search stage unit: narrows `sel` to events with a
/// qualifying combination and binds the winning iterators into `bc`.
void RunComboUnit(const ComboSearch& cs, const BatchBindings& bindings,
                  std::vector<uint32_t>* sel, uint32_t* bc[kMaxIterators],
                  VexprScratch* s, uint64_t* ops) {
  VexprScratch::Scope scope(s);
  std::vector<uint32_t>* ev = s->AcquireU32();
  std::vector<uint32_t>* cit[kMaxIterators];
  for (int k = 0; k < kMaxIterators; ++k) cit[k] = s->AcquireU32();
  std::vector<uint32_t>* ev_rows = s->AcquireU32();
  std::vector<uint32_t>* ev_start = s->AcquireU32();
  std::vector<uint32_t>* newsel = s->AcquireU32();
  newsel->reserve(sel->size());

  const auto flush = [&]() {
    if (ev_rows->empty()) return;
    VexprScratch::Scope flush_scope(s);
    const int cn = static_cast<int>(ev->size());
    Frame f;
    f.bindings = &bindings;
    f.n = cn;
    f.event = ev->data();
    for (int k = 0; k < kMaxIterators; ++k) f.iter[k] = cit[k]->data();
    const double* fv = nullptr;
    const double* kv = nullptr;
    if (cs.has_filter) {
      std::vector<double>* fbuf = s->AcquireF64();
      fbuf->resize(static_cast<size_t>(cn));
      cs.filter.Eval(f, s, fbuf->data(), ops);
      fv = fbuf->data();
    }
    if (cs.best) {
      std::vector<double>* kbuf = s->AcquireF64();
      kbuf->resize(static_cast<size_t>(cn));
      cs.key.Eval(f, s, kbuf->data(), ops);
      kv = kbuf->data();
    }
    for (size_t t = 0; t < ev_rows->size(); ++t) {
      const uint32_t row = (*ev_rows)[t];
      const uint32_t begin = (*ev_start)[t];
      const uint32_t end = t + 1 < ev_start->size()
                               ? (*ev_start)[t + 1]
                               : static_cast<uint32_t>(cn);
      bool found = false;
      double best_key = std::numeric_limits<double>::infinity();
      uint32_t win = 0;
      for (uint32_t j = begin; j < end; ++j) {
        if (fv != nullptr && fv[j] == 0.0) continue;
        if (!cs.best) {
          found = true;
          win = j;
          break;  // first passing combination, enumeration order
        }
        const double k = kv[j];
        // Strict < keeps the first minimal combination, like the
        // interpreter's `!found || k < best_key`.
        if (!found || k < best_key) {
          found = true;
          best_key = k;
          win = j;
        }
      }
      if (found) {
        for (const ComboLoop& loop : cs.loops) {
          bc[loop.iter_slot][row] = (*cit[loop.iter_slot])[win];
        }
        newsel->push_back(row);
      }
    }
    ev->clear();
    for (int k = 0; k < kMaxIterators; ++k) cit[k]->clear();
    ev_rows->clear();
    ev_start->clear();
  };

  for (const uint32_t row : *sel) {
    ev_rows->push_back(row);
    ev_start->push_back(static_cast<uint32_t>(ev->size()));
    *ops += EnumerateCombos(cs.loops, bindings, row, bc, ev, cit);
    if (static_cast<int>(ev->size()) >= kComboChunkLanes) flush();
  }
  flush();
  sel->assign(newsel->begin(), newsel->end());
}

// ---- Stage and fill drivers ------------------------------------------------

void RunConjunctUnit(const Conjunct& c, const BatchBindings& bindings,
                     std::vector<uint32_t>* sel,
                     uint32_t* const bc[kMaxIterators], VexprScratch* s,
                     uint64_t* ops) {
  if (sel->empty()) return;
  VexprScratch::Scope scope(s);
  const Frame f = MakeEventFrame(bindings, *sel, bc, s);
  std::vector<double>* vals = s->AcquireF64();
  vals->resize(sel->size());
  c.scalar.Eval(f, s, vals->data(), ops);
  size_t w = 0;
  for (size_t i = 0; i < sel->size(); ++i) {
    const bool pass = ((*vals)[i] != 0.0) != c.negate;
    if (pass) (*sel)[w++] = (*sel)[i];
  }
  sel->resize(w);
}

void RunInterpUnit(const Expr* e, const BatchBindings& bindings,
                   std::vector<uint32_t>* sel, uint32_t* bc[kMaxIterators],
                   uint64_t* ops) {
  size_t w = 0;
  for (size_t i = 0; i < sel->size(); ++i) {
    const uint32_t row = (*sel)[i];
    EvalContext ctx;
    ctx.bindings = &bindings;
    ctx.row = row;
    for (int k = 0; k < kMaxIterators; ++k) ctx.iter_index[k] = bc[k][row];
    const bool pass = e->EvalBool(&ctx);
    *ops += ctx.ops;
    // Persist bindings a combination search established for this event.
    for (int k = 0; k < kMaxIterators; ++k) bc[k][row] = ctx.iter_index[k];
    if (pass) (*sel)[w++] = row;
  }
  sel->resize(w);
}

void RunScalarFill(const CompiledScalar& scalar,
                   const BatchBindings& bindings,
                   const std::vector<uint32_t>& sel,
                   uint32_t* const bc[kMaxIterators], VexprScratch* s,
                   Histogram1D* hist, uint64_t* ops) {
  if (sel.empty()) return;
  VexprScratch::Scope scope(s);
  const Frame f = MakeEventFrame(bindings, sel, bc, s);
  std::vector<double>* vals = s->AcquireF64();
  vals->resize(sel.size());
  scalar.Eval(f, s, vals->data(), ops);
  for (size_t i = 0; i < sel.size(); ++i) hist->Fill((*vals)[i]);
}

void RunElementFill(const CompiledFill& fill, const BatchBindings& bindings,
                    const std::vector<uint32_t>& sel,
                    uint32_t* const bc[kMaxIterators], VexprScratch* s,
                    Histogram1D* hist, uint64_t* ops) {
  if (sel.empty()) return;
  VexprScratch::Scope scope(s);
  const Frame f = MakeEventFrame(bindings, sel, bc, s);
  const ListBinding& list = bindings.list(fill.list_slot);
  std::vector<uint32_t>* cev = s->AcquireU32();
  std::vector<uint32_t>* cit[kMaxIterators];
  for (int k = 0; k < kMaxIterators; ++k) cit[k] = s->AcquireU32();
  for (int L = 0; L < f.n; ++L) {
    const uint32_t e = f.event[L];
    for (uint32_t j = list.begin(e); j < list.end(e); ++j) {
      cev->push_back(e);
      for (int k = 0; k < kMaxIterators; ++k) {
        cit[k]->push_back(k == fill.iter_slot ? j : f.iter[k][L]);
      }
    }
  }
  const int cn = static_cast<int>(cev->size());
  *ops += static_cast<uint64_t>(cn);  // one visit per element, like the
                                      // interpreter's per-element loop
  Frame cf;
  cf.bindings = &bindings;
  cf.n = cn;
  cf.event = cev->data();
  for (int k = 0; k < kMaxIterators; ++k) cf.iter[k] = cit[k]->data();
  std::vector<uint32_t>* live = s->AcquireU32();
  live->resize(static_cast<size_t>(cn));
  for (int j = 0; j < cn; ++j) (*live)[static_cast<size_t>(j)] =
      static_cast<uint32_t>(j);
  if (fill.has_filter) fill.filter.Narrow(cf, s, live, ops);
  const int m = static_cast<int>(live->size());
  if (m == 0) return;
  const Frame vf = m == cn ? cf : GatherFrame(cf, live->data(), m, s);
  std::vector<double>* vals = s->AcquireF64();
  vals->resize(static_cast<size_t>(m));
  fill.value.Eval(vf, s, vals->data(), ops);
  for (int i = 0; i < m; ++i) hist->Fill((*vals)[i]);
}

void RunComboFill(const CompiledFill& fill, const BatchBindings& bindings,
                  const std::vector<uint32_t>& sel,
                  uint32_t* const bc[kMaxIterators], VexprScratch* s,
                  Histogram1D* hist, uint64_t* ops) {
  VexprScratch::Scope scope(s);
  std::vector<uint32_t>* ev = s->AcquireU32();
  std::vector<uint32_t>* cit[kMaxIterators];
  for (int k = 0; k < kMaxIterators; ++k) cit[k] = s->AcquireU32();

  const auto flush = [&]() {
    const int cn = static_cast<int>(ev->size());
    if (cn == 0) return;
    VexprScratch::Scope flush_scope(s);
    Frame f;
    f.bindings = &bindings;
    f.n = cn;
    f.event = ev->data();
    for (int k = 0; k < kMaxIterators; ++k) f.iter[k] = cit[k]->data();
    std::vector<uint32_t>* live = s->AcquireU32();
    live->resize(static_cast<size_t>(cn));
    for (int j = 0; j < cn; ++j) (*live)[static_cast<size_t>(j)] =
        static_cast<uint32_t>(j);
    if (fill.has_filter) fill.filter.Narrow(f, s, live, ops);
    const int m = static_cast<int>(live->size());
    if (m > 0) {
      const Frame vf = m == cn ? f : GatherFrame(f, live->data(), m, s);
      std::vector<double>* vals = s->AcquireF64();
      vals->resize(static_cast<size_t>(m));
      fill.value.Eval(vf, s, vals->data(), ops);
      for (int i = 0; i < m; ++i) hist->Fill((*vals)[i]);
    }
    ev->clear();
    for (int k = 0; k < kMaxIterators; ++k) cit[k]->clear();
  };

  for (const uint32_t row : sel) {
    *ops += EnumerateCombos(fill.loops, bindings, row, bc, ev, cit);
    if (static_cast<int>(ev->size()) >= kComboChunkLanes) flush();
  }
  flush();
}

void RunInterpFill(const CompiledQuerySpec::Fill& fill,
                   const BatchBindings& bindings,
                   const std::vector<uint32_t>& sel,
                   uint32_t* const bc[kMaxIterators], Histogram1D* hist,
                   uint64_t* ops) {
  for (const uint32_t row : sel) {
    EvalContext ctx;
    ctx.bindings = &bindings;
    ctx.row = row;
    for (int k = 0; k < kMaxIterators; ++k) ctx.iter_index[k] = bc[k][row];
    if (fill.per_combination) {
      const auto recurse = [&](const auto& self, size_t depth) -> void {
        if (depth == fill.loops.size()) {
          ++ctx.ops;
          if (fill.filter != nullptr && !fill.filter->EvalBool(&ctx)) return;
          hist->Fill(fill.value->Eval(&ctx));
          return;
        }
        const ComboLoop& loop = fill.loops[depth];
        const ListBinding& list = bindings.list(loop.list_slot);
        uint32_t begin = list.begin(ctx.row);
        const uint32_t end = list.end(ctx.row);
        for (size_t d = 0; d < depth; ++d) {
          if (fill.loops[d].list_slot == loop.list_slot) {
            begin = std::max(begin,
                             ctx.iter_index[fill.loops[d].iter_slot] + 1);
          }
        }
        for (uint32_t i = begin; i < end; ++i) {
          ctx.iter_index[loop.iter_slot] = i;
          self(self, depth + 1);
        }
      };
      recurse(recurse, 0);
    } else if (fill.per_element) {
      const ListBinding& list = bindings.list(fill.list_slot);
      for (uint32_t i = list.begin(row); i < list.end(row); ++i) {
        ctx.iter_index[fill.iter_slot] = i;
        ++ctx.ops;
        if (fill.filter != nullptr && !fill.filter->EvalBool(&ctx)) continue;
        hist->Fill(fill.value->Eval(&ctx));
      }
    } else {
      hist->Fill(fill.scalar->Eval(&ctx));
    }
    *ops += ctx.ops;
  }
}

}  // namespace

// ---- CompiledEventQuery ----------------------------------------------------

struct CompiledEventQuery::Impl {
  CompiledQuerySpec spec;  // owns the expression trees the units reference
  std::vector<CompiledStage> stages;
  std::vector<CompiledFill> fills;
};

CompiledEventQuery::CompiledEventQuery() = default;
CompiledEventQuery::~CompiledEventQuery() = default;

Result<std::shared_ptr<const CompiledEventQuery>> CompiledEventQuery::Compile(
    CompiledQuerySpec spec) {
  auto query = std::shared_ptr<CompiledEventQuery>(new CompiledEventQuery());
  query->impl_ = std::make_unique<Impl>();
  Impl& impl = *query->impl_;
  impl.spec = std::move(spec);
  impl.stages.reserve(impl.spec.stages.size());
  for (const ExprPtr& stage : impl.spec.stages) {
    impl.stages.push_back(LowerStage(stage.get()));
  }
  impl.fills.reserve(impl.spec.fills.size());
  for (const CompiledQuerySpec::Fill& fill : impl.spec.fills) {
    impl.fills.push_back(LowerFill(fill));
  }
  return std::shared_ptr<const CompiledEventQuery>(std::move(query));
}

Status CompiledEventQuery::ExecuteBatch(const BatchBindings& bindings,
                                        int64_t num_rows,
                                        VexprScratch* scratch,
                                        std::vector<Histogram1D>* histograms,
                                        int64_t* events_selected,
                                        uint64_t* ops) const {
  const Impl& impl = *impl_;
  scratch->ResetAll();
  VexprScratch::Scope scope(scratch);

  std::vector<uint32_t>* sel = scratch->AcquireU32();
  sel->resize(static_cast<size_t>(num_rows));
  for (int64_t i = 0; i < num_rows; ++i) {
    (*sel)[static_cast<size_t>(i)] = static_cast<uint32_t>(i);
  }
  // Per-row iterator bindings, the batch-wide analogue of
  // EvalContext::iter_index: combination stages write winners here, later
  // stages and fills read them.
  uint32_t* bc[kMaxIterators];
  for (int k = 0; k < kMaxIterators; ++k) {
    std::vector<uint32_t>* v = scratch->AcquireU32();
    v->assign(static_cast<size_t>(num_rows), 0);
    bc[k] = v->data();
  }

  *ops += static_cast<uint64_t>(num_rows);  // per-event base record access

  for (const CompiledStage& stage : impl.stages) {
    for (const StageUnit& unit : stage.units) {
      switch (unit.kind) {
        case StageUnit::Kind::kConjunct:
          RunConjunctUnit(unit.conjunct, bindings, sel, bc, scratch, ops);
          break;
        case StageUnit::Kind::kCombo:
          RunComboUnit(unit.combo, bindings, sel, bc, scratch, ops);
          break;
        case StageUnit::Kind::kInterp:
          RunInterpUnit(unit.interp, bindings, sel, bc, ops);
          break;
      }
      if (sel->empty()) break;
    }
  }

  *events_selected += static_cast<int64_t>(sel->size());

  for (size_t fidx = 0; fidx < impl.fills.size(); ++fidx) {
    const CompiledFill& fill = impl.fills[fidx];
    Histogram1D* hist = &(*histograms)[fidx];
    switch (fill.kind) {
      case CompiledFill::Kind::kScalar:
        RunScalarFill(fill.scalar, bindings, *sel, bc, scratch, hist, ops);
        break;
      case CompiledFill::Kind::kElement:
        RunElementFill(fill, bindings, *sel, bc, scratch, hist, ops);
        break;
      case CompiledFill::Kind::kCombo:
        RunComboFill(fill, bindings, *sel, bc, scratch, hist, ops);
        break;
      case CompiledFill::Kind::kInterp:
        RunInterpFill(*fill.src, bindings, *sel, bc, hist, ops);
        break;
    }
  }
  return Status::OK();
}

// ---- CompiledExprKernel ----------------------------------------------------

namespace {

struct KernelImpl {
  ExprPtr root;
  CompiledScalar scalar;
};

}  // namespace

Result<CompiledExprKernel> CompiledExprKernel::Compile(ExprPtr expr) {
  if (expr == nullptr) return Status::Invalid("null expression");
  auto impl = std::make_shared<KernelImpl>();
  impl->root = std::move(expr);
  if (ContainsCombination(impl->root.get())) {
    // A combination search leaves its winners bound for *sibling* subtrees
    // (the interpreter's contract); per-slot producers cannot see each
    // other's bindings, so the whole tree walks per lane instead.
    ScalarLowerer lowerer;
    impl->scalar = lowerer.LowerAsInterp(impl->root.get());
  } else {
    impl->scalar = LowerScalar(impl->root.get());
  }
  CompiledExprKernel kernel;
  kernel.impl_ = std::shared_ptr<const void>(impl, impl.get());
  return kernel;
}

Status CompiledExprKernel::Eval(const BatchBindings& bindings,
                                int64_t num_rows, VexprScratch* scratch,
                                double* out, uint64_t* ops) const {
  const KernelImpl& impl = *static_cast<const KernelImpl*>(impl_.get());
  scratch->ResetAll();
  VexprScratch::Scope scope(scratch);
  std::vector<uint32_t>* ev = scratch->AcquireU32();
  std::vector<uint32_t>* zero = scratch->AcquireU32();
  ev->resize(static_cast<size_t>(num_rows));
  zero->assign(static_cast<size_t>(num_rows), 0);
  for (int64_t i = 0; i < num_rows; ++i) {
    (*ev)[static_cast<size_t>(i)] = static_cast<uint32_t>(i);
  }
  Frame f;
  f.bindings = &bindings;
  f.n = static_cast<int>(num_rows);
  f.event = ev->data();
  for (int k = 0; k < kMaxIterators; ++k) f.iter[k] = zero->data();
  uint64_t local_ops = 0;
  impl.scalar.Eval(f, scratch, out, &local_ops);
  if (ops != nullptr) *ops += local_ops;
  return Status::OK();
}

Result<int> CompiledExprKernel::Gate(const BatchBindings& bindings,
                                     int64_t num_rows, VexprScratch* scratch,
                                     uint32_t* sel_out, uint64_t* ops) const {
  const KernelImpl& impl = *static_cast<const KernelImpl*>(impl_.get());
  scratch->ResetAll();
  VexprScratch::Scope scope(scratch);
  std::vector<uint32_t>* ev = scratch->AcquireU32();
  std::vector<uint32_t>* zero = scratch->AcquireU32();
  ev->resize(static_cast<size_t>(num_rows));
  zero->assign(static_cast<size_t>(num_rows), 0);
  for (int64_t i = 0; i < num_rows; ++i) {
    (*ev)[static_cast<size_t>(i)] = static_cast<uint32_t>(i);
  }
  Frame f;
  f.bindings = &bindings;
  f.n = static_cast<int>(num_rows);
  f.event = ev->data();
  for (int k = 0; k < kMaxIterators; ++k) f.iter[k] = zero->data();
  uint64_t local_ops = 0;
  const int kept =
      impl.scalar.Gate(f, scratch, /*negate=*/false, sel_out, &local_ops);
  if (ops != nullptr) *ops += local_ops;
  return kept;
}

const VProgram& CompiledExprKernel::program() const {
  return static_cast<const KernelImpl*>(impl_.get())->scalar.program;
}

}  // namespace hepq::engine
