#include "columnar/types.h"

namespace hepq {

const char* TypeIdName(TypeId id) {
  switch (id) {
    case TypeId::kFloat32:
      return "float32";
    case TypeId::kFloat64:
      return "float64";
    case TypeId::kInt32:
      return "int32";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kBool:
      return "bool";
    case TypeId::kList:
      return "list";
    case TypeId::kStruct:
      return "struct";
  }
  return "unknown";
}

int PrimitiveWidth(TypeId id) {
  switch (id) {
    case TypeId::kFloat32:
    case TypeId::kInt32:
      return 4;
    case TypeId::kFloat64:
    case TypeId::kInt64:
      return 8;
    case TypeId::kBool:
      return 1;
    default:
      return 0;
  }
}

bool IsPrimitive(TypeId id) {
  return id != TypeId::kList && id != TypeId::kStruct;
}

// The private constructor forces creation through these factories, which
// lets primitive types be process-wide singletons.
#define HEPQ_PRIMITIVE_FACTORY(Name, IdValue)                              \
  DataTypePtr DataType::Name() {                                          \
    static const auto& instance = *new DataTypePtr(                       \
        std::shared_ptr<const DataType>(new DataType(IdValue, {})));      \
    return instance;                                                      \
  }

HEPQ_PRIMITIVE_FACTORY(Float32, TypeId::kFloat32)
HEPQ_PRIMITIVE_FACTORY(Float64, TypeId::kFloat64)
HEPQ_PRIMITIVE_FACTORY(Int32, TypeId::kInt32)
HEPQ_PRIMITIVE_FACTORY(Int64, TypeId::kInt64)
HEPQ_PRIMITIVE_FACTORY(Bool, TypeId::kBool)

#undef HEPQ_PRIMITIVE_FACTORY

DataTypePtr DataType::List(DataTypePtr item) {
  return std::shared_ptr<const DataType>(
      new DataType(TypeId::kList, {Field{"item", std::move(item)}}));
}

DataTypePtr DataType::Struct(std::vector<Field> fields) {
  return std::shared_ptr<const DataType>(
      new DataType(TypeId::kStruct, std::move(fields)));
}

int DataType::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool DataType::Equals(const DataType& other) const {
  if (id_ != other.id_) return false;
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (id_ == TypeId::kStruct && fields_[i].name != other.fields_[i].name) {
      return false;
    }
    if (!fields_[i].type->Equals(*other.fields_[i].type)) return false;
  }
  return true;
}

std::string DataType::ToString() const {
  if (is_primitive()) return TypeIdName(id_);
  if (id_ == TypeId::kList) {
    return "list<" + item_type()->ToString() + ">";
  }
  std::string out = "struct<";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name + ": " + fields_[i].type->ToString();
  }
  out += ">";
  return out;
}

int DataType::NumLeaves() const {
  if (is_primitive()) return 1;
  int n = 0;
  for (const auto& f : fields_) n += f.type->NumLeaves();
  return n;
}

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<Field> Schema::FindField(const std::string& name) const {
  const int i = FieldIndex(name);
  if (i < 0) return Status::KeyError("no column named '" + name + "'");
  return fields_[static_cast<size_t>(i)];
}

bool Schema::Equals(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name) return false;
    if (!fields_[i].type->Equals(*other.fields_[i].type)) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "schema {\n";
  for (const auto& f : fields_) {
    out += "  " + f.name + ": " + f.type->ToString() + "\n";
  }
  out += "}";
  return out;
}

int Schema::NumLeaves() const {
  int n = 0;
  for (const auto& f : fields_) n += f.type->NumLeaves();
  return n;
}

}  // namespace hepq
