#include "columnar/builder.h"

namespace hepq {

Result<ArrayPtr> MakeListOfStructArray(std::vector<Field> leaf_fields,
                                       std::vector<uint32_t> offsets,
                                       std::vector<ArrayPtr> leaf_arrays) {
  std::shared_ptr<StructArray> values;
  HEPQ_ASSIGN_OR_RETURN(
      values, StructArray::Make(std::move(leaf_fields), std::move(leaf_arrays)));
  std::shared_ptr<ListArray> list;
  HEPQ_ASSIGN_OR_RETURN(list, ListArray::Make(std::move(offsets), values));
  return ArrayPtr(list);
}

}  // namespace hepq
