#include "columnar/array.h"

namespace hepq {

ListArray::ListArray(DataTypePtr type, std::vector<uint32_t> offsets,
                     ArrayPtr child)
    : Array(std::move(type), static_cast<int64_t>(offsets.size()) - 1),
      offsets_(std::move(offsets)),
      child_(std::move(child)) {}

Result<std::shared_ptr<ListArray>> ListArray::Make(
    std::vector<uint32_t> offsets, ArrayPtr child) {
  if (offsets.empty()) {
    return Status::Invalid("list offsets must have at least one entry");
  }
  if (offsets.front() != 0) {
    return Status::Invalid("list offsets must start at 0");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::Invalid("list offsets must be non-decreasing");
    }
  }
  if (static_cast<int64_t>(offsets.back()) != child->length()) {
    return Status::Invalid("final list offset does not match child length");
  }
  auto type = DataType::List(child->type());
  return std::make_shared<ListArray>(std::move(type), std::move(offsets),
                                     std::move(child));
}

bool ListArray::Equals(const Array& other) const {
  if (!type_->Equals(*other.type()) || length_ != other.length()) {
    return false;
  }
  const auto& o = static_cast<const ListArray&>(other);
  return offsets_ == o.offsets_ && child_->Equals(*o.child_);
}

StructArray::StructArray(DataTypePtr type, std::vector<ArrayPtr> children)
    : Array(std::move(type),
            children.empty() ? 0 : children.front()->length()),
      children_(std::move(children)) {}

Result<std::shared_ptr<StructArray>> StructArray::Make(
    std::vector<Field> fields, std::vector<ArrayPtr> children) {
  if (fields.size() != children.size()) {
    return Status::Invalid("struct fields/children size mismatch");
  }
  if (children.empty()) {
    return Status::Invalid("struct array needs at least one child");
  }
  const int64_t len = children.front()->length();
  for (size_t i = 0; i < children.size(); ++i) {
    if (children[i]->length() != len) {
      return Status::Invalid("struct children have unequal lengths");
    }
    if (!children[i]->type()->Equals(*fields[i].type)) {
      return Status::Invalid("struct child '" + fields[i].name +
                             "' type mismatch");
    }
  }
  auto type = DataType::Struct(std::move(fields));
  return std::make_shared<StructArray>(std::move(type), std::move(children));
}

ArrayPtr StructArray::ChildByName(const std::string& name) const {
  const int i = type_->FieldIndex(name);
  if (i < 0) return nullptr;
  return children_[static_cast<size_t>(i)];
}

int64_t StructArray::NumBytes() const {
  int64_t n = 0;
  for (const auto& c : children_) n += c->NumBytes();
  return n;
}

bool StructArray::Equals(const Array& other) const {
  if (!type_->Equals(*other.type()) || length_ != other.length()) {
    return false;
  }
  const auto& o = static_cast<const StructArray&>(other);
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*o.children_[i])) return false;
  }
  return true;
}

RecordBatch::RecordBatch(SchemaPtr schema, int64_t num_rows,
                         std::vector<ArrayPtr> columns)
    : schema_(std::move(schema)),
      num_rows_(num_rows),
      columns_(std::move(columns)) {}

Result<std::shared_ptr<RecordBatch>> RecordBatch::Make(
    SchemaPtr schema, std::vector<ArrayPtr> columns) {
  if (static_cast<int>(columns.size()) != schema->num_fields()) {
    return Status::Invalid("batch column count does not match schema");
  }
  int64_t rows = columns.empty() ? 0 : columns.front()->length();
  for (int i = 0; i < schema->num_fields(); ++i) {
    const auto& col = columns[static_cast<size_t>(i)];
    if (col->length() != rows) {
      return Status::Invalid("batch columns have unequal lengths");
    }
    if (!col->type()->Equals(*schema->field(i).type)) {
      return Status::Invalid("column '" + schema->field(i).name +
                             "' type mismatch with schema");
    }
  }
  return std::make_shared<RecordBatch>(std::move(schema), rows,
                                       std::move(columns));
}

ArrayPtr RecordBatch::ColumnByName(const std::string& name) const {
  const int i = schema_->FieldIndex(name);
  if (i < 0) return nullptr;
  return columns_[static_cast<size_t>(i)];
}

int64_t RecordBatch::NumBytes() const {
  int64_t n = 0;
  for (const auto& c : columns_) n += c->NumBytes();
  return n;
}

bool RecordBatch::Equals(const RecordBatch& other) const {
  if (num_rows_ != other.num_rows_) return false;
  if (!schema_->Equals(*other.schema_)) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!columns_[i]->Equals(*other.columns_[i])) return false;
  }
  return true;
}

}  // namespace hepq
